// Top-level benchmark harness: one testing.B target per table and figure of
// the paper's evaluation (§7). Each benchmark runs its suite once per
// iteration and reports wall-clock via the standard benchmark machinery;
// the same table text can be produced with cmd/benchtab.
//
// The full suites are long-running; use e.g.
//
//	go test -bench BenchmarkTable4 -benchtime 1x
//
// to regenerate a single table's data.
package repro_test

import (
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/stats"
)

// benchTimeout bounds each (task, method) run; override with
// VS3_BENCH_TIMEOUT (e.g. "150s") for fuller tables at the cost of wall
// clock. EXPERIMENTS.md records runs at the longer setting.
func benchTimeout() time.Duration {
	if s := os.Getenv("VS3_BENCH_TIMEOUT"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			return d
		}
	}
	return 45 * time.Second
}

func newRunner() (*bench.Runner, *stats.Collector) {
	c := stats.New()
	return &bench.Runner{Timeout: benchTimeout(), Stats: c}, c
}

// populate runs a small representative suite (the running example, one
// array benchmark, one list benchmark, all three algorithms each) so the
// statistics collector has data for the figure benchmarks.
func populate(r *bench.Runner) {
	for _, task := range []bench.Task{
		{Name: "Array Init", Build: bench.ArrayInit},
		bench.ArrayListTasks()[1], // Partition Array
		bench.ArrayListTasks()[3], // List Delete
	} {
		r.Run(task)
	}
}

// BenchmarkTable1Preservation regenerates Table 1: the ∀∃ preservation
// assertions, proved on the two flagship instances (quick sort partition and
// merge). The full preservation sweep is in BenchmarkTable6Sorting.
func BenchmarkTable1Preservation(b *testing.B) {
	r, _ := newRunner()
	tasks := bench.PreservationTasks()
	for i := 0; i < b.N; i++ {
		for _, t := range []bench.Task{tasks[4], tasks[5]} { // quick, merge
			t.Methods = []core.Method{core.LFP}
			for _, m := range r.Run(t) {
				if m.Err == nil && !m.Proved {
					b.Logf("%s/%s not proved", m.Task, m.Method)
				}
			}
		}
	}
}

// BenchmarkTable2WorstCase regenerates Table 2: worst-case upper-bound
// preconditions via GFP.
func BenchmarkTable2WorstCase(b *testing.B) {
	r, _ := newRunner()
	for i := 0; i < b.N; i++ {
		bench.Table2(io.Discard, r)
	}
}

// BenchmarkTable3Functional regenerates Table 3 (and Table 5's timings):
// functional-correctness preconditions via GFP.
func BenchmarkTable3Functional(b *testing.B) {
	r, _ := newRunner()
	for i := 0; i < b.N; i++ {
		bench.Table3And5(io.Discard, r)
	}
}

// BenchmarkTable5PrecondTimes is an alias suite for Table 5 (the same runs
// as Table 3 report the timings).
func BenchmarkTable5PrecondTimes(b *testing.B) {
	BenchmarkTable3Functional(b)
}

// BenchmarkTable4Lists regenerates Table 4: the data-sensitive array/list
// programs under all three algorithms.
func BenchmarkTable4Lists(b *testing.B) {
	r, _ := newRunner()
	for i := 0; i < b.N; i++ {
		bench.Table4(io.Discard, r)
	}
}

// BenchmarkTable6Sorting regenerates Table 6: the sorting suite (sortedness,
// preservation, worst-case bounds). This is the longest-running target.
func BenchmarkTable6Sorting(b *testing.B) {
	r, _ := newRunner()
	for i := 0; i < b.N; i++ {
		bench.Table6(io.Discard, r)
	}
}

// BenchmarkFigure4QueryTimes regenerates Figure 4: the SMT query latency
// histogram, collected over a representative suite (Table 4).
func BenchmarkFigure4QueryTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, c := newRunner()
		populate(r)
		bench.Figure4(io.Discard, c)
	}
}

// BenchmarkFigure5Robustness regenerates Figure 5: slowdown under irrelevant
// predicates on the quicksort partition base task.
func BenchmarkFigure5Robustness(b *testing.B) {
	r, _ := newRunner()
	for i := 0; i < b.N; i++ {
		bench.Figure5(io.Discard, r, bench.SortednessTasks()[4], []int{10, 20, 30})
	}
}

// BenchmarkFigure6NegSolutionSizes regenerates Figure 6 from a Table 4 run.
func BenchmarkFigure6NegSolutionSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, c := newRunner()
		populate(r)
		bench.Figure6(io.Discard, c)
	}
}

// BenchmarkFigure7OptSolutionCounts regenerates Figure 7 from a Table 4 run.
func BenchmarkFigure7OptSolutionCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, c := newRunner()
		populate(r)
		bench.Figure7(io.Discard, c)
	}
}

// BenchmarkFigure8Candidates regenerates Figure 8 from a Table 4 run.
func BenchmarkFigure8Candidates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, c := newRunner()
		populate(r)
		bench.Figure8(io.Discard, c)
	}
}

// BenchmarkFigure9SATSize regenerates Figure 9 from a Table 4 run (the CFP
// column builds the ψ_Prog SAT instances).
func BenchmarkFigure9SATSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, c := newRunner()
		populate(r)
		bench.Figure9(io.Discard, c)
	}
}

// BenchmarkVerifyArrayInit measures one end-to-end verification of the
// paper's running example under GFP with a cold solver per iteration.
func BenchmarkVerifyArrayInit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := core.New(core.Config{})
		out, err := v.Verify(bench.ArrayInit(), core.GFP)
		if err != nil || !out.Proved {
			b.Fatalf("verify: %v proved=%v", err, out.Proved)
		}
	}
}
