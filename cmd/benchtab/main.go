// Command benchtab regenerates the tables and figures of the paper's
// evaluation section (§7) against this reproduction.
//
// Usage:
//
//	benchtab [-table 1|2|3|4|5|6|7|8|9|10] [-figure 4|5|6|7|8|9] [-timeout 120s] [-all] [-parallel N]
//	         [-json FILE] [-compare OLD.json] [-cpuprofile FILE] [-memprofile FILE] [-quick]
//
// With -parallel N > 1 the (task, method) cells of each table run
// concurrently on N workers (default: the number of CPUs); the printed
// tables are identical to a sequential run, and a trailing line reports the
// achieved wall-clock speedup (sum of per-cell times / elapsed).
//
// -json FILE runs the default representative suite and writes a
// machine-readable report (wall time plus per-cell timings and SMT
// query/cache-hit counters) to FILE — the BENCH_N.json format tracked by
// `make bench-json`. -compare OLD.json runs the same suite and prints a
// per-cell speedup table against a previous report instead of (or in
// addition to) writing one. -cpuprofile/-memprofile write runtime/pprof
// profiles covering whatever work the other flags request.
//
// Figures 4 and 6–9 are histograms over the statistics collected while the
// requested tables run; asking for them alone runs the Table 4 suite to
// populate the collector. Figure 5 runs the robustness sweep (slow).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/stats"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-10; 7 is the general-LIA family, 8 the warm-restart comparison, 9 the rpc transport report, 10 the compaction and store-aware routing report)")
	figure := flag.Int("figure", 0, "regenerate one figure (4-9)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-(task,method) timeout")
	all := flag.Bool("all", false, "regenerate every table and figure")
	junk := flag.String("junk", "10,20,30", "comma-separated junk-predicate counts for figure 5")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "number of (task,method) cells run concurrently (1 = sequential)")
	jsonOut := flag.String("json", "", "run the default suite and write a JSON report (BENCH_N.json format) to this file")
	compare := flag.String("compare", "", "run the default suite and print a per-cell speedup table against this previous -json report")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	quick := flag.Bool("quick", false, "run the one-task quick suite (one cell per method) and print its report")
	flag.Parse()

	// The searches churn short-lived formulas and candidate fills; at the
	// default GOGC=100 a benchmark run spends roughly a quarter of its wall
	// time collecting them. A batch harness trades heap headroom for
	// throughput, so collect 8x less eagerly — unless the caller pinned GOGC
	// in the environment, which always wins.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(800)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			}
		}()
	}

	c := stats.New()
	r := &bench.Runner{Timeout: *timeout, Stats: c, Parallel: *parallel}
	w := os.Stdout
	start := time.Now()
	defer func() {
		if cell := r.CellTime(); cell > 0 {
			wall := time.Since(start)
			fmt.Fprintf(w, "parallel=%d: cell time %.1fs, wall %.1fs, speedup %.2fx\n",
				*parallel, cell.Seconds(), wall.Seconds(), cell.Seconds()/wall.Seconds())
		}
	}()

	if *quick {
		if err := bench.RunJSON(w, r, "quick", bench.QuickSuite()); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut != "" || *compare != "" {
		var old *bench.Report
		if *compare != "" {
			var err error
			old, err = bench.ReadReport(*compare)
			if errors.Is(err, os.ErrNotExist) {
				// A missing baseline is the normal first-run state, not a
				// failure: run the suite anyway and say how to record one.
				fmt.Fprintf(os.Stderr, "benchtab: no baseline at %s — nothing to compare against yet\n", *compare)
				fmt.Fprintf(os.Stderr, "benchtab: record one with `benchtab -json %s` (or `make bench-json`), then rerun -compare\n", *compare)
				old = nil
			} else if err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
		}
		// With no baseline and no -json sink the suite run would print
		// nothing useful, so skip it.
		runSuite := *jsonOut != "" || old != nil
		if runSuite {
			var buf bytes.Buffer
			if err := bench.RunJSON(&buf, r, "default", bench.DefaultSuite()); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
				os.Exit(1)
			}
			if *jsonOut != "" {
				if err := os.WriteFile(*jsonOut, buf.Bytes(), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
					os.Exit(1)
				}
				fmt.Fprintf(w, "wrote %s\n", *jsonOut)
			}
			if old != nil {
				var new bench.Report
				if err := json.Unmarshal(buf.Bytes(), &new); err != nil {
					fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
					os.Exit(1)
				}
				bench.WriteComparison(w, old, &new)
			}
		}
		if *table == 0 && *figure == 0 && !*all {
			return
		}
	}

	if *all {
		runTable(w, r, 1)
		runTable(w, r, 2)
		runTable(w, r, 3)
		runTable(w, r, 4)
		runTable(w, r, 6)
		runTable(w, r, 7)
		bench.Figure4(w, c)
		runFigure(w, r, c, 5, *junk)
		bench.Figure6(w, c)
		bench.Figure7(w, c)
		bench.Figure8(w, c)
		bench.Figure9(w, c)
		return
	}
	if *table != 0 {
		runTable(w, r, *table)
	}
	if *figure != 0 {
		if *figure != 5 && len(c.QueryDurations()) == 0 {
			// Populate the collector with a representative run.
			bench.Table4(io.Discard, r)
		}
		runFigure(w, r, c, *figure, *junk)
	}
	if *table == 0 && *figure == 0 {
		fmt.Fprintln(os.Stderr, "benchtab: pass -table N, -figure N, -json FILE, or -all")
		os.Exit(2)
	}
}

func runTable(w io.Writer, r *bench.Runner, n int) {
	switch n {
	case 1:
		bench.Table1(w)
	case 2:
		bench.Table2(w, r)
	case 3, 5:
		bench.Table3And5(w, r)
	case 4:
		bench.Table4(w, r)
	case 6:
		bench.Table6(w, r)
	case 7:
		bench.Table7(w, r)
	case 8:
		// Warm-restart comparison: the default suite cold on a fresh
		// knowledge store, then again reopening it. The store lives in a
		// throwaway directory — Table 8 measures the restart saving, not a
		// particular store's contents.
		dir, err := os.MkdirTemp("", "vs3-warm-bench-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		rep, err := bench.RunWarmBench(dir, "default", r.Timeout, r.Parallel, bench.DefaultSuite())
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
			os.Exit(1)
		}
		bench.WriteWarmTable(w, rep)
	case 9:
		// Binary rpc transport comparison: rendered from the committed
		// BENCH_9.json rather than re-run — the measurement needs a live
		// multi-daemon fleet, which `make bench-rpc` boots and gates.
		rep, err := bench.ReadBench9("BENCH_9.json")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v (generate it with `make bench-rpc`)\n", err)
			os.Exit(1)
		}
		bench.WriteBench9Table(w, rep)
	case 10:
		// Log compaction + store-aware routing: rendered from the committed
		// BENCH_10.json (`make bench-compact` boots the fleet and gates it).
		rep, err := bench.ReadBench10("BENCH_10.json")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %v (generate it with `make bench-compact`)\n", err)
			os.Exit(1)
		}
		bench.WriteBench10Table(w, rep)
	default:
		fmt.Fprintf(os.Stderr, "benchtab: no table %d\n", n)
		os.Exit(2)
	}
}

func runFigure(w io.Writer, r *bench.Runner, c *stats.Collector, n int, junk string) {
	switch n {
	case 4:
		bench.Figure4(w, c)
	case 5:
		var counts []int
		for _, part := range splitComma(junk) {
			var v int
			fmt.Sscanf(part, "%d", &v)
			if v > 0 {
				counts = append(counts, v)
			}
		}
		bench.Figure5(w, r, bench.SortednessTasks()[4], counts) // quick sort inner: fastest base
	case 6:
		bench.Figure6(w, c)
	case 7:
		bench.Figure7(w, c)
	case 8:
		bench.Figure8(w, c)
	case 9:
		bench.Figure9(w, c)
	default:
		fmt.Fprintf(os.Stderr, "benchtab: no figure %d\n", n)
		os.Exit(2)
	}
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}
