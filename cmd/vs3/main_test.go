package main

import (
	"os"
	"path/filepath"
	"testing"
)

const arrayInitSpec = `
program ArrayInit(array A, n) {
  i := 0;
  while loop (i < n) {
    A[i] := 0;
    i := i + 1;
  }
  assert(forall j. (0 <= j && j < n) => A[j] = 0);
}

template loop: forall j. ?v => A[j] = 0;
predicates v: j < 0, j >= 0, j < i, j <= i, j < n, j <= n;
`

func writeSpec(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "task.vs3")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunVerify(t *testing.T) {
	path := writeSpec(t, arrayInitSpec)
	if err := run(path, "gfp", false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "lfp", false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunPrecondition(t *testing.T) {
	src := arrayInitSpec + `
template entry: ?pre;
predicates pre: n <= 0, n >= 0;
`
	path := writeSpec(t, src)
	if err := run(path, "gfp", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/no/such/file.vs3", "gfp", false, false); err == nil {
		t.Error("missing file should error")
	}
	path := writeSpec(t, "program P() { x := }")
	if err := run(path, "gfp", false, false); err == nil {
		t.Error("parse error should propagate")
	}
	good := writeSpec(t, arrayInitSpec)
	if err := run(good, "zzz", false, false); err == nil {
		t.Error("unknown method should error")
	}
}

func TestParseMethods(t *testing.T) {
	if ms, err := parseMethods("all"); err != nil || len(ms) != 3 {
		t.Errorf("all: %v %v", ms, err)
	}
	for _, s := range []string{"lfp", "GFP", "cfp"} {
		if ms, err := parseMethods(s); err != nil || len(ms) != 1 {
			t.Errorf("%s: %v %v", s, ms, err)
		}
	}
	if _, err := parseMethods("x"); err == nil {
		t.Error("bad method accepted")
	}
}
