// Command vs3 verifies a program against invariant templates over predicate
// abstraction, reproducing the tool of Srivastava & Gulwani (PLDI 2009).
//
// Usage:
//
//	vs3 [-method lfp|gfp|cfp|all] [-pre] [-stats] file.vs3
//
// The input file contains a program followed by template and predicate
// directives (see examples/quickstart/arrayinit.vs3):
//
//	program ArrayInit(array A, n) {
//	  i := 0;
//	  while loop (i < n) { A[i] := 0; i := i + 1; }
//	  assert(forall j. (0 <= j && j < n) => A[j] = 0);
//	}
//
//	template loop: forall j. ?v => A[j] = 0;
//	predicates v: j < 0, j <= 0, j > 0, j >= 0, j < i, j <= i, j > i, j >= i;
//
// With -pre, the entry template's unknowns are solved for maximally-weak
// preconditions instead (§6 of the paper).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/template"
)

func main() {
	method := flag.String("method", "all", "algorithm: lfp, gfp, cfp, or all")
	pre := flag.Bool("pre", false, "infer maximally-weak preconditions for the entry template")
	showStats := flag.Bool("stats", false, "print SMT/search statistics after solving")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vs3 [-method lfp|gfp|cfp|all] [-pre] [-stats] file.vs3\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *method, *pre, *showStats); err != nil {
		fmt.Fprintln(os.Stderr, "vs3:", err)
		os.Exit(1)
	}
}

func run(path, method string, pre, showStats bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	sf, err := lang.ParseSpecFile(string(src))
	if err != nil {
		return err
	}
	prob := &spec.Problem{
		Prog:      sf.Program,
		Templates: sf.Templates,
		Q:         template.Domain(sf.Predicates),
	}
	if err := prob.Validate(); err != nil {
		return err
	}
	collector := stats.New()
	v := core.New(core.Config{Stats: collector})

	if pre {
		pres, enum, err := v.InferPreconditions(prob)
		if err != nil {
			return err
		}
		if len(pres) == 0 {
			fmt.Println("no precondition found in the template/predicate space")
		}
		for i, p := range pres {
			fmt.Printf("precondition %d: %s\n", i+1, p.Pre)
		}
		if enum.Truncated {
			fmt.Println("note: enumeration truncated (candidate/step bound hit); the set may be incomplete")
		}
		if showStats {
			collector.WriteSummary(os.Stdout)
		}
		return nil
	}

	methods, err := parseMethods(method)
	if err != nil {
		return err
	}
	for _, m := range methods {
		out, err := v.Verify(prob, m)
		if err != nil {
			return err
		}
		fmt.Print(core.FormatOutcome(out))
	}
	if showStats {
		collector.WriteSummary(os.Stdout)
	}
	return nil
}

func parseMethods(s string) ([]core.Method, error) {
	switch strings.ToLower(s) {
	case "lfp":
		return []core.Method{core.LFP}, nil
	case "gfp":
		return []core.Method{core.GFP}, nil
	case "cfp":
		return []core.Method{core.CFP}, nil
	case "all":
		return core.Methods, nil
	}
	return nil, fmt.Errorf("unknown method %q (want lfp, gfp, cfp, or all)", s)
}
