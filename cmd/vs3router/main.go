// Command vs3router is the horizontal scale-out front tier: it consistently
// hashes every request's problem key onto a fleet of vs3d backends, so each
// backend's interner, incremental smt.Context lanes, and unsat-core store
// stay hot for its slice of the keyspace (see internal/route and DESIGN.md
// §13). It health-checks the fleet, fails requests over to the next live
// node in ring order, splits /v1/batch requests by backend affinity, and
// reuses backend connections.
//
// Usage:
//
//	vs3router -backends http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	          [-addr :8079] [-policy affinity|random] [-replicas 128] \
//	          [-health-interval 2s] [-id NAME]
//
// Endpoints:
//
//	POST /v1/verify         routed by problem key
//	POST /v1/preconditions  routed by problem key
//	POST /v1/batch          split by affinity, fanned out, merged
//	GET  /v1/stats          router counters + per-backend rows + fleet totals
//	GET  /metrics           Prometheus text format
//	GET  /healthz           200 while at least one backend is live
//
// -policy random exists as the control arm for benchmarks: same fleet, no
// affinity. Production use is affinity.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/route"
)

func main() {
	addr := flag.String("addr", ":8079", "listen address")
	backends := flag.String("backends", "", "comma-separated vs3d base URLs (required)")
	policy := flag.String("policy", "affinity", "routing policy: affinity or random")
	replicas := flag.Int("replicas", 128, "virtual nodes per backend on the hash ring")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "period between backend health sweeps")
	id := flag.String("id", "vs3router", "router identity reported in stats and metrics")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	cfg := route.Config{
		Backends:       urls,
		Replicas:       *replicas,
		Policy:         route.Policy(*policy),
		HealthInterval: *healthInterval,
		ID:             *id,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vs3router:", err)
		os.Exit(1)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, ln, cfg, log.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "vs3router:", err)
		os.Exit(1)
	}
}

// run serves on ln until ctx is cancelled, then shuts down gracefully.
// Split from main so the cluster smoke test and benchmark can drive the
// real router on an ephemeral port.
func run(ctx context.Context, ln net.Listener, cfg route.Config, logger *log.Logger) error {
	router, err := route.New(cfg)
	if err != nil {
		return err
	}
	defer router.Close()
	srv := &http.Server{Handler: router.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Printf("vs3router: serving on %s, %s routing over %d backends",
		ln.Addr(), cfg.Policy, len(cfg.Backends))
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("vs3router: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
