// Command vs3router is the horizontal scale-out front tier: it consistently
// hashes every request's problem key onto a fleet of vs3d backends, so each
// backend's interner, incremental smt.Context lanes, and unsat-core store
// stay hot for its slice of the keyspace (see internal/route and DESIGN.md
// §13). It health-checks the fleet, fails requests over to the next live
// node in ring order, splits /v1/batch requests by backend affinity, and
// reuses backend connections. Backends that advertise the binary VS3R
// protocol (X-VS3-RPC) are spoken to over persistent multiplexed rpc
// connections; the rest stay on HTTP (see DESIGN.md §16).
//
// Usage:
//
//	vs3router -backend http://10.0.0.1:8080=2 -backend http://10.0.0.2:8080 \
//	          [-addr :8079] [-rpc :8078] [-policy affinity|random] [-replicas 128] \
//	          [-health-interval 2s] [-hedge] [-hedge-min 10ms] [-hedge-max 1s] \
//	          [-store-aware=true] [-no-rpc] [-id NAME]
//
// Each -backend flag names one vs3d base URL with an optional =WEIGHT ring
// share multiplier (default 1; a weight-2 backend owns about twice the
// keyspace of a weight-1 one). The older -backends comma-separated form is
// still accepted; the two may be mixed.
//
// -rpc ADDR additionally serves the binary VS3R protocol on ADDR, so bulk
// clients (cmd/vs3load -proto rpc) reach the fleet without per-request HTTP
// overhead. -hedge enables request hedging: when the key's owner has not
// answered within an adaptive delay (rolling p95 of backend latency, clamped
// to [-hedge-min, -hedge-max]), the request is also fired at the ring
// successor and the loser is cancelled. -no-rpc keeps every backend on HTTP
// even if it advertises rpc (the benchmark control arm).
//
// -store-aware (default true) enables store-aware placement: the health
// sweep keeps a bloom digest of each backend's solved problem keys, and a
// request whose key a live backend's digest claims routes there ahead of
// plain ring order — after a reweight or node change, known problems go back
// to the node that already holds their knowledge instead of being re-derived
// from scratch (see DESIGN.md §17).
//
// Endpoints:
//
//	POST /v1/verify         routed by problem key
//	POST /v1/preconditions  routed by problem key
//	POST /v1/batch          split by affinity, fanned out, merged
//	GET  /v1/stats          router counters + per-backend rows + fleet totals
//	GET  /metrics           Prometheus text format
//	GET  /healthz           200 while at least one backend is live
//
// -policy random exists as the control arm for benchmarks: same fleet, no
// affinity. Production use is affinity.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/route"
	"repro/internal/rpc"
)

func main() {
	addr := flag.String("addr", ":8079", "listen address")
	rpcAddr := flag.String("rpc", "", "binary rpc listen address (empty = HTTP only)")
	backends := flag.String("backends", "", "comma-separated vs3d base URLs")
	var urls []string
	var weights []float64
	flag.Func("backend", "one vs3d base URL, optionally URL=WEIGHT (repeatable)", func(v string) error {
		u, w, err := parseBackend(v)
		if err != nil {
			return err
		}
		urls = append(urls, u)
		weights = append(weights, w)
		return nil
	})
	policy := flag.String("policy", "affinity", "routing policy: affinity or random")
	replicas := flag.Int("replicas", 128, "virtual nodes per weight-1 backend on the hash ring")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "period between backend health sweeps")
	hedge := flag.Bool("hedge", false, "hedge slow requests at the ring successor")
	hedgeMin := flag.Duration("hedge-min", 10*time.Millisecond, "floor on the adaptive hedge delay")
	hedgeMax := flag.Duration("hedge-max", time.Second, "cap on the adaptive hedge delay")
	storeAware := flag.Bool("store-aware", true, "prefer backends whose knowledge-store digest claims a request's problem key")
	noRPC := flag.Bool("no-rpc", false, "keep all backends on HTTP even when they advertise binary rpc")
	id := flag.String("id", "vs3router", "router identity reported in stats and metrics")
	flag.DurationVar(&rpcFrameTimeout, "rpc-write-timeout", rpcFrameTimeout, "per-frame rpc write deadline; a stalled peer's connection is torn down on expiry (negative = none)")
	flag.Parse()

	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
			weights = append(weights, 1)
		}
	}
	cfg := route.Config{
		Backends:       urls,
		Weights:        weights,
		Replicas:       *replicas,
		Policy:         route.Policy(*policy),
		HealthInterval: *healthInterval,
		Hedge:          *hedge,
		HedgeMin:       *hedgeMin,
		HedgeMax:       *hedgeMax,
		StoreAware:     *storeAware,
		DisableRPC:     *noRPC,
		ID:             *id,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vs3router:", err)
		os.Exit(1)
	}
	var rpcLn net.Listener
	if *rpcAddr != "" {
		rpcLn, err = net.Listen("tcp", *rpcAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vs3router:", err)
			os.Exit(1)
		}
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, ln, rpcLn, cfg, log.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "vs3router:", err)
		os.Exit(1)
	}
}

// parseBackend splits one -backend value into its URL and ring weight.
func parseBackend(v string) (url string, weight float64, err error) {
	url, weight = strings.TrimSpace(v), 1
	if i := strings.LastIndex(url, "="); i >= 0 {
		weight, err = strconv.ParseFloat(url[i+1:], 64)
		if err != nil || weight <= 0 {
			return "", 0, fmt.Errorf("backend %q: weight must be a positive number", v)
		}
		url = url[:i]
	}
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	if url == "" {
		return "", 0, fmt.Errorf("backend %q: empty URL", v)
	}
	return url, weight, nil
}

// run serves on ln (and the binary rpc front on rpcLn, when non-nil) until
// ctx is cancelled, then shuts down gracefully. Split from main so the
// cluster smoke test and benchmark can drive the real router on an
// ephemeral port.
// rpcFrameTimeout is the per-frame write deadline run hands the rpc server
// (main overrides it from -rpc-write-timeout).
var rpcFrameTimeout = 10 * time.Second

func run(ctx context.Context, ln, rpcLn net.Listener, cfg route.Config, logger *log.Logger) error {
	router, err := route.New(cfg)
	if err != nil {
		return err
	}
	defer router.Close()
	var rpcSrv *rpc.Server
	if rpcLn != nil {
		rpcSrv = rpc.NewServer(router, rpc.ServerConfig{Logf: logger.Printf, WriteTimeout: rpcFrameTimeout})
		router.AdvertiseRPC(rpc.AdvertiseAddr(rpcLn.Addr()))
		go func() {
			if err := rpcSrv.Serve(rpcLn); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Printf("vs3router: rpc serve: %v", err)
			}
		}()
	}
	srv := &http.Server{Handler: router.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if rpcLn != nil {
		logger.Printf("vs3router: serving on %s (binary rpc on %s), %s routing over %d backends",
			ln.Addr(), rpcLn.Addr(), cfg.Policy, len(cfg.Backends))
	} else {
		logger.Printf("vs3router: serving on %s, %s routing over %d backends",
			ln.Addr(), cfg.Policy, len(cfg.Backends))
	}
	select {
	case err := <-errc:
		if rpcSrv != nil {
			rpcLn.Close()
			rpcSrv.Close()
		}
		return err
	case <-ctx.Done():
	}
	logger.Printf("vs3router: shutting down")
	if rpcSrv != nil {
		rpcSrv.StartDrain()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	if rpcSrv != nil {
		for {
			_, streams, _, _ := rpcSrv.Stats()
			if streams == 0 || shutCtx.Err() != nil {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		rpcLn.Close()
		rpcSrv.Close()
	}
	if shutErr != nil {
		return shutErr
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
