package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/load"
	"repro/internal/route"
	"repro/internal/serve"
	"repro/internal/store"
)

// startStoreBackend boots a real engine backend attached to an on-disk
// knowledge store in dir. stop closes the HTTP surface first, then the store
// (flushing the write-behind queue, as a drained daemon would); call it
// exactly once.
func startStoreBackend(t *testing.T, id, dir string) (ts *httptest.Server, stop func()) {
	t.Helper()
	st, err := store.Open(dir, store.Options{Params: serve.Config{}.Core.SMT.StoreParams(), Logf: t.Logf})
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	ts = httptest.NewServer(serve.New(serve.Config{ID: id, Pool: 2, Store: st}).Handler())
	stop = func() {
		ts.CloseClientConnections()
		ts.Close()
		if err := st.Close(); err != nil {
			t.Errorf("store.Close(%s): %v", dir, err)
		}
	}
	return ts, stop
}

// duplicateStoreLog rewrites dir's knowledge log as header + body×copies —
// the duplicate-heavy shape a long-lived store reaches through rewrite churn
// — and returns the new log size.
func duplicateStoreLog(t *testing.T, dir string, copies int) int64 {
	t.Helper()
	path := filepath.Join(dir, "knowledge.log")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.IndexByte(b, '\n') + 1 // the header record stays single
	if i <= 0 || i >= len(b) {
		t.Fatalf("store log %s has no body to duplicate", path)
	}
	var out bytes.Buffer
	out.Write(b[:i])
	for c := 0; c < copies; c++ {
		out.Write(b[i:])
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return int64(out.Len())
}

// copyStoreLog clones a closed store directory's log into a fresh dir, so two
// benchmark arms can start from byte-identical warmed stores.
func copyStoreLog(t *testing.T, src string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(src, "knowledge.log"))
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	if err := os.WriteFile(filepath.Join(dst, "knowledge.log"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// backendProbe is the slice of a vs3d /v1/stats body the compaction tests
// read.
type backendProbe struct {
	Queries        int64 `json:"smt_queries"`
	Probes         int64 `json:"assumption_probes"`
	FMScratch      int64 `json:"fm_scratch"`
	FMIncremental  int64 `json:"fm_incremental"`
	OutcomeHits    int64 `json:"store_outcome_hits"`
	LogBytes       int64 `json:"store_log_bytes"`
	Compactions    int64 `json:"store_compactions"`
	ReclaimedBytes int64 `json:"store_reclaimed_bytes"`
}

func (p backendProbe) work() int64 { return p.Queries + p.Probes + p.FMScratch + p.FMIncremental }

func probeStats(t *testing.T, base string) backendProbe {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p backendProbe
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCompactSmoke is `make compact-smoke`: generational log compaction end
// to end over the HTTP surface. A store-backed backend solves the smoke
// corpus; its log is duplicated 6x (simulated churn); a second lifetime
// compacts it via POST /v1/compact while serving and must keep answering
// with identical verdicts and zero fresh work; a third lifetime restarts on
// the compacted generation and replays everything from the store.
func TestCompactSmoke(t *testing.T) {
	dir := t.TempDir()
	corpus := load.SmokeCorpus()

	// Lifetime 1: solve the corpus cold, writing outcomes behind.
	ts1, stop1 := startStoreBackend(t, "compact-1", dir)
	for _, it := range corpus {
		resp, vr := verifyVia(t, ts1.URL, it.Spec, it.Method)
		if resp.StatusCode != http.StatusOK || vr.Proved != it.WantProved {
			t.Fatalf("%s cold: status=%d proved=%v", it.Name, resp.StatusCode, vr.Proved)
		}
	}
	stop1()
	dupBytes := duplicateStoreLog(t, dir, 6)

	// Lifetime 2: compact on demand while serving.
	ts2, stop2 := startStoreBackend(t, "compact-2", dir)
	if got := probeStats(t, ts2.URL).LogBytes; got != dupBytes {
		t.Fatalf("store_log_bytes = %d, want the duplicated %d", got, dupBytes)
	}
	resp, err := http.Post(ts2.URL+"/v1/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cr serve.CompactResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/compact: status %d", resp.StatusCode)
	}
	if cr.Compactions != 1 || cr.ReclaimedBytes <= 0 {
		t.Fatalf("compact response: %+v", cr)
	}
	if cr.LogBytes*3 > dupBytes {
		t.Errorf("compaction shrank the log %d -> %d bytes, want >=3x", dupBytes, cr.LogBytes)
	}
	fi, err := os.Stat(filepath.Join(dir, "knowledge.log"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != cr.LogBytes {
		t.Errorf("on-disk log is %d bytes, response says %d", fi.Size(), cr.LogBytes)
	}
	// The just-compacted, still-serving backend answers from the store.
	pre := probeStats(t, ts2.URL)
	for _, it := range corpus {
		resp, vr := verifyVia(t, ts2.URL, it.Spec, it.Method)
		if resp.StatusCode != http.StatusOK || vr.Proved != it.WantProved || !vr.FromStore {
			t.Fatalf("%s after compact: status=%d proved=%v from_store=%v",
				it.Name, resp.StatusCode, vr.Proved, vr.FromStore)
		}
	}
	if d := probeStats(t, ts2.URL).work() - pre.work(); d != 0 {
		t.Errorf("replay after live compaction did %d fresh work, want 0", d)
	}
	stop2()

	// Lifetime 3: a restart over the compacted generation is fully warm.
	ts3, stop3 := startStoreBackend(t, "compact-3", dir)
	for _, it := range corpus {
		resp, vr := verifyVia(t, ts3.URL, it.Spec, it.Method)
		if resp.StatusCode != http.StatusOK || vr.Proved != it.WantProved || !vr.FromStore {
			t.Fatalf("%s on compacted store: status=%d proved=%v from_store=%v",
				it.Name, resp.StatusCode, vr.Proved, vr.FromStore)
		}
	}
	if p := probeStats(t, ts3.URL); p.work() != 0 || p.OutcomeHits < int64(len(corpus)) {
		t.Errorf("restart on compacted store: work=%d outcome_hits=%d, want 0 and >=%d",
			p.work(), p.OutcomeHits, len(corpus))
	}
	stop3()

	// A storeless backend refuses the endpoint.
	plain := startBackend(t, "no-store")
	resp, err = http.Post(plain.URL+"/v1/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("POST /v1/compact without a store: status %d, want 409", resp.StatusCode)
	}
}

// movedCorpusKeys counts the distinct corpus problem keys whose ring owner
// changes between the two weight vectors. Ring vnodes hash by backend index,
// not URL, so the count is deterministic for a fixed corpus.
func movedCorpusKeys(t *testing.T, corpus []load.Item, oldW, newW []float64) int {
	t.Helper()
	owner := func(w []float64) map[string]string {
		r, err := route.New(route.Config{
			Backends:       []string{"http://ring-probe-0", "http://ring-probe-1"},
			Weights:        w,
			HealthInterval: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		m := map[string]string{}
		for _, it := range corpus {
			k := serve.ProblemKey(it.Spec)
			m[k] = r.Owner(k)
		}
		return m
	}
	before, after := owner(oldW), owner(newW)
	moved := 0
	for k, o := range before {
		if after[k] != o {
			moved++
		}
	}
	return moved
}

// routerDigestGens reads each backend's store_digest_gen from the router's
// /v1/stats.
func routerDigestGens(t *testing.T, base string) []uint64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		StoreHits int64 `json:"route_store_hits"`
		Backends  []struct {
			Gen uint64 `json:"store_digest_gen"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	gens := make([]uint64, len(body.Backends))
	for i, b := range body.Backends {
		gens[i] = b.Gen
	}
	return gens
}

func routerStoreHits(t *testing.T, base string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		StoreHits int64 `json:"route_store_hits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.StoreHits
}

// TestCompactBench is `make bench-compact`: the BENCH_10 proof. Part A
// duplicates a warmed store's log 6x and gates a >=3x on-disk shrink from
// compaction, with a warm restart over the compacted generation doing zero
// from-scratch work at identical verdicts. Part B warms a two-backend fleet,
// reweights the hash ring (moving keys off the nodes that solved them), and
// replays the corpus through store-aware and affinity-only routing over
// byte-identical store copies: store-aware placement must redo strictly less
// from-scratch work, again at identical verdicts. Gates compare wall-clock
// fleet runs, so the test only runs under `make bench-compact`
// (VS3_BENCH_OUT set) and skips under plain `go test ./...`.
func TestCompactBench(t *testing.T) {
	if testing.Short() {
		t.Skip("compaction benchmark is not a -short test")
	}
	out := os.Getenv("VS3_BENCH_OUT")
	if out == "" {
		t.Skip("fleet benchmark; run via make bench-compact (VS3_BENCH_OUT unset)")
	}
	corpus := load.DefaultCorpus()
	distinct := map[string]bool{}
	for _, it := range corpus {
		distinct[serve.ProblemKey(it.Spec)] = true
	}
	rep := bench.Bench10Report{
		Report:  "BENCH_10",
		Purpose: "generational log compaction (duplicate-heavy store shrink + warm restart) and store-aware routing vs plain ring affinity after a fleet reweight",
		Host:    runtime.GOOS + "/" + runtime.GOARCH,
		GoMaxP:  runtime.GOMAXPROCS(0),
	}

	// ---- Part A: duplicate-heavy compaction + warm restart ----
	const copies = 6
	dirA := t.TempDir()
	tsA, stopA := startStoreBackend(t, "bench-compact-cold", dirA)
	benchArm(t, tsA.URL, len(corpus))
	stopA()
	beforeBytes := duplicateStoreLog(t, dirA, copies)

	st, err := store.Open(dirA, store.Options{Params: serve.Config{}.Core.SMT.StoreParams()})
	if err != nil {
		t.Fatal(err)
	}
	reclaimed, err := st.Compact()
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	fi, err := os.Stat(filepath.Join(dirA, "knowledge.log"))
	if err != nil {
		t.Fatal(err)
	}
	afterBytes := fi.Size()
	shrink := float64(beforeBytes) / float64(afterBytes)
	t.Logf("compaction: log %d -> %d bytes (%.1fx), reclaimed %d", beforeBytes, afterBytes, shrink, reclaimed)
	if shrink < 3 {
		t.Errorf("compaction shrank the duplicate-heavy log only %.1fx, want >=3x", shrink)
	}

	tsW, stopW := startStoreBackend(t, "bench-compact-warm", dirA)
	warm := benchArm(t, tsW.URL, len(corpus))
	warmHits := probeStats(t, tsW.URL).OutcomeHits
	stopW()
	if warm.Work() != 0 {
		t.Errorf("warm restart on the compacted store did %d from-scratch work, want 0", warm.Work())
	}
	rep.Compaction = bench.Bench10Compact{
		Outcomes:          len(distinct),
		Copies:            copies,
		LogBytesBefore:    beforeBytes,
		LogBytesAfter:     afterBytes,
		ReclaimedBytes:    reclaimed,
		ShrinkX:           shrink,
		WarmWork:          warm.Work(),
		WarmStoreHits:     warmHits,
		VerdictsIdentical: true, // benchArm fails the run on any verdict mismatch
	}

	// ---- Part B: store-aware vs affinity-only after a ring reweight ----
	warmWeights := []float64{1, 1}
	newWeights := []float64{4, 1}
	if moved := movedCorpusKeys(t, corpus, warmWeights, newWeights); moved == 0 {
		t.Fatal("reweight moved no corpus keys; widen the weight change")
	} else {
		t.Logf("reweight %v -> %v moves %d of %d distinct keys", warmWeights, newWeights, moved, len(distinct))
	}

	// Warm a two-backend fleet under the old weights, then flush its stores.
	d1, d2 := t.TempDir(), t.TempDir()
	b1, stopB1 := startStoreBackend(t, "fleet-1", d1)
	b2, stopB2 := startStoreBackend(t, "fleet-2", d2)
	warmBase, _, stopWarm := startRouter(t, route.Config{
		Backends: []string{b1.URL, b2.URL}, Weights: warmWeights, Policy: route.Affinity,
	})
	benchArm(t, warmBase, 2*len(corpus))
	stopWarm()
	stopB1()
	stopB2()

	// Each arm replays the corpus over byte-identical copies of the warmed
	// stores behind the reweighted ring.
	runArm := func(name string, storeAware bool) (load.Result, int64) {
		c1, s1 := startStoreBackend(t, name+"-1", copyStoreLog(t, d1))
		defer s1()
		c2, s2 := startStoreBackend(t, name+"-2", copyStoreLog(t, d2))
		defer s2()
		base, _, stopR := startRouter(t, route.Config{
			Backends: []string{c1.URL, c2.URL}, Weights: newWeights,
			Policy: route.Affinity, StoreAware: storeAware,
			HealthInterval: 50 * time.Millisecond,
		})
		defer stopR()
		if storeAware {
			deadline := time.Now().Add(10 * time.Second)
			for {
				gens := routerDigestGens(t, base)
				if len(gens) == 2 && gens[0] > 0 && gens[1] > 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("router never fetched both store digests: %v", gens)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
		res := benchArm(t, base, len(corpus))
		return res, routerStoreHits(t, base)
	}
	aware, storeHits := runArm("aware", true)
	affOnly, _ := runArm("affinity", false)
	t.Logf("store-aware:   work=%d (q=%d fm=%d+%d), %d digest-preferred placements",
		aware.Work(), aware.SMTQueries, aware.FMScratch, aware.FMIncremental, storeHits)
	t.Logf("affinity-only: work=%d (q=%d fm=%d+%d)",
		affOnly.Work(), affOnly.SMTQueries, affOnly.FMScratch, affOnly.FMIncremental)
	if affOnly.Work() == 0 {
		t.Error("affinity-only arm redid no work after the reweight; the comparison is vacuous")
	}
	if aware.Work() >= affOnly.Work() {
		t.Errorf("store-aware work %d not below affinity-only %d after the reweight",
			aware.Work(), affOnly.Work())
	}
	if storeHits == 0 {
		t.Error("store-aware arm counted zero digest-preferred placements")
	}

	rep.Routing = bench.Bench10Routing{
		Arms:      map[string]load.Result{"store_aware": aware, "affinity_only": affOnly},
		StoreHits: storeHits,
	}
	rep.Findings = bench.Bench10Findings{
		CompactionShrinkX: shrink,
		CompactWarmWork:   warm.Work(),
		StoreAwareWork:    aware.Work(),
		AffinityWork:      affOnly.Work(),
		StoreHits:         storeHits,
		VerdictsIdentical: true, // benchArm fails the run on any verdict mismatch
	}
	if aware.Work() > 0 {
		rep.Findings.WorkSavedX = float64(affOnly.Work()) / float64(aware.Work())
	}
	rep.Notes = []string{
		fmt.Sprintf("part A: the default corpus solved cold into one store, its log duplicated %dx (simulated rewrite churn), compacted, then replayed by a restarted backend; shrink is on-disk log bytes before/after", copies),
		"part B: a 2-backend fleet warmed under weights {1,1}, then the ring reweighted to {4,1}; each arm runs on byte-identical copies of the warmed stores, so only the routing policy differs",
		"work = smt_queries + fm_scratch + fm_incremental read as /v1/stats deltas through the router (summed over live backends)",
		"verdicts_identical: benchArm fails the run if any arm returns a verdict differing from the corpus expectation",
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
