package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/route"
	"repro/internal/serve"
)

// startBackend boots a real vs3d backend (engine and all) on a TCP port.
func startBackend(t *testing.T, id string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{ID: id, Pool: 2}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// startRouter boots the real vs3router daemon (the same run() main drives)
// on an ephemeral port and returns its base URL plus a shutdown func. A
// binary rpc front listener is always served alongside, the way
// `vs3router -rpc :0` would.
func startRouter(t *testing.T, cfg route.Config) (string, string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rpcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 100 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, ln, rpcLn, cfg, log.New(io.Discard, "", 0)) }()
	base := "http://" + ln.Addr().String()
	waitHealthy(t, base)
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("router exited with %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("router did not shut down")
		}
	}
	return base, rpcLn.Addr().String(), stop
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func verifyVia(t *testing.T, base, spec, method string) (*http.Response, serve.VerifyResponse) {
	t.Helper()
	body, _ := json.Marshal(serve.VerifyRequest{Spec: spec, Method: method})
	resp, err := http.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr serve.VerifyResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, vr
}

// TestClusterSmoke is `make cluster-smoke`: the real router daemon over TCP
// in front of two real engine backends — affinity, batch split/merge,
// failover after a backend death, stats, and clean shutdown.
func TestClusterSmoke(t *testing.T) {
	b1 := startBackend(t, "smoke-1")
	b2 := startBackend(t, "smoke-2")
	base, _, stop := startRouter(t, route.Config{Backends: []string{b1.URL, b2.URL}})
	defer stop()

	corpus := load.SmokeCorpus()

	// Affinity: repeats of the same spec land on the same backend, and the
	// backend proves it (second hit warm).
	owners := map[string]string{}
	for round := 0; round < 2; round++ {
		for _, item := range corpus {
			resp, vr := verifyVia(t, base, item.Spec, item.Method)
			if resp.StatusCode != http.StatusOK || !vr.Proved {
				t.Fatalf("%s: status=%d proved=%v", item.Name, resp.StatusCode, vr.Proved)
			}
			backend := resp.Header.Get("X-VS3-Backend")
			if backend == "" {
				t.Fatal("no X-VS3-Backend header through the router")
			}
			if prev, ok := owners[item.Name]; ok && prev != backend {
				t.Fatalf("%s routed to %s then %s — affinity broken", item.Name, prev, backend)
			}
			owners[item.Name] = backend
			if k := resp.Header.Get("X-VS3-Problem-Key"); k != serve.ProblemKey(item.Spec) {
				t.Errorf("%s: problem key %q", item.Name, k)
			}
		}
	}

	// Batch through the router: every index answered OK exactly once.
	var items []serve.VerifyRequest
	for _, it := range corpus {
		items = append(items, serve.VerifyRequest{Spec: it.Spec, Method: it.Method})
		items = append(items, serve.VerifyRequest{Spec: it.Spec, Method: "gfp"})
	}
	body, _ := json.Marshal(serve.BatchRequest{Items: items})
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var res serve.BatchResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad batch line %q: %v", sc.Text(), err)
		}
		if seen[res.Index] || !res.OK || res.Verify == nil || !res.Verify.Proved {
			t.Fatalf("batch item %d: %+v", res.Index, res)
		}
		seen[res.Index] = true
	}
	resp.Body.Close()
	if len(seen) != len(items) {
		t.Fatalf("batch answered %d of %d items", len(seen), len(items))
	}

	// Failover: kill one backend; every spec must still verify (rehashed to
	// the survivor) with no client-visible error.
	b1.CloseClientConnections()
	b1.Close()
	for _, item := range corpus {
		resp, vr := verifyVia(t, base, item.Spec, item.Method)
		if resp.StatusCode != http.StatusOK || !vr.Proved {
			t.Fatalf("%s after backend death: status=%d proved=%v", item.Name, resp.StatusCode, vr.Proved)
		}
		if got := resp.Header.Get("X-VS3-Backend"); got != "smoke-2" {
			t.Fatalf("%s served by %q after smoke-1 died", item.Name, got)
		}
	}

	// Router stats: per-backend rows with identity, and the health sweep
	// (or passive failover marking) takes the dead backend out of rotation.
	var stats struct {
		Requests  int64 `json:"requests_proxied"`
		Failovers int64 `json:"failovers"`
		Backends  []struct {
			ServerID string `json:"server_id"`
			Healthy  bool   `json:"healthy"`
			Routed   int64  `json:"routed"`
		} `json:"backends"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		sresp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		stats.Backends = nil
		if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		sresp.Body.Close()
		alive := 0
		for _, b := range stats.Backends {
			if b.Healthy {
				alive++
			}
		}
		if alive == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead backend never left rotation: %+v", stats)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if stats.Requests == 0 || len(stats.Backends) != 2 {
		t.Fatalf("router stats: %+v", stats)
	}
}

// benchArm runs the default corpus against base and returns the report.
func benchArm(t *testing.T, base string, requests int) load.Result {
	t.Helper()
	res, err := load.Run(context.Background(), load.Options{
		BaseURL:     base,
		Concurrency: 4,
		Requests:    requests,
		ClientKey:   "bench",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incorrect != 0 || res.Errors != 0 || res.Aborted != 0 || res.Shed != 0 {
		t.Fatalf("arm %s degraded: %+v", base, res)
	}
	return res
}

// bench6Report is the BENCH_6.json schema.
type bench6Report struct {
	Report   string                 `json:"report"`
	Purpose  string                 `json:"purpose"`
	Host     string                 `json:"host"`
	GoMaxP   int                    `json:"gomaxprocs"`
	Corpus   int                    `json:"corpus_items"`
	Distinct int                    `json:"distinct_problems"`
	Requests int                    `json:"requests_per_arm"`
	Arms     map[string]load.Result `json:"arms"`
	Findings struct {
		AffinityQueries        int64   `json:"affinity_smt_queries"`
		RandomQueries          int64   `json:"random_smt_queries"`
		QueriesSavedRatio      float64 `json:"random_over_affinity_queries"`
		AffinityHitRatio       float64 `json:"affinity_cache_hit_ratio"`
		RandomHitRatio         float64 `json:"random_cache_hit_ratio"`
		AffinityP95MS          float64 `json:"affinity_p95_ms"`
		RandomP95MS            float64 `json:"random_p95_ms"`
		VerdictsIdenticalToOne bool    `json:"verdicts_identical_to_single_node"`
	} `json:"findings"`
	Notes []string `json:"notes"`
}

// TestClusterBench is `make bench-cluster`: the head-to-head perf proof for
// the tentpole. Three arms over the same mixed corpus — one backend alone,
// two backends behind affinity routing, two behind random routing — and the
// claim under test is that affinity keeps the fleet warm: fewer from-scratch
// SMT queries and a higher cache-hit ratio than random routing, with
// verdicts identical everywhere. Writes BENCH_6.json when VS3_BENCH_OUT is
// set.
func TestClusterBench(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster benchmark is not a -short test")
	}
	corpus := load.DefaultCorpus()
	distinct := map[string]bool{}
	for _, it := range corpus {
		distinct[serve.ProblemKey(it.Spec)] = true
	}
	requests := 3 * len(corpus)

	arms := map[string]load.Result{}

	// Arm 1: single node, no router — the verdict baseline.
	single := startBackend(t, "bench-single")
	arms["single"] = benchArm(t, single.URL, requests)

	// Arm 2: two fresh backends behind affinity routing.
	a1, a2 := startBackend(t, "bench-aff-1"), startBackend(t, "bench-aff-2")
	affBase, _, affStop := startRouter(t, route.Config{
		Backends: []string{a1.URL, a2.URL}, Policy: route.Affinity,
	})
	arms["affinity"] = benchArm(t, affBase, requests)
	affStop()

	// Arm 3: two fresh backends behind random routing — the control.
	r1, r2 := startBackend(t, "bench-rand-1"), startBackend(t, "bench-rand-2")
	randBase, _, randStop := startRouter(t, route.Config{
		Backends: []string{r1.URL, r2.URL}, Policy: route.Random,
	})
	arms["random"] = benchArm(t, randBase, requests)
	randStop()

	aff, rnd := arms["affinity"], arms["random"]
	t.Logf("single:   %d queries, hit ratio %.3f, p95 %.1fms", arms["single"].SMTQueries, arms["single"].CacheHitRatio, arms["single"].P95MS)
	t.Logf("affinity: %d queries, hit ratio %.3f, p95 %.1fms", aff.SMTQueries, aff.CacheHitRatio, aff.P95MS)
	t.Logf("random:   %d queries, hit ratio %.3f, p95 %.1fms", rnd.SMTQueries, rnd.CacheHitRatio, rnd.P95MS)

	if aff.SMTQueries >= rnd.SMTQueries {
		t.Errorf("affinity made %d from-scratch queries, random %d — affinity should be strictly cheaper",
			aff.SMTQueries, rnd.SMTQueries)
	}
	if aff.CacheHitRatio <= rnd.CacheHitRatio {
		t.Errorf("affinity hit ratio %.3f not above random %.3f", aff.CacheHitRatio, rnd.CacheHitRatio)
	}

	out := os.Getenv("VS3_BENCH_OUT")
	if out == "" {
		return
	}
	rep := bench6Report{
		Report:   "BENCH_6",
		Purpose:  "affinity vs random routing across 2 vs3d backends on the default mixed corpus (cmd/vs3load harness)",
		Host:     runtime.GOOS + "/" + runtime.GOARCH,
		GoMaxP:   runtime.GOMAXPROCS(0),
		Corpus:   len(corpus),
		Distinct: len(distinct),
		Requests: requests,
		Arms:     arms,
	}
	rep.Findings.AffinityQueries = aff.SMTQueries
	rep.Findings.RandomQueries = rnd.SMTQueries
	if aff.SMTQueries > 0 {
		rep.Findings.QueriesSavedRatio = float64(rnd.SMTQueries) / float64(aff.SMTQueries)
	}
	rep.Findings.AffinityHitRatio = aff.CacheHitRatio
	rep.Findings.RandomHitRatio = rnd.CacheHitRatio
	rep.Findings.AffinityP95MS = aff.P95MS
	rep.Findings.RandomP95MS = rnd.P95MS
	rep.Findings.VerdictsIdenticalToOne = true // benchArm fails the test on any verdict mismatch in any arm
	rep.Notes = []string{
		"backends are separate serve.Server instances (own session pools, SMT solvers, validity caches, core stores) on distinct TCP ports within one test process; the process-global formula interner is shared, which affects allocation only, not the SMT query/cache counters compared here",
		"every arm starts cold; each runs 3 passes over the corpus at concurrency 4",
		"verdicts_identical_to_single_node: benchArm fails the run if any arm returns a verdict differing from the corpus expectation, and the single-node arm establishes that expectation holds there too",
		fmt.Sprintf("reference box GOMAXPROCS=%d; latency comparisons across arms share one machine, so queries/hit-ratio are the primary signal", runtime.GOMAXPROCS(0)),
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
