package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/route"
	"repro/internal/rpc"
	"repro/internal/serve"
)

// rpcBackend is one real engine backend serving both its HTTP surface and
// an advertised binary rpc listener — what `vs3d -rpc :0` boots, assembled
// in-process so the test can wrap the rpc handler and read its gauges.
type rpcBackend struct {
	srv  *serve.Server
	hts  *httptest.Server
	rsrv *rpc.Server
}

func startRPCBackend(t *testing.T, cfg serve.Config, wrap func(rpc.Handler) rpc.Handler) *rpcBackend {
	t.Helper()
	if cfg.Pool == 0 {
		cfg.Pool = 2
	}
	srv := serve.New(cfg)
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)
	var h rpc.Handler = srv
	if wrap != nil {
		h = wrap(h)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rsrv := rpc.NewServer(h, rpc.ServerConfig{})
	go func() { _ = rsrv.Serve(ln) }()
	t.Cleanup(func() { ln.Close(); rsrv.Close() })
	srv.AdvertiseRPC(ln.Addr().String())
	srv.SetRPCStats(rsrv.Stats)
	return &rpcBackend{srv: srv, hts: hts, rsrv: rsrv}
}

// delayRPC stalls every rpc dispatch, emulating a deeply queued backend. A
// cancel during the stall is counted and answered 499 without touching the
// engine.
type delayRPC struct {
	inner    rpc.Handler
	delay    time.Duration
	canceled atomic.Int64
}

func (d *delayRPC) ServeRPC(ctx context.Context, req rpc.Request) rpc.Response {
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		d.canceled.Add(1)
		return rpc.Response{Status: 499, Body: []byte("{\"error\":\"canceled before start\"}\n")}
	}
	return d.inner.ServeRPC(ctx, req)
}

// routerStats is the slice of the router's /v1/stats body the smoke test
// reads.
type routerStats struct {
	HedgeFired int64 `json:"hedge_fired"`
	HedgeWon   int64 `json:"hedge_won"`
	RPCConns   int64 `json:"rpc_conns"`
	Backends   []struct {
		URL   string `json:"url"`
		Proto string `json:"proto"`
	} `json:"backends"`
}

func fetchRouterStats(t *testing.T, base string) routerStats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st routerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitProto blocks until the router reports the wanted transport for every
// listed backend (the health sweep has to discover X-VS3-RPC first).
func waitProto(t *testing.T, base string, want map[string]string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fetchRouterStats(t, base)
		ok := true
		for _, b := range st.Backends {
			if w, listed := want[b.URL]; listed && b.Proto != w {
				ok = false
			}
		}
		if ok && len(st.Backends) == len(want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never reached wanted protos %v: %+v", want, st.Backends)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func callVerify(t *testing.T, c *rpc.Client, spec, method string) (rpc.Response, serve.VerifyResponse) {
	t.Helper()
	resp, err := c.Call(context.Background(), rpc.Request{Kind: rpc.KindVerify, Method: method, Spec: spec})
	if err != nil {
		t.Fatalf("rpc call: %v", err)
	}
	var vr serve.VerifyResponse
	if resp.Status == http.StatusOK {
		if err := json.Unmarshal(resp.Body, &vr); err != nil {
			t.Fatalf("decoding %q: %v", resp.Body, err)
		}
	}
	return resp, vr
}

// TestRPCSmoke is `make rpc-smoke`: the binary transport end to end over
// real TCP daemons — single verifies through the router's rpc front, batch
// fan-out over rpc backends, HTTP fallback for a backend that does not
// advertise rpc, mid-flight cancellation reaching the backend, and hedging
// with counters on /metrics.
func TestRPCSmoke(t *testing.T) {
	corpus := load.SmokeCorpus()

	// --- Fleet 1: two rpc backends + one HTTP-only backend. ---
	b1 := startRPCBackend(t, serve.Config{ID: "rpc-1"}, nil)
	b2 := startRPCBackend(t, serve.Config{ID: "rpc-2"}, nil)
	b3 := startBackend(t, "http-only")
	base, rpcBase, stop := startRouter(t, route.Config{Backends: []string{b1.hts.URL, b2.hts.URL, b3.URL}})
	defer stop()
	waitProto(t, base, map[string]string{b1.hts.URL: "rpc", b2.hts.URL: "rpc", b3.URL: "http"})

	c := rpc.NewClient(rpcBase, rpc.ClientConfig{})
	defer c.Close()

	// Single verifies over the binary front: correct verdicts, problem keys,
	// and a backend identity on every response.
	for _, item := range corpus {
		resp, vr := callVerify(t, c, item.Spec, item.Method)
		if resp.Status != http.StatusOK || !vr.Proved {
			t.Fatalf("%s over rpc: status=%d proved=%v body=%s", item.Name, resp.Status, vr.Proved, resp.Body)
		}
		if resp.ProblemKey != serve.ProblemKey(item.Spec) {
			t.Fatalf("%s: problem key %q", item.Name, resp.ProblemKey)
		}
		if resp.Backend == "" {
			t.Fatalf("%s: no backend identity on the rpc response", item.Name)
		}
	}

	// HTTP fallback: a spec owned by the HTTP-only backend must still verify
	// through the binary front (router rpc in, HTTP out). Trailing newlines
	// vary the problem key until one lands on it.
	spec, served := corpus[0].Spec, false
	for i := 0; i < 10_000; i++ {
		resp, vr := callVerify(t, c, spec, "lfp")
		if resp.Status != http.StatusOK || !vr.Proved {
			t.Fatalf("fallback probe: status=%d proved=%v", resp.Status, vr.Proved)
		}
		if resp.Backend == "http-only" {
			served = true
			break
		}
		spec = corpus[0].Spec + strings.Repeat("\n", i+1)
	}
	if !served {
		t.Fatal("no spec variant routed to the HTTP-only backend")
	}

	// Batch through the router's HTTP front: the rpc backends take the
	// multiplexed per-item path, the HTTP-only backend the NDJSON path.
	var items []serve.VerifyRequest
	for _, it := range corpus {
		items = append(items, serve.VerifyRequest{Spec: it.Spec, Method: it.Method})
		items = append(items, serve.VerifyRequest{Spec: it.Spec, Method: "gfp"})
	}
	body, _ := json.Marshal(serve.BatchRequest{Items: items})
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var res serve.BatchResult
		if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
			t.Fatalf("bad batch line %q: %v", sc.Text(), err)
		}
		if seen[res.Index] || !res.OK || res.Verify == nil || !res.Verify.Proved {
			t.Fatalf("batch item %d: %+v", res.Index, res)
		}
		seen[res.Index] = true
	}
	resp.Body.Close()
	if len(seen) != len(items) {
		t.Fatalf("batch answered %d of %d items", len(seen), len(items))
	}
	if st := fetchRouterStats(t, base); st.RPCConns == 0 {
		t.Error("router reports zero open rpc connections after rpc traffic")
	}

	// --- Fleet 2: cancellation. A client abandoning its stream must reach
	// the stalled backend as a context cancel, leaving no open stream. ---
	slow := &delayRPC{delay: 30 * time.Second}
	bSlow := startRPCBackend(t, serve.Config{ID: "stalled"}, func(h rpc.Handler) rpc.Handler { slow.inner = h; return slow })
	cbase, crpc, cstop := startRouter(t, route.Config{Backends: []string{bSlow.hts.URL}})
	defer cstop()
	waitProto(t, cbase, map[string]string{bSlow.hts.URL: "rpc"})

	cc := rpc.NewClient(crpc, rpc.ClientConfig{})
	defer cc.Close()
	cctx, ccancel := context.WithCancel(context.Background())
	callErr := make(chan error, 1)
	go func() {
		_, err := cc.Call(cctx, rpc.Request{Kind: rpc.KindVerify, Method: "lfp", Spec: corpus[0].Spec})
		callErr <- err
	}()
	time.Sleep(100 * time.Millisecond)
	ccancel()
	select {
	case err := <-callErr:
		if err == nil {
			t.Fatal("cancelled rpc call returned no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled rpc call never returned")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, streams, _, _ := bSlow.rsrv.Stats()
		if slow.canceled.Load() >= 1 && streams == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancel never drained the backend: canceled=%d streams=%d", slow.canceled.Load(), streams)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// --- Fleet 3: hedging. With the owner stalled, the ring successor must
	// answer and the counters must show the race. ---
	slow2 := &delayRPC{delay: 5 * time.Second}
	bSlow2 := startRPCBackend(t, serve.Config{ID: "hedge-slow"}, func(h rpc.Handler) rpc.Handler { slow2.inner = h; return slow2 })
	bFast := startRPCBackend(t, serve.Config{ID: "hedge-fast"}, nil)
	hbase, _, hstop := startRouter(t, route.Config{
		Backends: []string{bSlow2.hts.URL, bFast.hts.URL},
		Hedge:    true,
		HedgeMin: 5 * time.Millisecond,
		HedgeMax: 50 * time.Millisecond,
	})
	defer hstop()
	waitProto(t, hbase, map[string]string{bSlow2.hts.URL: "rpc", bFast.hts.URL: "rpc"})

	hedged := false
	spec = corpus[1].Spec
	for i := 0; i < 50 && !hedged; i++ {
		vb, _ := json.Marshal(serve.VerifyRequest{Spec: spec, Method: "lfp", TimeoutMS: 30_000})
		hresp, err := http.Post(hbase+"/v1/verify", "application/json", bytes.NewReader(vb))
		if err != nil {
			t.Fatal(err)
		}
		var vr serve.VerifyResponse
		if err := json.NewDecoder(hresp.Body).Decode(&vr); err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		if hresp.StatusCode != http.StatusOK || !vr.Proved {
			t.Fatalf("hedge probe %d: status=%d proved=%v", i, hresp.StatusCode, vr.Proved)
		}
		st := fetchRouterStats(t, hbase)
		if st.HedgeWon >= 1 {
			if got := hresp.Header.Get("X-VS3-Backend"); got != "hedge-fast" {
				t.Fatalf("hedged winner was %q, want hedge-fast", got)
			}
			hedged = true
		}
		spec = corpus[1].Spec + strings.Repeat("\n", i+1)
	}
	if !hedged {
		t.Fatal("no probe ever hedged onto the fast backend")
	}
	mresp, err := http.Get(hbase + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbuf := new(bytes.Buffer)
	_, _ = mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"vs3router_hedge_fired_total", "vs3router_hedge_won_total", "vs3router_rpc_conns"} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestLoadProtoRPC drives the load harness in -proto rpc mode against a
// single rpc-advertising backend: discovery via X-VS3-RPC, all verdicts
// correct over the binary transport, stats deltas still read over HTTP.
func TestLoadProtoRPC(t *testing.T) {
	b := startRPCBackend(t, serve.Config{ID: "load-rpc"}, nil)
	res, err := load.Run(context.Background(), load.Options{
		BaseURL:     b.hts.URL,
		Corpus:      load.SmokeCorpus(),
		Concurrency: 2,
		Requests:    8,
		Proto:       "rpc",
		ClientKey:   "rpc-smoke",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 8 || res.Incorrect != 0 || res.Errors != 0 {
		t.Fatalf("rpc load run: %+v", res)
	}
	if res.SMTQueries+res.SMTCacheHits == 0 {
		t.Error("stats probe over HTTP saw no SMT activity from the rpc run")
	}
}
