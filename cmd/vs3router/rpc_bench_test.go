package main

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/load"
	"repro/internal/route"
	"repro/internal/rpc"
	"repro/internal/serve"
	"repro/internal/store"
)

// openBenchStore opens a throwaway knowledge store for one bench backend,
// closed after the backend's servers shut down (t.Cleanup runs LIFO).
func openBenchStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{
		Params: serve.Config{}.Core.SMT.StoreParams(),
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { _ = st.Close() })
	return st
}

// loadArm runs corpus against base over the given transport and fails the
// test on any wrong verdict or transport error.
func loadArm(t *testing.T, base, proto string, corpus []load.Item, requests int) load.Result {
	t.Helper()
	res, err := load.Run(context.Background(), load.Options{
		BaseURL:     base,
		Corpus:      corpus,
		Concurrency: 4,
		Requests:    requests,
		Proto:       proto,
		ClientKey:   "bench",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Incorrect != 0 || res.Errors != 0 || res.Aborted != 0 || res.Shed != 0 {
		t.Fatalf("arm %s (%s) degraded: %+v", base, proto, res)
	}
	return res
}

// TestRPCBench is `make bench-rpc`: the tentpole perf proof for the binary
// transport. Two comparisons over real TCP daemons:
//
//   - transport: the same store-backed two-backend fleet driven through an
//     HTTP-pinned router (HTTP/JSON end to end) and through a binary router
//     (VS3R front, VS3R backend legs), measured on the outcome-replay path
//     so the wire dominates each request. Binary must win p95 latency and
//     throughput with identical verdicts.
//   - hedging: a fleet with one artificially stalled backend, driven through
//     an unhedged and a hedged router. Hedging must cap the stalled owner's
//     tail (lower p99).
//
// Writes BENCH_9.json to VS3_BENCH_OUT. Unlike the other bench tests, whose
// gates count deterministic work (SMT queries, FM eliminations), these gates
// are wall-clock comparisons — meaningless when the rest of the suite is
// competing for the same cores — so the test only runs in its dedicated
// `make bench-rpc` invocation (VS3_BENCH_OUT set) and skips under `go test
// ./...`.
func TestRPCBench(t *testing.T) {
	if testing.Short() {
		t.Skip("rpc benchmark is not a -short test")
	}
	if os.Getenv("VS3_BENCH_OUT") == "" {
		t.Skip("wall-clock gated benchmark; run via make bench-rpc")
	}
	corpus := load.DefaultCorpus()
	distinct := map[string]bool{}
	for _, it := range corpus {
		distinct[serve.ProblemKey(it.Spec)] = true
	}
	requests := 10 * len(corpus)
	arms := map[string]load.Result{}

	// --- Transport comparison: same fleet, two routers. ---
	// The transport backends run with a knowledge store (the PR-8
	// production configuration): after the warmup pass every measured
	// request is answered by outcome replay — sub-millisecond engine
	// work — so the percentiles compare the wire paths rather than
	// engine compute, which is identical on both wires and on a small
	// host would drown the transport margin in scheduler noise.
	b1 := startRPCBackend(t, serve.Config{ID: "bench-rpc-1", Store: openBenchStore(t)}, nil)
	b2 := startRPCBackend(t, serve.Config{ID: "bench-rpc-2", Store: openBenchStore(t)}, nil)
	urls := []string{b1.hts.URL, b2.hts.URL}
	httpBase, _, httpStop := startRouter(t, route.Config{Backends: urls, DisableRPC: true})
	defer httpStop()
	rpcBase, _, rpcStop := startRouter(t, route.Config{Backends: urls})
	defer rpcStop()
	waitProto(t, rpcBase, map[string]string{b1.hts.URL: "rpc", b2.hts.URL: "rpc"})

	// Warm the fleet once so both arms measure transport over the engine's
	// warm path (problem-cache hits), not cold verification order. The
	// full-corpus passes double as the verdict gate on each wire: loadArm
	// fails the run on any verdict differing from the corpus expectation.
	loadArm(t, httpBase, "http", corpus, len(corpus))
	loadArm(t, rpcBase, "rpc", corpus, len(corpus))

	// Alternate the arms best-of-3: even on the replay path one scheduler
	// hiccup on a small box can swamp the transport margin in a single
	// run's p95. Each arm keeps its lowest-p95 run and both gates read
	// that same run, so the report never mixes runs.
	for i := 0; i < 3; i++ {
		h := loadArm(t, httpBase, "http", corpus, requests)
		r := loadArm(t, rpcBase, "rpc", corpus, requests)
		if i == 0 || h.P95MS < arms["http"].P95MS {
			arms["http"] = h
		}
		if i == 0 || r.P95MS < arms["rpc"].P95MS {
			arms["rpc"] = r
		}
	}

	// --- Hedging comparison: one stalled backend, two routers. ---
	// Both backends carry a store here too, warmed directly below on the
	// whole corpus (the stall wraps only the rpc dispatch, so the direct
	// HTTP warmup is fast): a hedge fired at the ring successor then
	// replays instantly instead of recomputing a problem only the owner
	// has warm, so the arms compare hedging policy, not engine load.
	stall := &delayRPC{delay: 400 * time.Millisecond}
	bSlow := startRPCBackend(t, serve.Config{ID: "bench-stalled", Store: openBenchStore(t)}, func(h rpc.Handler) rpc.Handler { stall.inner = h; return stall })
	bOK := startRPCBackend(t, serve.Config{ID: "bench-ok", Store: openBenchStore(t)}, nil)
	degraded := []string{bSlow.hts.URL, bOK.hts.URL}
	unhedgedBase, _, unhedgedStop := startRouter(t, route.Config{Backends: degraded})
	defer unhedgedStop()
	hedgedBase, _, hedgedStop := startRouter(t, route.Config{
		Backends: degraded,
		Hedge:    true,
		HedgeMin: 5 * time.Millisecond,
		HedgeMax: 25 * time.Millisecond,
	})
	defer hedgedStop()
	waitProto(t, unhedgedBase, map[string]string{bSlow.hts.URL: "rpc", bOK.hts.URL: "rpc"})
	waitProto(t, hedgedBase, map[string]string{bSlow.hts.URL: "rpc", bOK.hts.URL: "rpc"})

	// Warm both stores on the whole corpus, hitting each backend directly
	// so the successor holds every owner's outcomes too.
	loadArm(t, bSlow.hts.URL, "http", corpus, len(corpus))
	loadArm(t, bOK.hts.URL, "http", corpus, len(corpus))
	arms["slow_unhedged"] = loadArm(t, unhedgedBase, "http", corpus, 2*len(corpus))
	arms["slow_hedged"] = loadArm(t, hedgedBase, "http", corpus, 2*len(corpus))
	hedgeStats := fetchRouterStats(t, hedgedBase)

	httpArm, rpcArm := arms["http"], arms["rpc"]
	unhedged, hedged := arms["slow_unhedged"], arms["slow_hedged"]
	t.Logf("http:     p50=%.2f p95=%.2f p99=%.2f ms, %.1f req/s", httpArm.P50MS, httpArm.P95MS, httpArm.P99MS, httpArm.ThroughputRPS)
	t.Logf("rpc:      p50=%.2f p95=%.2f p99=%.2f ms, %.1f req/s", rpcArm.P50MS, rpcArm.P95MS, rpcArm.P99MS, rpcArm.ThroughputRPS)
	t.Logf("unhedged: p99=%.1f ms; hedged: p99=%.1f ms (fired=%d won=%d)", unhedged.P99MS, hedged.P99MS, hedgeStats.HedgeFired, hedgeStats.HedgeWon)

	if rpcArm.P95MS >= httpArm.P95MS {
		t.Errorf("rpc p95 %.2fms not below http p95 %.2fms", rpcArm.P95MS, httpArm.P95MS)
	}
	if rpcArm.ThroughputRPS <= httpArm.ThroughputRPS {
		t.Errorf("rpc throughput %.1f req/s not above http %.1f req/s", rpcArm.ThroughputRPS, httpArm.ThroughputRPS)
	}
	if hedged.P99MS >= unhedged.P99MS {
		t.Errorf("hedged p99 %.1fms not below unhedged %.1fms", hedged.P99MS, unhedged.P99MS)
	}
	if hedgeStats.HedgeWon == 0 {
		t.Error("hedged arm never won a race against the stalled owner")
	}

	out := os.Getenv("VS3_BENCH_OUT")
	if out == "" {
		return
	}
	rep := bench.Bench9Report{
		Report:   "BENCH_9",
		Purpose:  "binary VS3R transport vs HTTP/JSON over a store-backed 2-backend fleet on the outcome-replay path, plus hedged vs unhedged routing over a fleet with one stalled backend (cmd/vs3load harness)",
		Host:     runtime.GOOS + "/" + runtime.GOARCH,
		GoMaxP:   runtime.GOMAXPROCS(0),
		Corpus:   len(corpus),
		Distinct: len(distinct),
		Requests: requests,
		Arms:     arms,
	}
	rep.Findings.HTTPP95MS = httpArm.P95MS
	rep.Findings.RPCP95MS = rpcArm.P95MS
	if rpcArm.P95MS > 0 {
		rep.Findings.P95SpeedupX = httpArm.P95MS / rpcArm.P95MS
	}
	rep.Findings.HTTPThroughput = httpArm.ThroughputRPS
	rep.Findings.RPCThroughput = rpcArm.ThroughputRPS
	if httpArm.ThroughputRPS > 0 {
		rep.Findings.ThroughputGainX = rpcArm.ThroughputRPS / httpArm.ThroughputRPS
	}
	rep.Findings.UnhedgedP99MS = unhedged.P99MS
	rep.Findings.HedgedP99MS = hedged.P99MS
	if hedged.P99MS > 0 {
		rep.Findings.P99ReductionX = unhedged.P99MS / hedged.P99MS
	}
	rep.Findings.HedgeFired = hedgeStats.HedgeFired
	rep.Findings.HedgeWon = hedgeStats.HedgeWon
	rep.Findings.VerdictsIdentical = true // loadArm fails the run on any verdict mismatch in any arm
	rep.Notes = []string{
		"transport arms share one warmed fleet: two serve.Server backends (own session pools, SMT state, and a knowledge store — the PR-8 production configuration) on distinct TCP ports in one test process; only the wire path differs (HTTP/JSON end to end vs VS3R front + VS3R backend legs)",
		"transport arms measure 10 passes over the full corpus at concurrency 4 after a per-wire full-corpus warmup pass (which doubles as the verdict gate on each wire); every measured request is answered by store outcome replay, so the wire path is the bulk of each request and engine compute — identical on both wires — does not mask the transport margin",
		"transport arms alternate best-of-3 (http, rpc, http, rpc, ...) and each arm reports its lowest-p95 run, stripping single-run scheduler noise on small hosts; both findings read the same chosen run per arm",
		"the hedging arms share a store-backed fleet (both stores warmed on the whole corpus, so a hedge replays instead of recomputing) whose ring owner for ~half the keys stalls 400ms before rpc dispatch; the hedged router fires at the ring successor after an adaptive delay clamped to [5ms, 25ms]",
		"verdicts_identical_across_arms: loadArm fails the run if any arm returns a verdict differing from the corpus expectation",
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
