package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// TestWarmRestart drives the real daemon through a full lifecycle twice on
// one knowledge-store directory: boot, solve, SIGTERM-style drain, then boot
// again and assert the second lifetime answers the same problem from the
// store — warm-loaded, replayed outcome, zero from-scratch SMT queries.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	spec := `
program ArrayInit(array A, n) {
  i := 0;
  while loop (i < n) {
    A[i] := 0;
    i := i + 1;
  }
  assert(forall j. (0 <= j && j < n) => A[j] = 0);
}
template loop: forall j. ?v => A[j] = 0;
predicates v: j >= 0, j < i, j <= i, j < n, j <= n;
`

	lifetime := func() (serve.VerifyResponse, bool, int64) {
		st, err := store.Open(dir, store.Options{
			Params: serve.Config{}.Core.SMT.StoreParams(),
			Logf:   t.Logf,
		})
		if err != nil {
			t.Fatalf("store.Open: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		base := "http://" + ln.Addr().String()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		cfg := serve.Config{Pool: 2, MaxTimeout: 30 * time.Second, Store: st}
		go func() { done <- run(ctx, ln, nil, cfg, log.New(io.Discard, "", 0)) }()
		waitHealthy(t, base)

		body, _ := json.Marshal(map[string]any{"spec": spec, "method": "lfp"})
		resp, err := http.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out serve.VerifyResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("verify: status %d", resp.StatusCode)
		}

		sresp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var stats struct {
			StoreColdStart   bool  `json:"store_cold_start"`
			Queries          int64 `json:"smt_queries"`
			AssumptionProbes int64 `json:"assumption_probes"`
		}
		if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		sresp.Body.Close()

		cancel() // SIGTERM path: drain, close store, exit
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exited with %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
		return out, stats.StoreColdStart, stats.Queries + stats.AssumptionProbes
	}

	cold, coldStart, coldWork := lifetime()
	if !cold.Proved || cold.FromStore {
		t.Fatalf("first lifetime: proved=%v from_store=%v", cold.Proved, cold.FromStore)
	}
	if !coldStart {
		t.Error("first lifetime did not report a cold store")
	}
	if coldWork == 0 {
		t.Fatal("first lifetime ran zero SMT queries/probes")
	}

	warm, warmStart, warmWork := lifetime()
	if warmStart {
		t.Error("second lifetime reported a cold store")
	}
	if !warm.FromStore {
		t.Error("second lifetime did not replay the outcome from the store")
	}
	if warm.Proved != cold.Proved || warm.Steps != cold.Steps {
		t.Errorf("restart changed the outcome: proved %v→%v steps %d→%d",
			cold.Proved, warm.Proved, cold.Steps, warm.Steps)
	}
	if warmWork != 0 {
		t.Errorf("second lifetime ran %d SMT queries/probes, want 0", warmWork)
	}
}
