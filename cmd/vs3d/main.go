// Command vs3d serves the verifier as a long-lived HTTP daemon, amortizing
// the engine's caches (interned formulas, compiled fillers, incremental SMT
// contexts, the shared unsat-core store) across requests instead of
// rebuilding them per process.
//
// Usage:
//
//	vs3d [-addr :8080] [-pool N] [-queue N] [-timeout 60s] [-max-timeout 5m]
//
// Endpoints (see internal/serve and the README "Serving" section):
//
//	POST /v1/verify         run one algorithm on a vs3 spec
//	POST /v1/preconditions  infer maximally-weak preconditions (§6)
//	GET  /v1/stats          pool, queue, and solver-cache counters
//	GET  /healthz           liveness probe
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	pool := flag.Int("pool", 0, "verifier sessions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued requests beyond the pool before 429 (0 = 4×pool)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
	flag.Parse()

	cfg := serve.Config{
		Pool:           *pool,
		Queue:          *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vs3d:", err)
		os.Exit(1)
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, ln, cfg, log.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "vs3d:", err)
		os.Exit(1)
	}
}

// run serves on ln until ctx is cancelled, then drains in-flight requests
// (bounded by the configured max timeout) before returning. Split from main
// so the smoke test can drive the real daemon on an ephemeral port.
func run(ctx context.Context, ln net.Listener, cfg serve.Config, logger *log.Logger) error {
	srv := &http.Server{Handler: serve.New(cfg).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Printf("vs3d: serving on %s", ln.Addr())
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Printf("vs3d: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.MaxTimeout+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
