// Command vs3d serves the verifier as a long-lived HTTP daemon, amortizing
// the engine's caches (interned formulas, compiled fillers, incremental SMT
// contexts, the shared unsat-core store) across requests instead of
// rebuilding them per process. Scale horizontally by running N instances
// behind cmd/vs3router, which keeps each instance warm for its
// consistent-hash slice of the problem keyspace.
//
// Usage:
//
//	vs3d [-addr :8080] [-rpc :8081] [-rpc-write-timeout 10s] [-id NAME] [-pool N] [-queue N]
//	     [-timeout 60s] [-max-timeout 5m]
//	     [-store DIR] [-store-fsync] [-store-flush 250ms]
//	     [-store-compact] [-store-compact-min 1048576] [-store-compact-ratio 0.5]
//
// With -rpc ADDR the daemon additionally serves the binary VS3R protocol on
// ADDR (persistent multiplexed connections, per-stream cancellation; see
// internal/rpc and DESIGN.md §16), sharing the same session pool, fair
// queue, store, and stats as the HTTP surface. The endpoint is advertised to
// routers in the X-VS3-RPC response header, so a vs3router in front upgrades
// to binary automatically.
//
// With -store DIR the daemon opens an on-disk knowledge store in DIR:
// validity/consistency verdicts, theory lemmas, unsat cores, and whole
// solved-problem outcomes warm-load at startup and are written behind while
// serving, so a restarted daemon resumes with everything its predecessor
// learned instead of re-deriving it (see DESIGN.md §15). The append-only log
// is compacted generationally — automatically once it crosses
// -store-compact-min bytes with a garbage ratio above -store-compact-ratio,
// on demand via POST /v1/compact, or one-shot with -store-compact (compact
// and exit, for cron/maintenance windows; see DESIGN.md §17).
//
// Endpoints (see internal/serve and the README "Serving" section):
//
//	POST /v1/verify         run one algorithm on a vs3 spec
//	POST /v1/preconditions  infer maximally-weak preconditions (§6)
//	POST /v1/batch          many problems, one NDJSON result stream
//	GET  /v1/stats          pool, queue, and solver-cache counters
//	GET  /metrics           the same counters in Prometheus text format
//	GET  /healthz           liveness probe (503 once draining)
//
// On SIGINT/SIGTERM the daemon drains: /healthz flips to 503 so routers
// stop sending new work, in-flight requests finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/rpc"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	rpcAddr := flag.String("rpc", "", "binary rpc listen address (empty = HTTP only)")
	id := flag.String("id", "", "backend identity reported in X-VS3-Backend and stats (default vs3d-<host>-<pid>)")
	pool := flag.Int("pool", 0, "verifier sessions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queued requests beyond the pool before 429 (0 = 4×pool)")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
	flag.DurationVar(&rpcFrameTimeout, "rpc-write-timeout", rpcFrameTimeout, "per-frame rpc write deadline; a stalled peer's connection is torn down on expiry (negative = none)")
	storeDir := flag.String("store", "", "directory of the on-disk knowledge store (empty = no persistence)")
	storeFsync := flag.Bool("store-fsync", false, "fsync every write-behind flush, not just drain/close")
	storeFlush := flag.Duration("store-flush", 0, "write-behind flush interval (0 = store default)")
	storeCompact := flag.Bool("store-compact", false, "compact the -store log to a fresh generation, then exit")
	compactMin := flag.Int64("store-compact-min", 0, "log bytes before auto-compaction considers running (0 = store default, 1MiB)")
	compactRatio := flag.Float64("store-compact-ratio", 0, "garbage ratio (dead bytes / log bytes) that triggers auto-compaction (0 = store default, 0.5)")
	flag.Parse()

	cfg := serve.Config{
		ID:             *id,
		Pool:           *pool,
		Queue:          *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	}
	if *storeCompact && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "vs3d: -store-compact requires -store DIR")
		os.Exit(1)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{
			Params:              cfg.Core.SMT.StoreParams(),
			Fsync:               *storeFsync,
			FlushInterval:       *storeFlush,
			CompactMinBytes:     *compactMin,
			CompactGarbageRatio: *compactRatio,
			Logf:                log.Printf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vs3d: open store:", err)
			os.Exit(1)
		}
		cfg.Store = st
	}
	if *storeCompact {
		reclaimed, err := cfg.Store.Compact()
		if cerr := cfg.Store.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "vs3d: compact store:", err)
			os.Exit(1)
		}
		log.Printf("vs3d: compacted store %s: reclaimed %d bytes", *storeDir, reclaimed)
		return
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vs3d:", err)
		os.Exit(1)
	}
	var rpcLn net.Listener
	if *rpcAddr != "" {
		rpcLn, err = net.Listen("tcp", *rpcAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vs3d:", err)
			os.Exit(1)
		}
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, ln, rpcLn, cfg, log.Default()); err != nil {
		fmt.Fprintln(os.Stderr, "vs3d:", err)
		os.Exit(1)
	}
}

// run serves on ln until ctx is cancelled, then drains: /healthz flips to
// 503 (taking the backend out of router rotation), in-flight requests
// finish (bounded by the configured max timeout), and the knowledge store —
// already fsynced by StartDrain before the healthz flip — is closed so
// records appended by those last in-flight requests reach disk too. Split
// from main so the smoke tests can drive the real daemon on an ephemeral
// port.
// rpcFrameTimeout is the per-frame write deadline run hands the rpc server
// (main overrides it from -rpc-write-timeout).
var rpcFrameTimeout = 10 * time.Second

func run(ctx context.Context, ln, rpcLn net.Listener, cfg serve.Config, logger *log.Logger) error {
	backend := serve.New(cfg)
	var rpcSrv *rpc.Server
	if rpcLn != nil {
		rpcSrv = rpc.NewServer(backend, rpc.ServerConfig{Logf: logger.Printf, WriteTimeout: rpcFrameTimeout})
		backend.AdvertiseRPC(rpc.AdvertiseAddr(rpcLn.Addr()))
		backend.SetRPCStats(rpcSrv.Stats)
		go func() {
			if err := rpcSrv.Serve(rpcLn); err != nil && !errors.Is(err, net.ErrClosed) {
				logger.Printf("vs3d: rpc serve: %v", err)
			}
		}()
	}
	srv := &http.Server{Handler: backend.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if cfg.Store != nil {
		ss := cfg.Store.Stats()
		logger.Printf("vs3d: knowledge store %s: cold=%v loaded %d lemmas, %d cores, %d verdicts, %d consistency, %d outcomes in %dms",
			cfg.Store.Dir(), ss.ColdStart, ss.LoadedLemmas, ss.LoadedCores, ss.LoadedVerdicts, ss.LoadedConsistency, ss.LoadedOutcomes, ss.LoadMillis)
	}
	if rpcLn != nil {
		logger.Printf("vs3d: %s serving on %s (binary rpc on %s)", backend.ID(), ln.Addr(), rpcLn.Addr())
	} else {
		logger.Printf("vs3d: %s serving on %s", backend.ID(), ln.Addr())
	}
	select {
	case err := <-errc:
		if rpcSrv != nil {
			rpcLn.Close()
			rpcSrv.Close()
		}
		if cfg.Store != nil {
			_ = cfg.Store.Close()
		}
		return err
	case <-ctx.Done():
	}
	// Drain order: stop accepting new work on both surfaces first (healthz →
	// 503 takes the backend out of router rotation; GOAWAY tells rpc peers to
	// stop opening streams), let in-flight requests on both finish, then close
	// the store so records appended by those last requests reach disk.
	backend.StartDrain()
	if rpcSrv != nil {
		rpcSrv.StartDrain()
	}
	logger.Printf("vs3d: draining (healthz now 503), store flushed, waiting for in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.MaxTimeout+5*time.Second)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	if rpcSrv != nil {
		// GOAWAY stopped new streams; wait (bounded by the same shutdown
		// budget) for in-flight streams to answer before cutting connections.
		for {
			_, streams, _, _ := rpcSrv.Stats()
			if streams == 0 || shutCtx.Err() != nil {
				break
			}
			time.Sleep(25 * time.Millisecond)
		}
		rpcLn.Close()
		rpcSrv.Close()
	}
	if cfg.Store != nil {
		if err := cfg.Store.Close(); err != nil {
			logger.Printf("vs3d: store close: %v", err)
		}
	}
	if shutErr != nil {
		return shutErr
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
