package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestServeSmoke boots the real daemon (the same run() main drives) on an
// ephemeral port, exercises every endpoint over TCP, and shuts it down the
// way a SIGTERM would. This is `make serve-smoke`.
func TestServeSmoke(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rpcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, ln, rpcLn, serve.Config{Pool: 2, MaxTimeout: 30 * time.Second}, log.New(io.Discard, "", 0))
	}()

	waitHealthy(t, base)

	// The HTTP surface must advertise the binary rpc endpoint for routers.
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if got := hresp.Header.Get("X-VS3-RPC"); got != rpcLn.Addr().String() {
		t.Fatalf("X-VS3-RPC = %q, want %q", got, rpcLn.Addr().String())
	}

	spec := `
program ArrayInit(array A, n) {
  i := 0;
  while loop (i < n) {
    A[i] := 0;
    i := i + 1;
  }
  assert(forall j. (0 <= j && j < n) => A[j] = 0);
}
template loop: forall j. ?v => A[j] = 0;
predicates v: j >= 0, j < i, j <= i, j < n, j <= n;
`
	for _, method := range []string{"lfp", "gfp", "cfp"} {
		body, _ := json.Marshal(map[string]any{"spec": spec, "method": method})
		resp, err := http.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Proved  bool `json:"proved"`
			Aborted bool `json:"aborted"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !out.Proved {
			t.Fatalf("%s: status=%d proved=%v", method, resp.StatusCode, out.Proved)
		}
	}

	preSpec := `
program GuardedInit(array A, n, m) {
  i := 0;
  while loop (i < n) {
    A[i] := 0;
    i := i + 1;
  }
  assert(forall k. (0 <= k && k < m) => A[k] = 0);
}
template entry: ?pre;
template loop: ?v0 && (forall k. ?v1 => A[k] = 0);
predicates pre: m <= n, n <= m, m <= 0;
predicates v0: m <= n, i <= n, 0 <= i;
predicates v1: 0 <= k, k < i, k < n, k < m;
`
	body, _ := json.Marshal(map[string]any{"spec": preSpec})
	resp, err := http.Post(base+"/v1/preconditions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pre struct {
		Preconditions []string `json:"preconditions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pre); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(pre.Preconditions) == 0 {
		t.Fatalf("preconditions: status=%d %v", resp.StatusCode, pre.Preconditions)
	}

	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Requests int64 `json:"requests"`
		Queries  int64 `json:"smt_queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 4 {
		t.Errorf("stats requests = %d, want 4", st.Requests)
	}
	if st.Queries == 0 {
		t.Error("stats report zero SMT queries after four verification runs")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
