// Command vs3load is the load generator and regression gate for the
// serving tier: it drives a vs3d backend or a vs3router front tier with a
// mixed problem corpus at configurable concurrency and reports p50/p95/p99
// latency, throughput, shed rate, verdict correctness, and the server-side
// cache economics (from-scratch SMT queries, cache-hit ratio). Scale-out
// and persistence PRs run it before/after to prove they did not regress the
// warm path.
//
// Usage:
//
//	vs3load -url http://localhost:8079 [-c 8] [-n 200] [-timeout-ms 0]
//	        [-proto http|rpc] [-corpus default|smoke] [-client KEY] [-json out.json]
//	        [-restart-cmd 'systemctl restart vs3d'] [-restart-wait 30s]
//
// -proto rpc switches the verify traffic onto the target's binary VS3R
// endpoint (discovered from the X-VS3-RPC header on GET /healthz):
// persistent multiplexed connections instead of one HTTP request per
// verify. Health checks and /v1/stats probes stay on HTTP.
//
// With -restart-cmd the run becomes the warm-restart scenario: the normal
// load phase runs first, then the command is executed (it must restart the
// daemon at -url; vs3load polls /healthz up to -restart-wait), then exactly
// one corpus pass is driven against the restarted instance. The gate then
// also requires recovery: no wrong verdicts after the restart, p95 within
// 1.5x of the pre-restart phase, and a per-request from-scratch SMT query
// rate no worse than before — i.e. the daemon resumed warm from its
// knowledge store (vs3d -store) instead of recomputing.
//
// Exit status: 0 on success, 1 on setup errors, 2 when any verdict was
// incorrect, any request failed at the transport level, or (with
// -restart-cmd) the restarted daemon failed the recovery gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/load"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "vs3d or vs3router base URL")
	conc := flag.Int("c", 8, "concurrent requests")
	n := flag.Int("n", 0, "total requests (0 = 4 passes over the corpus)")
	timeoutMS := flag.Int64("timeout-ms", 0, "per-request deadline forwarded to the server (0 = server default)")
	proto := flag.String("proto", "http", "verify transport: http or rpc (binary VS3R)")
	corpusName := flag.String("corpus", "default", "corpus: default or smoke")
	clientKey := flag.String("client", "vs3load", "client key for per-client fair queueing")
	jsonOut := flag.String("json", "", "also write the report as JSON to this file")
	restartCmd := flag.String("restart-cmd", "", "shell command restarting the daemon mid-test (enables the warm-restart scenario)")
	restartWait := flag.Duration("restart-wait", 30*time.Second, "how long to wait for /healthz after -restart-cmd")
	flag.Parse()

	var corpus []load.Item
	switch *corpusName {
	case "default":
		corpus = load.DefaultCorpus()
	case "smoke":
		corpus = load.SmokeCorpus()
	default:
		fmt.Fprintf(os.Stderr, "vs3load: unknown corpus %q (want default or smoke)\n", *corpusName)
		os.Exit(1)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *proto != "http" && *proto != "rpc" {
		fmt.Fprintf(os.Stderr, "vs3load: unknown proto %q (want http or rpc)\n", *proto)
		os.Exit(1)
	}
	opts := load.Options{
		BaseURL:     *url,
		Corpus:      corpus,
		Concurrency: *conc,
		Requests:    *n,
		TimeoutMS:   *timeoutMS,
		ClientKey:   *clientKey,
		Proto:       *proto,
	}

	if *restartCmd != "" {
		res, err := load.RunRestart(ctx, opts, func(ctx context.Context) (string, error) {
			cmd := exec.CommandContext(ctx, "sh", "-c", *restartCmd)
			cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
			if err := cmd.Run(); err != nil {
				return "", fmt.Errorf("%q: %w", *restartCmd, err)
			}
			return "", load.WaitHealthy(ctx, nil, *url, *restartWait)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "vs3load:", err)
			os.Exit(1)
		}
		res.WriteReport(os.Stdout)
		if *jsonOut != "" {
			b, _ := json.MarshalIndent(res, "", "  ")
			if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "vs3load:", err)
				os.Exit(1)
			}
		}
		bad := res.Before.Incorrect + res.Before.Errors + res.After.Incorrect + res.After.Errors
		if bad > 0 || !res.Recovered {
			fmt.Fprintf(os.Stderr, "vs3load: REGRESSION: %d incorrect/errors, recovered=%v\n", bad, res.Recovered)
			os.Exit(2)
		}
		return
	}

	res, err := load.Run(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vs3load:", err)
		os.Exit(1)
	}
	res.WriteReport(os.Stdout)
	if *jsonOut != "" {
		b, _ := json.MarshalIndent(res, "", "  ")
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vs3load:", err)
			os.Exit(1)
		}
	}
	if res.Incorrect > 0 || res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "vs3load: REGRESSION: %d incorrect verdicts, %d errors\n", res.Incorrect, res.Errors)
		os.Exit(2)
	}
}
