// Command vs3load is the load generator and regression gate for the
// serving tier: it drives a vs3d backend or a vs3router front tier with a
// mixed problem corpus at configurable concurrency and reports p50/p95/p99
// latency, throughput, shed rate, verdict correctness, and the server-side
// cache economics (from-scratch SMT queries, cache-hit ratio). Scale-out
// and persistence PRs run it before/after to prove they did not regress the
// warm path.
//
// Usage:
//
//	vs3load -url http://localhost:8079 [-c 8] [-n 200] [-timeout-ms 0]
//	        [-corpus default|smoke] [-client KEY] [-json out.json]
//
// Exit status: 0 on success, 1 on setup errors, 2 when any verdict was
// incorrect or any request failed at the transport level (the gate).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/load"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "vs3d or vs3router base URL")
	conc := flag.Int("c", 8, "concurrent requests")
	n := flag.Int("n", 0, "total requests (0 = 4 passes over the corpus)")
	timeoutMS := flag.Int64("timeout-ms", 0, "per-request deadline forwarded to the server (0 = server default)")
	corpusName := flag.String("corpus", "default", "corpus: default or smoke")
	clientKey := flag.String("client", "vs3load", "client key for per-client fair queueing")
	jsonOut := flag.String("json", "", "also write the report as JSON to this file")
	flag.Parse()

	var corpus []load.Item
	switch *corpusName {
	case "default":
		corpus = load.DefaultCorpus()
	case "smoke":
		corpus = load.SmokeCorpus()
	default:
		fmt.Fprintf(os.Stderr, "vs3load: unknown corpus %q (want default or smoke)\n", *corpusName)
		os.Exit(1)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	res, err := load.Run(ctx, load.Options{
		BaseURL:     *url,
		Corpus:      corpus,
		Concurrency: *conc,
		Requests:    *n,
		TimeoutMS:   *timeoutMS,
		ClientKey:   *clientKey,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vs3load:", err)
		os.Exit(1)
	}
	res.WriteReport(os.Stdout)
	if *jsonOut != "" {
		b, _ := json.MarshalIndent(res, "", "  ")
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vs3load:", err)
			os.Exit(1)
		}
	}
	if res.Incorrect > 0 || res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "vs3load: REGRESSION: %d incorrect verdicts, %d errors\n", res.Incorrect, res.Errors)
		os.Exit(2)
	}
}
