package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/promtext"
)

// BackendStats is one backend's row in the router's /v1/stats response.
type BackendStats struct {
	URL string `json:"url"`
	// ServerID is the backend's self-reported identity (X-VS3-Backend),
	// empty until the router has heard from it.
	ServerID  string `json:"server_id,omitempty"`
	Healthy   bool   `json:"healthy"`
	Routed    int64  `json:"routed"`
	Failovers int64  `json:"failovers"`
	// Weight is the backend's ring share multiplier (1.0 = standard).
	Weight float64 `json:"weight"`
	// Proto is the transport the router currently uses for this backend:
	// "rpc" once the binary upgrade succeeded, else "http".
	Proto string `json:"proto"`
	// RPCConns is the router's open binary connections to this backend.
	RPCConns int64 `json:"rpc_conns,omitempty"`
	// StoreDigestGen is the solved-outcome digest generation the router last
	// fetched from this backend (0 = none held; StoreAware only).
	StoreDigestGen uint64 `json:"store_digest_gen,omitempty"`
}

// statsResponse is the body of the router's GET /v1/stats. The summed
// backend solver counters reuse the vs3d field names (smt_queries,
// smt_cache_hits, ...) so fleet-level tools (cmd/vs3load) parse a router
// and a single backend identically.
type statsResponse struct {
	RouterID      string         `json:"router_id"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Policy        Policy         `json:"policy"`
	Requests      int64          `json:"requests_proxied"`
	Batches       int64          `json:"batches"`
	BatchItems    int64          `json:"batch_items"`
	Failovers     int64          `json:"failovers"`
	NoBackend     int64          `json:"no_backend"`
	HedgeFired    int64          `json:"hedge_fired"`
	HedgeWon      int64          `json:"hedge_won"`
	HedgeCanceled int64          `json:"hedge_canceled"`
	StoreAware    bool           `json:"store_aware"`
	StoreHits     int64          `json:"route_store_hits"`
	RPCConns      int64          `json:"rpc_conns"`
	Backends      []BackendStats `json:"backends"`

	// Fleet totals summed from every live backend's /v1/stats.
	BackendRequests  int64 `json:"requests"`
	Rejected         int64 `json:"rejected"`
	Aborted          int64 `json:"aborted"`
	Truncated        int64 `json:"truncated"`
	ProblemCacheHits int64 `json:"problem_cache_hits"`
	Queries          int64 `json:"smt_queries"`
	CacheHits        int64 `json:"smt_cache_hits"`
	AssumptionProbes int64 `json:"assumption_probes"`
	FMScratch        int64 `json:"fm_scratch"`
	FMIncremental    int64 `json:"fm_incremental"`
	SharedLemmas     int64 `json:"shared_lemmas"`
	CorePruned       int64 `json:"core_pruned"`
	CoreEvicted      int64 `json:"core_evicted"`
}

// backendTotals is the slice of a vs3d stats body the router aggregates.
type backendTotals struct {
	Requests         int64 `json:"requests"`
	Rejected         int64 `json:"rejected"`
	Aborted          int64 `json:"aborted"`
	Truncated        int64 `json:"truncated"`
	ProblemCacheHits int64 `json:"problem_cache_hits"`
	Queries          int64 `json:"smt_queries"`
	CacheHits        int64 `json:"smt_cache_hits"`
	AssumptionProbes int64 `json:"assumption_probes"`
	FMScratch        int64 `json:"fm_scratch"`
	FMIncremental    int64 `json:"fm_incremental"`
	SharedLemmas     int64 `json:"shared_lemmas"`
	CorePruned       int64 `json:"core_pruned"`
	CoreEvicted      int64 `json:"core_evicted"`
}

// statsSnapshot assembles the router view, polling live backends for their
// counters (bounded by the health timeout so a hung backend cannot stall
// the stats endpoint).
func (r *Router) statsSnapshot(ctx context.Context) statsResponse {
	resp := statsResponse{
		RouterID:      r.cfg.ID,
		UptimeSeconds: time.Since(r.started).Seconds(),
		Policy:        r.cfg.Policy,
		Requests:      r.requests.Load(),
		Batches:       r.batches.Load(),
		BatchItems:    r.batchItems.Load(),
		Failovers:     r.failovers.Load(),
		NoBackend:     r.noBackend.Load(),
		HedgeFired:    r.hedgeFired.Load(),
		HedgeWon:      r.hedgeWon.Load(),
		HedgeCanceled: r.hedgeCanceled.Load(),
		StoreAware:    r.cfg.StoreAware,
		StoreHits:     r.storeHits.Load(),
	}
	totals := make([]backendTotals, len(r.backends))
	var wg sync.WaitGroup
	for i, b := range r.backends {
		bs := BackendStats{
			URL:       b.url,
			ServerID:  b.id(),
			Healthy:   b.healthy.Load(),
			Routed:    b.routed.Load(),
			Failovers: b.failovers.Load(),
			Weight:    b.weight,
			Proto:     "http",
		}
		if c := b.rpcClient(); c != nil {
			bs.Proto = "rpc"
			bs.RPCConns = c.OpenConns()
			resp.RPCConns += bs.RPCConns
		}
		bs.StoreDigestGen = b.digestGen.Load()
		resp.Backends = append(resp.Backends, bs)
		if !b.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			tctx, cancel := context.WithTimeout(ctx, r.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(tctx, http.MethodGet, b.url+"/v1/stats", nil)
			if err != nil {
				return
			}
			res, err := r.client.Do(req)
			if err != nil {
				return
			}
			defer func() {
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}()
			if res.StatusCode != http.StatusOK {
				return
			}
			_ = json.NewDecoder(res.Body).Decode(&totals[i])
		}(i, b)
	}
	wg.Wait()
	for _, t := range totals {
		resp.BackendRequests += t.Requests
		resp.Rejected += t.Rejected
		resp.Aborted += t.Aborted
		resp.Truncated += t.Truncated
		resp.ProblemCacheHits += t.ProblemCacheHits
		resp.Queries += t.Queries
		resp.CacheHits += t.CacheHits
		resp.AssumptionProbes += t.AssumptionProbes
		resp.FMScratch += t.FMScratch
		resp.FMIncremental += t.FMIncremental
		resp.SharedLemmas += t.SharedLemmas
		resp.CorePruned += t.CorePruned
		resp.CoreEvicted += t.CoreEvicted
	}
	return resp
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, r.statsSnapshot(req.Context()))
}

// handleMetrics renders router counters in Prometheus text format:
// per-backend routed/failover/health series labeled by backend URL, plus
// router-level totals. Backend-internal counters are scraped from each
// backend's own /metrics, not re-exported here.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	pw := promtext.New()
	id := []string{"router", r.cfg.ID}
	pw.Gauge("vs3router_uptime_seconds", "Seconds since the router started.", time.Since(r.started).Seconds(), id...)
	pw.Counter("vs3router_requests_total", "Single requests proxied.", float64(r.requests.Load()), id...)
	pw.Counter("vs3router_batches_total", "Batch requests accepted.", float64(r.batches.Load()), id...)
	pw.Counter("vs3router_batch_items_total", "Items across all batches.", float64(r.batchItems.Load()), id...)
	pw.Counter("vs3router_failovers_total", "Failover hops after backend transport failures.", float64(r.failovers.Load()), id...)
	pw.Counter("vs3router_no_backend_total", "Requests/items failed because no backend answered.", float64(r.noBackend.Load()), id...)
	pw.Counter("vs3router_hedge_fired_total", "Hedge requests fired at ring successors.", float64(r.hedgeFired.Load()), id...)
	pw.Counter("vs3router_hedge_won_total", "Hedged races the successor answered first.", float64(r.hedgeWon.Load()), id...)
	pw.Counter("vs3router_hedge_canceled_total", "Losing sides cancelled after the other side won.", float64(r.hedgeCanceled.Load()), id...)
	pw.Counter("vs3router_store_hits_total", "Placements moved off the ring owner by a solved-outcome digest claim.", float64(r.storeHits.Load()), id...)
	var rpcConns int64
	for _, b := range r.backends {
		labels := []string{"backend", b.url}
		pw.Gauge("vs3router_backend_healthy", "1 while the backend passes health checks.", boolGauge(b.healthy.Load()), labels...)
		pw.Counter("vs3router_backend_routed_total", "Requests and batch items routed to the backend.", float64(b.routed.Load()), labels...)
		pw.Counter("vs3router_backend_failovers_total", "Requests moved off the backend after transport failures.", float64(b.failovers.Load()), labels...)
		pw.Gauge("vs3router_backend_weight", "Configured ring-share weight.", b.weight, labels...)
		var conns int64
		if c := b.rpcClient(); c != nil {
			conns = c.OpenConns()
			rpcConns += conns
		}
		pw.Gauge("vs3router_backend_rpc_conns", "Open binary rpc connections to the backend (0 = HTTP).", float64(conns), labels...)
	}
	pw.Gauge("vs3router_rpc_conns", "Open binary rpc connections across all backends.", float64(rpcConns), id...)
	var buf bytes.Buffer
	_, _ = pw.WriteTo(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
