package route

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// digestBackend is a minimal vs3d stand-in for store-aware routing tests: it
// advertises a solved-outcome digest generation on /healthz and serves the
// encoded digest from /v1/stats, exactly like a real backend with a store.
type digestBackend struct {
	id     string
	ts     *httptest.Server
	digest string
	gen    uint64
}

func newDigestBackend(t *testing.T, id, digest string, gen uint64) *digestBackend {
	b := &digestBackend{id: id, digest: digest, gen: gen}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-VS3-Backend", b.id)
		if b.gen > 0 {
			w.Header().Set("X-VS3-Store-Gen", fmt.Sprint(b.gen))
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"store_digest": b.digest, "store_digest_gen": b.gen,
		})
	})
	mux.HandleFunc("/v1/verify", func(w http.ResponseWriter, r *http.Request) {
		var req serve.VerifyRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("X-VS3-Backend", b.id)
		w.Header().Set("X-VS3-Problem-Key", serve.ProblemKey(req.Spec))
		json.NewEncoder(w).Encode(serve.VerifyResponse{Method: "LFP", Proved: true})
	})
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

// outcomeDigestFor builds a genuine store digest claiming exactly keys, via a
// throwaway on-disk store (the same path production digests take).
func outcomeDigestFor(t *testing.T, keys ...string) (string, uint64) {
	t.Helper()
	s, err := store.Open(t.TempDir(), store.Options{Params: "p", FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, k := range keys {
		s.AppendOutcome(k, "lfp", []byte(`{"proved":true}`))
	}
	enc, gen := s.OutcomeDigest()
	if enc == "" || gen == 0 {
		t.Fatalf("empty digest for %d keys", len(keys))
	}
	return enc, gen
}

// TestStoreAwareRouting: a problem whose ring owner is cold must be routed to
// the backend whose digest claims its key, and the reorder must be counted.
func TestStoreAwareRouting(t *testing.T) {
	// Find a spec whose ring owner (for two weight-1 backends) is index 1, so
	// a digest claim on index 0 genuinely overrides ring order.
	probe := newRing([]float64{1, 1}, 128)
	spec := ""
	for i := 0; i < 1024; i++ {
		cand := fmt.Sprintf("program P%d() {}", i)
		if seq := probe.sequence(serve.ProblemKey(cand)); seq[0] == 1 {
			spec = cand
			break
		}
	}
	if spec == "" {
		t.Fatal("no probe spec hashed onto backend 1")
	}
	key := serve.ProblemKey(spec)

	digest, gen := outcomeDigestFor(t, key)
	warm := newDigestBackend(t, "warm", digest, gen)
	cold := newDigestBackend(t, "cold", "", 0)

	r, err := New(Config{
		Backends:       []string{warm.ts.URL, cold.ts.URL},
		StoreAware:     true,
		HealthInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)

	deadline := time.Now().Add(5 * time.Second)
	for r.backends[0].digestGen.Load() < gen {
		if time.Now().After(deadline) {
			t.Fatal("sweep never fetched the warm backend's digest")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cands := r.candidates(key)
	if cands[0] != 0 {
		t.Fatalf("candidates(%s) = %v, want warm backend (0) first", key[:12], cands)
	}
	if hits := r.storeHits.Load(); hits != 1 {
		t.Fatalf("route_store_hits = %d after digest-preferred placement, want 1", hits)
	}

	// An unclaimed key keeps plain ring order and counts nothing.
	other := serve.ProblemKey("program Q() {}")
	want := r.ring.sequence(other)
	got := r.candidates(other)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unclaimed key reordered: got %v want %v", got, want)
		}
	}
	if hits := r.storeHits.Load(); hits != 1 {
		t.Fatalf("route_store_hits = %d after unclaimed key, want still 1", hits)
	}

	// End to end: the proxied request lands on the warm backend.
	resp, _ := postVerify(t, ts.URL, spec)
	if id := resp.Header.Get("X-VS3-Backend"); id != "warm" {
		t.Fatalf("store-aware request landed on %q, want warm", id)
	}
}

// TestStoreAwareDisabledKeepsRingOrder pins the default: without StoreAware,
// digests are never fetched and ring order stands.
func TestStoreAwareDisabledKeepsRingOrder(t *testing.T) {
	digest, gen := outcomeDigestFor(t, serve.ProblemKey("program R() {}"))
	warm := newDigestBackend(t, "warm", digest, gen)
	cold := newDigestBackend(t, "cold", "", 0)
	r, err := New(Config{
		Backends:       []string{warm.ts.URL, cold.ts.URL},
		HealthInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)

	deadline := time.Now().Add(2 * time.Second)
	for r.backends[0].id() == "" {
		if time.Now().After(deadline) {
			t.Fatal("sweep never reached the backends")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g := r.backends[0].digestGen.Load(); g != 0 {
		t.Fatalf("digest fetched with StoreAware off (gen %d)", g)
	}
	key := serve.ProblemKey("program R() {}")
	want := r.ring.sequence(key)
	got := r.candidates(key)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order changed with StoreAware off: got %v want %v", got, want)
		}
	}
}
