package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rpc"
	"repro/internal/serve"
	"repro/internal/store"
)

// Policy selects how single requests and batch items map to backends.
type Policy string

const (
	// Affinity (the default) consistently hashes each request's problem key
	// onto the backend ring, so every backend stays warm for its slice of
	// the keyspace.
	Affinity Policy = "affinity"
	// Random spreads requests uniformly over live backends. It exists as
	// the control arm for benchmarks (BENCH_6): same fleet, no affinity,
	// so the warm-path advantage collapses to 1/N.
	Random Policy = "random"
)

// Config tunes a Router.
type Config struct {
	// Backends are the vs3d base URLs (e.g. "http://10.0.0.1:8080"). At
	// least one is required.
	Backends []string
	// Weights, when non-nil, must parallel Backends: backend i owns
	// round(Replicas × Weights[i]) virtual ring nodes (minimum 1), so a
	// weight-2 node serves about twice the keyspace of a weight-1 node.
	// Nil or non-positive entries count as 1.0.
	Weights []float64
	// Replicas is the virtual-node count per weight-1 backend (default 128).
	Replicas int
	// Policy is Affinity or Random (default Affinity).
	Policy Policy
	// HealthInterval is the period between /healthz sweeps (default 2s);
	// HealthTimeout bounds one probe (default 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// RequestTimeout bounds one proxied request end to end, as a safety net
	// over the backend's own deadline handling (default 10m).
	RequestTimeout time.Duration
	// Client overrides the HTTP client used to reach backends. The default
	// keeps connections alive with a generous idle pool per backend, so a
	// hot keyspace slice rides one warm TCP connection set.
	Client *http.Client
	// ID identifies the router in stats and metrics (default "vs3router").
	ID string
	// DisableRPC keeps every backend on HTTP even when it advertises a
	// binary rpc endpoint (X-VS3-RPC). The control arm for benchmarks.
	DisableRPC bool
	// Hedge enables request hedging under the Affinity policy: when the
	// owner backend has not answered within an adaptive delay (rolling p95
	// of recent backend latency, clamped to [HedgeMin, HedgeMax]), the same
	// request is fired at the ring successor and the loser is cancelled.
	// Only the winner's answer is forwarded, so a verdict is never counted
	// twice; the cancelled side aborts on the backend like any client
	// disconnect (no false verdict, no leaked session).
	Hedge bool
	// HedgeMin / HedgeMax clamp the adaptive hedge delay (defaults 10ms /
	// 1s). Before ~20 latency samples exist the delay is 25ms.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// StoreAware enables store-aware placement under the Affinity policy:
	// the health sweep keeps a bloom digest of each backend's solved problem
	// keys (refetched only when the X-VS3-Store-Gen healthz header moves),
	// and a request whose key a live backend's digest claims is routed there
	// ahead of plain ring order. After a ring change (reweight, node
	// added/removed) this sends a known problem back to the node that already
	// holds its knowledge instead of re-deriving it from scratch on the new
	// ring owner. Digest false positives only cost a misplaced preference —
	// the verdict is identical wherever the request lands.
	StoreAware bool
}

func (c Config) normalize() Config {
	if c.Replicas <= 0 {
		c.Replicas = 128
	}
	if c.Policy == "" {
		c.Policy = Affinity
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Minute
	}
	if c.ID == "" {
		c.ID = "vs3router"
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 10 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = time.Second
	}
	if c.Client == nil {
		transport := &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
		c.Client = &http.Client{Transport: transport}
	}
	return c
}

// backend is one vs3d node plus its router-side state.
type backend struct {
	url       string
	weight    float64
	healthy   atomic.Bool
	serverID  atomic.Pointer[string] // last X-VS3-Backend seen
	routed    atomic.Int64           // requests/items routed here
	failovers atomic.Int64           // requests moved OFF this backend after a transport failure

	// Binary rpc upgrade state. The health sweep discovers the backend's
	// advertised rpc endpoint (X-VS3-RPC) and opens a persistent connection
	// pool; a peer that refuses the VS3R handshake is pinned to HTTP.
	rpcMu  sync.Mutex
	rpcc   *rpc.Client
	notRPC atomic.Bool // handshake refused: never retry binary on this backend

	// Solved-outcome digest state (StoreAware). digest is the last parsed
	// bloom digest (nil claims nothing); digestGen is the generation it
	// reflects, compared against the X-VS3-Store-Gen healthz header so the
	// sweep refetches only on change.
	digest    atomic.Pointer[store.BloomDigest]
	digestGen atomic.Uint64
}

// claims reports whether the backend's last known digest claims key.
func (b *backend) claims(key string) bool {
	return b.digest.Load().Contains(key)
}

func (b *backend) id() string {
	if p := b.serverID.Load(); p != nil {
		return *p
	}
	return ""
}

// rpcClient returns the backend's live rpc client, nil while it is
// undiscovered or pinned to HTTP.
func (b *backend) rpcClient() *rpc.Client {
	b.rpcMu.Lock()
	defer b.rpcMu.Unlock()
	return b.rpcc
}

// dropRPC pins the backend to HTTP (the peer refused the VS3R handshake).
func (b *backend) dropRPC() {
	b.rpcMu.Lock()
	c := b.rpcc
	b.rpcc = nil
	b.rpcMu.Unlock()
	b.notRPC.Store(true)
	if c != nil {
		c.Close()
	}
}

// adoptRPC opens (or keeps) a client for the advertised rpc address.
func (b *backend) adoptRPC(addr string) {
	if b.notRPC.Load() {
		return
	}
	b.rpcMu.Lock()
	defer b.rpcMu.Unlock()
	if b.rpcc != nil && b.rpcc.Addr() == addr {
		return
	}
	if b.rpcc != nil {
		b.rpcc.Close()
	}
	b.rpcc = rpc.NewClient(addr, rpc.ClientConfig{})
}

// Router fronts a fleet of vs3d backends.
type Router struct {
	cfg      Config
	backends []*backend
	ring     *ring
	client   *http.Client
	started  time.Time

	rndMu sync.Mutex
	rnd   *rand.Rand

	rpcAddr atomic.Pointer[string] // advertised binary front (X-VS3-RPC)

	requests   atomic.Int64 // single verify/preconditions requests proxied
	batches    atomic.Int64
	batchItems atomic.Int64
	failovers  atomic.Int64 // total failover hops
	noBackend  atomic.Int64 // requests failed because no backend answered

	hedgeFired    atomic.Int64 // hedge requests fired at a ring successor
	hedgeWon      atomic.Int64 // races the hedge answered first
	hedgeCanceled atomic.Int64 // losers cancelled after the other side won

	storeHits atomic.Int64 // placements moved off the ring owner by a digest claim

	latMu   sync.Mutex // rolling backend-latency window feeding the hedge delay
	lats    [512]time.Duration
	latN    int // valid samples (≤ len(lats))
	latNext int // next slot to overwrite

	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup
}

// New builds a Router and starts its health-check loop. Backends start
// healthy (optimistically) and are corrected by the first sweep; transport
// failures also mark a backend unhealthy immediately (passive detection),
// so failover does not wait for the next probe.
func New(cfg Config) (*Router, error) {
	cfg = cfg.normalize()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("route: at least one backend is required")
	}
	if cfg.Policy != Affinity && cfg.Policy != Random {
		return nil, fmt.Errorf("route: unknown policy %q", cfg.Policy)
	}
	if cfg.Weights != nil && len(cfg.Weights) != len(cfg.Backends) {
		return nil, fmt.Errorf("route: %d weights for %d backends", len(cfg.Weights), len(cfg.Backends))
	}
	weights := make([]float64, len(cfg.Backends))
	for i := range weights {
		weights[i] = 1
		if cfg.Weights != nil && cfg.Weights[i] > 0 {
			weights[i] = cfg.Weights[i]
		}
	}
	r := &Router{
		cfg:     cfg,
		ring:    newRing(weights, cfg.Replicas),
		client:  cfg.Client,
		started: time.Now(),
		rnd:     rand.New(rand.NewSource(time.Now().UnixNano())),
		stopc:   make(chan struct{}),
	}
	for i, u := range cfg.Backends {
		b := &backend{url: u, weight: weights[i]}
		b.healthy.Store(true)
		r.backends = append(r.backends, b)
	}
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// Close stops the health loop, tears down persistent rpc connections, and
// idles kept-alive HTTP connections.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stopc) })
	r.wg.Wait()
	for _, b := range r.backends {
		b.rpcMu.Lock()
		if b.rpcc != nil {
			b.rpcc.Close()
			b.rpcc = nil
		}
		b.rpcMu.Unlock()
	}
	if t, ok := r.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

func (r *Router) healthLoop() {
	defer r.wg.Done()
	r.sweep()
	ticker := time.NewTicker(r.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-ticker.C:
			r.sweep()
		}
	}
}

// sweep probes every backend's /healthz concurrently. A backend is healthy
// only on HTTP 200 — a draining backend answers 503, so drain takes it out
// of rotation without dropping its in-flight work.
func (r *Router) sweep() {
	var wg sync.WaitGroup
	for _, b := range r.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			resp, err := r.client.Do(req)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if id := resp.Header.Get("X-VS3-Backend"); id != "" {
				b.serverID.Store(&id)
			}
			b.healthy.Store(resp.StatusCode == http.StatusOK)
			if !r.cfg.DisableRPC {
				if adv := resp.Header.Get("X-VS3-RPC"); adv != "" {
					if addr := joinRPCAddr(b.url, adv); addr != "" {
						b.adoptRPC(addr)
					}
				}
			}
			if r.cfg.StoreAware {
				if gh := resp.Header.Get("X-VS3-Store-Gen"); gh != "" {
					if gen, perr := strconv.ParseUint(gh, 10, 64); perr == nil {
						r.refreshDigest(b, gen)
					}
				}
			}
		}(b)
	}
	wg.Wait()
}

// refreshDigest refetches b's solved-outcome digest when the generation the
// backend advertises (on /healthz) has moved past the one the router holds.
// The binary rpc surface answers without leasing a session; HTTP backends
// fall back to the store_digest field of /v1/stats.
func (r *Router) refreshDigest(b *backend, gen uint64) {
	if gen == 0 || b.digestGen.Load() >= gen {
		return
	}
	encoded, got, ok := r.fetchDigest(b)
	if !ok {
		return
	}
	d, err := store.ParseBloomDigest(encoded)
	if err != nil {
		// A malformed digest claims nothing; plain ring affinity still works.
		b.digest.Store(nil)
		b.digestGen.Store(got)
		return
	}
	b.digest.Store(d)
	if got < gen {
		got = gen
	}
	b.digestGen.Store(got)
}

// fetchDigest retrieves a backend's encoded digest and its generation.
func (r *Router) fetchDigest(b *backend) (encoded string, gen uint64, ok bool) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthTimeout)
	defer cancel()
	var body []byte
	if c := b.rpcClient(); c != nil {
		resp, err := c.Call(ctx, rpc.Request{Kind: rpc.KindDigest})
		if err == nil && resp.Status == http.StatusOK {
			body = resp.Body
		}
	}
	if body == nil {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/v1/stats", nil)
		if err != nil {
			return "", 0, false
		}
		resp, err := r.client.Do(req)
		if err != nil {
			return "", 0, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return "", 0, false
		}
		body, err = io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
		if err != nil {
			return "", 0, false
		}
	}
	// Both shapes carry the same information under different field names
	// (serve.DigestResponse vs the /v1/stats store_digest fields).
	var peek struct {
		Digest      string `json:"digest"`
		Gen         uint64 `json:"gen"`
		StoreDigest string `json:"store_digest"`
		StoreGen    uint64 `json:"store_digest_gen"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		return "", 0, false
	}
	if peek.StoreGen > 0 || peek.StoreDigest != "" {
		return peek.StoreDigest, peek.StoreGen, true
	}
	return peek.Digest, peek.Gen, true
}

// joinRPCAddr resolves an advertised X-VS3-RPC value against the backend's
// base URL: a bare ":port" inherits the backend host, a full "host:port"
// stands alone.
func joinRPCAddr(backendURL, adv string) string {
	if !strings.HasPrefix(adv, ":") {
		return adv
	}
	u, err := url.Parse(backendURL)
	if err != nil || u.Hostname() == "" {
		return ""
	}
	return net.JoinHostPort(u.Hostname(), strings.TrimPrefix(adv, ":"))
}

// candidates returns backend indices to try for key, best first. Affinity:
// ring order from the key's hash, live nodes first (so a key whose owner
// died lands deterministically on the owner's ring successor, and moves
// back when the owner recovers). Random: a random permutation of live
// nodes, dead ones appended as a last resort.
//
// Under StoreAware + Affinity, live backends whose solved-outcome digest
// claims the key are moved (stably) ahead of the rest: after a ring change
// the node that already holds a problem's knowledge beats the new ring owner,
// which would re-derive everything from scratch. When the ring owner itself
// claims the key the order is unchanged and no store hit is counted.
func (r *Router) candidates(key string) []int {
	seq := r.ring.sequence(key)
	if r.cfg.Policy == Random {
		r.rndMu.Lock()
		r.rnd.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
		r.rndMu.Unlock()
	}
	live := make([]int, 0, len(seq))
	dead := make([]int, 0, len(seq))
	for _, i := range seq {
		if r.backends[i].healthy.Load() {
			live = append(live, i)
		} else {
			dead = append(dead, i)
		}
	}
	if r.cfg.StoreAware && r.cfg.Policy == Affinity && len(live) > 1 {
		claiming := make([]int, 0, len(live))
		rest := make([]int, 0, len(live))
		for _, i := range live {
			if r.backends[i].claims(key) {
				claiming = append(claiming, i)
			} else {
				rest = append(rest, i)
			}
		}
		if len(claiming) > 0 {
			if claiming[0] != live[0] {
				r.storeHits.Add(1)
			}
			live = append(claiming, rest...)
		}
	}
	return append(live, dead...)
}

// Handler returns the router's HTTP mux.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/verify", func(w http.ResponseWriter, req *http.Request) { r.proxySingle(w, req, "/v1/verify") })
	mux.HandleFunc("/v1/preconditions", func(w http.ResponseWriter, req *http.Request) { r.proxySingle(w, req, "/v1/preconditions") })
	mux.HandleFunc("/v1/batch", r.handleBatch)
	mux.HandleFunc("/v1/stats", r.handleStats)
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, b := range r.backends {
			if b.healthy.Load() {
				fmt.Fprintln(w, "ok")
				return
			}
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no live backends")
	})
	id := r.cfg.ID
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("X-VS3-Router", id)
		if addr := r.rpcAddr.Load(); addr != nil {
			w.Header().Set("X-VS3-RPC", *addr)
		}
		mux.ServeHTTP(w, req)
	})
}

// AdvertiseRPC publishes the router's own binary rpc front in the
// X-VS3-RPC response header, so bulk clients (cmd/vs3load -proto rpc)
// discover it the same way the router discovers backends'.
func (r *Router) AdvertiseRPC(addr string) {
	r.rpcAddr.Store(&addr)
}

// maxProxyBody bounds a proxied request body.
const maxProxyBody = 32 << 20

// proxySingle routes one verify/preconditions request by its problem key.
// Verification requests are idempotent, so a transport failure (connection
// refused, reset mid-response) fails over to the next candidate backend;
// HTTP-level answers (including 429 shed and 5xx) pass through untouched —
// rerouting overload would defeat both affinity and load shedding.
func (r *Router) proxySingle(w http.ResponseWriter, req *http.Request, path string) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxProxyBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	var peek struct {
		Spec      string `json:"spec"`
		Method    string `json:"method"`
		TimeoutMS int64  `json:"timeout_ms"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if peek.Spec == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"spec\""))
		return
	}
	r.requests.Add(1)
	key := serve.ProblemKey(peek.Spec)
	client := serve.ClientKey(req)
	kind := rpc.KindVerify
	if path == "/v1/preconditions" {
		kind = rpc.KindPreconditions
	}
	rpcReq := rpc.Request{Kind: kind, Method: peek.Method, TimeoutMS: peek.TimeoutMS, Spec: peek.Spec}

	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
	defer cancel()
	res := r.execute(ctx, key, client, path, body, rpcReq)
	if res.err != nil {
		r.noBackend.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Errorf("no live backend: %w", res.err))
		return
	}
	if res.backendID != "" {
		w.Header().Set("X-VS3-Backend", res.backendID)
	}
	if res.problemKey != "" {
		w.Header().Set("X-VS3-Problem-Key", res.problemKey)
	}
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// forward sends one request to a backend, propagating the originating
// client's fair-queue key so backends schedule by end client, not by
// router address.
func (r *Router) forward(ctx context.Context, b *backend, path, client string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-VS3-Client", client)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	if id := resp.Header.Get("X-VS3-Backend"); id != "" {
		b.serverID.Store(&id)
	}
	return resp, nil
}

// errorResponse mirrors the backend error body shape.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
