package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// Policy selects how single requests and batch items map to backends.
type Policy string

const (
	// Affinity (the default) consistently hashes each request's problem key
	// onto the backend ring, so every backend stays warm for its slice of
	// the keyspace.
	Affinity Policy = "affinity"
	// Random spreads requests uniformly over live backends. It exists as
	// the control arm for benchmarks (BENCH_6): same fleet, no affinity,
	// so the warm-path advantage collapses to 1/N.
	Random Policy = "random"
)

// Config tunes a Router.
type Config struct {
	// Backends are the vs3d base URLs (e.g. "http://10.0.0.1:8080"). At
	// least one is required.
	Backends []string
	// Replicas is the virtual-node count per backend (default 128).
	Replicas int
	// Policy is Affinity or Random (default Affinity).
	Policy Policy
	// HealthInterval is the period between /healthz sweeps (default 2s);
	// HealthTimeout bounds one probe (default 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// RequestTimeout bounds one proxied request end to end, as a safety net
	// over the backend's own deadline handling (default 10m).
	RequestTimeout time.Duration
	// Client overrides the HTTP client used to reach backends. The default
	// keeps connections alive with a generous idle pool per backend, so a
	// hot keyspace slice rides one warm TCP connection set.
	Client *http.Client
	// ID identifies the router in stats and metrics (default "vs3router").
	ID string
}

func (c Config) normalize() Config {
	if c.Replicas <= 0 {
		c.Replicas = 128
	}
	if c.Policy == "" {
		c.Policy = Affinity
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Minute
	}
	if c.ID == "" {
		c.ID = "vs3router"
	}
	if c.Client == nil {
		transport := &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}
		c.Client = &http.Client{Transport: transport}
	}
	return c
}

// backend is one vs3d node plus its router-side state.
type backend struct {
	url       string
	healthy   atomic.Bool
	serverID  atomic.Pointer[string] // last X-VS3-Backend seen
	routed    atomic.Int64           // requests/items routed here
	failovers atomic.Int64           // requests moved OFF this backend after a transport failure
}

func (b *backend) id() string {
	if p := b.serverID.Load(); p != nil {
		return *p
	}
	return ""
}

// Router fronts a fleet of vs3d backends.
type Router struct {
	cfg      Config
	backends []*backend
	ring     *ring
	client   *http.Client
	started  time.Time

	rndMu sync.Mutex
	rnd   *rand.Rand

	requests   atomic.Int64 // single verify/preconditions requests proxied
	batches    atomic.Int64
	batchItems atomic.Int64
	failovers  atomic.Int64 // total failover hops
	noBackend  atomic.Int64 // requests failed because no backend answered

	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup
}

// New builds a Router and starts its health-check loop. Backends start
// healthy (optimistically) and are corrected by the first sweep; transport
// failures also mark a backend unhealthy immediately (passive detection),
// so failover does not wait for the next probe.
func New(cfg Config) (*Router, error) {
	cfg = cfg.normalize()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("route: at least one backend is required")
	}
	if cfg.Policy != Affinity && cfg.Policy != Random {
		return nil, fmt.Errorf("route: unknown policy %q", cfg.Policy)
	}
	r := &Router{
		cfg:     cfg,
		ring:    newRing(len(cfg.Backends), cfg.Replicas),
		client:  cfg.Client,
		started: time.Now(),
		rnd:     rand.New(rand.NewSource(time.Now().UnixNano())),
		stopc:   make(chan struct{}),
	}
	for _, u := range cfg.Backends {
		b := &backend{url: u}
		b.healthy.Store(true)
		r.backends = append(r.backends, b)
	}
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// Close stops the health loop and idles kept-alive connections.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stopc) })
	r.wg.Wait()
	if t, ok := r.client.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

func (r *Router) healthLoop() {
	defer r.wg.Done()
	r.sweep()
	ticker := time.NewTicker(r.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-ticker.C:
			r.sweep()
		}
	}
}

// sweep probes every backend's /healthz concurrently. A backend is healthy
// only on HTTP 200 — a draining backend answers 503, so drain takes it out
// of rotation without dropping its in-flight work.
func (r *Router) sweep() {
	var wg sync.WaitGroup
	for _, b := range r.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			resp, err := r.client.Do(req)
			if err != nil {
				b.healthy.Store(false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if id := resp.Header.Get("X-VS3-Backend"); id != "" {
				b.serverID.Store(&id)
			}
			b.healthy.Store(resp.StatusCode == http.StatusOK)
		}(b)
	}
	wg.Wait()
}

// candidates returns backend indices to try for key, best first. Affinity:
// ring order from the key's hash, live nodes first (so a key whose owner
// died lands deterministically on the owner's ring successor, and moves
// back when the owner recovers). Random: a random permutation of live
// nodes, dead ones appended as a last resort.
func (r *Router) candidates(key string) []int {
	seq := r.ring.sequence(key)
	if r.cfg.Policy == Random {
		r.rndMu.Lock()
		r.rnd.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
		r.rndMu.Unlock()
	}
	live := make([]int, 0, len(seq))
	dead := make([]int, 0, len(seq))
	for _, i := range seq {
		if r.backends[i].healthy.Load() {
			live = append(live, i)
		} else {
			dead = append(dead, i)
		}
	}
	return append(live, dead...)
}

// Handler returns the router's HTTP mux.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/verify", func(w http.ResponseWriter, req *http.Request) { r.proxySingle(w, req, "/v1/verify") })
	mux.HandleFunc("/v1/preconditions", func(w http.ResponseWriter, req *http.Request) { r.proxySingle(w, req, "/v1/preconditions") })
	mux.HandleFunc("/v1/batch", r.handleBatch)
	mux.HandleFunc("/v1/stats", r.handleStats)
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, b := range r.backends {
			if b.healthy.Load() {
				fmt.Fprintln(w, "ok")
				return
			}
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no live backends")
	})
	id := r.cfg.ID
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("X-VS3-Router", id)
		mux.ServeHTTP(w, req)
	})
}

// maxProxyBody bounds a proxied request body.
const maxProxyBody = 32 << 20

// proxySingle routes one verify/preconditions request by its problem key.
// Verification requests are idempotent, so a transport failure (connection
// refused, reset mid-response) fails over to the next candidate backend;
// HTTP-level answers (including 429 shed and 5xx) pass through untouched —
// rerouting overload would defeat both affinity and load shedding.
func (r *Router) proxySingle(w http.ResponseWriter, req *http.Request, path string) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxProxyBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	var peek struct {
		Spec string `json:"spec"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if peek.Spec == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"spec\""))
		return
	}
	r.requests.Add(1)
	key := serve.ProblemKey(peek.Spec)
	client := serve.ClientKey(req)

	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
	defer cancel()
	var lastErr error
	for _, idx := range r.candidates(key) {
		b := r.backends[idx]
		resp, err := r.forward(ctx, b, path, client, body)
		if err != nil {
			// Transport failure: the backend never produced an answer. Mark
			// it down and rehash to the next node in ring order.
			b.healthy.Store(false)
			b.failovers.Add(1)
			r.failovers.Add(1)
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		defer resp.Body.Close()
		b.routed.Add(1)
		copyHeader(w.Header(), resp.Header, "Content-Type", "X-VS3-Backend", "X-VS3-Problem-Key", "Retry-After")
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return
	}
	r.noBackend.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no backends configured")
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("no live backend: %w", lastErr))
}

// forward sends one request to a backend, propagating the originating
// client's fair-queue key so backends schedule by end client, not by
// router address.
func (r *Router) forward(ctx context.Context, b *backend, path, client string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-VS3-Client", client)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	if id := resp.Header.Get("X-VS3-Backend"); id != "" {
		b.serverID.Store(&id)
	}
	return resp, nil
}

func copyHeader(dst, src http.Header, keys ...string) {
	for _, k := range keys {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
}

// errorResponse mirrors the backend error body shape.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
