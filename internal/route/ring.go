// Package route implements the skeleton-affinity cluster router in front of
// a fleet of vs3d backends. The engine's warm-path advantage (interned
// formulas, persistent smt.Context lanes, the unsat-core store — BENCH_3/4
// measured ~100x fewer from-scratch SMT queries on warm repeats) only
// survives horizontal scale-out if requests for the same problem/skeleton
// key keep landing on the same backend. The router consistently hashes each
// request's canonical problem key (serve.ProblemKey) onto a ring of
// backends, health-checks the fleet, fails over to the next live node in
// ring order, and splits /v1/batch requests by backend affinity,
// fanning out and merging the per-item result streams.
package route

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend owns a
// weight-scaled number of virtual points; a key is served by the first point
// at or after its hash. Consistent hashing keeps the keyspace→backend
// assignment stable when a node dies: only the dead node's slice rehashes
// (to its ring successors), every other backend keeps its warm working set.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // number of backends
}

type ringPoint struct {
	hash    uint64
	backend int
}

// newRing builds a ring over len(weights) backends. Backend b owns
// round(replicas × weights[b]) virtual points (minimum 1; weights ≤ 0 count
// as 1.0), so a weight-2 node owns about twice the keyspace of a weight-1
// node. Vnode names are weight-independent — vnode v of backend b hashes the
// same wherever it exists — so changing one backend's weight only moves keys
// to or from that backend: every other pair of backends keeps its ownership
// boundary, preserving their warm working sets.
func newRing(weights []float64, replicas int) *ring {
	if replicas <= 0 {
		replicas = 128
	}
	r := &ring{n: len(weights)}
	for b, w := range weights {
		if w <= 0 {
			w = 1
		}
		vnodes := int(math.Round(float64(replicas) * w))
		if vnodes < 1 {
			vnodes = 1
		}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("backend-%d-vnode-%d", b, v)), backend: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// hashKey is FNV-1a 64 followed by a murmur3-style finalizer. FNV alone
// clusters similar strings (sequential vnode names, keys differing in a few
// trailing bytes end up on nearby ring positions, skewing ownership badly);
// the finalizer's avalanche spreads them uniformly. Deterministic across
// processes (unlike Go's map hash), so every router instance computes the
// same ring.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// sequence returns every backend exactly once, in ring order starting from
// the key's position. sequence(key)[0] is the affinity owner; the rest is
// the deterministic failover order (the same order every router instance
// computes, so a fleet of routers agrees on where a key lands after a
// node death).
func (r *ring) sequence(key string) []int {
	out := make([]int, 0, r.n)
	if r.n == 0 {
		return out
	}
	seen := make([]bool, r.n)
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}

// owner returns the affinity owner of key.
func (r *ring) owner(key string) int {
	seq := r.sequence(key)
	if len(seq) == 0 {
		return -1
	}
	return seq[0]
}
