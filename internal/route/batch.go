package route

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/rpc"
	"repro/internal/serve"
)

// handleBatch splits one client batch by backend affinity, fans the
// sub-batches out concurrently, and merges the per-item NDJSON result
// streams back into one stream with the client's original item indices.
// Splitting by affinity is the point: every item still lands on the backend
// that is warm for its skeleton, so a bulk client pays one HTTP round trip
// while keeping the per-key cache economics of single routed requests.
//
// Failover is per item, mid-stream: when a backend dies partway through its
// sub-batch (connection refused, stream cut), the items it never answered
// are re-grouped over the remaining live backends and re-sent; only items
// no live backend can serve come back as 502 results. Items that already
// produced a result are never re-run.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	var batch serve.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxProxyBody)).Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if len(batch.Items) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty \"items\""))
		return
	}
	r.batches.Add(1)
	r.batchItems.Add(int64(len(batch.Items)))
	client := serve.ClientKey(req)

	ctx, cancel := context.WithTimeout(req.Context(), r.cfg.RequestTimeout)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(res serve.BatchResult) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(res)
		if flusher != nil {
			flusher.Flush()
		}
	}

	maxAttempts := len(r.backends) + 1
	var wg sync.WaitGroup
	var send func(indices []int, attempt int)

	// fail emits terminal 502 results for items no backend could serve.
	fail := func(indices []int, err error) {
		r.noBackend.Add(int64(len(indices)))
		for _, gi := range indices {
			emit(serve.BatchResult{
				Index:  gi,
				Status: http.StatusBadGateway,
				Error:  fmt.Sprintf("no live backend: %v", err),
			})
		}
	}

	// send groups the given (global) item indices by their current best
	// backend and streams each group; unanswered items recurse with the
	// next attempt.
	send = func(indices []int, attempt int) {
		if attempt >= maxAttempts {
			fail(indices, errors.New("failover attempts exhausted"))
			return
		}
		groups := map[int][]int{}
		for _, gi := range indices {
			cands := r.candidates(serve.ProblemKey(batch.Items[gi].Spec))
			if len(cands) == 0 {
				fail([]int{gi}, errors.New("no backends configured"))
				continue
			}
			groups[cands[0]] = append(groups[cands[0]], gi)
		}
		for bidx, group := range groups {
			wg.Add(1)
			go func(bidx int, group []int) {
				defer wg.Done()
				remaining, err := r.streamGroup(ctx, r.backends[bidx], client, &batch, group, emit)
				if len(remaining) == 0 {
					return
				}
				r.backends[bidx].failovers.Add(int64(len(remaining)))
				r.failovers.Add(int64(len(remaining)))
				if ctx.Err() != nil {
					fail(remaining, ctx.Err())
					return
				}
				_ = err
				send(remaining, attempt+1)
			}(bidx, group)
		}
	}

	all := make([]int, len(batch.Items))
	for i := range all {
		all[i] = i
	}
	send(all, 0)
	wg.Wait()
}

// streamGroup sends one sub-batch to b and re-emits its results with global
// indices. It returns the global indices that never produced a result (the
// failover set) and the transport error that cut the stream, if any. A
// backend that answers fewer lines than items without a transport error is
// also treated as a cut stream.
func (r *Router) streamGroup(ctx context.Context, b *backend, client string, batch *serve.BatchRequest, group []int, emit func(serve.BatchResult)) (remaining []int, err error) {
	if c := b.rpcClient(); c != nil {
		return r.rpcGroup(ctx, b, c, client, batch, group, emit)
	}
	sub := serve.BatchRequest{Items: make([]serve.VerifyRequest, len(group))}
	for li, gi := range group {
		sub.Items[li] = batch.Items[gi]
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return group, err
	}
	done := make([]bool, len(group))
	pending := func() []int {
		var out []int
		for li, d := range done {
			if !d {
				out = append(out, group[li])
			}
		}
		return out
	}

	resp, err := r.forward(ctx, b, "/v1/batch", client, body)
	if err != nil {
		b.healthy.Store(false)
		return group, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// The backend rejected the whole sub-batch (e.g. over its item
		// cap); surface its error on every item rather than failing over —
		// another backend would reject it the same way.
		var eresp errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&eresp)
		for _, gi := range group {
			emit(serve.BatchResult{Index: gi, Status: resp.StatusCode, Error: eresp.Error})
		}
		return nil, nil
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var res serve.BatchResult
		if err := json.Unmarshal(line, &res); err != nil {
			b.healthy.Store(false)
			return pending(), fmt.Errorf("corrupt batch stream from %s: %w", b.url, err)
		}
		if res.Index < 0 || res.Index >= len(group) || done[res.Index] {
			continue // defensive: never emit a duplicate or out-of-range index
		}
		done[res.Index] = true
		b.routed.Add(1)
		res.Index = group[res.Index]
		emit(res)
	}
	if err := sc.Err(); err != nil {
		b.healthy.Store(false)
		return pending(), err
	}
	if rem := pending(); len(rem) > 0 {
		// EOF before every item answered: the backend shut down mid-batch.
		b.healthy.Store(false)
		return rem, fmt.Errorf("batch stream from %s ended after %d of %d items", b.url, len(group)-len(rem), len(group))
	}
	return nil, nil
}

// rpcGroup sends one affinity group's items as individual streams over the
// backend's persistent multiplexed rpc connection — the binary replacement
// for the NDJSON sub-batch, with the same per-item independence. Items that
// fail at the transport level come back as the failover set; a refused
// handshake pins the backend to HTTP and resends everything (the next
// attempt takes the NDJSON path).
func (r *Router) rpcGroup(ctx context.Context, b *backend, c *rpc.Client, client string, batch *serve.BatchRequest, group []int, emit func(serve.BatchResult)) ([]int, error) {
	workers := 16
	if workers > len(group) {
		workers = len(group)
	}
	var (
		mu      sync.Mutex
		pending []int
		lastErr error
		dropped bool
	)
	indices := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range indices {
				item := batch.Items[gi]
				resp, err := c.Call(ctx, rpc.Request{
					Kind:      rpc.KindVerify,
					Method:    item.Method,
					TimeoutMS: item.TimeoutMS,
					Client:    client,
					Spec:      item.Spec,
				})
				if err != nil {
					mu.Lock()
					pending = append(pending, gi)
					lastErr = err
					if errors.Is(err, rpc.ErrNotRPC) {
						dropped = true
					}
					mu.Unlock()
					continue
				}
				b.routed.Add(1)
				emit(rpcBatchResult(gi, resp))
			}
		}()
	}
	for _, gi := range group {
		indices <- gi
	}
	close(indices)
	wg.Wait()
	if dropped {
		b.dropRPC()
		return pending, lastErr
	}
	if len(pending) > 0 && ctx.Err() == nil {
		b.healthy.Store(false)
	}
	return pending, lastErr
}

// rpcBatchResult maps one rpc response onto the NDJSON per-item result
// shape. A success or aborted body is a serve.VerifyResponse; error-shaped
// bodies ({"error": ...}) carry the message a standalone request would have.
func rpcBatchResult(gi int, resp rpc.Response) serve.BatchResult {
	var full struct {
		serve.VerifyResponse
		Error string `json:"error"`
	}
	_ = json.Unmarshal(resp.Body, &full)
	res := serve.BatchResult{Index: gi, Status: resp.Status, ProblemKey: resp.ProblemKey}
	if full.Error != "" {
		res.Error = full.Error
		return res
	}
	res.OK = resp.Status == http.StatusOK
	v := full.VerifyResponse
	res.Verify = &v
	return res
}
