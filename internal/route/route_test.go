package route

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// stubBackend is a scripted vs3d stand-in speaking just enough of the wire
// protocol (verify JSON, batch NDJSON, healthz, stats) for router tests —
// no engine, so tests are fast and failure modes are scriptable.
type stubBackend struct {
	id     string
	ts     *httptest.Server
	served atomic.Int64
	// dieAfterBatchLines > 0 cuts the batch stream after that many result
	// lines (simulating a backend death mid-batch). dieVerify aborts every
	// verify request at the transport level.
	dieAfterBatchLines atomic.Int64
	dieVerify          atomic.Bool
}

func newStubBackend(t *testing.T, id string) *stubBackend {
	b := &stubBackend{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-VS3-Backend", b.id)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/verify", func(w http.ResponseWriter, r *http.Request) {
		if b.dieVerify.Load() {
			panic(http.ErrAbortHandler)
		}
		b.served.Add(1)
		var req serve.VerifyRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("X-VS3-Backend", b.id)
		w.Header().Set("X-VS3-Problem-Key", serve.ProblemKey(req.Spec))
		// Echo the fair-queue client key in the body (headers beyond the
		// documented set are not proxied back).
		json.NewEncoder(w).Encode(serve.VerifyResponse{
			Method: "LFP", Proved: true,
			Invariants: map[string]string{"client": r.Header.Get("X-VS3-Client")},
		})
	})
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req serve.BatchRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("X-VS3-Backend", b.id)
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher := w.(http.Flusher)
		die := b.dieAfterBatchLines.Load()
		enc := json.NewEncoder(w)
		for i := range req.Items {
			if die > 0 && int64(i) >= die {
				panic(http.ErrAbortHandler)
			}
			b.served.Add(1)
			_ = enc.Encode(serve.BatchResult{
				Index: i, OK: true, Status: http.StatusOK,
				ProblemKey: serve.ProblemKey(req.Items[i].Spec),
				Verify:     &serve.VerifyResponse{Method: "LFP", Proved: true, Invariants: map[string]string{"by": b.id}},
			})
			flusher.Flush()
		}
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int64{
			"requests": b.served.Load(), "smt_queries": 10, "smt_cache_hits": 5,
		})
	})
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

func newTestRouter(t *testing.T, cfg Config, backends ...*stubBackend) (*Router, *httptest.Server) {
	for _, b := range backends {
		cfg.Backends = append(cfg.Backends, b.ts.URL)
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 50 * time.Millisecond
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)
	return r, ts
}

func postVerify(t *testing.T, url, spec string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(serve.VerifyRequest{Spec: spec, Method: "lfp"})
	resp, err := http.Post(url+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

// TestAffinityRouting is the tentpole property: the same spec always lands
// on the same backend, and distinct specs use more than one backend.
func TestAffinityRouting(t *testing.T) {
	b1 := newStubBackend(t, "backend-1")
	b2 := newStubBackend(t, "backend-2")
	_, ts := newTestRouter(t, Config{}, b1, b2)

	specs := make([]string, 16)
	for i := range specs {
		specs[i] = fmt.Sprintf("program P%d() { skip; }", i)
	}
	owner := map[string]string{}
	for round := 0; round < 3; round++ {
		for _, spec := range specs {
			resp, body := postVerify(t, ts.URL, spec)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			got := resp.Header.Get("X-VS3-Backend")
			if got == "" {
				t.Fatal("response missing X-VS3-Backend")
			}
			if want, ok := owner[spec]; ok && want != got {
				t.Fatalf("spec routed to %s then %s — affinity broken", want, got)
			}
			owner[spec] = got
			if k := resp.Header.Get("X-VS3-Problem-Key"); k != serve.ProblemKey(spec) {
				t.Errorf("problem key header %q, want %q", k, serve.ProblemKey(spec))
			}
		}
	}
	used := map[string]bool{}
	for _, o := range owner {
		used[o] = true
	}
	if len(used) < 2 {
		t.Errorf("16 distinct specs all routed to one backend; ring not spreading")
	}
}

// TestClientKeyPropagated checks the router forwards the originating
// client's fair-queue key, so backends schedule by end client.
func TestClientKeyPropagated(t *testing.T) {
	b1 := newStubBackend(t, "b1")
	_, ts := newTestRouter(t, Config{}, b1)
	body, _ := json.Marshal(serve.VerifyRequest{Spec: "program P() { skip; }"})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/verify", bytes.NewReader(body))
	req.Header.Set("X-VS3-Client", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr serve.VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	if seen := vr.Invariants["client"]; seen != "alice" {
		t.Errorf("backend saw client key %q, want alice", seen)
	}
}

// TestFailoverOnDeadBackend kills one backend outright: every key it owned
// must rehash to the survivor (deterministically), failovers must be
// counted, and recovery is observed once the backend returns.
func TestFailoverOnDeadBackend(t *testing.T) {
	b1 := newStubBackend(t, "backend-1")
	b2 := newStubBackend(t, "backend-2")
	r, ts := newTestRouter(t, Config{}, b1, b2)

	// Find a spec owned by b1 (by URL index) so we can kill its owner.
	var victim string
	for i := 0; ; i++ {
		spec := fmt.Sprintf("program V%d() { skip; }", i)
		if r.ring.owner(serve.ProblemKey(spec)) == 0 {
			victim = spec
			break
		}
	}
	resp, _ := postVerify(t, ts.URL, victim)
	firstOwner := resp.Header.Get("X-VS3-Backend")
	if firstOwner != "backend-1" {
		t.Fatalf("victim spec served by %s, expected backend-1", firstOwner)
	}

	b1.dieVerify.Store(true) // transport-level death, health endpoint still up? No: kill whole server.
	b1.ts.CloseClientConnections()
	b1.ts.Close()

	for i := 0; i < 3; i++ {
		resp, body := postVerify(t, ts.URL, victim)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request after backend death: status %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-VS3-Backend"); got != "backend-2" {
			t.Fatalf("failover routed to %q, want backend-2", got)
		}
	}

	sr := routerStats(t, ts.URL)
	if sr.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1", sr.Failovers)
	}
	var deadRow *BackendStats
	for i := range sr.Backends {
		if sr.Backends[i].URL == b1.ts.URL {
			deadRow = &sr.Backends[i]
		}
	}
	if deadRow == nil || deadRow.Healthy {
		t.Errorf("dead backend still marked healthy: %+v", sr.Backends)
	}
	if deadRow != nil && deadRow.Failovers < 1 {
		t.Errorf("per-backend failovers = %d, want >= 1", deadRow.Failovers)
	}
}

// TestBatchSplitMerge pushes one batch with keys owned by both backends and
// checks the merged stream: every original index exactly once, results
// produced by the affinity owner of each item.
func TestBatchSplitMerge(t *testing.T) {
	b1 := newStubBackend(t, "backend-1")
	b2 := newStubBackend(t, "backend-2")
	r, ts := newTestRouter(t, Config{}, b1, b2)

	var items []serve.VerifyRequest
	for i := 0; i < 12; i++ {
		items = append(items, serve.VerifyRequest{Spec: fmt.Sprintf("program B%d() { skip; }", i)})
	}
	results := postBatch(t, ts.URL, serve.BatchRequest{Items: items})
	if len(results) != len(items) {
		t.Fatalf("%d results for %d items", len(results), len(items))
	}
	seen := map[int]bool{}
	for _, res := range results {
		if seen[res.Index] {
			t.Fatalf("duplicate index %d", res.Index)
		}
		seen[res.Index] = true
		if !res.OK || res.Verify == nil {
			t.Fatalf("item %d failed: %+v", res.Index, res)
		}
		wantOwner := []string{"backend-1", "backend-2"}[r.ring.owner(serve.ProblemKey(items[res.Index].Spec))]
		if res.Verify.Invariants["by"] != wantOwner {
			t.Errorf("item %d served by %s, affinity owner is %s", res.Index, res.Verify.Invariants["by"], wantOwner)
		}
	}
	if b1.served.Load() == 0 || b2.served.Load() == 0 {
		t.Errorf("batch not split: served %d/%d", b1.served.Load(), b2.served.Load())
	}
}

// TestBatchFailoverMidStream cuts one backend after it has answered two
// items of its sub-batch: the unanswered items must be re-sent to the
// survivor and every index still answered exactly once.
func TestBatchFailoverMidStream(t *testing.T) {
	b1 := newStubBackend(t, "backend-1")
	b2 := newStubBackend(t, "backend-2")
	r, ts := newTestRouter(t, Config{}, b1, b2)

	// Build a batch where backend-1 owns at least 4 items.
	var items []serve.VerifyRequest
	owned := 0
	for i := 0; owned < 4 || len(items) < 10; i++ {
		spec := fmt.Sprintf("program M%d() { skip; }", i)
		if r.ring.owner(serve.ProblemKey(spec)) == 0 {
			owned++
		}
		items = append(items, serve.VerifyRequest{Spec: spec})
	}
	b1.dieAfterBatchLines.Store(2)

	results := postBatch(t, ts.URL, serve.BatchRequest{Items: items})
	if len(results) != len(items) {
		t.Fatalf("%d results for %d items", len(results), len(items))
	}
	seen := map[int]int{}
	okCount := 0
	for _, res := range results {
		seen[res.Index]++
		if res.OK {
			okCount++
		} else {
			t.Errorf("item %d not recovered: %+v", res.Index, res)
		}
	}
	for i := range items {
		if seen[i] != 1 {
			t.Errorf("index %d answered %d times", i, seen[i])
		}
	}
	sr := routerStats(t, ts.URL)
	if sr.Failovers < 1 {
		t.Errorf("failovers = %d after mid-stream death, want >= 1", sr.Failovers)
	}
}

// TestRandomPolicySpreads is the control arm: under Random, a single hot
// key is served by more than one backend (which is exactly why Random
// destroys cache affinity).
func TestRandomPolicySpreads(t *testing.T) {
	b1 := newStubBackend(t, "backend-1")
	b2 := newStubBackend(t, "backend-2")
	_, ts := newTestRouter(t, Config{Policy: Random}, b1, b2)

	used := map[string]bool{}
	for i := 0; i < 32; i++ {
		resp, _ := postVerify(t, ts.URL, "program Hot() { skip; }")
		used[resp.Header.Get("X-VS3-Backend")] = true
	}
	if len(used) < 2 {
		t.Errorf("32 random-policy requests for one key all hit one backend (p = 2^-31)")
	}
}

// TestRouterStatsAndMetrics checks the aggregated stats view and the
// Prometheus rendering.
func TestRouterStatsAndMetrics(t *testing.T) {
	b1 := newStubBackend(t, "backend-1")
	_, ts := newTestRouter(t, Config{ID: "router-under-test"}, b1)

	postVerify(t, ts.URL, "program S() { skip; }")
	sr := routerStats(t, ts.URL)
	if sr.RouterID != "router-under-test" || sr.Requests != 1 {
		t.Errorf("stats: %+v", sr)
	}
	if sr.Queries != 10 || sr.CacheHits != 5 {
		t.Errorf("backend totals not aggregated: queries=%d hits=%d", sr.Queries, sr.CacheHits)
	}
	if len(sr.Backends) != 1 || sr.Backends[0].ServerID != "backend-1" || sr.Backends[0].Routed != 1 {
		t.Errorf("backend rows: %+v", sr.Backends)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, want := range []string{
		`vs3router_requests_total{router="router-under-test"} 1`,
		"# TYPE vs3router_backend_routed_total counter",
		`vs3router_backend_healthy{backend="` + b1.ts.URL + `"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q\n%s", want, buf.String())
		}
	}
}

func routerStats(t *testing.T, base string) statsResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func postBatch(t *testing.T, base string, req serve.BatchRequest) []serve.BatchResult {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		t.Fatalf("batch status %d: %s", resp.StatusCode, out.String())
	}
	var results []serve.BatchResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var r serve.BatchResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return results
}
