package route

import (
	"fmt"
	"testing"
)

// TestRingDeterministicAndComplete checks every key maps to a stable,
// complete failover sequence: deterministic across ring rebuilds (two
// router processes agree), every backend exactly once.
func TestRingDeterministicAndComplete(t *testing.T) {
	r1 := newRing(ones(5), 64)
	r2 := newRing(ones(5), 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("problem-%d", i)
		s1, s2 := r1.sequence(key), r2.sequence(key)
		if len(s1) != 5 {
			t.Fatalf("sequence(%q) = %v, want all 5 backends", key, s1)
		}
		seen := map[int]bool{}
		for _, b := range s1 {
			if b < 0 || b >= 5 || seen[b] {
				t.Fatalf("sequence(%q) = %v: invalid or duplicate backend", key, s1)
			}
			seen[b] = true
		}
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Fatalf("rings disagree for %q: %v vs %v", key, s1, s2)
			}
		}
	}
}

// TestRingBalance checks vnode placement spreads the keyspace roughly
// evenly: no backend owns more than ~2.5x its fair share over many keys.
func TestRingBalance(t *testing.T) {
	const backends, keys = 4, 4000
	r := newRing(ones(backends), 128)
	counts := make([]int, backends)
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("%x-key-%d", i*7919, i))]++
	}
	fair := keys / backends
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("backend %d owns no keys: %v", b, counts)
		}
		if c > fair*5/2 {
			t.Errorf("backend %d owns %d of %d keys (fair share %d): %v", b, c, keys, fair, counts)
		}
	}
}

// TestRingStabilityUnderNodeLoss checks the consistent-hashing property the
// whole design leans on: removing one backend only moves the keys it owned;
// every other key keeps its owner (so the fleet's warm caches survive a
// node death).
func TestRingStabilityUnderNodeLoss(t *testing.T) {
	r := newRing(ones(4), 128)
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.sequence(key)
		owner := seq[0]
		// Simulate backend 0 dying: the effective owner is the first
		// element of the sequence that is not 0.
		var after int
		for _, b := range seq {
			if b != 0 {
				after = b
				break
			}
		}
		if owner == 0 {
			moved++
		} else if after != owner {
			t.Fatalf("key %q moved from %d to %d though backend 0 died", key, owner, after)
		} else {
			kept++
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d", moved, kept)
	}
}

// ones returns n unit weights (the pre-weighting ring shape).
func ones(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// TestRingWeightedProportionality checks keyspace shares track configured
// weights within tolerance: a weight-2 backend owns about twice the keys of
// a weight-1 backend.
func TestRingWeightedProportionality(t *testing.T) {
	const keys = 8000
	weights := []float64{1, 2, 1}
	r := newRing(weights, 128)
	counts := make([]int, len(weights))
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("%x-wkey-%d", i*7919, i))]++
	}
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	for b, w := range weights {
		expect := float64(keys) * w / totalW
		lo, hi := expect*0.7, expect*1.3
		if got := float64(counts[b]); got < lo || got > hi {
			t.Errorf("backend %d (weight %.1f) owns %d keys, want %.0f±30%% of %d: %v",
				b, w, counts[b], expect, keys, counts)
		}
	}
}

// TestRingWeightChangeStability checks the consistent-hashing property under
// reweighting: raising one backend's weight only moves keys onto that
// backend — no key migrates between two backends whose weights were left
// alone, so their warm working sets survive the reweight.
func TestRingWeightChangeStability(t *testing.T) {
	before := newRing([]float64{1, 1, 1, 1}, 128)
	after := newRing([]float64{1, 3, 1, 1}, 128)
	gained, kept := 0, 0
	for i := 0; i < 4000; i++ {
		key := fmt.Sprintf("rekey-%d", i)
		ob, oa := before.owner(key), after.owner(key)
		switch {
		case ob == oa:
			kept++
		case oa == 1:
			gained++ // moved onto the upweighted backend: expected
		default:
			t.Fatalf("key %q moved %d→%d though only backend 1 was reweighted", key, ob, oa)
		}
	}
	if gained == 0 || kept == 0 {
		t.Fatalf("degenerate reweight: gained=%d kept=%d", gained, kept)
	}
	// Tripling one of four equal backends should roughly double its share
	// of moved keys; just assert a material fraction actually moved.
	if gained < 400 {
		t.Errorf("only %d of 4000 keys moved to the tripled backend", gained)
	}
}
