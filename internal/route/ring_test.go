package route

import (
	"fmt"
	"testing"
)

// TestRingDeterministicAndComplete checks every key maps to a stable,
// complete failover sequence: deterministic across ring rebuilds (two
// router processes agree), every backend exactly once.
func TestRingDeterministicAndComplete(t *testing.T) {
	r1 := newRing(5, 64)
	r2 := newRing(5, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("problem-%d", i)
		s1, s2 := r1.sequence(key), r2.sequence(key)
		if len(s1) != 5 {
			t.Fatalf("sequence(%q) = %v, want all 5 backends", key, s1)
		}
		seen := map[int]bool{}
		for _, b := range s1 {
			if b < 0 || b >= 5 || seen[b] {
				t.Fatalf("sequence(%q) = %v: invalid or duplicate backend", key, s1)
			}
			seen[b] = true
		}
		for j := range s1 {
			if s1[j] != s2[j] {
				t.Fatalf("rings disagree for %q: %v vs %v", key, s1, s2)
			}
		}
	}
}

// TestRingBalance checks vnode placement spreads the keyspace roughly
// evenly: no backend owns more than ~2.5x its fair share over many keys.
func TestRingBalance(t *testing.T) {
	const backends, keys = 4, 4000
	r := newRing(backends, 128)
	counts := make([]int, backends)
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("%x-key-%d", i*7919, i))]++
	}
	fair := keys / backends
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("backend %d owns no keys: %v", b, counts)
		}
		if c > fair*5/2 {
			t.Errorf("backend %d owns %d of %d keys (fair share %d): %v", b, c, keys, fair, counts)
		}
	}
}

// TestRingStabilityUnderNodeLoss checks the consistent-hashing property the
// whole design leans on: removing one backend only moves the keys it owned;
// every other key keeps its owner (so the fleet's warm caches survive a
// node death).
func TestRingStabilityUnderNodeLoss(t *testing.T) {
	r := newRing(4, 128)
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		seq := r.sequence(key)
		owner := seq[0]
		// Simulate backend 0 dying: the effective owner is the first
		// element of the sequence that is not 0.
		var after int
		for _, b := range seq {
			if b != 0 {
				after = b
				break
			}
		}
		if owner == 0 {
			moved++
		} else if after != owner {
			t.Fatalf("key %q moved from %d to %d though backend 0 died", key, owner, after)
		} else {
			kept++
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate split: moved=%d kept=%d", moved, kept)
	}
}
