package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/serve"
)

// hedgeSpec is the paper's running example — small enough to verify in well
// under a second on a cold engine.
const hedgeSpec = `
program ArrayInit(array A, n) {
  i := 0;
  while loop (i < n) {
    A[i] := 0;
    i := i + 1;
  }
  assert(forall j. (0 <= j && j < n) => A[j] = 0);
}
template loop: forall j. ?v => A[j] = 0;
predicates v: j < 0, j <= 0, j > 0, j >= 0, j < i, j <= i, j > i, j >= i, j < n, j <= n, j > n, j >= n;
`

// slowRPC delays a backend's rpc dispatch, emulating a node whose queue is
// deep: the work has not started when the hedge delay elapses. A cancel
// arriving during the delay is counted and answered 499 without touching
// the engine — exactly what a cancelled queued request does.
type slowRPC struct {
	inner    rpc.Handler
	delay    time.Duration
	canceled atomic.Int64
}

func (s *slowRPC) ServeRPC(ctx context.Context, req rpc.Request) rpc.Response {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		s.canceled.Add(1)
		return rpc.Response{Status: 499, Body: []byte("{\"error\":\"canceled before start\"}\n")}
	}
	return s.inner.ServeRPC(ctx, req)
}

// serveBackend is one real vs3d-equivalent: a serve.Server with both its
// HTTP surface and an advertised binary rpc listener.
type serveBackend struct {
	srv  *serve.Server
	hts  *httptest.Server
	rsrv *rpc.Server
}

func startServeBackend(t *testing.T, id string, wrap func(rpc.Handler) rpc.Handler) *serveBackend {
	t.Helper()
	srv := serve.New(serve.Config{ID: id, Pool: 2})
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)
	var h rpc.Handler = srv
	if wrap != nil {
		h = wrap(h)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rsrv := rpc.NewServer(h, rpc.ServerConfig{})
	go func() { _ = rsrv.Serve(ln) }()
	t.Cleanup(func() { ln.Close(); rsrv.Close() })
	srv.AdvertiseRPC(ln.Addr().String())
	srv.SetRPCStats(rsrv.Stats)
	return &serveBackend{srv: srv, hts: hts, rsrv: rsrv}
}

// TestHedgeCancelsLoserSingleCount proves the hedging contract end to end
// over real backends speaking binary rpc: when the owner stalls, the hedge
// fires at the ring successor, the successor's verdict is the only one
// forwarded and counted, the stalled loser is cancelled (its handler sees
// ctx.Done), and no session lease or rpc stream leaks on either backend.
func TestHedgeCancelsLoserSingleCount(t *testing.T) {
	slow := &slowRPC{delay: 2 * time.Second}
	wrapSlow := func(h rpc.Handler) rpc.Handler { slow.inner = h; return slow }
	bSlow := startServeBackend(t, "slow-backend", wrapSlow)
	bFast := startServeBackend(t, "fast-backend", nil)

	cfg := Config{
		Backends:       []string{bSlow.hts.URL, bFast.hts.URL},
		Hedge:          true,
		HedgeMin:       5 * time.Millisecond,
		HedgeMax:       50 * time.Millisecond,
		HealthInterval: 25 * time.Millisecond,
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)

	// Wait for the health sweep to discover both rpc endpoints.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r.backends[0].rpcClient() != nil && r.backends[1].rpcClient() != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router never upgraded both backends to rpc")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Find a spec variant owned by the slow backend (trailing newlines change
	// the problem key, not the problem).
	spec := hedgeSpec
	for i := 0; r.Owner(serve.ProblemKey(spec)) != bSlow.hts.URL; i++ {
		if i > 10_000 {
			t.Fatal("no spec variant owned by the slow backend")
		}
		spec = hedgeSpec + strings.Repeat("\n", i+1)
	}

	body, _ := json.Marshal(serve.VerifyRequest{Spec: spec, Method: "lfp", TimeoutMS: 30_000})
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	_, _ = raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged verify: status %d: %s", resp.StatusCode, raw.Bytes())
	}
	var vr serve.VerifyResponse
	if err := json.Unmarshal(raw.Bytes(), &vr); err != nil {
		t.Fatalf("decoding %q: %v", raw.Bytes(), err)
	}
	if !vr.Proved || vr.Aborted {
		t.Fatalf("hedged verify returned %+v, want proved", vr)
	}
	if got := resp.Header.Get("X-VS3-Backend"); got != "fast-backend" {
		t.Fatalf("winner was %q, want the hedge (fast-backend)", got)
	}

	fired, won, canceled := r.HedgeStats()
	if fired < 1 || won < 1 || canceled < 1 {
		t.Fatalf("hedge counters fired=%d won=%d canceled=%d, want all ≥ 1", fired, won, canceled)
	}
	// Strict single-count: exactly one verdict forwarded, exactly one routed
	// increment across the fleet — the loser contributes nothing.
	if total := r.backends[0].routed.Load() + r.backends[1].routed.Load(); total != 1 {
		t.Fatalf("routed total = %d after one request, want 1", total)
	}

	// The loser must actually observe its cancellation and drain: handler saw
	// ctx.Done, no rpc stream stays open, no session lease stays held.
	deadline = time.Now().Add(5 * time.Second)
	for {
		_, slowStreams, _, _ := bSlow.rsrv.Stats()
		slowOK := slow.canceled.Load() >= 1 && slowStreams == 0
		fastOK := inFlight(t, bFast.hts.URL) == 0
		if slowOK && fastOK && inFlight(t, bSlow.hts.URL) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loser never drained: canceled=%d streams=%d", slow.canceled.Load(), slowStreams)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The hedge counters must also be visible on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbuf := new(bytes.Buffer)
	_, _ = mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"vs3router_hedge_fired_total", "vs3router_hedge_won_total", "vs3router_hedge_canceled_total", "vs3router_rpc_conns"} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// inFlight reads a backend's in_flight gauge over its HTTP stats surface.
func inFlight(t *testing.T, base string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		InFlight int64 `json:"in_flight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.InFlight
}

// TestRPCFallbackToHTTP pins a backend that refuses the VS3R handshake back
// to HTTP: the request still succeeds over the HTTP leg, and the backend is
// never retried over binary.
func TestRPCFallbackToHTTP(t *testing.T) {
	srv := serve.New(serve.Config{ID: "http-only", Pool: 1})
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)
	// Advertise an rpc endpoint that is actually another HTTP server: the
	// handshake will be refused.
	notRPC := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	t.Cleanup(notRPC.Close)
	srv.AdvertiseRPC(strings.TrimPrefix(notRPC.URL, "http://"))

	r, err := New(Config{Backends: []string{hts.URL}, HealthInterval: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ts := httptest.NewServer(r.Handler())
	t.Cleanup(ts.Close)

	deadline := time.Now().Add(5 * time.Second)
	for r.backends[0].rpcClient() == nil {
		if time.Now().After(deadline) {
			t.Fatal("router never adopted the advertised rpc endpoint")
		}
		time.Sleep(10 * time.Millisecond)
	}

	body, _ := json.Marshal(serve.VerifyRequest{Spec: hedgeSpec, Method: "lfp", TimeoutMS: 30_000})
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	_, _ = raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback verify: status %d: %s", resp.StatusCode, raw.Bytes())
	}
	if !r.backends[0].notRPC.Load() {
		t.Fatal("backend not pinned to HTTP after refused handshake")
	}
	if r.backends[0].rpcClient() != nil {
		t.Fatal("rpc client survived a refused handshake")
	}
	// A second request must go straight over HTTP and still succeed.
	resp2, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second fallback verify: status %d", resp2.StatusCode)
	}
}

// TestWeightedRouterShares drives many distinct keys through a weighted
// fleet of stub backends and checks routed shares track the 2:1 weights.
func TestWeightedRouterShares(t *testing.T) {
	b1 := newStubBackend(t, "heavy")
	b2 := newStubBackend(t, "light")
	r, ts := newTestRouter(t, Config{Weights: []float64{2, 1}}, b1, b2)
	_ = r
	const n = 300
	for i := 0; i < n; i++ {
		resp, body := postVerify(t, ts.URL, fmt.Sprintf("program W%d() { skip; }", i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	heavy, light := b1.served.Load(), b2.served.Load()
	if heavy+light != n {
		t.Fatalf("served %d+%d, want %d", heavy, light, n)
	}
	// Expect ~2/3 on the heavy backend; allow a generous band.
	if heavy < n/2 || heavy > n*5/6 {
		t.Errorf("heavy backend served %d of %d (want ≈%d)", heavy, n, n*2/3)
	}
}
