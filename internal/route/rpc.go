package route

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/rpc"
	"repro/internal/serve"
)

// ServeRPC implements rpc.Handler, putting a binary front on the whole
// fleet: a caller speaking VS3R to the router gets the same key-affine
// routing, failover, and hedging as an HTTP caller, and the backend leg
// independently upgrades to binary where the backend advertises it.
func (r *Router) ServeRPC(ctx context.Context, req rpc.Request) rpc.Response {
	if req.Spec == "" {
		return rpcErrorResponse(http.StatusBadRequest, fmt.Errorf("missing \"spec\""))
	}
	path := "/v1/verify"
	if req.Kind == rpc.KindPreconditions {
		path = "/v1/preconditions"
	}
	// The HTTP fallback leg needs a JSON body; rebuild the one an HTTP
	// caller would have sent.
	body, err := json.Marshal(serve.VerifyRequest{Spec: req.Spec, Method: req.Method, TimeoutMS: req.TimeoutMS})
	if err != nil {
		return rpcErrorResponse(http.StatusInternalServerError, err)
	}
	client := req.Client
	if client == "" {
		client = "rpc"
	}
	r.requests.Add(1)
	key := serve.ProblemKey(req.Spec)
	ctx, cancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
	defer cancel()
	res := r.execute(ctx, key, client, path, body, req)
	if res.err != nil {
		r.noBackend.Add(1)
		return rpcErrorResponse(http.StatusBadGateway, fmt.Errorf("no live backend: %w", res.err))
	}
	return rpc.Response{Status: res.status, ProblemKey: res.problemKey, Backend: res.backendID, Body: res.body}
}

func rpcErrorResponse(status int, err error) rpc.Response {
	body, _ := json.MarshalIndent(errorResponse{Error: err.Error()}, "", "  ")
	return rpc.Response{Status: status, Body: append(body, '\n')}
}

// Owner returns the URL of the backend that owns key on the ring (ignoring
// health), or "" with no backends. Exported for tests and operational
// tooling that needs to predict placement.
func (r *Router) Owner(key string) string {
	idx := r.ring.owner(key)
	if idx < 0 {
		return ""
	}
	return r.backends[idx].url
}

// HedgeStats returns the lifetime hedge counters: hedges fired at ring
// successors, races the hedge won, and losers cancelled after a win.
func (r *Router) HedgeStats() (fired, won, canceled int64) {
	return r.hedgeFired.Load(), r.hedgeWon.Load(), r.hedgeCanceled.Load()
}
