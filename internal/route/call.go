package route

import (
	"context"
	"errors"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/rpc"
)

// callResult is one backend's buffered answer to a single verify or
// preconditions request, transport-agnostic: the same fields come back
// whether the call crossed binary rpc or HTTP. err is non-nil only for
// transport failures (the failover/hedge-loss signal); an HTTP-level answer
// (429 shed, 5xx) is a result, not an error.
type callResult struct {
	status     int
	problemKey string
	backendID  string
	retryAfter string
	body       []byte
	err        error
}

// callOne executes req against b, preferring the backend's persistent binary
// rpc pool and falling back to HTTP. A refused VS3R handshake pins the
// backend to HTTP permanently (it is an older build, not a dead node); any
// other rpc error is a transport failure, the same failover signal an HTTP
// connection cut produces.
func (r *Router) callOne(ctx context.Context, b *backend, path, client string, body []byte, req rpc.Request) callResult {
	start := time.Now()
	if c := b.rpcClient(); c != nil {
		req.Client = client
		resp, err := c.Call(ctx, req)
		switch {
		case err == nil:
			r.observeLatency(time.Since(start))
			if resp.Backend != "" {
				id := resp.Backend
				b.serverID.Store(&id)
			}
			return callResult{
				status:     resp.Status,
				problemKey: resp.ProblemKey,
				backendID:  resp.Backend,
				retryAfter: retryAfterHint(resp.Status),
				body:       resp.Body,
			}
		case errors.Is(err, rpc.ErrNotRPC):
			b.dropRPC()
			// Fall through to HTTP below: the backend is alive, just binary-blind.
		default:
			return callResult{err: err}
		}
	}
	resp, err := r.forward(ctx, b, path, client, body)
	if err != nil {
		return callResult{err: err}
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return callResult{err: err}
	}
	r.observeLatency(time.Since(start))
	return callResult{
		status:     resp.StatusCode,
		problemKey: resp.Header.Get("X-VS3-Problem-Key"),
		backendID:  resp.Header.Get("X-VS3-Backend"),
		retryAfter: resp.Header.Get("Retry-After"),
		body:       buf,
	}
}

// retryAfterHint mirrors the Retry-After header a backend's HTTP surface
// sets on 429 (the binary protocol carries status + body only).
func retryAfterHint(status int) string {
	if status == http.StatusTooManyRequests {
		return "1"
	}
	return ""
}

// observeLatency feeds one completed-call latency into the rolling window
// behind the adaptive hedge delay.
func (r *Router) observeLatency(d time.Duration) {
	r.latMu.Lock()
	r.lats[r.latNext] = d
	r.latNext = (r.latNext + 1) % len(r.lats)
	if r.latN < len(r.lats) {
		r.latN++
	}
	r.latMu.Unlock()
}

// hedgeDelay is how long the owner backend gets before the same request is
// fired at its ring successor: the rolling p95 of recent backend latency,
// clamped to [HedgeMin, HedgeMax]. Under 20 samples the estimate is noise,
// so a fixed 25ms stands in.
func (r *Router) hedgeDelay() time.Duration {
	r.latMu.Lock()
	n := r.latN
	sample := make([]time.Duration, n)
	copy(sample, r.lats[:n])
	r.latMu.Unlock()
	if n < 20 {
		return 25 * time.Millisecond
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	p95 := sample[n*95/100]
	if p95 < r.cfg.HedgeMin {
		return r.cfg.HedgeMin
	}
	if p95 > r.cfg.HedgeMax {
		return r.cfg.HedgeMax
	}
	return p95
}

// execute routes one request over the candidate sequence for its key. Under
// Affinity with hedging enabled the first two candidates race (owner first,
// successor after the adaptive delay); any remaining candidates serve as the
// sequential failover tail, exactly as without hedging. The returned result
// is terminal: a transport-level total failure comes back as err != nil.
func (r *Router) execute(ctx context.Context, key, client, path string, body []byte, req rpc.Request) callResult {
	cands := r.candidates(key)
	if len(cands) == 0 {
		return callResult{err: errors.New("no backends configured")}
	}
	rest := cands
	var lastErr error
	if r.cfg.Hedge && r.cfg.Policy == Affinity && len(cands) >= 2 {
		res, done := r.raceTwo(ctx, r.backends[cands[0]], r.backends[cands[1]], path, client, body, req)
		if done {
			return res
		}
		lastErr = res.err
		rest = cands[2:] // both racers failed at transport level; fall through
	}
	for _, idx := range rest {
		b := r.backends[idx]
		res := r.callOne(ctx, b, path, client, body, req)
		if res.err == nil {
			b.routed.Add(1)
			return res
		}
		// Transport failure: the backend never produced an answer. Mark it
		// down and rehash to the next node in ring order.
		b.healthy.Store(false)
		b.failovers.Add(1)
		r.failovers.Add(1)
		lastErr = res.err
		if ctx.Err() != nil {
			break
		}
	}
	return callResult{err: lastErr}
}

// raceTwo runs the hedged race between the owner backend and its ring
// successor. The first transport-successful answer wins and is the only one
// forwarded (strict single-count: the loser's context is cancelled, which
// the backend treats as a client disconnect — its run aborts and its verdict
// is discarded unseen). Returns done=false only when both sides failed at
// the transport level, handing the key to the sequential failover tail.
func (r *Router) raceTwo(ctx context.Context, owner, succ *backend, path, client string, body []byte, req rpc.Request) (callResult, bool) {
	type raceRes struct {
		res   callResult
		b     *backend
		hedge bool
	}
	rctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	resc := make(chan raceRes, 2)
	launch := func(b *backend, hedge bool) {
		go func() {
			resc <- raceRes{res: r.callOne(rctx, b, path, client, body, req), b: b, hedge: hedge}
		}()
	}
	launch(owner, false)

	timer := time.NewTimer(r.hedgeDelay())
	defer timer.Stop()
	inflight := 1
	fired := false
	select {
	case rr := <-resc:
		inflight--
		if rr.res.err == nil {
			rr.b.routed.Add(1)
			return rr.res, true
		}
		rr.b.healthy.Store(false)
		rr.b.failovers.Add(1)
		r.failovers.Add(1)
	case <-timer.C:
		r.hedgeFired.Add(1)
		launch(succ, true)
		fired = true
		inflight = 2
	}
	if !fired {
		// The owner failed before the hedge delay elapsed; no race happened.
		// The successor is simply the next sequential candidate.
		res := r.callOne(rctx, succ, path, client, body, req)
		if res.err == nil {
			succ.routed.Add(1)
			return res, true
		}
		succ.healthy.Store(false)
		succ.failovers.Add(1)
		r.failovers.Add(1)
		return callResult{err: res.err}, false
	}
	var lastErr error
	for inflight > 0 {
		rr := <-resc
		inflight--
		if rr.res.err == nil {
			if rr.hedge {
				r.hedgeWon.Add(1)
			}
			if inflight > 0 {
				// cancelAll (deferred) aborts the slower side; its eventual
				// answer lands in the buffered channel and is dropped.
				r.hedgeCanceled.Add(1)
			}
			rr.b.routed.Add(1)
			return rr.res, true
		}
		lastErr = rr.res.err
		rr.b.healthy.Store(false)
		rr.b.failovers.Add(1)
		r.failovers.Add(1)
	}
	return callResult{err: lastErr}, false
}
