package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.RecordQuery(time.Millisecond)
	c.RecordNegSolutionSize(1)
	c.RecordOptSolutionCount(2)
	c.RecordCandidates(3)
	c.RecordSATSize(4, 5)
	// No panic = pass.
}

func TestRecordAndRead(t *testing.T) {
	c := New()
	c.RecordQuery(2 * time.Millisecond)
	c.RecordQuery(20 * time.Millisecond)
	c.RecordNegSolutionSize(1)
	c.RecordNegSolutionSize(3)
	c.RecordOptSolutionCount(1)
	c.RecordCandidates(8)
	c.RecordSATSize(100, 40)
	if got := len(c.QueryDurations()); got != 2 {
		t.Errorf("queries = %d", got)
	}
	if got := c.NegSolutionSizes(); len(got) != 2 || got[1] != 3 {
		t.Errorf("neg sizes = %v", got)
	}
	clauses, vars := c.SATSizes()
	if clauses[0] != 100 || vars[0] != 40 {
		t.Errorf("sat sizes = %v %v", clauses, vars)
	}
}

func TestDurationHistogram(t *testing.T) {
	ds := []time.Duration{
		500 * time.Microsecond,
		5 * time.Millisecond,
		50 * time.Millisecond,
		500 * time.Millisecond,
		5 * time.Second,
	}
	h := DurationHistogram(ds)
	if len(h) != 5 {
		t.Fatalf("buckets = %d", len(h))
	}
	for i, b := range h {
		if b.Count != 1 {
			t.Errorf("bucket %d (%s) = %d, want 1", i, b.Label, b.Count)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{0, 1, 1, 2, 9}, []int{0, 1, 2})
	if h["<=0"] != 1 || h["<=1"] != 2 || h["<=2"] != 1 || h[">2"] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestMedianMax(t *testing.T) {
	if Median(nil) != 0 || Max(nil) != 0 {
		t.Error("empty stats")
	}
	if Median([]int{5, 1, 3}) != 3 {
		t.Errorf("median = %d", Median([]int{5, 1, 3}))
	}
	if Max([]int{5, 1, 3}) != 5 {
		t.Error("max")
	}
}

func TestWriteSummary(t *testing.T) {
	c := New()
	c.RecordQuery(time.Millisecond)
	c.RecordCandidates(4)
	var b strings.Builder
	c.WriteSummary(&b)
	out := b.String()
	for _, want := range []string{"SMT queries: 1", "candidate"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.RecordQuery(time.Microsecond)
				c.RecordCandidates(j)
			}
		}()
	}
	wg.Wait()
	if got := len(c.QueryDurations()); got != 800 {
		t.Errorf("queries = %d, want 800", got)
	}
}
