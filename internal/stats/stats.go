// Package stats collects the runtime statistics reported in Figures 4–9 of
// the paper: SMT query latencies, sizes of optimal solutions, iterative
// candidate counts, and SAT formula sizes. A single Collector can be shared
// across the whole pipeline; all methods are safe for concurrent use.
package stats

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Collector accumulates statistics across a verification run.
type Collector struct {
	mu sync.Mutex

	queryDurations []time.Duration // Figure 4: one entry per SMT validity query
	negSolSizes    []int           // Figure 6: #predicates per OptimalNegativeSolutions solution
	optSolCounts   []int           // Figure 7: #solutions per OptimalSolutions call
	candidates     []int           // Figure 8: candidate-set size per iterative step
	satClauses     []int           // Figure 9: #clauses per CFP SAT formula
	satVars        []int           // Figure 9 companion: #variables per CFP SAT formula
	coreSizes      []int           // #predicates per unsat core extracted by consistency probes
	coreEvictions  int             // cores evicted from the engine-global store to admit newer ones
	fmCapHits      int             // Fourier–Motzkin runs that hit the derived-constraint cap
	storeHits      int             // lookups answered from the on-disk knowledge store
	storeMisses    int             // knowledge-store lookups that found nothing
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// RecordQuery records the latency of one SMT validity query (Figure 4).
func (c *Collector) RecordQuery(d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.queryDurations = append(c.queryDurations, d)
	c.mu.Unlock()
}

// RecordNegSolutionSize records the number of predicates in one solution
// returned by OptimalNegativeSolutions (Figure 6).
func (c *Collector) RecordNegSolutionSize(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.negSolSizes = append(c.negSolSizes, n)
	c.mu.Unlock()
}

// RecordOptSolutionCount records the number of optimal solutions returned by
// one OptimalSolutions call (Figure 7).
func (c *Collector) RecordOptSolutionCount(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.optSolCounts = append(c.optSolCounts, n)
	c.mu.Unlock()
}

// RecordCandidates records the size of the candidate set at one step of an
// iterative fixed-point run (Figure 8).
func (c *Collector) RecordCandidates(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.candidates = append(c.candidates, n)
	c.mu.Unlock()
}

// RecordSATSize records the clause and variable counts of one ψ_Prog SAT
// instance built by the constraint-based algorithm (Figure 9).
func (c *Collector) RecordSATSize(clauses, vars int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.satClauses = append(c.satClauses, clauses)
	c.satVars = append(c.satVars, vars)
	c.mu.Unlock()
}

// RecordCoreSize records the number of predicates in one unsat core
// extracted from a failed consistency probe.
func (c *Collector) RecordCoreSize(n int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.coreSizes = append(c.coreSizes, n)
	c.mu.Unlock()
}

// RecordCoreEviction records that one stored core was evicted from the
// engine-global core store to make room for a newer one.
func (c *Collector) RecordCoreEviction() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.coreEvictions++
	c.mu.Unlock()
}

// CoreEvictions returns how many core-store evictions were recorded.
func (c *Collector) CoreEvictions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coreEvictions
}

// RecordFMCapHit records that one Fourier–Motzkin elimination hit the
// derived-constraint cap and returned a conservative (Truncated) answer
// instead of a decision.
func (c *Collector) RecordFMCapHit() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.fmCapHits++
	c.mu.Unlock()
}

// FMCapHits returns how many Fourier–Motzkin cap hits were recorded.
func (c *Collector) FMCapHits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fmCapHits
}

// RecordStoreLookup records one lookup against the on-disk knowledge store
// (a verdict, consistency, lemma-seed, or outcome probe) and whether it hit.
func (c *Collector) RecordStoreLookup(hit bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if hit {
		c.storeHits++
	} else {
		c.storeMisses++
	}
	c.mu.Unlock()
}

// StoreLookups returns the knowledge-store hit/miss counts recorded so far.
func (c *Collector) StoreLookups() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.storeHits, c.storeMisses
}

// Merge appends everything recorded in o into c. Safe for concurrent use on
// c; o must not be concurrently recorded into while it is being merged.
// It lets short-lived collectors (one per request or benchmark cell) fold
// into a long-lived aggregate.
func (c *Collector) Merge(o *Collector) {
	if c == nil || o == nil {
		return
	}
	o.mu.Lock()
	qd := append([]time.Duration(nil), o.queryDurations...)
	ns := append([]int(nil), o.negSolSizes...)
	oc := append([]int(nil), o.optSolCounts...)
	cd := append([]int(nil), o.candidates...)
	sc := append([]int(nil), o.satClauses...)
	sv := append([]int(nil), o.satVars...)
	cs := append([]int(nil), o.coreSizes...)
	ce := o.coreEvictions
	fm := o.fmCapHits
	sh, sm := o.storeHits, o.storeMisses
	o.mu.Unlock()
	c.mu.Lock()
	c.queryDurations = append(c.queryDurations, qd...)
	c.negSolSizes = append(c.negSolSizes, ns...)
	c.optSolCounts = append(c.optSolCounts, oc...)
	c.candidates = append(c.candidates, cd...)
	c.satClauses = append(c.satClauses, sc...)
	c.satVars = append(c.satVars, sv...)
	c.coreSizes = append(c.coreSizes, cs...)
	c.coreEvictions += ce
	c.fmCapHits += fm
	c.storeHits += sh
	c.storeMisses += sm
	c.mu.Unlock()
}

// Snapshot is a fixed-size, mergeable summary of a Collector: every field is
// a count, so snapshots can be added (fleet aggregation) and subtracted
// (request-scoped deltas between two points of a long-lived collector). The
// latency histogram uses the Figure 4 buckets in DurationHistogram order.
type Snapshot struct {
	Queries        int    `json:"smt_queries"`
	QueryBuckets   [5]int `json:"smt_query_latency_buckets"`
	NegSolutions   int    `json:"neg_solutions"`
	OptCalls       int    `json:"optimal_calls"`
	CandidateSteps int    `json:"candidate_steps"`
	SATFormulas    int    `json:"sat_formulas"`
	UnsatCores     int    `json:"unsat_cores"`
	CoreEvictions  int    `json:"core_evictions"`
	FMCapHits      int    `json:"fm_cap_hits"`
	StoreHits      int    `json:"store_hits"`
	StoreMisses    int    `json:"store_misses"`
}

// QueryBucketLabels labels Snapshot.QueryBuckets, matching DurationHistogram.
var QueryBucketLabels = [5]string{"<=1ms", "<=10ms", "<=100ms", "<=1s", ">1s"}

// Snapshot summarizes everything recorded so far.
func (c *Collector) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Queries:        len(c.queryDurations),
		NegSolutions:   len(c.negSolSizes),
		OptCalls:       len(c.optSolCounts),
		CandidateSteps: len(c.candidates),
		SATFormulas:    len(c.satClauses),
		UnsatCores:     len(c.coreSizes),
		CoreEvictions:  c.coreEvictions,
		FMCapHits:      c.fmCapHits,
		StoreHits:      c.storeHits,
		StoreMisses:    c.storeMisses,
	}
	for i, b := range DurationHistogram(c.queryDurations) {
		s.QueryBuckets[i] = b.Count
	}
	return s
}

// Add returns the field-wise sum of two snapshots.
func (s Snapshot) Add(o Snapshot) Snapshot {
	s.Queries += o.Queries
	for i := range s.QueryBuckets {
		s.QueryBuckets[i] += o.QueryBuckets[i]
	}
	s.NegSolutions += o.NegSolutions
	s.OptCalls += o.OptCalls
	s.CandidateSteps += o.CandidateSteps
	s.SATFormulas += o.SATFormulas
	s.UnsatCores += o.UnsatCores
	s.CoreEvictions += o.CoreEvictions
	s.FMCapHits += o.FMCapHits
	s.StoreHits += o.StoreHits
	s.StoreMisses += o.StoreMisses
	return s
}

// Sub returns the field-wise difference s − o: the activity recorded between
// the moment o was taken and the moment s was taken on the same collector.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	s.Queries -= o.Queries
	for i := range s.QueryBuckets {
		s.QueryBuckets[i] -= o.QueryBuckets[i]
	}
	s.NegSolutions -= o.NegSolutions
	s.OptCalls -= o.OptCalls
	s.CandidateSteps -= o.CandidateSteps
	s.SATFormulas -= o.SATFormulas
	s.UnsatCores -= o.UnsatCores
	s.CoreEvictions -= o.CoreEvictions
	s.FMCapHits -= o.FMCapHits
	s.StoreHits -= o.StoreHits
	s.StoreMisses -= o.StoreMisses
	return s
}

// CoreSizes returns a copy of the recorded unsat-core sizes.
func (c *Collector) CoreSizes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.coreSizes...)
}

// QueryDurations returns a copy of the recorded SMT query latencies.
func (c *Collector) QueryDurations() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.queryDurations...)
}

// NegSolutionSizes returns a copy of the recorded per-solution predicate counts.
func (c *Collector) NegSolutionSizes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.negSolSizes...)
}

// OptSolutionCounts returns a copy of the recorded per-call solution counts.
func (c *Collector) OptSolutionCounts() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.optSolCounts...)
}

// Candidates returns a copy of the recorded candidate-set sizes.
func (c *Collector) Candidates() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.candidates...)
}

// SATSizes returns copies of the recorded clause and variable counts.
func (c *Collector) SATSizes() (clauses, vars []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.satClauses...), append([]int(nil), c.satVars...)
}

// Histogram buckets integer samples and returns bucket→count, with bucket
// upper bounds chosen from the supplied cut points (last bucket is open).
func Histogram(samples []int, cuts []int) map[string]int {
	out := map[string]int{}
	for _, s := range samples {
		placed := false
		for _, c := range cuts {
			if s <= c {
				out[fmt.Sprintf("<=%d", c)]++
				placed = true
				break
			}
		}
		if !placed {
			out[fmt.Sprintf(">%d", cuts[len(cuts)-1])]++
		}
	}
	return out
}

// DurationHistogram buckets query latencies by the paper's Figure 4 cuts
// (1ms, 10ms, 100ms, 1s, >1s) and returns labeled counts in display order.
func DurationHistogram(ds []time.Duration) []struct {
	Label string
	Count int
} {
	cuts := []struct {
		label string
		max   time.Duration
	}{
		{"<=1ms", time.Millisecond},
		{"<=10ms", 10 * time.Millisecond},
		{"<=100ms", 100 * time.Millisecond},
		{"<=1s", time.Second},
	}
	counts := make([]int, len(cuts)+1)
	for _, d := range ds {
		placed := false
		for i, c := range cuts {
			if d <= c.max {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(cuts)]++
		}
	}
	out := make([]struct {
		Label string
		Count int
	}, 0, len(cuts)+1)
	for i, c := range cuts {
		out = append(out, struct {
			Label string
			Count int
		}{c.label, counts[i]})
	}
	out = append(out, struct {
		Label string
		Count int
	}{">1s", counts[len(cuts)]})
	return out
}

// Median returns the median of the samples (0 for an empty slice).
func Median(samples []int) int {
	if len(samples) == 0 {
		return 0
	}
	s := append([]int(nil), samples...)
	sort.Ints(s)
	return s[len(s)/2]
}

// Max returns the maximum of the samples (0 for an empty slice).
func Max(samples []int) int {
	m := 0
	for _, s := range samples {
		if s > m {
			m = s
		}
	}
	return m
}

// WriteSummary prints a human-readable digest of everything collected.
func (c *Collector) WriteSummary(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(w, "SMT queries: %d\n", len(c.queryDurations))
	for _, b := range DurationHistogram(c.queryDurations) {
		fmt.Fprintf(w, "  %-8s %d\n", b.Label, b.Count)
	}
	fmt.Fprintf(w, "OptimalNegativeSolutions solution sizes: median=%d max=%d over %d solutions\n",
		Median(c.negSolSizes), Max(c.negSolSizes), len(c.negSolSizes))
	fmt.Fprintf(w, "OptimalSolutions solution counts: median=%d max=%d over %d calls\n",
		Median(c.optSolCounts), Max(c.optSolCounts), len(c.optSolCounts))
	fmt.Fprintf(w, "Iterative candidate sizes: median=%d max=%d over %d steps\n",
		Median(c.candidates), Max(c.candidates), len(c.candidates))
	fmt.Fprintf(w, "CFP SAT sizes: median clauses=%d max clauses=%d over %d formulas\n",
		Median(c.satClauses), Max(c.satClauses), len(c.satClauses))
	fmt.Fprintf(w, "Unsat core sizes: median=%d max=%d over %d cores (%d evicted)\n",
		Median(c.coreSizes), Max(c.coreSizes), len(c.coreSizes), c.coreEvictions)
	fmt.Fprintf(w, "Fourier-Motzkin cap hits (conservative answers): %d\n", c.fmCapHits)
}
