package stats

import (
	"testing"
	"time"
)

func record(c *Collector, queries int) {
	for i := 0; i < queries; i++ {
		c.RecordQuery(time.Duration(i) * time.Millisecond)
	}
	c.RecordNegSolutionSize(2)
	c.RecordOptSolutionCount(3)
	c.RecordCandidates(4)
	c.RecordSATSize(10, 5)
	c.RecordCoreSize(1)
	c.RecordCoreEviction()
}

func TestSnapshotCounts(t *testing.T) {
	c := New()
	record(c, 3)
	s := c.Snapshot()
	want := Snapshot{
		Queries:        3,
		NegSolutions:   1,
		OptCalls:       1,
		CandidateSteps: 1,
		SATFormulas:    1,
		UnsatCores:     1,
		CoreEvictions:  1,
	}
	want.QueryBuckets[0] = 2 // 0ms, 1ms
	want.QueryBuckets[1] = 1 // 2ms
	if s != want {
		t.Errorf("Snapshot() = %+v, want %+v", s, want)
	}
	if (&Collector{}).Snapshot() != (Snapshot{}) {
		t.Error("empty collector snapshot not zero")
	}
	var nilc *Collector
	if nilc.Snapshot() != (Snapshot{}) {
		t.Error("nil collector snapshot not zero")
	}
}

// TestSnapshotAddSub checks the two laws the server relies on: Sub of a
// later snapshot against an earlier one on the same collector yields exactly
// the activity in between (request-scoped deltas), and Add folds deltas into
// a fleet aggregate.
func TestSnapshotAddSub(t *testing.T) {
	c := New()
	record(c, 2)
	before := c.Snapshot()
	record(c, 5)
	delta := c.Snapshot().Sub(before)
	if delta.Queries != 5 {
		t.Errorf("delta queries = %d, want 5", delta.Queries)
	}
	if delta.NegSolutions != 1 || delta.CoreEvictions != 1 {
		t.Errorf("delta = %+v, want one of each non-query record", delta)
	}
	if got := before.Add(delta); got != c.Snapshot() {
		t.Errorf("before + delta = %+v, want %+v", got, c.Snapshot())
	}
	if got := c.Snapshot().Sub(c.Snapshot()); got != (Snapshot{}) {
		t.Errorf("s - s = %+v, want zero", got)
	}
}

func TestMergeFoldsCollectors(t *testing.T) {
	agg := New()
	record(agg, 1)
	req := New()
	record(req, 4)
	agg.Merge(req)
	got := agg.Snapshot()
	if got.Queries != 5 {
		t.Errorf("merged queries = %d, want 5", got.Queries)
	}
	if got.NegSolutions != 2 || got.SATFormulas != 2 || got.CoreEvictions != 2 {
		t.Errorf("merged snapshot = %+v, want two of each record", got)
	}
	// The source is unchanged, and merging nil is a no-op.
	if req.Snapshot().Queries != 4 {
		t.Error("Merge mutated its source")
	}
	agg.Merge(nil)
	var nilc *Collector
	nilc.Merge(req)
	if agg.Snapshot().Queries != 5 {
		t.Error("Merge(nil) changed the aggregate")
	}
}
