package smt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/logic"
)

// stressFormulas builds n syntactically distinct, non-trivial formulas
// (they survive Simplify, so every Valid call goes through the cache).
func stressFormulas(n int) []logic.Formula {
	out := make([]logic.Formula, 0, n)
	for i := 0; i < n; i++ {
		x := logic.V(fmt.Sprintf("x%d", i))
		// x + i > x — valid for i > 0, and distinct per i.
		out = append(out, logic.GtF(logic.Plus(x, logic.I(int64(i+1))), x))
	}
	return out
}

// TestConcurrentValidStress hammers one shared solver from 32 goroutines
// with overlapping formulas and asserts (a) every verdict is correct, and
// (b) the cache-hit accounting is consistent: each call increments exactly
// one of the two counters, so Queries + CacheHits == total calls.
func TestConcurrentValidStress(t *testing.T) {
	const (
		goroutines = 32
		rounds     = 40
		distinct   = 24
	)
	s := NewSolver(Options{})
	fs := stressFormulas(distinct)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				f := fs[(g*7+r)%distinct] // overlapping access pattern
				if !s.Valid(f) {
					t.Errorf("goroutine %d: Valid(%s) = false", g, f)
					return
				}
				calls.Add(1)
			}
		}(g)
	}
	wg.Wait()
	total := calls.Load()
	if got := s.NumQueries() + s.NumCacheHits(); got != total {
		t.Errorf("Queries(%d) + CacheHits(%d) = %d, want %d calls",
			s.NumQueries(), s.NumCacheHits(), got, total)
	}
	// Singleflight: each distinct formula is decided at most once even under
	// heavy overlap (no duplicated work, no lost memoization).
	if q := s.NumQueries(); q > distinct {
		t.Errorf("decided %d queries for %d distinct formulas; singleflight failed", q, distinct)
	}
}

// TestConcurrentValidBoundedCache repeats the stress with a tight cache
// bound: eviction must stay race-free and accounting exact even when
// verdicts are continually evicted and re-decided.
func TestConcurrentValidBoundedCache(t *testing.T) {
	s := NewSolver(Options{CacheSize: cacheShards}) // one entry per shard
	fs := stressFormulas(64)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 32; r++ {
				if !s.Valid(fs[(g+r)%len(fs)]) {
					t.Errorf("unexpected invalid verdict")
					return
				}
				calls.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if got := s.NumQueries() + s.NumCacheHits(); got != calls.Load() {
		t.Errorf("Queries+CacheHits = %d, want %d", got, calls.Load())
	}
}

// TestConcurrentStopDoesNotMemoize checks the Stop contract under
// concurrency: verdicts reached after Stop fires are conservative and must
// not persist in the memo table.
func TestConcurrentStopDoesNotMemoize(t *testing.T) {
	var stopped atomic.Bool
	s := NewSolver(Options{Stop: func() bool { return stopped.Load() }})
	f := stressFormulas(1)[0]
	stopped.Store(true)
	s.Valid(f)
	if s.cache.size() != 0 {
		t.Errorf("abandoned verdict was memoized (%d entries)", s.cache.size())
	}
}

// BenchmarkValidSequential decides a fixed workload of distinct formulas on
// one goroutine with a cold cache per iteration (the pre-parallel baseline).
func BenchmarkValidSequential(b *testing.B) {
	fs := benchWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSolver(Options{})
		for _, f := range fs {
			s.Valid(f)
		}
	}
}

// BenchmarkValidParallel decides the same workload fanned out over
// GOMAXPROCS goroutines sharing one solver. On a ≥4-core box this shows the
// near-linear speedup of the sharded concurrent cache; per-op time is
// comparable to BenchmarkValidSequential divided by the core count.
func BenchmarkValidParallel(b *testing.B) {
	fs := benchWorkload()
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSolver(Options{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := w; j < len(fs); j += workers {
					s.Valid(fs[j])
				}
			}(w)
		}
		wg.Wait()
	}
}

// benchWorkload builds a mixed batch of quantified and ground VCs shaped
// like the ones the fixed-point algorithms emit.
func benchWorkload() []logic.Formula {
	var out []logic.Formula
	for i := 0; i < 48; i++ {
		a := logic.AV("A")
		k, n, x := logic.V("k"), logic.V("n"), logic.V(fmt.Sprintf("x%d", i))
		hyp := logic.All([]string{"k"},
			logic.Imp(logic.Conj(logic.LeF(logic.I(0), k), logic.LtF(k, n)),
				logic.GeF(logic.Sel(a, k), logic.I(int64(i%5)))))
		concl := logic.Imp(logic.Conj(logic.LeF(logic.I(0), x), logic.LtF(x, n)),
			logic.GeF(logic.Sel(a, x), logic.I(int64(i%5))))
		out = append(out, logic.Imp(hyp, concl))
	}
	return out
}

// TestParallelValidSpeedup measures wall-clock speedup of concurrent Valid
// calls over the sequential path. It only asserts on machines with ≥4 cores
// (the acceptance environment); elsewhere it logs the ratio.
func TestParallelValidSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	fs := benchWorkload()
	seqStart := time.Now()
	{
		s := NewSolver(Options{})
		for _, f := range fs {
			s.Valid(f)
		}
	}
	seq := time.Since(seqStart)

	workers := runtime.GOMAXPROCS(0)
	parStart := time.Now()
	{
		s := NewSolver(Options{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := w; j < len(fs); j += workers {
					s.Valid(fs[j])
				}
			}(w)
		}
		wg.Wait()
	}
	par := time.Since(parStart)
	ratio := float64(seq) / float64(par)
	t.Logf("sequential %v, parallel(%d workers) %v, speedup %.2fx", seq, workers, par, ratio)
	if workers >= 4 && ratio < 2 {
		t.Errorf("expected >=2x speedup on %d cores, got %.2fx", workers, ratio)
	}
}
