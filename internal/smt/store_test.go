package smt

import (
	"testing"
	"time"

	"repro/internal/logic"
	"repro/internal/store"
)

func openStoreT(t *testing.T, dir string, opts Options) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{
		Params:        opts.StoreParams(),
		FlushInterval: 5 * time.Millisecond,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// storeProbeFormulas is a mix of valid and invalid quantifier-free and
// quantified formulas exercising both decision paths.
func storeProbeFormulas() []logic.Formula {
	x, y := logic.V("x"), logic.V("y")
	return []logic.Formula{
		logic.Implies{A: logic.LeF(x, y), B: logic.LeF(x, logic.Plus(y, logic.I(1)))},
		logic.Implies{A: logic.LeF(x, y), B: logic.LeF(y, x)},
		logic.Implies{
			A: logic.And{Fs: []logic.Formula{logic.LeF(x, logic.I(5)), logic.LeF(logic.I(5), x)}},
			B: logic.EqF(x, logic.I(5)),
		},
		logic.Implies{A: logic.EqF(x, logic.I(3)), B: logic.LeF(logic.Mul{C: 2, X: x}, logic.I(7))},
		logic.LeF(logic.Plus(x, y), logic.Plus(y, x)),
	}
}

// TestWarmStartVerdictsIdentical is the smt-layer warm-start contract: a
// solver attached to a reopened store answers previously decided formulas
// from it — zero from-scratch queries — with identical verdicts.
func TestWarmStartVerdictsIdentical(t *testing.T) {
	dir := t.TempDir()
	opts := Options{}

	st := openStoreT(t, dir, opts)
	cold := NewSolver(Options{Store: st})
	var want []bool
	for _, f := range storeProbeFormulas() {
		want = append(want, cold.Valid(f))
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if cold.NumQueries() == 0 {
		t.Fatal("cold solver decided nothing")
	}

	st2 := openStoreT(t, dir, opts)
	defer st2.Close()
	if st2.Stats().ColdStart {
		t.Fatal("reopen reported cold start")
	}
	warm := NewSolver(Options{Store: st2})
	for i, f := range storeProbeFormulas() {
		if got := warm.Valid(f); got != want[i] {
			t.Errorf("formula %d: warm verdict %v != cold %v", i, got, want[i])
		}
	}
	if n := warm.NumQueries(); n != 0 {
		t.Errorf("warm solver ran %d from-scratch queries, want 0", n)
	}
	if n := warm.NumStoreVerdictHits(); n != int64(len(want)) {
		t.Errorf("store verdict hits = %d, want %d", n, len(want))
	}
}

// TestStoreParamsMismatchStartsCold asserts that changed solver bounds
// sideline the persisted verdicts rather than replaying them.
func TestStoreParamsMismatchStartsCold(t *testing.T) {
	dir := t.TempDir()
	st := openStoreT(t, dir, Options{})
	s := NewSolver(Options{Store: st})
	s.Valid(storeProbeFormulas()[0])
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	changed := Options{InstRounds: 7}
	st2 := openStoreT(t, dir, changed)
	defer st2.Close()
	if !st2.Stats().ColdStart {
		t.Error("params change did not force a cold start")
	}
}

// TestWarmLemmaSeeding asserts that theory lemmas learned by a context group
// reach the store and seed an equivalent group in the next lifetime.
func TestWarmLemmaSeeding(t *testing.T) {
	dir := t.TempDir()
	opts := Options{}
	x, y, z := logic.V("x"), logic.V("y"), logic.V("z")
	// A skeleton whose probes force theory conflicts (transitivity lemmas).
	skel := logic.Implies{
		A: logic.And{Fs: []logic.Formula{logic.LeF(x, y), logic.LeF(y, z)}},
		B: logic.LeF(x, z),
	}
	probe := func(s *Solver) bool {
		c := s.ContextFor(logic.Intern(skel))
		if c == nil {
			t.Fatal("no context")
		}
		return c.Valid(skel)
	}

	st := openStoreT(t, dir, opts)
	cold := NewSolver(Options{Store: st})
	coldV := probe(cold)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st.Stats().Appended == 0 {
		t.Fatal("cold run persisted nothing")
	}

	st2 := openStoreT(t, dir, opts)
	defer st2.Close()
	warm := NewSolver(Options{Store: st2})
	if warmV := probe(warm); warmV != coldV {
		t.Errorf("warm verdict %v != cold %v", warmV, coldV)
	}
	if warm.NumWarmLemmas() == 0 && warm.NumStoreVerdictHits() == 0 {
		t.Error("warm run neither seeded lemmas nor hit persisted verdicts")
	}
}
