package smt

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/lia"
	"repro/internal/logic"
	"repro/internal/sat"
)

// Context is a persistent incremental solving context, keyed by a compiled
// VC skeleton: the iterative algorithms decide thousands of near-identical
// queries — the same skeleton with a different candidate predicate fill each
// time — and a Context keeps one SAT instance plus theory state alive across
// all of them instead of rebuilding both per probe.
//
// What persists, and why it is sound to share it:
//
//   - Atom interning (grounder): an inequality atom means the same thing in
//     every probe, so atoms keep their SAT variable across probes.
//   - Encoded skeleton structure (encMemo): the one-sided Tseitin encoding of
//     a ground subformula never forces anything unless its root literal is
//     implied, so clauses from earlier probes are vacuously satisfiable in
//     later ones — each probe asserts only its own root, as an assumption.
//   - Theory lemmas (DPLL(T) blocking clauses) and Ackermann constraints:
//     both are theory-valid facts about the atoms, true in every integer
//     model, so asserting them globally can never flip a verdict.
//   - Learnt clauses: resolvents of the above, bounded by the SAT solver's
//     reduceDB.
//
// Verdict identity with the from-scratch path holds because the theory check
// is exact on both sides: the context only operates while every interned atom
// is a difference constraint (Bellman–Ford is sound and complete over the
// integers there) and goes dormant — falling back to Solver.Valid — the
// moment an atom leaves the fragment or a resource bound would make the
// incremental answer approximate where the fresh one is not.
type Context struct {
	s     *Solver
	group *ctxGroup
	mu    sync.Mutex

	// dead marks the context dormant (an atom left the difference fragment
	// or the Ackermann pair budget was exhausted); every later probe falls
	// back to the parent solver's from-scratch path.
	dead bool

	// imported is how many lemmas of the group's exchange this lane has
	// already asserted locally; reset together with the SAT instance.
	imported int

	sat *sat.Solver
	g   *grounder
	enc *encoder

	// encMemo maps an interned ground (sub)formula to its encoded literal:
	// repeated skeleton structure costs one pointer-keyed map probe per
	// probe instead of a full ground-and-encode pass.
	encMemo map[*logic.IFormula]sat.Lit

	// selOf memoizes the selector literal of an interned predicate for
	// Consistent probes; selBad marks predicates the context cannot encode
	// exactly (quantified after normalization).
	selOf  map[*logic.IFormula]sat.Lit
	selBad map[*logic.IFormula]bool

	// emitted[sym] is how many occurrences of sym are already pairwise
	// covered by asserted Ackermann constraints; pairCount is the running
	// total, checked against Options.MaxAckermannPairs.
	emitted   map[string]int
	pairCount int

	// Dense theory-check state over the context's full atom set: atomVars[i]
	// is the SAT variable of grounder atom i, diff the preprocessed
	// Bellman–Ford checker over all atoms, rebuilt whenever the set grows.
	atomVars []int
	diff     *lia.DiffChecker
	assign   []bool
	lits     []sat.Lit

	lemmas int // persisted theory lemmas (DPLL(T) blocking clauses)
}

const (
	// ctxMaxLearnts bounds the persistent SAT instance's learnt database
	// (activity-based reduceDB kicks in beyond it).
	ctxMaxLearnts = 4000
	// ctxMaxVars recycles a context once probe-local gate variables
	// accumulate past this bound; a recycled context restarts empty, which
	// is always sound (it is exactly a fresh context).
	ctxMaxVars = 200000
	// ctxMaxLanes bounds the per-skeleton lane pool: under contention a
	// probe prefers creating a sibling lane (own SAT instance and grounder,
	// shared lemma exchange) over the from-scratch path, up to this many.
	ctxMaxLanes = 8
	// ctxMaxExchanged bounds one group's lemma exchange; beyond it lanes
	// stop publishing (imports of already-published lemmas continue).
	ctxMaxExchanged = 4096
)

// ctxGroup is the shared state of all lanes solving one skeleton: the lane
// pool itself and the cross-lane theory-lemma exchange. Lemmas travel as
// (lia.Lin, value) vectors — grounder-independent facts — and each lane
// re-interns them into its own atom space, so lanes never share mutable
// solver state and a lemma learned by one worker prunes every other worker's
// search. All lemmas are theory-valid, so importing them never flips a
// verdict.
type ctxGroup struct {
	s *Solver

	mu    sync.Mutex
	lanes []*Context

	exch struct {
		mu     sync.RWMutex
		lemmas []theoryLemma
	}
}

// theoryLemma is one theory conflict in grounder-independent form: the
// conjunction of (lin_i ≤ 0) == val_i over the listed atoms is
// integer-infeasible.
type theoryLemma struct {
	lins []lia.Lin
	vals []bool
}

// snapshotLanes returns the current lane slice; lanes are append-only, so the
// prefix is stable and safe to scan without the group lock.
func (g *ctxGroup) snapshotLanes() []*Context {
	g.mu.Lock()
	lanes := g.lanes
	g.mu.Unlock()
	return lanes
}

// addLane creates a sibling lane when the pool and the solver-wide budget
// allow it, returning nil otherwise.
func (g *ctxGroup) addLane() *Context {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.lanes) >= ctxMaxLanes {
		return nil
	}
	c := &Context{s: g.s, group: g}
	c.reset()
	g.s.ctxCreated.Add(1)
	g.lanes = append(g.lanes, c)
	return c
}

// multi reports whether the group ever grew a second lane; single-lane groups
// skip lemma publication entirely (nobody would import).
func (g *ctxGroup) multi() bool {
	g.mu.Lock()
	n := len(g.lanes)
	g.mu.Unlock()
	return n > 1
}

// publish appends freshly learned theory lemmas to the exchange, up to the
// group budget.
func (g *ctxGroup) publish(lems []theoryLemma) {
	if len(lems) == 0 {
		return
	}
	g.exch.mu.Lock()
	room := ctxMaxExchanged - len(g.exch.lemmas)
	if room > 0 {
		if len(lems) > room {
			lems = lems[:room]
		}
		g.exch.lemmas = append(g.exch.lemmas, lems...)
	}
	g.exch.mu.Unlock()
}

func (s *Solver) newContext() *Context {
	s.ctxCreated.Add(1)
	g := &ctxGroup{s: s}
	c := &Context{s: s, group: g}
	c.reset()
	g.lanes = []*Context{c}
	return c
}

func (c *Context) reset() {
	c.sat = sat.New()
	c.sat.MaxLearnts = ctxMaxLearnts
	c.g = newGrounder()
	c.enc = &encoder{s: c.sat, atomVar: map[int]int{}}
	c.encMemo = map[*logic.IFormula]sat.Lit{}
	c.selOf = map[*logic.IFormula]sat.Lit{}
	c.selBad = map[*logic.IFormula]bool{}
	c.emitted = map[string]int{}
	c.pairCount = 0
	c.atomVars = nil
	c.diff = nil
	c.assign = nil
	c.lits = nil
	c.lemmas = 0
	c.imported = 0
}

// Valid mirrors Solver.Valid — same memo table, same trivial short-circuits,
// same conservative treatment of Stop — but decides cache misses through the
// persistent context: the probe's ground formula is encoded into the shared
// SAT instance and solved under a single assumption literal, reusing learnt
// clauses, theory lemmas, Ackermann constraints, and the difference-fragment
// preprocessing of all earlier probes. Falls back to the from-scratch
// decision when the context cannot answer exactly (dormant context or lock
// contention); verdicts are identical either way.
func (c *Context) Valid(f logic.Formula) bool {
	if v, ok := logic.TrivialVerdict(f); ok {
		return v
	}
	n := logic.Intern(f)
	e, hit := c.s.cache.lookupOrClaim(n)
	if hit {
		<-e.done
		c.s.cacheHits.Add(1)
		return e.val
	}
	start := time.Now()
	var v bool
	sn := n.Simplified()
	if b, ok := sn.Formula().(logic.Bool); ok {
		v = b.Val
		c.s.queries.Add(1)
	} else if ground, done, gv := c.s.groundForm(sn.Negated()); done {
		v = !gv
		c.s.queries.Add(1)
	} else if satisfiable, ok := c.tryDecide(ground); ok {
		v = !satisfiable
		c.s.ctxProbes.Add(1)
	} else {
		v = !c.s.decideGround(ground)
		c.s.queries.Add(1)
	}
	c.s.stats.RecordQuery(time.Since(start))
	e.settle(v)
	if c.s.opts.Stop != nil && c.s.opts.Stop() {
		// Same rule as Solver.Valid: an abandoned, conservative verdict must
		// not be memoized as real.
		c.s.cache.forget(n, e)
	}
	return v
}

// tryDecide decides satisfiability of a ground formula incrementally.
// ok=false means no lane of the group could answer exactly and the caller
// must take the from-scratch path. Under lock contention the probe walks the
// group's lane pool and, when every lane is busy, creates a sibling lane —
// scaling incremental solving across workers instead of degrading to
// from-scratch decisions.
func (c *Context) tryDecide(ground logic.Formula) (satisfiable, ok bool) {
	for _, lane := range c.group.snapshotLanes() {
		if !lane.mu.TryLock() {
			continue
		}
		v, ok := lane.decideLocked(ground)
		lane.mu.Unlock()
		return v, ok
	}
	if lane := c.group.addLane(); lane != nil {
		lane.mu.Lock()
		v, ok := lane.decideLocked(ground)
		lane.mu.Unlock()
		return v, ok
	}
	return false, false
}

// decideLocked is tryDecide's per-lane body; the lane's lock must be held.
func (c *Context) decideLocked(ground logic.Formula) (satisfiable, ok bool) {
	if c.dead {
		return false, false
	}
	if c.sat.NumVars() > ctxMaxVars {
		c.reset()
	}
	root := c.encNode(ground)
	c.importLemmas()
	if !c.emitAckermann() || !c.syncAtoms() {
		c.dead = true
		return false, false
	}
	if c.lemmas > 0 || c.sat.NumLearnts() > 0 {
		c.s.lemmaReuse.Add(1)
	}
	var pub []theoryLemma
	v, _ := c.probeLoop(&pub, root)
	c.group.publish(pub)
	return v, true
}

// importLemmas asserts every exchange lemma this lane has not seen yet,
// re-interning each (lin, value) vector into the lane's own atom space. New
// atoms get SAT variables immediately; the following syncAtoms call folds
// them into the dense theory-check state.
func (c *Context) importLemmas() {
	g := c.group
	g.exch.mu.RLock()
	lems := g.exch.lemmas
	g.exch.mu.RUnlock()
	if c.imported >= len(lems) {
		return
	}
	for _, lem := range lems[c.imported:] {
		clause := make([]sat.Lit, len(lem.lins))
		usable := true
		for k, l := range lem.lins {
			pl, isLit := c.g.internLeq(l).(pLit)
			if !isLit {
				usable = false
				break
			}
			v, have := c.enc.atomVar[pl.atom]
			if !have {
				v = c.sat.NewVar()
				c.enc.atomVar[pl.atom] = v
			}
			// The conflict asserted (l ≤ 0) == vals[k]; in terms of the
			// canonical atom that is atom == (vals[k] XOR pl.neg), and the
			// clause carries its negation.
			clause[k] = sat.MkLit(v, lem.vals[k] != pl.neg)
		}
		if usable {
			c.sat.AddClause(clause...)
			c.s.lemmasShared.Add(1)
		}
	}
	c.imported = len(lems)
}

// Consistent reports whether the conjunction of preds has a model. When it
// does not, core is a subset of preds whose conjunction is already
// unsatisfiable — and since conjoining more predicates only strengthens the
// formula, any superset of the core is unsatisfiable too, which is what lets
// the lattice search kill whole sublattices per core. ok=false means the
// context could not answer exactly (a predicate normalizes to a quantified
// formula, dormant context, or lock contention) and the caller must fall
// back to the from-scratch path.
//
// Each distinct predicate becomes one selector literal (its encoded root),
// probes are SolveAssuming calls over the selected literals, and the SAT
// core maps back to predicate identities through the selector table.
func (c *Context) Consistent(preds []logic.Formula) (consistent bool, core []logic.Formula, ok bool) {
	for _, lane := range c.group.snapshotLanes() {
		if !lane.mu.TryLock() {
			continue
		}
		consistent, core, ok = lane.consistentLocked(preds)
		lane.mu.Unlock()
		return consistent, core, ok
	}
	if lane := c.group.addLane(); lane != nil {
		lane.mu.Lock()
		consistent, core, ok = lane.consistentLocked(preds)
		lane.mu.Unlock()
		return consistent, core, ok
	}
	return false, nil, false
}

// consistentLocked is Consistent's per-lane body; the lane's lock must be held.
func (c *Context) consistentLocked(preds []logic.Formula) (consistent bool, core []logic.Formula, ok bool) {
	if c.dead {
		return false, nil, false
	}
	if c.sat.NumVars() > ctxMaxVars {
		c.reset()
	}
	assumps := make([]sat.Lit, 0, len(preds))
	owner := make(map[sat.Lit]logic.Formula, len(preds))
	for _, p := range preds {
		l, good := c.selector(p)
		if !good {
			return false, nil, false
		}
		if _, dup := owner[l]; !dup {
			owner[l] = p
			assumps = append(assumps, l)
		}
	}
	c.importLemmas()
	if !c.emitAckermann() || !c.syncAtoms() {
		c.dead = true
		return false, nil, false
	}
	if c.lemmas > 0 || c.sat.NumLearnts() > 0 {
		c.s.lemmaReuse.Add(1)
	}
	c.s.ctxProbes.Add(1)
	var pub []theoryLemma
	v, satCore := c.probeLoop(&pub, assumps...)
	c.group.publish(pub)
	if v {
		return true, nil, true
	}
	for _, l := range satCore {
		if p, isSel := owner[l]; isSel {
			core = append(core, p)
		}
	}
	return false, core, true
}

// selector returns the literal asserting pred's normalized ground encoding.
// good=false when the predicate normalizes to a quantified formula, which
// the per-predicate encoding cannot capture exactly (instantiation terms
// would depend on the rest of the conjunction).
func (c *Context) selector(p logic.Formula) (sat.Lit, bool) {
	n := logic.Intern(p)
	if c.selBad[n] {
		return 0, false
	}
	if l, ok := c.selOf[n]; ok {
		return l, true
	}
	nf := n.Normalized(normalizeForSolving).Formula()
	if b, ok := nf.(logic.Bool); ok {
		l := c.constLit(b.Val)
		c.selOf[n] = l
		return l, true
	}
	if len(boundVarNames(nf)) > 0 {
		c.selBad[n] = true
		return 0, false
	}
	l := c.encNode(nf)
	c.selOf[n] = l
	return l, true
}

// encNode encodes a ground formula into the persistent instance (one-sided
// Tseitin, as in the from-scratch encoder) and memoizes the literal per
// interned node, so repeated structure across probes is shared.
func (c *Context) encNode(f logic.Formula) sat.Lit {
	n := logic.Intern(f)
	if l, ok := c.encMemo[n]; ok {
		return l
	}
	var l sat.Lit
	switch f := f.(type) {
	case logic.Bool:
		l = c.constLit(f.Val)
	case logic.Atom:
		l = c.enc.encode(c.g.atomProp(f))
	case logic.Not:
		a, ok := f.F.(logic.Atom)
		if !ok {
			panic("smt: non-atomic negation in ground formula")
		}
		l = c.enc.encode(c.g.atomProp(logic.Atom{Op: a.Op.Negate(), X: a.X, Y: a.Y}))
	case logic.Implies:
		a, ok1 := f.A.(logic.Atom)
		b, ok2 := f.B.(logic.Atom)
		if !ok1 || !ok2 {
			panic("smt: implication survived NNF")
		}
		na := c.enc.encode(c.g.atomProp(logic.Atom{Op: a.Op.Negate(), X: a.X, Y: a.Y}))
		nb := c.enc.encode(c.g.atomProp(b))
		gl := sat.MkLit(c.sat.NewVar(), false)
		c.sat.AddClause(gl.Not(), na, nb)
		l = gl
	case logic.And:
		children := make([]sat.Lit, len(f.Fs))
		for i, h := range f.Fs {
			children[i] = c.encNode(h)
		}
		gl := sat.MkLit(c.sat.NewVar(), false)
		for _, cl := range children {
			c.sat.AddClause(gl.Not(), cl)
		}
		l = gl
	case logic.Or:
		clause := make([]sat.Lit, 1, len(f.Fs)+1)
		for _, h := range f.Fs {
			clause = append(clause, c.encNode(h))
		}
		gl := sat.MkLit(c.sat.NewVar(), false)
		clause[0] = gl.Not()
		c.sat.AddClause(clause...)
		l = gl
	default:
		panic(fmt.Sprintf("smt: unexpected ground formula %T (%s)", f, f))
	}
	c.encMemo[n] = l
	return l
}

func (c *Context) constLit(v bool) sat.Lit {
	l := c.enc.constTrue()
	if !v {
		l = l.Not()
	}
	return l
}

// emitAckermann asserts functional-consistency constraints for application
// occurrences recorded since the last probe, pairing each new occurrence
// with every earlier occurrence of its symbol. The constraints are
// theory-valid — any model extends to an assignment of all application
// variables respecting functionality — so asserting them globally never
// changes a probe's verdict. Reports false when the cumulative pair budget
// is exhausted (the fresh path's per-probe cap could then diverge from the
// context's cumulative one, so the context goes dormant instead of guessing).
func (c *Context) emitAckermann() bool {
	syms := make([]string, 0, len(c.g.occs))
	for s, os := range c.g.occs {
		if len(os) > c.emitted[s] {
			syms = append(syms, s)
		}
	}
	sort.Strings(syms)
	for _, s := range syms {
		os := c.g.occs[s]
		for j := c.emitted[s]; j < len(os); j++ {
			for i := 0; i < j; i++ {
				if c.pairCount >= c.s.opts.MaxAckermannPairs {
					return false
				}
				c.pairCount++
				// (args_i = args_j) ⇒ v_i = v_j, as ∨_k args differ ∨ equal.
				var disj []prop
				for k := range os[i].args {
					disj = append(disj, c.g.relProp(logic.Neq, os[i].args[k], os[j].args[k]))
				}
				disj = append(disj, c.g.relProp(logic.Eq, logic.V(os[i].v), logic.V(os[j].v)))
				c.sat.AddClause(c.enc.encode(mkOr(disj...)))
			}
		}
		c.emitted[s] = len(os)
	}
	return true
}

// syncAtoms extends the dense atom ↔ SAT-variable mapping and rebuilds the
// difference checker to cover every interned atom. Reports false when an
// atom falls outside the difference fragment: there the theory fallback is
// only approximate, and running it over the context's full atom set could
// diverge from the fresh path's per-probe set, so the context goes dormant.
func (c *Context) syncAtoms() bool {
	// c.diff must exist even when the grounder produced no linear atoms at
	// all (every predicate constant-folded away): probeLoop still consults
	// it, and 0 == 0 atom counts must not skip its construction.
	if c.diff != nil && len(c.atomVars) == len(c.g.lins) {
		return true
	}
	for i := len(c.atomVars); i < len(c.g.lins); i++ {
		v, ok := c.enc.atomVar[i]
		if !ok {
			// Interned but never encoded (constant-eliminated branch); it
			// still needs a variable so the model covers the full atom set.
			v = c.sat.NewVar()
			c.enc.atomVar[i] = v
		}
		c.atomVars = append(c.atomVars, v)
	}
	d, ok := lia.NewDiffChecker(c.g.lins)
	if !ok {
		return false
	}
	c.diff = d
	c.assign = make([]bool, len(c.atomVars))
	c.lits = make([]sat.Lit, len(c.atomVars))
	return true
}

// probeLoop runs the DPLL(T) loop under the given assumptions against the
// persistent instance: SAT model → exact theory check over the full atom set
// → blocking lemma, until a theory-consistent model or propositional unsat.
// Lemmas persist — they are valid facts about the atoms, shared by every
// later probe. When pub points at a collection (the group has sibling lanes),
// each learned lemma is also recorded in grounder-independent form for the
// exchange. On unsat the failed-assumption core is returned.
func (c *Context) probeLoop(pub *[]theoryLemma, assumps ...sat.Lit) (satisfiable bool, core []sat.Lit) {
	share := pub != nil && c.group.multi()
	for iter := 0; iter < c.s.opts.MaxTheoryIterations; iter++ {
		if c.s.opts.Stop != nil && c.s.opts.Stop() {
			return true, nil // conservative, as in decideGround
		}
		st, unsatCore := c.sat.SolveAssuming(assumps...)
		if st == sat.Unsat {
			return false, unsatCore
		}
		for k, v := range c.atomVars {
			val := c.sat.Value(v)
			c.assign[k] = val
			c.lits[k] = sat.MkLit(v, !val)
		}
		res := c.diff.Check(c.assign)
		if res.Sat {
			return true, nil
		}
		blocking := make([]sat.Lit, 0, len(res.Conflict))
		for _, ci := range res.Conflict {
			blocking = append(blocking, c.lits[ci].Not())
		}
		if share {
			lem := theoryLemma{
				lins: make([]lia.Lin, len(res.Conflict)),
				vals: make([]bool, len(res.Conflict)),
			}
			for k, ci := range res.Conflict {
				lem.lins[k] = c.g.lins[ci]
				lem.vals[k] = c.assign[ci]
			}
			*pub = append(*pub, lem)
		}
		if !c.sat.AddClause(blocking...) {
			return false, nil
		}
		c.lemmas++
	}
	// Resource bound hit: conservative "satisfiable", as in decideGround.
	return true, nil
}
