package smt

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/lia"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/store"
)

// Context is a persistent incremental solving context, keyed by a compiled
// VC skeleton: the iterative algorithms decide thousands of near-identical
// queries — the same skeleton with a different candidate predicate fill each
// time — and a Context keeps one SAT instance plus theory state alive across
// all of them instead of rebuilding both per probe.
//
// What persists, and why it is sound to share it:
//
//   - Atom interning (grounder): an inequality atom means the same thing in
//     every probe, so atoms keep their SAT variable across probes.
//   - Encoded skeleton structure (encMemo): the one-sided Tseitin encoding of
//     a ground subformula never forces anything unless its root literal is
//     implied, so clauses from earlier probes are vacuously satisfiable in
//     later ones — each probe asserts only its own root, as an assumption.
//   - Theory lemmas (DPLL(T) blocking clauses) and Ackermann constraints:
//     both are theory-valid facts about the atoms, true in every integer
//     model, so asserting them globally can never flip a verdict.
//   - Learnt clauses: resolvents of the above, bounded by the SAT solver's
//     reduceDB.
//
// Verdict agreement with the from-scratch path holds because both sides run
// the same theory procedures: Bellman–Ford (sound and complete over the
// integers) while every interned atom is a difference constraint, and the
// same Fourier–Motzkin engine — persisted as a lia.LinChecker with a
// conflict-cube store — from the first general linear atom on. The one
// asymmetry is the FM derived-constraint cap: the context checks its
// cumulative atom set where the fresh path checks per-probe sets, so the
// context can hit the cap on workloads where the fresh path would not.
// Cap hits are conservative ("satisfiable", so Valid reports false), are
// counted (Solver.NumFMCapHits, stats fm_cap_hits), and never accept a bad
// invariant. The only remaining dormancy trigger is Ackermann pair-budget
// exhaustion, where the context's cumulative budget could diverge from the
// fresh path's per-probe one.
type Context struct {
	s     *Solver
	group *ctxGroup
	mu    sync.Mutex

	// dead marks the context dormant (the Ackermann pair budget was
	// exhausted); every later probe falls back to the parent solver's
	// from-scratch path.
	dead bool

	// imported is how many lemmas of the group's exchange this lane has
	// already asserted locally; reset together with the SAT instance.
	imported int

	sat *sat.Solver
	g   *grounder
	enc *encoder

	// encMemo maps an interned ground (sub)formula to its encoded literal:
	// repeated skeleton structure costs one pointer-keyed map probe per
	// probe instead of a full ground-and-encode pass.
	encMemo map[*logic.IFormula]sat.Lit

	// selOf memoizes the selector literal of an interned predicate for
	// Consistent probes; selBad marks predicates the context cannot encode
	// exactly (quantified after normalization).
	selOf  map[*logic.IFormula]sat.Lit
	selBad map[*logic.IFormula]bool

	// encAtoms / selAtoms record, per interned ground node / predicate, the
	// sorted grounder atom indices its encoding mentions. ackPairs records
	// each asserted Ackermann pair — the result variables of its two
	// occurrences plus the atoms of its clause — and occName/occDeps the
	// occurrence-variable dependency graph (an occurrence's arguments may
	// mention nested occurrence variables). Together they give each probe
	// its relevant atom subset, which the general-LIA checker is narrowed
	// to (LinChecker.SetProbe): the context's cumulative atom set only
	// grows, and eliminating over atoms a probe does not constrain would
	// make every check more expensive than the from-scratch path.
	encAtoms   map[*logic.IFormula][]int
	selAtoms   map[*logic.IFormula][]int
	ackPairs   []ackPair
	occName    map[string]bool
	occDeps    map[string][]string
	probeAtoms []int // reusable buffer for the current probe's atom subset

	// emitted[sym] is how many occurrences of sym are already pairwise
	// covered by asserted Ackermann constraints; pairCount is the running
	// total, checked against Options.MaxAckermannPairs.
	emitted   map[string]int
	pairCount int

	// Dense theory-check state over the context's full atom set: atomVars[i]
	// is the SAT variable of grounder atom i, theory the preprocessed
	// checker over all atoms — a DiffChecker (rebuilt whenever the set
	// grows) while every atom is a difference constraint, a LinChecker
	// (extended in place, conflict cubes surviving growth) from the first
	// general linear atom on.
	atomVars []int
	theory   lia.Checker
	lin      *lia.LinChecker // non-nil iff theory is the general-LIA checker
	assign   []bool
	lits     []sat.Lit

	lemmas int // persisted theory lemmas (DPLL(T) blocking clauses)
}

const (
	// ctxMaxLearnts bounds the persistent SAT instance's learnt database
	// (activity-based reduceDB kicks in beyond it).
	ctxMaxLearnts = 4000
	// ctxMaxVars recycles a context once probe-local gate variables
	// accumulate past this bound; a recycled context restarts empty, which
	// is always sound (it is exactly a fresh context).
	ctxMaxVars = 200000
	// ctxMaxLanes bounds the per-skeleton lane pool: under contention a
	// probe prefers creating a sibling lane (own SAT instance and grounder,
	// shared lemma exchange) over the from-scratch path, up to this many.
	ctxMaxLanes = 8
	// ctxMaxExchanged bounds one group's lemma exchange; beyond it lanes
	// stop publishing (imports of already-published lemmas continue).
	ctxMaxExchanged = 4096
)

// ctxGroup is the shared state of all lanes solving one skeleton: the lane
// pool itself and the cross-lane theory-lemma exchange. Lemmas travel as
// (lia.Lin, value) vectors — grounder-independent facts — and each lane
// re-interns them into its own atom space, so lanes never share mutable
// solver state and a lemma learned by one worker prunes every other worker's
// search. All lemmas are theory-valid, so importing them never flips a
// verdict.
type ctxGroup struct {
	s *Solver

	// skel is the skeleton's portable identity (store.FormulaKey), set when
	// a knowledge store is attached. It keys the group's lemmas on disk:
	// the exchange is seeded from the store at group creation, and lemmas
	// learned by any lane are written behind it. Empty when no store is
	// attached (or for standalone consistency contexts, whose vocabulary
	// has no skeleton identity).
	skel string

	mu    sync.Mutex
	lanes []*Context

	exch struct {
		mu     sync.RWMutex
		lemmas []theoryLemma
	}
}

// theoryLemma is one theory conflict in grounder-independent form: the
// conjunction of (lin_i ≤ 0) == val_i over the listed atoms is
// integer-infeasible.
type theoryLemma struct {
	lins []lia.Lin
	vals []bool
}

// snapshotLanes returns the current lane slice; lanes are append-only, so the
// prefix is stable and safe to scan without the group lock.
func (g *ctxGroup) snapshotLanes() []*Context {
	g.mu.Lock()
	lanes := g.lanes
	g.mu.Unlock()
	return lanes
}

// addLane creates a sibling lane when the pool and the solver-wide budget
// allow it, returning nil otherwise.
func (g *ctxGroup) addLane() *Context {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.lanes) >= ctxMaxLanes {
		return nil
	}
	c := &Context{s: g.s, group: g}
	c.reset()
	g.s.ctxCreated.Add(1)
	g.lanes = append(g.lanes, c)
	return c
}

// multi reports whether the group ever grew a second lane; single-lane groups
// skip lemma publication entirely (nobody would import).
func (g *ctxGroup) multi() bool {
	g.mu.Lock()
	n := len(g.lanes)
	g.mu.Unlock()
	return n > 1
}

// publish appends freshly learned theory lemmas to the exchange, up to the
// group budget, and writes them behind to the knowledge store when the group
// has a skeleton identity. Lemmas are theory-valid facts regardless of how
// the probe that found them ended, so publication needs no Stop guard.
func (g *ctxGroup) publish(lems []theoryLemma) {
	if len(lems) == 0 {
		return
	}
	g.exch.mu.Lock()
	room := ctxMaxExchanged - len(g.exch.lemmas)
	if room > 0 {
		if len(lems) > room {
			lems = lems[:room]
		}
		g.exch.lemmas = append(g.exch.lemmas, lems...)
	}
	g.exch.mu.Unlock()
	if st := g.s.opts.Store; st != nil && g.skel != "" {
		for _, lem := range lems {
			st.AppendLemma(g.skel, store.Lemma{Lins: lem.lins, Vals: lem.vals})
		}
	}
}

func (s *Solver) newContext() *Context { return s.newContextKeyed("") }

// newContextKeyed creates a context group, seeding its lemma exchange from
// the knowledge store when the skeleton has persisted lemmas: every lane
// (including the first) then asserts them through the ordinary importLemmas
// path on its first probe, re-interned into its own atom space exactly like
// lemmas from a sibling lane.
func (s *Solver) newContextKeyed(skel string) *Context {
	s.ctxCreated.Add(1)
	g := &ctxGroup{s: s, skel: skel}
	if st := s.opts.Store; st != nil && skel != "" {
		warm := st.Lemmas(skel)
		if len(warm) > ctxMaxExchanged {
			warm = warm[:ctxMaxExchanged]
		}
		for _, w := range warm {
			g.exch.lemmas = append(g.exch.lemmas, theoryLemma{lins: w.Lins, vals: w.Vals})
		}
		s.lemmasWarm.Add(int64(len(warm)))
	}
	c := &Context{s: s, group: g}
	c.reset()
	g.lanes = []*Context{c}
	return c
}

func (c *Context) reset() {
	c.sat = sat.New()
	c.sat.MaxLearnts = ctxMaxLearnts
	c.g = newGrounder()
	c.enc = &encoder{s: c.sat, atomVar: map[int]int{}}
	c.encMemo = map[*logic.IFormula]sat.Lit{}
	c.selOf = map[*logic.IFormula]sat.Lit{}
	c.selBad = map[*logic.IFormula]bool{}
	c.encAtoms = map[*logic.IFormula][]int{}
	c.selAtoms = map[*logic.IFormula][]int{}
	c.ackPairs = nil
	c.occName = map[string]bool{}
	c.occDeps = map[string][]string{}
	c.probeAtoms = nil
	c.emitted = map[string]int{}
	c.pairCount = 0
	c.atomVars = nil
	c.theory = nil
	c.lin = nil
	c.assign = nil
	c.lits = nil
	c.lemmas = 0
	c.imported = 0
}

// Valid mirrors Solver.Valid — same memo table, same trivial short-circuits,
// same conservative treatment of Stop — but decides cache misses through the
// persistent context: the probe's ground formula is encoded into the shared
// SAT instance and solved under a single assumption literal, reusing learnt
// clauses, theory lemmas, Ackermann constraints, and the difference-fragment
// preprocessing of all earlier probes. Falls back to the from-scratch
// decision when the context cannot answer exactly (dormant context or lock
// contention); verdicts are identical either way.
func (c *Context) Valid(f logic.Formula) bool {
	if v, ok := logic.TrivialVerdict(f); ok {
		return v
	}
	n := logic.Intern(f)
	e, hit := c.s.cache.lookupOrClaim(n)
	if hit {
		<-e.done
		c.s.cacheHits.Add(1)
		return e.val
	}
	var skey string
	if c.s.opts.Store != nil {
		skey = store.FormulaKey(n.Formula())
		if v, ok := c.s.opts.Store.Verdict(skey); ok {
			c.s.storeHits.Add(1)
			c.s.stats.RecordStoreLookup(true)
			e.settle(v)
			return v
		}
		c.s.stats.RecordStoreLookup(false)
	}
	start := time.Now()
	var v bool
	sn := n.Simplified()
	if b, ok := sn.Formula().(logic.Bool); ok {
		v = b.Val
		c.s.queries.Add(1)
	} else if ground, done, gv := c.s.groundForm(sn.Negated()); done {
		v = !gv
		c.s.queries.Add(1)
	} else if satisfiable, ok := c.tryDecide(ground); ok {
		v = !satisfiable
		c.s.ctxProbes.Add(1)
	} else {
		v = !c.s.decideGround(ground)
		c.s.queries.Add(1)
	}
	c.s.stats.RecordQuery(time.Since(start))
	e.settle(v)
	if c.s.opts.Stop != nil && c.s.opts.Stop() {
		// Same rule as Solver.Valid: an abandoned, conservative verdict must
		// not be memoized as real.
		c.s.cache.forget(n, e)
	} else if c.s.opts.Store != nil {
		c.s.opts.Store.AppendVerdict(skey, v)
	}
	return v
}

// tryDecide decides satisfiability of a ground formula incrementally.
// ok=false means no lane of the group could answer exactly and the caller
// must take the from-scratch path. Under lock contention the probe walks the
// group's lane pool and, when every lane is busy, creates a sibling lane —
// scaling incremental solving across workers instead of degrading to
// from-scratch decisions.
func (c *Context) tryDecide(ground logic.Formula) (satisfiable, ok bool) {
	for _, lane := range c.group.snapshotLanes() {
		if !lane.mu.TryLock() {
			continue
		}
		v, ok := lane.decideLocked(ground)
		lane.mu.Unlock()
		return v, ok
	}
	if lane := c.group.addLane(); lane != nil {
		lane.mu.Lock()
		v, ok := lane.decideLocked(ground)
		lane.mu.Unlock()
		return v, ok
	}
	return false, false
}

// decideLocked is tryDecide's per-lane body; the lane's lock must be held.
func (c *Context) decideLocked(ground logic.Formula) (satisfiable, ok bool) {
	if c.dead {
		return false, false
	}
	if c.sat.NumVars() > ctxMaxVars {
		c.reset()
	}
	root, rootAtoms := c.encNode(ground)
	c.importLemmas()
	if !c.emitAckermann() {
		c.dead = true
		c.s.ctxDormant.Add(1)
		return false, false
	}
	c.syncAtoms()
	if c.lin != nil {
		c.lin.SetProbe(c.probeAtomSet(rootAtoms))
	}
	if c.lemmas > 0 || c.sat.NumLearnts() > 0 {
		c.s.lemmaReuse.Add(1)
	}
	var pub []theoryLemma
	v, _ := c.probeLoop(&pub, root)
	c.group.publish(pub)
	return v, true
}

// importLemmas asserts every exchange lemma this lane has not seen yet,
// re-interning each (lin, value) vector into the lane's own atom space. New
// atoms get SAT variables immediately; the following syncAtoms call folds
// them into the dense theory-check state.
func (c *Context) importLemmas() {
	g := c.group
	g.exch.mu.RLock()
	lems := g.exch.lemmas
	g.exch.mu.RUnlock()
	if c.imported >= len(lems) {
		return
	}
	for _, lem := range lems[c.imported:] {
		clause := make([]sat.Lit, len(lem.lins))
		usable := true
		for k, l := range lem.lins {
			pl, isLit := c.g.internLeq(l).(pLit)
			if !isLit {
				usable = false
				break
			}
			v, have := c.enc.atomVar[pl.atom]
			if !have {
				v = c.sat.NewVar()
				c.enc.atomVar[pl.atom] = v
			}
			// The conflict asserted (l ≤ 0) == vals[k]; in terms of the
			// canonical atom that is atom == (vals[k] XOR pl.neg), and the
			// clause carries its negation.
			clause[k] = sat.MkLit(v, lem.vals[k] != pl.neg)
		}
		if usable {
			c.sat.AddClause(clause...)
			c.s.lemmasShared.Add(1)
		}
	}
	c.imported = len(lems)
}

// Consistent reports whether the conjunction of preds has a model. When it
// does not, core is a subset of preds whose conjunction is already
// unsatisfiable — and since conjoining more predicates only strengthens the
// formula, any superset of the core is unsatisfiable too, which is what lets
// the lattice search kill whole sublattices per core. ok=false means the
// context could not answer exactly (a predicate normalizes to a quantified
// formula, dormant context, or lock contention) and the caller must fall
// back to the from-scratch path.
//
// Each distinct predicate becomes one selector literal (its encoded root),
// probes are SolveAssuming calls over the selected literals, and the SAT
// core maps back to predicate identities through the selector table.
func (c *Context) Consistent(preds []logic.Formula) (consistent bool, core []logic.Formula, ok bool) {
	for _, lane := range c.group.snapshotLanes() {
		if !lane.mu.TryLock() {
			continue
		}
		consistent, core, ok = lane.consistentLocked(preds)
		lane.mu.Unlock()
		return consistent, core, ok
	}
	if lane := c.group.addLane(); lane != nil {
		lane.mu.Lock()
		consistent, core, ok = lane.consistentLocked(preds)
		lane.mu.Unlock()
		return consistent, core, ok
	}
	return false, nil, false
}

// consistentLocked is Consistent's per-lane body; the lane's lock must be held.
func (c *Context) consistentLocked(preds []logic.Formula) (consistent bool, core []logic.Formula, ok bool) {
	if c.dead {
		return false, nil, false
	}
	if c.sat.NumVars() > ctxMaxVars {
		c.reset()
	}
	assumps := make([]sat.Lit, 0, len(preds))
	selSets := make([][]int, 0, len(preds))
	owner := make(map[sat.Lit]logic.Formula, len(preds))
	for _, p := range preds {
		l, atoms, good := c.selector(p)
		if !good {
			return false, nil, false
		}
		if _, dup := owner[l]; !dup {
			owner[l] = p
			assumps = append(assumps, l)
			selSets = append(selSets, atoms)
		}
	}
	c.importLemmas()
	if !c.emitAckermann() {
		c.dead = true
		c.s.ctxDormant.Add(1)
		return false, nil, false
	}
	c.syncAtoms()
	if c.lin != nil {
		c.lin.SetProbe(c.probeAtomSet(selSets...))
	}
	if c.lemmas > 0 || c.sat.NumLearnts() > 0 {
		c.s.lemmaReuse.Add(1)
	}
	c.s.ctxProbes.Add(1)
	var pub []theoryLemma
	v, satCore := c.probeLoop(&pub, assumps...)
	c.group.publish(pub)
	if v {
		return true, nil, true
	}
	for _, l := range satCore {
		if p, isSel := owner[l]; isSel {
			core = append(core, p)
		}
	}
	return false, core, true
}

// selector returns the literal asserting pred's normalized ground encoding,
// plus the sorted atom indices that encoding mentions (the predicate's
// contribution to a probe's atom subset). good=false when the predicate
// normalizes to a quantified formula, which the per-predicate encoding
// cannot capture exactly (instantiation terms would depend on the rest of
// the conjunction).
func (c *Context) selector(p logic.Formula) (lit sat.Lit, atoms []int, good bool) {
	n := logic.Intern(p)
	if c.selBad[n] {
		return 0, nil, false
	}
	if l, ok := c.selOf[n]; ok {
		return l, c.selAtoms[n], true
	}
	nf := n.Normalized(normalizeForSolving).Formula()
	if b, ok := nf.(logic.Bool); ok {
		l := c.constLit(b.Val)
		c.selOf[n] = l
		return l, nil, true
	}
	if len(boundVarNames(nf)) > 0 {
		c.selBad[n] = true
		return 0, nil, false
	}
	l, atoms := c.encNode(nf)
	c.selOf[n] = l
	c.selAtoms[n] = atoms
	return l, atoms, true
}

// encNode encodes a ground formula into the persistent instance (one-sided
// Tseitin, as in the from-scratch encoder) and memoizes, per interned node,
// both the encoded literal and the sorted grounder atom indices the encoding
// mentions — the atom sets compose bottom-up and give each probe its
// relevant atom subset without re-walking memoized structure.
func (c *Context) encNode(f logic.Formula) (sat.Lit, []int) {
	n := logic.Intern(f)
	if l, ok := c.encMemo[n]; ok {
		return l, c.encAtoms[n]
	}
	var l sat.Lit
	var atoms []int
	switch f := f.(type) {
	case logic.Bool:
		l = c.constLit(f.Val)
	case logic.Atom:
		p := c.g.atomProp(f)
		l = c.enc.encode(p)
		atoms = propAtoms(p, nil)
	case logic.Not:
		a, ok := f.F.(logic.Atom)
		if !ok {
			panic("smt: non-atomic negation in ground formula")
		}
		p := c.g.atomProp(logic.Atom{Op: a.Op.Negate(), X: a.X, Y: a.Y})
		l = c.enc.encode(p)
		atoms = propAtoms(p, nil)
	case logic.Implies:
		a, ok1 := f.A.(logic.Atom)
		b, ok2 := f.B.(logic.Atom)
		if !ok1 || !ok2 {
			panic("smt: implication survived NNF")
		}
		pa := c.g.atomProp(logic.Atom{Op: a.Op.Negate(), X: a.X, Y: a.Y})
		pb := c.g.atomProp(b)
		na := c.enc.encode(pa)
		nb := c.enc.encode(pb)
		gl := sat.MkLit(c.sat.NewVar(), false)
		c.sat.AddClause(gl.Not(), na, nb)
		l = gl
		atoms = propAtoms(pb, propAtoms(pa, nil))
	case logic.And:
		children := make([]sat.Lit, len(f.Fs))
		for i, h := range f.Fs {
			var ca []int
			children[i], ca = c.encNode(h)
			atoms = append(atoms, ca...)
		}
		gl := sat.MkLit(c.sat.NewVar(), false)
		for _, cl := range children {
			c.sat.AddClause(gl.Not(), cl)
		}
		l = gl
	case logic.Or:
		clause := make([]sat.Lit, 1, len(f.Fs)+1)
		for _, h := range f.Fs {
			cl, ca := c.encNode(h)
			clause = append(clause, cl)
			atoms = append(atoms, ca...)
		}
		gl := sat.MkLit(c.sat.NewVar(), false)
		clause[0] = gl.Not()
		c.sat.AddClause(clause...)
		l = gl
	default:
		panic(fmt.Sprintf("smt: unexpected ground formula %T (%s)", f, f))
	}
	atoms = sortedDedup(atoms)
	c.encMemo[n] = l
	c.encAtoms[n] = atoms
	return l, atoms
}

// sortedDedup sorts xs ascending and removes duplicates in place.
func sortedDedup(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func (c *Context) constLit(v bool) sat.Lit {
	l := c.enc.constTrue()
	if !v {
		l = l.Not()
	}
	return l
}

// emitAckermann asserts functional-consistency constraints for application
// occurrences recorded since the last probe, pairing each new occurrence
// with every earlier occurrence of its symbol. The constraints are
// theory-valid — any model extends to an assignment of all application
// variables respecting functionality — so asserting them globally never
// changes a probe's verdict. Reports false when the cumulative pair budget
// is exhausted (the fresh path's per-probe cap could then diverge from the
// context's cumulative one, so the context goes dormant instead of guessing).
func (c *Context) emitAckermann() bool {
	syms := make([]string, 0, len(c.g.occs))
	for s, os := range c.g.occs {
		if len(os) > c.emitted[s] {
			syms = append(syms, s)
		}
	}
	sort.Strings(syms)
	// Name every new occurrence first: dependency extraction below must
	// recognize occurrence variables across symbols regardless of order.
	for _, s := range syms {
		os := c.g.occs[s]
		for j := c.emitted[s]; j < len(os); j++ {
			c.occName[os[j].v] = true
		}
	}
	for _, s := range syms {
		os := c.g.occs[s]
		for j := c.emitted[s]; j < len(os); j++ {
			var deps []string
			for _, a := range os[j].args {
				for v := range linOf(a).Coef {
					if c.occName[v] {
						deps = append(deps, v)
					}
				}
			}
			c.occDeps[os[j].v] = deps
			for i := 0; i < j; i++ {
				if c.pairCount >= c.s.opts.MaxAckermannPairs {
					return false
				}
				c.pairCount++
				// (args_i = args_j) ⇒ v_i = v_j, as ∨_k args differ ∨ equal.
				var disj []prop
				for k := range os[i].args {
					disj = append(disj, c.g.relProp(logic.Neq, os[i].args[k], os[j].args[k]))
				}
				disj = append(disj, c.g.relProp(logic.Eq, logic.V(os[i].v), logic.V(os[j].v)))
				p := mkOr(disj...)
				c.sat.AddClause(c.enc.encode(p))
				c.ackPairs = append(c.ackPairs, ackPair{
					a: os[i].v, b: os[j].v,
					atoms: sortedDedup(propAtoms(p, nil)),
				})
			}
		}
		c.emitted[s] = len(os)
	}
	return true
}

// ackPair is one asserted Ackermann constraint: the result variables of its
// two occurrences plus the sorted atoms of its clause. A pair joins a
// probe's atom subset only when both occurrences are reachable from the
// probe's atoms, mirroring the per-probe pair set the fresh path builds.
type ackPair struct {
	a, b  string
	atoms []int
}

// syncAtoms extends the dense atom ↔ SAT-variable mapping and the persistent
// theory checker to cover every interned atom. Difference-only atom sets keep
// the Bellman–Ford DiffChecker (rebuilt on growth — its preprocessing is a
// whole-graph property); the first atom outside the fragment switches the
// context to a LinChecker, which is thereafter extended in place so its
// learned conflict cubes survive atom-set growth (grounder indices are
// append-only).
func (c *Context) syncAtoms() {
	// c.theory must exist even when the grounder produced no linear atoms at
	// all (every predicate constant-folded away): probeLoop still consults
	// it, and 0 == 0 atom counts must not skip its construction.
	if c.theory != nil && len(c.atomVars) == len(c.g.lins) {
		return
	}
	for i := len(c.atomVars); i < len(c.g.lins); i++ {
		v, ok := c.enc.atomVar[i]
		if !ok {
			// Interned but never encoded (constant-eliminated branch); it
			// still needs a variable so the model covers the full atom set.
			v = c.sat.NewVar()
			c.enc.atomVar[i] = v
		}
		c.atomVars = append(c.atomVars, v)
	}
	switch {
	case c.lin != nil:
		c.lin.Extend(c.g.lins[c.lin.Len():])
	default:
		if d, ok := lia.NewDiffChecker(c.g.lins); ok {
			c.theory = d
		} else {
			c.lin = lia.NewLinChecker(c.g.lins, &c.s.fmCounters)
			c.theory = c.lin
		}
	}
	c.assign = make([]bool, len(c.atomVars))
	c.lits = make([]sat.Lit, len(c.atomVars))
}

// probeAtomSet computes the current probe's relevant atom subset into the
// context's reusable buffer, sorted ascending: the union of the given
// per-node encoding atom sets, plus the clauses of every Ackermann pair
// whose occurrences are reachable from those atoms (an occurrence is
// reachable when its result variable appears in a probe atom, or in the
// arguments of a reachable occurrence). This mirrors the per-probe systems
// the from-scratch path checks — its grounder only ever holds one probe's
// atoms and occurrence pairs.
func (c *Context) probeAtomSet(sets ...[]int) []int {
	raw := c.probeAtoms[:0]
	for _, s := range sets {
		raw = append(raw, s...)
	}
	if len(c.occName) > 0 {
		reach := map[string]bool{}
		var queue []string
		visit := func(v string) {
			if c.occName[v] && !reach[v] {
				reach[v] = true
				queue = append(queue, v)
			}
		}
		for _, ai := range raw {
			for v := range c.g.lins[ai].Coef {
				visit(v)
			}
		}
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, d := range c.occDeps[v] {
				visit(d)
			}
		}
		for i := range c.ackPairs {
			pr := &c.ackPairs[i]
			if reach[pr.a] && reach[pr.b] {
				raw = append(raw, pr.atoms...)
			}
		}
	}
	c.probeAtoms = sortedDedup(raw)
	return c.probeAtoms
}

// probeLoop runs the DPLL(T) loop under the given assumptions against the
// persistent instance: SAT model → exact theory check over the full atom set
// → blocking lemma, until a theory-consistent model or propositional unsat.
// Lemmas persist — they are valid facts about the atoms, shared by every
// later probe. When pub points at a collection (the group has sibling lanes),
// each learned lemma is also recorded in grounder-independent form for the
// exchange. On unsat the failed-assumption core is returned.
func (c *Context) probeLoop(pub *[]theoryLemma, assumps ...sat.Lit) (satisfiable bool, core []sat.Lit) {
	// Collect grounder-independent lemma forms when anyone would consume
	// them: a sibling lane, or the knowledge store (which persists them for
	// next lifetime's lanes even in a single-lane group).
	share := pub != nil && (c.group.multi() || (c.s.opts.Store != nil && c.group.skel != ""))
	for iter := 0; iter < c.s.opts.MaxTheoryIterations; iter++ {
		if c.s.opts.Stop != nil && c.s.opts.Stop() {
			return true, nil // conservative, as in decideGround
		}
		st, unsatCore := c.sat.SolveAssuming(assumps...)
		if st == sat.Unsat {
			return false, unsatCore
		}
		for k, v := range c.atomVars {
			val := c.sat.Value(v)
			c.assign[k] = val
			c.lits[k] = sat.MkLit(v, !val)
		}
		res := c.theory.Check(c.assign)
		if res.Sat {
			if res.Truncated {
				// The FM cap produced a conservative answer; surface it so
				// benchtab and /v1/stats can report the probe as undecided
				// rather than silently "consistent".
				c.s.stats.RecordFMCapHit()
			}
			return true, nil
		}
		blocking := make([]sat.Lit, 0, len(res.Conflict))
		for _, ci := range res.Conflict {
			blocking = append(blocking, c.lits[ci].Not())
		}
		if share {
			lem := theoryLemma{
				lins: make([]lia.Lin, len(res.Conflict)),
				vals: make([]bool, len(res.Conflict)),
			}
			for k, ci := range res.Conflict {
				lem.lins[k] = c.g.lins[ci]
				lem.vals[k] = c.assign[ci]
			}
			*pub = append(*pub, lem)
		}
		if !c.sat.AddClause(blocking...) {
			return false, nil
		}
		c.lemmas++
	}
	// Resource bound hit: conservative "satisfiable", as in decideGround.
	return true, nil
}
