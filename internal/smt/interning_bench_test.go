package smt

import (
	"hash/fnv"
	"testing"

	"repro/internal/logic"
)

// Cache-hit microbenchmarks: the interning PR's headline claim is that a
// warm Valid call costs one Intern (hash + bucket probe) and one pointer-map
// lookup instead of a full Simplify + String serialization per call. The
// legacy benchmark reconstructs the old hit path verbatim (Simplify, String
// key, fnv shard hash, string-map probe) over the same formulas so the two
// per-op times are directly comparable.

// benchHitFormula builds a moderately sized non-trivial formula of the shape
// the fixed-point algorithms hammer the cache with: an implication between
// predicate conjunctions under a quantifier.
func benchHitFormula(n int) logic.Formula {
	x, y := logic.V("x"), logic.V("y")
	var pre []logic.Formula
	for i := 0; i < n; i++ {
		pre = append(pre, logic.LeF(logic.Plus(x, logic.I(int64(i))), y))
	}
	body := logic.Imp(logic.Conj(pre...), logic.LeF(x, y))
	return logic.All([]string{"x", "y"}, body)
}

// BenchmarkValidCacheHit measures the warm-cache Valid path with interned
// keys (hash once per call, pointer-identity probe, no serialization).
func BenchmarkValidCacheHit(b *testing.B) {
	s := NewSolver(Options{})
	f := benchHitFormula(8)
	s.Valid(f) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Valid(f)
	}
}

// BenchmarkValidCacheHitLegacyKey reconstructs the pre-interning hit path:
// every call re-simplified the formula, serialized it with String, hashed
// the string with fnv for shard selection, and probed a string-keyed map.
func BenchmarkValidCacheHitLegacyKey(b *testing.B) {
	f := benchHitFormula(8)
	memo := map[string]bool{logic.Simplify(f).String(): true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := logic.Simplify(f)
		if _, ok := g.(logic.Bool); ok {
			b.Fatal("benchmark formula simplified away")
		}
		key := g.String()
		h := fnv.New64a()
		h.Write([]byte(key))
		_ = h.Sum64() % cacheShards
		if !memo[key] {
			b.Fatal("cache miss in hit benchmark")
		}
	}
}

// BenchmarkValidTrivial measures the trivially-true short circuit, which
// must answer before any key computation with zero allocations.
func BenchmarkValidTrivial(b *testing.B) {
	s := NewSolver(Options{})
	x := logic.V("x")
	f := logic.LeF(x, x)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Valid(f)
	}
}
