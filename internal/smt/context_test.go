package smt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/logic"
)

// freshVerdict decides f with a brand-new non-incremental solver, so no
// context, cache, or learnt state can leak into the reference answer.
func freshVerdict(f logic.Formula) bool {
	return NewSolver(Options{NoIncremental: true}).Valid(f)
}

// genDiffAtom builds a random atom inside the difference fragment
// (x − y ▷◁ k or x ▷◁ k, possibly through an array select), which is where
// every benchmark VC lands and hence where the incremental path stays live.
func genDiffAtom(rng *rand.Rand) logic.Formula {
	vars := []string{"a", "b", "c", "d"}
	term := func() logic.Term {
		v := logic.Term(logic.V(vars[rng.Intn(len(vars))]))
		if rng.Intn(4) == 0 {
			v = logic.Sel(logic.AV("A"), v)
		}
		return v
	}
	ops := []logic.RelOp{logic.Eq, logic.Neq, logic.Lt, logic.Le, logic.Gt, logic.Ge}
	lhs := term()
	rhs := logic.Term(logic.I(int64(rng.Intn(5) - 2)))
	if rng.Intn(2) == 0 {
		rhs = logic.Plus(term(), rhs)
	}
	return logic.Rel(ops[rng.Intn(len(ops))], lhs, rhs)
}

// genDiffFormula combines difference atoms with ∧/∨/¬ only.
func genDiffFormula(rng *rand.Rand, depth int) logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		return genDiffAtom(rng)
	}
	switch rng.Intn(3) {
	case 0:
		return logic.Conj(genDiffFormula(rng, depth-1), genDiffFormula(rng, depth-1))
	case 1:
		return logic.Disj(genDiffFormula(rng, depth-1), genDiffFormula(rng, depth-1))
	default:
		return logic.Neg(genDiffFormula(rng, depth-1))
	}
}

// TestContextVsFreshRandomGround cross-checks a long-lived Context against
// from-scratch solving on random ground probes: the persistent instance
// accumulates encodings, Ackermann constraints, theory lemmas, and learnt
// clauses across probes, and every verdict must still match a fresh solver's.
func TestContextVsFreshRandomGround(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSolver(Options{})
	ctx := s.NewContext()
	if ctx == nil {
		t.Fatal("NewContext returned nil on an incremental solver")
	}
	for probe := 0; probe < 300; probe++ {
		f := genDiffFormula(rng, 3)
		got := ctx.Valid(f)
		want := freshVerdict(f)
		if got != want {
			t.Fatalf("probe %d: context=%v fresh=%v on %v", probe, got, want, f)
		}
	}
	if s.NumAssumptionProbes() == 0 {
		t.Error("no probe went through the incremental path")
	}
}

// TestContextMixedFragmentIncremental: probes that leave the difference
// fragment switch the context's theory checker from DiffChecker to a
// persistent LinChecker (they used to turn it dormant); verdicts must stay
// identical to the from-scratch path for the rest of its life, and the
// context must stay live.
func TestContextMixedFragmentIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSolver(Options{})
	ctx := s.NewContext()
	for probe := 0; probe < 150; probe++ {
		f := genGroundFormula(rng, 3) // includes a+b-style non-difference atoms
		got := ctx.Valid(f)
		want := freshVerdict(f)
		if got != want {
			t.Fatalf("probe %d: context=%v fresh=%v on %v", probe, got, want, f)
		}
	}
	if n := s.NumDormantContexts(); n != 0 {
		t.Errorf("mixed-fragment probes sent %d contexts dormant; want 0", n)
	}
	if s.NumFMIncremental()+s.NumFMCubeHits() == 0 {
		t.Error("no probe exercised the persistent general-LIA checker")
	}
}

// TestContextVsFreshSkeletonFills mimics the fixpoint workload: one VC
// skeleton, thousands of candidate predicate fills. The repeated structure
// must hit the encoding memo while verdicts stay identical to from-scratch.
func TestContextVsFreshSkeletonFills(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pool := make([]logic.Formula, 12)
	for i := range pool {
		pool[i] = genDiffAtom(rng)
	}
	pick := func() logic.Formula {
		n := 1 + rng.Intn(3)
		fs := make([]logic.Formula, n)
		for i := range fs {
			fs[i] = pool[rng.Intn(len(pool))]
		}
		return logic.Conj(fs...)
	}
	// Fixed "transition relation" shared by every probe, as a compiled VC
	// skeleton would be.
	trans := logic.Conj(
		logic.Rel(logic.Le, logic.V("a"), logic.V("b")),
		logic.Rel(logic.Lt, logic.V("b"), logic.Plus(logic.V("c"), logic.I(1))),
	)
	s := NewSolver(Options{})
	ctx := s.NewContext()
	for probe := 0; probe < 250; probe++ {
		vc := logic.Imp(logic.Conj(pick(), trans), pick())
		got := ctx.Valid(vc)
		want := freshVerdict(vc)
		if got != want {
			t.Fatalf("probe %d: context=%v fresh=%v on %v", probe, got, want, vc)
		}
	}
	if s.NumAssumptionProbes() == 0 {
		t.Error("no probe went through the incremental path")
	}
	if s.NumLemmaReuseHits() == 0 {
		t.Error("no probe reused persisted lemmas or learnt clauses")
	}
}

// TestContextConsistentDifferential checks selector-based consistency probes
// against from-scratch satisfiability of the conjunction, and that every
// reported core is sound: the core's own conjunction must already be
// unsatisfiable (hence so is any superset — the pruning invariant).
func TestContextConsistentDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pool := make([]logic.Formula, 16)
	for i := range pool {
		pool[i] = genDiffAtom(rng)
	}
	s := NewSolver(Options{})
	ctx := s.NewContext()
	decided, unsats := 0, 0
	for probe := 0; probe < 300; probe++ {
		n := 1 + rng.Intn(5)
		preds := make([]logic.Formula, n)
		for i := range preds {
			preds[i] = pool[rng.Intn(len(pool))]
		}
		consistent, core, ok := ctx.Consistent(preds)
		if !ok {
			continue
		}
		decided++
		want := NewSolver(Options{NoIncremental: true}).Satisfiable(logic.Conj(preds...))
		if consistent != want {
			t.Fatalf("probe %d: context consistent=%v fresh satisfiable=%v on %v",
				probe, consistent, want, preds)
		}
		if !consistent {
			unsats++
			if len(core) == 0 {
				t.Fatalf("probe %d: inconsistent conjunction with empty core: %v", probe, preds)
			}
			if NewSolver(Options{NoIncremental: true}).Satisfiable(logic.Conj(core...)) {
				t.Fatalf("probe %d: core %v is satisfiable from scratch", probe, core)
			}
		}
	}
	if decided == 0 {
		t.Fatal("context decided no consistency probe")
	}
	if unsats == 0 {
		t.Log("no inconsistent conjunction generated; core audit vacuous this seed")
	}
}

// TestContextQuantifiedFallback: probes whose negation stays quantified after
// instantiation cannot go through the persistent instance, but the context
// must still answer them (via fallback) with the from-scratch verdict.
func TestContextQuantifiedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := NewSolver(Options{})
	ctx := s.NewContext()
	for probe := 0; probe < 60; probe++ {
		f := genBoundedQuantFormula(rng)
		got := ctx.Valid(f)
		want := freshVerdict(f)
		if got != want {
			t.Fatalf("probe %d: context=%v fresh=%v on %v", probe, got, want, f)
		}
	}
}

// TestContextForRegistry: same skeleton key returns the same context; the
// NoIncremental escape hatch returns nil from both constructors.
func TestContextForRegistry(t *testing.T) {
	s := NewSolver(Options{})
	key := logic.Intern(logic.Rel(logic.Le, logic.V("a"), logic.V("b")))
	c1 := s.ContextFor(key)
	c2 := s.ContextFor(key)
	if c1 == nil || c1 != c2 {
		t.Fatalf("ContextFor not stable for one key: %p vs %p", c1, c2)
	}
	if s.NumContexts() != 1 {
		t.Errorf("NumContexts = %d, want 1", s.NumContexts())
	}
	off := NewSolver(Options{NoIncremental: true})
	if off.ContextFor(key) != nil || off.NewContext() != nil {
		t.Error("NoIncremental solver should not hand out contexts")
	}
	if off.Incremental() {
		t.Error("Incremental() should be false under NoIncremental")
	}
}

// TestContextLanePoolConcurrent hammers one context group from many
// goroutines. Contended probes must fan out across sibling lanes (never
// degrading to a wrong answer), and every verdict — including any that rode
// on lemmas imported from another lane's exchange — must match a fresh
// solver's.
func TestContextLanePoolConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	const n = 240
	fs := make([]logic.Formula, n)
	want := make([]bool, n)
	for i := range fs {
		fs[i] = genDiffFormula(rng, 3)
		want[i] = freshVerdict(fs[i])
	}
	s := NewSolver(Options{})
	ctx := s.NewContext()
	const workers = 8
	errs := make(chan string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if got := ctx.Valid(fs[i]); got != want[i] {
					errs <- fmt.Sprintf("probe %d: lane verdict %v, fresh %v on %v", i, got, want[i], fs[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if got := len(ctx.group.snapshotLanes()); got < 1 || got > ctxMaxLanes {
		t.Errorf("lane count %d outside [1, %d]", got, ctxMaxLanes)
	}
}

// TestContextLemmaExchange forces two lanes directly and checks that a theory
// lemma learned by the first is imported and asserted by the second without
// changing its verdicts.
func TestContextLemmaExchange(t *testing.T) {
	s := NewSolver(Options{})
	ctx := s.NewContext()
	lane2 := ctx.group.addLane()
	if lane2 == nil {
		t.Fatal("could not add a second lane")
	}
	// a < b ∧ b < c ∧ c < a is propositionally fine but theory-unsat, so
	// deciding its negation's validity learns at least one theory lemma.
	cyc := logic.Conj(
		logic.LtF(logic.V("a"), logic.V("b")),
		logic.LtF(logic.V("b"), logic.V("c")),
		logic.LtF(logic.V("c"), logic.V("a")),
	)
	lane1 := ctx.group.snapshotLanes()[0]
	lane1.mu.Lock()
	g, done, _ := s.groundForm(logic.Intern(cyc))
	if done {
		t.Fatal("cycle formula decided syntactically")
	}
	sat1, ok := lane1.decideLocked(g)
	lane1.mu.Unlock()
	if !ok || sat1 {
		t.Fatalf("lane1 decide = (%v, %v), want unsat incremental", sat1, ok)
	}
	if len(ctx.group.exch.lemmas) == 0 {
		t.Fatal("lane1 published no theory lemmas")
	}
	lane2.mu.Lock()
	sat2, ok2 := lane2.decideLocked(g)
	imported := lane2.imported
	lane2.mu.Unlock()
	if !ok2 || sat2 {
		t.Fatalf("lane2 decide = (%v, %v), want unsat incremental", sat2, ok2)
	}
	if imported == 0 {
		t.Error("lane2 imported no lemmas from the exchange")
	}
	if s.NumSharedLemmas() == 0 {
		t.Error("NumSharedLemmas did not advance")
	}
}
