package smt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lia"
	"repro/internal/logic"
)

// prop is a ground propositional formula whose leaves are integer
// inequalities (indices into grounder.lins).
type prop interface{ isProp() }

type pLit struct {
	atom int // index into grounder.lins
	neg  bool
}
type pAnd struct{ ps []prop }
type pOr struct{ ps []prop }
type pConst struct{ val bool }

func (pLit) isProp()   {}
func (pAnd) isProp()   {}
func (pOr) isProp()    {}
func (pConst) isProp() {}

func mkAnd(ps ...prop) prop {
	var out []prop
	for _, p := range ps {
		switch p := p.(type) {
		case pConst:
			if !p.val {
				return pConst{false}
			}
		case pAnd:
			out = append(out, p.ps...)
		default:
			out = append(out, p)
		}
	}
	switch len(out) {
	case 0:
		return pConst{true}
	case 1:
		return out[0]
	}
	return pAnd{ps: out}
}

// propAtoms appends the grounder atom indices mentioned by p to out
// (duplicates included; callers dedup).
func propAtoms(p prop, out []int) []int {
	switch p := p.(type) {
	case pLit:
		out = append(out, p.atom)
	case pAnd:
		for _, q := range p.ps {
			out = propAtoms(q, out)
		}
	case pOr:
		for _, q := range p.ps {
			out = propAtoms(q, out)
		}
	}
	return out
}

func mkOr(ps ...prop) prop {
	var out []prop
	for _, p := range ps {
		switch p := p.(type) {
		case pConst:
			if p.val {
				return pConst{true}
			}
		case pOr:
			out = append(out, p.ps...)
		default:
			out = append(out, p)
		}
	}
	switch len(out) {
	case 0:
		return pConst{false}
	case 1:
		return out[0]
	}
	return pOr{ps: out}
}

// grounder turns a ground first-order formula into a prop over integer
// inequalities: it splits reads over writes, replaces array reads and
// uninterpreted applications with fresh integer variables plus Ackermann
// functional-consistency constraints, and interns each inequality in a
// canonical orientation so that an atom and its negation share one index.
type grounder struct {
	lins  []lia.Lin
	byKey map[string]int

	// occurrences of flattened function applications, grouped by symbol.
	occs map[string][]occurrence
}

type occurrence struct {
	args []logic.Term // flattened, pure arithmetic terms
	v    string       // the fresh variable standing for the application
}

func newGrounder() *grounder {
	return &grounder{byKey: map[string]int{}, occs: map[string][]occurrence{}}
}

// internLeq interns the constraint l ≤ 0, returning a literal in canonical
// orientation (an inequality and its integer negation map to one atom).
func (g *grounder) internLeq(l lia.Lin) prop {
	if l.IsConst() {
		return pConst{val: l.K <= 0}
	}
	neg := l.Negate()
	key, nkey := l.Key(), neg.Key()
	if key <= nkey {
		return pLit{atom: g.intern(key, l)}
	}
	return pLit{atom: g.intern(nkey, neg), neg: true}
}

func (g *grounder) intern(key string, l lia.Lin) int {
	if i, ok := g.byKey[key]; ok {
		return i
	}
	i := len(g.lins)
	g.lins = append(g.lins, l)
	g.byKey[key] = i
	return i
}

// linOf converts a pure arithmetic term (no selects/applies) to linear form.
func linOf(t logic.Term) lia.Lin {
	switch t := t.(type) {
	case logic.Var:
		l := lia.NewLin()
		l.AddVar(t.Name, 1)
		return l
	case logic.IntLit:
		l := lia.NewLin()
		l.K = t.Val
		return l
	case logic.Add:
		l := linOf(t.X)
		l.AddLin(linOf(t.Y), 1)
		return l
	case logic.Sub:
		l := linOf(t.X)
		l.AddLin(linOf(t.Y), -1)
		return l
	case logic.Mul:
		l := linOf(t.X)
		l.Scale(t.C)
		return l
	}
	panic(fmt.Sprintf("smt: non-arithmetic term in linOf: %T (%s)", t, t))
}

// leq builds the literal for x − y + off ≤ 0 over flattened terms.
func (g *grounder) leq(x, y logic.Term, off int64) prop {
	l := linOf(x)
	l.AddLin(linOf(y), -1)
	l.K += off
	return g.internLeq(l)
}

// relProp encodes a relation over flattened terms as a prop. Equalities
// split into conjunctions of inequalities and disequalities into
// disjunctions of strict inequalities, so the theory solver sees only ≤.
func (g *grounder) relProp(op logic.RelOp, x, y logic.Term) prop {
	switch op {
	case logic.Le:
		return g.leq(x, y, 0)
	case logic.Lt:
		return g.leq(x, y, 1)
	case logic.Ge:
		return g.leq(y, x, 0)
	case logic.Gt:
		return g.leq(y, x, 1)
	case logic.Eq:
		return mkAnd(g.leq(x, y, 0), g.leq(y, x, 0))
	case logic.Neq:
		return mkOr(g.leq(x, y, 1), g.leq(y, x, 1))
	}
	panic("smt: bad RelOp")
}

// termCase is one branch of a read-over-write case split: the pure term Term
// under the guard conditions Conds (atoms to conjoin).
type termCase struct {
	conds []logic.Formula
	term  logic.Term
}

// splitStores expands reads over writes in t, producing one case per branch:
// sel(upd(A,i,v), j) becomes (i=j → v) and (i≠j → sel(A,j)).
func splitStores(t logic.Term) []termCase {
	switch t := t.(type) {
	case logic.Var, logic.IntLit:
		return []termCase{{term: t}}
	case logic.Add:
		return combine2(t.X, t.Y, func(a, b logic.Term) logic.Term { return logic.Add{X: a, Y: b} })
	case logic.Sub:
		return combine2(t.X, t.Y, func(a, b logic.Term) logic.Term { return logic.Sub{X: a, Y: b} })
	case logic.Mul:
		var out []termCase
		for _, c := range splitStores(t.X) {
			out = append(out, termCase{conds: c.conds, term: logic.Mul{C: t.C, X: c.term}})
		}
		return out
	case logic.Apply:
		cases := []termCase{{term: logic.Apply{F: t.F}}}
		for _, arg := range t.Args {
			var next []termCase
			for _, c := range cases {
				for _, ac := range splitStores(arg) {
					app := c.term.(logic.Apply)
					args := append(append([]logic.Term(nil), app.Args...), ac.term)
					next = append(next, termCase{
						conds: append(append([]logic.Formula(nil), c.conds...), ac.conds...),
						term:  logic.Apply{F: t.F, Args: args},
					})
				}
			}
			cases = next
		}
		return cases
	case logic.Select:
		var out []termCase
		for _, ic := range splitStores(t.Idx) {
			out = append(out, selectCases(t.A, ic.term, ic.conds)...)
		}
		return out
	}
	panic(fmt.Sprintf("smt: unknown term %T", t))
}

// selectCases expands sel(a, idx) for a possibly-stored array a.
func selectCases(a logic.Arr, idx logic.Term, conds []logic.Formula) []termCase {
	switch a := a.(type) {
	case logic.ArrVar:
		return []termCase{{conds: conds, term: logic.Sel(a, idx)}}
	case logic.Store:
		var out []termCase
		for _, sc := range splitStores(a.Idx) {
			// Hit: idx = store index → value.
			for _, vc := range splitStores(a.Val) {
				cs := concatConds(conds, sc.conds, vc.conds, logic.EqF(idx, sc.term))
				out = append(out, termCase{conds: cs, term: vc.term})
			}
			// Miss: idx ≠ store index → read the inner array.
			cs := concatConds(conds, sc.conds, nil, logic.NeqF(idx, sc.term))
			out = append(out, selectCases(a.A, idx, cs)...)
		}
		return out
	}
	panic(fmt.Sprintf("smt: unknown array term %T", a))
}

func combine2(x, y logic.Term, mk func(a, b logic.Term) logic.Term) []termCase {
	var out []termCase
	for _, cx := range splitStores(x) {
		for _, cy := range splitStores(y) {
			out = append(out, termCase{
				conds: append(append([]logic.Formula(nil), cx.conds...), cy.conds...),
				term:  mk(cx.term, cy.term),
			})
		}
	}
	return out
}

func concatConds(base, a, b []logic.Formula, extra logic.Formula) []logic.Formula {
	out := make([]logic.Formula, 0, len(base)+len(a)+len(b)+1)
	out = append(out, base...)
	out = append(out, a...)
	out = append(out, b...)
	out = append(out, extra)
	return out
}

// flattenTerm replaces array reads and applications in a store-free term
// with fresh integer variables, recording each occurrence for Ackermann
// constraints, and returns a pure arithmetic term.
func (g *grounder) flattenTerm(t logic.Term) logic.Term {
	switch t := t.(type) {
	case logic.Var, logic.IntLit:
		return t
	case logic.Add:
		return logic.Add{X: g.flattenTerm(t.X), Y: g.flattenTerm(t.Y)}
	case logic.Sub:
		return logic.Sub{X: g.flattenTerm(t.X), Y: g.flattenTerm(t.Y)}
	case logic.Mul:
		return logic.Mul{C: t.C, X: g.flattenTerm(t.X)}
	case logic.Select:
		av, ok := t.A.(logic.ArrVar)
		if !ok {
			panic("smt: store survived splitStores")
		}
		idx := g.flattenTerm(t.Idx)
		return g.registerApp("sel$"+av.Name, []logic.Term{idx})
	case logic.Apply:
		args := make([]logic.Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = g.flattenTerm(a)
		}
		return g.registerApp("app$"+t.F, args)
	}
	panic(fmt.Sprintf("smt: unknown term %T", t))
}

func (g *grounder) registerApp(sym string, args []logic.Term) logic.Term {
	keys := make([]string, len(args))
	for i, a := range args {
		keys[i] = linOf(a).Key()
	}
	name := sym + "(" + strings.Join(keys, ";") + ")"
	for _, o := range g.occs[sym] {
		if o.v == name {
			return logic.V(name)
		}
	}
	g.occs[sym] = append(g.occs[sym], occurrence{args: args, v: name})
	return logic.V(name)
}

// atomProp encodes a ground atom, splitting stores and flattening reads.
func (g *grounder) atomProp(a logic.Atom) prop {
	var branches []prop
	for _, cx := range splitStores(a.X) {
		for _, cy := range splitStores(a.Y) {
			var conj []prop
			for _, cond := range append(append([]logic.Formula(nil), cx.conds...), cy.conds...) {
				conj = append(conj, g.formulaProp(cond))
			}
			x := g.flattenTerm(cx.term)
			y := g.flattenTerm(cy.term)
			conj = append(conj, g.relProp(a.Op, x, y))
			branches = append(branches, mkAnd(conj...))
		}
	}
	return mkOr(branches...)
}

// formulaProp converts a ground, quantifier-free formula to a prop.
func (g *grounder) formulaProp(f logic.Formula) prop {
	switch f := f.(type) {
	case logic.Atom:
		return g.atomProp(f)
	case logic.Bool:
		return pConst{val: f.Val}
	case logic.Not:
		a, ok := f.F.(logic.Atom)
		if !ok {
			panic("smt: non-atomic negation in ground formula")
		}
		return g.atomProp(logic.Atom{Op: a.Op.Negate(), X: a.X, Y: a.Y})
	case logic.And:
		out := make([]prop, len(f.Fs))
		for i, h := range f.Fs {
			out[i] = g.formulaProp(h)
		}
		return mkAnd(out...)
	case logic.Or:
		out := make([]prop, len(f.Fs))
		for i, h := range f.Fs {
			out[i] = g.formulaProp(h)
		}
		return mkOr(out...)
	case logic.Implies:
		a, ok1 := f.A.(logic.Atom)
		b, ok2 := f.B.(logic.Atom)
		if !ok1 || !ok2 {
			panic("smt: implication survived NNF")
		}
		return mkOr(g.atomProp(logic.Atom{Op: a.Op.Negate(), X: a.X, Y: a.Y}), g.atomProp(b))
	}
	panic(fmt.Sprintf("smt: unexpected ground formula %T (%s)", f, f))
}

// ackermann returns the functional-consistency constraints for all recorded
// application occurrences: same symbol + equal arguments ⇒ equal values.
// The number of pairs is capped; dropped constraints only weaken the formula
// (making a "satisfiable" answer more likely), preserving soundness of
// validity answers.
func (g *grounder) ackermann(maxPairs int) prop {
	syms := make([]string, 0, len(g.occs))
	for s := range g.occs {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	var out []prop
	pairs := 0
	for _, s := range syms {
		os := g.occs[s]
		for i := 0; i < len(os); i++ {
			for j := i + 1; j < len(os); j++ {
				if pairs >= maxPairs {
					return mkAnd(out...)
				}
				pairs++
				// (args_i = args_j) ⇒ v_i = v_j encoded as
				// ∨_k args_i[k] ≠ args_j[k]  ∨  v_i = v_j.
				var disj []prop
				for k := range os[i].args {
					disj = append(disj, g.relProp(logic.Neq, os[i].args[k], os[j].args[k]))
				}
				disj = append(disj, g.relProp(logic.Eq, logic.V(os[i].v), logic.V(os[j].v)))
				out = append(out, mkOr(disj...))
			}
		}
	}
	return mkAnd(out...)
}
