// Package smt implements the SMT validity checker that every layer of the
// verifier calls through a single interface, mirroring the paper's use of Z3
// behind a pattern/skolemization wrapper (§7). Validity of a quantified
// formula is decided refutationally:
//
//	Valid(φ)  ⇔  ¬φ unsatisfiable
//
// The negated formula is normalized (array equalities → quantified element
// equalities, NNF, bound-variable standardization), its existentials are
// skolemized, and its universals are instantiated over the ground index
// terms of the formula (iterated so skolem witnesses feed later rounds).
// The resulting ground formula is decided by a lazy DPLL(T) loop over the
// CDCL core (package sat) and the integer arithmetic solver (package lia).
//
// "Unsatisfiable" answers — hence Valid == true — are sound unconditionally.
// A "satisfiable" answer on an instantiation-incomplete formula is treated
// as "not valid", which keeps every client algorithm conservative.
package smt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
)

// skolemize replaces every existential variable in the NNF formula f with an
// application of a fresh function symbol to the universally quantified
// variables in scope. Plain fresh constants are used when no universals are
// in scope.
func skolemize(f logic.Formula, univ []string, nm *logic.Namer) logic.Formula {
	switch f := f.(type) {
	case logic.Atom, logic.Bool:
		return f
	case logic.Not:
		// NNF guarantees the operand is an atom; nothing to skolemize.
		return f
	case logic.And:
		out := make([]logic.Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = skolemize(g, univ, nm)
		}
		return logic.Conj(out...)
	case logic.Or:
		out := make([]logic.Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = skolemize(g, univ, nm)
		}
		return logic.Disj(out...)
	case logic.Forall:
		u2 := append(append([]string(nil), univ...), f.Vars...)
		return logic.All(f.Vars, skolemize(f.Body, u2, nm))
	case logic.Exists:
		sub := map[string]logic.Term{}
		for _, x := range f.Vars {
			if len(univ) == 0 {
				sub[x] = logic.V(nm.Fresh())
			} else {
				args := make([]logic.Term, len(univ))
				for i, u := range univ {
					args[i] = logic.V(u)
				}
				sub[x] = logic.App(nm.Fresh(), args...)
			}
		}
		return skolemize(logic.Substitute(f.Body, sub, nil), univ, nm)
	}
	panic(fmt.Sprintf("smt: unexpected formula in skolemize: %T", f))
}

// boundVarNames returns the set of all quantified variable names in f.
// After StandardizeApart these are globally unique, so a term is ground
// exactly when it mentions none of them.
func boundVarNames(f logic.Formula) map[string]bool {
	out := map[string]bool{}
	var walk func(logic.Formula)
	walk = func(f logic.Formula) {
		switch f := f.(type) {
		case logic.Not:
			walk(f.F)
		case logic.And:
			for _, g := range f.Fs {
				walk(g)
			}
		case logic.Or:
			for _, g := range f.Fs {
				walk(g)
			}
		case logic.Forall:
			for _, v := range f.Vars {
				out[v] = true
			}
			walk(f.Body)
		case logic.Exists:
			for _, v := range f.Vars {
				out[v] = true
			}
			walk(f.Body)
		}
	}
	walk(f)
	return out
}

// termMentions reports whether t mentions any integer variable in names. It
// is called for every term and atom the instantiation walks touch, so it is a
// direct short-circuiting recursion rather than a TermVars set collection
// (which would allocate two maps per call). The traversal mirrors TermVars
// exactly — including walking only the X side of Mul (the linear fragment
// keeps Y constant).
func termMentions(t logic.Term, names map[string]bool) bool {
	switch t := t.(type) {
	case logic.Var:
		return names[t.Name]
	case logic.IntLit:
		return false
	case logic.Add:
		return termMentions(t.X, names) || termMentions(t.Y, names)
	case logic.Sub:
		return termMentions(t.X, names) || termMentions(t.Y, names)
	case logic.Mul:
		return termMentions(t.X, names)
	case logic.Select:
		return arrMentions(t.A, names) || termMentions(t.Idx, names)
	case logic.Apply:
		for _, a := range t.Args {
			if termMentions(a, names) {
				return true
			}
		}
		return false
	}
	return false
}

func arrMentions(a logic.Arr, names map[string]bool) bool {
	switch a := a.(type) {
	case logic.ArrVar:
		return false
	case logic.Store:
		return arrMentions(a.A, names) || termMentions(a.Idx, names) || termMentions(a.Val, names)
	}
	return false
}

// collectInstTerms gathers the instantiation set E for the universals of f:
// ground index terms of array reads, and ground atom sides compared against
// a term that mentions a bound variable. This is the standard complete
// instantiation set for the array property fragment.
func collectInstTerms(f logic.Formula, bound map[string]bool) []logic.Term {
	seen := map[string]logic.Term{}
	add := func(t logic.Term) {
		if !termMentions(t, bound) {
			seen[t.String()] = t
		}
	}
	var walkTerm func(logic.Term)
	var walkArr func(logic.Arr)
	walkTerm = func(t logic.Term) {
		switch t := t.(type) {
		case logic.Var, logic.IntLit:
		case logic.Add:
			walkTerm(t.X)
			walkTerm(t.Y)
		case logic.Sub:
			walkTerm(t.X)
			walkTerm(t.Y)
		case logic.Mul:
			walkTerm(t.X)
		case logic.Select:
			add(t.Idx)
			walkArr(t.A)
			walkTerm(t.Idx)
		case logic.Apply:
			for _, a := range t.Args {
				walkTerm(a)
			}
		}
	}
	walkArr = func(a logic.Arr) {
		switch a := a.(type) {
		case logic.ArrVar:
		case logic.Store:
			walkArr(a.A)
			add(a.Idx)
			walkTerm(a.Idx)
			walkTerm(a.Val)
		}
	}
	var walk func(logic.Formula)
	walk = func(f logic.Formula) {
		switch f := f.(type) {
		case logic.Atom:
			xb, yb := termMentions(f.X, bound), termMentions(f.Y, bound)
			if xb && !yb {
				add(f.Y)
			}
			if yb && !xb {
				add(f.X)
			}
			walkTerm(f.X)
			walkTerm(f.Y)
		case logic.Not:
			walk(f.F)
		case logic.And:
			for _, g := range f.Fs {
				walk(g)
			}
		case logic.Or:
			for _, g := range f.Fs {
				walk(g)
			}
		case logic.Forall:
			walk(f.Body)
		case logic.Exists:
			walk(f.Body)
		}
	}
	walk(f)
	if len(seen) == 0 {
		seen["0"] = logic.I(0)
	}
	terms := make([]logic.Term, 0, len(seen))
	for _, t := range seen {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		ci, cj := termComplexity(terms[i]), termComplexity(terms[j])
		if ci != cj {
			return ci < cj
		}
		return terms[i].String() < terms[j].String()
	})
	return terms
}

// termComplexity orders instantiation candidates: simple variables first so
// that if the set must be truncated the most useful instances survive.
func termComplexity(t logic.Term) int {
	switch t := t.(type) {
	case logic.Var:
		if strings.HasPrefix(t.Name, "@sk") {
			return 1
		}
		return 0
	case logic.IntLit:
		return 0
	case logic.Add:
		return 1 + termComplexity(t.X) + termComplexity(t.Y)
	case logic.Sub:
		return 1 + termComplexity(t.X) + termComplexity(t.Y)
	case logic.Mul:
		return 1 + termComplexity(t.X)
	case logic.Select:
		return 3 + termComplexity(t.Idx)
	case logic.Apply:
		c := 2
		for _, a := range t.Args {
			c += termComplexity(a)
		}
		return c
	}
	return 9
}

// instEnv carries the instantiation candidate sets of one round: the
// comparison-derived fallback set E and, per array, the ground index terms
// occurring anywhere in the formula (the E-matching index).
type instEnv struct {
	fallback     []logic.Term
	arrIndices   map[string][]logic.Term
	maxInstances int
	// triggers, when non-nil, supplies (memoized) trigger extraction for a
	// universal quantifier; instantiate falls back to triggersOf otherwise.
	triggers func(logic.Forall) map[string][]trigger
}

// converged reports whether this round's candidate sets match the previous
// round's — same fallback count and identical per-array ground index terms —
// in which case re-instantiating cannot produce anything new. (This is the
// same fixpoint condition the solver historically checked by rendering both
// sets through fmt.Sprintf and comparing the strings.)
func (env *instEnv) converged(prev *instEnv) bool {
	if prev == nil || len(env.fallback) != len(prev.fallback) {
		return false
	}
	if len(env.arrIndices) != len(prev.arrIndices) {
		return false
	}
	for arr, ts := range env.arrIndices {
		ps, ok := prev.arrIndices[arr]
		if !ok || len(ts) != len(ps) {
			return false
		}
		for i := range ts {
			if !logic.TermStructEq(ts[i], ps[i]) {
				return false
			}
		}
	}
	return true
}

// arrFamily canonicalizes an array variable name to its SSA family: the
// versions A, A#1, A#2 of one program array share index terms for
// E-matching purposes (they are linked by element equalities).
func arrFamily(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '#' {
			return name[:i]
		}
	}
	return name
}

// groundArrayIndices collects, per array family, the ground terms used as
// its read or write indices anywhere in f. These are the E-matching
// candidates.
func groundArrayIndices(f logic.Formula, bound map[string]bool) map[string][]logic.Term {
	seen := map[string]map[string]logic.Term{}
	add := func(arr string, t logic.Term) {
		if termMentions(t, bound) {
			return
		}
		m, ok := seen[arr]
		if !ok {
			m = map[string]logic.Term{}
			seen[arr] = m
		}
		m[t.String()] = t
	}
	var walkTerm func(logic.Term)
	var walkArr func(logic.Arr) string
	walkArr = func(a logic.Arr) string {
		switch a := a.(type) {
		case logic.ArrVar:
			return arrFamily(a.Name)
		case logic.Store:
			name := walkArr(a.A)
			add(name, a.Idx)
			walkTerm(a.Idx)
			walkTerm(a.Val)
			return name
		}
		return ""
	}
	walkTerm = func(t logic.Term) {
		switch t := t.(type) {
		case logic.Var, logic.IntLit:
		case logic.Add:
			walkTerm(t.X)
			walkTerm(t.Y)
		case logic.Sub:
			walkTerm(t.X)
			walkTerm(t.Y)
		case logic.Mul:
			walkTerm(t.X)
		case logic.Select:
			name := walkArr(t.A)
			add(name, t.Idx)
			walkTerm(t.Idx)
		case logic.Apply:
			for _, a := range t.Args {
				walkTerm(a)
			}
		}
	}
	var walk func(logic.Formula)
	walk = func(f logic.Formula) {
		switch f := f.(type) {
		case logic.Atom:
			walkTerm(f.X)
			walkTerm(f.Y)
		case logic.Not:
			walk(f.F)
		case logic.And:
			for _, g := range f.Fs {
				walk(g)
			}
		case logic.Or:
			for _, g := range f.Fs {
				walk(g)
			}
		case logic.Forall:
			walk(f.Body)
		case logic.Exists:
			walk(f.Body)
		}
	}
	walk(f)
	out := map[string][]logic.Term{}
	for arr, m := range seen {
		keys := logic.SortedKeys(m)
		ts := make([]logic.Term, len(keys))
		for i, k := range keys {
			ts[i] = m[k]
		}
		out[arr] = ts
	}
	return out
}

// trigger is one E-matching pattern: the bound variable occurs (plus a
// constant offset) as an index of the named array.
type trigger struct {
	arr    string
	offset int64
}

// triggersOf extracts, per bound variable, the select patterns it occurs in
// within body: A[v] gives {A, 0}, A[v+1] gives {A, +1}, A[v-2] gives {A, −2}.
func triggersOf(body logic.Formula, vars []string) map[string][]trigger {
	isVar := map[string]bool{}
	for _, v := range vars {
		isVar[v] = true
	}
	out := map[string][]trigger{}
	addTrig := func(v string, tr trigger) {
		for _, t := range out[v] {
			if t == tr {
				return
			}
		}
		out[v] = append(out[v], tr)
	}
	matchIdx := func(arr string, idx logic.Term) {
		switch idx := idx.(type) {
		case logic.Var:
			if isVar[idx.Name] {
				addTrig(idx.Name, trigger{arr: arr, offset: 0})
			}
		case logic.Add:
			if v, ok := idx.X.(logic.Var); ok && isVar[v.Name] {
				if c, ok := idx.Y.(logic.IntLit); ok {
					addTrig(v.Name, trigger{arr: arr, offset: c.Val})
				}
			}
		case logic.Sub:
			if v, ok := idx.X.(logic.Var); ok && isVar[v.Name] {
				if c, ok := idx.Y.(logic.IntLit); ok {
					addTrig(v.Name, trigger{arr: arr, offset: -c.Val})
				}
			}
		}
	}
	var walkTerm func(logic.Term)
	var walkArr func(logic.Arr) string
	walkArr = func(a logic.Arr) string {
		switch a := a.(type) {
		case logic.ArrVar:
			return arrFamily(a.Name)
		case logic.Store:
			name := walkArr(a.A)
			matchIdx(name, a.Idx)
			walkTerm(a.Idx)
			walkTerm(a.Val)
			return name
		}
		return ""
	}
	walkTerm = func(t logic.Term) {
		switch t := t.(type) {
		case logic.Var, logic.IntLit:
		case logic.Add:
			walkTerm(t.X)
			walkTerm(t.Y)
		case logic.Sub:
			walkTerm(t.X)
			walkTerm(t.Y)
		case logic.Mul:
			walkTerm(t.X)
		case logic.Select:
			name := walkArr(t.A)
			matchIdx(name, t.Idx)
			walkTerm(t.Idx)
		case logic.Apply:
			for _, a := range t.Args {
				walkTerm(a)
			}
		}
	}
	var walk func(logic.Formula)
	walk = func(f logic.Formula) {
		switch f := f.(type) {
		case logic.Atom:
			walkTerm(f.X)
			walkTerm(f.Y)
		case logic.Not:
			walk(f.F)
		case logic.And:
			for _, g := range f.Fs {
				walk(g)
			}
		case logic.Or:
			for _, g := range f.Fs {
				walk(g)
			}
		case logic.Forall:
			walk(f.Body)
		case logic.Exists:
			walk(f.Body)
		}
	}
	walk(body)
	return out
}

// candidatesFor returns the instantiation terms for one bound variable of a
// universal: the E-matching candidates from its select patterns, or the
// comparison-derived fallback set when it indexes nothing.
func (env *instEnv) candidatesFor(v string, trigs map[string][]trigger) []logic.Term {
	ts := trigs[v]
	if len(ts) == 0 {
		return env.fallback
	}
	seen := map[string]logic.Term{}
	for _, tr := range ts {
		for _, idx := range env.arrIndices[tr.arr] {
			// Pattern v+off matched ground index t instantiates v := t−off.
			inst := idx
			if tr.offset != 0 {
				inst = logic.Minus(idx, logic.I(tr.offset))
			}
			seen[inst.String()] = inst
		}
	}
	if len(seen) == 0 {
		return env.fallback
	}
	keys := logic.SortedKeys(seen)
	out := make([]logic.Term, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// instantiate replaces every universal in the skolemized NNF formula with
// the conjunction of its body over tuples of candidate terms, bounded by
// maxInstances per quantifier.
func instantiate(f logic.Formula, env *instEnv) logic.Formula {
	switch f := f.(type) {
	case logic.Atom, logic.Bool, logic.Not:
		return f
	case logic.And:
		out := make([]logic.Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = instantiate(g, env)
		}
		return logic.Conj(out...)
	case logic.Or:
		out := make([]logic.Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = instantiate(g, env)
		}
		return logic.Disj(out...)
	case logic.Forall:
		k := len(f.Vars)
		var trigs map[string][]trigger
		if env.triggers != nil {
			trigs = env.triggers(f)
		} else {
			trigs = triggersOf(f.Body, f.Vars)
		}
		cands := make([][]logic.Term, k)
		total := 1
		for i, v := range f.Vars {
			cands[i] = env.candidatesFor(v, trigs)
			total *= len(cands[i])
		}
		// Shrink the largest sets until the tuple count is bounded.
		for total > env.maxInstances {
			maxI := 0
			for i := range cands {
				if len(cands[i]) > len(cands[maxI]) {
					maxI = i
				}
			}
			if len(cands[maxI]) <= 1 {
				break
			}
			total = total / len(cands[maxI]) * (len(cands[maxI]) - 1)
			cands[maxI] = cands[maxI][:len(cands[maxI])-1]
		}
		var out []logic.Formula
		tuple := make([]logic.Term, k)
		// One substitution map per quantifier, overwritten per tuple:
		// Substitute only reads it, so reuse is safe and saves a map
		// allocation per instance.
		sub := make(map[string]logic.Term, k)
		var gen func(int)
		gen = func(i int) {
			if i == k {
				for j, v := range f.Vars {
					sub[v] = tuple[j]
				}
				inst := logic.Substitute(f.Body, sub, nil)
				out = append(out, instantiate(inst, env))
				return
			}
			for _, t := range cands[i] {
				tuple[i] = t
				gen(i + 1)
			}
		}
		gen(0)
		return logic.Conj(out...)
	case logic.Exists:
		panic("smt: existential survived skolemization")
	}
	panic(fmt.Sprintf("smt: unexpected formula in instantiate: %T", f))
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
		if r > 1<<30 {
			return r
		}
	}
	return r
}
