package smt

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lia"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/stats"
	"repro/internal/store"
)

// Options configures the solver's quantifier instantiation and resource
// bounds. The zero value is usable; Normalize fills in defaults.
type Options struct {
	// InstRounds is how many times the instantiation set is re-derived from
	// the previous round's ground formula, so skolem witnesses produced in
	// round k become instantiation candidates in round k+1. Default 3.
	InstRounds int
	// MaxInstances caps the number of tuples one universal is expanded to.
	// Default 4096.
	MaxInstances int
	// MaxAckermannPairs caps functional-consistency constraints. Default 20000.
	MaxAckermannPairs int
	// MaxTheoryIterations caps DPLL(T) model-repair rounds. Default 100000.
	MaxTheoryIterations int
	// CacheSize caps the validity memo table (0 = unlimited). The cap is
	// approximate: it is split across the cache's shards, each of which
	// holds at least one entry, and eviction is per-shard and bounded
	// (completed entries are dropped one at a time, never a full wipe).
	CacheSize int
	// Stop, when non-nil, is polled inside the DPLL(T) loop; returning
	// true abandons the query with a conservative "satisfiable" answer
	// (Valid reports false), releasing the CPU promptly after a timeout.
	Stop func() bool
	// NoIncremental disables persistent assumption-based contexts:
	// ContextFor and NewContext return nil and every probe takes the
	// from-scratch path. Used by differential tests and A/B benchmarking;
	// verdicts are identical either way.
	NoIncremental bool
	// Store, when non-nil, is the on-disk knowledge base: cache-missing
	// validity verdicts are answered from it when present (and appended to
	// it when decided without a fired Stop), and per-skeleton contexts are
	// seeded with its persisted theory lemmas. The store must have been
	// opened with Params = this option set's StoreParams(), which is what
	// makes replaying last lifetime's verdicts sound.
	Store *store.Store
}

// StoreParams is the fingerprint of every option that can change a verdict.
// A knowledge store written under different bounds is sidelined at Open:
// persisted verdicts are only as deterministic as the bounds they were
// computed under. CacheSize and Stop are excluded — they change performance
// and completion, never a settled verdict (Stop-fired conservative answers
// are never appended).
func (o Options) StoreParams() string {
	o = o.Normalize()
	return fmt.Sprintf("smt:v1 inst=%d max_inst=%d ack=%d theory_iters=%d incremental=%v",
		o.InstRounds, o.MaxInstances, o.MaxAckermannPairs, o.MaxTheoryIterations, !o.NoIncremental)
}

// Normalize returns o with defaults applied.
func (o Options) Normalize() Options {
	if o.InstRounds == 0 {
		o.InstRounds = 3
	}
	if o.MaxInstances == 0 {
		o.MaxInstances = 4096
	}
	if o.MaxAckermannPairs == 0 {
		o.MaxAckermannPairs = 20000
	}
	if o.MaxTheoryIterations == 0 {
		o.MaxTheoryIterations = 100000
	}
	return o
}

// Solver checks validity of quantified formulas over integers + arrays +
// uninterpreted functions. It memoizes results and reports per-query
// latencies to an optional stats collector. Safe for concurrent use: the
// memo table is sharded with singleflight deduplication (two goroutines
// never decide the same VC twice) and the counters are atomic.
type Solver struct {
	opts  Options
	cache *validityCache
	stats *stats.Collector

	// trigMemo caches triggersOf per interned universal quantifier
	// (*logic.IFormula → map[string][]trigger); the value maps are
	// read-only after construction, so sharing across goroutines is safe.
	trigMemo sync.Map

	queries   atomic.Int64 // validity checks actually decided (cache misses)
	cacheHits atomic.Int64 // validity checks answered from the memo table

	// Incremental-context registry (one persistent Context per compiled VC
	// skeleton) and its counters.
	ctxMu        sync.RWMutex
	ctxs         map[*logic.IFormula]*Context
	ctxCreated   atomic.Int64 // contexts created (registry + standalone + lanes)
	ctxProbes    atomic.Int64 // probes decided incrementally under assumptions
	ctxDormant   atomic.Int64 // contexts gone dormant (Ackermann budget exhausted)
	lemmaReuse   atomic.Int64 // probes that reused learnt clauses or theory lemmas
	lemmasShared atomic.Int64 // theory lemmas imported from a sibling lane's exchange
	storeHits    atomic.Int64 // cache-missing verdicts answered from the knowledge store
	lemmasWarm   atomic.Int64 // theory lemmas seeded into context groups from the store

	// Fourier–Motzkin activity: fmScratch counts from-scratch eliminations
	// (decideGround's general-LIA fallback, one lia.Check per theory
	// iteration); fmCounters aggregates the persistent LinCheckers of every
	// context lane (incremental runs, conflict-cube hits, cap hits). The
	// incremental-vs-NoIncremental BENCH_7 gate compares fmScratch.
	fmScratch  atomic.Int64
	fmCounters lia.Counters
}

// maxContexts bounds the per-skeleton registry; beyond it ContextFor returns
// nil and callers take the from-scratch path.
const maxContexts = 1024

// NewSolver returns a solver with the given options.
func NewSolver(opts Options) *Solver {
	opts = opts.Normalize()
	return &Solver{opts: opts, cache: newValidityCache(opts.CacheSize)}
}

// SetStats attaches a collector that receives per-query latencies (Figure 4).
// It must be called before the solver is shared across goroutines.
func (s *Solver) SetStats(c *stats.Collector) { s.stats = c }

// NumQueries returns how many validity checks were actually decided (cache
// misses). Every Valid call on a non-trivial formula increments exactly one
// of NumQueries and NumCacheHits.
func (s *Solver) NumQueries() int64 { return s.queries.Load() }

// NumCacheHits returns how many validity checks were answered from the memo
// table, including singleflight waiters that rode on a concurrent decision.
func (s *Solver) NumCacheHits() int64 { return s.cacheHits.Load() }

// NumContexts returns how many incremental contexts were created.
func (s *Solver) NumContexts() int64 { return s.ctxCreated.Load() }

// NumAssumptionProbes returns how many probes were decided incrementally
// (under assumptions in a persistent context) instead of from scratch. Every
// cache-missing Valid call through a context increments exactly one of
// NumQueries and NumAssumptionProbes.
func (s *Solver) NumAssumptionProbes() int64 { return s.ctxProbes.Load() }

// NumLemmaReuseHits returns how many incremental probes started against a
// SAT instance that already held learnt clauses or persisted theory lemmas
// from earlier probes.
func (s *Solver) NumLemmaReuseHits() int64 { return s.lemmaReuse.Load() }

// NumSharedLemmas returns how many theory lemmas were imported across sibling
// lanes of a context group (each import counts once per receiving lane).
func (s *Solver) NumSharedLemmas() int64 { return s.lemmasShared.Load() }

// NumStoreVerdictHits returns how many cache-missing validity checks were
// answered from the on-disk knowledge store instead of being decided.
func (s *Solver) NumStoreVerdictHits() int64 { return s.storeHits.Load() }

// NumWarmLemmas returns how many persisted theory lemmas were seeded into
// freshly created context groups from the knowledge store.
func (s *Solver) NumWarmLemmas() int64 { return s.lemmasWarm.Load() }

// Knowledge returns the attached on-disk store, or nil.
func (s *Solver) Knowledge() *store.Store { return s.opts.Store }

// NumDormantContexts returns how many context lanes went dormant (Ackermann
// pair budget exhausted — the only remaining dormancy trigger now that
// general-LIA atom sets route through persistent LinCheckers).
func (s *Solver) NumDormantContexts() int64 { return s.ctxDormant.Load() }

// NumFMScratch returns how many from-scratch Fourier–Motzkin eliminations ran
// (decideGround's general-LIA fallback; one per theory iteration there).
func (s *Solver) NumFMScratch() int64 { return s.fmScratch.Load() }

// NumFMIncremental returns how many eliminations persistent LinCheckers ran
// (checks that missed their conflict-cube store).
func (s *Solver) NumFMIncremental() int64 { return s.fmCounters.Runs.Load() }

// NumFMCubeHits returns how many LinChecker checks were answered from a
// persisted conflict cube, skipping the elimination entirely.
func (s *Solver) NumFMCubeHits() int64 { return s.fmCounters.CubeHits.Load() }

// NumFMCapHits returns how many Fourier–Motzkin runs (from-scratch or
// incremental) hit the derived-constraint cap and returned a conservative
// Truncated "satisfiable".
func (s *Solver) NumFMCapHits() int64 { return s.fmCounters.CapHits.Load() }

// Incremental reports whether persistent assumption-based contexts are
// enabled (Options.NoIncremental unset).
func (s *Solver) Incremental() bool { return !s.opts.NoIncremental }

// ContextFor returns the persistent incremental context keyed by a compiled
// VC skeleton, creating it on first use. Returns nil when incremental solving
// is disabled or the registry is full; callers must then fall back to Valid.
func (s *Solver) ContextFor(key *logic.IFormula) *Context {
	if s.opts.NoIncremental || key == nil {
		return nil
	}
	s.ctxMu.RLock()
	c := s.ctxs[key]
	s.ctxMu.RUnlock()
	if c != nil {
		return c
	}
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	if c = s.ctxs[key]; c != nil {
		return c
	}
	if s.ctxs == nil {
		s.ctxs = map[*logic.IFormula]*Context{}
	}
	if len(s.ctxs) >= maxContexts {
		return nil
	}
	var skel string
	if s.opts.Store != nil {
		// The skeleton's portable identity keys its lemmas on disk; a
		// skeleton the store has never seen simply loads nothing.
		skel = store.FormulaKey(key.Formula())
	}
	c = s.newContextKeyed(skel)
	s.ctxs[key] = c
	return c
}

// NewContext returns a standalone incremental context outside the
// per-skeleton registry (nil when incremental solving is disabled). Used for
// predicate-consistency probing, where the "skeleton" is the predicate
// vocabulary itself.
func (s *Solver) NewContext() *Context {
	if s.opts.NoIncremental {
		return nil
	}
	return s.newContext()
}

// Valid reports whether f is valid (true in every model). The answer true is
// always sound; false may also mean "not provable within the instantiation
// bounds", which client algorithms treat conservatively.
//
// The hot path is allocation-conscious: syntactically trivial formulas are
// decided before touching the interner or the cache, and a repeated query
// costs one hash walk of f plus a pointer-keyed map probe — the formula is
// never serialized and never re-simplified.
func (s *Solver) Valid(f logic.Formula) bool {
	if v, ok := logic.TrivialVerdict(f); ok {
		return v
	}
	n := logic.Intern(f)
	e, hit := s.cache.lookupOrClaim(n)
	if hit {
		<-e.done
		s.cacheHits.Add(1)
		return e.val
	}
	var skey string
	if s.opts.Store != nil {
		skey = store.FormulaKey(n.Formula())
		if v, ok := s.opts.Store.Verdict(skey); ok {
			s.storeHits.Add(1)
			s.stats.RecordStoreLookup(true)
			e.settle(v)
			return v
		}
		s.stats.RecordStoreLookup(false)
	}
	start := time.Now()
	var v bool
	sn := n.Simplified()
	if b, ok := sn.Formula().(logic.Bool); ok {
		v = b.Val
	} else if ground, done, gv := s.groundForm(sn.Negated()); done {
		v = !gv
	} else {
		v = !s.decideGround(ground)
	}
	s.stats.RecordQuery(time.Since(start))
	s.queries.Add(1)
	e.settle(v)
	if s.opts.Stop != nil && s.opts.Stop() {
		// The run was abandoned mid-query; the conservative answer must
		// not be memoized as a real verdict. Waiters already holding the
		// entry still get the (conservative) value.
		s.cache.forget(n, e)
	} else if s.opts.Store != nil {
		// Settled without a fired Stop: a real verdict, safe to persist.
		s.opts.Store.AppendVerdict(skey, v)
	}
	return v
}

// normalizeForSolving is the solver-side preprocessing chain, memoized per
// interned formula via IFormula.Normalized: array equalities become
// quantified element equalities, then Simplify, NNF, bound-variable
// standardization, and skolemization. Each Namer is created fresh here, so
// the result is a pure function of the input formula.
func normalizeForSolving(f logic.Formula) logic.Formula {
	f = logic.RewriteArrayEq(f, logic.NewNamer("@q"))
	f = logic.Simplify(f)
	if b, ok := f.(logic.Bool); ok {
		return b
	}
	f = logic.NNF(f)
	f = logic.StandardizeApart(f, logic.NewNamer("@b"))
	return skolemize(f, nil, logic.NewNamer("@sk"))
}

// Satisfiable reports whether f has a model, modulo bounded quantifier
// instantiation: "false" (unsat) is sound; "true" is exact for ground
// formulas and best-effort for quantified ones.
func (s *Solver) Satisfiable(f logic.Formula) bool {
	ground, done, v := s.groundForm(logic.Intern(f))
	if done {
		return v
	}
	return s.decideGround(ground)
}

// groundForm runs the pure preprocessing pipeline shared by the from-scratch
// and incremental paths: normalization followed by bounded quantifier
// instantiation. It returns the ground formula to decide, or done=true with
// the syntactic verdict. The result is a pure function of the formula and the
// solver options, so incremental contexts can preprocess per probe and still
// agree with Satisfiable on every query. Taking the interned handle lets
// callers that already hold one (Valid's negation chain) skip a full hash
// walk of the formula.
func (s *Solver) groundForm(n *logic.IFormula) (ground logic.Formula, done, v bool) {
	f := n.Normalized(normalizeForSolving).Formula()
	if b, ok := f.(logic.Bool); ok {
		return nil, true, b.Val
	}

	bound := boundVarNames(f)
	ground = f
	if len(bound) > 0 {
		var prev *instEnv
		for round := 0; round < s.opts.InstRounds; round++ {
			// Candidates come from both the quantified formula (guard
			// boundary terms, original index terms) and the previous ground
			// round (skolem witnesses that appeared as array indices). In
			// round 0 the two coincide and the collectors dedup by term, so
			// walking f once yields the identical candidate sets.
			var both logic.Formula = f
			if round > 0 {
				both = logic.And{Fs: []logic.Formula{f, ground}}
			}
			env := &instEnv{
				fallback:     collectInstTerms(both, bound),
				arrIndices:   groundArrayIndices(both, bound),
				maxInstances: s.opts.MaxInstances,
				triggers:     s.triggers,
			}
			if env.converged(prev) {
				break
			}
			prev = env
			ground = instantiate(f, env)
		}
		ground = logic.Simplify(ground)
	}
	return ground, false, false
}

// triggers returns triggersOf(q.Body, q.Vars), memoized per interned
// quantifier across rounds and queries.
func (s *Solver) triggers(q logic.Forall) map[string][]trigger {
	n := logic.Intern(q)
	if v, ok := s.trigMemo.Load(n); ok {
		return v.(map[string][]trigger)
	}
	trigs := triggersOf(q.Body, q.Vars)
	v, _ := s.trigMemo.LoadOrStore(n, trigs)
	return v.(map[string][]trigger)
}

// decideGround decides a ground (quantifier-free, store-possible) formula by
// lazy DPLL(T).
func (s *Solver) decideGround(f logic.Formula) bool {
	g := newGrounder()
	p := g.formulaProp(f)
	p = mkAnd(p, g.ackermann(s.opts.MaxAckermannPairs))
	switch p := p.(type) {
	case pConst:
		return p.val
	default:
	}

	solver := sat.New()
	enc := &encoder{s: solver, atomVar: map[int]int{}}
	root := enc.encode(p)
	if !solver.AddClause(root) {
		return false
	}

	// Parallel arrays mapping atom index → SAT variable, built on demand by
	// the encoder; iterate deterministically over atom indices so conflict
	// clauses (and hence iteration counts) are reproducible run to run.
	atoms := make([]int, 0, len(enc.atomVar))
	for atom := range enc.atomVar {
		atoms = append(atoms, atom)
	}
	sort.Ints(atoms)
	// The atom set is fixed across theory iterations, so precompute each
	// atom's SAT variable, its constraint, and its integer negation once.
	// Negate clones the coefficient map, and doing that per false atom per
	// iteration — plus Check rebuilding its constraint graph per call — was
	// most of the solver's allocation volume. When every atom is a
	// difference constraint (the common case; §3 of the paper's evaluation
	// programs stay in this fragment), a preprocessed DiffChecker makes the
	// per-iteration theory check allocation-free.
	atomVars := make([]int, len(atoms))
	posLins := make([]lia.Lin, len(atoms))
	negLins := make([]lia.Lin, len(atoms))
	for k, atom := range atoms {
		atomVars[k] = enc.atomVar[atom]
		posLins[k] = g.lins[atom]
		negLins[k] = g.lins[atom].Negate()
	}
	diff, allDiff := lia.NewDiffChecker(posLins)
	assign := make([]bool, len(atoms))
	lits := make([]sat.Lit, len(atoms))
	var cons []lia.Lin // fallback path only
	for iter := 0; iter < s.opts.MaxTheoryIterations; iter++ {
		if s.opts.Stop != nil && s.opts.Stop() {
			return true // conservative: Valid() reports false
		}
		if solver.Solve() == sat.Unsat {
			return false
		}
		for k, v := range atomVars {
			val := solver.Value(v)
			assign[k] = val
			lits[k] = sat.MkLit(v, !val)
		}
		var res lia.Result
		if allDiff {
			res = diff.Check(assign)
		} else {
			cons = cons[:0]
			for k, val := range assign {
				if val {
					cons = append(cons, posLins[k])
				} else {
					cons = append(cons, negLins[k])
				}
			}
			s.fmScratch.Add(1)
			res = lia.Check(cons)
			if res.Truncated {
				s.fmCounters.CapHits.Add(1)
				s.stats.RecordFMCapHit()
			}
		}
		if res.Sat {
			return true
		}
		blocking := make([]sat.Lit, 0, len(res.Conflict))
		for _, ci := range res.Conflict {
			blocking = append(blocking, lits[ci].Not())
		}
		if !solver.AddClause(blocking...) {
			return false
		}
	}
	// Resource bound hit: report "satisfiable", i.e. Valid() answers false,
	// the conservative direction for every client algorithm.
	return true
}

// encoder performs one-sided (NNF/plaisted-greenbaum) Tseitin encoding of a
// prop into the SAT solver.
type encoder struct {
	s        *sat.Solver
	atomVar  map[int]int // theory atom index → SAT variable
	trueVar  int
	haveTrue bool
}

func (e *encoder) constTrue() sat.Lit {
	if !e.haveTrue {
		e.trueVar = e.s.NewVar()
		e.s.AddClause(sat.MkLit(e.trueVar, false))
		e.haveTrue = true
	}
	return sat.MkLit(e.trueVar, false)
}

func (e *encoder) encode(p prop) sat.Lit {
	switch p := p.(type) {
	case pConst:
		if p.val {
			return e.constTrue()
		}
		return e.constTrue().Not()
	case pLit:
		v, ok := e.atomVar[p.atom]
		if !ok {
			v = e.s.NewVar()
			e.atomVar[p.atom] = v
		}
		return sat.MkLit(v, p.neg)
	case pAnd:
		gv := e.s.NewVar()
		gl := sat.MkLit(gv, false)
		for _, child := range p.ps {
			cl := e.encode(child)
			e.s.AddClause(gl.Not(), cl)
		}
		return gl
	case pOr:
		gv := e.s.NewVar()
		gl := sat.MkLit(gv, false)
		clause := make([]sat.Lit, 0, len(p.ps)+1)
		clause = append(clause, gl.Not())
		for _, child := range p.ps {
			clause = append(clause, e.encode(child))
		}
		e.s.AddClause(clause...)
		return gl
	}
	panic("smt: unknown prop")
}
