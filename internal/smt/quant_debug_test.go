package smt

import (
	"testing"

	"repro/internal/logic"
)

// The ghost-copy entry VC of insertion-sort preservation, minimized:
// (∀k: A0[k]=A[k]) ⇒ (∀y: 0≤y<1 ⇒ ∃x: A0[y]=A[x] ∧ 0≤x<1).
func TestGhostCopyEntryVC(t *testing.T) {
	s := NewSolver(Options{})
	a, a0 := logic.AV("A"), logic.AV("A0")
	ghost := logic.All([]string{"k"}, logic.EqF(logic.Sel(a0, logic.V("k")), logic.Sel(a, logic.V("k"))))
	concl := logic.All([]string{"y"}, logic.Imp(
		logic.Conj(logic.LeF(logic.I(0), logic.V("y")), logic.LtF(logic.V("y"), logic.I(1))),
		logic.Any([]string{"x"}, logic.Conj(
			logic.EqF(logic.Sel(a0, logic.V("y")), logic.Sel(a, logic.V("x"))),
			logic.LeF(logic.I(0), logic.V("x")), logic.LtF(logic.V("x"), logic.I(1))))))
	f := logic.Imp(ghost, concl)
	if !s.Valid(f) {
		t.Error("ghost-copy entry VC should be valid")
	}
}

// Swap preserves the ∀∃ permutation fact.
func TestSwapPreservesPermutation(t *testing.T) {
	s := NewSolver(Options{})
	a, a0, a1, a2 := logic.AV("A"), logic.AV("A0"), logic.AV("A#1"), logic.AV("A#2")
	i, min, n := logic.V("i"), logic.V("min"), logic.V("n")
	perm := func(dst logic.Arr) logic.Formula {
		return logic.All([]string{"y"}, logic.Imp(
			logic.Conj(logic.LeF(logic.I(0), logic.V("y")), logic.LtF(logic.V("y"), n)),
			logic.Any([]string{"x"}, logic.Conj(
				logic.EqF(logic.Sel(a0, logic.V("y")), logic.Sel(dst, logic.V("x"))),
				logic.LeF(logic.I(0), logic.V("x")), logic.LtF(logic.V("x"), n)))))
	}
	hyp := logic.Conj(
		perm(a),
		logic.LeF(logic.I(0), i), logic.LtF(i, n),
		logic.LeF(logic.I(0), min), logic.LtF(min, n),
		logic.ArrEqF(a1, logic.Upd(a, i, logic.Sel(a, min))),
		logic.ArrEqF(a2, logic.Upd(a1, min, logic.Sel(a, i))),
	)
	f := logic.Imp(hyp, perm(a2))
	if !s.Valid(f) {
		t.Error("swap should preserve the permutation fact")
	}
}
