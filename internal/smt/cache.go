package smt

import (
	"sync"

	"repro/internal/logic"
)

// validityCache is a sharded, bounded memo table for validity verdicts with
// singleflight deduplication: when several goroutines ask about the same
// formula concurrently, exactly one performs the decision procedure and the
// rest wait for its verdict. The sharding keeps lock contention low when a
// solver is hammered from many goroutines.
//
// Keys are interned formula handles (*logic.IFormula): pointer-unique per
// structure, so the map lookup is a single word comparison, and the shard is
// picked from the handle's precomputed structural hash — no per-lookup
// hashing or allocation (the historical implementation re-hashed a full
// String() rendering through fnv on every probe).
const cacheShards = 32

type validityCache struct {
	// maxPerShard bounds each shard's entry count (0 = unlimited). When a
	// shard is full, completed entries are evicted one at a time (bounded
	// eviction) instead of wiping the whole memo.
	maxPerShard int
	shards      [cacheShards]cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[*logic.IFormula]*cacheEntry
}

// cacheEntry is one in-flight or settled verdict. done is closed once val is
// set; waiters block on it (singleflight).
type cacheEntry struct {
	done chan struct{}
	val  bool
}

func (e *cacheEntry) settled() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// newValidityCache sizes the per-shard bound from the solver-level CacheSize
// option (total entries across shards ≈ size).
func newValidityCache(size int) *validityCache {
	c := &validityCache{}
	if size > 0 {
		c.maxPerShard = size / cacheShards
		if c.maxPerShard < 1 {
			c.maxPerShard = 1
		}
	}
	for i := range c.shards {
		c.shards[i].m = map[*logic.IFormula]*cacheEntry{}
	}
	return c
}

func (c *validityCache) shard(n *logic.IFormula) *cacheShard {
	return &c.shards[n.Hash()%cacheShards]
}

// lookupOrClaim returns (entry, true) when the formula is already present —
// settled or in flight — and the caller should wait on it; otherwise it
// installs a fresh in-flight entry owned by the caller and returns
// (entry, false). The owner must call settle (and optionally forget) on it.
func (c *validityCache) lookupOrClaim(n *logic.IFormula) (*cacheEntry, bool) {
	sh := c.shard(n)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[n]; ok {
		return e, true
	}
	if c.maxPerShard > 0 && len(sh.m) >= c.maxPerShard {
		// Bounded eviction: drop settled entries until there is room,
		// never touching in-flight entries other goroutines wait on.
		for k, e := range sh.m {
			if !e.settled() {
				continue
			}
			delete(sh.m, k)
			if len(sh.m) < c.maxPerShard {
				break
			}
		}
	}
	e := &cacheEntry{done: make(chan struct{})}
	sh.m[n] = e
	return e, false
}

// settle publishes the owner's verdict, releasing every waiter.
func (e *cacheEntry) settle(v bool) {
	e.val = v
	close(e.done)
}

// forget removes a settled entry the owner does not want memoized (an
// abandoned, conservative verdict). Waiters that already hold the entry
// still receive its value.
func (c *validityCache) forget(n *logic.IFormula, e *cacheEntry) {
	sh := c.shard(n)
	sh.mu.Lock()
	if sh.m[n] == e {
		delete(sh.m, n)
	}
	sh.mu.Unlock()
}

// size returns the total number of entries across shards (testing aid).
func (c *validityCache) size() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}
