package smt

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// genGroundFormula builds a random quantifier-free formula over integer
// variables {a,b,c} and array A, with literal constants in [-2,2].
func genGroundFormula(rng *rand.Rand, depth int) logic.Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		return genAtom(rng)
	}
	switch rng.Intn(3) {
	case 0:
		return logic.Conj(genGroundFormula(rng, depth-1), genGroundFormula(rng, depth-1))
	case 1:
		return logic.Disj(genGroundFormula(rng, depth-1), genGroundFormula(rng, depth-1))
	default:
		return logic.Neg(genGroundFormula(rng, depth-1))
	}
}

func genAtom(rng *rand.Rand) logic.Formula {
	ops := []logic.RelOp{logic.Eq, logic.Neq, logic.Lt, logic.Le, logic.Gt, logic.Ge}
	return logic.Rel(ops[rng.Intn(len(ops))], genTerm(rng, 2), genTerm(rng, 2))
}

func genTerm(rng *rand.Rand, depth int) logic.Term {
	vars := []string{"a", "b", "c"}
	if depth == 0 || rng.Intn(2) == 0 {
		if rng.Intn(2) == 0 {
			return logic.V(vars[rng.Intn(len(vars))])
		}
		return logic.I(int64(rng.Intn(5) - 2))
	}
	switch rng.Intn(3) {
	case 0:
		return logic.Plus(genTerm(rng, depth-1), genTerm(rng, depth-1))
	case 1:
		return logic.Minus(genTerm(rng, depth-1), genTerm(rng, depth-1))
	default:
		return logic.Sel(logic.AV("A"), genTerm(rng, depth-1))
	}
}

// enumerateEnvs yields every valuation of a,b,c over [-2,2] with array A
// assigned one of a few fixed shapes (the shapes cover constant, identity,
// and descending contents over the index window [-6,6]).
func enumerateEnvs(f func(*logic.Env) bool) bool {
	shapes := []func(i int64) int64{
		func(i int64) int64 { return 0 },
		func(i int64) int64 { return i },
		func(i int64) int64 { return -i },
		func(i int64) int64 { return 1 },
	}
	for _, shape := range shapes {
		for a := int64(-2); a <= 2; a++ {
			for b := int64(-2); b <= 2; b++ {
				for c := int64(-2); c <= 2; c++ {
					env := logic.NewEnv(-2, 2)
					env.Ints["a"], env.Ints["b"], env.Ints["c"] = a, b, c
					cells := map[int64]int64{}
					for i := int64(-6); i <= 6; i++ {
						cells[i] = shape(i)
					}
					env.Arrs["A"] = cells
					if f(env) {
						return true
					}
				}
			}
		}
	}
	return false
}

// TestDifferentialGroundSat cross-checks the SMT solver against concrete
// evaluation on random ground formulas: any formula with a model in the
// enumerated grid must be reported satisfiable, and any formula the solver
// reports valid must evaluate true on every grid point.
func TestDifferentialGroundSat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 400; round++ {
		f := genGroundFormula(rng, 3)
		s := NewSolver(Options{})
		sat := s.Satisfiable(f)
		valid := s.Valid(f)
		gridModel := enumerateEnvs(func(e *logic.Env) bool { return e.EvalFormula(f) })
		gridCounter := enumerateEnvs(func(e *logic.Env) bool { return !e.EvalFormula(f) })
		if gridModel && !sat {
			t.Fatalf("round %d: grid has a model but solver says unsat: %v", round, f)
		}
		if valid && gridCounter {
			t.Fatalf("round %d: solver says valid but grid has a counterexample: %v", round, f)
		}
		if !sat && valid {
			t.Fatalf("round %d: unsat and valid simultaneously: %v", round, f)
		}
	}
}

// genBoundedQuantFormula builds (∀k: 0 ≤ k ≤ 2 ⇒ body) ⇒ concl where the
// quantifier is syntactically bounded inside the evaluation window, so
// concrete evaluation is exact and can audit the solver's "valid" verdicts.
func genBoundedQuantFormula(rng *rand.Rand) logic.Formula {
	k := logic.V("k")
	body := logic.Rel(
		[]logic.RelOp{logic.Le, logic.Lt, logic.Ge, logic.Eq}[rng.Intn(4)],
		logic.Sel(logic.AV("A"), k),
		genTerm(rng, 1),
	)
	hyp := logic.All([]string{"k"}, logic.Imp(
		logic.Conj(logic.LeF(logic.I(0), k), logic.LeF(k, logic.I(2))), body))
	concl := genGroundFormula(rng, 2)
	return logic.Imp(hyp, concl)
}

// TestDifferentialQuantifiedValidity audits "valid" verdicts on quantified
// formulas: whenever the solver claims validity, every grid point must
// satisfy the formula (grid evaluation is exact here because the quantifier
// is explicitly bounded within the window).
func TestDifferentialQuantifiedValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	validCount := 0
	for round := 0; round < 300; round++ {
		f := genBoundedQuantFormula(rng)
		s := NewSolver(Options{})
		if !s.Valid(f) {
			continue
		}
		validCount++
		if enumerateEnvs(func(e *logic.Env) bool { return !e.EvalFormula(f) }) {
			t.Fatalf("round %d: claimed valid but grid refutes: %v", round, f)
		}
	}
	if validCount == 0 {
		t.Log("no valid formulas generated; soundness audit vacuous this seed")
	}
}
