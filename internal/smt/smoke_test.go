package smt

import (
	"testing"

	"repro/internal/logic"
)

func newTestSolver() *Solver { return NewSolver(Options{}) }

func TestValidGroundArithmetic(t *testing.T) {
	s := newTestSolver()
	x, y, z := logic.V("x"), logic.V("y"), logic.V("z")
	cases := []struct {
		name string
		f    logic.Formula
		want bool
	}{
		{"le-refl", logic.LeF(x, x), true},
		{"lt-irrefl", logic.LtF(x, x), false},
		{"transitivity", logic.Imp(logic.Conj(logic.LeF(x, y), logic.LeF(y, z)), logic.LeF(x, z)), true},
		{"no-transitivity-strict-from-nonstrict", logic.Imp(logic.LeF(x, y), logic.LtF(x, z)), false},
		{"int-tightness", logic.Imp(logic.Conj(logic.LtF(x, y), logic.LtF(y, logic.Plus(x, logic.I(2)))), logic.EqF(y, logic.Plus(x, logic.I(1)))), true},
		{"eq-sym", logic.Imp(logic.EqF(x, y), logic.EqF(y, x)), true},
		{"neq-excluded", logic.Disj(logic.EqF(x, y), logic.NeqF(x, y)), true},
		{"const-fold", logic.LtF(logic.I(3), logic.I(5)), true},
		{"contradiction", logic.Conj(logic.LtF(x, y), logic.LtF(y, x)), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := s.Valid(tc.f); got != tc.want {
				t.Errorf("Valid(%s) = %v, want %v", tc.f, got, tc.want)
			}
		})
	}
}

func TestValidArrays(t *testing.T) {
	s := newTestSolver()
	a := logic.AV("A")
	i, j, v := logic.V("i"), logic.V("j"), logic.V("v")
	// Read over write, hit: upd(A,i,v)[i] = v.
	if !s.Valid(logic.EqF(logic.Sel(logic.Upd(a, i, v), i), v)) {
		t.Error("read-over-write hit should be valid")
	}
	// Read over write, miss: i≠j ⇒ upd(A,i,v)[j] = A[j].
	miss := logic.Imp(logic.NeqF(i, j), logic.EqF(logic.Sel(logic.Upd(a, i, v), j), logic.Sel(a, j)))
	if !s.Valid(miss) {
		t.Error("read-over-write miss should be valid")
	}
	// Unconditional miss is not valid.
	if s.Valid(logic.EqF(logic.Sel(logic.Upd(a, i, v), j), logic.Sel(a, j))) {
		t.Error("unconditional read-over-write miss should not be valid")
	}
	// Functional consistency: i=j ⇒ A[i]=A[j].
	if !s.Valid(logic.Imp(logic.EqF(i, j), logic.EqF(logic.Sel(a, i), logic.Sel(a, j)))) {
		t.Error("array congruence should be valid")
	}
}

func TestValidQuantified(t *testing.T) {
	s := newTestSolver()
	a := logic.AV("A")
	i, n := logic.V("i"), logic.V("n")
	y := "y"
	zeroed := func(arr logic.Arr, lo, hi logic.Term) logic.Formula {
		return logic.All([]string{y}, logic.Imp(
			logic.Conj(logic.LeF(lo, logic.V(y)), logic.LtF(logic.V(y), hi)),
			logic.EqF(logic.Sel(arr, logic.V(y)), logic.I(0))))
	}
	// Entry VC of ArrayInit with the known invariant 0 ≤ y < i:
	// i = 0 ⇒ ∀y: 0 ≤ y < i ⇒ A[y] = 0  (vacuous).
	entry := logic.Imp(logic.EqF(i, logic.I(0)), zeroed(a, logic.I(0), i))
	if !s.Valid(entry) {
		t.Error("vacuous quantified entry VC should be valid")
	}
	// Exit VC: i ≥ n ∧ inv ⇒ post.
	exit := logic.Imp(logic.Conj(logic.GeF(i, n), zeroed(a, logic.I(0), i)), zeroed(a, logic.I(0), n))
	if !s.Valid(exit) {
		t.Error("exit VC should be valid")
	}
	// Inductive VC: i < n ∧ inv ∧ A' = upd(A,i,0) ⇒ inv[i+1/i, A'/A].
	a2 := logic.AV("A2")
	ind := logic.Imp(
		logic.Conj(logic.LtF(i, n), zeroed(a, logic.I(0), i), logic.ArrEqF(a2, logic.Upd(a, i, logic.I(0)))),
		zeroed(a2, logic.I(0), logic.Plus(i, logic.I(1))))
	if !s.Valid(ind) {
		t.Error("inductive VC should be valid")
	}
	// A wrong inductive VC (invariant not re-established at i itself).
	bad := logic.Imp(
		logic.Conj(logic.LtF(i, n), zeroed(a, logic.I(0), i)),
		zeroed(a, logic.I(0), logic.Plus(i, logic.I(1))))
	if s.Valid(bad) {
		t.Error("unsound inductive VC should not be valid")
	}
}

func TestValidForallExists(t *testing.T) {
	s := newTestSolver()
	a, b := logic.AV("A"), logic.AV("B")
	n := logic.V("n")
	// (∀y∃x: 0≤y<n ⇒ A[y]=B[x]) holds trivially if ∀y: A[y]=B[y].
	pre := logic.All([]string{"y"}, logic.EqF(logic.Sel(a, logic.V("y")), logic.Sel(b, logic.V("y"))))
	post := logic.All([]string{"y"}, logic.Any([]string{"x"}, logic.Imp(
		logic.Conj(logic.LeF(logic.I(0), logic.V("y")), logic.LtF(logic.V("y"), n)),
		logic.EqF(logic.Sel(a, logic.V("y")), logic.Sel(b, logic.V("x"))))))
	if !s.Valid(logic.Imp(pre, post)) {
		t.Error("∀∃ consequence should be valid")
	}
	if s.Valid(post) {
		t.Error("∀∃ claim without premise should not be valid")
	}
}
