package smt

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
)

func mustF(src string) logic.Formula { return lang.MustParseFormula(src) }

func TestValidityTable(t *testing.T) {
	s := NewSolver(Options{})
	cases := []struct {
		src  string
		want bool
	}{
		// Linear integer arithmetic.
		{"x + 1 > x", true},
		{"x - 1 < x", true},
		{"x + y = y + x", true},
		{"2 * x = x + x", true},
		{"x < y => x + 1 <= y", true}, // integer tightness
		{"x < y => x + 2 <= y", false},
		{"x <= y && y <= x => x = y", true},
		{"x != y => (x < y || x > y)", true},
		{"x < 3 && x > 1 => x = 2", true},
		// Arrays.
		{"A[i] = A[i]", true},
		{"i = j => A[i] = A[j]", true},
		{"A[i] = A[j]", false},
		{"A[i] != A[j] => i != j", true},
		// Quantifiers.
		{"(forall k. A[k] >= 0) => A[5] >= 0", true},
		{"(forall k. A[k] >= 0) => A[x] + A[y] >= 0", true},
		{"A[5] >= 0 => (forall k. A[k] >= 0)", false},
		{"(forall k. k >= lo && k <= hi => A[k] = 7) => (lo <= x && x <= hi => A[x] = 7)", true},
		{"(exists k. A[k] = 0) => (exists k. A[k] <= 0)", true},
		// Mixed.
		{"(forall k. (0 <= k && k < n) => A[k] < A[k + 1]) => ((0 <= i && i + 1 < n) => A[i] < A[i + 1])", true},
	}
	for _, tc := range cases {
		t.Run(tc.src, func(t *testing.T) {
			if got := s.Valid(mustF(tc.src)); got != tc.want {
				t.Errorf("Valid(%s) = %v, want %v", tc.src, got, tc.want)
			}
		})
	}
}

func TestStoreChains(t *testing.T) {
	s := NewSolver(Options{})
	a := logic.AV("A")
	i, j, k := logic.V("i"), logic.V("j"), logic.V("k")
	// Two-deep store chain: upd(upd(A,i,1),j,2)[k] reads correctly.
	chain := logic.Upd(logic.Upd(a, i, logic.I(1)), j, logic.I(2))
	if !s.Valid(logic.EqF(logic.Sel(chain, j), logic.I(2))) {
		t.Error("outer store read")
	}
	if !s.Valid(logic.Imp(logic.Conj(logic.NeqF(k, j), logic.EqF(k, i)),
		logic.EqF(logic.Sel(chain, k), logic.I(1)))) {
		t.Error("inner store read under disequality")
	}
	if !s.Valid(logic.Imp(logic.Conj(logic.NeqF(k, j), logic.NeqF(k, i)),
		logic.EqF(logic.Sel(chain, k), logic.Sel(a, k)))) {
		t.Error("miss-all read")
	}
	// Same-index overwrite: the inner store is shadowed.
	if !s.Valid(logic.EqF(logic.Sel(logic.Upd(logic.Upd(a, i, logic.I(1)), i, logic.I(2)), i), logic.I(2))) {
		t.Error("shadowed store")
	}
}

func TestSwapIsPermutation(t *testing.T) {
	// The core reasoning pattern behind the ∀∃ benchmarks: a swap
	// preserves the multiset, expressed via explicit witnesses.
	s := NewSolver(Options{})
	a := logic.AV("A")
	i, j, k := logic.V("i"), logic.V("j"), logic.V("k")
	t1 := logic.Sel(a, i)
	swapped := logic.Upd(logic.Upd(a, i, logic.Sel(a, j)), j, t1)
	// The value at any untouched position survives in place.
	f := logic.Imp(logic.Conj(logic.NeqF(k, i), logic.NeqF(k, j)),
		logic.EqF(logic.Sel(swapped, k), logic.Sel(a, k)))
	if !s.Valid(f) {
		t.Error("untouched positions")
	}
	// The value from i is at j and vice versa.
	if !s.Valid(logic.EqF(logic.Sel(swapped, j), logic.Sel(a, i))) {
		t.Error("i's value lands at j")
	}
	g := logic.Imp(logic.NeqF(i, j), logic.EqF(logic.Sel(swapped, i), logic.Sel(a, j)))
	if !s.Valid(g) {
		t.Error("j's value lands at i")
	}
}

func TestUninterpretedFunctions(t *testing.T) {
	s := NewSolver(Options{})
	x, y := logic.V("x"), logic.V("y")
	// Congruence: x = y ⇒ f(x) = f(y).
	if !s.Valid(logic.Imp(logic.EqF(x, y), logic.EqF(logic.App("f", x), logic.App("f", y)))) {
		t.Error("congruence")
	}
	// No inverse assumption: f(x) = f(y) does not give x = y.
	if s.Valid(logic.Imp(logic.EqF(logic.App("f", x), logic.App("f", y)), logic.EqF(x, y))) {
		t.Error("injectivity wrongly assumed")
	}
	// Binary congruence.
	if !s.Valid(logic.Imp(logic.Conj(logic.EqF(x, y), logic.EqF(logic.V("u"), logic.V("v"))),
		logic.EqF(logic.App("g", x, logic.V("u")), logic.App("g", y, logic.V("v"))))) {
		t.Error("binary congruence")
	}
}

func TestCacheBehaviour(t *testing.T) {
	s := NewSolver(Options{})
	f := mustF("x + 1 > x")
	if !s.Valid(f) || !s.Valid(f) {
		t.Fatal("validity")
	}
	if s.NumQueries() != 1 || s.NumCacheHits() != 1 {
		t.Errorf("queries=%d hits=%d, want 1/1", s.NumQueries(), s.NumCacheHits())
	}
	// Cache eviction under CacheSize.
	s2 := NewSolver(Options{CacheSize: 1})
	s2.Valid(mustF("a < a + 1"))
	s2.Valid(mustF("b < b + 1"))
	s2.Valid(mustF("a < a + 1"))
	if s2.NumQueries() < 2 {
		t.Errorf("bounded cache should have evicted: queries=%d", s2.NumQueries())
	}
	// Eviction is bounded, not a full wipe: with a larger cap, filling past
	// the bound must not discard every earlier verdict at once.
	s3 := NewSolver(Options{CacheSize: cacheShards * 2})
	for _, v := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		s3.Valid(mustF(v + " < " + v + " + 1"))
	}
	if got := s3.cache.size(); got == 0 {
		t.Error("bounded eviction wiped the whole cache")
	}
}

func TestSatisfiableGroundExactness(t *testing.T) {
	s := NewSolver(Options{})
	if !s.Satisfiable(mustF("x < y && y < z")) {
		t.Error("chain should be satisfiable")
	}
	if s.Satisfiable(mustF("x < y && y < x")) {
		t.Error("cycle should be unsat")
	}
	if s.Satisfiable(logic.False) {
		t.Error("false")
	}
	if !s.Satisfiable(logic.True) {
		t.Error("true")
	}
}

func TestTriggersWithOffsets(t *testing.T) {
	// Adjacent-sortedness facts need the k+1 trigger pattern: candidates
	// t−1 for ground indices t.
	s := NewSolver(Options{})
	f := mustF(`(forall k. (0 <= k && k < n - 1) => A[k] <= A[k + 1]) =>
		((0 <= i && i < n - 2) => A[i] <= A[i + 2])`)
	if !s.Valid(f) {
		t.Error("two-step adjacent chain should be derivable via offset triggers")
	}
}

func TestSkolemWitnessFlow(t *testing.T) {
	// ∀∃ fact used to prove another ∀∃ fact after an index shift — the
	// skolem witness of the hypothesis must reach the conclusion's
	// instantiation set (requires 2 rounds).
	s := NewSolver(Options{})
	f := mustF(`(forall y. (0 <= y && y < n) => (exists x. B[y] = A[x] && 0 <= x && x < n)) =>
		(forall y. (0 <= y && y < n) => (exists x. B[y] = A[x] && 0 <= x && x <= n))`)
	if !s.Valid(f) {
		t.Error("weakened witness bound should follow")
	}
}

func TestOptionDefaults(t *testing.T) {
	o := Options{}.Normalize()
	if o.InstRounds != 3 || o.MaxInstances != 4096 || o.MaxAckermannPairs != 20000 || o.MaxTheoryIterations != 100000 {
		t.Errorf("defaults = %+v", o)
	}
	// Explicit values survive.
	o = Options{InstRounds: 5}.Normalize()
	if o.InstRounds != 5 {
		t.Error("explicit option overridden")
	}
}

func TestArrFamily(t *testing.T) {
	cases := map[string]string{"A": "A", "A#1": "A", "A#12": "A", "B#2": "B", "lon#g#er": "lon"}
	for in, want := range cases {
		if got := arrFamily(in); got != want {
			t.Errorf("arrFamily(%q) = %q, want %q", in, got, want)
		}
	}
}
