// Package interp executes programs of the mini-language concretely. It
// serves three roles in the test suite: validating that the benchmark
// programs actually compute what they claim (the sorts sort), checking
// discovered invariants against concrete cut-point states, and providing
// ground truth for assertion behaviour under candidate preconditions.
package interp

import (
	"fmt"
	"math/rand"

	"repro/internal/lang"
	"repro/internal/logic"
)

// Result reports one concrete run.
type Result struct {
	// Env is the final state.
	Env *logic.Env
	// AssertFailed is non-nil if an assert evaluated false, naming it.
	AssertFailed logic.Formula
	// AssumeFailed reports that an assume evaluated false (the run is
	// silently discarded semantics-wise; callers usually retry).
	AssumeFailed bool
	// Steps counts executed statements (loop bound protection).
	Steps int
	// CutStates records the machine state at every cut-point visit,
	// keyed by loop label, for invariant auditing.
	CutStates map[string][]*logic.Env
}

// Options configures a run.
type Options struct {
	// MaxSteps bounds execution (default 100000).
	MaxSteps int
	// Rand drives non-deterministic choices and havoc (default: seed 1).
	Rand *rand.Rand
	// HavocRange bounds havoc'd values to [-HavocRange, HavocRange]
	// (default 8).
	HavocRange int64
	// RecordCuts enables CutStates collection.
	RecordCuts bool
}

func (o Options) normalize() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 100000
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(1))
	}
	if o.HavocRange == 0 {
		o.HavocRange = 8
	}
	return o
}

// Run executes the program from the given initial environment (which is
// mutated). Execution stops at the first failed assert; failed assumes end
// the run silently (AssumeFailed set).
func Run(p *lang.Program, env *logic.Env, opts Options) (*Result, error) {
	opts = opts.normalize()
	res := &Result{Env: env, CutStates: map[string][]*logic.Env{}}
	err := runStmts(p.Body, env, opts, res)
	return res, err
}

type stopError struct{ reason string }

func (e stopError) Error() string { return e.reason }

func runStmts(stmts []lang.Stmt, env *logic.Env, opts Options, res *Result) error {
	for _, s := range stmts {
		res.Steps++
		if res.Steps > opts.MaxSteps {
			return fmt.Errorf("interp: step bound %d exceeded (non-terminating?)", opts.MaxSteps)
		}
		switch s := s.(type) {
		case lang.Assign:
			env.Ints[s.X] = env.EvalTerm(s.E)
		case lang.ArrAssign:
			idx, val := env.EvalTerm(s.Idx), env.EvalTerm(s.E)
			m := env.Arrs[s.A]
			if m == nil {
				m = map[int64]int64{}
				env.Arrs[s.A] = m
			}
			m[idx] = val
		case lang.Havoc:
			env.Ints[s.X] = opts.Rand.Int63n(2*opts.HavocRange+1) - opts.HavocRange
		case lang.Assume:
			if !env.EvalFormula(s.F) {
				res.AssumeFailed = true
				return stopError{reason: "assume"}
			}
		case lang.Assert:
			if !env.EvalFormula(s.F) {
				res.AssertFailed = s.F
				return stopError{reason: "assert"}
			}
		case lang.If:
			take := opts.Rand.Intn(2) == 0
			if s.Cond != nil {
				take = env.EvalFormula(s.Cond)
			}
			var err error
			if take {
				err = runStmts(s.Then, env, opts, res)
			} else {
				err = runStmts(s.Else, env, opts, res)
			}
			if err != nil {
				return err
			}
		case lang.While:
			for {
				if opts.RecordCuts {
					res.CutStates[s.Label] = append(res.CutStates[s.Label], env.Clone())
				}
				cont := opts.Rand.Intn(2) == 0
				if s.Cond != nil {
					cont = env.EvalFormula(s.Cond)
				}
				if !cont {
					break
				}
				if err := runStmts(s.Body, env, opts, res); err != nil {
					return err
				}
				res.Steps++
				if res.Steps > opts.MaxSteps {
					return fmt.Errorf("interp: step bound %d exceeded in loop %s", opts.MaxSteps, s.Label)
				}
			}
		default:
			return fmt.Errorf("interp: unknown statement %T", s)
		}
	}
	return nil
}

// RunClean is Run but converts the internal early-stop sentinel into a nil
// error: assert/assume outcomes are reported via the Result.
func RunClean(p *lang.Program, env *logic.Env, opts Options) (*Result, error) {
	res, err := Run(p, env, opts)
	if _, stopped := err.(stopError); stopped {
		err = nil
	}
	return res, err
}

// CheckInvariant evaluates an instantiated invariant formula at every
// recorded visit of the given cut-point, returning the first violating
// state (nil if none).
func CheckInvariant(res *Result, cut string, inv logic.Formula) *logic.Env {
	for _, st := range res.CutStates[cut] {
		if !st.EvalFormula(inv) {
			return st
		}
	}
	return nil
}
