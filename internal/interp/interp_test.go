package interp

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
)

func runOn(t *testing.T, p *lang.Program, env *logic.Env, opts Options) *Result {
	t.Helper()
	res, err := RunClean(p, env, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestArithmeticAndControl(t *testing.T) {
	p := lang.MustParse(`
		program Sum(n) {
			s := 0;
			i := 1;
			while loop (i <= n) {
				s := s + i;
				i := i + 1;
			}
			assert(2 * s = n + n);
		}`)
	// The assert is wrong in general (it says 2s = 2n); with n = 1 the sum
	// is 1 and 2·1 = 1+1 holds; with n = 3 the sum is 6 and 12 ≠ 6.
	env := logic.NewEnv(-10, 10)
	env.Ints["n"] = 1
	res := runOn(t, p, env, Options{})
	if res.AssertFailed != nil {
		t.Errorf("n=1 should pass: %v", res.AssertFailed)
	}
	env2 := logic.NewEnv(-10, 10)
	env2.Ints["n"] = 3
	res2 := runOn(t, p, env2, Options{})
	if res2.AssertFailed == nil {
		t.Error("n=3 should fail the bogus assert")
	}
}

func TestAssumeStopsRun(t *testing.T) {
	p := lang.MustParse(`
		program P(x) {
			assume(x > 0);
			assert(false);
		}`)
	env := logic.NewEnv(-2, 2)
	env.Ints["x"] = -1
	res := runOn(t, p, env, Options{})
	if !res.AssumeFailed || res.AssertFailed != nil {
		t.Errorf("failed assume must end the run before the assert: %+v", res)
	}
}

func TestStepBound(t *testing.T) {
	p := lang.MustParse(`
		program Loop(n) {
			while w (0 < 1) {
				n := n + 1;
			}
		}`)
	if _, err := Run(p, logic.NewEnv(0, 0), Options{MaxSteps: 100}); err == nil {
		t.Error("infinite loop must hit the step bound")
	}
}

// sortPrograms are the benchmark sort routines and how to read their output.
var sortPrograms = []struct {
	name string
	src  string
}{
	{"insertion", `
		program InsertionSort(array A, n) {
			i := 1;
			while outer (i < n) {
				j := i - 1;
				val := A[i];
				while inner (j >= 0 && A[j] > val) {
					A[j + 1] := A[j];
					j := j - 1;
				}
				A[j + 1] := val;
				i := i + 1;
			}
		}`},
	{"selection", `
		program SelectionSort(array A, n) {
			i := 0;
			while outer (i < n - 1) {
				min := i;
				j := i + 1;
				while inner (j < n) {
					if (A[j] < A[min]) {
						min := j;
					}
					j := j + 1;
				}
				t := A[i];
				A[i] := A[min];
				A[min] := t;
				i := i + 1;
			}
		}`},
	{"bubble", `
		program BubbleSort(array A, n) {
			i := n;
			while outer (i > 1) {
				j := 0;
				while inner (j < i - 1) {
					if (A[j] > A[j + 1]) {
						t := A[j];
						A[j] := A[j + 1];
						A[j + 1] := t;
					}
					j := j + 1;
				}
				i := i - 1;
			}
		}`},
	{"bubbleFlag", `
		program BubbleSortFlag(array A, n) {
			swapped := 1;
			while outer (swapped = 1) {
				swapped := 0;
				j := 0;
				while inner (j < n - 1) {
					if (A[j] > A[j + 1]) {
						t := A[j];
						A[j] := A[j + 1];
						A[j + 1] := t;
						swapped := 1;
					}
					j := j + 1;
				}
			}
		}`},
}

// TestSortProgramsSort runs each benchmark sort on random arrays and checks
// the output is a sorted permutation of the input.
func TestSortProgramsSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, sp := range sortPrograms {
		prog := lang.MustParse(sp.src)
		for trial := 0; trial < 25; trial++ {
			n := int64(rng.Intn(8))
			in := make([]int64, n)
			for i := range in {
				in[i] = int64(rng.Intn(21) - 10)
			}
			env := logic.NewEnv(-1, n)
			env.Ints["n"] = n
			env.SetArr("A", in)
			res := runOn(t, prog, env, Options{})
			if res.AssertFailed != nil {
				t.Fatalf("%s: unexpected assert failure", sp.name)
			}
			out := env.ArrSlice("A", n)
			if !isSorted(out) {
				t.Fatalf("%s: output not sorted: %v -> %v", sp.name, in, out)
			}
			if !sameMultiset(in, out) {
				t.Fatalf("%s: output not a permutation: %v -> %v", sp.name, in, out)
			}
		}
	}
}

func isSorted(xs []int64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}

func sameMultiset(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int64(nil), a...)
	bs := append([]int64(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func TestCutStateRecording(t *testing.T) {
	p := lang.MustParse(`
		program Count(n) {
			i := 0;
			while loop (i < n) {
				i := i + 1;
			}
		}`)
	env := logic.NewEnv(0, 5)
	env.Ints["n"] = 3
	res := runOn(t, p, env, Options{RecordCuts: true})
	// Header visited 4 times: i = 0,1,2,3.
	if got := len(res.CutStates["loop"]); got != 4 {
		t.Fatalf("cut visits = %d, want 4", got)
	}
	inv := lang.MustParseFormula("0 <= i && i <= n")
	if bad := CheckInvariant(res, "loop", inv); bad != nil {
		t.Errorf("invariant 0<=i<=n violated at %v", bad.Ints)
	}
	badInv := lang.MustParseFormula("i < n")
	if CheckInvariant(res, "loop", badInv) == nil {
		t.Error("i<n must be violated at the last visit")
	}
}

func TestHavocRespectsRange(t *testing.T) {
	p := lang.MustParse(`
		program H(x) {
			x := *;
			assert(x <= 4 && x >= -4);
		}`)
	for seed := int64(0); seed < 20; seed++ {
		env := logic.NewEnv(0, 0)
		res := runOn(t, p, env, Options{Rand: rand.New(rand.NewSource(seed)), HavocRange: 4})
		if res.AssertFailed != nil {
			t.Fatalf("havoc out of range: x=%d", env.Ints["x"])
		}
	}
}
