// Package ssa converts straight-line program paths to static single
// assignment form. The paper's verification-condition generation (§2.3)
// requires paths in SSA form so that the weakest precondition of an
// assignment can be the implication (x = e) ⇒ φ rather than a substitution —
// essential because φ may still contain template unknowns that cannot be
// substituted into.
package ssa

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/logic"
)

// Stmt is a statement of a straight-line SSA path.
type Stmt interface{ isStmt() }

// Assign binds the fresh scalar X to E.
type Assign struct {
	X string
	E logic.Term
}

// ArrAssign binds the fresh array A to upd(Prev, Idx, E).
type ArrAssign struct {
	A      string
	Prev   string
	Idx, E logic.Term
}

// Assume constrains the path.
type Assume struct{ F logic.Formula }

// Assert is an obligation on the path.
type Assert struct{ F logic.Formula }

func (Assign) isStmt()    {}
func (ArrAssign) isStmt() {}
func (Assume) isStmt()    {}
func (Assert) isStmt()    {}

func (s Assign) String() string { return fmt.Sprintf("%s := %s", s.X, s.E) }
func (s ArrAssign) String() string {
	return fmt.Sprintf("%s := upd(%s, %s, %s)", s.A, s.Prev, s.Idx, s.E)
}
func (s Assume) String() string { return fmt.Sprintf("assume(%s)", s.F) }
func (s Assert) String() string { return fmt.Sprintf("assert(%s)", s.F) }

// Renaming is the paper's σt: a map from original variable names to their
// live SSA versions at the end of a path. Identity entries are omitted.
type Renaming struct {
	Int map[string]string
	Arr map[string]string
}

// NewRenaming returns an empty (identity) renaming.
func NewRenaming() Renaming {
	return Renaming{Int: map[string]string{}, Arr: map[string]string{}}
}

// IsIdentity reports whether the renaming maps every variable to itself.
func (r Renaming) IsIdentity() bool { return len(r.Int) == 0 && len(r.Arr) == 0 }

// Inverse returns σt⁻¹.
func (r Renaming) Inverse() Renaming {
	inv := NewRenaming()
	for k, v := range r.Int {
		inv.Int[v] = k
	}
	for k, v := range r.Arr {
		inv.Arr[v] = k
	}
	return inv
}

// Maps returns the renaming as substitution maps for logic.Substitute.
func (r Renaming) Maps() (map[string]logic.Term, map[string]logic.Arr) {
	sub := make(map[string]logic.Term, len(r.Int))
	for k, v := range r.Int {
		sub[k] = logic.V(v)
	}
	asub := make(map[string]logic.Arr, len(r.Arr))
	for k, v := range r.Arr {
		asub[k] = logic.AV(v)
	}
	return sub, asub
}

// Apply renames the free variables of f per the renaming.
func (r Renaming) Apply(f logic.Formula) logic.Formula {
	if r.IsIdentity() {
		return f
	}
	sub, asub := r.Maps()
	return logic.Substitute(f, sub, asub)
}

// ApplyTerm renames the variables of t per the renaming.
func (r Renaming) ApplyTerm(t logic.Term) logic.Term {
	if r.IsIdentity() {
		return t
	}
	sub, asub := r.Maps()
	return logic.SubstituteTerm(t, sub, asub)
}

// Converter renames a sequence of simple statements into SSA form.
type Converter struct {
	versions map[string]int
	cur      Renaming
	stmts    []Stmt
}

// NewConverter returns a converter whose initial state maps every variable
// to itself (the paper's convention: variables live at the start of a path
// are the original program variables).
func NewConverter() *Converter {
	return &Converter{versions: map[string]int{}, cur: NewRenaming()}
}

func (c *Converter) fresh(name string) string {
	c.versions[name]++
	return fmt.Sprintf("%s#%d", name, c.versions[name])
}

func (c *Converter) renameTerm(t logic.Term) logic.Term { return c.cur.ApplyTerm(t) }

func (c *Converter) renameFormula(f logic.Formula) logic.Formula { return c.cur.Apply(f) }

// Simple appends one simple (non-control) statement, renaming its reads to
// current versions and giving its write a fresh version.
func (c *Converter) Simple(s lang.Stmt) {
	switch s := s.(type) {
	case lang.Assign:
		e := c.renameTerm(s.E)
		x := c.fresh(s.X)
		c.stmts = append(c.stmts, Assign{X: x, E: e})
		c.cur.Int[s.X] = x
	case lang.ArrAssign:
		idx := c.renameTerm(s.Idx)
		e := c.renameTerm(s.E)
		prev := s.A
		if v, ok := c.cur.Arr[s.A]; ok {
			prev = v
		}
		a := c.fresh(s.A)
		c.stmts = append(c.stmts, ArrAssign{A: a, Prev: prev, Idx: idx, E: e})
		c.cur.Arr[s.A] = a
	case lang.Havoc:
		// A fresh, unconstrained version models the arbitrary value.
		c.cur.Int[s.X] = c.fresh(s.X)
	case lang.Assume:
		c.stmts = append(c.stmts, Assume{F: c.renameFormula(s.F)})
	case lang.Assert:
		c.stmts = append(c.stmts, Assert{F: c.renameFormula(s.F)})
	default:
		panic(fmt.Sprintf("ssa: non-simple statement %T on path", s))
	}
}

// Result returns the SSA statements and the final renaming σt.
func (c *Converter) Result() ([]Stmt, Renaming) { return c.stmts, c.cur }
