package ssa

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
)

func TestScalarAssignments(t *testing.T) {
	c := NewConverter()
	// x := x + 1; y := x
	c.Simple(lang.Assign{X: "x", E: logic.Plus(logic.V("x"), logic.I(1))})
	c.Simple(lang.Assign{X: "y", E: logic.V("x")})
	stmts, sigma := c.Result()
	if len(stmts) != 2 {
		t.Fatalf("got %d stmts", len(stmts))
	}
	a0 := stmts[0].(Assign)
	if a0.X != "x#1" || a0.E.String() != "(x + 1)" {
		t.Errorf("first assign: %v", a0)
	}
	a1 := stmts[1].(Assign)
	if a1.E.String() != "x#1" {
		t.Errorf("second assign must read the new version: %v", a1)
	}
	if sigma.Int["x"] != "x#1" || sigma.Int["y"] != "y#1" {
		t.Errorf("sigma = %v", sigma.Int)
	}
}

func TestArrayAssignments(t *testing.T) {
	c := NewConverter()
	c.Simple(lang.ArrAssign{A: "A", Idx: logic.V("i"), E: logic.I(0)})
	c.Simple(lang.ArrAssign{A: "A", Idx: logic.V("j"), E: logic.Sel(logic.AV("A"), logic.V("i"))})
	stmts, sigma := c.Result()
	s0 := stmts[0].(ArrAssign)
	if s0.A != "A#1" || s0.Prev != "A" {
		t.Errorf("first store: %+v", s0)
	}
	s1 := stmts[1].(ArrAssign)
	if s1.A != "A#2" || s1.Prev != "A#1" {
		t.Errorf("second store: %+v", s1)
	}
	if s1.E.String() != "A#1[i]" {
		t.Errorf("read in second store must use the new version: %v", s1.E)
	}
	if sigma.Arr["A"] != "A#2" {
		t.Errorf("sigma arr = %v", sigma.Arr)
	}
}

func TestHavoc(t *testing.T) {
	c := NewConverter()
	c.Simple(lang.Havoc{X: "mid"})
	c.Simple(lang.Assume{F: logic.LeF(logic.V("low"), logic.V("mid"))})
	stmts, sigma := c.Result()
	if len(stmts) != 1 {
		t.Fatalf("havoc should emit no statement, got %d", len(stmts))
	}
	as := stmts[0].(Assume)
	if as.F.String() != "low <= mid#1" {
		t.Errorf("assume should read the fresh havoc version: %v", as.F)
	}
	if sigma.Int["mid"] != "mid#1" {
		t.Errorf("sigma = %v", sigma.Int)
	}
}

func TestAssertRenaming(t *testing.T) {
	c := NewConverter()
	c.Simple(lang.Assign{X: "i", E: logic.I(0)})
	c.Simple(lang.Assert{F: logic.EqF(logic.V("i"), logic.I(0))})
	stmts, _ := c.Result()
	a := stmts[1].(Assert)
	if a.F.String() != "i#1 = 0" {
		t.Errorf("assert should be renamed: %v", a.F)
	}
}

func TestRenamingInverse(t *testing.T) {
	r := NewRenaming()
	r.Int["x"] = "x#3"
	r.Arr["A"] = "A#1"
	inv := r.Inverse()
	if inv.Int["x#3"] != "x" || inv.Arr["A#1"] != "A" {
		t.Errorf("inverse = %v %v", inv.Int, inv.Arr)
	}
	// Applying r then inv is identity on formulas over the renamed vars.
	f := logic.LtF(logic.V("x"), logic.Sel(logic.AV("A"), logic.V("x")))
	round := inv.Apply(r.Apply(f))
	if !logic.FormulaEq(round, f) {
		t.Errorf("round trip: %v", round)
	}
}

func TestIdentityRenaming(t *testing.T) {
	r := NewRenaming()
	if !r.IsIdentity() {
		t.Error("fresh renaming should be identity")
	}
	f := logic.LtF(logic.V("x"), logic.I(0))
	if got := r.Apply(f); !logic.FormulaEq(got, f) {
		t.Errorf("identity apply changed formula: %v", got)
	}
}
