package optimal

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/smt"
	"repro/internal/template"
)

// randAtom draws a difference-fragment atom (x − y ▷◁ k or x ▷◁ k), the
// fragment every benchmark vocabulary lives in.
func randAtom(rng *rand.Rand) logic.Formula {
	vars := []string{"x", "y", "z"}
	ops := []logic.RelOp{logic.Eq, logic.Lt, logic.Le, logic.Gt, logic.Ge}
	lhs := logic.Term(logic.V(vars[rng.Intn(len(vars))]))
	rhs := logic.Term(logic.I(int64(rng.Intn(5) - 2)))
	if rng.Intn(2) == 0 {
		rhs = logic.Plus(logic.V(vars[rng.Intn(len(vars))]), rhs)
	}
	return logic.Rel(ops[rng.Intn(len(ops))], lhs, rhs)
}

// TestMapVsBFSRandomLattice cross-checks the map-solver-guided enumeration
// against the legacy BFS on hundreds of randomized small lattices: random
// targets, random vocabularies, one or two negative unknowns sharing a
// group. Both engines are fresh per trial (no shared cores or memos), and
// the optimal solution sets must be equal as sets.
func TestMapVsBFSRandomLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		// One or two unknowns in the antecedent keep them in one
		// unknown-connected group, the shape negSearch enumerates.
		nUnknowns := 1 + rng.Intn(2)
		q := template.Domain{}
		ante := []logic.Formula{}
		for u := 0; u < nUnknowns; u++ {
			name := fmt.Sprintf("u%d", u)
			n := 2 + rng.Intn(4)
			preds := make([]logic.Formula, n)
			for i := range preds {
				preds[i] = randAtom(rng)
			}
			q[name] = preds
			ante = append(ante, logic.Unknown{Name: name})
		}
		if rng.Intn(2) == 0 {
			ante = append(ante, randAtom(rng))
		}
		phi := logic.Imp(logic.Conj(ante...), randAtom(rng))

		mapEng := New(smt.NewSolver(smt.Options{}))
		bfsEng := New(smt.NewSolver(smt.Options{}))
		bfsEng.Opts.NoMapSolver = true
		mapSols := mapEng.OptimalNegativeSolutions(phi, q)
		bfsSols := bfsEng.OptimalNegativeSolutions(phi, q)
		mk, bk := solutionKeys(mapSols), solutionKeys(bfsSols)
		if len(mk) != len(bk) {
			t.Fatalf("trial %d: map found %d solutions, bfs %d, on %v over %v\nmap: %v\nbfs: %v",
				trial, len(mk), len(bk), phi, q, mk, bk)
		}
		for k := range mk {
			if !bk[k] {
				t.Fatalf("trial %d: map-only solution %s on %v over %v", trial, k, phi, q)
			}
		}
	}
}

// TestMapVsBFSSharedEngine repeats the cross-check through the CrossCheck
// hook on a single engine, so both enumerations run against the same core
// store, consistency memo, and incremental contexts — the configuration the
// production search actually uses.
func TestMapVsBFSSharedEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	eng := New(smt.NewSolver(smt.Options{}))
	checked := 0
	eng.Opts.CrossCheck = func(phi logic.Formula, mapSols, bfsSols []template.Solution) {
		checked++
		mk, bk := solutionKeys(mapSols), solutionKeys(bfsSols)
		if len(mk) != len(bk) {
			t.Errorf("map found %d solutions, bfs %d, on %v", len(mk), len(bk), phi)
			return
		}
		for k := range mk {
			if !bk[k] {
				t.Errorf("map-only solution %s on %v", k, phi)
			}
		}
	}
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(4)
		preds := make([]logic.Formula, n)
		for i := range preds {
			preds[i] = randAtom(rng)
		}
		q := template.Domain{"u": preds}
		var ante logic.Formula = logic.Unknown{Name: "u"}
		if rng.Intn(2) == 0 {
			ante = logic.Conj(ante, randAtom(rng))
		}
		eng.OptimalNegativeSolutions(logic.Imp(ante, randAtom(rng)), q)
	}
	if checked == 0 {
		t.Fatal("CrossCheck hook never fired")
	}
}
