package optimal

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/template"
)

// benchPhiDomain is the Example 4 instance: a negative unknown under a
// quantifier with a 12-predicate vocabulary — a representative lattice
// search whose inner loop exercises the compiled filler, the bitmask
// subsumption check, and the interned validity cache.
func benchPhiDomain() (logic.Formula, template.Domain) {
	phi := logic.Imp(
		logic.EqF(logic.V("i"), logic.I(0)),
		logic.All([]string{"j"}, logic.Imp(unk("h"),
			logic.EqF(logic.Sel(logic.AV("A"), logic.V("j")), logic.I(0)))))
	q := template.Domain{"h": qjTerms("j", []logic.Term{logic.I(0), logic.V("i"), logic.V("n")})}
	return phi, q
}

// BenchmarkNegativeSolutionsColdCache measures the full lattice search with
// a cold solver cache per iteration (dominated by real SMT decisions).
func BenchmarkNegativeSolutionsColdCache(b *testing.B) {
	phi, q := benchPhiDomain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := newEngine()
		if sols := e.OptimalNegativeSolutions(phi, q); len(sols) == 0 {
			b.Fatal("no solutions")
		}
	}
}

// BenchmarkNegativeSolutionsWarmCache measures the search with a shared
// engine: every validity verdict is already memoized, so the per-op time is
// the pure search overhead — candidate construction, compiled fills, bitmask
// subsumption, and cache-hit lookups. This is the path the fixed-point
// algorithms hit when many paths share verification conditions.
func BenchmarkNegativeSolutionsWarmCache(b *testing.B) {
	phi, q := benchPhiDomain()
	e := newEngine()
	e.OptimalNegativeSolutions(phi, q) // warm the caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sols := e.OptimalNegativeSolutions(phi, q); len(sols) == 0 {
			b.Fatal("no solutions")
		}
	}
}

// BenchmarkEngineFillSolution measures one candidate instantiation through
// the engine's compiled filler cache (the innermost search operation).
func BenchmarkEngineFillSolution(b *testing.B) {
	phi, q := benchPhiDomain()
	e := newEngine()
	sigma := template.Solution{"h": template.NewPredSet(q["h"][:2]...)}
	fl := e.Filler(phi)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.FillSolution(sigma)
	}
}
