package optimal

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/smt"
	"repro/internal/template"
)

func unk(n string) logic.Formula { return logic.Unknown{Name: n} }

func newEngine() *Engine { return New(smt.NewSolver(smt.Options{})) }

func solutionKeys(sols []template.Solution) map[string]bool {
	out := map[string]bool{}
	for _, s := range sols {
		out[s.Key()] = true
	}
	return out
}

// qj builds the paper's Q_{j,V} for bound variable j and bounds {0,i,n}.
func qjTerms(j string, bounds []logic.Term) []logic.Formula {
	var out []logic.Formula
	for _, b := range bounds {
		out = append(out,
			logic.LtF(logic.V(j), b), logic.LeF(logic.V(j), b),
			logic.GtF(logic.V(j), b), logic.GeF(logic.V(j), b))
	}
	return out
}

// TestExample4 reproduces Example 4: the negative unknown η in
// i = 0 ⇒ (∀j: η ⇒ A[j] = 0) over Q_{j,{0,i,n}} has exactly the four
// optimal solutions {0<j≤i}, {0≤j<i}, {i<j≤0}, {i≤j<0}.
func TestExample4(t *testing.T) {
	e := newEngine()
	phi := logic.Imp(
		logic.EqF(logic.V("i"), logic.I(0)),
		logic.All([]string{"j"}, logic.Imp(unk("h"),
			logic.EqF(logic.Sel(logic.AV("A"), logic.V("j")), logic.I(0)))))
	q := template.Domain{"h": qjTerms("j", []logic.Term{logic.I(0), logic.V("i"), logic.V("n")})}
	sols := e.OptimalNegativeSolutions(phi, q)
	got := solutionKeys(sols)
	want := []template.Solution{
		{"h": template.NewPredSet(logic.GtF(logic.V("j"), logic.I(0)), logic.LeF(logic.V("j"), logic.V("i")))},
		{"h": template.NewPredSet(logic.GeF(logic.V("j"), logic.I(0)), logic.LtF(logic.V("j"), logic.V("i")))},
		{"h": template.NewPredSet(logic.GtF(logic.V("j"), logic.V("i")), logic.LeF(logic.V("j"), logic.I(0)))},
		{"h": template.NewPredSet(logic.GeF(logic.V("j"), logic.V("i")), logic.LtF(logic.V("j"), logic.I(0)))},
	}
	for _, w := range want {
		if !got[w.Key()] {
			t.Errorf("missing optimal solution %v (got %v)", w.Key(), got)
		}
	}
	// The engine also finds the two strict-strict variants {j<0 ∧ j>i} and
	// {j>0 ∧ j<i}, which satisfy Definition 2 just as well (valid, minimal,
	// and satisfiable as formulas); the paper's list is abbreviated. Check
	// every returned solution is pairwise minimal.
	if len(sols) < 4 || len(sols) > 6 {
		t.Errorf("got %d solutions: %v", len(sols), got)
	}
	for i, s := range sols {
		for j, r := range sols {
			if i != j && solutionSubset(r, s) {
				t.Errorf("solution %v subsumed by %v", s, r)
			}
		}
	}
}

// TestExample5 reproduces Example 5: the positive unknown ρ in
// (i ≥ n ∧ (∀j: ρ ⇒ A[j]=0)) ⇒ (∀j: 0 ≤ j < n ⇒ A[j]=0) has the single
// optimal solution {0 ≤ j, j < n, j < i}.
func TestExample5(t *testing.T) {
	e := newEngine()
	a := logic.AV("A")
	phi := logic.Imp(
		logic.Conj(
			logic.GeF(logic.V("i"), logic.V("n")),
			logic.All([]string{"j"}, logic.Imp(unk("r"),
				logic.EqF(logic.Sel(a, logic.V("j")), logic.I(0))))),
		logic.All([]string{"j"}, logic.Imp(
			logic.Conj(logic.LeF(logic.I(0), logic.V("j")), logic.LtF(logic.V("j"), logic.V("n"))),
			logic.EqF(logic.Sel(a, logic.V("j")), logic.I(0)))))
	q := template.Domain{"r": qjTerms("j", []logic.Term{logic.I(0), logic.V("i"), logic.V("n")})}
	sols := e.OptimalSolutions(phi, q)
	if len(sols) != 1 {
		t.Fatalf("got %d solutions, want 1: %v", len(sols), sols)
	}
	got := sols[0]["r"]
	for _, p := range []logic.Formula{
		logic.GeF(logic.V("j"), logic.I(0)),
		logic.LtF(logic.V("j"), logic.V("n")),
		logic.LtF(logic.V("j"), logic.V("i")),
	} {
		if !got.Contains(p) {
			t.Errorf("maximal positive solution missing %v: got %v", p, got)
		}
	}
}

// TestExample6 reproduces the shape of Example 6: one positive and one
// negative unknown; merging grows the positive side while keeping the
// negative minimal.
func TestExample6(t *testing.T) {
	e := newEngine()
	a := logic.AV("A")
	phi := logic.Imp(
		logic.Conj(
			unk("h"),
			logic.GeF(logic.V("i"), logic.V("n")),
			logic.All([]string{"j"}, logic.Imp(unk("r"),
				logic.EqF(logic.Sel(a, logic.V("j")), logic.I(0))))),
		logic.All([]string{"j"}, logic.Imp(
			logic.LeF(logic.V("j"), logic.V("m")),
			logic.EqF(logic.Sel(a, logic.V("j")), logic.I(0)))))
	le := func(x, y string) logic.Formula { return logic.LeF(logic.V(x), logic.V(y)) }
	q := template.Domain{
		"r": {le("j", "i"), le("j", "n"), le("j", "m")},
		"h": {le("m", "i"), le("m", "n"), le("i", "n"), le("n", "i")},
	}
	sols := e.OptimalSolutions(phi, q)
	if len(sols) == 0 {
		t.Fatal("no solutions")
	}
	keys := solutionKeys(sols)
	// Paper solution 2: ρ ↦ {j≤n, j≤m, j≤i}, η ↦ {m≤n}.
	want2 := template.Solution{
		"r": template.NewPredSet(le("j", "n"), le("j", "m"), le("j", "i")),
		"h": template.NewPredSet(le("m", "n")),
	}
	// Paper solution 3: ρ ↦ {j≤i, j≤m}, η ↦ {m≤i}.
	want3 := template.Solution{
		"r": template.NewPredSet(le("j", "i"), le("j", "m")),
		"h": template.NewPredSet(le("m", "i")),
	}
	// Paper solution 1: ρ ↦ {j≤m}, η ↦ ∅.
	want1 := template.Solution{
		"r": template.NewPredSet(le("j", "m")),
		"h": template.NewPredSet(),
	}
	for _, w := range []template.Solution{want1, want2, want3} {
		if !keys[w.Key()] {
			t.Errorf("missing paper solution %v\n got: %v", w.Key(), keys)
		}
	}
}

func TestNoUnknownsValid(t *testing.T) {
	e := newEngine()
	sols := e.OptimalNegativeSolutions(logic.LeF(logic.V("x"), logic.V("x")), template.Domain{})
	if len(sols) != 1 {
		t.Errorf("valid unknown-free formula should yield one empty solution, got %v", sols)
	}
	sols = e.OptimalNegativeSolutions(logic.LtF(logic.V("x"), logic.V("x")), template.Domain{})
	if len(sols) != 0 {
		t.Errorf("invalid unknown-free formula should yield none, got %v", sols)
	}
}

func TestMonotonicityPrecheck(t *testing.T) {
	// Even the full predicate set cannot make x < x valid.
	e := newEngine()
	phi := logic.Imp(unk("h"), logic.LtF(logic.V("x"), logic.V("x")))
	q := template.Domain{"h": {logic.LeF(logic.V("x"), logic.I(0))}}
	if sols := e.OptimalNegativeSolutions(phi, q); len(sols) != 0 {
		t.Errorf("unsatisfiable target should have no solutions, got %v", sols)
	}
}

func TestContradictoryGuardsPruned(t *testing.T) {
	e := newEngine()
	// Every 2-subset containing {x<0, x>0} would be vacuously valid; the
	// engine must not enumerate contradictory sets.
	phi := logic.Imp(unk("h"), logic.LtF(logic.V("y"), logic.V("y")))
	q := template.Domain{"h": {
		logic.LtF(logic.V("x"), logic.I(0)),
		logic.GtF(logic.V("x"), logic.I(0)),
	}}
	for _, s := range e.OptimalNegativeSolutions(phi, q) {
		if s["h"].Len() == 2 {
			t.Errorf("contradictory guard set returned: %v", s)
		}
	}
}

func TestSplitConjGrouping(t *testing.T) {
	b := logic.LeF(logic.V("x"), logic.V("y"))
	f := logic.Imp(b, logic.Conj(
		logic.All([]string{"k"}, logic.Imp(unk("a"), b)),
		logic.All([]string{"k"}, logic.Imp(unk("b"), b)),
		b,
	))
	parts := splitConj(f)
	if len(parts) != 3 {
		t.Fatalf("splitConj should push the implication in: %v", parts)
	}
	groups, fixed := groupByUnknowns(parts)
	if len(groups) != 2 || len(fixed) != 1 {
		t.Errorf("groups=%d fixed=%d", len(groups), len(fixed))
	}
	// Shared unknowns merge groups.
	g := logic.Conj(
		logic.Imp(unk("a"), b),
		logic.Imp(unk("a"), logic.Disj(b, unk("c"))),
		logic.Imp(unk("d"), b),
	)
	groups, _ = groupByUnknowns(splitConj(g))
	if len(groups) != 2 {
		t.Errorf("a and c must share a group, d separate: %d groups", len(groups))
	}
}

func TestDominates(t *testing.T) {
	a := logic.LtF(logic.V("x"), logic.I(0))
	b := logic.GtF(logic.V("x"), logic.I(5))
	s1 := template.Solution{"p": template.NewPredSet(a, b), "n": template.NewPredSet()}
	s2 := template.Solution{"p": template.NewPredSet(a), "n": template.NewPredSet(a)}
	if !dominates(s1, s2, []string{"p"}, []string{"n"}) {
		t.Error("bigger positive + smaller negative should dominate")
	}
	if dominates(s2, s1, []string{"p"}, []string{"n"}) {
		t.Error("dominance is antisymmetric here")
	}
}
