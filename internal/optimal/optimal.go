// Package optimal implements the core operation of the paper (§3, Fig. 2):
// finding all optimal assignments of predicate conjunctions to the unknowns
// of a template formula so that the formula is valid. Negative unknowns get
// minimal sets (adding predicates preserves validity), positive unknowns get
// maximal sets (deleting predicates preserves validity).
//
// OptimalNegativeSolutions is a breadth-first search over the subset lattice
// with subsumption pruning and a configurable depth bound (the paper
// observed no solution ever needs more than 4 predicates per negative
// unknown). OptimalSolutions follows Fig. 2: seed with single-predicate
// choices for the positive unknowns, then grow maximal solutions with
// MakeOptimal/Merge. Merged candidates are re-verified with the SMT solver,
// so every returned solution truly validates the formula.
package optimal

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/logic"
	"repro/internal/par"
	"repro/internal/smt"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/template"
)

// Options selects the engine's enumeration strategy and internal
// parallelism.
type Options struct {
	// NoMapSolver disables the SAT-map-guided enumeration of optimal
	// negative solutions and restores the legacy bounded BFS. Both return
	// the same solution sets (see DESIGN.md §11); the flag mirrors
	// smt.Options.NoIncremental as an escape hatch and as the baseline the
	// differential tests compare against.
	NoMapSolver bool
	// Parallel bounds the worker pool that fans out the independent
	// OptimalNegativeSolutions seeding calls inside OptimalSolutions
	// (0 = GOMAXPROCS, 1 = sequential).
	Parallel int
	// CrossCheck, when non-nil, makes every group search run both the
	// map-guided and the legacy BFS enumeration and hands both result lists
	// to the callback (the map result is the one used). Differential-test
	// hook; leave nil in production.
	CrossCheck func(phi logic.Formula, mapSols, bfsSols []template.Solution)
}

// Engine runs optimal-solution searches against one SMT solver.
type Engine struct {
	// S is the SMT validity oracle.
	S *smt.Solver
	// MaxDepth bounds the total number of predicates across all negative
	// unknowns in one solution (default 4, the paper's observed maximum).
	MaxDepth int
	// MaxSolutions bounds how many optimal negative solutions one call
	// returns (default 64; the paper never observed more than 6). Both
	// enumerations run to exhaustion within MaxDepth and truncate the
	// canonically ordered result, so the bound is a safety valve against
	// degenerate vocabularies, not a search cutoff.
	MaxSolutions int
	// Stop, when non-nil, is polled inside the search loops; returning
	// true abandons the call with whatever has been found so far.
	Stop func() bool
	// Stats optionally records Figure 6/7 histograms.
	Stats *stats.Collector
	// Opts selects the enumeration strategy (map-solver-guided by default)
	// and the engine's internal parallelism.
	Opts Options

	// fillers caches one compiled template.Filler per interned base formula
	// (*logic.IFormula → *template.Filler): the search fills the same φ with
	// hundreds of candidate solutions, and the iterative algorithms re-visit
	// the same VCs across rounds and (parallel) workers.
	fillers sync.Map

	// consOnce/consCtx lazily hold one incremental context dedicated to
	// predicate-set consistency probes: every candidate predicate gets a
	// selector literal there, and failed conjunctions come back with unsat
	// cores that prune the lattice search.
	consOnce sync.Once
	consCtx  *smt.Context

	// consMemo caches consistency verdicts per interned predicate-set
	// conjunction (*logic.IFormula → *consVerdict). The searches re-test the
	// same small per-unknown sets across groups, rounds, and workers; the
	// verdict (and its core) never changes, so one probe serves all of them.
	consMemo sync.Map

	// cores accumulates (unknown, predicate-set) combinations proven
	// inconsistent, shared across searches and workers: a core killed in one
	// round keeps killing the same sublattice in every later round (as
	// bitmask pruning in negBFS, as blocking clauses in negMap). corePruned
	// counts candidates rejected because a stored or fresh core applied.
	cores      *CoreStore
	corePruned atomic.Int64

	// know is the optional on-disk knowledge base: consistency verdicts are
	// answered from it across process lifetimes and written behind when
	// decided without a fired Stop. consStoreHits counts warm answers.
	know          *store.Store
	consStoreHits atomic.Int64
}

// consVerdict is one memoized predicate-set consistency verdict.
type consVerdict struct {
	sat  bool
	core []logic.Formula
}

// coreItem identifies one (unknown, interned predicate) choice; it doubles
// as the deduplication key of the search item universes and the persisted
// representation of unsat cores.
type coreItem struct {
	unknown string
	pred    *logic.IFormula
}

// New returns an engine with default bounds and a private core store.
func New(s *smt.Solver) *Engine {
	return &Engine{S: s, MaxDepth: 4, MaxSolutions: 64, cores: NewCoreStore()}
}

// ShareCores replaces the engine's core store, typically with one shared by
// a pool of engines so an inconsistency proven by any of them prunes the
// others' lattice searches. Must be called before the engine is used.
func (e *Engine) ShareCores(cs *CoreStore) {
	if cs != nil {
		e.cores = cs
	}
}

// AttachKnowledge connects the on-disk knowledge base: predicate-set
// consistency verdicts warm-load from it, and the engine's core store gains
// its persisted portable cores. Must be called before the engine is used
// (after ShareCores, so the shared store is the one attached).
func (e *Engine) AttachKnowledge(k *store.Store) {
	if k == nil {
		return
	}
	e.know = k
	e.cores.Attach(k)
}

// NumConsStoreHits returns how many consistency probes were answered from
// the knowledge store instead of being decided.
func (e *Engine) NumConsStoreHits() int64 { return e.consStoreHits.Load() }

// NumWarmCores returns how many persisted cores were promoted from the
// knowledge store into live searches.
func (e *Engine) NumWarmCores() int64 { return e.cores.NumWarmCores() }

func (e *Engine) maxDepth() int {
	if e.MaxDepth <= 0 {
		return 4
	}
	return e.MaxDepth
}

func (e *Engine) maxSolutions() int {
	if e.MaxSolutions <= 0 {
		return 64
	}
	return e.MaxSolutions
}

// Filler returns the engine's compiled filler for φ, building and caching
// it on first use. Safe for concurrent use.
func (e *Engine) Filler(phi logic.Formula) *template.Filler {
	n := logic.Intern(phi)
	if v, ok := e.fillers.Load(n); ok {
		return v.(*template.Filler)
	}
	v, _ := e.fillers.LoadOrStore(n, template.NewFiller(n.Formula()))
	return v.(*template.Filler)
}

// valid instantiates φ with σ and asks the SMT solver, routed through the
// incremental context keyed by the unfilled φ (the skeleton shared by every
// candidate fill) when one is available.
func (e *Engine) valid(phi logic.Formula, sigma template.Solution) bool {
	f := e.Filler(phi).FillSolution(sigma)
	if c := e.S.ContextFor(logic.Intern(phi)); c != nil {
		return c.Valid(f)
	}
	return e.S.Valid(f)
}

// consistencyContext returns the engine's shared context for predicate-set
// consistency probes (nil when the solver is non-incremental).
func (e *Engine) consistencyContext() *smt.Context {
	e.consOnce.Do(func() { e.consCtx = e.S.NewContext() })
	return e.consCtx
}

// NumCorePruned returns how many lattice candidates were rejected because a
// previously extracted unsat core applied to them.
func (e *Engine) NumCorePruned() int64 { return e.corePruned.Load() }

// NumCoreEvicted returns how many stored cores were evicted from the
// engine-global store to make room for newer ones.
func (e *Engine) NumCoreEvicted() int64 { return e.cores.NumEvicted() }

// storeCoreStats persists a freshly extracted inconsistent (unknown,
// predicate-set) combination for reuse by later searches over the same
// domain, and records it in the stats collector.
func (e *Engine) storeCoreStats(unknown string, core []logic.Formula) {
	items := make([]coreItem, len(core))
	for i, p := range core {
		items[i] = coreItem{unknown: unknown, pred: logic.Intern(p)}
	}
	if e.cores.add(items) && e.Stats != nil {
		e.Stats.RecordCoreEviction()
	}
	if e.Stats != nil {
		e.Stats.RecordCoreSize(len(core))
	}
}

// taggedPred is one (unknown, predicate) choice in the BFS space.
type taggedPred struct {
	unknown string
	pred    logic.Formula
}

// OptimalNegativeSolutions returns all minimal solutions of φ over Q when
// every unknown of φ is negative. Each returned solution has an entry
// (possibly empty) for every unknown of φ. The search is truncated at
// MaxDepth total predicates, matching the paper's bounded BFS.
//
// Before searching, φ is split into independent conjuncts (implication and
// universal quantification distribute over conjunction) and grouped by
// shared unknowns; the BFS runs per group and the results are combined,
// which is exact and exponentially cheaper than a joint search.
func (e *Engine) OptimalNegativeSolutions(phi logic.Formula, q template.Domain) []template.Solution {
	parts := splitConj(logic.Intern(phi).Simplified().Formula())
	groups, fixed := groupByUnknowns(parts)
	if len(fixed) > 0 && !e.S.Valid(logic.Conj(fixed...)) {
		return nil
	}
	if len(groups) == 0 {
		return []template.Solution{{}}
	}
	combined := []template.Solution{{}}
	for _, g := range groups {
		sols := e.negSearch(g, q)
		if len(sols) == 0 {
			e.recordNegSizes(nil)
			return nil
		}
		var next []template.Solution
		for _, c := range combined {
			for _, s := range sols {
				next = append(next, c.Merge(s))
				if len(next) >= e.maxSolutions() {
					break
				}
			}
			if len(next) >= e.maxSolutions() {
				break
			}
		}
		combined = next
	}
	e.recordNegSizes(combined)
	return combined
}

// splitConj distributes implication, universal quantification and
// conjunction to produce the finest top-level conjunction of φ.
func splitConj(f logic.Formula) []logic.Formula {
	switch f := f.(type) {
	case logic.And:
		var out []logic.Formula
		for _, g := range f.Fs {
			out = append(out, splitConj(g)...)
		}
		return out
	case logic.Implies:
		cs := splitConj(f.B)
		if len(cs) == 1 {
			return []logic.Formula{f}
		}
		out := make([]logic.Formula, len(cs))
		for i, c := range cs {
			out[i] = logic.Imp(f.A, c)
		}
		return out
	case logic.Forall:
		cs := splitConj(f.Body)
		if len(cs) == 1 {
			return []logic.Formula{f}
		}
		out := make([]logic.Formula, len(cs))
		for i, c := range cs {
			out[i] = logic.All(f.Vars, c)
		}
		return out
	}
	return []logic.Formula{f}
}

// groupByUnknowns partitions conjuncts into connected components by shared
// unknowns; conjuncts with no unknowns are returned separately.
func groupByUnknowns(parts []logic.Formula) (groups []logic.Formula, fixed []logic.Formula) {
	type comp struct {
		fs       []logic.Formula
		unknowns map[string]bool
	}
	var comps []*comp
	for _, p := range parts {
		us := logic.Unknowns(p)
		if len(us) == 0 {
			fixed = append(fixed, p)
			continue
		}
		cur := &comp{fs: []logic.Formula{p}, unknowns: map[string]bool{}}
		for _, u := range us {
			cur.unknowns[u] = true
		}
		var merged []*comp
		for _, c := range comps {
			shares := false
			for u := range c.unknowns {
				if cur.unknowns[u] {
					shares = true
					break
				}
			}
			if shares {
				cur.fs = append(cur.fs, c.fs...)
				for u := range c.unknowns {
					cur.unknowns[u] = true
				}
			} else {
				merged = append(merged, c)
			}
		}
		comps = append(merged, cur)
	}
	for _, c := range comps {
		groups = append(groups, logic.Conj(c.fs...))
	}
	return groups, fixed
}

// negSearch enumerates the optimal negative solutions of one
// unknown-connected group, through the map-solver-guided search unless the
// engine was configured for the legacy BFS.
func (e *Engine) negSearch(phi logic.Formula, q template.Domain) []template.Solution {
	if e.Opts.NoMapSolver {
		return e.negBFS(phi, q)
	}
	sols := e.negMap(phi, q)
	if e.Opts.CrossCheck != nil {
		e.Opts.CrossCheck(phi, sols, e.negBFS(phi, q))
	}
	return sols
}

// negBFS is the legacy bounded breadth-first search over one
// unknown-connected group, retained behind Options.NoMapSolver as the
// differential-test baseline for the map-solver-guided search.
func (e *Engine) negBFS(phi logic.Formula, q template.Domain) []template.Solution {
	unknowns := logic.Unknowns(phi)
	empty := template.Solution{}
	for _, u := range unknowns {
		empty[u] = template.NewPredSet()
	}
	if len(unknowns) == 0 {
		if e.S.Valid(phi) {
			return []template.Solution{{}}
		}
		return nil
	}
	// The deduplicated item universe, in deterministic order. With distinct
	// items, every candidate the BFS builds is exactly identified by its set
	// of item indices, so subsumption against already-found solutions is a
	// word-wise bitmask subset test instead of per-unknown PredSet walks.
	var items []taggedPred
	indexOf := map[coreItem]int{}
	for _, u := range unknowns {
		for _, p := range q[u] {
			k := coreItem{unknown: u, pred: logic.Intern(p)}
			if _, dup := indexOf[k]; dup {
				continue
			}
			indexOf[k] = len(items)
			items = append(items, taggedPred{unknown: u, pred: p})
		}
	}
	// The base formula is compiled once; each candidate costs one spine
	// rebuild instead of a full-tree reconstruction. Probes go through the
	// incremental context keyed by the unfilled group formula — one
	// persistent SAT instance absorbs every candidate fill of this group.
	fl := e.Filler(phi)
	ctx := e.S.ContextFor(logic.Intern(phi))
	probe := func(sigma template.Solution) bool {
		f := fl.FillSolution(sigma)
		if ctx != nil {
			return ctx.Valid(f)
		}
		return e.S.Valid(f)
	}
	// Monotonicity pre-check: if even the full assignment is not valid, no
	// subset is.
	full := empty.Clone()
	for _, it := range items {
		full[it.unknown] = full[it.unknown].Add(it.pred)
	}
	if !probe(full) {
		return nil
	}
	if probe(empty) {
		return []template.Solution{empty}
	}

	var solutions []template.Solution
	var solMasks []bitmask
	subsumed := func(m bitmask) bool {
		for _, sm := range solMasks {
			if sm.subsetOf(m) {
				return true
			}
		}
		return false
	}
	// Unsat cores, as masks over this call's item universe: an inconsistent
	// predicate subset makes every lattice point containing it inconsistent
	// too (conjoining predicates only strengthens the set), so a single core
	// kills its whole superset sublattice without probing. Seeded with cores
	// extracted by earlier calls over the same domain.
	coreMasks := e.cores.masks(indexOf, len(items))
	coreBlocked := func(m bitmask) bool {
		for _, km := range coreMasks {
			if km.subsetOf(m) {
				e.corePruned.Add(1)
				return true
			}
		}
		return false
	}
	maskOfCore := func(unknown string, core []logic.Formula) bitmask {
		m := newBitmask(len(items))
		for _, p := range core {
			i, present := indexOf[coreItem{unknown: unknown, pred: logic.Intern(p)}]
			if !present {
				return nil // core predicate outside this universe; unusable here
			}
			m[i/64] |= 1 << uint(i%64)
		}
		return m
	}

	type node struct {
		sigma template.Solution
		mask  bitmask
		last  int // last item index used, for canonical extension order
	}
	frontier := []node{{sigma: empty, mask: newBitmask(len(items)), last: -1}}
	for depth := 1; depth <= e.maxDepth() && len(frontier) > 0; depth++ {
		var next []node
		for _, nd := range frontier {
			if e.Stop != nil && e.Stop() {
				return truncateSolutions(solutions, e.maxSolutions())
			}
			for i := nd.last + 1; i < len(items); i++ {
				cm := nd.mask.with(i)
				if subsumed(cm) || coreBlocked(cm) {
					continue
				}
				cand := nd.sigma.Clone()
				cand[items[i].unknown] = cand[items[i].unknown].Add(items[i].pred)
				// Contradictory predicate sets denote the guard "false":
				// they make the template conjunct vacuous, flood the
				// solution set, and never appear in the paper's optimal
				// sets (Example 4). Prune them and all their supersets.
				if sat, core, fresh := e.satisfiableSet(cand[items[i].unknown]); !sat {
					if len(core) > 0 {
						if km := maskOfCore(items[i].unknown, core); km != nil {
							coreMasks = append(coreMasks, km)
						}
						if fresh {
							e.storeCoreStats(items[i].unknown, core)
						}
					}
					continue
				}
				if probe(cand) {
					solutions = append(solutions, cand)
					solMasks = append(solMasks, cm)
					continue
				}
				next = append(next, node{sigma: cand, mask: cm, last: i})
			}
		}
		frontier = next
	}
	return truncateSolutions(solutions, e.maxSolutions())
}

// truncateSolutions applies the MaxSolutions safety valve to a canonically
// ordered solution list.
func truncateSolutions(sols []template.Solution, max int) []template.Solution {
	if len(sols) > max {
		return sols[:max]
	}
	return sols
}

// bitmask is a fixed-width bit set over negBFS item indices.
type bitmask []uint64

func newBitmask(n int) bitmask { return make(bitmask, (n+63)/64) }

// with returns a copy of m with bit i set.
func (m bitmask) with(i int) bitmask {
	c := make(bitmask, len(m))
	copy(c, m)
	c[i/64] |= 1 << uint(i%64)
	return c
}

// subsetOf reports whether every bit of m is set in o.
func (m bitmask) subsetOf(o bitmask) bool {
	for k := range m {
		if m[k]&^o[k] != 0 {
			return false
		}
	}
	return true
}

// satisfiableSet reports whether the conjunction of a predicate set has a
// model. Verdicts are memoized per interned conjunction — the searches
// re-test the same per-unknown sets across groups, rounds, and workers, and
// repeated probes were the dominant cost of the slowest cells. Misses go
// through the engine's incremental consistency context (one selector literal
// per predicate; inconsistent sets come back with an unsat core over the
// predicates), falling back to the solver's Valid cache when the context
// cannot answer exactly. Both paths agree on the verdict; only the context
// path yields cores. fresh reports that this call performed the probe, so
// exactly one caller persists the core and records its size.
func (e *Engine) satisfiableSet(ps template.PredSet) (sat bool, core []logic.Formula, fresh bool) {
	if ps.Len() <= 1 {
		return true, nil, false
	}
	key := logic.Intern(ps.Formula())
	if v, ok := e.consMemo.Load(key); ok {
		cv := v.(*consVerdict)
		return cv.sat, cv.core, false
	}
	cv := &consVerdict{}
	var skey string
	if e.know != nil {
		// Warm path: the verdict survived from an earlier lifetime. No core
		// comes with it (cores travel separately through the CoreStore's
		// portable form), which the callers already tolerate — the Valid
		// fallback below is equally core-less.
		skey = store.FormulaKey(key.Formula())
		if sat, ok := e.know.Consistency(skey); ok {
			e.consStoreHits.Add(1)
			e.Stats.RecordStoreLookup(true)
			cv.sat = sat
			got, _ := e.consMemo.LoadOrStore(key, cv)
			cv = got.(*consVerdict)
			return cv.sat, cv.core, false
		}
		e.Stats.RecordStoreLookup(false)
	}
	decided := false
	if c := e.consistencyContext(); c != nil {
		if consistent, cr, ok := c.Consistent(ps.Preds()); ok {
			cv.sat, cv.core = consistent, cr
			decided = true
		}
	}
	if !decided {
		cv.sat = !e.S.Valid(logic.Neg(ps.Formula()))
	}
	got, loaded := e.consMemo.LoadOrStore(key, cv)
	cv = got.(*consVerdict)
	if !loaded && e.know != nil && (e.Stop == nil || !e.Stop()) {
		// Settled without a fired Stop: safe to persist for next lifetime.
		e.know.AppendConsistency(skey, cv.sat)
	}
	return cv.sat, cv.core, !loaded
}

func (e *Engine) recordNegSizes(sols []template.Solution) {
	if e.Stats == nil {
		return
	}
	for _, s := range sols {
		n := 0
		for _, ps := range s {
			n += ps.Len()
		}
		e.Stats.RecordNegSolutionSize(n)
	}
}

func solutionSubset(a, b template.Solution) bool {
	for u, pa := range a {
		if !pa.SubsetOf(b[u]) {
			return false
		}
	}
	return true
}

// OptimalSolutions returns optimal solutions of φ over Q (Fig. 2): maximal
// predicate sets for positive unknowns, minimal for negative. Every returned
// solution is SMT-verified to make φ valid.
func (e *Engine) OptimalSolutions(phi logic.Formula, q template.Domain) []template.Solution {
	pol, err := template.Polarities(phi)
	if err != nil {
		panic("optimal: " + err.Error())
	}
	pos, neg := template.Split(pol)
	if len(pos) == 0 {
		sols := e.OptimalNegativeSolutions(phi, q)
		e.recordOpt(sols)
		return sols
	}

	// Seed S: for each positive unknown and each single predicate choice
	// (other positives empty), find the optimal negative completions. Also
	// seed with the all-empty positive assignment.
	negDomain := template.Domain{}
	for _, n := range neg {
		negDomain[n] = q[n]
	}
	emptyPos := template.Solution{}
	for _, p := range pos {
		emptyPos[p] = template.NewPredSet()
	}

	// The seeding calls — one per (positive unknown, predicate) plus the
	// all-empty assignment — are independent searches, so they fan out
	// across the engine's worker budget; results are merged in job order,
	// keeping the seed list identical to a sequential run.
	fl := e.Filler(phi)
	jobs := []template.Solution{emptyPos}
	for _, p := range pos {
		for _, pred := range q[p] {
			posPart := emptyPos.Clone()
			posPart[p] = template.NewPredSet(pred)
			jobs = append(jobs, posPart)
		}
	}
	results := make([][]template.Solution, len(jobs))
	par.ForEach(len(jobs), par.Workers(e.Opts.Parallel), func(i int) {
		if e.Stop != nil && e.Stop() {
			return
		}
		phiP := fl.FillSolution(jobs[i])
		results[i] = e.OptimalNegativeSolutions(phiP, negDomain)
	})
	var seeds []template.Solution
	for i, sols := range results {
		for _, t := range sols {
			seeds = append(seeds, jobs[i].Merge(t))
		}
	}
	seeds = dedupe(seeds)
	if len(seeds) == 0 {
		e.recordOpt(nil)
		return nil
	}

	// R := {MakeOptimal(σ, S)}, then close under Merge (Fig. 2 lines 8-13).
	var r []template.Solution
	addR := func(sigma template.Solution) {
		for _, s := range r {
			if dominates(s, sigma, pos, neg) {
				return
			}
		}
		r = append(r, sigma)
	}
	for _, s := range seeds {
		addR(e.makeOptimal(phi, s, seeds, pos, neg))
	}
	r = dedupe(r)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(r); i++ {
			for j := 0; j < len(r); j++ {
				if i == j {
					continue
				}
				m, ok := e.merge(phi, r[i], r[j], seeds, pos, neg)
				if !ok {
					continue
				}
				if containsKey(r, m) || anyDominates(r, m, pos, neg) {
					continue
				}
				r = append(r, e.makeOptimal(phi, m, seeds, pos, neg))
				r = dedupe(r)
				changed = true
			}
		}
	}
	// Keep only non-dominated, verified solutions.
	var out []template.Solution
	for i, s := range r {
		dominated := false
		for j, t := range r {
			if i != j && dominates(t, s, pos, neg) && s.Key() != t.Key() {
				dominated = true
				break
			}
		}
		if !dominated && e.valid(phi, s) {
			out = append(out, s)
		}
	}
	out = dedupe(out)
	sortSolutions(out)
	e.recordOpt(out)
	return out
}

func (e *Engine) recordOpt(sols []template.Solution) {
	if e.Stats != nil {
		e.Stats.RecordOptSolutionCount(len(sols))
	}
}

// makeOptimal greedily merges σ with compatible seeds to grow its positive
// sets (Fig. 2, MakeOptimal).
func (e *Engine) makeOptimal(phi logic.Formula, sigma template.Solution, seeds []template.Solution, pos, neg []string) template.Solution {
	for _, sp := range seeds {
		if !negSubset(sp, sigma, neg) {
			continue
		}
		if m, ok := e.merge(phi, sigma, sp, seeds, pos, neg); ok {
			sigma = m
		}
	}
	return sigma
}

// merge unions two solutions (Fig. 2, Merge): positives and negatives are
// unioned; the union is kept when its single-predicate positive projections
// are covered by seeds with no-stronger negatives, and the SMT solver
// confirms validity (the verification step makes the cover test exact).
func (e *Engine) merge(phi logic.Formula, s1, s2 template.Solution, seeds []template.Solution, pos, neg []string) (template.Solution, bool) {
	m := s1.Merge(s2)
	// Cover test: every (positive unknown, predicate) choice of m must be
	// realized by some seed whose negatives are within m's.
	for _, p := range pos {
		for _, pred := range m[p].Preds() {
			found := false
			for _, sp := range seeds {
				if sp[p].Len() == 1 && sp[p].Contains(pred) && negSubset(sp, m, neg) {
					found = true
					break
				}
			}
			if !found {
				return nil, false
			}
		}
	}
	if !e.valid(phi, m) {
		return nil, false
	}
	return m, true
}

// negSubset reports whether a's negative sets are all within b's.
func negSubset(a, b template.Solution, neg []string) bool {
	for _, n := range neg {
		if !a[n].SubsetOf(b[n]) {
			return false
		}
	}
	return true
}

// dominates reports whether a is at least as good as b: positives no
// smaller, negatives no larger (Fig. 2, line 12).
func dominates(a, b template.Solution, pos, neg []string) bool {
	for _, p := range pos {
		if !b[p].SubsetOf(a[p]) {
			return false
		}
	}
	for _, n := range neg {
		if !a[n].SubsetOf(b[n]) {
			return false
		}
	}
	return true
}

func anyDominates(rs []template.Solution, s template.Solution, pos, neg []string) bool {
	for _, r := range rs {
		if dominates(r, s, pos, neg) {
			return true
		}
	}
	return false
}

func containsKey(rs []template.Solution, s template.Solution) bool {
	key := s.Key()
	for _, r := range rs {
		if r.Key() == key {
			return true
		}
	}
	return false
}

func dedupe(rs []template.Solution) []template.Solution {
	seen := map[string]bool{}
	out := rs[:0:0]
	for _, r := range rs {
		k := r.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

func sortSolutions(rs []template.Solution) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Key() < rs[j].Key() })
}
