// Engine-global store of unsat cores extracted by predicate-set consistency
// probes. A core proven inconsistent in one search keeps killing the same
// sublattice in every later search over the same domain, so the store is
// shared across OptimalNegativeSolutions calls and across workers: it is
// striped into independently locked shards (keyed by the unknown the core
// belongs to, which is also where contention splits naturally), and bounded
// per shard with age/hit-count-aware eviction instead of the former silent
// global cap.
package optimal

import (
	"sync"
	"sync/atomic"

	"repro/internal/logic"
	"repro/internal/store"
)

// coreShards is the number of independently locked stripes of the store.
const coreShards = 16

// maxStoredCores bounds the total number of stored cores across all shards.
const maxStoredCores = 1024

// coreShardCap is the per-shard entry bound; hitting it evicts the
// least-useful entry (fewest hits, oldest insertion) rather than dropping
// the new core.
const coreShardCap = maxStoredCores / coreShards

type CoreStore struct {
	shards  [coreShards]coreShard
	seq     atomic.Uint64 // global insertion clock, for age-aware eviction
	evicted atomic.Int64

	// know, when attached, is the on-disk knowledge base behind the
	// in-memory shards: every inserted core is written behind in portable
	// form (predicates as store.FormulaKey strings), which also makes
	// eviction lossless — an evicted core stays on disk and can be
	// re-promoted by a later search. portable holds cores loaded from the
	// store that no search has resolved into interned predicates yet; a
	// portable core cannot become a bitmask until a search's item universe
	// supplies the actual formulas behind its keys, so resolution happens
	// lazily inside masks.
	know     atomic.Pointer[store.Store]
	pmu      sync.Mutex
	portable []store.Core
	warmHits atomic.Int64 // portable cores promoted into a search's universe

	// keyMemo caches store.FormulaKey per interned predicate
	// (*logic.IFormula → string): portable-core resolution recomputes the
	// universe's key set per search, and the universes overlap heavily.
	keyMemo sync.Map
}

// Attach connects the on-disk knowledge base: persisted portable cores are
// loaded for lazy promotion, and every future add is written behind. The
// first attach wins; re-attaching the same store from other engines sharing
// this CoreStore is a no-op, so pooled sessions do not duplicate the load.
func (cs *CoreStore) Attach(know *store.Store) {
	if cs == nil || know == nil {
		return
	}
	if !cs.know.CompareAndSwap(nil, know) {
		return
	}
	cs.pmu.Lock()
	cs.portable = append(cs.portable, know.Cores()...)
	cs.pmu.Unlock()
}

// NumWarmCores returns how many persisted cores were promoted from portable
// form into a live search's bitmask space.
func (cs *CoreStore) NumWarmCores() int64 { return cs.warmHits.Load() }

// predKey returns the portable identity of a core item's predicate, memoized
// per interned formula.
func (cs *CoreStore) predKey(p *logic.IFormula) string {
	if v, ok := cs.keyMemo.Load(p); ok {
		return v.(string)
	}
	k := store.FormulaKey(p.Formula())
	v, _ := cs.keyMemo.LoadOrStore(p, k)
	return v.(string)
}

// persist writes one inserted core behind in portable form.
func (cs *CoreStore) persist(items []coreItem) {
	know := cs.know.Load()
	if know == nil {
		return
	}
	preds := make([]string, len(items))
	for i, it := range items {
		preds[i] = cs.predKey(it.pred)
	}
	know.AppendCore(store.Core{Unknown: items[0].unknown, Preds: preds})
}

// NewCoreStore returns an empty store. One store may be shared by several
// Engines (via Engine.ShareCores): all its methods are internally
// synchronized, and cores are keyed by interned predicate identity, which is
// process-global, so cores learned by one engine prune every sharer's
// searches.
func NewCoreStore() *CoreStore { return &CoreStore{} }

type coreShard struct {
	mu      sync.Mutex
	entries []coreEntry
}

type coreEntry struct {
	items []coreItem
	seq   uint64 // insertion time on the store's clock
	hits  int64  // times the core was handed to a search that could use it
}

// shardOf stripes by the unknown of the core's first item: cores over the
// same unknown (the only ones that can collide or deduplicate against each
// other) always land in the same shard.
func (cs *CoreStore) shardOf(items []coreItem) *coreShard {
	u := items[0].unknown
	h := uint32(2166136261)
	for i := 0; i < len(u); i++ {
		h ^= uint32(u[i])
		h *= 16777619
	}
	return &cs.shards[h%coreShards]
}

// add persists one inconsistent (unknown, predicate-set) combination and
// reports whether an older entry was evicted to make room. Duplicate cores
// are dropped. Inserted cores are also written behind to the attached
// knowledge store, so in-memory eviction never loses a core for good.
func (cs *CoreStore) add(items []coreItem) (evicted bool) {
	inserted, evicted := cs.insert(items)
	if inserted {
		cs.persist(items)
	}
	return evicted
}

// insert is add's in-memory body.
func (cs *CoreStore) insert(items []coreItem) (inserted, evicted bool) {
	if len(items) == 0 {
		return false, false
	}
	sh := cs.shardOf(items)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := range sh.entries {
		if sameCore(sh.entries[i].items, items) {
			return false, false
		}
	}
	e := coreEntry{items: items, seq: cs.seq.Add(1)}
	if len(sh.entries) < coreShardCap {
		sh.entries = append(sh.entries, e)
		return true, false
	}
	// Evict the entry with the fewest hits, breaking ties toward the oldest:
	// cores that never pruned anything age out first.
	victim := 0
	for i := 1; i < len(sh.entries); i++ {
		v, c := &sh.entries[victim], &sh.entries[i]
		if c.hits < v.hits || (c.hits == v.hits && c.seq < v.seq) {
			victim = i
		}
	}
	sh.entries[victim] = e
	cs.evicted.Add(1)
	return true, true
}

func sameCore(a, b []coreItem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// masks maps every stored core that is fully expressible in the given item
// universe into that universe's bitmask space, bumping the hit count of each
// returned core (a core a search can use is a core worth keeping). Portable
// cores loaded from the knowledge store are resolved against the universe
// here — the first search whose items carry all of a portable core's
// predicate keys promotes it into the in-memory shards and its own mask set.
func (cs *CoreStore) masks(indexOf map[coreItem]int, width int) []bitmask {
	cs.promotePortable(indexOf)
	var out []bitmask
	for s := range cs.shards {
		sh := &cs.shards[s]
		sh.mu.Lock()
		for i := range sh.entries {
			ent := &sh.entries[i]
			m := newBitmask(width)
			ok := true
			for _, it := range ent.items {
				j, present := indexOf[it]
				if !present {
					ok = false
					break
				}
				m[j/64] |= 1 << uint(j%64)
			}
			if ok {
				ent.hits++
				out = append(out, m)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// promotePortable resolves warm-loaded portable cores against a search's item
// universe. A core whose (unknown, predicate-key) pairs all appear in the
// universe is promoted: inserted into the in-memory shards (where this and
// every later search will pick it up through the shard scan) and removed
// from the portable list. Unresolvable cores stay portable for later
// universes. Promotion happens before the shard scan precisely so the
// promoted cores are produced by it, never twice.
func (cs *CoreStore) promotePortable(indexOf map[coreItem]int) {
	cs.pmu.Lock()
	defer cs.pmu.Unlock()
	if len(cs.portable) == 0 {
		return
	}
	inv := make(map[string]coreItem, len(indexOf))
	for it := range indexOf {
		inv[it.unknown+"\x00"+cs.predKey(it.pred)] = it
	}
	kept := cs.portable[:0]
	for _, pc := range cs.portable {
		items := make([]coreItem, 0, len(pc.Preds))
		ok := true
		for _, pk := range pc.Preds {
			it, present := inv[pc.Unknown+"\x00"+pk]
			if !present {
				ok = false
				break
			}
			items = append(items, it)
		}
		if !ok {
			kept = append(kept, pc)
			continue
		}
		// insert, not add: the core came from the store, writing it back
		// would only burn a dedup check.
		cs.insert(items)
		cs.warmHits.Add(1)
	}
	cs.portable = kept
}

// NumEvicted returns how many stored cores were evicted to admit newer ones.
func (cs *CoreStore) NumEvicted() int64 { return cs.evicted.Load() }
