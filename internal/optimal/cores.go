// Engine-global store of unsat cores extracted by predicate-set consistency
// probes. A core proven inconsistent in one search keeps killing the same
// sublattice in every later search over the same domain, so the store is
// shared across OptimalNegativeSolutions calls and across workers: it is
// striped into independently locked shards (keyed by the unknown the core
// belongs to, which is also where contention splits naturally), and bounded
// per shard with age/hit-count-aware eviction instead of the former silent
// global cap.
package optimal

import (
	"sync"
	"sync/atomic"
)

// coreShards is the number of independently locked stripes of the store.
const coreShards = 16

// maxStoredCores bounds the total number of stored cores across all shards.
const maxStoredCores = 1024

// coreShardCap is the per-shard entry bound; hitting it evicts the
// least-useful entry (fewest hits, oldest insertion) rather than dropping
// the new core.
const coreShardCap = maxStoredCores / coreShards

type CoreStore struct {
	shards  [coreShards]coreShard
	seq     atomic.Uint64 // global insertion clock, for age-aware eviction
	evicted atomic.Int64
}

// NewCoreStore returns an empty store. One store may be shared by several
// Engines (via Engine.ShareCores): all its methods are internally
// synchronized, and cores are keyed by interned predicate identity, which is
// process-global, so cores learned by one engine prune every sharer's
// searches.
func NewCoreStore() *CoreStore { return &CoreStore{} }

type coreShard struct {
	mu      sync.Mutex
	entries []coreEntry
}

type coreEntry struct {
	items []coreItem
	seq   uint64 // insertion time on the store's clock
	hits  int64  // times the core was handed to a search that could use it
}

// shardOf stripes by the unknown of the core's first item: cores over the
// same unknown (the only ones that can collide or deduplicate against each
// other) always land in the same shard.
func (cs *CoreStore) shardOf(items []coreItem) *coreShard {
	u := items[0].unknown
	h := uint32(2166136261)
	for i := 0; i < len(u); i++ {
		h ^= uint32(u[i])
		h *= 16777619
	}
	return &cs.shards[h%coreShards]
}

// add persists one inconsistent (unknown, predicate-set) combination and
// reports whether an older entry was evicted to make room. Duplicate cores
// are dropped.
func (cs *CoreStore) add(items []coreItem) (evicted bool) {
	if len(items) == 0 {
		return false
	}
	sh := cs.shardOf(items)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := range sh.entries {
		if sameCore(sh.entries[i].items, items) {
			return false
		}
	}
	e := coreEntry{items: items, seq: cs.seq.Add(1)}
	if len(sh.entries) < coreShardCap {
		sh.entries = append(sh.entries, e)
		return false
	}
	// Evict the entry with the fewest hits, breaking ties toward the oldest:
	// cores that never pruned anything age out first.
	victim := 0
	for i := 1; i < len(sh.entries); i++ {
		v, c := &sh.entries[victim], &sh.entries[i]
		if c.hits < v.hits || (c.hits == v.hits && c.seq < v.seq) {
			victim = i
		}
	}
	sh.entries[victim] = e
	cs.evicted.Add(1)
	return true
}

func sameCore(a, b []coreItem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// masks maps every stored core that is fully expressible in the given item
// universe into that universe's bitmask space, bumping the hit count of each
// returned core (a core a search can use is a core worth keeping).
func (cs *CoreStore) masks(indexOf map[coreItem]int, width int) []bitmask {
	var out []bitmask
	for s := range cs.shards {
		sh := &cs.shards[s]
		sh.mu.Lock()
		for i := range sh.entries {
			ent := &sh.entries[i]
			m := newBitmask(width)
			ok := true
			for _, it := range ent.items {
				j, present := indexOf[it]
				if !present {
					ok = false
					break
				}
				m[j/64] |= 1 << uint(j%64)
			}
			if ok {
				ent.hits++
				out = append(out, m)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// NumEvicted returns how many stored cores were evicted to admit newer ones.
func (cs *CoreStore) NumEvicted() int64 { return cs.evicted.Load() }
