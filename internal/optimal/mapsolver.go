// Map-solver-guided enumeration of optimal negative solutions. Instead of
// walking the predicate-subset lattice breadth-first and re-filtering every
// candidate against found solutions and known cores in Go loops, a dedicated
// SAT solver (the "map solver", after the MARCO family of MUS/MSS
// enumerators) maintains the unexplored region symbolically: one boolean per
// (unknown, predicate) choice, a sequential-counter cardinality ladder for
// the depth bound, and one blocking clause per found solution, failed
// proposal, and inconsistency core. Each model of the map is an unexplored
// lattice point; validity is upward-closed over predicate sets for negative
// unknowns, so a valid proposal shrinks to a minimal solution (blocking its
// whole up-set) and an invalid proposal blocks its whole down-set. The map
// going unsat is the termination proof: every point of the bounded lattice
// is covered by some blocked sublattice.
package optimal

import (
	"sort"

	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/template"
)

// negMap enumerates the minimal consistent solutions of one
// unknown-connected group, returning exactly the sets the legacy negBFS
// returns (see DESIGN.md §11 for the identity argument). Item universe,
// pre-checks, probe routing, and consistency screening are shared with the
// BFS; only the order the lattice is explored in differs.
func (e *Engine) negMap(phi logic.Formula, q template.Domain) []template.Solution {
	unknowns := logic.Unknowns(phi)
	empty := template.Solution{}
	for _, u := range unknowns {
		empty[u] = template.NewPredSet()
	}
	if len(unknowns) == 0 {
		if e.S.Valid(phi) {
			return []template.Solution{{}}
		}
		return nil
	}
	// The deduplicated item universe, in the same deterministic order as
	// negBFS; map variable i is item i.
	var items []taggedPred
	indexOf := map[coreItem]int{}
	for _, u := range unknowns {
		for _, p := range q[u] {
			k := coreItem{unknown: u, pred: logic.Intern(p)}
			if _, dup := indexOf[k]; dup {
				continue
			}
			indexOf[k] = len(items)
			items = append(items, taggedPred{unknown: u, pred: p})
		}
	}
	fl := e.Filler(phi)
	ctx := e.S.ContextFor(logic.Intern(phi))
	probe := func(sigma template.Solution) bool {
		f := fl.FillSolution(sigma)
		if ctx != nil {
			return ctx.Valid(f)
		}
		return e.S.Valid(f)
	}
	// Monotonicity pre-checks, as in negBFS: if the full assignment is not
	// valid no subset is, and if the empty assignment is valid it is the
	// unique minimal solution.
	full := empty.Clone()
	for _, it := range items {
		full[it.unknown] = full[it.unknown].Add(it.pred)
	}
	if !probe(full) {
		return nil
	}
	if probe(empty) {
		return []template.Solution{empty}
	}

	// The map solver. FixedPolarity pins every branch decision to false, so
	// models carry as few items as propagation allows: proposals arrive
	// near-minimal and shrink cheaply.
	ms := sat.New()
	ms.FixedPolarity = true
	for range items {
		ms.NewVar()
	}
	pos := func(i int) sat.Lit { return sat.MkLit(i, false) }
	neg := func(i int) sat.Lit { return sat.MkLit(i, true) }
	addAtMost(ms, len(items), e.maxDepth())
	// The empty set was probed invalid above; its down-set is itself, so the
	// blocking clause is "at least one item".
	least := make([]sat.Lit, len(items))
	for i := range items {
		least[i] = pos(i)
	}
	ms.AddClause(least...)
	// Seed with the persisted cores expressible in this universe: each kills
	// its whole superset sublattice before the first proposal.
	scratch := make([]sat.Lit, 0, len(items))
	blockMask := func(m bitmask) {
		scratch = scratch[:0]
		for i := range items {
			if m[i/64]&(1<<uint(i%64)) != 0 {
				scratch = append(scratch, neg(i))
			}
		}
		ms.AddClause(scratch...)
	}
	for _, m := range e.cores.masks(indexOf, len(items)) {
		blockMask(m)
	}

	type found struct {
		sigma template.Solution
		sel   []int
	}
	var sols []found
	sel := make([]int, 0, e.maxDepth())
	for {
		if e.Stop != nil && e.Stop() {
			break
		}
		if ms.Solve() != sat.Sat {
			break // every bounded lattice point is blocked: enumeration complete
		}
		sel = sel[:0]
		for i := range items {
			if ms.Value(i) {
				sel = append(sel, i)
			}
		}
		cand := negSolutionOf(empty, items, sel)
		if e.screenConsistency(ms, cand, sel, items, indexOf) {
			continue
		}
		if !probe(cand) {
			// Invalid, and validity is upward-closed: every subset is
			// invalid too. Grow the proposal to a maximal invalid set
			// within the depth bound first — FixedPolarity keeps proposals
			// near-minimal, so the raw down-set would be tiny, while every
			// item the grown set absorbs doubles the blocked sublattice.
			// Growth is guided by the probe alone: an extension is taken
			// exactly when it stays invalid, so the blocked down-set never
			// contains a valid point.
			grown := e.growSel(probe, empty, items, cand, sel)
			scratch = scratch[:0]
			inSel := newBitmask(len(items))
			for _, i := range grown {
				inSel[i/64] |= 1 << uint(i%64)
			}
			for i := range items {
				if inSel[i/64]&(1<<uint(i%64)) == 0 {
					scratch = append(scratch, pos(i))
				}
			}
			ms.AddClause(scratch...)
			continue
		}
		// Valid: shrink to a minimal valid subset. Local minimality is
		// global here (upward-closed validity), and subsets of a consistent
		// proposal stay consistent, so no re-screening is needed.
		min := e.shrinkSel(probe, empty, items, sel)
		sols = append(sols, found{sigma: negSolutionOf(empty, items, min), sel: min})
		// Block the up-set: any superset of a minimal solution is either
		// that solution or non-minimal.
		scratch = scratch[:0]
		for _, i := range min {
			scratch = append(scratch, neg(i))
		}
		ms.AddClause(scratch...)
	}

	// Emit in the legacy BFS discovery order — by size, then lexicographic
	// item indices — so downstream consumers (seed merging, ψ_Prog clause
	// layout) see byte-identical inputs in both modes.
	sort.Slice(sols, func(a, b int) bool {
		sa, sb := sols[a].sel, sols[b].sel
		if len(sa) != len(sb) {
			return len(sa) < len(sb)
		}
		for k := range sa {
			if sa[k] != sb[k] {
				return sa[k] < sb[k]
			}
		}
		return false
	})
	out := make([]template.Solution, len(sols))
	for i, f := range sols {
		out[i] = f.sigma
	}
	return truncateSolutions(out, e.maxSolutions())
}

// growSel extends an invalid selection to a maximal invalid set within the
// depth bound, trying items in canonical order and keeping exactly the
// extensions whose probe stays invalid. The caller blocks the grown set's
// down-set; since invalidity is downward-closed and every kept extension was
// probed invalid, no valid lattice point is ever blocked.
func (e *Engine) growSel(probe func(template.Solution) bool, empty template.Solution, items []taggedPred, cand template.Solution, sel []int) []int {
	out := append([]int(nil), sel...)
	if len(out) >= e.maxDepth() {
		return out
	}
	in := make([]bool, len(items))
	for _, i := range out {
		in[i] = true
	}
	for i := 0; i < len(items) && len(out) < e.maxDepth(); i++ {
		if in[i] {
			continue
		}
		if e.Stop != nil && e.Stop() {
			break
		}
		trial := cand.Clone()
		trial[items[i].unknown] = trial[items[i].unknown].Add(items[i].pred)
		if !probe(trial) {
			cand = trial
			out = append(out, i)
			in[i] = true
		}
	}
	return out
}

// negSolutionOf materializes the solution selecting the given item indices.
func negSolutionOf(empty template.Solution, items []taggedPred, sel []int) template.Solution {
	s := empty.Clone()
	for _, i := range sel {
		s[items[i].unknown] = s[items[i].unknown].Add(items[i].pred)
	}
	return s
}

// screenConsistency rejects proposals with a contradictory per-unknown
// predicate set (the same screen negBFS applies before probing): every
// inconsistent unknown contributes a blocking clause to the map solver — the
// unsat core's up-set when the probe yields one, the exact per-unknown
// selection otherwise — and fresh cores are persisted for later searches.
// Reports whether the proposal was rejected.
func (e *Engine) screenConsistency(ms *sat.Solver, cand template.Solution, sel []int, items []taggedPred, indexOf map[coreItem]int) bool {
	blocked := false
	for _, u := range sortedUnknowns(cand) {
		if cand[u].Len() < 2 {
			continue
		}
		sat2, core, fresh := e.satisfiableSet(cand[u])
		if sat2 {
			continue
		}
		blocked = true
		e.corePruned.Add(1)
		var cls []sat.Lit
		if len(core) > 0 {
			usable := true
			for _, p := range core {
				i, present := indexOf[coreItem{unknown: u, pred: logic.Intern(p)}]
				if !present {
					usable = false
					break
				}
				cls = append(cls, sat.MkLit(i, true))
			}
			if usable {
				ms.AddClause(cls...)
			} else {
				cls = nil
			}
			if fresh {
				e.storeCoreStats(u, core)
			}
		}
		if cls == nil {
			// No core: block the exact per-unknown selection and above.
			for _, i := range sel {
				if items[i].unknown == u {
					cls = append(cls, sat.MkLit(i, true))
				}
			}
			ms.AddClause(cls...)
		}
	}
	return blocked
}

// sortedUnknowns returns the solution's unknowns in deterministic order.
func sortedUnknowns(s template.Solution) []string {
	us := make([]string, 0, len(s))
	for u := range s {
		us = append(us, u)
	}
	sort.Strings(us)
	return us
}

// shrinkSel greedily removes items from a valid selection while validity
// holds, trying indices in canonical order. Because validity is
// upward-closed, the fixed point is a globally minimal valid set.
func (e *Engine) shrinkSel(probe func(template.Solution) bool, empty template.Solution, items []taggedPred, sel []int) []int {
	out := append([]int(nil), sel...)
	for i := 0; i < len(out); {
		if len(out) == 1 {
			break // the empty set was already probed invalid
		}
		if e.Stop != nil && e.Stop() {
			break
		}
		trial := make([]int, 0, len(out)-1)
		trial = append(trial, out[:i]...)
		trial = append(trial, out[i+1:]...)
		if probe(negSolutionOf(empty, items, trial)) {
			out = trial
		} else {
			i++
		}
	}
	return out
}

// addAtMost adds a sequential-counter (Sinz) ladder constraining at most k
// of the first n solver variables to be true. reg[i][j] reads "at least j+1
// of x_0..x_i are true"; only the forward implications are needed for an
// upper bound.
func addAtMost(s *sat.Solver, n, k int) {
	if n <= k {
		return
	}
	reg := make([][]int, n-1)
	for i := range reg {
		w := k
		if i+1 < k {
			w = i + 1
		}
		reg[i] = make([]int, w)
		for j := range reg[i] {
			reg[i][j] = s.NewVar()
		}
	}
	P := func(v int) sat.Lit { return sat.MkLit(v, false) }
	N := func(v int) sat.Lit { return sat.MkLit(v, true) }
	s.AddClause(N(0), P(reg[0][0]))
	for i := 1; i < n-1; i++ {
		s.AddClause(N(i), P(reg[i][0]))
		s.AddClause(N(reg[i-1][0]), P(reg[i][0]))
		for j := 1; j < len(reg[i]); j++ {
			s.AddClause(N(i), N(reg[i-1][j-1]), P(reg[i][j]))
			if j < len(reg[i-1]) {
				s.AddClause(N(reg[i-1][j]), P(reg[i][j]))
			}
		}
		if len(reg[i-1]) == k {
			s.AddClause(N(i), N(reg[i-1][k-1]))
		}
	}
	if len(reg[n-2]) == k {
		s.AddClause(N(n-1), N(reg[n-2][k-1]))
	}
}
