package vc

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/ssa"
)

func pathSet(paths []Path) map[string]int {
	out := map[string]int{}
	for _, p := range paths {
		out[p.From+"->"+p.To]++
	}
	return out
}

func TestStraightLineProgram(t *testing.T) {
	p := lang.MustParse(`
		program P(n) {
			x := 1;
			assert(x >= 1);
		}`)
	paths := PathsOf(p)
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	if paths[0].From != Entry || paths[0].To != Exit {
		t.Errorf("path endpoints: %v", paths[0])
	}
	f := paths[0].VC(logic.True, logic.True)
	// (x#1 = 1) ⇒ (x#1 ≥ 1 ∧ true)
	if !strings.Contains(f.String(), "x#1 = 1") || !strings.Contains(f.String(), "x#1 >= 1") {
		t.Errorf("VC = %v", f)
	}
}

func TestIfCreatesTwoPaths(t *testing.T) {
	p := lang.MustParse(`
		program P(n) {
			if (n > 0) {
				x := 1;
			} else {
				x := 2;
			}
		}`)
	paths := PathsOf(p)
	if got := pathSet(paths)["entry->exit"]; got != 2 {
		t.Errorf("if should yield 2 entry->exit paths, got %d", got)
	}
}

func TestNestedLoopPaths(t *testing.T) {
	p := lang.MustParse(`
		program P(n) {
			i := 0;
			while outer (i < n) {
				j := 0;
				while inner (j < n) {
					j := j + 1;
				}
				i := i + 1;
			}
		}`)
	got := pathSet(PathsOf(p))
	want := map[string]int{
		"entry->outer": 1,
		"outer->inner": 1, // enter the inner loop
		"inner->inner": 1, // inner body
		"inner->outer": 1, // inner exit back to outer header
		"outer->exit":  1,
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("path %s: got %d, want %d (all: %v)", k, got[k], n, got)
		}
	}
}

func TestNondetBranchesNoAssume(t *testing.T) {
	p := lang.MustParse(`
		program P(n) {
			if (*) {
				x := 1;
			} else {
				x := 2;
			}
		}`)
	for _, path := range PathsOf(p) {
		for _, s := range path.Stmts {
			if _, ok := s.(ssa.Assume); ok {
				t.Errorf("nondeterministic branch should carry no assume: %v", path)
			}
		}
	}
}

func TestWPRules(t *testing.T) {
	post := logic.LtF(logic.V("x#1"), logic.V("n"))
	stmts := []ssa.Stmt{
		ssa.Assume{F: logic.GtF(logic.V("n"), logic.I(0))},
		ssa.Assign{X: "x#1", E: logic.I(0)},
		ssa.Assert{F: logic.GeF(logic.V("x#1"), logic.I(0))},
	}
	f := WP(stmts, post)
	want := "(n > 0) => ((x#1 = 0) => ((x#1 >= 0) && (x#1 < n)))"
	if f.String() != want {
		t.Errorf("WP = %q, want %q", f.String(), want)
	}
}

func TestWPArrayAssign(t *testing.T) {
	stmts := []ssa.Stmt{
		ssa.ArrAssign{A: "A#1", Prev: "A", Idx: logic.V("i"), E: logic.I(0)},
	}
	f := WP(stmts, logic.EqF(logic.Sel(logic.AV("A#1"), logic.V("i")), logic.I(0)))
	if !strings.Contains(f.String(), "A#1 = upd(A, i, 0)") {
		t.Errorf("WP = %v", f)
	}
}

func TestLoopSigma(t *testing.T) {
	p := lang.MustParse(`
		program P(n) {
			i := 0;
			while loop (i < n) {
				i := i + 1;
			}
		}`)
	for _, path := range PathsOf(p) {
		if path.From == "loop" && path.To == "loop" {
			if path.Sigma.Int["i"] != "i#1" {
				t.Errorf("loop path sigma = %v", path.Sigma.Int)
			}
		}
		if path.From == "loop" && path.To == Exit {
			// No assignments on the exit path: identity renaming.
			if !path.Sigma.IsIdentity() {
				t.Errorf("exit path sigma should be identity: %v", path.Sigma)
			}
		}
	}
}

func TestVars(t *testing.T) {
	p := lang.MustParse(`
		program P(array A, n) {
			i := 0;
			while loop (i < n) {
				A[i] := q;
				i := i + 1;
			}
			assert(forall j. (0 <= j && j < n) => A[j] = q);
		}`)
	ints, arrs := Vars(p)
	wantInts := []string{"i", "n", "q"}
	if len(ints) != len(wantInts) {
		t.Fatalf("ints = %v", ints)
	}
	for i := range wantInts {
		if ints[i] != wantInts[i] {
			t.Errorf("ints = %v, want %v", ints, wantInts)
		}
	}
	if len(arrs) != 1 || arrs[0] != "A" {
		t.Errorf("arrs = %v", arrs)
	}
}

func TestSequentialLoopsDirectEdge(t *testing.T) {
	p := lang.MustParse(`
		program P(n) {
			while a (n > 0) {
				n := n - 1;
			}
			while b (n < 10) {
				n := n + 1;
			}
		}`)
	got := pathSet(PathsOf(p))
	for _, k := range []string{"entry->a", "a->a", "a->b", "b->b", "b->exit"} {
		if got[k] != 1 {
			t.Errorf("path %s: got %d (all: %v)", k, got[k], got)
		}
	}
}
