// Package vc turns a program into verification conditions. It builds the
// control-flow graph, takes the cut-set to be the loop headers plus the
// implicit entry and exit points, enumerates all straight-line paths between
// neighbouring cut-points in SSA form (Paths(Prog) of §2.2), and computes
// weakest preconditions over those paths (§2.3).
package vc

import (
	"fmt"
	"strings"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/ssa"
)

// Reserved cut-point names for the program entry and exit.
const (
	Entry = "entry"
	Exit  = "exit"
)

// Path is one element of Paths(Prog): a straight-line SSA path δ between the
// cut-points From and To, with exit renaming σt.
type Path struct {
	From, To string
	Stmts    []ssa.Stmt
	Sigma    ssa.Renaming
}

func (p Path) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s -> %s:", p.From, p.To)
	for _, s := range p.Stmts {
		fmt.Fprintf(&b, " %v;", s)
	}
	return b.String()
}

// WP computes the weakest precondition of post over the SSA statements,
// using the paper's SSA-form rules (Eq. 1): assignments become implications
// from defining equalities, so template unknowns in post survive untouched.
func WP(stmts []ssa.Stmt, post logic.Formula) logic.Formula {
	f := post
	for i := len(stmts) - 1; i >= 0; i-- {
		switch s := stmts[i].(type) {
		case ssa.Assign:
			f = logic.Imp(logic.EqF(logic.V(s.X), s.E), f)
		case ssa.ArrAssign:
			f = logic.Imp(logic.ArrEqF(logic.AV(s.A), logic.Upd(logic.AV(s.Prev), s.Idx, s.E)), f)
		case ssa.Assume:
			f = logic.Imp(s.F, f)
		case ssa.Assert:
			f = logic.Conj(s.F, f)
		}
	}
	return f
}

// VC returns the verification condition pre ⇒ WP(δ, post) for this path.
// post must already be expressed over the path's SSA exit versions (i.e.,
// the caller applies σt to the target cut-point's formula first).
func (p Path) VC(pre, post logic.Formula) logic.Formula {
	return logic.Imp(pre, WP(p.Stmts, post))
}

// block is a CFG node. Cut-point blocks carry no statements; they are pure
// markers where invariant templates attach.
type block struct {
	id    int
	cut   string // nonempty for cut-point blocks
	stmts []lang.Stmt
	succs []int
}

type builder struct {
	blocks []*block
}

func (b *builder) newBlock(cut string) *block {
	blk := &block{id: len(b.blocks), cut: cut}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *builder) link(from, to *block) {
	from.succs = append(from.succs, to.id)
}

// ensurePlain returns cur if statements may be appended to it, or a fresh
// plain successor when cur is a cut-point marker or already has successors.
func (b *builder) ensurePlain(cur *block) *block {
	if cur.cut == "" && len(cur.succs) == 0 {
		return cur
	}
	nb := b.newBlock("")
	b.link(cur, nb)
	return nb
}

// buildStmts lowers stmts starting at cur and returns the block where
// control continues.
func (b *builder) buildStmts(stmts []lang.Stmt, cur *block) *block {
	for _, s := range stmts {
		switch s := s.(type) {
		case lang.Assign, lang.ArrAssign, lang.Havoc, lang.Assume, lang.Assert:
			cur = b.ensurePlain(cur)
			cur.stmts = append(cur.stmts, s)
		case lang.If:
			thenB := b.newBlock("")
			elseB := b.newBlock("")
			if s.Cond != nil {
				thenB.stmts = append(thenB.stmts, lang.Assume{F: s.Cond})
				elseB.stmts = append(elseB.stmts, lang.Assume{F: logic.Neg(s.Cond)})
			}
			b.link(cur, thenB)
			b.link(cur, elseB)
			thenEnd := b.buildStmts(s.Then, thenB)
			elseEnd := b.buildStmts(s.Else, elseB)
			join := b.newBlock("")
			b.link(thenEnd, join)
			b.link(elseEnd, join)
			cur = join
		case lang.While:
			header := b.newBlock(s.Label)
			b.link(cur, header)
			bodyB := b.newBlock("")
			afterB := b.newBlock("")
			if s.Cond != nil {
				bodyB.stmts = append(bodyB.stmts, lang.Assume{F: s.Cond})
				afterB.stmts = append(afterB.stmts, lang.Assume{F: logic.Neg(s.Cond)})
			}
			b.link(header, bodyB)
			b.link(header, afterB)
			bodyEnd := b.buildStmts(s.Body, bodyB)
			b.link(bodyEnd, header)
			cur = afterB
		default:
			panic(fmt.Sprintf("vc: unknown statement %T", s))
		}
	}
	return cur
}

// PathsOf computes Paths(Prog): every straight-line path between
// neighbouring cut-points, in SSA form with exit renaming σt. Cut-points are
// the loop labels plus Entry and Exit.
func PathsOf(p *lang.Program) []Path {
	b := &builder{}
	entry := b.newBlock(Entry)
	end := b.buildStmts(p.Body, entry)
	exit := b.newBlock(Exit)
	b.link(end, exit)

	var paths []Path
	for _, blk := range b.blocks {
		if blk.cut == "" {
			continue
		}
		// DFS from each cut-point through plain blocks, stopping at the
		// next cut-point. Every CFG cycle passes through a loop header, so
		// the traversal is finite.
		var walk func(cur *block, acc []lang.Stmt)
		walk = func(cur *block, acc []lang.Stmt) {
			if cur.cut != "" {
				conv := ssa.NewConverter()
				for _, s := range acc {
					conv.Simple(s)
				}
				stmts, sigma := conv.Result()
				paths = append(paths, Path{From: blk.cut, To: cur.cut, Stmts: stmts, Sigma: sigma})
				return
			}
			acc2 := append(append([]lang.Stmt(nil), acc...), cur.stmts...)
			for _, succ := range cur.succs {
				walk(b.blocks[succ], acc2)
			}
		}
		for _, succ := range blk.succs {
			nb := b.blocks[succ]
			if nb.cut != "" {
				// Direct cut-to-cut edge (e.g. nested loop exit straight
				// into the outer header): an empty path.
				paths = append(paths, Path{From: blk.cut, To: nb.cut, Sigma: ssa.NewRenaming()})
				continue
			}
			walk(nb, nil)
		}
	}
	return paths
}

// Vars returns all integer and array variable names mentioned by the
// program (parameters, assignment targets, and free variables of its
// expressions), sorted.
func Vars(p *lang.Program) (ints, arrs []string) {
	iv, av := map[string]bool{}, map[string]bool{}
	for _, v := range p.IntParams {
		iv[v] = true
	}
	for _, a := range p.ArrParams {
		av[a] = true
	}
	addTerm := func(t logic.Term) {
		logic.TermVars(t, iv, av)
	}
	addFormula := func(f logic.Formula) {
		fv, fa := logic.FreeVars(f)
		for v := range fv {
			iv[v] = true
		}
		for a := range fa {
			av[a] = true
		}
	}
	var walk func([]lang.Stmt)
	walk = func(stmts []lang.Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case lang.Assign:
				iv[s.X] = true
				addTerm(s.E)
			case lang.Havoc:
				iv[s.X] = true
			case lang.ArrAssign:
				av[s.A] = true
				addTerm(s.Idx)
				addTerm(s.E)
			case lang.Assume:
				addFormula(s.F)
			case lang.Assert:
				addFormula(s.F)
			case lang.If:
				if s.Cond != nil {
					addFormula(s.Cond)
				}
				walk(s.Then)
				walk(s.Else)
			case lang.While:
				if s.Cond != nil {
					addFormula(s.Cond)
				}
				walk(s.Body)
			}
		}
	}
	walk(p.Body)
	return logic.SortedKeys(iv), logic.SortedKeys(av)
}
