package precond

import (
	"testing"

	"repro/internal/fixpoint"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/optimal"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/template"
)

// guardedInit is a tiny precondition-inference task: the loop initializes
// A[0..n) but the assertion demands A[0..m); the weakest precondition in
// the template space over {m≤n, n≤m} is m ≤ n.
func guardedInit() *spec.Problem {
	prog := lang.MustParse(`
		program GuardedInit(array A, n, m) {
			i := 0;
			while loop (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall k. (0 <= k && k < m) => A[k] = 0);
		}`)
	mk := lang.MustParseFormula
	return &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"entry": logic.Unknown{Name: "pre"},
			"loop":  mk("?v0 && (forall k. ?v1 => A[k] = 0)"),
		},
		Q: template.Domain{
			"pre": {mk("m <= n"), mk("n <= m"), mk("m <= 0")},
			"v0":  {mk("m <= n"), mk("i <= n"), mk("0 <= i")},
			"v1":  {mk("0 <= k"), mk("k < i"), mk("k < n"), mk("k < m")},
		},
	}
}

func newEngine() *optimal.Engine { return optimal.New(smt.NewSolver(smt.Options{})) }

func TestMaximallyWeakFindsPre(t *testing.T) {
	eng := newEngine()
	pres, _, err := MaximallyWeak(guardedInit(), eng, fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pres) == 0 {
		t.Fatal("no precondition found")
	}
	mLeN := lang.MustParseFormula("m <= n")
	found := false
	for _, p := range pres {
		// The reported precondition must be no stronger than m ≤ n and
		// sufficient (it is, by construction of MaximallyWeak).
		if eng.S.Valid(logic.Imp(mLeN, p.Pre)) {
			found = true
		}
		// The witness solution must actually validate the program.
		if ok, fail := guardedInit().CheckAll(eng.S, p.Solution); !ok {
			t.Errorf("witness solution fails at %v", fail)
		}
	}
	if !found {
		t.Errorf("no precondition at least as weak as m<=n: %v", pres)
	}
	// Maximality: no returned precondition is strictly weaker than another.
	for i := range pres {
		for j := range pres {
			if i != j && weaker(eng, pres[j].Pre, pres[i].Pre) {
				t.Errorf("precondition %v is beaten by %v", pres[i].Pre, pres[j].Pre)
			}
		}
	}
}

func TestWeakerStrongerHelpers(t *testing.T) {
	eng := newEngine()
	mk := lang.MustParseFormula
	a, b := mk("x > 0"), mk("x > 1")
	if !weaker(eng, a, b) {
		t.Error("x>0 should be strictly weaker than x>1")
	}
	if weaker(eng, b, a) {
		t.Error("x>1 is not weaker than x>0")
	}
	if weaker(eng, a, a) {
		t.Error("a formula is not strictly weaker than itself")
	}
	if !stronger(eng, b, a) {
		t.Error("x>1 should be strictly stronger than x>0")
	}
}

func TestFilterExtremalDedupes(t *testing.T) {
	eng := newEngine()
	mk := lang.MustParseFormula
	tmpl := logic.Unknown{Name: "p"}
	mkSol := func(src string) template.Solution {
		return template.Solution{"p": template.NewPredSet(mk(src))}
	}
	sols := []template.Solution{
		mkSol("x >= 1"),
		mkSol("x > 0"), // equivalent over the integers: deduped
		mkSol("x > 5"), // strictly stronger: beaten for "weaker" extremal
	}
	keep := filterExtremal(eng, tmpl, sols, weaker)
	if len(keep) != 1 {
		t.Fatalf("kept %d, want 1: %v", len(keep), keep)
	}
}

func TestMaximallyStrongPost(t *testing.T) {
	prog := lang.MustParse(`
		program Inc(x) {
			assume(x >= 0);
			x := x + 1;
		}`)
	mk := lang.MustParseFormula
	p := &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"exit": logic.Unknown{Name: "post"},
		},
		Q: template.Domain{
			"post": {mk("x >= 0"), mk("x >= 1"), mk("x >= 2"), mk("x <= 0")},
		},
	}
	eng := newEngine()
	posts, _, err := MaximallyStrong(p, eng, fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) == 0 {
		t.Fatal("no postcondition")
	}
	// The strongest valid postcondition in the space is x ≥ 1 (with x ≥ 0
	// redundant alongside).
	want := mk("x >= 1")
	ok := false
	for _, post := range posts {
		if eng.S.Valid(logic.Imp(post.Post, want)) {
			ok = true
		}
	}
	if !ok {
		t.Errorf("no postcondition as strong as x>=1: %v", posts)
	}
}
