// Package precond implements §6 of the paper: inference of maximally-weak
// preconditions (and dually, maximally-strong postconditions). A template
// with unknowns is attached to the program entry (or exit); the greatest
// (least) fixed-point algorithm is run to exhaustion so that every
// fixed-point solution is collected, and the entry (exit) instantiations
// are filtered to the implication-maximal ones using the SMT solver.
package precond

import (
	"repro/internal/fixpoint"
	"repro/internal/logic"
	"repro/internal/optimal"
	"repro/internal/spec"
	"repro/internal/template"
	"repro/internal/vc"
)

// Precondition is one maximally-weak precondition with the invariant
// solution that witnesses it.
type Precondition struct {
	// Pre is the instantiated entry template.
	Pre logic.Formula
	// Solution is the full invariant solution (including loop invariants).
	Solution template.Solution
}

// Enumeration reports how complete a §6 exhaustive run was. The extremal
// sets are computed from whatever fixed-point solutions the underlying run
// produced; a truncated or aborted enumeration may therefore be missing
// maximally-weak (-strong) members, and callers surfacing results to users
// should say so.
type Enumeration struct {
	// Truncated reports that the fixed-point search was clipped (candidate
	// cap hit or MaxSteps exhausted with candidates pending).
	Truncated bool
	// Aborted reports that Options.Stop fired and the search was abandoned.
	Aborted bool
	// Steps is the number of worklist iterations the underlying run executed.
	Steps int
}

// MaximallyWeak returns the maximally-weak preconditions of the problem's
// entry template: instantiations σ(τe) such that all assertions hold and no
// other discovered solution is strictly weaker at entry (Defn. 3). The
// problem's entry template must contain unknowns.
func MaximallyWeak(p *spec.Problem, eng *optimal.Engine, opts fixpoint.Options) ([]Precondition, Enumeration, error) {
	opts.All = true
	res, err := fixpoint.GreatestFixedPoint(p, eng, opts)
	enum := Enumeration{Truncated: res.Truncated, Aborted: res.Aborted, Steps: res.Steps}
	if err != nil {
		return nil, enum, err
	}
	entry := p.TemplateAt(vc.Entry)
	keep := filterExtremal(eng, entry, res.All, weaker)
	out := make([]Precondition, 0, len(keep))
	for _, s := range keep {
		out = append(out, Precondition{Pre: logic.Simplify(s.Fill(entry)), Solution: s})
	}
	return out, enum, nil
}

// Postcondition is one maximally-strong postcondition with its witness.
type Postcondition struct {
	// Post is the instantiated exit template.
	Post logic.Formula
	// Solution is the full invariant solution.
	Solution template.Solution
}

// MaximallyStrong returns the maximally-strong postconditions of the
// problem's exit template via the least fixed-point algorithm run to
// exhaustion (the dual of MaximallyWeak, §6).
func MaximallyStrong(p *spec.Problem, eng *optimal.Engine, opts fixpoint.Options) ([]Postcondition, Enumeration, error) {
	opts.All = true
	res, err := fixpoint.LeastFixedPoint(p, eng, opts)
	enum := Enumeration{Truncated: res.Truncated, Aborted: res.Aborted, Steps: res.Steps}
	if err != nil {
		return nil, enum, err
	}
	exit := p.TemplateAt(vc.Exit)
	keep := filterExtremal(eng, exit, res.All, stronger)
	out := make([]Postcondition, 0, len(keep))
	for _, s := range keep {
		out = append(out, Postcondition{Post: logic.Simplify(s.Fill(exit)), Solution: s})
	}
	return out, enum, nil
}

// weaker reports whether a is strictly weaker than b (b ⇒ a but not a ⇒ b).
func weaker(eng *optimal.Engine, a, b logic.Formula) bool {
	return eng.S.Valid(logic.Imp(b, a)) && !eng.S.Valid(logic.Imp(a, b))
}

// stronger reports whether a is strictly stronger than b.
func stronger(eng *optimal.Engine, a, b logic.Formula) bool {
	return weaker(eng, b, a)
}

// filterExtremal keeps the solutions whose template instantiation is not
// strictly beaten by another solution's, deduplicating logically equivalent
// instantiations.
func filterExtremal(eng *optimal.Engine, tmpl logic.Formula, sols []template.Solution,
	beats func(eng *optimal.Engine, a, b logic.Formula) bool) []template.Solution {

	insts := make([]logic.Formula, len(sols))
	for i, s := range sols {
		insts[i] = s.Fill(tmpl)
	}
	var keep []template.Solution
	var keptInsts []logic.Formula
	for i, s := range sols {
		beaten := false
		for j := range sols {
			if i != j && beats(eng, insts[j], insts[i]) {
				beaten = true
				break
			}
		}
		if beaten {
			continue
		}
		// Deduplicate logically equivalent instantiations.
		dup := false
		for _, k := range keptInsts {
			if eng.S.Valid(logic.Imp(k, insts[i])) && eng.S.Valid(logic.Imp(insts[i], k)) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		keep = append(keep, s)
		keptInsts = append(keptInsts, insts[i])
	}
	return keep
}
