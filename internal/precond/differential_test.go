package precond

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fixpoint"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/optimal"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/template"
)

// randAtom draws a small comparison atom over the given variables — the
// difference fragment every benchmark vocabulary lives in.
func randAtom(rng *rand.Rand, vars []string) logic.Formula {
	ops := []string{"=", "<", "<=", ">", ">="}
	lhs := vars[rng.Intn(len(vars))]
	k := rng.Intn(5) - 2
	if rng.Intn(2) == 0 {
		return lang.MustParseFormula(fmt.Sprintf("%s %s %d", lhs, ops[rng.Intn(len(ops))], k))
	}
	rhs := vars[rng.Intn(len(vars))]
	return lang.MustParseFormula(fmt.Sprintf("%s %s %s + %d", lhs, ops[rng.Intn(len(ops))], rhs, k))
}

// randProblem builds a random loop-free precondition-inference task: one
// assignment, one assertion, an entry template over a random vocabulary.
// Loop-free tasks keep each trial fast while still exercising the full §6
// pipeline (exhaustive GFP + extremal filtering).
func randProblem(rng *rand.Rand) *spec.Problem {
	c := rng.Intn(5) - 2
	prog := lang.MustParse(fmt.Sprintf(`
		program T(x, y) {
			x := x + %d;
			assert(%s);
		}`, c, randAtom(rng, []string{"x", "y"})))
	n := 2 + rng.Intn(3)
	preds := make([]logic.Formula, n)
	for i := range preds {
		preds[i] = randAtom(rng, []string{"x", "y"})
	}
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"entry": logic.Unknown{Name: "pre"}},
		Q:         template.Domain{"pre": preds},
	}
}

// equivalentSets reports whether two precondition sets are equal modulo
// logical equivalence: same size after the enumerators' own dedup, and every
// member of one side has an equivalent member on the other.
func equivalentSets(s *smt.Solver, a, b []Precondition) bool {
	if len(a) != len(b) {
		return false
	}
	for _, pa := range a {
		found := false
		for _, pb := range b {
			if s.Valid(logic.Imp(pa.Pre, pb.Pre)) && s.Valid(logic.Imp(pb.Pre, pa.Pre)) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestMapVsBFSPreconditions is the §6 leg of the differential sweep
// (`make test-differential`): the map-solver-guided enumeration and the
// legacy BFS must produce the same maximally-weak precondition sets — as
// sets, modulo logical equivalence — on randomized tasks. The §6 pipeline
// leans on the enumerators harder than plain verification does (Options.All
// exhausts every fixed point, then filterExtremal compares them pairwise),
// so an enumeration discrepancy that plain verification masks shows up here
// as a missing or extra precondition.
func TestMapVsBFSPreconditions(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized §6 differential sweep skipped in -short mode (run via make test-differential)")
	}
	rng := rand.New(rand.NewSource(71))
	cmp := smt.NewSolver(smt.Options{})
	nonEmpty := 0
	for trial := 0; trial < 60; trial++ {
		p := randProblem(rng)
		mapEng := optimal.New(smt.NewSolver(smt.Options{}))
		bfsEng := optimal.New(smt.NewSolver(smt.Options{}))
		bfsEng.Opts.NoMapSolver = true

		mapPres, mapEnum, err := MaximallyWeak(p, mapEng, fixpoint.Options{})
		if err != nil {
			t.Fatalf("trial %d (map): %v", trial, err)
		}
		bfsPres, bfsEnum, err := MaximallyWeak(p, bfsEng, fixpoint.Options{})
		if err != nil {
			t.Fatalf("trial %d (bfs): %v", trial, err)
		}
		if mapEnum.Truncated || mapEnum.Aborted || bfsEnum.Truncated || bfsEnum.Aborted {
			t.Fatalf("trial %d: incomplete enumeration (map %+v, bfs %+v)", trial, mapEnum, bfsEnum)
		}
		if !equivalentSets(cmp, mapPres, bfsPres) {
			t.Errorf("trial %d: precondition sets differ\n  map: %v\n  bfs: %v\n  problem: %s",
				trial, renderPres(mapPres), renderPres(bfsPres), p.Prog)
		}
		if len(mapPres) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Error("every trial produced an empty precondition set; sweep vacuous")
	}
	t.Logf("%d/60 trials produced preconditions", nonEmpty)
}

// TestMapVsBFSGuardedInit pins the sweep's property on the package's
// canonical loopy task, so the loop/quantifier path is differentially
// covered too (the randomized trials stay loop-free for speed).
func TestMapVsBFSGuardedInit(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	mapEng := newEngine()
	bfsEng := newEngine()
	bfsEng.Opts.NoMapSolver = true
	mapPres, _, err := MaximallyWeak(guardedInit(), mapEng, fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bfsPres, _, err := MaximallyWeak(guardedInit(), bfsEng, fixpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mapPres) == 0 {
		t.Fatal("no preconditions found")
	}
	if !equivalentSets(mapEng.S, mapPres, bfsPres) {
		t.Errorf("precondition sets differ\n  map: %v\n  bfs: %v",
			renderPres(mapPres), renderPres(bfsPres))
	}
}

func renderPres(pres []Precondition) []string {
	out := make([]string, len(pres))
	for i, p := range pres {
		out[i] = p.Pre.String()
	}
	return out
}
