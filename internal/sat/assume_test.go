package sat

import (
	"math/rand"
	"testing"
)

// TestSolveReuseSatUnsatSat is the regression test for the stale
// assumption-conflict state bug: one solver reused across Sat → Unsat (by
// assumptions) → Sat must answer each query independently, with the Unsat
// call leaving no residue (core, mid-level trail) behind.
func TestSolveReuseSatUnsatSat(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(nlit(a), lit(b))
	s.AddClause(nlit(b), lit(c))

	if st := s.Solve(lit(a)); st != Sat {
		t.Fatalf("first probe: got %v, want sat", st)
	}
	st, core := s.SolveAssuming(lit(a), nlit(c))
	if st != Unsat {
		t.Fatalf("second probe: got %v, want unsat", st)
	}
	if len(core) == 0 {
		t.Fatal("assumption-unsat probe returned no core")
	}
	if len(s.trailLim) != 0 {
		t.Fatalf("unsat probe left trail at level %d", len(s.trailLim))
	}
	st, core = s.SolveAssuming(lit(a))
	if st != Sat {
		t.Fatalf("third probe: got %v, want sat", st)
	}
	if core != nil {
		t.Fatalf("sat probe carried a stale core %v", core)
	}
	if !s.Value(a) || !s.Value(b) || !s.Value(c) {
		t.Error("model should satisfy a→b→c with a assumed")
	}
}

// TestSolveAssumingCoreSubset checks the core is a subset of the assumptions
// and actually unsatisfiable: re-solving under only the core literals must
// still be unsat (cores are sound — any superset of a core is unsat too).
func TestSolveAssumingCoreSubset(t *testing.T) {
	s := New()
	a, b, c, d := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
	// a ∧ b is contradictory; c and d are free.
	s.AddClause(nlit(a), nlit(b))

	assumptions := []Lit{lit(c), lit(a), lit(d), lit(b)}
	st, core := s.SolveAssuming(assumptions...)
	if st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	inAssumptions := map[Lit]bool{}
	for _, l := range assumptions {
		inAssumptions[l] = true
	}
	for _, l := range core {
		if !inAssumptions[l] {
			t.Fatalf("core literal %v is not an assumption", l)
		}
	}
	if len(core) > 2 {
		t.Errorf("core %v should only involve a and b", core)
	}
	if st, _ := s.SolveAssuming(core...); st != Unsat {
		t.Error("re-solving under the core alone should stay unsat")
	}
	// Dropping any single core literal must make the probe satisfiable:
	// the core {a, b} is minimal for this instance.
	for i := range core {
		rest := append(append([]Lit(nil), core[:i]...), core[i+1:]...)
		if st, _ := s.SolveAssuming(rest...); st != Sat {
			t.Errorf("core minus %v should be sat", core[i])
		}
	}
}

// TestSolveAssumingPropagatedConflict exercises analyzeFinal through a
// propagation chain: the falsified assumption is implied transitively, so the
// core must be traced through reason clauses, not read off the trail directly.
func TestSolveAssumingPropagatedConflict(t *testing.T) {
	s := New()
	const n = 20
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(nlit(vars[i]), lit(vars[i+1])) // x_i → x_{i+1}
	}
	free := s.NewVar()
	st, core := s.SolveAssuming(lit(free), lit(vars[0]), nlit(vars[n-1]))
	if st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	for _, l := range core {
		if l.Var() == free {
			t.Fatalf("core %v contains the irrelevant assumption", core)
		}
	}
	if len(core) != 2 {
		t.Errorf("core %v should be {x0, ¬x%d}", core, n-1)
	}
}

// TestSolveAssumingContradictoryAssumptions: a and ¬a in the assumption list
// conflict with each other without any clauses involved.
func TestSolveAssumingContradictoryAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.NewVar()
	st, core := s.SolveAssuming(lit(a), nlit(a))
	if st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	if len(core) != 2 {
		t.Fatalf("core %v should be exactly {a, ¬a}", core)
	}
	if st, _ := s.SolveAssuming(core...); st != Unsat {
		t.Error("core should be unsat on its own")
	}
}

// TestSolveAssumingLevelZeroConflict: an assumption contradicted by a unit
// clause (level 0) yields the singleton core, and the instance itself stays
// satisfiable.
func TestSolveAssumingLevelZeroConflict(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(nlit(a))
	st, core := s.SolveAssuming(lit(a))
	if st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	if len(core) != 1 || core[0] != lit(a) {
		t.Fatalf("core = %v, want [a]", core)
	}
	if st, _ := s.SolveAssuming(); st != Sat {
		t.Error("instance without assumptions should be sat")
	}
}

// TestSolveAssumingInstanceUnsat: when the clause set itself is unsat the
// verdict carries a nil core — no assumption subset is to blame.
func TestSolveAssumingInstanceUnsat(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(lit(a), lit(b))
	s.AddClause(lit(a), nlit(b))
	s.AddClause(nlit(a), lit(b))
	s.AddClause(nlit(a), nlit(b))
	st, core := s.SolveAssuming(lit(a))
	if st != Unsat {
		t.Fatalf("got %v, want unsat", st)
	}
	if core != nil {
		t.Errorf("instance-level unsat should have nil core, got %v", core)
	}
}

// TestReduceDB: with MaxLearnts set, a conflict-heavy run keeps the learnt
// database bounded while preserving the verdict.
func TestReduceDB(t *testing.T) {
	// PHP(7,6): enough conflicts to trip the reduction threshold repeatedly.
	const pigeons, holes = 7, 6
	s := New()
	s.MaxLearnts = 20
	v := make([][]int, pigeons)
	for p := range v {
		v[p] = make([]int, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		clause := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			clause[h] = lit(v[p][h])
		}
		s.AddClause(clause...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(nlit(v[p1][h]), nlit(v[p2][h]))
			}
		}
	}
	if s.Solve() != Unsat {
		t.Fatal("PHP(7,6) should be unsat")
	}
	if s.Stats.Reduces == 0 {
		t.Error("expected at least one reduceDB sweep")
	}
	if s.Stats.Deleted == 0 {
		t.Error("expected reduceDB to delete clauses")
	}
	// No deleted clause may linger in the kept database or watch lists.
	for _, c := range s.learnts {
		if c.deleted {
			t.Fatal("deleted clause still in learnt database")
		}
	}
	for _, ws := range s.watches {
		for _, w := range ws {
			if w.c.deleted {
				t.Fatal("deleted clause still watched")
			}
		}
	}
}

// TestReusedVsFreshRandom cross-checks a long-lived solver answering randomized
// assumption probes against a fresh solver per probe: verdicts must agree on
// every query, and every reported core must itself be unsat from scratch.
func TestReusedVsFreshRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 30; round++ {
		nVars := 4 + rng.Intn(8)
		nClauses := 3 + rng.Intn(25)
		clauses := make([][]Lit, nClauses)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses[i] = c
		}
		build := func(maxLearnts int) (*Solver, bool) {
			s := New()
			s.MaxLearnts = maxLearnts
			for i := 0; i < nVars; i++ {
				s.NewVar()
			}
			for _, c := range clauses {
				if !s.AddClause(c...) {
					return s, false
				}
			}
			return s, true
		}
		reused, ok := build(8)
		if !ok {
			continue // instance contradictory at construction; nothing to probe
		}
		for probe := 0; probe < 40; probe++ {
			nAssume := rng.Intn(4)
			assume := make([]Lit, nAssume)
			for i := range assume {
				assume[i] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			st, core := reused.SolveAssuming(assume...)
			fresh, _ := build(0)
			want := fresh.Solve(assume...)
			if st != want {
				t.Fatalf("round %d probe %d: reused=%v fresh=%v assume=%v clauses=%v",
					round, probe, st, want, assume, clauses)
			}
			if st == Unsat && core != nil {
				coreCheck, _ := build(0)
				if got := coreCheck.Solve(core...); got != Unsat {
					t.Fatalf("round %d probe %d: core %v not unsat from scratch (%v)",
						round, probe, core, got)
				}
			}
		}
	}
}
