// Package sat implements a CDCL (conflict-driven clause learning) SAT solver
// with two-literal watching, first-UIP conflict analysis, VSIDS-style
// activity-based branching, phase saving, and geometric restarts.
//
// It serves two roles in the verifier: as the propositional core of the lazy
// SMT solver (package smt), and as the backend that solves the ψ_Prog
// encoding of the constraint-based fixed-point algorithm (package cbi, §5 of
// the paper).
package sat

import "sort"

// Lit is a literal: variable v (0-based) with sign. The positive literal of v
// is 2v, the negative literal is 2v+1.
type Lit int32

// MkLit builds a literal from a variable index and a sign.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

// Status is a solver verdict.
type Status int

// Solver verdicts.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

type value int8

const (
	unassigned value = iota
	vTrue
	vFalse
)

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	// MaxLearnts, when > 0, bounds the learnt-clause database: once it
	// exceeds the (adaptive) bound, the least-active half is deleted and the
	// bound grows geometrically. Zero keeps every learnt clause — the
	// historical behavior, which one-shot solving relies on for
	// reproducibility; persistent incremental contexts set a bound so they
	// don't grow without limit across thousands of probes.
	MaxLearnts int

	// FixedPolarity disables phase saving: every branch decision assigns its
	// variable the initial (false) phase, so models are biased toward few
	// true variables. The map solver of the optimal-solutions enumeration
	// relies on this to propose near-minimal lattice points first.
	FixedPolarity bool

	clauses  []*clause
	learnts  []*clause
	watches  [][]watcher // indexed by literal
	assigns  []value     // indexed by variable
	level    []int       // decision level per variable
	reason   []*clause   // antecedent clause per variable
	activity []float64   // VSIDS score per variable
	polarity []bool      // saved phase per variable (true = last assigned false)
	trail    []Lit
	trailLim []int
	qhead    int
	varInc   float64
	claInc   float64
	order    *varHeap
	ok       bool // false once an empty clause is added

	conflict   []Lit // failed-assumption core of the last SolveAssuming
	maxLearnts int   // current adaptive reduceDB bound (from MaxLearnts)

	// seen is the per-variable scratch marker shared by analyze and
	// analyzeFinal (all-false between uses); litStamp/stamp is the
	// per-literal epoch marker used by AddClause's dedup. Both avoid a map
	// allocation per conflict/clause, which dominated the solver's profile.
	seen     []bool
	litStamp []uint32
	stamp    uint32

	// Stats counts solver work for diagnostics and the paper's figures.
	Stats struct {
		Conflicts    int64
		Decisions    int64
		Propagations int64
		Restarts     int64
		Reduces      int64 // reduceDB sweeps
		Deleted      int64 // learnt clauses deleted by reduceDB
	}
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1, ok: true}
	s.order = newVarHeap(&s.activity)
	return s
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem (non-learnt) clauses added.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of learnt clauses currently retained.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// Clauses returns a copy of the problem (non-learnt) clauses, in the order
// they were added. Useful for comparing two instances structurally.
func (s *Solver) Clauses() [][]Lit {
	out := make([][]Lit, len(s.clauses))
	for i, c := range s.clauses {
		out[i] = append([]Lit(nil), c.lits...)
	}
	return out
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, unassigned)
	s.level = append(s.level, -1)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, true)
	s.watches = append(s.watches, nil, nil)
	s.seen = append(s.seen, false)
	s.litStamp = append(s.litStamp, 0, 0)
	s.order.insert(v)
	return v
}

func (s *Solver) litValue(l Lit) value {
	v := s.assigns[l.Var()]
	if v == unassigned {
		return unassigned
	}
	if l.Neg() {
		if v == vTrue {
			return vFalse
		}
		return vTrue
	}
	return v
}

// AddClause adds a clause over existing variables. It returns false if the
// clause makes the formula trivially unsatisfiable. Must be called at
// decision level 0 (i.e., before Solve or between Solve calls).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.trailLim) != 0 {
		s.cancelUntil(0)
	}
	// Normalize: drop duplicate and false literals; detect tautologies. The
	// per-literal epoch stamp makes the dedup allocation-free even for the
	// long blocking clauses the DPLL(T) loop and the map solver add.
	s.stamp++
	out := lits[:0:0]
	for _, l := range lits {
		if s.litStamp[l.Not()] == s.stamp {
			return true // tautology
		}
		if s.litStamp[l] == s.stamp {
			continue
		}
		switch s.litValue(l) {
		case vTrue:
			return true // already satisfied at level 0
		case vFalse:
			continue
		}
		s.litStamp[l] = s.stamp
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0].Not()] = append(s.watches[c.lits[0].Not()], watcher{c: c, blocker: c.lits[1]})
	s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c: c, blocker: c.lits[0]})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = vFalse
	} else {
		s.assigns[v] = vTrue
	}
	s.level[v] = len(s.trailLim)
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if confl != nil {
				kept = append(kept, ws[i:]...)
				break
			}
			if s.litValue(w.blocker) == vTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			if c.deleted {
				continue
			}
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.litValue(first) == vTrue {
				kept = append(kept, watcher{c: c, blocker: first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.litValue(c.lits[k]) != vFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Not()] = append(s.watches[c.lits[1].Not()], watcher{c: c, blocker: first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			kept = append(kept, watcher{c: c, blocker: first})
			if s.litValue(first) == vFalse {
				confl = c
				s.qhead = len(s.trail)
			} else {
				s.uncheckedEnqueue(first, c)
				s.Stats.Propagations++
			}
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) cancelUntil(lvl int) {
	if len(s.trailLim) <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		v := s.trail[i].Var()
		if !s.FixedPolarity {
			s.polarity[v] = s.assigns[v] == vFalse
		}
		s.assigns[v] = unassigned
		s.reason[v] = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (first literal is the asserting one) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot for the asserting literal
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1
	curLevel := len(s.trailLim)

	for {
		if confl.learnt {
			s.bumpClause(confl)
		}
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= curLevel {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find the next literal on the trail to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Not()
	// Restore the all-false invariant of the shared scratch marker: only the
	// collected lower-level literals are still marked.
	for _, l := range learnt[1:] {
		s.seen[l.Var()] = false
	}

	// Compute backtrack level: second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	return learnt, btLevel
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) decayVar() { s.varInc /= 0.95 }

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClause() { s.claInc /= 0.999 }

// locked reports whether c is the propagation reason of its asserting
// literal; locked clauses must survive reduceDB.
func (s *Solver) locked(c *clause) bool {
	v := c.lits[0].Var()
	return s.assigns[v] != unassigned && s.reason[v] == c
}

// reduceDB deletes the least-active half of the learnt clauses, keeping
// binary and locked ones. Deleted clauses are removed from the watch lists
// immediately (propagate also skips stragglers lazily), so a persistent
// incremental solver does not accumulate dead clause memory across probes.
func (s *Solver) reduceDB() {
	s.Stats.Reduces++
	sorted := append([]*clause(nil), s.learnts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].act < sorted[j].act })
	for _, c := range sorted[:len(sorted)/2] {
		if len(c.lits) == 2 || s.locked(c) {
			continue
		}
		c.deleted = true
		s.Stats.Deleted++
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !c.deleted {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
	for l := range s.watches {
		ws := s.watches[l]
		out := ws[:0]
		for _, w := range ws {
			if !w.c.deleted {
				out = append(out, w)
			}
		}
		s.watches[l] = out
	}
}

func (s *Solver) pickBranchVar() int {
	for s.order.size() > 0 {
		v := s.order.pop()
		if s.assigns[v] == unassigned {
			return v
		}
	}
	return -1
}

// Solve searches for a satisfying assignment under the given assumptions.
func (s *Solver) Solve(assumptions ...Lit) Status {
	st, _ := s.SolveAssuming(assumptions...)
	return st
}

// SolveAssuming is Solve with final-conflict analysis: when the verdict is
// Unsat because of the assumptions, the returned core is the subset of the
// assumption literals used to derive the conflict — the instance implies
// ¬(∧ core), so any superset of the core is also unsatisfiable. An Unsat
// verdict with a nil core means the instance is unsatisfiable regardless of
// the assumptions.
//
// Assumption-conflict state from a previous call (the stored core and any
// partially applied assumption trail) is reset on entry and the trail is
// rewound to level 0 before returning an Unsat verdict, so one solver can be
// reused across arbitrary Sat/Unsat/Sat probe sequences.
func (s *Solver) SolveAssuming(assumptions ...Lit) (Status, []Lit) {
	s.conflict = nil
	if !s.ok {
		return Unsat, nil
	}
	s.cancelUntil(0)
	maxConflicts := int64(100)
	for {
		st := s.search(maxConflicts, assumptions)
		if st != Unknown {
			if st == Unsat {
				s.cancelUntil(0)
			}
			return st, s.conflict
		}
		maxConflicts = maxConflicts * 3 / 2
		s.Stats.Restarts++
	}
}

// analyzeFinal computes the failed-assumption core after assumption a was
// found falsified: starting from a's variable it walks the trail top-down,
// expanding propagated variables through their reason clauses and collecting
// decision variables — which, at the moment an assumption conflicts, are all
// assumption decisions (branch decisions only exist above the last
// assumption level and are backtracked before an assumption can turn false).
// Level-0 facts are implied by the instance alone and excluded.
func (s *Solver) analyzeFinal(a Lit) []Lit {
	out := []Lit{a}
	if len(s.trailLim) == 0 {
		return out
	}
	s.seen[a.Var()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			if s.level[v] > 0 {
				out = append(out, s.trail[i])
			}
		} else {
			for _, q := range s.reason[v].lits {
				if q.Var() != v && s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[a.Var()] = false // a may sit below trailLim[0] (enqueued at level 0)
	// The falsified assumption can itself appear as an assumption decision
	// (e.g. contradictory assumption lists); dedupe by literal.
	s.stamp++
	uniq := out[:0]
	for _, l := range out {
		if s.litStamp[l] != s.stamp {
			s.litStamp[l] = s.stamp
			uniq = append(uniq, l)
		}
	}
	return uniq
}

func (s *Solver) search(maxConflicts int64, assumptions []Lit) Status {
	conflicts := int64(0)
	for {
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflicts++
			if len(s.trailLim) == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, act: s.claInc}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayVar()
			s.decayClause()
			if s.MaxLearnts > 0 {
				if s.maxLearnts < s.MaxLearnts {
					s.maxLearnts = s.MaxLearnts
				}
				if len(s.learnts) >= s.maxLearnts {
					s.reduceDB()
					s.maxLearnts = s.maxLearnts*11/10 + 16
				}
			}
			continue
		}
		if conflicts >= maxConflicts {
			s.cancelUntil(0)
			return Unknown
		}
		// Re-apply assumptions not yet on the trail.
		next := Lit(-1)
		for _, a := range assumptions {
			switch s.litValue(a) {
			case vTrue:
				continue
			case vFalse:
				// The assumption is falsified by the instance plus the
				// assumptions already applied; extract which ones.
				s.conflict = s.analyzeFinal(a)
				return Unsat
			default:
				next = a
			}
			break
		}
		if next == -1 {
			v := s.pickBranchVar()
			if v == -1 {
				return Sat
			}
			s.Stats.Decisions++
			next = MkLit(v, s.polarity[v])
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// Value reports the model value of variable v after Solve returns Sat.
func (s *Solver) Value(v int) bool { return s.assigns[v] == vTrue }

// Model returns the satisfying assignment after Solve returns Sat.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.assigns))
	for v := range s.assigns {
		m[v] = s.assigns[v] == vTrue
	}
	return m
}

// varHeap is a max-heap over variable activities. Positions are tracked in a
// dense slice (-1 = absent) rather than a map: swap sits on the propagate/
// backtrack hot path.
type varHeap struct {
	act     *[]float64
	heap    []int
	indices []int // variable → heap position, -1 when absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) size() int { return len(h.heap) }

func (h *varHeap) less(a, b int) bool { return (*h.act)[h.heap[a]] > (*h.act)[h.heap[b]] }

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.indices[h.heap[a]] = a
	h.indices[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h.heap) && h.less(l, best) {
			best = l
		}
		if r < len(h.heap) && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}

func (h *varHeap) insert(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) update(v int) {
	if v < len(h.indices) {
		if i := h.indices[v]; i >= 0 {
			h.up(i)
			h.down(i)
		}
	}
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.indices[v] = -1
	if last > 0 {
		h.down(0)
	}
	return v
}
