package sat

import (
	"math/rand"
	"testing"
)

func lit(v int) Lit  { return MkLit(v, false) }
func nlit(v int) Lit { return MkLit(v, true) }

func TestLitEncoding(t *testing.T) {
	l := MkLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Errorf("positive literal of 5: var=%d neg=%v", l.Var(), l.Neg())
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() {
		t.Errorf("negation: var=%d neg=%v", n.Var(), n.Neg())
	}
	if n.Not() != l {
		t.Error("double negation should round-trip")
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a))
	if s.Solve() != Sat {
		t.Fatal("single unit clause should be sat")
	}
	if !s.Value(a) {
		t.Error("a should be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a))
	if !s.AddClause(nlit(a)) {
		// AddClause may already report the contradiction.
		return
	}
	if s.Solve() != Unsat {
		t.Fatal("a && !a should be unsat")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.NewVar()
	if s.AddClause() {
		t.Error("empty clause should report failure")
	}
	if s.Solve() != Unsat {
		t.Error("solver with empty clause should be unsat")
	}
}

func TestTautologyDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(lit(a), nlit(a))
	if s.Solve() != Sat {
		t.Error("tautological clause should leave the instance sat")
	}
}

func TestImplicationChain(t *testing.T) {
	// x0 && (x0→x1) && ... && (x_{n-1}→x_n) forces all true.
	s := New()
	const n = 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	s.AddClause(lit(vars[0]))
	for i := 0; i+1 < n; i++ {
		s.AddClause(nlit(vars[i]), lit(vars[i+1]))
	}
	if s.Solve() != Sat {
		t.Fatal("chain should be sat")
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("x%d should be forced true", i)
		}
	}
	// Now force the last variable false: unsat.
	s.AddClause(nlit(vars[n-1]))
	if s.Solve() != Unsat {
		t.Error("contradicted chain should be unsat")
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons in 3 holes is unsat; classic CDCL stressor.
	const pigeons, holes = 4, 3
	s := New()
	v := make([][]int, pigeons)
	for p := range v {
		v[p] = make([]int, holes)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		clause := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			clause[h] = lit(v[p][h])
		}
		s.AddClause(clause...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(nlit(v[p1][h]), nlit(v[p2][h]))
			}
		}
	}
	if s.Solve() != Unsat {
		t.Error("PHP(4,3) should be unsat")
	}
}

func TestGraphColoringSat(t *testing.T) {
	// A 5-cycle is 3-colorable.
	const n, colors = 5, 3
	s := New()
	v := make([][]int, n)
	for i := range v {
		v[i] = make([]int, colors)
		for c := range v[i] {
			v[i][c] = s.NewVar()
		}
		clause := make([]Lit, colors)
		for c := range v[i] {
			clause[c] = lit(v[i][c])
		}
		s.AddClause(clause...)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		for c := 0; c < colors; c++ {
			s.AddClause(nlit(v[i][c]), nlit(v[j][c]))
		}
	}
	if s.Solve() != Sat {
		t.Fatal("5-cycle should be 3-colorable")
	}
	// Check the model is a proper coloring.
	color := make([]int, n)
	for i := range v {
		color[i] = -1
		for c := range v[i] {
			if s.Value(v[i][c]) {
				color[i] = c
				break
			}
		}
		if color[i] == -1 {
			t.Fatalf("node %d uncolored", i)
		}
	}
	for i := 0; i < n; i++ {
		if color[i] == color[(i+1)%n] {
			t.Errorf("adjacent nodes %d,%d share color %d", i, (i+1)%n, color[i])
		}
	}
}

func TestOddCycleNot2Colorable(t *testing.T) {
	const n, colors = 5, 2
	s := New()
	v := make([][]int, n)
	for i := range v {
		v[i] = make([]int, colors)
		for c := range v[i] {
			v[i][c] = s.NewVar()
		}
		s.AddClause(lit(v[i][0]), lit(v[i][1]))
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		for c := 0; c < colors; c++ {
			s.AddClause(nlit(v[i][c]), nlit(v[j][c]))
		}
	}
	if s.Solve() != Unsat {
		t.Error("odd cycle should not be 2-colorable")
	}
}

func TestIncrementalBlocking(t *testing.T) {
	// Enumerate all models of a 3-variable unconstrained instance by
	// blocking each found model; exactly 8 models.
	s := New()
	vars := []int{s.NewVar(), s.NewVar(), s.NewVar()}
	count := 0
	for s.Solve() == Sat {
		count++
		if count > 8 {
			t.Fatal("more than 8 models of 3 free variables")
		}
		blocking := make([]Lit, len(vars))
		for i, v := range vars {
			blocking[i] = MkLit(v, s.Value(v))
		}
		if !s.AddClause(blocking...) {
			break
		}
	}
	if count != 8 {
		t.Errorf("enumerated %d models, want 8", count)
	}
}

// TestRandom3SATAgainstBruteForce cross-checks the solver on random small
// instances against exhaustive enumeration.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		nVars := 3 + rng.Intn(6) // 3..8
		nClauses := 2 + rng.Intn(30)
		clauses := make([][]Lit, nClauses)
		for i := range clauses {
			width := 1 + rng.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				c[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses[i] = c
		}
		want := bruteForceSat(nVars, clauses)
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		ok := true
		for _, c := range clauses {
			if !s.AddClause(c...) {
				ok = false
				break
			}
		}
		var got bool
		if !ok {
			got = false
		} else {
			got = s.Solve() == Sat
		}
		if got != want {
			t.Fatalf("round %d: solver=%v bruteforce=%v clauses=%v", round, got, want, clauses)
		}
		if got {
			// Verify the model satisfies every clause.
			for _, c := range clauses {
				sat := false
				for _, l := range c {
					if s.Value(l.Var()) != l.Neg() {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("round %d: model does not satisfy %v", round, c)
				}
			}
		}
	}
}

func bruteForceSat(nVars int, clauses [][]Lit) bool {
	for assign := 0; assign < 1<<nVars; assign++ {
		ok := true
		for _, c := range clauses {
			cs := false
			for _, l := range c {
				val := assign>>(l.Var())&1 == 1
				if val != l.Neg() {
					cs = true
					break
				}
			}
			if !cs {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
