package lia

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mk builds a Lin from variable/coefficient pairs and a constant.
func mk(k int64, pairs ...any) Lin {
	l := NewLin()
	l.K = k
	for i := 0; i+1 < len(pairs); i += 2 {
		l.AddVar(pairs[i].(string), int64(pairs[i+1].(int)))
	}
	return l
}

func TestLinBasics(t *testing.T) {
	l := NewLin()
	l.AddVar("x", 1)
	l.AddVar("x", -1)
	if !l.IsConst() {
		t.Error("cancelled variable should leave a constant form")
	}
	l.AddVar("y", 2)
	m := l.Clone()
	m.Scale(3)
	if l.Coef["y"] != 2 || m.Coef["y"] != 6 {
		t.Errorf("clone/scale interaction: %v %v", l, m)
	}
}

func TestLinKeyCanonical(t *testing.T) {
	a := mk(1, "x", 1, "y", -1)
	b := NewLin()
	b.AddVar("y", -1)
	b.AddVar("x", 1)
	b.K = 1
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestNegateRoundTrip(t *testing.T) {
	// ¬(¬(l ≤ 0)) over the integers is l ≤ 0 again.
	l := mk(3, "x", 2, "y", -5)
	back := l.Negate().Negate()
	if l.Key() != back.Key() {
		t.Errorf("double negation changed the constraint: %q vs %q", l.Key(), back.Key())
	}
}

func TestCheckSimple(t *testing.T) {
	cases := []struct {
		name string
		cons []Lin
		sat  bool
	}{
		{"empty", nil, true},
		{"x<=5", []Lin{mk(-5, "x", 1)}, true},
		{"x<=0 and x>=1", []Lin{mk(0, "x", 1), mk(1, "x", -1)}, false},
		{"x<=y, y<=z, z<=x", []Lin{mk(0, "x", 1, "y", -1), mk(0, "y", 1, "z", -1), mk(0, "z", 1, "x", -1)}, true},
		{"strict cycle", []Lin{mk(1, "x", 1, "y", -1), mk(1, "y", 1, "x", -1)}, false},
		{"const violated", []Lin{mk(1)}, false},
		{"const fine", []Lin{mk(0)}, true},
		{"x-y<=-1, y-z<=-1, x>=z", []Lin{mk(1, "x", 1, "y", -1), mk(1, "y", 1, "z", -1), mk(0, "z", 1, "x", -1)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Check(tc.cons)
			if res.Sat != tc.sat {
				t.Errorf("Check = %v, want sat=%v", res, tc.sat)
			}
			if !res.Sat && len(res.Conflict) == 0 {
				t.Error("unsat result must name a conflict subset")
			}
		})
	}
}

func TestConflictIsMinimalForDifferenceCycle(t *testing.T) {
	// Three constraints form the negative cycle; two extras are irrelevant.
	cons := []Lin{
		mk(0, "a", 1, "b", -1), // a <= b (irrelevant)
		mk(1, "x", 1, "y", -1), // x < y
		mk(1, "y", 1, "z", -1), // y < z
		mk(0, "z", 1, "x", -1), // z <= x
		mk(-7, "q", 1),         // q <= 7 (irrelevant)
	}
	res := Check(cons)
	if res.Sat {
		t.Fatal("should be unsat")
	}
	for _, ci := range res.Conflict {
		if ci == 0 || ci == 4 {
			t.Errorf("irrelevant constraint %d in conflict %v", ci, res.Conflict)
		}
	}
	if len(res.Conflict) != 3 {
		t.Errorf("conflict should have exactly the 3-edge cycle, got %v", res.Conflict)
	}
}

func TestGeneralLinearFM(t *testing.T) {
	// 2x + 3y <= 6, x >= 2, y >= 1 → 4+3 <= 6 false.
	cons := []Lin{
		mk(-6, "x", 2, "y", 3),
		mk(2, "x", -1),
		mk(1, "y", -1),
	}
	if res := Check(cons); res.Sat {
		t.Error("2x+3y<=6, x>=2, y>=1 should be unsat")
	}
	// Relax: x >= 1 → 2+3 <= 6 fine.
	cons[1] = mk(1, "x", -1)
	if res := Check(cons); !res.Sat {
		t.Error("2x+3y<=6, x>=1, y>=1 should be sat")
	}
}

func TestIntegerTightening(t *testing.T) {
	// 2x <= 1 and x >= 1: over the rationals x=0.5 works, over ints no.
	cons := []Lin{
		mk(-1, "x", 2),
		mk(1, "x", -1),
	}
	if res := Check(cons); res.Sat {
		t.Error("2x<=1 && x>=1 should be unsat over the integers")
	}
}

func TestThreeVarFM(t *testing.T) {
	// k2 + i <= n-1, k2 >= n-1-i: boundary is satisfiable.
	cons := []Lin{
		mk(1, "k2", 1, "i", 1, "n", -1),   // k2 + i - n + 1 <= 0
		mk(-1, "n", 1, "i", -1, "k2", -1), // n - i - k2 - 1 <= 0
	}
	if res := Check(cons); !res.Sat {
		t.Error("boundary equality should be satisfiable")
	}
	// Force a gap: k2 + i <= n - 2 and k2 + i >= n - 1.
	cons = []Lin{
		mk(2, "k2", 1, "i", 1, "n", -1),
		mk(-1, "n", 1, "i", -1, "k2", -1),
	}
	if res := Check(cons); res.Sat {
		t.Error("contradictory 3-var bounds should be unsat")
	}
}

// TestRandomDifferenceAgainstEvaluation generates random difference systems
// and checks that "sat" answers admit the witness implied by shortest paths:
// we simply re-verify internal consistency by brute force over a small box.
func TestRandomDifferenceAgainstBox(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	names := []string{"a", "b", "c"}
	for round := 0; round < 300; round++ {
		var cons []Lin
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			l := NewLin()
			x, y := names[rng.Intn(3)], names[rng.Intn(3)]
			if x == y {
				l.AddVar(x, 1)
			} else {
				l.AddVar(x, 1)
				l.AddVar(y, -1)
			}
			l.K = int64(rng.Intn(7) - 3)
			cons = append(cons, l)
		}
		got := Check(cons).Sat
		want := boxSat(cons, names, -6, 6)
		// The box bound [-6,6] may miss models of genuinely sat systems;
		// only a box model with an unsat verdict is a definite bug.
		if want && !got {
			t.Fatalf("round %d: box found a model but Check said unsat: %v", round, cons)
		}
	}
}

func boxSat(cons []Lin, names []string, lo, hi int64) bool {
	assign := map[string]int64{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(names) {
			for _, c := range cons {
				v := c.K
				for name, coef := range c.Coef {
					v += coef * assign[name]
				}
				if v > 0 {
					return false
				}
			}
			return true
		}
		for v := lo; v <= hi; v++ {
			assign[names[i]] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func TestLinKeyQuickCheck(t *testing.T) {
	// Property: Key is insensitive to insertion order of variables.
	f := func(coefs [4]int8, k int8) bool {
		names := []string{"p", "q", "r", "s"}
		fwd, rev := NewLin(), NewLin()
		fwd.K, rev.K = int64(k), int64(k)
		for i, c := range coefs {
			fwd.AddVar(names[i], int64(c))
		}
		for i := len(coefs) - 1; i >= 0; i-- {
			rev.AddVar(names[i], int64(coefs[i]))
		}
		return fwd.Key() == rev.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
