package lia

// DiffChecker decides many truth assignments of one fixed set of atoms in
// the difference fragment. The DPLL(T) loop checks the same atom set against
// a fresh SAT model every theory iteration; Check(cons) rebuilt the
// constraint graph — string-keyed node/distance/predecessor maps plus a
// Negate clone per false atom — on every call, which dominated the solver's
// allocation profile. A DiffChecker is built once per atom set: variables
// are densely numbered (node 0 is the virtual zero node), each atom's
// positive and negated edge are precomputed, and every Check reuses the
// distance/predecessor scratch, so the per-iteration cost is one
// Bellman–Ford pass with zero allocations.
//
// Check runs the exact relaxation sequence checkDifference runs (same edge
// order, same virtual-source initialization, same conflict-cycle walk), so
// the conflicts — and hence the learnt clauses and iteration counts of a
// DPLL(T) run — are identical to the Check-per-iteration implementation.
type DiffChecker struct {
	pos, neg []diffAtom
	n        int // node count, including the virtual zero node 0

	// scratch reused across Check calls (a DiffChecker is single-goroutine,
	// like the solver run that owns it).
	dist   []int64
	pred   []int32
	sel    []diffEdge
	selIdx []int32
	seen   []bool
}

type diffEdge struct {
	from, to int32
	w        int64
}

// diffAtom is one atom in one polarity: either a constant constraint
// (violated iff k > 0) or a graph edge.
type diffAtom struct {
	isConst bool
	k       int64
	edge    diffEdge
}

// NewDiffChecker preprocesses the atoms (each taken as lin ≤ 0 with its
// integer negation as the false polarity). It reports false when any atom
// falls outside the difference fragment — callers then keep using Check —
// which is polarity-independent: a constraint is a difference constraint
// iff its negation is.
func NewDiffChecker(atoms []Lin) (*DiffChecker, bool) {
	for _, a := range atoms {
		if !a.isDifference() {
			return nil, false
		}
	}
	d := &DiffChecker{
		pos: make([]diffAtom, len(atoms)),
		neg: make([]diffAtom, len(atoms)),
	}
	vars := map[string]int32{}
	node := func(v string) int32 {
		if v == "" {
			return 0
		}
		id, ok := vars[v]
		if !ok {
			id = int32(len(vars) + 1)
			vars[v] = id
		}
		return id
	}
	conv := func(l Lin) diffAtom {
		if l.IsConst() {
			return diffAtom{isConst: true, k: l.K}
		}
		var pos, neg string
		for v, k := range l.Coef {
			if k == 1 {
				pos = v
			} else {
				neg = v
			}
		}
		// pos − neg + K ≤ 0  ⇒  edge neg →(−K) pos, as in checkDifference.
		return diffAtom{edge: diffEdge{from: node(neg), to: node(pos), w: -l.K}}
	}
	for i, a := range atoms {
		d.pos[i] = conv(a)
		d.neg[i] = conv(a.Negate())
	}
	d.n = len(vars) + 1
	d.dist = make([]int64, d.n)
	d.pred = make([]int32, d.n)
	d.sel = make([]diffEdge, 0, len(atoms))
	d.selIdx = make([]int32, 0, len(atoms))
	d.seen = make([]bool, len(atoms))
	return d, true
}

// Check decides the conjunction selecting each atom's positive form where
// assign[i] is true and its negation where false. Conflict indices refer to
// atom positions. len(assign) must equal the preprocessed atom count.
func (d *DiffChecker) Check(assign []bool) Result {
	// Constant constraints are decided immediately, in atom order (the same
	// pre-pass Check performs on its cons slice).
	for i, v := range assign {
		a := d.atom(i, v)
		if a.isConst && a.k > 0 {
			return Result{Sat: false, Conflict: []int{i}}
		}
	}
	sel, selIdx := d.sel[:0], d.selIdx[:0]
	for i, v := range assign {
		a := d.atom(i, v)
		if a.isConst {
			continue
		}
		sel = append(sel, a.edge)
		selIdx = append(selIdx, int32(i))
	}
	dist, pred := d.dist, d.pred
	for n := 0; n < d.n; n++ {
		dist[n] = 0 // virtual source with 0-weight edges to all nodes
		pred[n] = -1
	}
	relaxed := int32(-1)
	for iter := 0; iter < d.n; iter++ {
		relaxed = -1
		for ei, e := range sel {
			if dist[e.from]+e.w < dist[e.to] {
				dist[e.to] = dist[e.from] + e.w
				pred[e.to] = int32(ei)
				relaxed = e.to
			}
		}
		if relaxed == -1 {
			return Result{Sat: true}
		}
	}
	// Negative cycle: walk predecessors from the last relaxed node.
	node := relaxed
	for i := 0; i < d.n; i++ {
		node = sel[pred[node]].from
	}
	seen := d.seen
	for i := range seen {
		seen[i] = false
	}
	var conflict []int
	cur := node
	for {
		ei := pred[cur]
		if seen[selIdx[ei]] {
			break
		}
		seen[selIdx[ei]] = true
		conflict = append(conflict, int(selIdx[ei]))
		cur = sel[ei].from
	}
	sortInts(conflict)
	return Result{Sat: false, Conflict: conflict}
}

func (d *DiffChecker) atom(i int, positive bool) *diffAtom {
	if positive {
		return &d.pos[i]
	}
	return &d.neg[i]
}

func sortInts(xs []int) {
	// Insertion sort: conflicts are tiny (a handful of cycle edges).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
