package lia

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomDiffAtoms generates atoms in the difference fragment: x−y+k ≤ 0,
// ±x+k ≤ 0, and pure constants k ≤ 0.
func randomDiffAtoms(rng *rand.Rand, n int) []Lin {
	names := []string{"a", "b", "c", "d", "e"}
	atoms := make([]Lin, 0, n)
	for i := 0; i < n; i++ {
		l := NewLin()
		switch rng.Intn(4) {
		case 0: // x − y + k ≤ 0
			x, y := rng.Intn(len(names)), rng.Intn(len(names))
			for x == y {
				y = rng.Intn(len(names))
			}
			l.AddVar(names[x], 1)
			l.AddVar(names[y], -1)
		case 1: // x + k ≤ 0
			l.AddVar(names[rng.Intn(len(names))], 1)
		case 2: // −x + k ≤ 0
			l.AddVar(names[rng.Intn(len(names))], -1)
		case 3: // k ≤ 0
		}
		l.K = int64(rng.Intn(7) - 3)
		atoms = append(atoms, l)
	}
	return atoms
}

// TestDiffCheckerMatchesCheck pins DiffChecker.Check to Check: for random
// difference atom sets and random polarities, both the verdict and the
// conflict set must be identical, since the DPLL(T) loop's learnt clauses —
// and with them every downstream iteration — depend on the exact conflict.
func TestDiffCheckerMatchesCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		atoms := randomDiffAtoms(rng, 1+rng.Intn(8))
		dc, ok := NewDiffChecker(atoms)
		if !ok {
			t.Fatalf("trial %d: difference atoms rejected: %v", trial, atoms)
		}
		assign := make([]bool, len(atoms))
		for round := 0; round < 8; round++ {
			cons := make([]Lin, len(atoms))
			for i := range atoms {
				assign[i] = rng.Intn(2) == 0
				if assign[i] {
					cons[i] = atoms[i]
				} else {
					cons[i] = atoms[i].Negate()
				}
			}
			want := Check(cons)
			got := dc.Check(assign)
			if got.Sat != want.Sat || !reflect.DeepEqual(got.Conflict, want.Conflict) {
				t.Fatalf("trial %d round %d: atoms=%v assign=%v:\n got %+v\nwant %+v",
					trial, round, atoms, assign, got, want)
			}
		}
	}
}

func TestDiffCheckerRejectsNonDifference(t *testing.T) {
	l := NewLin()
	l.AddVar("x", 2)
	l.AddVar("y", -1)
	if _, ok := NewDiffChecker([]Lin{l}); ok {
		t.Fatalf("2x − y accepted as difference constraint")
	}
}

func TestDiffCheckerEmpty(t *testing.T) {
	dc, ok := NewDiffChecker(nil)
	if !ok {
		t.Fatalf("empty atom set rejected")
	}
	if res := dc.Check(nil); !res.Sat {
		t.Fatalf("empty conjunction unsat: %+v", res)
	}
}

func BenchmarkDiffCheckerCheck(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	atoms := randomDiffAtoms(rng, 24)
	dc, ok := NewDiffChecker(atoms)
	if !ok {
		b.Fatal("atoms rejected")
	}
	assigns := make([][]bool, 16)
	for i := range assigns {
		assigns[i] = make([]bool, len(atoms))
		for j := range assigns[i] {
			assigns[i][j] = rng.Intn(2) == 0
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc.Check(assigns[i%len(assigns)])
	}
}

func BenchmarkCheckPerIteration(b *testing.B) {
	// The pre-DiffChecker per-iteration cost: Negate clones for false atoms
	// plus Check rebuilding its graph.
	rng := rand.New(rand.NewSource(11))
	atoms := randomDiffAtoms(rng, 24)
	assigns := make([][]bool, 16)
	for i := range assigns {
		assigns[i] = make([]bool, len(atoms))
		for j := range assigns[i] {
			assigns[i][j] = rng.Intn(2) == 0
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assign := assigns[i%len(assigns)]
		cons := make([]Lin, 0, len(atoms))
		for j, v := range assign {
			if v {
				cons = append(cons, atoms[j])
			} else {
				cons = append(cons, atoms[j].Negate())
			}
		}
		Check(cons)
	}
}
