package lia

import (
	"math/rand"
	"testing"
)

// genGeneralLin builds a random linear constraint over up to three of the
// given names, with coefficients in [-3,3] (non-unit on purpose: the point is
// the Fourier–Motzkin path, not the difference fragment).
func genGeneralLin(rng *rand.Rand, names []string) Lin {
	l := NewLin()
	for _, v := range names {
		if rng.Intn(2) == 0 {
			l.AddVar(v, int64(rng.Intn(7)-3))
		}
	}
	l.K = int64(rng.Intn(9) - 4)
	return l
}

// TestRandomGeneralAgainstBox is the brute-force differential for the general
// path: any system with a model in the enumerated box must be reported
// satisfiable (FM refutations are sound over the integers), and any reported
// conflict must itself be box-infeasible.
func TestRandomGeneralAgainstBox(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"x", "y", "z"}
	for round := 0; round < 500; round++ {
		n := 1 + rng.Intn(6)
		cons := make([]Lin, n)
		for i := range cons {
			cons[i] = genGeneralLin(rng, names)
		}
		res := Check(cons)
		boxModel := boxSat(cons, names, -8, 8)
		if boxModel && !res.Sat {
			t.Fatalf("round %d: box found a model but Check said unsat: %v", round, cons)
		}
		if !res.Sat {
			sub := make([]Lin, 0, len(res.Conflict))
			for _, ci := range res.Conflict {
				sub = append(sub, cons[ci])
			}
			if boxSat(sub, names, -8, 8) {
				t.Fatalf("round %d: reported conflict %v is box-feasible: %v", round, res.Conflict, cons)
			}
		}
	}
}

// selectedForms materializes the constraint set a LinChecker assignment
// denotes: atoms[i] where assign[i], its integer negation otherwise.
func selectedForms(atoms []Lin, assign []bool) []Lin {
	cons := make([]Lin, len(atoms))
	for i, a := range atoms {
		if assign[i] {
			cons[i] = a.Clone()
		} else {
			cons[i] = a.Negate()
		}
	}
	return cons
}

// TestLinCheckerMatchesCheck drives a persistent LinChecker through many
// assignments of one random general atom set — including repeats, so the
// conflict-cube store answers some checks — and requires verdict agreement
// with from-scratch lia.Check on every one, plus conflict soundness.
func TestLinCheckerMatchesCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	names := []string{"x", "y", "z"}
	for round := 0; round < 40; round++ {
		n := 2 + rng.Intn(5)
		atoms := make([]Lin, n)
		for i := range atoms {
			atoms[i] = genGeneralLin(rng, names)
		}
		var ctr Counters
		chk := NewLinChecker(atoms, &ctr)
		var history [][]bool
		for probe := 0; probe < 60; probe++ {
			var assign []bool
			if len(history) > 0 && rng.Intn(3) == 0 {
				assign = history[rng.Intn(len(history))] // replay: cube territory
			} else {
				assign = make([]bool, n)
				for i := range assign {
					assign[i] = rng.Intn(2) == 0
				}
				history = append(history, assign)
			}
			got := chk.Check(assign)
			want := Check(selectedForms(atoms, assign))
			if got.Sat != want.Sat {
				t.Fatalf("round %d probe %d: LinChecker=%v Check=%v atoms=%v assign=%v",
					round, probe, got.Sat, want.Sat, atoms, assign)
			}
			if !got.Sat {
				sub := selectedForms(atoms, assign)
				conflictOnly := make([]Lin, 0, len(got.Conflict))
				for _, ci := range got.Conflict {
					conflictOnly = append(conflictOnly, sub[ci])
				}
				if cres := Check(conflictOnly); cres.Sat {
					t.Fatalf("round %d probe %d: conflict %v not jointly unsat", round, probe, got.Conflict)
				}
			}
		}
	}
}

// TestLinCheckerCubeReuse pins the cube store's behavior: re-checking an
// unsatisfiable assignment must be answered from the store with the same
// conflict, without another elimination.
func TestLinCheckerCubeReuse(t *testing.T) {
	// x >= 1 and x <= 0, plus an unrelated atom.
	a := NewLin()
	a.AddVar("x", -2)
	a.K = 2 // -2x + 2 <= 0  ⇔  x >= 1
	b := NewLin()
	b.AddVar("x", 2) // 2x <= 0  ⇔  x <= 0
	c := NewLin()
	c.AddVar("y", 3)
	c.K = -12
	var ctr Counters
	chk := NewLinChecker([]Lin{a, b, c}, &ctr)
	assign := []bool{true, true, true}
	res1 := chk.Check(assign)
	if res1.Sat {
		t.Fatal("x>=1 ∧ x<=0 should be unsat")
	}
	runs := ctr.Runs.Load()
	res2 := chk.Check(assign)
	if res2.Sat {
		t.Fatal("replay should stay unsat")
	}
	if ctr.Runs.Load() != runs {
		t.Error("replayed conflict ran another elimination instead of hitting the cube store")
	}
	if ctr.CubeHits.Load() == 0 {
		t.Error("no cube hit recorded on replay")
	}
	if len(res2.Conflict) != len(res1.Conflict) {
		t.Errorf("cube conflict %v differs from original %v", res2.Conflict, res1.Conflict)
	}
	// Flipping an atom outside the conflict must still hit the cube.
	res3 := chk.Check([]bool{true, true, false})
	if res3.Sat {
		t.Fatal("conflict does not involve y; flip must stay unsat")
	}
	if ctr.Runs.Load() != runs {
		t.Error("cube should cover assignments agreeing on its atoms only")
	}
}

// TestLinCheckerSetProbe pins probe narrowing: atoms outside the active
// subset are ignored, and cubes only fire inside the subset.
func TestLinCheckerSetProbe(t *testing.T) {
	conflictA := NewLin()
	conflictA.AddVar("x", -2)
	conflictA.K = 2 // x >= 1
	conflictB := NewLin()
	conflictB.AddVar("x", 2) // x <= 0
	free := NewLin()
	free.AddVar("y", 5)
	free.K = 1
	var ctr Counters
	chk := NewLinChecker([]Lin{conflictA, conflictB, free}, &ctr)
	all := []bool{true, true, true}
	// Narrowed to the conflicting pair: unsat.
	chk.SetProbe([]int{0, 1})
	if res := chk.Check(all); res.Sat {
		t.Fatal("narrowed probe should see the x conflict")
	}
	// Narrowed to one side of the conflict: satisfiable, and the learned
	// cube (over atoms 0 and 1) must not fire.
	chk.SetProbe([]int{0, 2})
	if res := chk.Check(all); !res.Sat {
		t.Fatalf("probe {0,2} is satisfiable; got conflict %v", res.Conflict)
	}
	// Restoring the default probe sees the conflict again — via the cube.
	chk.SetProbe(nil)
	runs := ctr.Runs.Load()
	res := chk.Check(all)
	if res.Sat {
		t.Fatal("full probe should be unsat")
	}
	if ctr.Runs.Load() != runs {
		t.Error("full probe should reuse the cube learned by the narrowed probe")
	}
}

// TestLinCheckerExtend pins atom-set growth: indices are stable, cubes
// survive, and new atoms participate in checks.
func TestLinCheckerExtend(t *testing.T) {
	a := NewLin()
	a.AddVar("x", -2)
	a.K = 2 // x >= 1
	b := NewLin()
	b.AddVar("x", 2) // x <= 0
	var ctr Counters
	chk := NewLinChecker([]Lin{a, b}, &ctr)
	if res := chk.Check([]bool{true, true}); res.Sat {
		t.Fatal("seed conflict missing")
	}
	extra := NewLin()
	extra.AddVar("y", 3)
	extra.AddVar("x", 2)
	extra.K = -6
	chk.Extend([]Lin{extra})
	if chk.Len() != 3 {
		t.Fatalf("Len=%d after Extend; want 3", chk.Len())
	}
	runs := ctr.Runs.Load()
	if res := chk.Check([]bool{true, true, true}); res.Sat {
		t.Fatal("extended assignment still contains the x conflict")
	}
	if ctr.Runs.Load() != runs {
		t.Error("cube learned before Extend should still fire after growth")
	}
	// The new atom matters when the old conflict is deselected:
	// ¬(x>=1) ⇒ x<=0; with x<=0, 3y+2x-6<=0 is satisfiable (y small).
	if res := chk.Check([]bool{false, true, true}); !res.Sat {
		t.Fatalf("satisfiable extended assignment reported unsat: %v", res.Conflict)
	}
}

// TestResultTruncated pins the cap flag: a system engineered to blow past
// maxDerived must come back Sat with Truncated set rather than silently Sat.
func TestResultTruncated(t *testing.T) {
	// Dense random system over many variables: FM elimination on it derives
	// quadratically many constraints per round and overflows the cap.
	rng := rand.New(rand.NewSource(99))
	names := make([]string, 12)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	var cons []Lin
	for i := 0; i < 220; i++ {
		l := NewLin()
		for _, v := range names {
			l.AddVar(v, int64(rng.Intn(13)-6))
		}
		l.K = int64(-(rng.Intn(1000) + 500)) // slack keeps it satisfiable-looking
		cons = append(cons, l)
	}
	res := checkFM(cons)
	if !res.Truncated {
		t.Skip("system did not hit the derived cap on this seed; cap path covered elsewhere")
	}
	if !res.Sat {
		t.Error("Truncated results must be conservative (Sat=true)")
	}
}
