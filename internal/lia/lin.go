package lia

import "sync/atomic"

// Counters aggregates Fourier–Motzkin activity across every checker wired to
// one SMT solver. All fields are atomic so sibling context lanes can share
// one instance; a nil *Counters is accepted everywhere and counts nothing.
type Counters struct {
	// Runs counts full elimination runs performed by persistent checkers.
	Runs atomic.Int64
	// CubeHits counts checks answered from a persisted conflict cube without
	// running an elimination.
	CubeHits atomic.Int64
	// CapHits counts runs that hit the derived-constraint cap and returned a
	// Truncated conservative answer.
	CapHits atomic.Int64
}

func (c *Counters) addRun() {
	if c != nil {
		c.Runs.Add(1)
	}
}

func (c *Counters) addCubeHit() {
	if c != nil {
		c.CubeHits.Add(1)
	}
}

func (c *Counters) addCapHit() {
	if c != nil {
		c.CapHits.Add(1)
	}
}

// Checker decides many truth assignments of one fixed (but growable) atom
// set; DiffChecker and LinChecker both implement it, and the persistent SMT
// context picks whichever fits the atom set.
type Checker interface {
	Check(assign []bool) Result
}

// maxCubes bounds a LinChecker's persisted conflict-cube store; beyond it
// the least-useful cube (fewest hits, oldest) is evicted for each newcomer.
const maxCubes = 1024

// cube is one persisted refutation: the conjunction selecting atom idx[k]
// with polarity val[k] is integer-infeasible. A cube recorded in one probe
// refutes every later probe whose assignment agrees on those atoms, without
// re-running the elimination.
type cube struct {
	idx  []int // sorted atom indices
	val  []bool
	hits int64
	seq  int64 // insertion order, for age-aware eviction
}

// LinChecker decides truth assignments of a fixed atom set containing
// non-difference constraints: the general-LIA analogue of DiffChecker. It is
// built once per persistent SMT context and keeps two kinds of state across
// checks:
//
//   - Preprocessing: both polarities of every atom are gcd-tightened once at
//     registration instead of per check (Negate clones the coefficient map,
//     which dominated the former per-probe checkFM's allocation profile).
//   - Conflict cubes: every refutation's dependency set — the (atom,
//     polarity) pairs the Fourier–Motzkin refutation actually used — is
//     persisted, keyed by that stable atom subset. A later probe whose
//     assignment agrees on a cube's atoms is refuted by table lookup, with
//     the exact conflict set preserved, so unsat cores keep driving
//     map-solver blocking without an elimination run.
//
// SetProbe narrows a check to the atoms one probe actually mentions: the
// owning context accumulates atoms across every probe of its lifetime, and
// running the elimination over that cumulative set would make each check more
// expensive than the from-scratch path it replaces (and spend theory
// iterations repairing atoms the probe does not constrain). With a probe
// subset active, checks see exactly the per-probe systems the fresh path
// sees, and only cubes lying inside the subset fire — so learned conflicts
// stay facts the fresh path could also have derived.
//
// Checks that miss the cube store fall through to a full elimination over
// the current assignment (the same fmState engine checkFM uses, hence the
// same verdicts), and record the resulting refutation for the next probe.
// The atom set may grow via Extend: cube indices are stable because atom
// indices are append-only, so cubes survive growth and SetProbe changes.
//
// A LinChecker is single-goroutine, like the context lane that owns it.
type LinChecker struct {
	pos, neg []Lin  // tightened polarity forms by atom index
	all      []int  // 0..Len()-1, the default probe
	probe    []int  // active atom subset (aliases all when unrestricted)
	inProbe  []bool // dense membership bitmap for the active probe
	probeAll bool

	cubes   []cube
	cubeSeq int64
	ctr     *Counters
}

// NewLinChecker preprocesses the atoms (each taken as lin ≤ 0 with its
// integer negation as the false polarity). Unlike NewDiffChecker it accepts
// every linear atom set. ctr may be nil.
func NewLinChecker(atoms []Lin, ctr *Counters) *LinChecker {
	c := &LinChecker{ctr: ctr, probeAll: true}
	c.Extend(atoms)
	return c
}

// Extend appends newly interned atoms to the checker's universe. Persisted
// conflict cubes survive: they reference atom indices, which are stable
// under growth. New atoms join the active probe only when it is the
// unrestricted default.
func (c *LinChecker) Extend(atoms []Lin) {
	for _, a := range atoms {
		c.pos = append(c.pos, tighten(a.Clone()))
		c.neg = append(c.neg, tighten(a.Negate()))
		c.all = append(c.all, len(c.all))
		c.inProbe = append(c.inProbe, c.probeAll)
	}
	if c.probeAll {
		c.probe = c.all
	}
}

// SetProbe fixes the atom subset subsequent Check calls decide: only the
// listed atoms are conjoined, and only cubes lying entirely inside the
// subset can answer a check. nil restores the unrestricted default (all
// atoms). The slice is retained, not copied; the caller must not mutate it
// until the next SetProbe.
func (c *LinChecker) SetProbe(idxs []int) {
	for _, i := range c.probe {
		c.inProbe[i] = false
	}
	if idxs == nil {
		c.probe, c.probeAll = c.all, true
	} else {
		c.probe, c.probeAll = idxs, false
	}
	for _, i := range c.probe {
		c.inProbe[i] = true
	}
}

// Len returns the number of registered atoms.
func (c *LinChecker) Len() int { return len(c.pos) }

// NumCubes returns the number of persisted conflict cubes.
func (c *LinChecker) NumCubes() int { return len(c.cubes) }

func (c *LinChecker) form(i int, positive bool) Lin {
	if positive {
		return c.pos[i]
	}
	return c.neg[i]
}

// Check decides the conjunction over the active probe subset, selecting each
// atom's positive form where assign[i] is true and its negation where false.
// Conflict indices are atom indices (valid positions of assign). len(assign)
// must equal Len().
func (c *LinChecker) Check(assign []bool) Result {
	// Constant constraints are decided immediately, in atom order (the same
	// pre-pass Check performs on its cons slice).
	for _, i := range c.probe {
		if l := c.form(i, assign[i]); l.IsConst() && l.K > 0 {
			return Result{Sat: false, Conflict: []int{i}}
		}
	}
	// Persisted refutations: a cube inside the probe subset whose atoms all
	// agree with the current assignment refutes it outright.
	if res, hit := c.lookupCube(assign); hit {
		return res
	}
	// Full elimination over the selected polarity forms.
	st := newFMState(len(c.probe))
	for _, i := range c.probe {
		if conflict := st.add(c.form(i, assign[i]), map[int]bool{i: true}); conflict != nil {
			return Result{Sat: false, Conflict: conflict}
		}
	}
	st.seedVars()
	c.ctr.addRun()
	res := st.run()
	if res.Truncated {
		c.ctr.addCapHit()
	}
	if !res.Sat {
		c.learn(res.Conflict, assign)
	}
	return res
}

func (c *LinChecker) lookupCube(assign []bool) (Result, bool) {
outer:
	for i := range c.cubes {
		cb := &c.cubes[i]
		for k, idx := range cb.idx {
			if idx >= len(assign) || !c.inProbe[idx] || assign[idx] != cb.val[k] {
				continue outer
			}
		}
		cb.hits++
		c.ctr.addCubeHit()
		return Result{Sat: false, Conflict: append([]int(nil), cb.idx...)}, true
	}
	return Result{}, false
}

// learn persists one refutation's dependency cube. Duplicates cannot occur:
// an existing cube matching the assignment would have answered the check.
func (c *LinChecker) learn(conflict []int, assign []bool) {
	c.cubeSeq++
	cb := cube{
		idx: append([]int(nil), conflict...),
		val: make([]bool, len(conflict)),
		seq: c.cubeSeq,
	}
	for k, idx := range conflict {
		cb.val[k] = assign[idx]
	}
	if len(c.cubes) < maxCubes {
		c.cubes = append(c.cubes, cb)
		return
	}
	// Evict the cube with the fewest hits, breaking ties toward the oldest:
	// cubes that never refuted anything age out first.
	victim := 0
	for i := 1; i < len(c.cubes); i++ {
		v, cand := &c.cubes[victim], &c.cubes[i]
		if cand.hits < v.hits || (cand.hits == v.hits && cand.seq < v.seq) {
			victim = i
		}
	}
	c.cubes[victim] = cb
}
