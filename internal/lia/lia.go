// Package lia decides conjunctions of linear integer inequalities. It is the
// theory backend of the lazy SMT solver: the SAT core proposes a set of
// inequality literals, and lia either confirms they are jointly satisfiable
// over the integers or returns a (small) inconsistent subset to be learnt as
// a conflict clause.
//
// Two procedures are used:
//
//   - Difference fragment (x − y ≤ c, x ≤ c): Bellman–Ford negative-cycle
//     detection, which is sound and complete for the integers and yields the
//     exact cycle as a minimal conflict.
//   - General linear constraints: Fourier–Motzkin elimination with integer
//     (gcd) tightening. Refutations are sound over the integers; a "sat"
//     answer is exact modulo the tightening (at least as strong as the
//     rational relaxation).
//
// The paper's §7 benchmark VCs land in the difference fragment after array
// flattening, so they take the complete path; the scaled-coefficient family
// (ScaledInit and friends) exercises the general path. Both procedures have
// a preprocessed, iteration-friendly form for the DPLL(T) loop: DiffChecker
// for difference atom sets and LinChecker (persistent Fourier–Motzkin with a
// conflict-cube store) for general ones.
package lia

import (
	"fmt"
	"sort"
	"strings"
)

// Lin is a linear combination Σ Coef[v]·v + K over integer variables.
type Lin struct {
	Coef map[string]int64
	K    int64
}

// NewLin returns the zero linear form.
func NewLin() Lin { return Lin{Coef: map[string]int64{}} }

// Clone returns a deep copy.
func (l Lin) Clone() Lin {
	c := Lin{Coef: make(map[string]int64, len(l.Coef)), K: l.K}
	for v, k := range l.Coef {
		c.Coef[v] = k
	}
	return c
}

// AddVar adds c·v to the form, dropping the entry if it cancels.
func (l *Lin) AddVar(v string, c int64) {
	if c == 0 {
		return
	}
	n := l.Coef[v] + c
	if n == 0 {
		delete(l.Coef, v)
	} else {
		l.Coef[v] = n
	}
}

// AddLin adds c·m to l.
func (l *Lin) AddLin(m Lin, c int64) {
	for v, k := range m.Coef {
		l.AddVar(v, c*k)
	}
	l.K += c * m.K
}

// Scale multiplies the form by c.
func (l *Lin) Scale(c int64) {
	for v := range l.Coef {
		l.Coef[v] *= c
	}
	l.K *= c
}

// IsConst reports whether the form has no variables.
func (l Lin) IsConst() bool { return len(l.Coef) == 0 }

// Key returns a canonical string for the form, usable as a map key.
func (l Lin) Key() string {
	vars := make([]string, 0, len(l.Coef))
	for v := range l.Coef {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&b, "%+d*%s", l.Coef[v], v)
	}
	fmt.Fprintf(&b, "%+d", l.K)
	return b.String()
}

func (l Lin) String() string { return l.Key() + " <= 0" }

// Negate returns the integer negation of l ≤ 0, i.e. −l + 1 ≤ 0.
func (l Lin) Negate() Lin {
	n := l.Clone()
	n.Scale(-1)
	n.K++
	return n
}

// isDifference reports whether l ≤ 0 is a difference constraint: at most two
// variables, with coefficients {+1, −1} (two vars) or ±1 (one var).
func (l Lin) isDifference() bool {
	switch len(l.Coef) {
	case 0:
		return true
	case 1:
		for _, c := range l.Coef {
			return c == 1 || c == -1
		}
	case 2:
		sum := int64(0)
		for _, c := range l.Coef {
			if c != 1 && c != -1 {
				return false
			}
			sum += c
		}
		return sum == 0
	}
	return false
}

// Result is the outcome of a consistency check.
type Result struct {
	Sat bool
	// Conflict holds indices (into the input slice) of a jointly
	// inconsistent subset when Sat is false.
	Conflict []int
	// Truncated reports that the Fourier–Motzkin derived-constraint cap was
	// hit, so Sat=true is a conservative answer rather than a decision.
	// Callers that care about completeness (benchtab, /v1/stats) surface it;
	// soundness is unaffected (a conservative "satisfiable" only ever makes a
	// verifier fail to prove, never accept a bad invariant).
	Truncated bool
}

// Check decides whether the conjunction of cons[i] ≤ 0 is satisfiable over
// the integers. When unsatisfiable, Result.Conflict names an inconsistent
// subset (exact for the difference fragment).
func Check(cons []Lin) Result {
	// Constant constraints are decided immediately.
	for i, c := range cons {
		if c.IsConst() && c.K > 0 {
			return Result{Sat: false, Conflict: []int{i}}
		}
	}
	allDiff := true
	for _, c := range cons {
		if !c.isDifference() {
			allDiff = false
			break
		}
	}
	if allDiff {
		return checkDifference(cons)
	}
	return checkFM(cons)
}

// checkDifference runs Bellman–Ford on the constraint graph. A constraint
// x − y ≤ c is the edge y →(c) x; single-variable constraints use a virtual
// zero node.
func checkDifference(cons []Lin) Result {
	const zero = "$zero"
	type edge struct {
		from, to string
		w        int64
		idx      int
	}
	var edges []edge
	nodes := map[string]bool{zero: true}
	for i, c := range cons {
		if c.IsConst() {
			continue // c.K ≤ 0 verified by caller
		}
		var pos, neg string
		for v, k := range c.Coef {
			if k == 1 {
				pos = v
			} else {
				neg = v
			}
		}
		if pos == "" {
			pos = zero
		}
		if neg == "" {
			neg = zero
		}
		// pos − neg + K ≤ 0  ⇒  pos − neg ≤ −K  ⇒  edge neg →(−K) pos.
		edges = append(edges, edge{from: neg, to: pos, w: -c.K, idx: i})
		nodes[pos] = true
		nodes[neg] = true
	}
	dist := make(map[string]int64, len(nodes))
	pred := make(map[string]int, len(nodes)) // node -> edge index into edges
	for n := range nodes {
		dist[n] = 0 // virtual source with 0-weight edges to all nodes
		pred[n] = -1
	}
	var relaxed string
	for iter := 0; iter < len(nodes); iter++ {
		relaxed = ""
		for ei, e := range edges {
			if dist[e.from]+e.w < dist[e.to] {
				dist[e.to] = dist[e.from] + e.w
				pred[e.to] = ei
				relaxed = e.to
			}
		}
		if relaxed == "" {
			return Result{Sat: true}
		}
	}
	// Negative cycle: walk predecessors from the last relaxed node.
	node := relaxed
	for i := 0; i < len(nodes); i++ {
		node = edges[pred[node]].from
	}
	var conflict []int
	seen := map[int]bool{}
	cur := node
	for {
		ei := pred[cur]
		if seen[ei] {
			break
		}
		seen[ei] = true
		conflict = append(conflict, edges[ei].idx)
		cur = edges[ei].from
	}
	sort.Ints(conflict)
	return Result{Sat: false, Conflict: conflict}
}

// fmCons is a derived constraint carrying the set of original indices it
// depends on, so refutations can report a conflict subset.
type fmCons struct {
	lin  Lin
	deps map[int]bool
}

// maxDerived caps the number of derived constraints one Fourier–Motzkin run
// may create; hitting it returns a Truncated conservative "satisfiable".
const maxDerived = 20000

// fmState is one Fourier–Motzkin elimination run. Per-variable lower/upper
// occurrence counts are maintained incrementally as constraints enter and
// leave the working set (the former implementation rescanned every
// constraint for every variable per round, and re-sorted the variable set
// each round), derived sums are gcd-tightened and deduplicated against every
// constraint ever inserted before they are admitted, and constant
// constraints are decided at insertion instead of carried forever.
type fmState struct {
	work    []fmCons
	seen    map[string]bool // canonical keys of every constraint ever inserted
	lo, hi  map[string]int  // per-variable lower/upper occurrence tallies
	vars    []string        // sorted variable universe, fixed after seeding
	derived int
}

func newFMState(capacity int) *fmState {
	return &fmState{
		work: make([]fmCons, 0, capacity),
		seen: make(map[string]bool, capacity),
		lo:   map[string]int{},
		hi:   map[string]int{},
	}
}

// add inserts a tightened constraint, returning a conflict when it is a
// violated constant. Satisfied constants are dropped, duplicates (by
// canonical key) are dropped — the first occurrence's deps stand for all —
// and the variable tallies are updated in place.
func (st *fmState) add(l Lin, deps map[int]bool) (conflict []int) {
	if l.IsConst() {
		if l.K > 0 {
			return depsToSlice(deps)
		}
		return nil
	}
	k := l.Key()
	if st.seen[k] {
		return nil
	}
	st.seen[k] = true
	st.work = append(st.work, fmCons{lin: l, deps: deps})
	st.tally(l, 1)
	return nil
}

func (st *fmState) tally(l Lin, d int) {
	for v, c := range l.Coef {
		if c > 0 {
			st.hi[v] += d
		} else {
			st.lo[v] += d
		}
	}
}

// seedVars fixes the sorted variable universe; eliminations only ever shrink
// it, so one sort at the start replaces the per-round sort of the former
// implementation. Call after the initial adds.
func (st *fmState) seedVars() {
	set := map[string]bool{}
	for _, w := range st.work {
		for v := range w.lin.Coef {
			set[v] = true
		}
	}
	st.vars = sortedVarNames(set)
}

// run eliminates variables until the system is decided. Derived constraints
// are capped across the whole run; hitting the cap reports a Truncated
// conservative "satisfiable" (the solver then treats the literal set as
// consistent, which can only make the verifier fail to find an invariant,
// never accept a bad one).
func (st *fmState) run() Result {
	for {
		// Pick the variable minimizing (#lower × #upper) to slow growth,
		// first-in-sorted-order on ties; the tallies are already maintained.
		elim, best := "", -1
		for _, v := range st.vars {
			l, h := st.lo[v], st.hi[v]
			if l == 0 && h == 0 {
				continue // eliminated or cancelled out
			}
			if cost := l * h; best == -1 || cost < best {
				best, elim = cost, v
			}
		}
		if elim == "" {
			return Result{Sat: true} // no constraints left
		}
		var lowers, uppers []fmCons
		rest := st.work[:0]
		for _, w := range st.work {
			c := w.lin.Coef[elim]
			switch {
			case c > 0:
				uppers = append(uppers, w)
				st.tally(w.lin, -1)
			case c < 0:
				lowers = append(lowers, w)
				st.tally(w.lin, -1)
			default:
				rest = append(rest, w)
			}
		}
		st.work = rest
		for _, lo := range lowers {
			for _, hi := range uppers {
				a := -lo.lin.Coef[elim] // > 0
				b := hi.lin.Coef[elim]  // > 0
				sum := NewLin()
				sum.AddLin(hi.lin, a)
				sum.AddLin(lo.lin, b)
				sum = tighten(sum)
				if sum.IsConst() {
					if sum.K > 0 {
						return Result{Sat: false, Conflict: depsToSlice(mergeDeps(lo.deps, hi.deps))}
					}
					continue
				}
				if st.seen[sum.Key()] {
					continue
				}
				st.derived++
				if st.derived > maxDerived {
					return Result{Sat: true, Truncated: true}
				}
				st.add(sum, mergeDeps(lo.deps, hi.deps))
			}
		}
	}
}

func mergeDeps(a, b map[int]bool) map[int]bool {
	out := make(map[int]bool, len(a)+len(b))
	for d := range a {
		out[d] = true
	}
	for d := range b {
		out[d] = true
	}
	return out
}

// checkFM performs Fourier–Motzkin elimination with gcd tightening.
func checkFM(cons []Lin) Result {
	st := newFMState(len(cons))
	for i, c := range cons {
		if conflict := st.add(tighten(c.Clone()), map[int]bool{i: true}); conflict != nil {
			return Result{Sat: false, Conflict: conflict}
		}
	}
	st.seedVars()
	return st.run()
}

// tighten divides a constraint Σc·v + K ≤ 0 by g = gcd of the coefficients,
// rounding the constant down (valid over the integers).
func tighten(l Lin) Lin {
	var g int64
	for _, c := range l.Coef {
		g = gcd(g, abs64(c))
	}
	if g <= 1 {
		return l
	}
	for v := range l.Coef {
		l.Coef[v] /= g
	}
	l.K = ceilDiv(l.K, g) // Σc'·v ≤ −K/g, integer side needs ceil on −K ⇒ ceil on K
	return l
}

func depsToSlice(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

func sortedVarNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// ceilDiv returns ⌈a/b⌉ for b > 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && a > 0 {
		q++
	}
	return q
}
