// Package template implements the paper's template formalism (§2.1):
// formulas with unknowns that take values over conjunctions of predicates,
// the positive/negative polarity classification of unknowns, and solution
// maps from unknowns to predicate sets.
//
// Polarity semantics: a solution for a NEGATIVE unknown remains a solution
// when predicates are ADDED (the formula only gets weaker), so optimal
// solutions map negative unknowns to minimal sets. A solution for a POSITIVE
// unknown remains a solution when predicates are DELETED, so optimal
// solutions map positive unknowns to maximal sets.
package template

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/ssa"
)

// Polarity classifies an unknown within a formula.
type Polarity int

// Polarity values.
const (
	Positive Polarity = iota + 1
	Negative
)

func (p Polarity) String() string {
	if p == Positive {
		return "positive"
	}
	return "negative"
}

// Polarities computes the U+/U− classification of every unknown in f by the
// structural rules of §2.1. An unknown may occur several times only with a
// consistent polarity (the iterative algorithms conjoin a VC with the
// progress constraint θ, duplicating the target template's unknowns on the
// same side); conflicting occurrences return an error — callers rename
// first, as the constraint-based algorithm's orig mapping does.
func Polarities(f logic.Formula) (map[string]Polarity, error) {
	out := map[string]Polarity{}
	var walk func(g logic.Formula, pos bool) error
	walk = func(g logic.Formula, pos bool) error {
		switch g := g.(type) {
		case logic.Unknown:
			p := Negative
			if pos {
				p = Positive
			}
			if prev, dup := out[g.Name]; dup && prev != p {
				return fmt.Errorf("unknown %s occurs with conflicting polarity", g.Name)
			}
			out[g.Name] = p
			return nil
		case logic.Atom, logic.Bool, logic.AEq:
			return nil
		case logic.Not:
			return walk(g.F, !pos)
		case logic.And:
			for _, h := range g.Fs {
				if err := walk(h, pos); err != nil {
					return err
				}
			}
			return nil
		case logic.Or:
			for _, h := range g.Fs {
				if err := walk(h, pos); err != nil {
					return err
				}
			}
			return nil
		case logic.Implies:
			if err := walk(g.A, !pos); err != nil {
				return err
			}
			return walk(g.B, pos)
		case logic.Forall:
			return walk(g.Body, pos)
		case logic.Exists:
			return walk(g.Body, pos)
		}
		return fmt.Errorf("unexpected formula %T", g)
	}
	if err := walk(f, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Split partitions the polarity map into positive and negative unknown
// names, each sorted.
func Split(pol map[string]Polarity) (pos, neg []string) {
	for v, p := range pol {
		if p == Positive {
			pos = append(pos, v)
		} else {
			neg = append(neg, v)
		}
	}
	sort.Strings(pos)
	sort.Strings(neg)
	return pos, neg
}

// RenameUnknowns replaces unknowns in f per ren (missing entries unchanged).
func RenameUnknowns(f logic.Formula, ren map[string]string) logic.Formula {
	fill := make(map[string]logic.Formula, len(ren))
	for old, nu := range ren {
		fill[old] = logic.Unknown{Name: nu}
	}
	return logic.FillUnknowns(f, fill)
}

// PredSet is an immutable set of predicates, identified canonically by the
// string forms of its members. The empty set denotes the conjunction true.
//
// Member keys, the canonical identity string, and the conjunction formula
// are all computed once at construction, so the set operations on the
// lattice-search hot path (Contains, SubsetOf, Union, Add, Key) never
// re-serialize member predicates: Contains is a binary search, SubsetOf and
// Union are sorted merges.
type PredSet struct {
	preds []logic.Formula // sorted by String()
	keys  []string        // keys[i] == preds[i].String()
	key   string          // canonical identity, "{k1 & k2 & ...}"
	conj  logic.Formula   // Conj(preds...)
}

// newPredSetSorted builds a set from members already in canonical (sorted,
// deduplicated) order with their precomputed keys.
func newPredSetSorted(preds []logic.Formula, keys []string) PredSet {
	return PredSet{
		preds: preds,
		keys:  keys,
		key:   "{" + strings.Join(keys, " & ") + "}",
		conj:  logic.Conj(preds...),
	}
}

// NewPredSet builds a set from the given predicates, deduplicating.
func NewPredSet(ps ...logic.Formula) PredSet {
	m := map[string]logic.Formula{}
	for _, p := range ps {
		m[p.String()] = p
	}
	keys := logic.SortedKeys(m)
	out := make([]logic.Formula, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return newPredSetSorted(out, keys)
}

// Len returns the number of predicates.
func (s PredSet) Len() int { return len(s.preds) }

// Preds returns the predicates in canonical order. Callers must not mutate
// the returned slice.
func (s PredSet) Preds() []logic.Formula { return s.preds }

// Key returns a canonical identity string.
func (s PredSet) Key() string {
	if s.key == "" {
		return "{}" // zero value, never built by a constructor
	}
	return s.key
}

func (s PredSet) String() string { return s.Key() }

// Formula returns the conjunction of the set (true when empty).
func (s PredSet) Formula() logic.Formula {
	if s.conj == nil {
		return logic.True // zero value
	}
	return s.conj
}

// Contains reports membership by canonical form.
func (s PredSet) Contains(p logic.Formula) bool {
	key := p.String()
	i := sort.SearchStrings(s.keys, key)
	return i < len(s.keys) && s.keys[i] == key
}

// SubsetOf reports whether every predicate of s is in t.
func (s PredSet) SubsetOf(t PredSet) bool {
	if s.Len() > t.Len() {
		return false
	}
	j := 0
	for i := 0; i < len(s.keys); i++ {
		for j < len(t.keys) && t.keys[j] < s.keys[i] {
			j++
		}
		if j >= len(t.keys) || t.keys[j] != s.keys[i] {
			return false
		}
		j++
	}
	return true
}

// Union returns s ∪ t.
func (s PredSet) Union(t PredSet) PredSet {
	if s.Len() == 0 {
		if t.Len() == 0 {
			return NewPredSet()
		}
		return t
	}
	if t.Len() == 0 {
		return s
	}
	preds := make([]logic.Formula, 0, len(s.preds)+len(t.preds))
	keys := make([]string, 0, len(s.keys)+len(t.keys))
	i, j := 0, 0
	for i < len(s.keys) && j < len(t.keys) {
		switch {
		case s.keys[i] == t.keys[j]:
			preds, keys = append(preds, s.preds[i]), append(keys, s.keys[i])
			i, j = i+1, j+1
		case s.keys[i] < t.keys[j]:
			preds, keys = append(preds, s.preds[i]), append(keys, s.keys[i])
			i++
		default:
			preds, keys = append(preds, t.preds[j]), append(keys, t.keys[j])
			j++
		}
	}
	preds = append(preds, s.preds[i:]...)
	keys = append(keys, s.keys[i:]...)
	preds = append(preds, t.preds[j:]...)
	keys = append(keys, t.keys[j:]...)
	return newPredSetSorted(preds, keys)
}

// Add returns s ∪ {p}.
func (s PredSet) Add(p logic.Formula) PredSet {
	key := p.String()
	i := sort.SearchStrings(s.keys, key)
	if i < len(s.keys) && s.keys[i] == key {
		return s
	}
	preds := make([]logic.Formula, 0, len(s.preds)+1)
	keys := make([]string, 0, len(s.keys)+1)
	preds = append(append(append(preds, s.preds[:i]...), p), s.preds[i:]...)
	keys = append(append(append(keys, s.keys[:i]...), key), s.keys[i:]...)
	return newPredSetSorted(preds, keys)
}

// Rename applies a variable renaming to every predicate.
func (s PredSet) Rename(r ssa.Renaming) PredSet {
	if r.IsIdentity() {
		return s
	}
	out := make([]logic.Formula, len(s.preds))
	for i, p := range s.preds {
		out[i] = r.Apply(p)
	}
	return NewPredSet(out...)
}

// Solution maps unknowns to predicate sets (the paper's σ). Missing entries
// mean the unknown is unconstrained by this solution.
type Solution map[string]PredSet

// Clone returns a copy.
func (s Solution) Clone() Solution {
	out := make(Solution, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Key returns a canonical identity string.
func (s Solution) Key() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "->" + s[k].Key()
	}
	return strings.Join(parts, "; ")
}

func (s Solution) String() string { return s.Key() }

// Fill instantiates every unknown of f with its conjunction under s.
// Unknowns absent from s are left in place.
func (s Solution) Fill(f logic.Formula) logic.Formula {
	fill := make(map[string]logic.Formula, len(s))
	for v, ps := range s {
		fill[v] = ps.Formula()
	}
	return logic.FillUnknowns(f, fill)
}

// Merge returns the union of two solutions over disjoint unknown sets;
// entries present in both are unioned predicate-wise.
func (s Solution) Merge(t Solution) Solution {
	out := s.Clone()
	for k, v := range t {
		if cur, ok := out[k]; ok {
			out[k] = cur.Union(v)
		} else {
			out[k] = v
		}
	}
	return out
}

// Restrict returns the sub-solution for the given unknowns.
func (s Solution) Restrict(unknowns []string) Solution {
	out := Solution{}
	for _, u := range unknowns {
		if v, ok := s[u]; ok {
			out[u] = v
		}
	}
	return out
}

// RestrictComplement returns the sub-solution excluding the given unknowns
// (the paper's σ|_{U(Prog)−U(τ)} projection).
func (s Solution) RestrictComplement(unknowns []string) Solution {
	skip := make(map[string]bool, len(unknowns))
	for _, u := range unknowns {
		skip[u] = true
	}
	out := Solution{}
	for k, v := range s {
		if !skip[k] {
			out[k] = v
		}
	}
	return out
}

// Rename applies a variable renaming to every predicate in every entry.
func (s Solution) Rename(r ssa.Renaming) Solution {
	if r.IsIdentity() {
		return s.Clone()
	}
	out := make(Solution, len(s))
	for k, v := range s {
		out[k] = v.Rename(r)
	}
	return out
}

// Domain is the paper's predicate-map Q: each unknown's candidate
// predicate vocabulary.
type Domain map[string][]logic.Formula

// Rename applies a variable renaming to every predicate of every entry
// (the paper's Qσt).
func (d Domain) Rename(r ssa.Renaming) Domain {
	if r.IsIdentity() {
		return d
	}
	out := make(Domain, len(d))
	for k, ps := range d {
		nps := make([]logic.Formula, len(ps))
		for i, p := range ps {
			nps[i] = r.Apply(p)
		}
		out[k] = nps
	}
	return out
}
