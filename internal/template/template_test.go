package template

import (
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/ssa"
)

func unk(n string) logic.Formula { return logic.Unknown{Name: n} }

func TestPolaritiesExample1(t *testing.T) {
	// The paper's Example 1: (v1 ∧ (∀j: v2 ⇒ b1) ∧ (∀j: v3 ⇒ b2)) ⇒
	// (v4 ∧ (∀j: v5 ⇒ b3)) with U+ = {v2,v3,v4} and U− = {v1,v5}.
	b := logic.LeF(logic.V("x"), logic.V("y"))
	f := logic.Imp(
		logic.Conj(
			unk("v1"),
			logic.All([]string{"j"}, logic.Imp(unk("v2"), b)),
			logic.All([]string{"j"}, logic.Imp(unk("v3"), b)),
		),
		logic.Conj(
			unk("v4"),
			logic.All([]string{"j"}, logic.Imp(unk("v5"), b)),
		),
	)
	pol, err := Polarities(f)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Polarity{
		"v1": Negative, "v2": Positive, "v3": Positive,
		"v4": Positive, "v5": Negative,
	}
	for u, p := range want {
		if pol[u] != p {
			t.Errorf("%s: got %v, want %v", u, pol[u], p)
		}
	}
	pos, neg := Split(pol)
	if len(pos) != 3 || len(neg) != 2 {
		t.Errorf("split: %v %v", pos, neg)
	}
}

func TestPolaritiesNegation(t *testing.T) {
	pol, err := Polarities(logic.Neg(logic.Conj(unk("a"), logic.Neg(unk("b")))))
	if err != nil {
		t.Fatal(err)
	}
	if pol["a"] != Negative || pol["b"] != Positive {
		t.Errorf("pol = %v", pol)
	}
}

func TestPolaritiesConflict(t *testing.T) {
	// Same unknown on both sides of an implication has conflicting polarity.
	f := logic.Imp(unk("v"), unk("v"))
	if _, err := Polarities(f); err == nil {
		t.Error("conflicting polarity should error")
	}
	// Same unknown twice with consistent polarity is accepted (used by the
	// iterative algorithms' θ constraint).
	g := logic.Conj(unk("v"), unk("v"))
	if _, err := Polarities(g); err != nil {
		t.Errorf("consistent duplicate should be fine: %v", err)
	}
}

func TestPredSetBasics(t *testing.T) {
	a := logic.LtF(logic.V("x"), logic.V("y"))
	b := logic.LeF(logic.V("y"), logic.V("z"))
	s := NewPredSet(a, b, a) // deduped
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
	if !s.Contains(a) || !s.Contains(b) {
		t.Error("containment")
	}
	empty := NewPredSet()
	if !empty.SubsetOf(s) || s.SubsetOf(empty) {
		t.Error("subset relations with empty set")
	}
	if !logic.FormulaEq(empty.Formula(), logic.True) {
		t.Errorf("empty formula = %v", empty.Formula())
	}
	u := s.Union(NewPredSet(a))
	if u.Len() != 2 {
		t.Errorf("union should dedupe: %v", u)
	}
	if s.Add(a).Len() != 2 || s.Add(logic.EqF(logic.V("q"), logic.I(0))).Len() != 3 {
		t.Error("Add behavior")
	}
}

func TestPredSetKeyOrderIndependent(t *testing.T) {
	f := func(perm [3]uint8) bool {
		ps := []logic.Formula{
			logic.LtF(logic.V("a"), logic.I(0)),
			logic.LeF(logic.V("b"), logic.I(1)),
			logic.GtF(logic.V("c"), logic.I(2)),
		}
		i, j := int(perm[0])%3, int(perm[1])%3
		ps[i], ps[j] = ps[j], ps[i]
		return NewPredSet(ps...).Key() == NewPredSet(ps[2], ps[1], ps[0]).Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolutionFillAndRestrict(t *testing.T) {
	f := logic.Conj(unk("a"), logic.All([]string{"k"}, logic.Imp(unk("b"), logic.EqF(logic.V("k"), logic.I(0)))))
	sol := Solution{
		"a": NewPredSet(logic.LtF(logic.V("x"), logic.V("n"))),
		"b": NewPredSet(),
	}
	g := sol.Fill(f)
	if len(logic.Unknowns(g)) != 0 {
		t.Errorf("fill left unknowns: %v", g)
	}
	r := sol.Restrict([]string{"a"})
	if len(r) != 1 {
		t.Errorf("restrict = %v", r)
	}
	rc := sol.RestrictComplement([]string{"a"})
	if len(rc) != 1 || rc["b"].Len() != 0 {
		t.Errorf("restrict complement = %v", rc)
	}
}

func TestSolutionMergeUnions(t *testing.T) {
	a := logic.LtF(logic.V("x"), logic.I(0))
	b := logic.GtF(logic.V("x"), logic.I(0))
	s1 := Solution{"v": NewPredSet(a)}
	s2 := Solution{"v": NewPredSet(b), "w": NewPredSet()}
	m := s1.Merge(s2)
	if m["v"].Len() != 2 {
		t.Errorf("merge should union shared entries: %v", m)
	}
	if _, ok := m["w"]; !ok {
		t.Error("merge should keep unshared entries")
	}
	// Merge must not mutate the receivers.
	if s1["v"].Len() != 1 || s2["v"].Len() != 1 {
		t.Error("merge mutated an input")
	}
}

func TestSolutionRename(t *testing.T) {
	r := ssa.NewRenaming()
	r.Int["i"] = "i#1"
	sol := Solution{"v": NewPredSet(logic.LtF(logic.V("k"), logic.V("i")))}
	renamed := sol.Rename(r)
	if renamed["v"].Preds()[0].String() != "k < i#1" {
		t.Errorf("renamed = %v", renamed)
	}
	back := renamed.Rename(r.Inverse())
	if back.Key() != sol.Key() {
		t.Errorf("inverse rename should round-trip: %v vs %v", back, sol)
	}
}

func TestDomainRename(t *testing.T) {
	r := ssa.NewRenaming()
	r.Arr["A"] = "A#2"
	d := Domain{"v": []logic.Formula{logic.EqF(logic.Sel(logic.AV("A"), logic.V("k")), logic.I(0))}}
	rd := d.Rename(r)
	if rd["v"][0].String() != "A#2[k] = 0" {
		t.Errorf("domain rename = %v", rd["v"][0])
	}
	// Identity renaming returns the domain unchanged.
	if got := d.Rename(ssa.NewRenaming()); got["v"][0] != d["v"][0] {
		t.Error("identity rename should be a no-op")
	}
}

func TestRenameUnknowns(t *testing.T) {
	f := logic.Conj(unk("v"), unk("w"))
	g := RenameUnknowns(f, map[string]string{"v": "v@post"})
	us := logic.Unknowns(g)
	if len(us) != 2 || us[0] != "v@post" || us[1] != "w" {
		t.Errorf("renamed unknowns = %v", us)
	}
}
