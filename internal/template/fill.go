package template

import "repro/internal/logic"

// Filler is a compiled form of logic.FillUnknowns for one fixed skeleton
// formula: compiling walks the skeleton once and records which spines lead
// to unknowns; each Fill then rebuilds only those spines (with the same
// smart constructors FillUnknowns uses, in the same order, so results are
// structurally identical on canonically-constructed skeletons) and returns
// every unknown-free subtree by reference. The iterative and constraint-
// based algorithms fill the same verification-condition skeletons thousands
// of times with different candidate solutions, so this turns the dominant
// O(|VC|) rebuild into O(|spine|).
//
// A Filler is immutable after construction and safe for concurrent use.
type Filler struct {
	f        logic.Formula
	unknowns []string
	fill     func(map[string]logic.Formula) logic.Formula
}

// NewFiller compiles a filler for f.
func NewFiller(f logic.Formula) *Filler {
	fn, has := compileFill(f)
	if !has {
		fn = func(map[string]logic.Formula) logic.Formula { return f }
	}
	return &Filler{f: f, unknowns: logic.Unknowns(f), fill: fn}
}

// Skeleton returns the compiled formula.
func (fl *Filler) Skeleton() logic.Formula { return fl.f }

// Unknowns returns the skeleton's unknown names in first-occurrence order.
func (fl *Filler) Unknowns() []string { return fl.unknowns }

// Fill instantiates the skeleton, replacing each unknown with its entry in
// fill (unknowns missing from fill are left in place, as with
// logic.FillUnknowns).
func (fl *Filler) Fill(fill map[string]logic.Formula) logic.Formula {
	return fl.fill(fill)
}

// FillSolution instantiates the skeleton with each unknown's predicate
// conjunction under s.
func (fl *Filler) FillSolution(s Solution) logic.Formula {
	fill := make(map[string]logic.Formula, len(fl.unknowns))
	for _, u := range fl.unknowns {
		if ps, ok := s[u]; ok {
			fill[u] = ps.Formula()
		}
	}
	return fl.fill(fill)
}

// compileFill returns a closure computing FillUnknowns(f, ·) and whether f
// contains any unknowns; unknown-free formulas report false and are returned
// by reference at fill time.
func compileFill(f logic.Formula) (func(map[string]logic.Formula) logic.Formula, bool) {
	switch f := f.(type) {
	case logic.Unknown:
		name := f.Name
		return func(fill map[string]logic.Formula) logic.Formula {
			if g, ok := fill[name]; ok {
				return g
			}
			return f
		}, true
	case logic.Atom, logic.Bool, logic.AEq:
		return nil, false
	case logic.Not:
		c, has := compileFill(f.F)
		if !has {
			return nil, false
		}
		return func(fill map[string]logic.Formula) logic.Formula {
			return logic.Neg(c(fill))
		}, true
	case logic.And:
		cs, any := compileFillList(f.Fs)
		if !any {
			return nil, false
		}
		fs := f.Fs
		return func(fill map[string]logic.Formula) logic.Formula {
			out := make([]logic.Formula, len(fs))
			for i, g := range fs {
				if cs[i] != nil {
					out[i] = cs[i](fill)
				} else {
					out[i] = g
				}
			}
			return logic.Conj(out...)
		}, true
	case logic.Or:
		cs, any := compileFillList(f.Fs)
		if !any {
			return nil, false
		}
		fs := f.Fs
		return func(fill map[string]logic.Formula) logic.Formula {
			out := make([]logic.Formula, len(fs))
			for i, g := range fs {
				if cs[i] != nil {
					out[i] = cs[i](fill)
				} else {
					out[i] = g
				}
			}
			return logic.Disj(out...)
		}, true
	case logic.Implies:
		ca, hasA := compileFill(f.A)
		cb, hasB := compileFill(f.B)
		if !hasA && !hasB {
			return nil, false
		}
		a, b := f.A, f.B
		return func(fill map[string]logic.Formula) logic.Formula {
			fa, fb := a, b
			if ca != nil {
				fa = ca(fill)
			}
			if cb != nil {
				fb = cb(fill)
			}
			return logic.Imp(fa, fb)
		}, true
	case logic.Forall:
		c, has := compileFill(f.Body)
		if !has {
			return nil, false
		}
		vars := f.Vars
		return func(fill map[string]logic.Formula) logic.Formula {
			return logic.All(vars, c(fill))
		}, true
	case logic.Exists:
		c, has := compileFill(f.Body)
		if !has {
			return nil, false
		}
		vars := f.Vars
		return func(fill map[string]logic.Formula) logic.Formula {
			return logic.Any(vars, c(fill))
		}, true
	}
	return nil, false
}

func compileFillList(fs []logic.Formula) ([]func(map[string]logic.Formula) logic.Formula, bool) {
	cs := make([]func(map[string]logic.Formula) logic.Formula, len(fs))
	any := false
	for i, g := range fs {
		if c, has := compileFill(g); has {
			cs[i] = c
			any = true
		}
	}
	return cs, any
}
