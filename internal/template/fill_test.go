package template

import (
	"testing"

	"repro/internal/logic"
)

// fillSkeletons is a grab-bag of template and VC shapes: unknowns under
// conjunction, implication (both sides), negation, quantifiers, mixed with
// unknown-free subtrees, plus fully ground formulas.
func fillSkeletons() []logic.Formula {
	x, y := logic.V("x"), logic.V("y")
	u := logic.Unknown{Name: "u"}
	w := logic.Unknown{Name: "w"}
	ground := logic.LeF(x, y)
	return []logic.Formula{
		u,
		ground,
		logic.Conj(u, ground),
		logic.Conj(ground, u, w),
		logic.Disj(logic.Neg(u), ground),
		logic.Imp(u, logic.Imp(ground, w)),
		logic.Imp(ground, logic.All([]string{"j"}, logic.Imp(u, logic.LeF(logic.V("j"), x)))),
		logic.All([]string{"j"}, logic.Any([]string{"k"}, logic.Conj(u, logic.LtF(logic.V("j"), logic.V("k"))))),
		logic.Neg(logic.Conj(u, w)),
		logic.Imp(logic.Conj(u, logic.GeF(x, logic.I(0))), logic.Disj(w, ground)),
	}
}

// fillMaps covers the interesting instantiations: full, partial, empty, and
// constant fills that make smart constructors collapse the spine.
func fillMaps() []map[string]logic.Formula {
	x := logic.V("x")
	return []map[string]logic.Formula{
		{"u": logic.GtF(x, logic.I(0)), "w": logic.LeF(x, logic.I(9))},
		{"u": logic.True, "w": logic.False},
		{"u": logic.False},
		{"w": logic.Conj(logic.GtF(x, logic.I(1)), logic.LtF(x, logic.I(5)))},
		{},
	}
}

// TestFillerMatchesFillUnknowns checks the compiled filler is observationally
// identical to logic.FillUnknowns on every skeleton × fill combination —
// including collapsing fills, where both must rebuild through the same smart
// constructors and produce structurally identical results.
func TestFillerMatchesFillUnknowns(t *testing.T) {
	for si, f := range fillSkeletons() {
		fl := NewFiller(f)
		for mi, m := range fillMaps() {
			got := fl.Fill(m)
			want := logic.FillUnknowns(f, m)
			if !logic.FormulaStructEq(got, want) {
				t.Errorf("skeleton %d fill %d: compiled %s, direct %s", si, mi, got, want)
			}
			if got.String() != want.String() {
				t.Errorf("skeleton %d fill %d: String mismatch %q vs %q", si, mi, got, want)
			}
		}
	}
}

// TestFillerSharesGroundSubtrees checks unknown-free subtrees are returned
// by reference, not rebuilt: filling a ground formula must return it as-is.
func TestFillerSharesGroundSubtrees(t *testing.T) {
	x, y := logic.V("x"), logic.V("y")
	ground := logic.LeF(x, y)
	fl := NewFiller(ground)
	if got := fl.Fill(map[string]logic.Formula{"u": logic.True}); !logic.FormulaStructEq(got, ground) {
		t.Errorf("ground fill rebuilt the formula: %s", got)
	}
	if len(fl.Unknowns()) != 0 {
		t.Errorf("ground skeleton reports unknowns %v", fl.Unknowns())
	}
}

// BenchmarkFillerFillSolution measures the compiled fill of a VC-shaped
// skeleton against BenchmarkSolutionFill's from-scratch FillUnknowns walk.
func BenchmarkFillerFillSolution(b *testing.B) {
	f, sigma := benchFillInstance()
	fl := NewFiller(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fl.FillSolution(sigma)
	}
}

// BenchmarkSolutionFill is the pre-interning baseline: a full FillUnknowns
// traversal of the same skeleton per instantiation.
func BenchmarkSolutionFill(b *testing.B) {
	f, sigma := benchFillInstance()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigma.Fill(f)
	}
}

func benchFillInstance() (logic.Formula, Solution) {
	x, n := logic.V("x"), logic.V("n")
	// A VC-shaped skeleton: big ground antecedent, quantified consequent
	// with one unknown deep inside.
	var ground []logic.Formula
	for i := 0; i < 12; i++ {
		ground = append(ground, logic.LeF(logic.Plus(x, logic.I(int64(i))), n))
	}
	f := logic.Imp(logic.Conj(ground...),
		logic.All([]string{"j"}, logic.Imp(logic.Unknown{Name: "u"},
			logic.LeF(logic.V("j"), n))))
	var preds []logic.Formula
	for i := 0; i < 4; i++ {
		preds = append(preds, logic.GeF(logic.V("j"), logic.I(int64(i))))
	}
	return f, Solution{"u": NewPredSet(preds...)}
}
