// Package core is the public façade of the verifier: it wires the SMT
// solver, the optimal-solutions engine, and the three fixed-point algorithms
// of Srivastava & Gulwani (PLDI 2009) behind one Verifier type.
//
// A verification task is a spec.Problem: a program, an invariant template
// per cut-point, and a predicate vocabulary per template unknown. Verify
// discovers an instantiation of the templates that makes every verification
// condition valid (an inductive invariant proving the program's assertions);
// InferPreconditions and InferPostconditions run the §6 extensions.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cbi"
	"repro/internal/fixpoint"
	"repro/internal/logic"
	"repro/internal/optimal"
	"repro/internal/precond"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/template"
	"repro/internal/vc"
)

// Method selects a fixed-point algorithm.
type Method int

// The three algorithms of the paper.
const (
	// LFP is the forward, least fixed-point iterative algorithm (§4.1).
	LFP Method = iota
	// GFP is the backward, greatest fixed-point iterative algorithm (§4.2).
	GFP
	// CFP is the constraint-based algorithm (§5).
	CFP
)

func (m Method) String() string {
	switch m {
	case LFP:
		return "LFP"
	case GFP:
		return "GFP"
	case CFP:
		return "CFP"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists all three algorithms in the paper's reporting order.
var Methods = []Method{LFP, GFP, CFP}

// Config tunes a Verifier. The zero value is usable.
type Config struct {
	// SMT configures the validity checker.
	SMT smt.Options
	// MaxNegDepth bounds OptimalNegativeSolutions' search (default 4).
	MaxNegDepth int
	// Optimal selects the optimal-solutions enumeration strategy and the
	// engine's internal parallelism.
	Optimal optimal.Options
	// Fixpoint bounds the iterative algorithms.
	Fixpoint fixpoint.Options
	// CBI bounds the constraint-based algorithm.
	CBI cbi.Options
	// Stats, when non-nil, collects the Figure 4–9 measurements.
	Stats *stats.Collector
}

// Verifier runs verification tasks. Not safe for concurrent use (the
// underlying SMT solver memoizes state).
type Verifier struct {
	cfg Config
	eng *optimal.Engine
}

// New returns a Verifier with the given configuration.
func New(cfg Config) *Verifier {
	if cfg.SMT.Stop == nil {
		cfg.SMT.Stop = cfg.Fixpoint.Stop
	}
	s := smt.NewSolver(cfg.SMT)
	s.SetStats(cfg.Stats)
	eng := optimal.New(s)
	if cfg.MaxNegDepth > 0 {
		eng.MaxDepth = cfg.MaxNegDepth
	}
	eng.Stats = cfg.Stats
	eng.Stop = cfg.Fixpoint.Stop
	eng.Opts = cfg.Optimal
	cfg.Fixpoint.Stats = cfg.Stats
	cfg.CBI.Stats = cfg.Stats
	return &Verifier{cfg: cfg, eng: eng}
}

// Engine exposes the underlying optimal-solutions engine (for tests and the
// benchmark harness).
func (v *Verifier) Engine() *optimal.Engine { return v.eng }

// Outcome reports a verification run.
type Outcome struct {
	// Proved reports whether an invariant solution was found.
	Proved bool
	// Solution is the discovered solution (nil when !Proved).
	Solution template.Solution
	// Invariants maps each templated cut-point to its instantiated,
	// simplified invariant.
	Invariants map[string]logic.Formula
	// Method is the algorithm that ran.
	Method Method
	// Duration is the wall-clock time of the run.
	Duration time.Duration
	// Steps counts worklist iterations (iterative methods) or SAT models
	// examined (CFP).
	Steps int
}

// Verify runs the selected algorithm on the problem.
func (v *Verifier) Verify(p *spec.Problem, m Method) (Outcome, error) {
	start := time.Now()
	out := Outcome{Method: m}
	switch m {
	case LFP:
		res, err := fixpoint.LeastFixedPoint(p, v.eng, v.cfg.Fixpoint)
		if err != nil {
			return out, err
		}
		out.Proved, out.Solution, out.Steps = res.Found(), res.Solution, res.Steps
	case GFP:
		res, err := fixpoint.GreatestFixedPoint(p, v.eng, v.cfg.Fixpoint)
		if err != nil {
			return out, err
		}
		out.Proved, out.Solution, out.Steps = res.Found(), res.Solution, res.Steps
	case CFP:
		res, err := cbi.Solve(p, v.eng, v.cfg.CBI)
		if err != nil {
			return out, err
		}
		out.Proved, out.Solution, out.Steps = res.Found(), res.Solution, res.Models
	default:
		return out, fmt.Errorf("core: unknown method %v", m)
	}
	out.Duration = time.Since(start)
	if out.Proved {
		out.Invariants = instantiate(p, out.Solution)
	}
	return out, nil
}

// InferPreconditions runs §6 maximally-weak precondition inference; the
// problem's entry template must contain unknowns.
func (v *Verifier) InferPreconditions(p *spec.Problem) ([]precond.Precondition, error) {
	if len(logic.Unknowns(p.TemplateAt(vc.Entry))) == 0 {
		return nil, fmt.Errorf("core: entry template has no unknowns; attach one to infer preconditions")
	}
	return precond.MaximallyWeak(p, v.eng, v.cfg.Fixpoint)
}

// InferPostconditions runs the dual maximally-strong postcondition
// inference; the problem's exit template must contain unknowns.
func (v *Verifier) InferPostconditions(p *spec.Problem) ([]precond.Postcondition, error) {
	if len(logic.Unknowns(p.TemplateAt(vc.Exit))) == 0 {
		return nil, fmt.Errorf("core: exit template has no unknowns; attach one to infer postconditions")
	}
	return precond.MaximallyStrong(p, v.eng, v.cfg.Fixpoint)
}

func instantiate(p *spec.Problem, sigma template.Solution) map[string]logic.Formula {
	out := map[string]logic.Formula{}
	for cut, t := range p.Templates {
		if len(logic.Unknowns(t)) == 0 {
			continue
		}
		out[cut] = logic.Simplify(sigma.Fill(t))
	}
	return out
}

// FormatOutcome renders an outcome for human consumption.
func FormatOutcome(o Outcome) string {
	if !o.Proved {
		return fmt.Sprintf("%s: no invariant found (%v, %d steps)", o.Method, o.Duration.Round(time.Millisecond), o.Steps)
	}
	s := fmt.Sprintf("%s: proved in %v (%d steps)\n", o.Method, o.Duration.Round(time.Millisecond), o.Steps)
	cuts := make([]string, 0, len(o.Invariants))
	for c := range o.Invariants {
		cuts = append(cuts, c)
	}
	sort.Strings(cuts)
	for _, c := range cuts {
		s += fmt.Sprintf("  %s: %s\n", c, o.Invariants[c])
	}
	return s
}
