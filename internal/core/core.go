// Package core is the public façade of the verifier: it wires the SMT
// solver, the optimal-solutions engine, and the three fixed-point algorithms
// of Srivastava & Gulwani (PLDI 2009) behind one Verifier type.
//
// A verification task is a spec.Problem: a program, an invariant template
// per cut-point, and a predicate vocabulary per template unknown. Verify
// discovers an instantiation of the templates that makes every verification
// condition valid (an inductive invariant proving the program's assertions);
// InferPreconditions and InferPostconditions run the §6 extensions.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cbi"
	"repro/internal/fixpoint"
	"repro/internal/logic"
	"repro/internal/optimal"
	"repro/internal/precond"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/template"
	"repro/internal/vc"
)

// Method selects a fixed-point algorithm.
type Method int

// The three algorithms of the paper.
const (
	// LFP is the forward, least fixed-point iterative algorithm (§4.1).
	LFP Method = iota
	// GFP is the backward, greatest fixed-point iterative algorithm (§4.2).
	GFP
	// CFP is the constraint-based algorithm (§5).
	CFP
)

func (m Method) String() string {
	switch m {
	case LFP:
		return "LFP"
	case GFP:
		return "GFP"
	case CFP:
		return "CFP"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists all three algorithms in the paper's reporting order.
var Methods = []Method{LFP, GFP, CFP}

// Config tunes a Verifier. The zero value is usable.
type Config struct {
	// SMT configures the validity checker.
	SMT smt.Options
	// MaxNegDepth bounds OptimalNegativeSolutions' search (default 4).
	MaxNegDepth int
	// Optimal selects the optimal-solutions enumeration strategy and the
	// engine's internal parallelism.
	Optimal optimal.Options
	// Fixpoint bounds the iterative algorithms.
	Fixpoint fixpoint.Options
	// CBI bounds the constraint-based algorithm.
	CBI cbi.Options
	// Stats, when non-nil, collects the Figure 4–9 measurements.
	Stats *stats.Collector
	// Cores, when non-nil, replaces the engine's private unsat-core store —
	// pass one store to several Verifiers (e.g. a serving pool) so cores
	// learned by any of them prune every sharer's lattice searches.
	Cores *optimal.CoreStore
	// Knowledge, when non-nil, is the on-disk knowledge base: validity and
	// consistency verdicts, theory lemmas, and unsat cores warm-load from it
	// and are written behind during solving, so a restarted process resumes
	// with everything its predecessor learned. The store must have been
	// opened with Params = SMT.StoreParams() (store.Open sidelines a store
	// written under different solver bounds).
	Knowledge *store.Store
}

// Verifier runs verification tasks. Not safe for concurrent use (the
// underlying SMT solver memoizes state).
type Verifier struct {
	cfg Config
	eng *optimal.Engine
}

// New returns a Verifier with the given configuration. Config.Fixpoint.Stop
// is the canonical cancellation hook: unless a layer's own Stop is set
// explicitly it is propagated into the SMT solver, the optimal-solutions
// engine, and the constraint-based algorithm, so one flag cancels every
// method.
func New(cfg Config) *Verifier {
	if cfg.SMT.Stop == nil {
		cfg.SMT.Stop = cfg.Fixpoint.Stop
	}
	if cfg.CBI.Stop == nil {
		// Without this a deadline-bounded CFP run kept grinding SAT models
		// after its caller gave up: only the SMT layer saw the flag, and it
		// is polled nowhere between models.
		cfg.CBI.Stop = cfg.Fixpoint.Stop
	}
	cfg.SMT.Store = cfg.Knowledge
	s := smt.NewSolver(cfg.SMT)
	s.SetStats(cfg.Stats)
	eng := optimal.New(s)
	if cfg.MaxNegDepth > 0 {
		eng.MaxDepth = cfg.MaxNegDepth
	}
	eng.Stats = cfg.Stats
	eng.Stop = cfg.Fixpoint.Stop
	eng.Opts = cfg.Optimal
	eng.ShareCores(cfg.Cores)
	eng.AttachKnowledge(cfg.Knowledge)
	cfg.Fixpoint.Stats = cfg.Stats
	cfg.CBI.Stats = cfg.Stats
	return &Verifier{cfg: cfg, eng: eng}
}

// Engine exposes the underlying optimal-solutions engine (for tests and the
// benchmark harness).
func (v *Verifier) Engine() *optimal.Engine { return v.eng }

// Outcome reports a verification run.
type Outcome struct {
	// Proved reports whether an invariant solution was found.
	Proved bool
	// Solution is the discovered solution (nil when !Proved).
	Solution template.Solution
	// Invariants maps each templated cut-point to its instantiated,
	// simplified invariant.
	Invariants map[string]logic.Formula
	// Method is the algorithm that ran.
	Method Method
	// Duration is the wall-clock time of the run.
	Duration time.Duration
	// Steps counts worklist iterations (iterative methods) or SAT models
	// examined (CFP).
	Steps int
	// Truncated reports that the search space was clipped (candidate cap,
	// MaxSteps with candidates pending, or MaxModels with SAT models left):
	// a !Proved outcome with Truncated set is "gave up", not "no invariant
	// exists in this template/predicate space".
	Truncated bool
	// Aborted reports that the run was cancelled via Fixpoint.Stop (deadline
	// or caller cancellation) before completing. A !Proved outcome with
	// Aborted set says nothing about the problem.
	Aborted bool
}

// Verify runs the selected algorithm on the problem.
func (v *Verifier) Verify(p *spec.Problem, m Method) (Outcome, error) {
	start := time.Now()
	out := Outcome{Method: m}
	switch m {
	case LFP:
		res, err := fixpoint.LeastFixedPoint(p, v.eng, v.cfg.Fixpoint)
		if err != nil {
			return out, err
		}
		out.Proved, out.Solution, out.Steps = res.Found(), res.Solution, res.Steps
		out.Truncated, out.Aborted = res.Truncated, res.Aborted
	case GFP:
		res, err := fixpoint.GreatestFixedPoint(p, v.eng, v.cfg.Fixpoint)
		if err != nil {
			return out, err
		}
		out.Proved, out.Solution, out.Steps = res.Found(), res.Solution, res.Steps
		out.Truncated, out.Aborted = res.Truncated, res.Aborted
	case CFP:
		res, err := cbi.Solve(p, v.eng, v.cfg.CBI)
		if err != nil {
			return out, err
		}
		out.Proved, out.Solution, out.Steps = res.Found(), res.Solution, res.Models
		out.Truncated, out.Aborted = res.Truncated, res.Aborted
	default:
		return out, fmt.Errorf("core: unknown method %v", m)
	}
	out.Duration = time.Since(start)
	if out.Proved {
		out.Invariants = instantiate(p, out.Solution)
	}
	return out, nil
}

// InferPreconditions runs §6 maximally-weak precondition inference; the
// problem's entry template must contain unknowns. The Enumeration reports
// whether the underlying exhaustive search was truncated or aborted (in
// which case the returned set may be incomplete).
func (v *Verifier) InferPreconditions(p *spec.Problem) ([]precond.Precondition, precond.Enumeration, error) {
	if len(logic.Unknowns(p.TemplateAt(vc.Entry))) == 0 {
		return nil, precond.Enumeration{}, fmt.Errorf("core: entry template has no unknowns; attach one to infer preconditions")
	}
	return precond.MaximallyWeak(p, v.eng, v.cfg.Fixpoint)
}

// InferPostconditions runs the dual maximally-strong postcondition
// inference; the problem's exit template must contain unknowns.
func (v *Verifier) InferPostconditions(p *spec.Problem) ([]precond.Postcondition, precond.Enumeration, error) {
	if len(logic.Unknowns(p.TemplateAt(vc.Exit))) == 0 {
		return nil, precond.Enumeration{}, fmt.Errorf("core: exit template has no unknowns; attach one to infer postconditions")
	}
	return precond.MaximallyStrong(p, v.eng, v.cfg.Fixpoint)
}

func instantiate(p *spec.Problem, sigma template.Solution) map[string]logic.Formula {
	out := map[string]logic.Formula{}
	for cut, t := range p.Templates {
		if len(logic.Unknowns(t)) == 0 {
			continue
		}
		out[cut] = logic.Simplify(sigma.Fill(t))
	}
	return out
}

// FormatOutcome renders an outcome for human consumption.
func FormatOutcome(o Outcome) string {
	if !o.Proved {
		verdict := "no invariant found"
		switch {
		case o.Aborted:
			verdict = "aborted (deadline/cancelled)"
		case o.Truncated:
			verdict = "no invariant found (search truncated)"
		}
		return fmt.Sprintf("%s: %s (%v, %d steps)", o.Method, verdict, o.Duration.Round(time.Millisecond), o.Steps)
	}
	s := fmt.Sprintf("%s: proved in %v (%d steps)\n", o.Method, o.Duration.Round(time.Millisecond), o.Steps)
	cuts := make([]string, 0, len(o.Invariants))
	for c := range o.Invariants {
		cuts = append(cuts, c)
	}
	sort.Strings(cuts)
	for _, c := range cuts {
		s += fmt.Sprintf("  %s: %s\n", c, o.Invariants[c])
	}
	return s
}
