package core

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/template"
)

func arrayInitProblem() *spec.Problem {
	prog := lang.MustParse(`
		program ArrayInit(array A, n) {
			i := 0;
			while loop (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall j. (0 <= j && j < n) => A[j] = 0);
		}`)
	qs := []logic.Formula{}
	for _, s := range []string{"j < 0", "j >= 0", "j < i", "j <= i", "j < n", "j <= n"} {
		qs = append(qs, lang.MustParseFormula(s))
	}
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": lang.MustParseFormula("forall j. ?v => A[j] = 0")},
		Q:         template.Domain{"v": qs},
	}
}

func TestVerifyAllMethods(t *testing.T) {
	c := stats.New()
	v := New(Config{Stats: c})
	for _, m := range Methods {
		out, err := v.Verify(arrayInitProblem(), m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !out.Proved {
			t.Errorf("%v: not proved", m)
		}
		if out.Invariants["loop"] == nil {
			t.Errorf("%v: no loop invariant reported", m)
		}
		if out.Duration <= 0 || out.Steps <= 0 {
			t.Errorf("%v: missing metrics: %+v", m, out)
		}
	}
	if len(c.QueryDurations()) == 0 {
		t.Error("stats collector received no queries")
	}
}

func TestVerifyUnprovable(t *testing.T) {
	v := New(Config{})
	p := arrayInitProblem()
	p.Q = template.Domain{"v": {lang.MustParseFormula("j < n")}}
	out, err := v.Verify(p, GFP)
	if err != nil {
		t.Fatal(err)
	}
	if out.Proved {
		t.Error("should not be provable with only j<n")
	}
}

func TestInferPreconditionsRequiresEntryTemplate(t *testing.T) {
	v := New(Config{})
	if _, _, err := v.InferPreconditions(arrayInitProblem()); err == nil {
		t.Error("expected an error without an entry template")
	}
}

func TestInferPostconditionsRequiresExitTemplate(t *testing.T) {
	v := New(Config{})
	if _, _, err := v.InferPostconditions(arrayInitProblem()); err == nil {
		t.Error("expected an error without an exit template")
	}
}

func TestMethodString(t *testing.T) {
	if LFP.String() != "LFP" || GFP.String() != "GFP" || CFP.String() != "CFP" {
		t.Error("method names")
	}
	if !strings.Contains(Method(42).String(), "42") {
		t.Error("unknown method formatting")
	}
}

func TestFormatOutcome(t *testing.T) {
	v := New(Config{})
	out, err := v.Verify(arrayInitProblem(), GFP)
	if err != nil {
		t.Fatal(err)
	}
	s := FormatOutcome(out)
	if !strings.Contains(s, "GFP: proved") || !strings.Contains(s, "loop:") {
		t.Errorf("format: %q", s)
	}
	s = FormatOutcome(Outcome{Method: LFP})
	if !strings.Contains(s, "no invariant") {
		t.Errorf("negative format: %q", s)
	}
}

func TestInferPostconditionsArrayInit(t *testing.T) {
	// Attach an exit template and let LFP compute the strongest
	// postcondition: all of A[0..n) is zero... expressed over the exit
	// template's own unknown.
	p := arrayInitProblem()
	p.Templates["exit"] = lang.MustParseFormula("forall j. ?post => A[j] = 0")
	p.Q["post"] = p.Q["v"]
	v := New(Config{})
	posts, _, err := v.InferPostconditions(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) == 0 {
		t.Fatal("no postcondition found")
	}
	// Among the maximally-strong postconditions there must be one covering
	// 0 ≤ j < n. (Another incomparable maximal one, phrased over the loop
	// counter i, may also be reported.)
	eng := v.Engine()
	covered := false
	for _, post := range posts {
		if eng.S.Valid(logic.Imp(post.Post,
			lang.MustParseFormula("forall j. (0 <= j && j < n) => A[j] = 0"))) {
			covered = true
		}
	}
	if !covered {
		t.Errorf("no postcondition covers [0,n): %v", posts)
	}
}
