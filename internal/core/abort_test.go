package core

import (
	"strings"
	"testing"
)

// TestVerifyAbortedAllMethods: Config.Fixpoint.Stop is the documented
// canonical cancellation hook; every method must honor it and report the
// abort in the Outcome instead of a false "no invariant found".
//
// For CFP this is the regression for a dropped wiring bug: New propagated
// Fixpoint.Stop into the SMT layer but not into CBI.Options.Stop, so a
// deadline-bounded CFP run kept enumerating SAT models (the loop polls no
// SMT query between models) long after its caller had given up — and then
// reported Aborted=false.
func TestVerifyAbortedAllMethods(t *testing.T) {
	for _, m := range Methods {
		cfg := Config{}
		cfg.Fixpoint.Stop = func() bool { return true }
		v := New(cfg)
		out, err := v.Verify(arrayInitProblem(), m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !out.Aborted {
			t.Errorf("%v: Stop fired but Outcome.Aborted=false", m)
		}
		if out.Proved {
			t.Errorf("%v: proved under an always-true Stop", m)
		}
	}
}

// TestVerifyTruncatedSurfaced: a clipped iterative search must mark the
// Outcome, so callers (CLI, benchmarks, the HTTP daemon) can distinguish
// "gave up" from "no invariant exists in this space".
func TestVerifyTruncatedSurfaced(t *testing.T) {
	cfg := Config{}
	cfg.Fixpoint.MaxSteps = 1
	cfg.Fixpoint.All = true
	v := New(cfg)
	out, err := v.Verify(arrayInitProblem(), GFP)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Truncated {
		t.Errorf("clipped exhaustive run not marked truncated: %+v", out)
	}
	if out.Aborted {
		t.Error("truncation is not an abort")
	}
}

// TestFormatOutcomeFlags checks the human rendering of the two new states.
func TestFormatOutcomeFlags(t *testing.T) {
	ab := FormatOutcome(Outcome{Method: CFP, Aborted: true})
	if want := "aborted"; !strings.Contains(ab, want) {
		t.Errorf("FormatOutcome(aborted) = %q, want substring %q", ab, want)
	}
	tr := FormatOutcome(Outcome{Method: GFP, Truncated: true})
	if want := "truncated"; !strings.Contains(tr, want) {
		t.Errorf("FormatOutcome(truncated) = %q, want substring %q", tr, want)
	}
}
