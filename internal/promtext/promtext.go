// Package promtext renders counters and gauges in the Prometheus text
// exposition format (version 0.0.4) without importing a client library.
// vs3d and vs3router expose their existing atomic counters through it on
// GET /metrics so a stock Prometheus scraper can watch a fleet; the format
// is append-only text, so a tiny writer is all the dependency we need.
package promtext

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Writer accumulates metric families and renders them in a deterministic
// order (families sorted by name, series sorted by label signature), which
// keeps /metrics diffs and tests stable.
type Writer struct {
	families map[string]*family
	names    []string
}

type family struct {
	help   string
	kind   string // "counter" or "gauge"
	series []series
}

type series struct {
	labels string // rendered {k="v",...} or ""
	value  float64
}

// New returns an empty Writer.
func New() *Writer {
	return &Writer{families: map[string]*family{}}
}

func (w *Writer) add(kind, name, help string, value float64, labels ...string) {
	f, ok := w.families[name]
	if !ok {
		f = &family{help: help, kind: kind}
		w.families[name] = f
		w.names = append(w.names, name)
	}
	f.series = append(f.series, series{labels: renderLabels(labels), value: value})
}

// Counter records one sample of a monotonically increasing metric. Labels
// are alternating key, value pairs.
func (w *Writer) Counter(name, help string, value float64, labels ...string) {
	w.add("counter", name, help, value, labels...)
}

// Gauge records one sample of a metric that can go up and down.
func (w *Writer) Gauge(name, help string, value float64, labels ...string) {
	w.add("gauge", name, help, value, labels...)
}

// renderLabels renders alternating key, value pairs as {k="v",...},
// escaping backslash, double quote, and newline in values per the format.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteTo renders every recorded family. Families appear in first-recorded
// order; series within a family sort by label signature.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	var n int64
	for _, name := range w.names {
		f := w.families[name]
		sort.SliceStable(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		c, err := fmt.Fprintf(out, "# HELP %s %s\n# TYPE %s %s\n", name, f.help, name, f.kind)
		n += int64(c)
		if err != nil {
			return n, err
		}
		for _, s := range f.series {
			c, err := fmt.Fprintf(out, "%s%s %s\n", name, s.labels, formatValue(s.value))
			n += int64(c)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// formatValue prints integers without an exponent or trailing zeros (the
// common case for counters) and falls back to %g.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
