package logic

import "fmt"

// Env is a concrete valuation: integer variables, arrays (sparse, default
// 0), and uninterpreted functions (by canonical argument key, default 0).
// It supports evaluating ground and bounded-quantifier formulas, which the
// test suite uses to differential-test the SMT solver and to check
// discovered invariants on concrete program traces.
type Env struct {
	Ints map[string]int64
	Arrs map[string]map[int64]int64
	Funs map[string]int64
	// QLo and QHi bound quantified variables: ∀x ranges over [QLo, QHi].
	QLo, QHi int64
}

// NewEnv returns an empty environment with quantifier bounds [lo, hi].
func NewEnv(lo, hi int64) *Env {
	return &Env{
		Ints: map[string]int64{},
		Arrs: map[string]map[int64]int64{},
		Funs: map[string]int64{},
		QLo:  lo,
		QHi:  hi,
	}
}

// Clone returns a deep copy.
func (e *Env) Clone() *Env {
	c := NewEnv(e.QLo, e.QHi)
	for k, v := range e.Ints {
		c.Ints[k] = v
	}
	for a, m := range e.Arrs {
		cm := make(map[int64]int64, len(m))
		for i, v := range m {
			cm[i] = v
		}
		c.Arrs[a] = cm
	}
	for k, v := range e.Funs {
		c.Funs[k] = v
	}
	return c
}

// SetArr replaces array a with the given cells (indexes 0..len-1).
func (e *Env) SetArr(a string, cells []int64) {
	m := make(map[int64]int64, len(cells))
	for i, v := range cells {
		m[int64(i)] = v
	}
	e.Arrs[a] = m
}

// ArrSlice reads cells 0..n-1 of array a.
func (e *Env) ArrSlice(a string, n int64) []int64 {
	out := make([]int64, n)
	for i := int64(0); i < n; i++ {
		out[i] = e.Arrs[a][i]
	}
	return out
}

// EvalTerm evaluates a term; unbound variables and function applications
// read as 0.
func (e *Env) EvalTerm(t Term) int64 {
	switch t := t.(type) {
	case Var:
		return e.Ints[t.Name]
	case IntLit:
		return t.Val
	case Add:
		return e.EvalTerm(t.X) + e.EvalTerm(t.Y)
	case Sub:
		return e.EvalTerm(t.X) - e.EvalTerm(t.Y)
	case Mul:
		return t.C * e.EvalTerm(t.X)
	case Select:
		arr, idx := e.evalArr(t.A), e.EvalTerm(t.Idx)
		return arr[idx]
	case Apply:
		key := t.F
		for _, a := range t.Args {
			key += fmt.Sprintf("|%d", e.EvalTerm(a))
		}
		return e.Funs[key]
	}
	panic(fmt.Sprintf("logic: eval of unknown term %T", t))
}

// evalArr evaluates an array expression to its cell map (copy-on-store).
func (e *Env) evalArr(a Arr) map[int64]int64 {
	switch a := a.(type) {
	case ArrVar:
		if m, ok := e.Arrs[a.Name]; ok {
			return m
		}
		return map[int64]int64{}
	case Store:
		base := e.evalArr(a.A)
		out := make(map[int64]int64, len(base)+1)
		for i, v := range base {
			out[i] = v
		}
		out[e.EvalTerm(a.Idx)] = e.EvalTerm(a.Val)
		return out
	}
	panic(fmt.Sprintf("logic: eval of unknown array %T", a))
}

// EvalFormula evaluates a formula; quantifiers range over [QLo, QHi], so
// the result is exact for models whose relevant indices lie in that window
// and an approximation otherwise. Unknowns are an error.
func (e *Env) EvalFormula(f Formula) bool {
	switch f := f.(type) {
	case Atom:
		return evalRel(f.Op, e.EvalTerm(f.X), e.EvalTerm(f.Y))
	case Bool:
		return f.Val
	case Not:
		return !e.EvalFormula(f.F)
	case And:
		for _, g := range f.Fs {
			if !e.EvalFormula(g) {
				return false
			}
		}
		return true
	case Or:
		for _, g := range f.Fs {
			if e.EvalFormula(g) {
				return true
			}
		}
		return false
	case Implies:
		return !e.EvalFormula(f.A) || e.EvalFormula(f.B)
	case Forall:
		return e.evalQuant(f.Vars, f.Body, true)
	case Exists:
		return e.evalQuant(f.Vars, f.Body, false)
	case AEq:
		l, r := e.evalArr(f.L), e.evalArr(f.R)
		for i := e.QLo; i <= e.QHi; i++ {
			if l[i] != r[i] {
				return false
			}
		}
		return true
	case Unknown:
		panic("logic: eval of a template unknown")
	}
	panic(fmt.Sprintf("logic: eval of unknown formula %T", f))
}

func (e *Env) evalQuant(vars []string, body Formula, univ bool) bool {
	if len(vars) == 0 {
		return e.EvalFormula(body)
	}
	v, rest := vars[0], vars[1:]
	saved, had := e.Ints[v]
	defer func() {
		if had {
			e.Ints[v] = saved
		} else {
			delete(e.Ints, v)
		}
	}()
	for x := e.QLo; x <= e.QHi; x++ {
		e.Ints[v] = x
		got := e.evalQuant(rest, body, univ)
		if univ && !got {
			return false
		}
		if !univ && got {
			return true
		}
	}
	return univ
}
