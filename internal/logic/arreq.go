package logic

import "fmt"

// AEq is the extensional array equality L = R. Weakest preconditions of
// array writes introduce it (A' = upd(A, i, e)). The SMT layer rewrites it
// to ∀k: L[k] = R[k] before solving, so NNF never sees this node.
type AEq struct{ L, R Arr }

func (AEq) isFormula() {}

func (a AEq) String() string { return fmt.Sprintf("%s = %s", a.L, a.R) }

// ArrEqF builds the array equality l = r.
func ArrEqF(l, r Arr) Formula { return AEq{L: l, R: r} }

// substituteAEq, collectAEq etc. are wired into the main switches below via
// these helpers (kept in one file so array-equality support is easy to audit).

func substituteAEqCase(f AEq, sub map[string]Term, asub map[string]Arr) Formula {
	return AEq{L: SubstituteArr(f.L, sub, asub), R: SubstituteArr(f.R, sub, asub)}
}

func freeVarsAEqCase(f AEq, bound, vs, avs map[string]bool) {
	tv, ta := map[string]bool{}, map[string]bool{}
	ArrTermVars(f.L, tv, ta)
	ArrTermVars(f.R, tv, ta)
	for v := range tv {
		if !bound[v] {
			vs[v] = true
		}
	}
	for a := range ta {
		avs[a] = true
	}
}

// RewriteArrayEq replaces every array equality L = R in f with
// ∀k: L[k] = R[k] for a fresh k drawn from nm. It must run before NNF.
func RewriteArrayEq(f Formula, nm *Namer) Formula {
	switch f := f.(type) {
	case AEq:
		if ArrEq(f.L, f.R) {
			return True
		}
		k := nm.Fresh()
		return Forall{Vars: []string{k}, Body: EqF(Sel(f.L, V(k)), Sel(f.R, V(k)))}
	case Atom, Bool, Unknown:
		return f
	case Not:
		return Neg(RewriteArrayEq(f.F, nm))
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = RewriteArrayEq(g, nm)
		}
		return Conj(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = RewriteArrayEq(g, nm)
		}
		return Disj(out...)
	case Implies:
		return Imp(RewriteArrayEq(f.A, nm), RewriteArrayEq(f.B, nm))
	case Forall:
		return All(f.Vars, RewriteArrayEq(f.Body, nm))
	case Exists:
		return Any(f.Vars, RewriteArrayEq(f.Body, nm))
	}
	panic(fmt.Sprintf("logic: unknown formula %T", f))
}
