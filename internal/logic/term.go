// Package logic defines the term and formula language shared by every layer
// of the verifier: programs are lowered to formulas over it, templates are
// formulas with unknowns in it, and the SMT solver decides validity of its
// quantified fragment.
//
// Terms are integer-sorted expressions over scalar variables, integer
// literals, linear arithmetic, array reads (select), and uninterpreted
// function applications (used for skolem witnesses and list "next" fields).
// Array-sorted terms are array variables and functional array writes
// (store/upd). The language matches §2 of Srivastava & Gulwani (PLDI 2009).
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Term is an integer-sorted expression.
type Term interface {
	isTerm()
	String() string
}

// Arr is an array-sorted expression.
type Arr interface {
	isArr()
	String() string
}

// Var is an integer program or bound variable.
type Var struct{ Name string }

// IntLit is an integer constant.
type IntLit struct{ Val int64 }

// Add is t X + Y.
type Add struct{ X, Y Term }

// Sub is X - Y.
type Sub struct{ X, Y Term }

// Mul is C * X with a constant coefficient; the language is linear.
type Mul struct {
	C int64
	X Term
}

// Select is an array read A[Idx].
type Select struct {
	A   Arr
	Idx Term
}

// Apply is an application F(Args...) of an uninterpreted integer function.
// Skolemization introduces these; the list benchmarks use them for next().
type Apply struct {
	F    string
	Args []Term
}

// ArrVar is an array-valued variable.
type ArrVar struct{ Name string }

// Store is the functional array write upd(A, Idx, Val).
type Store struct {
	A        Arr
	Idx, Val Term
}

func (Var) isTerm()    {}
func (IntLit) isTerm() {}
func (Add) isTerm()    {}
func (Sub) isTerm()    {}
func (Mul) isTerm()    {}
func (Select) isTerm() {}
func (Apply) isTerm()  {}

func (ArrVar) isArr() {}
func (Store) isArr()  {}

func (v Var) String() string    { return v.Name }
func (l IntLit) String() string { return fmt.Sprintf("%d", l.Val) }
func (a Add) String() string    { return fmt.Sprintf("(%s + %s)", a.X, a.Y) }
func (s Sub) String() string    { return fmt.Sprintf("(%s - %s)", s.X, s.Y) }
func (m Mul) String() string    { return fmt.Sprintf("(%d * %s)", m.C, m.X) }
func (s Select) String() string { return fmt.Sprintf("%s[%s]", s.A, s.Idx) }
func (a Apply) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.F, strings.Join(parts, ", "))
}
func (v ArrVar) String() string { return v.Name }
func (s Store) String() string  { return fmt.Sprintf("upd(%s, %s, %s)", s.A, s.Idx, s.Val) }

// V returns an integer variable term.
func V(name string) Term { return Var{Name: name} }

// I returns an integer literal term.
func I(v int64) Term { return IntLit{Val: v} }

// AV returns an array variable.
func AV(name string) Arr { return ArrVar{Name: name} }

// Plus builds X + Y, folding literal operands.
func Plus(x, y Term) Term {
	if lx, ok := x.(IntLit); ok {
		if ly, ok := y.(IntLit); ok {
			return IntLit{Val: lx.Val + ly.Val}
		}
		if lx.Val == 0 {
			return y
		}
	}
	if ly, ok := y.(IntLit); ok && ly.Val == 0 {
		return x
	}
	return Add{X: x, Y: y}
}

// Minus builds X - Y, folding literal operands.
func Minus(x, y Term) Term {
	if lx, ok := x.(IntLit); ok {
		if ly, ok := y.(IntLit); ok {
			return IntLit{Val: lx.Val - ly.Val}
		}
	}
	if ly, ok := y.(IntLit); ok && ly.Val == 0 {
		return x
	}
	return Sub{X: x, Y: y}
}

// Times builds c*X, folding trivial coefficients.
func Times(c int64, x Term) Term {
	switch {
	case c == 0:
		return IntLit{Val: 0}
	case c == 1:
		return x
	}
	if lx, ok := x.(IntLit); ok {
		return IntLit{Val: c * lx.Val}
	}
	return Mul{C: c, X: x}
}

// Sel builds the array read A[idx].
func Sel(a Arr, idx Term) Term { return Select{A: a, Idx: idx} }

// Upd builds the functional array write upd(a, idx, val).
func Upd(a Arr, idx, val Term) Arr { return Store{A: a, Idx: idx, Val: val} }

// App builds an uninterpreted function application.
func App(f string, args ...Term) Term { return Apply{F: f, Args: args} }

// TermEq reports structural equality of two terms. (Historically this
// compared String() renderings; printing is injective on the grammar, so the
// allocation-free structural walk decides the same relation.)
func TermEq(x, y Term) bool { return TermStructEq(x, y) }

// ArrEq reports structural equality of two array terms.
func ArrEq(x, y Arr) bool { return ArrStructEq(x, y) }

// SubstituteTerm replaces integer variables per sub and array variables per
// asub throughout t. Missing entries are left unchanged.
func SubstituteTerm(t Term, sub map[string]Term, asub map[string]Arr) Term {
	switch t := t.(type) {
	case Var:
		if r, ok := sub[t.Name]; ok {
			return r
		}
		return t
	case IntLit:
		return t
	case Add:
		return Plus(SubstituteTerm(t.X, sub, asub), SubstituteTerm(t.Y, sub, asub))
	case Sub:
		return Minus(SubstituteTerm(t.X, sub, asub), SubstituteTerm(t.Y, sub, asub))
	case Mul:
		return Times(t.C, SubstituteTerm(t.X, sub, asub))
	case Select:
		return Select{A: SubstituteArr(t.A, sub, asub), Idx: SubstituteTerm(t.Idx, sub, asub)}
	case Apply:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = SubstituteTerm(a, sub, asub)
		}
		return Apply{F: t.F, Args: args}
	}
	panic(fmt.Sprintf("logic: unknown term %T", t))
}

// SubstituteArr replaces variables throughout an array term.
func SubstituteArr(a Arr, sub map[string]Term, asub map[string]Arr) Arr {
	switch a := a.(type) {
	case ArrVar:
		if r, ok := asub[a.Name]; ok {
			return r
		}
		return a
	case Store:
		return Store{
			A:   SubstituteArr(a.A, sub, asub),
			Idx: SubstituteTerm(a.Idx, sub, asub),
			Val: SubstituteTerm(a.Val, sub, asub),
		}
	}
	panic(fmt.Sprintf("logic: unknown array term %T", a))
}

// TermVars adds the free integer variables of t to vs and array variables to avs.
func TermVars(t Term, vs map[string]bool, avs map[string]bool) {
	switch t := t.(type) {
	case Var:
		vs[t.Name] = true
	case IntLit:
	case Add:
		TermVars(t.X, vs, avs)
		TermVars(t.Y, vs, avs)
	case Sub:
		TermVars(t.X, vs, avs)
		TermVars(t.Y, vs, avs)
	case Mul:
		TermVars(t.X, vs, avs)
	case Select:
		ArrTermVars(t.A, vs, avs)
		TermVars(t.Idx, vs, avs)
	case Apply:
		for _, a := range t.Args {
			TermVars(a, vs, avs)
		}
	default:
		panic(fmt.Sprintf("logic: unknown term %T", t))
	}
}

// ArrTermVars adds the free variables of array term a to vs/avs.
func ArrTermVars(a Arr, vs map[string]bool, avs map[string]bool) {
	switch a := a.(type) {
	case ArrVar:
		avs[a.Name] = true
	case Store:
		ArrTermVars(a.A, vs, avs)
		TermVars(a.Idx, vs, avs)
		TermVars(a.Val, vs, avs)
	default:
		panic(fmt.Sprintf("logic: unknown array term %T", a))
	}
}

// SortedKeys returns the keys of a string-keyed set in sorted order; used to
// keep every iteration over variable sets deterministic.
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
