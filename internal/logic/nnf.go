package logic

import (
	"fmt"
	"strconv"
)

// NNF converts f (which must be unknown-free) to negation normal form:
// implications are eliminated, and negations are pushed onto atoms where they
// are absorbed by flipping the relational operator.
func NNF(f Formula) Formula {
	return nnf(f, false)
}

func nnf(f Formula, negate bool) Formula {
	switch f := f.(type) {
	case Atom:
		if negate {
			return Atom{Op: f.Op.Negate(), X: f.X, Y: f.Y}
		}
		return f
	case Bool:
		return Bool{Val: f.Val != negate}
	case Not:
		return nnf(f.F, !negate)
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = nnf(g, negate)
		}
		if negate {
			return Disj(out...)
		}
		return Conj(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = nnf(g, negate)
		}
		if negate {
			return Conj(out...)
		}
		return Disj(out...)
	case Implies:
		// a ⇒ b  ≡  ¬a ∨ b
		if negate {
			return Conj(nnf(f.A, false), nnf(f.B, true))
		}
		return Disj(nnf(f.A, true), nnf(f.B, false))
	case Forall:
		if negate {
			return Any(f.Vars, nnf(f.Body, true))
		}
		return All(f.Vars, nnf(f.Body, false))
	case Exists:
		if negate {
			return All(f.Vars, nnf(f.Body, true))
		}
		return Any(f.Vars, nnf(f.Body, false))
	case Unknown:
		panic("logic: NNF applied to a formula with unresolved unknowns")
	}
	panic(fmt.Sprintf("logic: unknown formula %T", f))
}

// Namer hands out fresh variable names with a common prefix.
type Namer struct {
	prefix string
	n      int
}

// NewNamer returns a Namer producing prefix0, prefix1, ...
func NewNamer(prefix string) *Namer { return &Namer{prefix: prefix} }

// Fresh returns the next unused name.
func (nm *Namer) Fresh() string {
	nm.n++
	return nm.prefix + strconv.Itoa(nm.n)
}

// StandardizeApart renames every bound variable in f to a fresh name from nm,
// so that no two quantifiers bind the same name and no bound name collides
// with a free name. The input must be unknown-free.
func StandardizeApart(f Formula, nm *Namer) Formula {
	return standardize(f, nm, map[string]Term{})
}

func standardize(f Formula, nm *Namer, ren map[string]Term) Formula {
	switch f := f.(type) {
	case Atom:
		return Atom{Op: f.Op, X: SubstituteTerm(f.X, ren, nil), Y: SubstituteTerm(f.Y, ren, nil)}
	case Bool:
		return f
	case Not:
		return Neg(standardize(f.F, nm, ren))
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = standardize(g, nm, ren)
		}
		return Conj(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = standardize(g, nm, ren)
		}
		return Disj(out...)
	case Implies:
		return Imp(standardize(f.A, nm, ren), standardize(f.B, nm, ren))
	case Forall:
		vars, undo := renameBound(f.Vars, nm, ren)
		body := standardize(f.Body, nm, ren)
		undoRename(f.Vars, undo, ren)
		return All(vars, body)
	case Exists:
		vars, undo := renameBound(f.Vars, nm, ren)
		body := standardize(f.Body, nm, ren)
		undoRename(f.Vars, undo, ren)
		return Any(vars, body)
	case Unknown:
		panic("logic: StandardizeApart applied to a formula with unresolved unknowns")
	case AEq:
		return AEq{L: SubstituteArr(f.L, ren, nil), R: SubstituteArr(f.R, ren, nil)}
	}
	panic(fmt.Sprintf("logic: unknown formula %T", f))
}

// renameBound binds each var to a fresh name in ren, in place, returning the
// fresh names and the shadowed previous bindings (nil entries mark names that
// were unbound). Mutate-and-undo keeps standardize from copying the whole
// rename map at every quantifier, which dominated its allocation volume.
func renameBound(vars []string, nm *Namer, ren map[string]Term) ([]string, []Term) {
	out := make([]string, len(vars))
	undo := make([]Term, len(vars))
	for i, v := range vars {
		fresh := nm.Fresh()
		out[i] = fresh
		undo[i] = ren[v]
		ren[v] = Var{Name: fresh}
	}
	return out, undo
}

// undoRename restores the bindings shadowed by renameBound, newest first so
// duplicate names within one quantifier unwind correctly.
func undoRename(vars []string, undo []Term, ren map[string]Term) {
	for i := len(vars) - 1; i >= 0; i-- {
		if undo[i] == nil {
			delete(ren, vars[i])
		} else {
			ren[vars[i]] = undo[i]
		}
	}
}

// Simplify performs shallow logical simplification: constant folding,
// flattening of nested conjunctions/disjunctions, removal of duplicate
// conjuncts/disjuncts, and evaluation of ground atoms over literals.
func Simplify(f Formula) Formula {
	switch f := f.(type) {
	case Atom:
		if x, ok := f.X.(IntLit); ok {
			if y, ok := f.Y.(IntLit); ok {
				return Bool{Val: evalRel(f.Op, x.Val, y.Val)}
			}
		}
		if TermEq(f.X, f.Y) {
			switch f.Op {
			case Eq, Le, Ge:
				return True
			case Neq, Lt, Gt:
				return False
			}
		}
		return f
	case Bool:
		return f
	case Not:
		return Neg(Simplify(f.F))
	case And:
		var out []Formula
		var seen formulaSet
		for _, g := range f.Fs {
			s := Simplify(g)
			switch s := s.(type) {
			case Bool:
				if !s.Val {
					return False
				}
				continue
			case And:
				for _, h := range s.Fs {
					if seen.add(h) {
						out = append(out, h)
					}
				}
				continue
			}
			if seen.add(s) {
				out = append(out, s)
			}
		}
		return Conj(out...)
	case Or:
		var out []Formula
		var seen formulaSet
		for _, g := range f.Fs {
			s := Simplify(g)
			switch s := s.(type) {
			case Bool:
				if s.Val {
					return True
				}
				continue
			case Or:
				for _, h := range s.Fs {
					if seen.add(h) {
						out = append(out, h)
					}
				}
				continue
			}
			if seen.add(s) {
				out = append(out, s)
			}
		}
		return Disj(out...)
	case Implies:
		return Imp(Simplify(f.A), Simplify(f.B))
	case Forall:
		return All(f.Vars, Simplify(f.Body))
	case Exists:
		return Any(f.Vars, Simplify(f.Body))
	case Unknown:
		return f
	case AEq:
		if ArrEq(f.L, f.R) {
			return True
		}
		return f
	}
	panic(fmt.Sprintf("logic: unknown formula %T", f))
}

func evalRel(op RelOp, x, y int64) bool {
	switch op {
	case Eq:
		return x == y
	case Neq:
		return x != y
	case Lt:
		return x < y
	case Le:
		return x <= y
	case Gt:
		return x > y
	case Ge:
		return x >= y
	}
	panic("logic: bad RelOp")
}
