package logic

// Structural hashing and allocation-free structural equality.
//
// Every syntax-tree node kind gets a distinct tag byte; hashes are an
// FNV-1a-style fold over tags, embedded strings, and integer payloads, with
// child counts mixed in so that variadic nodes (And/Or/Apply) of different
// arities cannot collide by concatenation. HashFormula/HashTerm also count
// nodes, so interning can record a size without a second traversal.
//
// The structural-equality predicates replace the historical
// `x.String() == y.String()` implementations of TermEq/ArrEq/FormulaEq.
// Printing is injective on this grammar (variable and function names are
// identifiers, literals print distinctly), so structural equality decides
// exactly the same relation — without serializing either side.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Node tags. Terms and formulas share one tag space.
const (
	tagVar uint64 = iota + 1
	tagIntLit
	tagAdd
	tagSub
	tagMul
	tagSelect
	tagApply
	tagArrVar
	tagStore
	tagAtom
	tagBool
	tagNot
	tagAnd
	tagOr
	tagImplies
	tagForall
	tagExists
	tagUnknown
	tagAEq
)

func mix(h, v uint64) uint64 { return (h ^ v) * fnvPrime64 }

func mixString(h uint64, s string) uint64 {
	h = mix(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// HashTerm returns the structural hash of t and adds its node count to *n.
func HashTerm(t Term, n *int) uint64 { return hashTerm(fnvOffset64, t, n) }

// HashArr returns the structural hash of a and adds its node count to *n.
func HashArr(a Arr, n *int) uint64 { return hashArr(fnvOffset64, a, n) }

// HashFormula returns the structural hash of f and adds its node count to *n.
func HashFormula(f Formula, n *int) uint64 { return hashFormula(fnvOffset64, f, n) }

func hashTerm(h uint64, t Term, n *int) uint64 {
	*n++
	switch t := t.(type) {
	case Var:
		return mixString(mix(h, tagVar), t.Name)
	case IntLit:
		return mix(mix(h, tagIntLit), uint64(t.Val))
	case Add:
		return hashTerm(hashTerm(mix(h, tagAdd), t.X, n), t.Y, n)
	case Sub:
		return hashTerm(hashTerm(mix(h, tagSub), t.X, n), t.Y, n)
	case Mul:
		return hashTerm(mix(mix(h, tagMul), uint64(t.C)), t.X, n)
	case Select:
		return hashTerm(hashArr(mix(h, tagSelect), t.A, n), t.Idx, n)
	case Apply:
		h = mix(mixString(mix(h, tagApply), t.F), uint64(len(t.Args)))
		for _, a := range t.Args {
			h = hashTerm(h, a, n)
		}
		return h
	}
	panic("logic: unknown term in hashTerm")
}

func hashArr(h uint64, a Arr, n *int) uint64 {
	*n++
	switch a := a.(type) {
	case ArrVar:
		return mixString(mix(h, tagArrVar), a.Name)
	case Store:
		return hashTerm(hashTerm(hashArr(mix(h, tagStore), a.A, n), a.Idx, n), a.Val, n)
	}
	panic("logic: unknown array term in hashArr")
}

func hashFormula(h uint64, f Formula, n *int) uint64 {
	*n++
	switch f := f.(type) {
	case Atom:
		return hashTerm(hashTerm(mix(mix(h, tagAtom), uint64(f.Op)), f.X, n), f.Y, n)
	case Bool:
		v := uint64(0)
		if f.Val {
			v = 1
		}
		return mix(mix(h, tagBool), v)
	case Not:
		return hashFormula(mix(h, tagNot), f.F, n)
	case And:
		h = mix(mix(h, tagAnd), uint64(len(f.Fs)))
		for _, g := range f.Fs {
			h = hashFormula(h, g, n)
		}
		return h
	case Or:
		h = mix(mix(h, tagOr), uint64(len(f.Fs)))
		for _, g := range f.Fs {
			h = hashFormula(h, g, n)
		}
		return h
	case Implies:
		return hashFormula(hashFormula(mix(h, tagImplies), f.A, n), f.B, n)
	case Forall:
		h = mix(mix(h, tagForall), uint64(len(f.Vars)))
		for _, v := range f.Vars {
			h = mixString(h, v)
		}
		return hashFormula(h, f.Body, n)
	case Exists:
		h = mix(mix(h, tagExists), uint64(len(f.Vars)))
		for _, v := range f.Vars {
			h = mixString(h, v)
		}
		return hashFormula(h, f.Body, n)
	case Unknown:
		return mixString(mix(h, tagUnknown), f.Name)
	case AEq:
		return hashArr(hashArr(mix(h, tagAEq), f.L, n), f.R, n)
	}
	panic("logic: unknown formula in hashFormula")
}

// TermStructEq reports structural equality of two terms without serializing.
func TermStructEq(x, y Term) bool {
	switch x := x.(type) {
	case Var:
		y, ok := y.(Var)
		return ok && x.Name == y.Name
	case IntLit:
		y, ok := y.(IntLit)
		return ok && x.Val == y.Val
	case Add:
		y, ok := y.(Add)
		return ok && TermStructEq(x.X, y.X) && TermStructEq(x.Y, y.Y)
	case Sub:
		y, ok := y.(Sub)
		return ok && TermStructEq(x.X, y.X) && TermStructEq(x.Y, y.Y)
	case Mul:
		y, ok := y.(Mul)
		return ok && x.C == y.C && TermStructEq(x.X, y.X)
	case Select:
		y, ok := y.(Select)
		return ok && ArrStructEq(x.A, y.A) && TermStructEq(x.Idx, y.Idx)
	case Apply:
		y, ok := y.(Apply)
		if !ok || x.F != y.F || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !TermStructEq(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	panic("logic: unknown term in TermStructEq")
}

// ArrStructEq reports structural equality of two array terms.
func ArrStructEq(x, y Arr) bool {
	switch x := x.(type) {
	case ArrVar:
		y, ok := y.(ArrVar)
		return ok && x.Name == y.Name
	case Store:
		y, ok := y.(Store)
		return ok && ArrStructEq(x.A, y.A) && TermStructEq(x.Idx, y.Idx) && TermStructEq(x.Val, y.Val)
	}
	panic("logic: unknown array term in ArrStructEq")
}

// FormulaStructEq reports structural equality of two formulas.
func FormulaStructEq(a, b Formula) bool {
	switch a := a.(type) {
	case Atom:
		b, ok := b.(Atom)
		return ok && a.Op == b.Op && TermStructEq(a.X, b.X) && TermStructEq(a.Y, b.Y)
	case Bool:
		b, ok := b.(Bool)
		return ok && a.Val == b.Val
	case Not:
		b, ok := b.(Not)
		return ok && FormulaStructEq(a.F, b.F)
	case And:
		b, ok := b.(And)
		if !ok || len(a.Fs) != len(b.Fs) {
			return false
		}
		for i := range a.Fs {
			if !FormulaStructEq(a.Fs[i], b.Fs[i]) {
				return false
			}
		}
		return true
	case Or:
		b, ok := b.(Or)
		if !ok || len(a.Fs) != len(b.Fs) {
			return false
		}
		for i := range a.Fs {
			if !FormulaStructEq(a.Fs[i], b.Fs[i]) {
				return false
			}
		}
		return true
	case Implies:
		b, ok := b.(Implies)
		return ok && FormulaStructEq(a.A, b.A) && FormulaStructEq(a.B, b.B)
	case Forall:
		b, ok := b.(Forall)
		return ok && stringsEq(a.Vars, b.Vars) && FormulaStructEq(a.Body, b.Body)
	case Exists:
		b, ok := b.(Exists)
		return ok && stringsEq(a.Vars, b.Vars) && FormulaStructEq(a.Body, b.Body)
	case Unknown:
		b, ok := b.(Unknown)
		return ok && a.Name == b.Name
	case AEq:
		b, ok := b.(AEq)
		return ok && ArrStructEq(a.L, b.L) && ArrStructEq(a.R, b.R)
	}
	panic("logic: unknown formula in FormulaStructEq")
}

func stringsEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// formulaSet is an order-insensitive membership set of formulas keyed by
// structural hash with structural-equality collision resolution. It replaces
// String()-keyed dedup maps on hot paths (Simplify, quantifier
// instantiation) so membership tests never serialize.
type formulaSet struct {
	buckets map[uint64][]Formula
}

// add inserts f and reports whether it was absent.
func (s *formulaSet) add(f Formula) bool {
	if s.buckets == nil {
		s.buckets = make(map[uint64][]Formula)
	}
	n := 0
	h := HashFormula(f, &n)
	for _, g := range s.buckets[h] {
		if FormulaStructEq(f, g) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], f)
	return true
}

// TrivialVerdict decides syntactically trivial formulas without touching the
// solver, the cache, or the allocator: boolean constants, ground literal
// comparisons, and reflexive atoms (x ⊛ x). The second result reports whether
// a verdict was reached.
func TrivialVerdict(f Formula) (verdict, ok bool) {
	switch f := f.(type) {
	case Bool:
		return f.Val, true
	case Atom:
		if x, xok := f.X.(IntLit); xok {
			if y, yok := f.Y.(IntLit); yok {
				return evalRel(f.Op, x.Val, y.Val), true
			}
		}
		if TermStructEq(f.X, f.Y) {
			switch f.Op {
			case Eq, Le, Ge:
				return true, true
			case Neq, Lt, Gt:
				return false, true
			}
		}
	}
	return false, false
}
