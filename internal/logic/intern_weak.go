//go:build go1.24

package logic

import (
	"sync"
	"weak"
)

// Weak intern table (see intern.go for the design rationale): buckets hold
// weak.Pointer entries, so a canonical handle — and the formula tree it
// pins — is reclaimable as soon as no cache or memo chain references it.
// Dead entries are compacted opportunistically whenever their bucket is
// probed, and a full shard sweep runs every internSweepEvery inserts so
// buckets that are never probed again cannot accumulate dead stubs.

// internSweepEvery bounds dead-entry accumulation per shard: at most this
// many inserts happen between full shard sweeps.
const internSweepEvery = 4096

type internShard struct {
	mu         sync.Mutex
	buckets    map[uint64][]weak.Pointer[IFormula]
	sinceSweep int
}

type itermShard struct {
	mu         sync.Mutex
	buckets    map[uint64][]weak.Pointer[ITerm]
	sinceSweep int
}

var (
	internFormulas [internShards]internShard
	internTerms    [internShards]itermShard
)

// Intern returns the canonical handle for f. The fast path is one O(|f|)
// allocation-free hash walk plus a bucket probe under a shard lock.
func Intern(f Formula) *IFormula {
	size := 0
	h := HashFormula(f, &size)
	s := &internFormulas[h%internShards]
	s.mu.Lock()
	if s.buckets == nil {
		s.buckets = make(map[uint64][]weak.Pointer[IFormula])
	}
	bucket := s.buckets[h]
	live := bucket[:0]
	var found *IFormula
	for _, wp := range bucket {
		n := wp.Value()
		if n == nil {
			continue // collected: compact away
		}
		live = append(live, wp)
		if found == nil && FormulaStructEq(f, n.f) {
			found = n
		}
	}
	if found != nil {
		if len(live) != len(bucket) {
			s.buckets[h] = live
		}
		s.mu.Unlock()
		return found
	}
	n := &IFormula{f: f, hash: h, id: internNextID.Add(1), size: int32(size)}
	s.buckets[h] = append(live, weak.Make(n))
	s.sinceSweep++
	if s.sinceSweep >= internSweepEvery {
		s.sinceSweep = 0
		sweepFormulas(s)
	}
	s.mu.Unlock()
	internedCount.Add(1)
	return n
}

// InternTerm returns the canonical handle for t.
func InternTerm(t Term) *ITerm {
	size := 0
	h := HashTerm(t, &size)
	s := &internTerms[h%internShards]
	s.mu.Lock()
	if s.buckets == nil {
		s.buckets = make(map[uint64][]weak.Pointer[ITerm])
	}
	bucket := s.buckets[h]
	live := bucket[:0]
	var found *ITerm
	for _, wp := range bucket {
		n := wp.Value()
		if n == nil {
			continue
		}
		live = append(live, wp)
		if found == nil && TermStructEq(t, n.t) {
			found = n
		}
	}
	if found != nil {
		if len(live) != len(bucket) {
			s.buckets[h] = live
		}
		s.mu.Unlock()
		return found
	}
	n := &ITerm{t: t, hash: h, id: internNextID.Add(1), size: int32(size)}
	s.buckets[h] = append(live, weak.Make(n))
	s.sinceSweep++
	if s.sinceSweep >= internSweepEvery {
		s.sinceSweep = 0
		sweepTerms(s)
	}
	s.mu.Unlock()
	internedCount.Add(1)
	return n
}

func sweepFormulas(s *internShard) {
	for h, bucket := range s.buckets {
		live := bucket[:0]
		for _, wp := range bucket {
			if wp.Value() != nil {
				live = append(live, wp)
			}
		}
		switch {
		case len(live) == 0:
			delete(s.buckets, h)
		case len(live) != len(bucket):
			s.buckets[h] = live
		}
	}
}

func sweepTerms(s *itermShard) {
	for h, bucket := range s.buckets {
		live := bucket[:0]
		for _, wp := range bucket {
			if wp.Value() != nil {
				live = append(live, wp)
			}
		}
		switch {
		case len(live) == 0:
			delete(s.buckets, h)
		case len(live) != len(bucket):
			s.buckets[h] = live
		}
	}
}
