package logic

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Random formula generator for property-testing the interning layer.

type genOpts struct {
	unknowns bool // allow Unknown nodes (NNF panics on them)
	arrays   bool // allow Select/Store/AEq nodes
}

var genVars = []string{"x", "y", "z", "i", "j"}
var genArrs = []string{"A", "B"}

func randTerm(r *rand.Rand, depth int, opts genOpts) Term {
	if depth <= 0 {
		if r.Intn(2) == 0 {
			return Var{Name: genVars[r.Intn(len(genVars))]}
		}
		return IntLit{Val: int64(r.Intn(7) - 3)}
	}
	switch r.Intn(7) {
	case 0:
		return Var{Name: genVars[r.Intn(len(genVars))]}
	case 1:
		return IntLit{Val: int64(r.Intn(7) - 3)}
	case 2:
		return Plus(randTerm(r, depth-1, opts), randTerm(r, depth-1, opts))
	case 3:
		return Minus(randTerm(r, depth-1, opts), randTerm(r, depth-1, opts))
	case 4:
		return Times(int64(r.Intn(5)-2), randTerm(r, depth-1, opts))
	case 5:
		if opts.arrays {
			return Sel(randArr(r, depth-1, opts), randTerm(r, depth-1, opts))
		}
		return Add{X: randTerm(r, depth-1, opts), Y: randTerm(r, depth-1, opts)}
	default:
		return App("f", randTerm(r, depth-1, opts))
	}
}

func randArr(r *rand.Rand, depth int, opts genOpts) Arr {
	if depth <= 0 || r.Intn(3) > 0 {
		return ArrVar{Name: genArrs[r.Intn(len(genArrs))]}
	}
	return Upd(randArr(r, depth-1, opts), randTerm(r, depth-1, opts), randTerm(r, depth-1, opts))
}

func randFormula(r *rand.Rand, depth int, opts genOpts) Formula {
	ops := []RelOp{Eq, Neq, Lt, Le, Gt, Ge}
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return Bool{Val: r.Intn(2) == 0}
		default:
			return Atom{Op: ops[r.Intn(len(ops))], X: randTerm(r, 1, opts), Y: randTerm(r, 1, opts)}
		}
	}
	n := r.Intn(10)
	switch {
	case n == 0:
		return Neg(randFormula(r, depth-1, opts))
	case n == 1:
		return Not{F: randFormula(r, depth-1, opts)}
	case n == 2 || n == 3:
		fs := make([]Formula, 1+r.Intn(3))
		for i := range fs {
			fs[i] = randFormula(r, depth-1, opts)
		}
		if n == 2 {
			return Conj(fs...)
		}
		return Disj(fs...)
	case n == 4:
		return Imp(randFormula(r, depth-1, opts), randFormula(r, depth-1, opts))
	case n == 5:
		return All([]string{"q"}, randFormula(r, depth-1, opts))
	case n == 6:
		return Any([]string{"q"}, randFormula(r, depth-1, opts))
	case n == 7 && opts.unknowns:
		return Unknown{Name: fmt.Sprintf("u%d", r.Intn(3))}
	case n == 8 && opts.arrays:
		return ArrEqF(randArr(r, depth-1, opts), randArr(r, depth-1, opts))
	default:
		return Atom{Op: ops[r.Intn(len(ops))], X: randTerm(r, 1, opts), Y: randTerm(r, 1, opts)}
	}
}

func randEnv(r *rand.Rand) *Env {
	env := NewEnv(-2, 4)
	for _, v := range genVars {
		env.Ints[v] = int64(r.Intn(9) - 4)
	}
	env.Ints["q"] = 0
	for _, a := range genArrs {
		cells := make([]int64, 5)
		for i := range cells {
			cells[i] = int64(r.Intn(9) - 4)
		}
		env.SetArr(a, cells)
	}
	return env
}

// TestInternObservational checks that routing a formula through the interner
// is observationally invisible: the canonical representative prints,
// NNF-converts, simplifies, negates, and evaluates exactly like the value
// built by the plain constructors.
func TestInternObservational(t *testing.T) {
	r := rand.New(rand.NewSource(20090615))
	for trial := 0; trial < 2000; trial++ {
		opts := genOpts{unknowns: trial%3 == 0, arrays: trial%2 == 0}
		f := randFormula(r, 1+r.Intn(4), opts)
		n := Intern(f)
		g := n.Formula()
		if g.String() != f.String() {
			t.Fatalf("trial %d: interned representative prints differently:\n  f=%s\n  g=%s", trial, f, g)
		}
		if !FormulaStructEq(f, g) || !FormulaEq(f, g) {
			t.Fatalf("trial %d: interned representative not structurally equal to input: %s", trial, f)
		}
		if Simplify(f).String() != n.Simplified().Formula().String() {
			t.Fatalf("trial %d: memoized Simplify diverges on %s", trial, f)
		}
		if Neg(f).String() != n.Negated().Formula().String() {
			t.Fatalf("trial %d: memoized Neg diverges on %s", trial, f)
		}
		if !opts.unknowns && !opts.arrays {
			if NNF(f).String() != n.NNFed().Formula().String() {
				t.Fatalf("trial %d: memoized NNF diverges on %s", trial, f)
			}
		}
		if !opts.unknowns {
			env := randEnv(r)
			if env.EvalFormula(f) != env.EvalFormula(g) {
				t.Fatalf("trial %d: interned representative evaluates differently on %s", trial, f)
			}
		}
	}
}

// TestInternPointerUnique checks the core hash-consing guarantee: two
// structurally equal formulas built independently intern to the same
// pointer, and unequal ones do not.
func TestInternPointerUnique(t *testing.T) {
	for trial := 0; trial < 500; trial++ {
		// Two generators with the same seed produce identical-but-distinct
		// value trees.
		r1 := rand.New(rand.NewSource(int64(trial)))
		r2 := rand.New(rand.NewSource(int64(trial)))
		opts := genOpts{unknowns: true, arrays: true}
		f := randFormula(r1, 3, opts)
		g := randFormula(r2, 3, opts)
		nf, ng := Intern(f), Intern(g)
		if nf != ng {
			t.Fatalf("trial %d: equal formulas interned to distinct handles: %s", trial, f)
		}
		if nf.Hash() != ng.Hash() || nf.ID() != ng.ID() {
			t.Fatalf("trial %d: handle metadata differs for equal formulas", trial)
		}
		want := 0
		HashFormula(f, &want)
		if nf.Size() != want {
			t.Fatalf("trial %d: size %d, want %d", trial, nf.Size(), want)
		}
	}
	a := Intern(LtF(V("x"), V("y")))
	b := Intern(LtF(V("y"), V("x")))
	if a == b {
		t.Fatalf("distinct formulas interned to the same handle")
	}
}

// TestTrivialVerdict pins the satellite fast path: constants, ground literal
// atoms, and reflexive atoms get verdicts; everything else is passed on.
func TestTrivialVerdict(t *testing.T) {
	cases := []struct {
		f       Formula
		verdict bool
		ok      bool
	}{
		{True, true, true},
		{False, false, true},
		{LeF(I(1), I(2)), true, true},
		{GtF(I(1), I(2)), false, true},
		{EqF(V("x"), V("x")), true, true},
		{LeF(Plus(V("x"), I(1)), Plus(V("x"), I(1))), true, true},
		{NeqF(V("x"), V("x")), false, true},
		{LtF(V("x"), V("x")), false, true},
		{LtF(V("x"), V("y")), false, false},
		{GtF(Plus(V("x"), I(1)), V("x")), false, false},
		{Conj(True, LtF(V("x"), V("y"))), false, false},
	}
	for _, c := range cases {
		v, ok := TrivialVerdict(c.f)
		if ok != c.ok || (ok && v != c.verdict) {
			t.Errorf("TrivialVerdict(%s) = (%v, %v), want (%v, %v)", c.f, v, ok, c.verdict, c.ok)
		}
	}
}

// TestInternRace hammers the interner (and the memo slots) from 32
// goroutines over a shared pool of formulas; run under -race this verifies
// the concurrency claims. Every goroutine must observe identical canonical
// pointers.
func TestInternRace(t *testing.T) {
	const goroutines = 32
	r := rand.New(rand.NewSource(42))
	pool := make([]Formula, 128)
	for i := range pool {
		pool[i] = randFormula(r, 3, genOpts{arrays: i%2 == 0})
	}
	handles := make([][]*IFormula, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hs := make([]*IFormula, len(pool))
			for i, f := range pool {
				n := Intern(f)
				n.Simplified()
				n.Negated()
				_ = n.Hash()
				hs[i] = n
			}
			handles[g] = hs
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range pool {
			if handles[g][i] != handles[0][i] {
				t.Fatalf("goroutine %d interned pool[%d] to a different handle", g, i)
			}
		}
	}
}

// Microbenchmarks: O(1) interned equality/hashing vs the String()-based
// scheme the solver used before.

func benchFormula() Formula {
	r := rand.New(rand.NewSource(7))
	return randFormula(r, 5, genOpts{arrays: true})
}

func BenchmarkFormulaEqStruct(b *testing.B) {
	f := benchFormula()
	g := Intern(f).Formula()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !FormulaStructEq(f, g) {
			b.Fatal("unequal")
		}
	}
}

func BenchmarkFormulaEqString(b *testing.B) {
	f := benchFormula()
	g := Intern(f).Formula()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f.String() != g.String() {
			b.Fatal("unequal")
		}
	}
}

func BenchmarkHashFormula(b *testing.B) {
	f := benchFormula()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		HashFormula(f, &n)
	}
}

func BenchmarkStringKey(b *testing.B) {
	f := benchFormula()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.String()
	}
}

func BenchmarkIntern(b *testing.B) {
	f := benchFormula()
	Intern(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intern(f)
	}
}
