//go:build !go1.24

package logic

import "sync"

// Strong intern table: the pre-weak-pointer fallback for toolchains before
// Go 1.24. Append-only — every canonical handle is pinned for the process
// lifetime. Functionally identical to the weak table (intern_weak.go), just
// without reclamation, so long-running sweeps retain more memory.

type internShard struct {
	mu      sync.Mutex
	buckets map[uint64][]*IFormula
}

type itermShard struct {
	mu      sync.Mutex
	buckets map[uint64][]*ITerm
}

var (
	internFormulas [internShards]internShard
	internTerms    [internShards]itermShard
)

// Intern returns the canonical handle for f. The fast path is one O(|f|)
// allocation-free hash walk plus a bucket probe under a shard lock.
func Intern(f Formula) *IFormula {
	size := 0
	h := HashFormula(f, &size)
	s := &internFormulas[h%internShards]
	s.mu.Lock()
	if s.buckets == nil {
		s.buckets = make(map[uint64][]*IFormula)
	}
	for _, n := range s.buckets[h] {
		if FormulaStructEq(f, n.f) {
			s.mu.Unlock()
			return n
		}
	}
	n := &IFormula{f: f, hash: h, id: internNextID.Add(1), size: int32(size)}
	s.buckets[h] = append(s.buckets[h], n)
	s.mu.Unlock()
	internedCount.Add(1)
	return n
}

// InternTerm returns the canonical handle for t.
func InternTerm(t Term) *ITerm {
	size := 0
	h := HashTerm(t, &size)
	s := &internTerms[h%internShards]
	s.mu.Lock()
	if s.buckets == nil {
		s.buckets = make(map[uint64][]*ITerm)
	}
	for _, n := range s.buckets[h] {
		if TermStructEq(t, n.t) {
			s.mu.Unlock()
			return n
		}
	}
	n := &ITerm{t: t, hash: h, id: internNextID.Add(1), size: int32(size)}
	s.buckets[h] = append(s.buckets[h], n)
	s.mu.Unlock()
	internedCount.Add(1)
	return n
}
