package logic

import (
	"sync/atomic"
)

// Hash-consing for formulas and terms.
//
// Formula and Term values stay plain immutable value types — every existing
// constructor keeps working — and interning layers pointer-unique handles on
// top: Intern(f) returns the canonical *IFormula for f's structure, so
// structurally equal formulas intern to the same pointer and equality and
// map keys become a single word. Handles carry the precomputed structural
// hash, node count, and a stable allocation ID, plus memo slots for the
// normalizations the solver applies over and over (Simplify, NNF, Neg, and
// one caller-supplied slot used by the SMT preprocessing chain).
//
// Invariants: interned nodes are never mutated (formulas are value trees
// built by the canonical constructors, and the handle's memo slots only move
// nil → final value); memoized transforms must be pure and deterministic so
// concurrent racers compute identical results and a lost
// compare-and-swap-free store is harmless.
//
// The interner is a process-global, sharded, mutex-protected hash table.
// On Go ≥ 1.24 the table holds weak references (intern_weak.go): canonical
// handles stay pointer-unique for as long as anything references them (the
// SMT validity cache, engine fillers, memo chains), but once every client
// drops a handle the GC reclaims the whole formula tree and the table entry
// is pruned. This matters: a benchmark sweep interns millions of distinct
// pointer-rich trees, and pinning them for the process lifetime makes every
// GC mark phase scan all of them — measured at >20% of total CPU on long
// runs. Pointer uniqueness among *live* handles is all the clients need:
// if a cache still holds a key, any re-intern of an equal structure finds
// that same node; if nothing holds it, no comparison against it can exist.
// On older toolchains a strong append-only table (intern_strong.go) keeps
// the same API.

const internShards = 64

var (
	internNextID  atomic.Uint64
	internedCount atomic.Int64
)

// IFormula is the canonical interned handle for one formula structure.
// Handles returned by Intern are pointer-unique: Intern(f) == Intern(g) iff
// FormulaStructEq(f, g).
type IFormula struct {
	f    Formula
	hash uint64
	id   uint64
	size int32

	simplified atomic.Pointer[IFormula]
	nnf        atomic.Pointer[IFormula]
	neg        atomic.Pointer[IFormula]
	norm       atomic.Pointer[IFormula]
}

// Formula returns the underlying formula value.
func (n *IFormula) Formula() Formula { return n.f }

// Hash returns the precomputed 64-bit structural hash.
func (n *IFormula) Hash() uint64 { return n.hash }

// ID returns a process-unique allocation ID (stable for the node's lifetime,
// NOT stable across processes — never use it in persisted or printed output).
func (n *IFormula) ID() uint64 { return n.id }

// Size returns the node count of the formula tree.
func (n *IFormula) Size() int { return int(n.size) }

func (n *IFormula) String() string { return n.f.String() }

// ITerm is the canonical interned handle for one term structure.
type ITerm struct {
	t    Term
	hash uint64
	id   uint64
	size int32
}

// Term returns the underlying term value.
func (n *ITerm) Term() Term { return n.t }

// Hash returns the precomputed 64-bit structural hash.
func (n *ITerm) Hash() uint64 { return n.hash }

// ID returns a process-unique allocation ID.
func (n *ITerm) ID() uint64 { return n.id }

// Size returns the node count of the term tree.
func (n *ITerm) Size() int { return int(n.size) }

func (n *ITerm) String() string { return n.t.String() }

// InternedCount returns the number of distinct structures interned so far
// (formulas plus terms, counting re-interns of collected structures anew);
// used by tests and diagnostics.
func InternedCount() int64 { return internedCount.Load() }

// Simplified returns Intern(Simplify(f)), memoized on the handle. Simplify
// is idempotent, so the result node is marked simplified too and repeated
// chains terminate immediately.
func (n *IFormula) Simplified() *IFormula {
	if m := n.simplified.Load(); m != nil {
		return m
	}
	m := Intern(Simplify(n.f))
	if m != n && m.simplified.Load() == nil {
		m.simplified.Store(m)
	}
	n.simplified.Store(m)
	return m
}

// NNFed returns Intern(NNF(f)), memoized on the handle. As with NNF itself,
// f must be unknown-free.
func (n *IFormula) NNFed() *IFormula {
	if m := n.nnf.Load(); m != nil {
		return m
	}
	m := Intern(NNF(n.f))
	if m != n && m.nnf.Load() == nil {
		m.nnf.Store(m)
	}
	n.nnf.Store(m)
	return m
}

// Negated returns Intern(Neg(f)), memoized on the handle; the link is
// installed in both directions when Neg is an involution on the pair.
func (n *IFormula) Negated() *IFormula {
	if m := n.neg.Load(); m != nil {
		return m
	}
	m := Intern(Neg(n.f))
	if m != n && m.neg.Load() == nil && FormulaStructEq(Neg(m.f), n.f) {
		m.neg.Store(n)
	}
	n.neg.Store(m)
	return m
}

// Normalized returns compute(f) interned, memoized on the handle. All
// callers of a given node must pass the same pure, deterministic compute
// function — the slot is keyed by the node alone. The SMT layer uses it for
// its full preprocessing chain.
func (n *IFormula) Normalized(compute func(Formula) Formula) *IFormula {
	if m := n.norm.Load(); m != nil {
		return m
	}
	m := Intern(compute(n.f))
	n.norm.Store(m)
	return m
}
