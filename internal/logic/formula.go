package logic

import (
	"fmt"
	"strings"
)

// RelOp is a binary relation between integer terms.
type RelOp int

// Relational operators. Neq, Gt and Ge are normalized away early (see
// NormalizeAtom) so the solver core only sees Eq, Le and Lt.
const (
	Eq RelOp = iota
	Neq
	Lt
	Le
	Gt
	Ge
)

func (op RelOp) String() string {
	switch op {
	case Eq:
		return "="
	case Neq:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Negate returns the complementary relation.
func (op RelOp) Negate() RelOp {
	switch op {
	case Eq:
		return Neq
	case Neq:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	}
	panic("logic: bad RelOp")
}

// Flip returns the relation with its arguments swapped (x op y == y flip(op) x).
func (op RelOp) Flip() RelOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	}
	return op
}

// Formula is a first-order formula over integer/array terms, possibly
// containing template unknowns.
type Formula interface {
	isFormula()
	String() string
}

// Atom is the relation X Op Y.
type Atom struct {
	Op   RelOp
	X, Y Term
}

// Bool is a formula constant.
type Bool struct{ Val bool }

// Not is logical negation.
type Not struct{ F Formula }

// And is n-ary conjunction; an empty And is true.
type And struct{ Fs []Formula }

// Or is n-ary disjunction; an empty Or is false.
type Or struct{ Fs []Formula }

// Implies is A ⇒ B.
type Implies struct{ A, B Formula }

// Forall is ∀Vars: Body.
type Forall struct {
	Vars []string
	Body Formula
}

// Exists is ∃Vars: Body.
type Exists struct {
	Vars []string
	Body Formula
}

// Unknown is a template hole that an invariant-inference algorithm fills with
// a conjunction of predicates.
type Unknown struct{ Name string }

func (Atom) isFormula()    {}
func (Bool) isFormula()    {}
func (Not) isFormula()     {}
func (And) isFormula()     {}
func (Or) isFormula()      {}
func (Implies) isFormula() {}
func (Forall) isFormula()  {}
func (Exists) isFormula()  {}
func (Unknown) isFormula() {}

func (a Atom) String() string { return fmt.Sprintf("%s %s %s", a.X, a.Op, a.Y) }
func (b Bool) String() string {
	if b.Val {
		return "true"
	}
	return "false"
}
func (n Not) String() string { return fmt.Sprintf("!(%s)", n.F) }
func (a And) String() string { return joinFormulas(a.Fs, " && ", "true") }
func (o Or) String() string  { return joinFormulas(o.Fs, " || ", "false") }
func (i Implies) String() string {
	return fmt.Sprintf("(%s) => (%s)", i.A, i.B)
}
func (f Forall) String() string {
	return fmt.Sprintf("forall %s: (%s)", strings.Join(f.Vars, ","), f.Body)
}
func (e Exists) String() string {
	return fmt.Sprintf("exists %s: (%s)", strings.Join(e.Vars, ","), e.Body)
}
func (u Unknown) String() string { return "$" + u.Name }

func joinFormulas(fs []Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = "(" + f.String() + ")"
	}
	return strings.Join(parts, sep)
}

// True and False are the formula constants.
var (
	True  Formula = Bool{Val: true}
	False Formula = Bool{Val: false}
)

// Rel builds the atom x op y.
func Rel(op RelOp, x, y Term) Formula { return Atom{Op: op, X: x, Y: y} }

// EqF builds x = y.
func EqF(x, y Term) Formula { return Atom{Op: Eq, X: x, Y: y} }

// NeqF builds x ≠ y.
func NeqF(x, y Term) Formula { return Atom{Op: Neq, X: x, Y: y} }

// LtF builds x < y.
func LtF(x, y Term) Formula { return Atom{Op: Lt, X: x, Y: y} }

// LeF builds x ≤ y.
func LeF(x, y Term) Formula { return Atom{Op: Le, X: x, Y: y} }

// GtF builds x > y.
func GtF(x, y Term) Formula { return Atom{Op: Gt, X: x, Y: y} }

// GeF builds x ≥ y.
func GeF(x, y Term) Formula { return Atom{Op: Ge, X: x, Y: y} }

// Conj builds a flattened conjunction, short-circuiting constants.
func Conj(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch f := f.(type) {
		case Bool:
			if !f.Val {
				return False
			}
		case And:
			out = append(out, f.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return True
	case 1:
		return out[0]
	}
	return And{Fs: out}
}

// Disj builds a flattened disjunction, short-circuiting constants.
func Disj(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch f := f.(type) {
		case Bool:
			if f.Val {
				return True
			}
		case Or:
			out = append(out, f.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return False
	case 1:
		return out[0]
	}
	return Or{Fs: out}
}

// Imp builds A ⇒ B, simplifying constant operands.
func Imp(a, b Formula) Formula {
	if ab, ok := a.(Bool); ok {
		if ab.Val {
			return b
		}
		return True
	}
	if bb, ok := b.(Bool); ok {
		if bb.Val {
			return True
		}
		return Neg(a)
	}
	return Implies{A: a, B: b}
}

// Neg builds ¬F, simplifying constants and double negation.
func Neg(f Formula) Formula {
	switch f := f.(type) {
	case Bool:
		return Bool{Val: !f.Val}
	case Not:
		return f.F
	case Atom:
		return Atom{Op: f.Op.Negate(), X: f.X, Y: f.Y}
	}
	return Not{F: f}
}

// All builds ∀vars: body (no-op for an empty variable list).
func All(vars []string, body Formula) Formula {
	if len(vars) == 0 {
		return body
	}
	if b, ok := body.(Bool); ok {
		return b
	}
	return Forall{Vars: vars, Body: body}
}

// Any builds ∃vars: body (no-op for an empty variable list).
func Any(vars []string, body Formula) Formula {
	if len(vars) == 0 {
		return body
	}
	if b, ok := body.(Bool); ok {
		return b
	}
	return Exists{Vars: vars, Body: body}
}

// FormulaEq reports structural equality. (Historically via canonical
// printing; the structural walk decides the same relation without
// serializing either side.)
func FormulaEq(a, b Formula) bool { return FormulaStructEq(a, b) }

// Substitute replaces free integer variables per sub and free array variables
// per asub throughout f. Bound variables shadow substitution entries.
func Substitute(f Formula, sub map[string]Term, asub map[string]Arr) Formula {
	switch f := f.(type) {
	case Atom:
		return Atom{Op: f.Op, X: SubstituteTerm(f.X, sub, asub), Y: SubstituteTerm(f.Y, sub, asub)}
	case Bool:
		return f
	case Not:
		return Neg(Substitute(f.F, sub, asub))
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = Substitute(g, sub, asub)
		}
		return Conj(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = Substitute(g, sub, asub)
		}
		return Disj(out...)
	case Implies:
		return Imp(Substitute(f.A, sub, asub), Substitute(f.B, sub, asub))
	case Forall:
		return All(f.Vars, Substitute(f.Body, shadow(sub, f.Vars), asub))
	case Exists:
		return Any(f.Vars, Substitute(f.Body, shadow(sub, f.Vars), asub))
	case Unknown:
		return f
	case AEq:
		return substituteAEqCase(f, sub, asub)
	}
	panic(fmt.Sprintf("logic: unknown formula %T", f))
}

// shadow returns sub with the given bound variables removed.
func shadow(sub map[string]Term, bound []string) map[string]Term {
	need := false
	for _, v := range bound {
		if _, ok := sub[v]; ok {
			need = true
			break
		}
	}
	if !need {
		return sub
	}
	out := make(map[string]Term, len(sub))
	for k, v := range sub {
		out[k] = v
	}
	for _, v := range bound {
		delete(out, v)
	}
	return out
}

// FreeVars returns the free integer and array variables of f.
func FreeVars(f Formula) (vs map[string]bool, avs map[string]bool) {
	vs, avs = map[string]bool{}, map[string]bool{}
	freeVars(f, map[string]bool{}, vs, avs)
	return vs, avs
}

func freeVars(f Formula, bound, vs, avs map[string]bool) {
	collect := func(t Term) {
		tv, ta := map[string]bool{}, map[string]bool{}
		TermVars(t, tv, ta)
		for v := range tv {
			if !bound[v] {
				vs[v] = true
			}
		}
		for a := range ta {
			avs[a] = true
		}
	}
	switch f := f.(type) {
	case Atom:
		collect(f.X)
		collect(f.Y)
	case Bool, Unknown:
	case Not:
		freeVars(f.F, bound, vs, avs)
	case And:
		for _, g := range f.Fs {
			freeVars(g, bound, vs, avs)
		}
	case Or:
		for _, g := range f.Fs {
			freeVars(g, bound, vs, avs)
		}
	case Implies:
		freeVars(f.A, bound, vs, avs)
		freeVars(f.B, bound, vs, avs)
	case Forall:
		freeVars(f.Body, extendBound(bound, f.Vars), vs, avs)
	case Exists:
		freeVars(f.Body, extendBound(bound, f.Vars), vs, avs)
	case AEq:
		freeVarsAEqCase(f, bound, vs, avs)
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
}

func extendBound(bound map[string]bool, vars []string) map[string]bool {
	out := make(map[string]bool, len(bound)+len(vars))
	for k := range bound {
		out[k] = true
	}
	for _, v := range vars {
		out[v] = true
	}
	return out
}

// Unknowns returns the unknown names occurring in f, in first-occurrence order.
func Unknowns(f Formula) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Formula)
	walk = func(f Formula) {
		switch f := f.(type) {
		case Unknown:
			if !seen[f.Name] {
				seen[f.Name] = true
				out = append(out, f.Name)
			}
		case Not:
			walk(f.F)
		case And:
			for _, g := range f.Fs {
				walk(g)
			}
		case Or:
			for _, g := range f.Fs {
				walk(g)
			}
		case Implies:
			walk(f.A)
			walk(f.B)
		case Forall:
			walk(f.Body)
		case Exists:
			walk(f.Body)
		}
	}
	walk(f)
	return out
}

// FillUnknowns replaces each unknown v in f with the conjunction of fill(v).
// Unknowns missing from fill are left in place.
func FillUnknowns(f Formula, fill map[string]Formula) Formula {
	switch f := f.(type) {
	case Unknown:
		if g, ok := fill[f.Name]; ok {
			return g
		}
		return f
	case Atom, Bool, AEq:
		return f
	case Not:
		return Neg(FillUnknowns(f.F, fill))
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = FillUnknowns(g, fill)
		}
		return Conj(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = FillUnknowns(g, fill)
		}
		return Disj(out...)
	case Implies:
		return Imp(FillUnknowns(f.A, fill), FillUnknowns(f.B, fill))
	case Forall:
		return All(f.Vars, FillUnknowns(f.Body, fill))
	case Exists:
		return Any(f.Vars, FillUnknowns(f.Body, fill))
	}
	panic(fmt.Sprintf("logic: unknown formula %T", f))
}
