package logic

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermBuilders(t *testing.T) {
	x, y := V("x"), V("y")
	cases := []struct {
		got  Term
		want string
	}{
		{Plus(x, I(0)), "x"},
		{Plus(I(0), x), "x"},
		{Plus(I(2), I(3)), "5"},
		{Minus(x, I(0)), "x"},
		{Minus(I(7), I(3)), "4"},
		{Times(0, x), "0"},
		{Times(1, x), "x"},
		{Times(3, I(4)), "12"},
		{Plus(x, y), "(x + y)"},
		{Sel(AV("A"), x), "A[x]"},
		{Sel(Upd(AV("A"), x, I(0)), y), "upd(A, x, 0)[y]"},
		{App("f", x, y), "f(x, y)"},
	}
	for _, tc := range cases {
		if got := tc.got.String(); got != tc.want {
			t.Errorf("got %q, want %q", got, tc.want)
		}
	}
}

func TestSubstituteTerm(t *testing.T) {
	sub := map[string]Term{"x": I(5), "y": V("z")}
	in := Plus(V("x"), Sel(AV("A"), V("y")))
	got := SubstituteTerm(in, sub, nil)
	if got.String() != "(5 + A[z])" {
		t.Errorf("got %q", got.String())
	}
	asub := map[string]Arr{"A": AV("B")}
	got = SubstituteTerm(in, sub, asub)
	if got.String() != "(5 + B[z])" {
		t.Errorf("array substitution: got %q", got.String())
	}
}

func TestRelOpNegateFlip(t *testing.T) {
	for _, op := range []RelOp{Eq, Neq, Lt, Le, Gt, Ge} {
		if op.Negate().Negate() != op {
			t.Errorf("%v: double negation", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("%v: double flip", op)
		}
	}
	if Lt.Negate() != Ge || Le.Negate() != Gt || Eq.Negate() != Neq {
		t.Error("negation table wrong")
	}
	if Lt.Flip() != Gt || Le.Flip() != Ge || Eq.Flip() != Eq {
		t.Error("flip table wrong")
	}
}

func TestConjDisjSimplification(t *testing.T) {
	x := V("x")
	a := LtF(x, I(5))
	if got := Conj(); !FormulaEq(got, True) {
		t.Errorf("empty Conj = %v", got)
	}
	if got := Disj(); !FormulaEq(got, False) {
		t.Errorf("empty Disj = %v", got)
	}
	if got := Conj(a, False); !FormulaEq(got, False) {
		t.Errorf("Conj with false = %v", got)
	}
	if got := Disj(a, True); !FormulaEq(got, True) {
		t.Errorf("Disj with true = %v", got)
	}
	if got := Conj(Conj(a, a), a); strings.Count(got.String(), "x < 5") != 3 {
		t.Logf("flattening keeps duplicates until Simplify: %v", got)
	}
	if got := Simplify(Conj(a, a, a)); got.String() != a.String() {
		t.Errorf("Simplify should dedupe: %v", got)
	}
}

func TestNegPushing(t *testing.T) {
	x, y := V("x"), V("y")
	if got := Neg(LtF(x, y)); got.String() != "x >= y" {
		t.Errorf("Neg(<) = %q", got)
	}
	if got := Neg(Neg(LtF(x, y))); got.String() != "x < y" {
		t.Errorf("double Neg = %q", got)
	}
	if !FormulaEq(Neg(True), False) || !FormulaEq(Neg(False), True) {
		t.Error("constant negation")
	}
}

func TestNNF(t *testing.T) {
	x, y := V("x"), V("y")
	f := Neg(Imp(LtF(x, y), All([]string{"k"}, EqF(Sel(AV("A"), V("k")), I(0)))))
	g := NNF(f)
	// ¬(a ⇒ ∀k: b) = a ∧ ∃k: ¬b.
	want := "(x < y) && (exists k: (A[k] != 0))"
	if g.String() != want {
		t.Errorf("NNF = %q, want %q", g.String(), want)
	}
}

func TestNNFNoImplicationOrNot(t *testing.T) {
	x, y := V("x"), V("y")
	fs := []Formula{
		Imp(LtF(x, y), Disj(EqF(x, y), Neg(LeF(y, x)))),
		Neg(All([]string{"a"}, Imp(LtF(V("a"), x), EqF(V("a"), y)))),
		Neg(Conj(LtF(x, y), Any([]string{"b"}, LeF(V("b"), x)))),
	}
	var check func(f Formula) bool
	check = func(f Formula) bool {
		switch f := f.(type) {
		case Atom, Bool:
			return true
		case And:
			for _, g := range f.Fs {
				if !check(g) {
					return false
				}
			}
			return true
		case Or:
			for _, g := range f.Fs {
				if !check(g) {
					return false
				}
			}
			return true
		case Forall:
			return check(f.Body)
		case Exists:
			return check(f.Body)
		}
		return false // Not, Implies, Unknown, AEq are all banned post-NNF
	}
	for _, f := range fs {
		if !check(NNF(f)) {
			t.Errorf("NNF(%v) contains banned nodes: %v", f, NNF(f))
		}
	}
}

func TestFreeVars(t *testing.T) {
	f := All([]string{"k"}, Imp(LtF(V("k"), V("n")), EqF(Sel(AV("A"), V("k")), V("x"))))
	vs, as := FreeVars(f)
	if vs["k"] {
		t.Error("bound k reported free")
	}
	if !vs["n"] || !vs["x"] {
		t.Errorf("free vars missing: %v", vs)
	}
	if !as["A"] {
		t.Errorf("array A missing: %v", as)
	}
}

func TestSubstituteShadowing(t *testing.T) {
	// Substituting x inside ∀x must not touch the bound occurrences.
	f := Conj(LtF(V("x"), I(0)), All([]string{"x"}, LeF(V("x"), I(5))))
	got := Substitute(f, map[string]Term{"x": V("y")}, nil)
	want := "(y < 0) && (forall x: (x <= 5))"
	if got.String() != want {
		t.Errorf("got %q, want %q", got.String(), want)
	}
}

func TestUnknownsAndFill(t *testing.T) {
	f := Conj(Unknown{Name: "a"}, All([]string{"k"}, Imp(Unknown{Name: "b"}, EqF(V("k"), I(0)))))
	us := Unknowns(f)
	if len(us) != 2 || us[0] != "a" || us[1] != "b" {
		t.Errorf("Unknowns = %v", us)
	}
	filled := FillUnknowns(f, map[string]Formula{"a": True, "b": LtF(V("k"), V("n"))})
	if len(Unknowns(filled)) != 0 {
		t.Errorf("fill left unknowns: %v", filled)
	}
	// Partial fill leaves the other in place.
	part := FillUnknowns(f, map[string]Formula{"a": True})
	if got := Unknowns(part); len(got) != 1 || got[0] != "b" {
		t.Errorf("partial fill: %v", got)
	}
}

func TestSimplifyGroundAtoms(t *testing.T) {
	if got := Simplify(LtF(I(3), I(5))); !FormulaEq(got, True) {
		t.Errorf("3<5 should simplify to true, got %v", got)
	}
	if got := Simplify(EqF(V("x"), V("x"))); !FormulaEq(got, True) {
		t.Errorf("x=x should simplify to true, got %v", got)
	}
	if got := Simplify(NeqF(V("x"), V("x"))); !FormulaEq(got, False) {
		t.Errorf("x≠x should simplify to false, got %v", got)
	}
}

func TestStandardizeApart(t *testing.T) {
	f := Conj(
		All([]string{"k"}, LeF(V("k"), V("n"))),
		Any([]string{"k"}, LtF(V("k"), I(0))),
	)
	g := StandardizeApart(f, NewNamer("@b"))
	fa, ok1 := g.(And)
	if !ok1 || len(fa.Fs) != 2 {
		t.Fatalf("shape changed: %v", g)
	}
	v1 := fa.Fs[0].(Forall).Vars[0]
	v2 := fa.Fs[1].(Exists).Vars[0]
	if v1 == v2 {
		t.Errorf("bound variables not distinct: %s vs %s", v1, v2)
	}
	if v1 == "k" || v2 == "k" {
		t.Errorf("bound variables not renamed: %s, %s", v1, v2)
	}
}

func TestRewriteArrayEq(t *testing.T) {
	f := ArrEqF(AV("B"), Upd(AV("A"), V("i"), I(0)))
	g := RewriteArrayEq(f, NewNamer("@q"))
	fa, ok := g.(Forall)
	if !ok {
		t.Fatalf("expected Forall, got %T", g)
	}
	if len(fa.Vars) != 1 {
		t.Fatalf("one bound var expected")
	}
	// Trivial array equality simplifies away.
	if got := RewriteArrayEq(ArrEqF(AV("A"), AV("A")), NewNamer("@q")); !FormulaEq(got, True) {
		t.Errorf("A = A should rewrite to true, got %v", got)
	}
}

func TestEvalRelProperty(t *testing.T) {
	// Property: Simplify of a ground atom agrees with direct evaluation.
	f := func(a, b int16, opRaw uint8) bool {
		op := RelOp(opRaw % 6)
		g := Simplify(Rel(op, I(int64(a)), I(int64(b))))
		bo, ok := g.(Bool)
		if !ok {
			return false
		}
		var want bool
		switch op {
		case Eq:
			want = a == b
		case Neq:
			want = a != b
		case Lt:
			want = a < b
		case Le:
			want = a <= b
		case Gt:
			want = a > b
		case Ge:
			want = a >= b
		}
		return bo.Val == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNamerFresh(t *testing.T) {
	nm := NewNamer("@x")
	a, b := nm.Fresh(), nm.Fresh()
	if a == b {
		t.Error("Fresh returned duplicates")
	}
	if !strings.HasPrefix(a, "@x") {
		t.Errorf("prefix missing: %s", a)
	}
}
