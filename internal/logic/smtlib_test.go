package logic

import (
	"strings"
	"testing"
)

func TestSMTLIBBasics(t *testing.T) {
	f := Imp(LtF(V("x"), V("y")), LeF(Plus(V("x"), I(1)), V("y")))
	out := SMTLIB(f)
	for _, want := range []string{
		"(set-logic AUFLIA)",
		"(declare-const x Int)",
		"(declare-const y Int)",
		"(assert (not (=> (< x y) (<= (+ x 1) y))))",
		"(check-sat)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSMTLIBArraysAndQuantifiers(t *testing.T) {
	f := All([]string{"k"}, Imp(
		Conj(LeF(I(0), V("k")), LtF(V("k"), V("n"))),
		EqF(Sel(Upd(AV("A"), V("i"), I(0)), V("k")), I(0))))
	out := SMTLIB(f)
	for _, want := range []string{
		"(declare-const A (Array Int Int))",
		"(forall ((k Int))",
		"(select (store A i 0) k)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSMTLIBNameMangling(t *testing.T) {
	f := EqF(V("x#1"), App("@sk1", V("y")))
	out := SMTLIB(f)
	if !strings.Contains(out, "x!1") || !strings.Contains(out, "?sk1") {
		t.Errorf("SSA/skolem names not mangled:\n%s", out)
	}
	if !strings.Contains(out, "(declare-fun ?sk1 (Int) Int)") {
		t.Errorf("function declaration missing:\n%s", out)
	}
}

func TestSMTLIBNegativeLiterals(t *testing.T) {
	out := SMTLIB(GeF(V("j"), I(-1)))
	if !strings.Contains(out, "(- 1)") {
		t.Errorf("negative literal encoding:\n%s", out)
	}
}

func TestSMTLIBNeq(t *testing.T) {
	out := SMTLIB(NeqF(V("a"), V("b")))
	if !strings.Contains(out, "(not (= a b))") {
		t.Errorf("disequality encoding:\n%s", out)
	}
}

func TestSMTLIBBalancedParens(t *testing.T) {
	f := All([]string{"y"}, Imp(LeF(I(0), V("y")),
		Any([]string{"x"}, Conj(EqF(Sel(AV("A"), V("y")), Sel(AV("B"), V("x"))), NeqF(V("x"), Plus(V("j"), I(1)))))))
	out := SMTLIB(f)
	depth := 0
	for _, r := range out {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		}
		if depth < 0 {
			t.Fatalf("unbalanced parens:\n%s", out)
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced parens (depth %d):\n%s", depth, out)
	}
}
