package logic

import (
	"fmt"
	"sort"
	"strings"
)

// SMTLIB renders a formula as an SMT-LIB 2 script asserting its negation —
// the conventional encoding for a validity check (unsat ⇔ valid). Integer
// variables are declared as Int, arrays as (Array Int Int), and
// uninterpreted functions per their arity. The output lets any external
// SMT solver cross-check this package's verdicts.
func SMTLIB(f Formula) string {
	var b strings.Builder
	b.WriteString("(set-logic AUFLIA)\n")
	vs, as := FreeVars(f)
	for _, v := range SortedKeys(vs) {
		fmt.Fprintf(&b, "(declare-const %s Int)\n", smtName(v))
	}
	for _, a := range SortedKeys(as) {
		fmt.Fprintf(&b, "(declare-const %s (Array Int Int))\n", smtName(a))
	}
	for _, fn := range SortedKeys(collectFuns(f)) {
		arity := collectFuns(f)[fn]
		args := strings.TrimSpace(strings.Repeat("Int ", arity))
		fmt.Fprintf(&b, "(declare-fun %s (%s) Int)\n", smtName(fn), args)
	}
	b.WriteString("(assert (not ")
	writeFormula(&b, f)
	b.WriteString("))\n(check-sat)\n")
	return b.String()
}

// smtName mangles SSA '#' and '@' characters into SMT-LIB-safe symbols.
func smtName(n string) string {
	n = strings.ReplaceAll(n, "#", "!")
	n = strings.ReplaceAll(n, "@", "?")
	return n
}

func collectFuns(f Formula) map[string]int {
	out := map[string]int{}
	var walkTerm func(Term)
	var walkArr func(Arr)
	walkTerm = func(t Term) {
		switch t := t.(type) {
		case Var, IntLit:
		case Add:
			walkTerm(t.X)
			walkTerm(t.Y)
		case Sub:
			walkTerm(t.X)
			walkTerm(t.Y)
		case Mul:
			walkTerm(t.X)
		case Select:
			walkArr(t.A)
			walkTerm(t.Idx)
		case Apply:
			out[t.F] = len(t.Args)
			for _, a := range t.Args {
				walkTerm(a)
			}
		}
	}
	walkArr = func(a Arr) {
		if s, ok := a.(Store); ok {
			walkArr(s.A)
			walkTerm(s.Idx)
			walkTerm(s.Val)
		}
	}
	var walk func(Formula)
	walk = func(f Formula) {
		switch f := f.(type) {
		case Atom:
			walkTerm(f.X)
			walkTerm(f.Y)
		case Not:
			walk(f.F)
		case And:
			for _, g := range f.Fs {
				walk(g)
			}
		case Or:
			for _, g := range f.Fs {
				walk(g)
			}
		case Implies:
			walk(f.A)
			walk(f.B)
		case Forall:
			walk(f.Body)
		case Exists:
			walk(f.Body)
		case AEq:
			walkArr(f.L)
			walkArr(f.R)
		}
	}
	walk(f)
	return out
}

func writeTerm(b *strings.Builder, t Term) {
	switch t := t.(type) {
	case Var:
		b.WriteString(smtName(t.Name))
	case IntLit:
		if t.Val < 0 {
			fmt.Fprintf(b, "(- %d)", -t.Val)
		} else {
			fmt.Fprintf(b, "%d", t.Val)
		}
	case Add:
		b.WriteString("(+ ")
		writeTerm(b, t.X)
		b.WriteString(" ")
		writeTerm(b, t.Y)
		b.WriteString(")")
	case Sub:
		b.WriteString("(- ")
		writeTerm(b, t.X)
		b.WriteString(" ")
		writeTerm(b, t.Y)
		b.WriteString(")")
	case Mul:
		fmt.Fprintf(b, "(* %d ", t.C)
		writeTerm(b, t.X)
		b.WriteString(")")
	case Select:
		b.WriteString("(select ")
		writeArr(b, t.A)
		b.WriteString(" ")
		writeTerm(b, t.Idx)
		b.WriteString(")")
	case Apply:
		fmt.Fprintf(b, "(%s", smtName(t.F))
		for _, a := range t.Args {
			b.WriteString(" ")
			writeTerm(b, a)
		}
		b.WriteString(")")
	default:
		panic(fmt.Sprintf("logic: smtlib of unknown term %T", t))
	}
}

func writeArr(b *strings.Builder, a Arr) {
	switch a := a.(type) {
	case ArrVar:
		b.WriteString(smtName(a.Name))
	case Store:
		b.WriteString("(store ")
		writeArr(b, a.A)
		b.WriteString(" ")
		writeTerm(b, a.Idx)
		b.WriteString(" ")
		writeTerm(b, a.Val)
		b.WriteString(")")
	default:
		panic(fmt.Sprintf("logic: smtlib of unknown array %T", a))
	}
}

var smtOps = map[RelOp]string{Eq: "=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}

func writeFormula(b *strings.Builder, f Formula) {
	switch f := f.(type) {
	case Atom:
		if f.Op == Neq {
			b.WriteString("(not (= ")
			writeTerm(b, f.X)
			b.WriteString(" ")
			writeTerm(b, f.Y)
			b.WriteString("))")
			return
		}
		fmt.Fprintf(b, "(%s ", smtOps[f.Op])
		writeTerm(b, f.X)
		b.WriteString(" ")
		writeTerm(b, f.Y)
		b.WriteString(")")
	case Bool:
		if f.Val {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case Not:
		b.WriteString("(not ")
		writeFormula(b, f.F)
		b.WriteString(")")
	case And:
		writeNary(b, "and", f.Fs, true)
	case Or:
		writeNary(b, "or", f.Fs, false)
	case Implies:
		b.WriteString("(=> ")
		writeFormula(b, f.A)
		b.WriteString(" ")
		writeFormula(b, f.B)
		b.WriteString(")")
	case Forall:
		writeQuant(b, "forall", f.Vars, f.Body)
	case Exists:
		writeQuant(b, "exists", f.Vars, f.Body)
	case AEq:
		b.WriteString("(= ")
		writeArr(b, f.L)
		b.WriteString(" ")
		writeArr(b, f.R)
		b.WriteString(")")
	case Unknown:
		panic("logic: smtlib of a template unknown")
	default:
		panic(fmt.Sprintf("logic: smtlib of unknown formula %T", f))
	}
}

func writeNary(b *strings.Builder, op string, fs []Formula, emptyVal bool) {
	switch len(fs) {
	case 0:
		if emptyVal {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
		return
	case 1:
		writeFormula(b, fs[0])
		return
	}
	fmt.Fprintf(b, "(%s", op)
	for _, g := range fs {
		b.WriteString(" ")
		writeFormula(b, g)
	}
	b.WriteString(")")
}

func writeQuant(b *strings.Builder, q string, vars []string, body Formula) {
	sorted := append([]string(nil), vars...)
	sort.Strings(sorted)
	fmt.Fprintf(b, "(%s (", q)
	for i, v := range sorted {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(b, "(%s Int)", smtName(v))
	}
	b.WriteString(") ")
	writeFormula(b, body)
	b.WriteString(")")
}
