package spec

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/smt"
	"repro/internal/template"
	"repro/internal/vc"
)

func arrayInit() *Problem {
	prog := lang.MustParse(`
		program ArrayInit(array A, n) {
			i := 0;
			while loop (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall j. (0 <= j && j < n) => A[j] = 0);
		}`)
	return &Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": lang.MustParseFormula("forall j. ?v => A[j] = 0")},
		Q:         template.Domain{"v": {lang.MustParseFormula("j >= 0"), lang.MustParseFormula("j < i")}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := arrayInit().Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateBadCutPoint(t *testing.T) {
	p := arrayInit()
	p.Templates["nosuch"] = logic.True
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateEmptyVocabulary(t *testing.T) {
	p := arrayInit()
	p.Q = template.Domain{}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "empty predicate vocabulary") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateConflictingPolarity(t *testing.T) {
	p := arrayInit()
	p.Templates["loop"] = logic.Imp(logic.Unknown{Name: "v"}, logic.Unknown{Name: "v"})
	if err := p.Validate(); err == nil {
		t.Error("conflicting polarity should fail validation")
	}
}

func TestInitialSolutions(t *testing.T) {
	p := arrayInit()
	lfp, err := p.InitialLFP()
	if err != nil {
		t.Fatal(err)
	}
	// v is negative (guard): LFP starts it empty (strongest template).
	if lfp["v"].Len() != 0 {
		t.Errorf("LFP initial for negative unknown = %v", lfp["v"])
	}
	gfp, err := p.InitialGFP()
	if err != nil {
		t.Fatal(err)
	}
	if gfp["v"].Len() != 2 {
		t.Errorf("GFP initial for negative unknown = %v", gfp["v"])
	}
}

func TestCheckAllAcceptsAndRejects(t *testing.T) {
	p := arrayInit()
	s := smt.NewSolver(smt.Options{})
	good := template.Solution{"v": template.NewPredSet(
		lang.MustParseFormula("j >= 0"), lang.MustParseFormula("j < i"))}
	if ok, fail := p.CheckAll(s, good); !ok {
		t.Errorf("good solution rejected at %v", fail)
	}
	bad := template.Solution{"v": template.NewPredSet()}
	ok, fail := p.CheckAll(s, bad)
	if ok {
		t.Error("bad solution accepted")
	}
	if fail == nil || fail.From != vc.Entry {
		t.Errorf("expected failure at the entry path, got %v", fail)
	}
}

func TestForwardBackwardVCShape(t *testing.T) {
	p := arrayInit()
	sigma := template.Solution{"v": template.NewPredSet()}
	for _, path := range p.Paths() {
		if path.From != "loop" || path.To != "loop" {
			continue
		}
		fwd := p.ForwardVC(path, sigma)
		if got := logic.Unknowns(fwd); len(got) != 1 || got[0] != "v" {
			t.Errorf("forward VC unknowns = %v", got)
		}
		bwd := p.BackwardVC(path, sigma)
		if got := logic.Unknowns(bwd); len(got) != 1 || got[0] != "v" {
			t.Errorf("backward VC unknowns = %v", got)
		}
		// Forward keeps the target's unknowns: they appear on the right of
		// the implication; the instantiated side must not have unknowns.
		imp, ok := fwd.(logic.Implies)
		if !ok {
			t.Fatalf("VC not an implication: %T", fwd)
		}
		if len(logic.Unknowns(imp.A)) != 0 {
			t.Errorf("forward VC premise should be instantiated: %v", imp.A)
		}
	}
}

func TestUnknownsSorted(t *testing.T) {
	p := arrayInit()
	p.Templates["entry"] = logic.Conj(logic.Unknown{Name: "z"}, logic.Unknown{Name: "a"})
	us := p.Unknowns()
	if len(us) != 3 || us[0] != "a" || us[2] != "z" {
		t.Errorf("unknowns = %v", us)
	}
}
