// Package spec ties a program to its verification problem: the invariant
// template attached to each cut-point and the predicate vocabulary of each
// unknown (the paper's inputs, §2.2–2.3). It provides the pieces every
// fixed-point algorithm shares: Paths(Prog), per-path verification
// conditions, and the whole-program check VC(Prog, σ).
package spec

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/smt"
	"repro/internal/template"
	"repro/internal/vc"
)

// Problem is one verification task.
type Problem struct {
	// Prog is the program to verify.
	Prog *lang.Program
	// Templates maps cut-point names (loop labels, vc.Entry, vc.Exit) to
	// template formulas. Missing entries default to true. An entry template
	// with unknowns turns the task into precondition inference (§6).
	Templates map[string]logic.Formula
	// Q is the predicate vocabulary of each unknown.
	Q template.Domain

	pathsOnce sync.Once
	paths     []vc.Path

	compileOnce sync.Once
	comp        compiled
}

// compiled holds the problem's per-path and per-template fill skeletons,
// built once on first use. The VC of a path is a pure spine around two
// holes — Imp($pre, WP(δ, $post)) — so each skeleton is compiled into a
// template.Filler and every subsequent VC construction rebuilds only the
// spine. All of it is immutable after the sync.Once, hence safe to share
// across the parallel fixed-point workers and the ψ_Prog encoder.
type compiled struct {
	// vcs[i] fills path i's VC skeleton via the preHole/postHole unknowns.
	vcs []*template.Filler
	// renTo[i] is paths[i].Sigma applied to the target cut's template with
	// unknowns in place (the post formula of every forward VC).
	renTo []logic.Formula
	// tmpl compiles each attached template for solution filling.
	tmpl map[string]*template.Filler
}

// Hole names used by the compiled VC skeletons. Template unknowns come from
// user specs and never start with "@@".
const (
	preHole  = "@@pre"
	postHole = "@@post"
)

func (p *Problem) compiled() *compiled {
	p.compileOnce.Do(func() {
		paths := p.Paths()
		p.comp.vcs = make([]*template.Filler, len(paths))
		p.comp.renTo = make([]logic.Formula, len(paths))
		for i := range paths {
			path := &paths[i]
			skel := path.VC(logic.Unknown{Name: preHole}, logic.Unknown{Name: postHole})
			p.comp.vcs[i] = template.NewFiller(skel)
			p.comp.renTo[i] = path.Sigma.Apply(p.TemplateAt(path.To))
		}
		p.comp.tmpl = make(map[string]*template.Filler, len(p.Templates))
		for cut, t := range p.Templates {
			p.comp.tmpl[cut] = template.NewFiller(t)
		}
	})
	return &p.comp
}

// Paths returns Paths(Prog), computed once. Safe for concurrent use: the
// parallel fixed-point workers and the parallel ψ_Prog encoder all read the
// same slice.
func (p *Problem) Paths() []vc.Path {
	p.pathsOnce.Do(func() { p.paths = vc.PathsOf(p.Prog) })
	return p.paths
}

// TemplateAt returns the template attached to a cut-point (true when none).
func (p *Problem) TemplateAt(cut string) logic.Formula {
	if t, ok := p.Templates[cut]; ok {
		return t
	}
	return logic.True
}

// Unknowns returns every unknown across all templates, sorted.
func (p *Problem) Unknowns() []string {
	set := map[string]bool{}
	for _, t := range p.Templates {
		for _, u := range logic.Unknowns(t) {
			set[u] = true
		}
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Polarities classifies every unknown by its polarity within its own
// template (each unknown belongs to exactly one template).
func (p *Problem) Polarities() (map[string]template.Polarity, error) {
	out := map[string]template.Polarity{}
	for cut, t := range p.Templates {
		pol, err := template.Polarities(t)
		if err != nil {
			return nil, fmt.Errorf("template at %s: %w", cut, err)
		}
		for u, q := range pol {
			if prev, dup := out[u]; dup && prev != q {
				return nil, fmt.Errorf("unknown %s used in multiple templates with conflicting polarity", u)
			}
			out[u] = q
		}
	}
	return out, nil
}

// FillTemplateAt instantiates the template at a cut-point with σ through the
// cut's compiled filler (true when no template is attached). Equivalent to
// sigma.Fill(p.TemplateAt(cut)) but only the unknown-bearing spine of the
// template is rebuilt.
func (p *Problem) FillTemplateAt(cut string, sigma template.Solution) logic.Formula {
	fl, ok := p.compiled().tmpl[cut]
	if !ok {
		return logic.True
	}
	return fl.FillSolution(sigma)
}

// VCAt builds VC(⟨pre, δ_i, post⟩) for path index i through the path's
// compiled skeleton: structurally identical to Paths()[i].VC(pre, post),
// rebuilding only the holes' spine.
func (p *Problem) VCAt(i int, pre, post logic.Formula) logic.Formula {
	return p.compiled().vcs[i].Fill(map[string]logic.Formula{preHole: pre, postHole: post})
}

// PathVC builds VC(⟨τ1σ, δ, τ2σ·σt⟩) for one path with both templates fully
// instantiated by σ. Prefer PathVCAt on hot paths: it reuses the problem's
// compiled skeletons.
func (p *Problem) PathVC(path vc.Path, sigma template.Solution) logic.Formula {
	pre := sigma.Fill(p.TemplateAt(path.From))
	post := path.Sigma.Apply(sigma.Fill(p.TemplateAt(path.To)))
	return path.VC(pre, post)
}

// PathVCAt is PathVC for path index i via the compiled skeletons.
func (p *Problem) PathVCAt(i int, sigma template.Solution) logic.Formula {
	path := &p.Paths()[i]
	pre := p.FillTemplateAt(path.From, sigma)
	post := path.Sigma.Apply(p.FillTemplateAt(path.To, sigma))
	return p.VCAt(i, pre, post)
}

// PathVCSkeleton returns the interned compiled VC skeleton of path i — the
// VC with its pre/post holes unfilled. Every PathVCAt(i, ·) probe shares
// this structure, which makes it the natural key for a persistent
// incremental solving context.
func (p *Problem) PathVCSkeleton(i int) *logic.IFormula {
	return logic.Intern(p.compiled().vcs[i].Skeleton())
}

// CheckAll reports whether VC(Prog, σ) is valid, and if not returns the
// first failing path. Probes are routed through one incremental context per
// path skeleton when the solver is incremental.
func (p *Problem) CheckAll(s *smt.Solver, sigma template.Solution) (bool, *vc.Path) {
	for i := range p.Paths() {
		f := p.PathVCAt(i, sigma)
		var ok bool
		if c := s.ContextFor(p.PathVCSkeleton(i)); c != nil {
			ok = c.Valid(f)
		} else {
			ok = s.Valid(f)
		}
		if !ok {
			return false, &p.Paths()[i]
		}
	}
	return true, nil
}

// SolveVC builds the partially instantiated VC used by the iterative
// algorithms: the source template instantiated (fillFrom) while the target
// keeps its unknowns, or vice versa.
//
// ForwardVC (LFP step): VC(⟨τ1σ, δ, τ2⟩) where τ2's unknowns remain and its
// eventual predicates live over the path's SSA exit variables (domain Qσt).
func (p *Problem) ForwardVC(path vc.Path, sigma template.Solution) logic.Formula {
	pre := sigma.Fill(p.TemplateAt(path.From))
	post := path.Sigma.Apply(p.TemplateAt(path.To)) // unknowns untouched by renaming
	return path.VC(pre, post)
}

// ForwardVCAt is ForwardVC for path index i via the compiled skeletons.
func (p *Problem) ForwardVCAt(i int, sigma template.Solution) logic.Formula {
	path := &p.Paths()[i]
	return p.VCAt(i, p.FillTemplateAt(path.From, sigma), p.compiled().renTo[i])
}

// RenamedTemplateTo returns σt applied to path i's target template with
// unknowns in place (cached; the post side of every forward VC and progress
// constraint).
func (p *Problem) RenamedTemplateTo(i int) logic.Formula {
	return p.compiled().renTo[i]
}

// BackwardVC (GFP step): VC(⟨τ1, δ, τ2σ·σt⟩) where τ1's unknowns remain
// over the original program variables (domain Q).
func (p *Problem) BackwardVC(path vc.Path, sigma template.Solution) logic.Formula {
	pre := p.TemplateAt(path.From)
	post := path.Sigma.Apply(sigma.Fill(p.TemplateAt(path.To)))
	return path.VC(pre, post)
}

// BackwardVCAt is BackwardVC for path index i via the compiled skeletons.
func (p *Problem) BackwardVCAt(i int, sigma template.Solution) logic.Formula {
	path := &p.Paths()[i]
	post := path.Sigma.Apply(p.FillTemplateAt(path.To, sigma))
	return p.VCAt(i, p.TemplateAt(path.From), post)
}

// InitialLFP returns σ0 for the least fixed-point algorithm: negative
// unknowns ↦ ∅ and positive unknowns ↦ Q(v), the strongest instantiation of
// every template.
func (p *Problem) InitialLFP() (template.Solution, error) {
	return p.initial(true)
}

// InitialGFP returns σ0 for the greatest fixed-point algorithm: positive
// unknowns ↦ ∅ and negative unknowns ↦ Q(v), the weakest instantiation.
func (p *Problem) InitialGFP() (template.Solution, error) {
	return p.initial(false)
}

func (p *Problem) initial(strongest bool) (template.Solution, error) {
	pol, err := p.Polarities()
	if err != nil {
		return nil, err
	}
	sigma := template.Solution{}
	for u, q := range pol {
		fullWhenPositive := strongest
		if (q == template.Positive) == fullWhenPositive {
			sigma[u] = template.NewPredSet(p.Q[u]...)
		} else {
			sigma[u] = template.NewPredSet()
		}
	}
	return sigma, nil
}

// Validate performs basic well-formedness checks: every unknown has a
// predicate vocabulary, entry/exit defaults are sane, and templates have
// consistent polarity. It is cheap and intended to run before solving.
func (p *Problem) Validate() error {
	if p.Prog == nil {
		return fmt.Errorf("spec: nil program")
	}
	if _, err := p.Polarities(); err != nil {
		return err
	}
	cuts := map[string]bool{vc.Entry: true, vc.Exit: true}
	for _, c := range p.Prog.CutPoints() {
		cuts[c] = true
	}
	for cut := range p.Templates {
		if !cuts[cut] {
			return fmt.Errorf("spec: template attached to unknown cut-point %q", cut)
		}
	}
	for _, u := range p.Unknowns() {
		if len(p.Q[u]) == 0 {
			return fmt.Errorf("spec: unknown %s has an empty predicate vocabulary", u)
		}
	}
	return nil
}
