package rpc

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"
)

// ClientConfig tunes a Client. The zero value is usable.
type ClientConfig struct {
	// MaxConns bounds the persistent connections kept to the target
	// (default 2). Streams multiplex, so a handful of connections carries
	// high fan-in; more mostly helps spread kernel socket buffers.
	MaxConns int
	// StreamsPerConn is the soft per-connection stream target (default 128):
	// a new connection is dialed when every existing one is at it. Calls are
	// never refused client-side — past MaxConns the least-loaded connection
	// is over-subscribed and the server's own stream cap answers 429.
	StreamsPerConn int
	// DialTimeout bounds one dial + handshake (default 3s).
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write (default 10s, negative disables).
	// Frame writers on a connection serialize behind one mutex, so without a
	// deadline a server that stops reading wedges every stream multiplexed on
	// that connection — including CANCEL frames for unrelated calls — behind
	// one blocked write. On expiry the connection is failed; callers see a
	// transport error and their normal failover/redial path takes over.
	WriteTimeout time.Duration
}

func (c ClientConfig) normalize() ClientConfig {
	if c.MaxConns <= 0 {
		c.MaxConns = 2
	}
	if c.StreamsPerConn <= 0 {
		c.StreamsPerConn = 128
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.WriteTimeout < 0 {
		c.WriteTimeout = 0
	}
	return c
}

// Client multiplexes calls to one rpc server address over a small pool of
// persistent connections. It is safe for concurrent use. Dead connections
// (server restart, network cut) are dropped and redialed on the next call,
// so a long-lived client rides through backend restarts.
type Client struct {
	addr string
	cfg  ClientConfig

	dialMu sync.Mutex // serializes dials so a cold burst opens one conn, not one per call

	mu     sync.Mutex
	conns  []*clientConn
	closed bool
}

// NewClient returns a Client for addr ("host:port"). No connection is
// dialed until the first Call.
func NewClient(addr string, cfg ClientConfig) *Client {
	return &Client{addr: addr, cfg: cfg.normalize()}
}

// Addr returns the target address.
func (c *Client) Addr() string { return c.addr }

// OpenConns reports currently live pooled connections (the router's
// open-connection gauge).
func (c *Client) OpenConns() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, cc := range c.conns {
		if !cc.isDead() {
			n++
		}
	}
	return n
}

// Close tears down every pooled connection. In-flight calls fail with a
// transport error.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	for _, cc := range conns {
		cc.fail(net.ErrClosed)
	}
}

// Call executes one request. A cancelled ctx sends a CANCEL frame for the
// stream (the server bridges it into the engine's cooperative Stop) and
// returns ctx.Err(). ErrNotRPC (wrapped) reports a peer that refused the
// handshake — callers fall back to HTTP; other errors are transport-level
// (the callers' failover signal). A stale pooled connection that died while
// idle is retried once on a fresh dial before reporting failure.
func (c *Client) Call(ctx context.Context, req Request) (Response, error) {
	payload, err := encodeRequest(req)
	if err != nil {
		return Response{}, err
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		cc, err := c.grab(ctx)
		if err != nil {
			return Response{}, err
		}
		resp, err := cc.roundTrip(ctx, payload)
		if err == nil {
			return resp, nil
		}
		if ctx.Err() != nil {
			return Response{}, err
		}
		lastErr = err
	}
	return Response{}, lastErr
}

// grab returns a live connection with stream capacity, dialing when the pool
// is empty or saturated and under MaxConns. Dials are serialized behind
// dialMu with a re-check in between, so a burst of cold calls shares the
// first dialed connection instead of each opening its own.
func (c *Client) grab(ctx context.Context) (*clientConn, error) {
	if cc, err := c.pick(); cc != nil || err != nil {
		return cc, err
	}
	c.dialMu.Lock()
	defer c.dialMu.Unlock()
	if cc, err := c.pick(); cc != nil || err != nil {
		return cc, err
	}
	cc, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cc.fail(net.ErrClosed)
		return nil, net.ErrClosed
	}
	c.conns = append(c.conns, cc)
	c.mu.Unlock()
	return cc, nil
}

// pick prunes dead connections and returns a usable one, or (nil, nil) when
// the caller should dial: the pool is empty, or every connection is at the
// per-connection stream target and the pool is under MaxConns.
func (c *Client) pick() (*clientConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, net.ErrClosed
	}
	live := c.conns[:0]
	var best *clientConn
	for _, cc := range c.conns {
		if cc.isDead() {
			continue
		}
		live = append(live, cc)
		if best == nil || cc.load() < best.load() {
			best = cc
		}
	}
	c.conns = live
	if best == nil {
		return nil, nil
	}
	if best.load() < c.cfg.StreamsPerConn || len(c.conns) >= c.cfg.MaxConns {
		return best, nil
	}
	return nil, nil
}

func (c *Client) dial(ctx context.Context) (*clientConn, error) {
	dctx, cancel := context.WithTimeout(ctx, c.cfg.DialTimeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial %s: %w", c.addr, err)
	}
	_ = conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if err := handshake(conn); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rpc: %s: %w", c.addr, err)
	}
	_ = conn.SetDeadline(time.Time{})
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	cc := &clientConn{conn: conn, writeTimeout: c.cfg.WriteTimeout, streams: map[uint64]chan Response{}, deadc: make(chan struct{})}
	go cc.readLoop()
	return cc, nil
}

// clientConn is one pooled connection.
type clientConn struct {
	conn         net.Conn
	writeTimeout time.Duration

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	streams map[uint64]chan Response
	nextID  uint64
	goaway  bool
	dead    bool
	err     error
	deadc   chan struct{} // closed when the connection dies
}

func (cc *clientConn) isDead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead || cc.goaway
}

func (cc *clientConn) load() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.streams)
}

// fail marks the connection dead, wakes every waiter, and closes the socket.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.dead {
		cc.mu.Unlock()
		return
	}
	cc.dead = true
	cc.err = err
	close(cc.deadc)
	cc.mu.Unlock()
	cc.conn.Close()
}

func (cc *clientConn) readLoop() {
	br := &byteReader{r: bufio.NewReaderSize(cc.conn, 64<<10)}
	for {
		f, err := readFrame(br)
		if err != nil {
			cc.fail(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		switch f.typ {
		case frameResp:
			resp, err := decodeResponse(f.payload)
			if err != nil {
				cc.fail(err)
				return
			}
			cc.mu.Lock()
			ch := cc.streams[f.stream]
			delete(cc.streams, f.stream)
			cc.mu.Unlock()
			if ch != nil {
				ch <- resp // buffered; a cancelled caller simply never reads it
			}
		case framePing:
			_ = cc.write(framePong, f.stream, f.payload)
		case frameGoAway:
			cc.mu.Lock()
			cc.goaway = true // existing streams finish; grab() stops picking us
			cc.mu.Unlock()
		case framePong:
			// No active pinger; ignore.
		default:
			cc.fail(fmt.Errorf("rpc: unknown frame type 0x%02x from server", f.typ))
			return
		}
	}
}

// write sends one frame under the write mutex, bounded by WriteTimeout. A
// failed or expired write fails the whole connection: the frame stream is
// unrecoverable mid-frame, and failing fast unblocks every waiter instead of
// letting a stalled peer wedge wmu (and with it CANCELs for other streams).
func (cc *clientConn) write(typ byte, stream uint64, payload []byte) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	if cc.writeTimeout > 0 {
		_ = cc.conn.SetWriteDeadline(time.Now().Add(cc.writeTimeout))
	}
	err := writeFrame(cc.conn, typ, stream, payload)
	if err != nil {
		cc.fail(fmt.Errorf("rpc: frame write: %w", err))
	}
	return err
}

// roundTrip opens a stream, writes the request, and waits for its response,
// the connection's death, or ctx.
func (cc *clientConn) roundTrip(ctx context.Context, payload []byte) (Response, error) {
	ch := make(chan Response, 1)
	cc.mu.Lock()
	if cc.dead {
		err := cc.err
		cc.mu.Unlock()
		return Response{}, err
	}
	cc.nextID++
	id := cc.nextID
	cc.streams[id] = ch
	cc.mu.Unlock()

	forget := func() {
		cc.mu.Lock()
		delete(cc.streams, id)
		cc.mu.Unlock()
	}
	if err := cc.write(frameReq, id, payload); err != nil {
		forget()
		cc.fail(err)
		return Response{}, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-cc.deadc:
		forget()
		cc.mu.Lock()
		err := cc.err
		cc.mu.Unlock()
		return Response{}, err
	case <-ctx.Done():
		// Half-close the stream: the server cancels the run (engine Stop)
		// and will answer with an aborted status nobody is waiting for.
		forget()
		_ = cc.write(frameCancel, id, nil)
		return Response{}, ctx.Err()
	}
}
