package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range []Request{
		{Kind: KindVerify, Method: "lfp", TimeoutMS: 5000, Client: "router-1", Spec: "program P() {}"},
		{Kind: KindPreconditions, Spec: strings.Repeat("x", 100_000)},
		{Kind: KindVerify, Method: "cfp", Client: "", Spec: "s\n\"quoted\"\x00bytes"},
	} {
		payload, err := encodeRequest(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeRequest(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != req {
			t.Fatalf("round trip: got %+v want %+v", got, req)
		}
	}
	if _, err := encodeRequest(Request{Kind: "bogus"}); err == nil {
		t.Fatal("unknown kind encoded")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := Response{Status: 200, ProblemKey: "abc123", Backend: "vs3d-1", Body: []byte(`{"proved":true}`)}
	got, err := decodeResponse(encodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != resp.Status || got.ProblemKey != resp.ProblemKey ||
		got.Backend != resp.Backend || string(got.Body) != string(resp.Body) {
		t.Fatalf("round trip: got %+v want %+v", got, resp)
	}
	// Truncated payloads must error, not panic or over-read.
	payload := encodeResponse(resp)
	for cut := 0; cut < len(payload); cut++ {
		if _, err := decodeResponse(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

// handlerFunc adapts a func to Handler.
type handlerFunc func(ctx context.Context, req Request) Response

func (f handlerFunc) ServeRPC(ctx context.Context, req Request) Response { return f(ctx, req) }

// startServer boots a Server on an ephemeral port, returning its address,
// the server, and a stop func.
func startServer(t *testing.T, h Handler, cfg ServerConfig) (string, *Server, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(h, cfg)
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ln) }()
	stop := func() {
		ln.Close()
		srv.Close()
		<-done
	}
	return ln.Addr().String(), srv, stop
}

func echoHandler(ctx context.Context, req Request) Response {
	return Response{
		Status:     200,
		ProblemKey: "key:" + req.Spec,
		Backend:    "echo",
		Body:       []byte(fmt.Sprintf(`{"kind":%q,"method":%q,"client":%q}`, req.Kind, req.Method, req.Client)),
	}
}

func TestCallMultiplexed(t *testing.T) {
	addr, srv, stop := startServer(t, handlerFunc(echoHandler), ServerConfig{})
	defer stop()
	c := NewClient(addr, ClientConfig{MaxConns: 1})
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := fmt.Sprintf("spec-%d", i)
			resp, err := c.Call(context.Background(), Request{Kind: KindVerify, Method: "lfp", Client: "t", Spec: spec})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if resp.Status != 200 || resp.ProblemKey != "key:"+spec || resp.Backend != "echo" {
				t.Errorf("call %d: %+v", i, resp)
			}
		}(i)
	}
	wg.Wait()
	if conns := c.OpenConns(); conns != 1 {
		t.Fatalf("64 concurrent calls used %d connections, want 1 (multiplexed)", conns)
	}
	conns, streams, requests, _ := srv.Stats()
	if conns != 1 || streams != 0 || requests != 64 {
		t.Fatalf("server stats conns=%d streams=%d requests=%d", conns, streams, requests)
	}
}

func TestCancelPropagatesToHandler(t *testing.T) {
	sawCancel := make(chan struct{})
	started := make(chan struct{}, 1)
	h := handlerFunc(func(ctx context.Context, req Request) Response {
		started <- struct{}{}
		select {
		case <-ctx.Done():
			close(sawCancel)
			return Response{Status: 499, Body: []byte(`{"error":"aborted"}`)}
		case <-time.After(10 * time.Second):
			return Response{Status: 200}
		}
	})
	addr, srv, stop := startServer(t, h, ServerConfig{})
	defer stop()
	c := NewClient(addr, ClientConfig{})
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, Request{Kind: KindVerify, Spec: "slow"})
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled call returned %v", err)
	}
	select {
	case <-sawCancel:
	case <-time.After(5 * time.Second):
		t.Fatal("handler context never cancelled after client CANCEL")
	}
	// The handler finished; the stream gauge must drain and the cancel count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, streams, _, cancels := srv.Stats()
		if streams == 0 && cancels == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams=%d cancels=%d after cancel", streams, cancels)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNotRPCPeer(t *testing.T) {
	// A plain TCP server that answers like HTTP: the handshake must fail
	// with ErrNotRPC, the caller's fall-back-to-HTTP signal.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				buf := make([]byte, 64)
				conn.Read(buf)
				conn.Write([]byte("HTTP/1.1 400 Bad Request\r\n\r\n"))
			}(conn)
		}
	}()
	c := NewClient(ln.Addr().String(), ClientConfig{})
	defer c.Close()
	_, err = c.Call(context.Background(), Request{Kind: KindVerify, Spec: "s"})
	if !errors.Is(err, ErrNotRPC) {
		t.Fatalf("got %v, want ErrNotRPC", err)
	}
}

func TestServerRejectsBadHandshake(t *testing.T) {
	addr, srv, stop := startServer(t, handlerFunc(echoHandler), ServerConfig{HandshakeTimeout: 500 * time.Millisecond})
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("GET /v1/verify HTTP/1.1\r\n"))
	buf := make([]byte, 16)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// The server may write its own hello bytes before reading ours; either
	// way it must close the connection without serving.
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	if conns, _, _, _ := srv.Stats(); conns != 0 {
		t.Fatalf("bad-handshake connection counted: %d", conns)
	}
}

func TestRedialAfterServerRestart(t *testing.T) {
	addr, _, stop := startServer(t, handlerFunc(echoHandler), ServerConfig{})
	c := NewClient(addr, ClientConfig{})
	defer c.Close()
	if _, err := c.Call(context.Background(), Request{Kind: KindVerify, Spec: "a"}); err != nil {
		t.Fatal(err)
	}
	stop()

	// Restart on the same address (retry briefly: the kernel may lag the
	// rebind) and the pooled — now dead — connection must be replaced.
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(handlerFunc(echoHandler), ServerConfig{})
	go srv2.Serve(ln)
	defer func() { ln.Close(); srv2.Close() }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Call(context.Background(), Request{Kind: KindVerify, Spec: "b"})
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never recovered after restart: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestStreamLimit(t *testing.T) {
	block := make(chan struct{})
	h := handlerFunc(func(ctx context.Context, req Request) Response {
		if req.Spec == "block" {
			select {
			case <-block:
			case <-ctx.Done():
			}
		}
		return Response{Status: 200}
	})
	addr, srv, stop := startServer(t, h, ServerConfig{MaxStreams: 1})
	defer stop()
	c := NewClient(addr, ClientConfig{MaxConns: 1, StreamsPerConn: 64})
	defer c.Close()

	respc := make(chan Response, 1)
	go func() {
		resp, err := c.Call(context.Background(), Request{Kind: KindVerify, Spec: "block"})
		if err != nil {
			t.Error(err)
		}
		respc <- resp
	}()
	// Wait until the blocking stream is live before probing — otherwise the
	// probe can win the single slot and the 429 lands on the blocker instead.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, streams, _, _ := srv.Stats(); streams == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocking stream never became live")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := c.Call(context.Background(), Request{Kind: KindVerify, Spec: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 429 {
		t.Fatalf("call past the stream cap got %d, want 429", resp.Status)
	}
	close(block)
	if resp := <-respc; resp.Status != 200 {
		t.Fatalf("blocked call finished with %d, want 200", resp.Status)
	}
}

func TestGoAwayDrain(t *testing.T) {
	addr, srv, stop := startServer(t, handlerFunc(echoHandler), ServerConfig{})
	defer stop()
	c := NewClient(addr, ClientConfig{MaxConns: 1})
	defer c.Close()
	if _, err := c.Call(context.Background(), Request{Kind: KindVerify, Spec: "a"}); err != nil {
		t.Fatal(err)
	}
	srv.StartDrain()
	// The pooled connection must observe GOAWAY and stop being selected;
	// new calls still succeed on a fresh connection (the server keeps
	// serving until Close — router health checks own taking it out of
	// rotation).
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		flagged := len(c.conns) > 0 && c.conns[0].isDead()
		c.mu.Unlock()
		if flagged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("GOAWAY never flagged the pooled connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Call(context.Background(), Request{Kind: KindVerify, Spec: "b"}); err != nil {
		t.Fatalf("call during drain: %v", err)
	}
}

func TestErrorBody(t *testing.T) {
	got := string(errorBody(errors.New("bad \"spec\"\nline")))
	want := `{"error":"bad \"spec\"\nline"}`
	if got != want {
		t.Fatalf("errorBody = %s, want %s", got, want)
	}
}
