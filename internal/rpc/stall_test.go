package rpc

import (
	"bytes"
	"context"
	"net"
	"strings"
	"testing"
	"time"
)

// These are the regression tests for the write-stall bug: connections set no
// write deadline after the handshake, so a peer that stopped reading parked
// one goroutine in a blocking write while it held the connection's write
// mutex — wedging every multiplexed stream (responses, CANCELs, PONGs) behind
// it forever. With per-frame write deadlines the stalled connection is torn
// down instead and normal failover takes over.

// tuneListener clamps the kernel send buffer on accepted connections so a
// stalled reader backs a large pending write up within a few KB instead of a
// few MB of autotuned socket buffer.
type tuneListener struct{ net.Listener }

func (l tuneListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err == nil {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetWriteBuffer(4 << 10)
		}
	}
	return conn, err
}

// TestServerWriteStallTearsDownConnection: a client opens a stream, then never
// reads the (large) response. The server's response write must hit its
// deadline and tear the connection down — before the fix, the write blocked
// forever and both gauges stayed pinned.
func TestServerWriteStallTearsDownConnection(t *testing.T) {
	// The big response only goes to the stall request: the listener clamps
	// every accepted connection's send buffer, and squeezing 8MB through a
	// few-KB buffer is slow even for a reading peer (delayed ACKs), which
	// would trip the deadline on the well-behaved recovery connection too.
	big := bytes.Repeat([]byte("x"), 8<<20)
	h := handlerFunc(func(ctx context.Context, req Request) Response {
		if req.Spec == "stall" {
			return Response{Status: 200, Body: big}
		}
		return Response{Status: 200, Body: []byte("ok")}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// 2s is generous for a reading peer even on a loaded CI box (a too-tight
	// deadline tears down well-behaved connections when the scheduler starves
	// the reader), while the stalled connection can never drain regardless.
	srv := NewServer(h, ServerConfig{WriteTimeout: 2 * time.Second, Logf: t.Logf})
	go srv.Serve(tuneListener{ln})
	defer func() { ln.Close(); srv.Close() }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 10)
	}
	if err := handshake(conn); err != nil {
		t.Fatal(err)
	}
	payload, err := encodeRequest(Request{Kind: KindVerify, Spec: "stall"})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameReq, 1, payload); err != nil {
		t.Fatal(err)
	}
	// Deliberately never read: the 8MB response overflows the clamped socket
	// buffers and parks the server in the frame write until its deadline.

	deadline := time.Now().Add(10 * time.Second)
	for {
		conns, streams, _, _ := srv.Stats()
		if conns == 0 && streams == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stalled connection never torn down: conns=%d streams=%d", conns, streams)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The server must still serve fresh, well-behaved connections.
	c := NewClient(ln.Addr().String(), ClientConfig{})
	defer c.Close()
	resp, err := c.Call(context.Background(), Request{Kind: KindVerify, Spec: "after"})
	if err != nil {
		t.Fatalf("call after stalled-peer teardown: %v", err)
	}
	if resp.Status != 200 || string(resp.Body) != "ok" {
		t.Fatalf("call after teardown: status=%d body=%q", resp.Status, resp.Body)
	}
}

// TestClientWriteStallFailsCall: the server handshakes and then never reads a
// frame. The client's (large) request write must hit its deadline and fail
// the call as a transport error — before the fix, Call blocked forever.
func TestClientWriteStallFailsCall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetReadBuffer(4 << 10)
			}
			go func(conn net.Conn) {
				defer conn.Close()
				_ = handshake(conn)
				<-stop // handshake done; now stall, reading nothing
			}(conn)
		}
	}()

	c := NewClient(ln.Addr().String(), ClientConfig{WriteTimeout: 300 * time.Millisecond})
	defer c.Close()
	start := time.Now()
	_, err = c.Call(context.Background(), Request{Kind: KindVerify, Spec: strings.Repeat("x", 8<<20)})
	if err == nil {
		t.Fatal("call against a stalled reader returned nil")
	}
	// Two attempts at ~300ms each plus dial slack: well under the blocking-
	// forever failure mode, which only ends at the test binary's timeout.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("stalled call took %v to fail", elapsed)
	}
}
