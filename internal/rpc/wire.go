// Package rpc is the binary transport of the serving tier: a dependency-free,
// length-prefixed framing protocol carrying verify/preconditions calls over
// persistent multiplexed TCP connections. HTTP/JSON remains the public
// surface; rpc exists for high-fan-in internal callers (cmd/vs3router fanning
// requests over a fleet, cmd/vs3load driving it) where per-request connection
// setup, header parsing, and one-request-per-roundtrip framing dominate the
// warm path the engine has already driven to sub-millisecond (see DESIGN.md
// §16).
//
// Connection establishment is a 5-byte handshake in each direction — the
// 4-byte magic "VS3R" followed by a protocol version byte. A peer that
// answers anything else (an HTTP server, an older build) is not speaking
// rpc; clients surface that as ErrNotRPC so callers can fall back to HTTP.
//
// After the handshake the connection carries frames, each:
//
//	uvarint  length of the remainder (type + stream + payload)
//	byte     frame type
//	uvarint  stream ID
//	...      payload
//
// Streams multiplex: a client opens a stream per call with a REQ frame under
// a connection-unique monotonically increasing ID, and the server answers with
// exactly one RESP frame for that ID, in whatever order calls complete. A
// CANCEL frame from the client is the binary equivalent of an HTTP client
// disconnect: the server cancels the stream's context, which the serving
// layer bridges into the engine's cooperative Stop — the run is reported
// aborted (status 499), never as a false "no invariant found". PING/PONG
// probe liveness; GOAWAY tells the peer the connection is draining and no
// new streams should be opened on it.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants. There is no version negotiation — a mismatch is a
// handshake failure, which callers treat as "not an rpc peer".
const (
	// Magic prefixes the handshake in both directions.
	Magic = "VS3R"
	// Version is the only protocol version this build speaks.
	Version = 1
)

// Frame types.
const (
	frameReq    = 0x01 // client → server: open a stream with a request
	frameResp   = 0x02 // server → client: the stream's single response
	frameCancel = 0x03 // client → server: abandon a stream (half-close)
	framePing   = 0x04 // either direction: liveness probe (stream = nonce)
	framePong   = 0x05 // reply to a PING, echoing its nonce
	frameGoAway = 0x06 // server → client: draining, open no new streams
)

// maxFrame bounds one frame's encoded size. Spec files are at most ~1MB over
// HTTP (serve.maxSpecBytes); responses carry stats JSON. 16MB leaves room
// without letting a corrupt length prefix allocate unbounded memory.
const maxFrame = 16 << 20

// Request kinds.
const (
	// KindVerify runs one algorithm on a spec (the POST /v1/verify analog).
	KindVerify = "verify"
	// KindPreconditions enumerates maximally-weak preconditions (the
	// POST /v1/preconditions analog).
	KindPreconditions = "preconditions"
	// KindDigest fetches the backend's solved-outcome bloom digest (the
	// store_digest field of GET /v1/stats). No spec; answered without
	// leasing a verifier session, so the router's sweep can refresh digests
	// cheaply over an already-open connection.
	KindDigest = "digest"
)

// Request is one call. It mirrors the HTTP request surface: Spec and Method
// as serve.VerifyRequest carries them, TimeoutMS the per-run deadline the
// server clamps, Client the fair-queueing identity (the X-VS3-Client analog).
type Request struct {
	Kind      string
	Method    string
	TimeoutMS int64
	Client    string
	Spec      string
}

// Response is one call's answer. Status is the HTTP status an equivalent
// HTTP request would have carried (200, 400, 429, 499, 504, ...); Body is
// the exact JSON body that request would have returned (serve.VerifyResponse,
// serve.PreconditionsResponse, or the {"error": ...} shape), so a caller can
// fall back between transports without two decoders. ProblemKey and Backend
// are the X-VS3-Problem-Key / X-VS3-Backend header analogs.
type Response struct {
	Status     int
	ProblemKey string
	Backend    string
	Body       []byte
}

// ErrNotRPC reports that the remote peer did not complete the rpc handshake
// (wrong magic or version) — it is probably an HTTP-only backend. Callers
// fall back to HTTP on it rather than failing over to another backend.
var ErrNotRPC = errors.New("rpc: peer did not complete the VS3R handshake")

// handshake writes our 5 bytes and checks the peer's. Symmetric: both ends
// call it (the server after Accept, the client after Dial).
func handshake(rw io.ReadWriter) error {
	hello := append([]byte(Magic), Version)
	if _, err := rw.Write(hello); err != nil {
		return fmt.Errorf("rpc: handshake write: %w", err)
	}
	var peer [5]byte
	if _, err := io.ReadFull(rw, peer[:]); err != nil {
		return ErrNotRPC
	}
	if string(peer[:4]) != Magic || peer[4] != Version {
		return ErrNotRPC
	}
	return nil
}

// frame is one decoded frame.
type frame struct {
	typ     byte
	stream  uint64
	payload []byte
}

// readFrame reads one length-prefixed frame from br. The payload slice is
// freshly allocated (frames cross goroutine boundaries).
func readFrame(br *byteReader) (frame, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return frame{}, err
	}
	if n < 1 || n > maxFrame {
		return frame{}, fmt.Errorf("rpc: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return frame{}, err
	}
	typ := buf[0]
	stream, used := binary.Uvarint(buf[1:])
	if used <= 0 {
		return frame{}, errors.New("rpc: truncated stream id")
	}
	return frame{typ: typ, stream: stream, payload: buf[1+used:]}, nil
}

// writeFrame encodes and writes one frame. The caller serializes writers
// (both conn sides hold a write mutex), so a frame is always written whole.
func writeFrame(w io.Writer, typ byte, stream uint64, payload []byte) error {
	var head [2 * binary.MaxVarintLen64]byte
	streamLen := binary.PutUvarint(head[binary.MaxVarintLen64:], stream)
	total := uint64(1 + streamLen + len(payload))
	if total > maxFrame {
		return fmt.Errorf("rpc: frame of %d bytes exceeds the %d-byte limit", total, maxFrame)
	}
	lenLen := binary.PutUvarint(head[:], total)
	buf := make([]byte, 0, int(total)+lenLen)
	buf = append(buf, head[:lenLen]...)
	buf = append(buf, typ)
	buf = append(buf, head[binary.MaxVarintLen64:binary.MaxVarintLen64+streamLen]...)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// byteReader adapts a bufio-like reader for binary.ReadUvarint while keeping
// io.Reader for payload reads. (bufio.Reader implements both; this interface
// keeps the dependency explicit.)
type byteReader struct {
	r interface {
		io.Reader
		io.ByteReader
	}
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *byteReader) ReadByte() (byte, error)    { return b.r.ReadByte() }

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// takeString consumes a uvarint-length-prefixed string.
func takeString(buf []byte) (string, []byte, error) {
	n, used := binary.Uvarint(buf)
	if used <= 0 || n > uint64(len(buf)-used) {
		return "", nil, errors.New("rpc: truncated string")
	}
	return string(buf[used : used+int(n)]), buf[used+int(n):], nil
}

// encodeRequest renders a REQ payload:
//
//	kind byte (1 = verify, 2 = preconditions)
//	uvarint timeout_ms
//	string  method
//	string  client
//	string  spec
func encodeRequest(req Request) ([]byte, error) {
	var kind byte
	switch req.Kind {
	case KindVerify:
		kind = 1
	case KindPreconditions:
		kind = 2
	case KindDigest:
		kind = 3
	default:
		return nil, fmt.Errorf("rpc: unknown request kind %q", req.Kind)
	}
	buf := make([]byte, 0, 16+len(req.Method)+len(req.Client)+len(req.Spec))
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, uint64(max64(req.TimeoutMS, 0)))
	buf = appendString(buf, req.Method)
	buf = appendString(buf, req.Client)
	buf = appendString(buf, req.Spec)
	return buf, nil
}

func decodeRequest(payload []byte) (Request, error) {
	if len(payload) < 1 {
		return Request{}, errors.New("rpc: empty request payload")
	}
	var req Request
	switch payload[0] {
	case 1:
		req.Kind = KindVerify
	case 2:
		req.Kind = KindPreconditions
	case 3:
		req.Kind = KindDigest
	default:
		return Request{}, fmt.Errorf("rpc: unknown request kind byte %d", payload[0])
	}
	rest := payload[1:]
	timeout, used := binary.Uvarint(rest)
	if used <= 0 {
		return Request{}, errors.New("rpc: truncated timeout")
	}
	req.TimeoutMS = int64(timeout)
	var err error
	if req.Method, rest, err = takeString(rest[used:]); err != nil {
		return Request{}, err
	}
	if req.Client, rest, err = takeString(rest); err != nil {
		return Request{}, err
	}
	if req.Spec, _, err = takeString(rest); err != nil {
		return Request{}, err
	}
	return req, nil
}

// encodeResponse renders a RESP payload:
//
//	uvarint status
//	string  problem key
//	string  backend id
//	string  body (JSON)
func encodeResponse(resp Response) []byte {
	buf := make([]byte, 0, 16+len(resp.ProblemKey)+len(resp.Backend)+len(resp.Body))
	buf = binary.AppendUvarint(buf, uint64(resp.Status))
	buf = appendString(buf, resp.ProblemKey)
	buf = appendString(buf, resp.Backend)
	buf = binary.AppendUvarint(buf, uint64(len(resp.Body)))
	return append(buf, resp.Body...)
}

func decodeResponse(payload []byte) (Response, error) {
	var resp Response
	status, used := binary.Uvarint(payload)
	if used <= 0 {
		return Response{}, errors.New("rpc: truncated status")
	}
	resp.Status = int(status)
	rest := payload[used:]
	var err error
	if resp.ProblemKey, rest, err = takeString(rest); err != nil {
		return Response{}, err
	}
	if resp.Backend, rest, err = takeString(rest); err != nil {
		return Response{}, err
	}
	n, used := binary.Uvarint(rest)
	if used <= 0 || n > uint64(len(rest)-used) {
		return Response{}, errors.New("rpc: truncated body")
	}
	resp.Body = append([]byte(nil), rest[used:used+int(n)]...)
	return resp, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
