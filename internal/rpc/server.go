package rpc

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Handler answers one decoded request. serve.Server implements it directly
// (same session pool, fair queue, store, and stats as the HTTP surface);
// route.Router implements it to put a binary front on the whole fleet. The
// context is cancelled when the client cancels the stream or the connection
// dies — the exact analog of an HTTP client disconnect, and implementations
// must preserve the same no-false-negative semantics (an interrupted run is
// an aborted status, never a "not proved" verdict).
type Handler interface {
	ServeRPC(ctx context.Context, req Request) Response
}

// ServerConfig tunes a Server. The zero value is usable.
type ServerConfig struct {
	// MaxStreams bounds concurrently executing streams per connection
	// (default 256). Beyond it, new REQ frames are answered with a 429
	// response — the wait-queue bounding is the handler's job (the serving
	// layer's fair queue), this cap only stops one connection from opening
	// unbounded goroutines.
	MaxStreams int
	// HandshakeTimeout bounds how long an accepted connection may take to
	// complete the 5-byte handshake (default 10s), so an idle port scanner
	// cannot pin a goroutine.
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each frame write (default 10s, negative disables).
	// Frame writers on a connection serialize behind one mutex, so without a
	// deadline a single peer that stops reading wedges every stream on that
	// connection — including CANCEL handling — behind one blocked write. On
	// expiry the connection is torn down: streams see their contexts
	// cancelled and the client's failover takes over.
	WriteTimeout time.Duration
	// Logf, when non-nil, receives connection-level error lines.
	Logf func(format string, args ...any)
}

func (c ServerConfig) normalize() ServerConfig {
	if c.MaxStreams <= 0 {
		c.MaxStreams = 256
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 10 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.WriteTimeout < 0 {
		c.WriteTimeout = 0
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server accepts rpc connections and dispatches their streams to a Handler.
type Server struct {
	h   Handler
	cfg ServerConfig

	mu       sync.Mutex
	conns    map[*serverConn]struct{}
	draining bool
	closed   bool

	connsGauge   atomic.Int64 // open handshaken connections
	streamsGauge atomic.Int64 // streams currently executing
	requests     atomic.Int64 // REQ frames accepted (lifetime)
	cancels      atomic.Int64 // CANCEL frames that hit a live stream
}

// NewServer returns a Server dispatching to h.
func NewServer(h Handler, cfg ServerConfig) *Server {
	return &Server{h: h, cfg: cfg.normalize(), conns: map[*serverConn]struct{}{}}
}

// Stats returns the open-connection and executing-stream gauges plus the
// lifetime accepted-request and honored-cancel counters.
func (s *Server) Stats() (conns, streams, requests, cancels int64) {
	return s.connsGauge.Load(), s.streamsGauge.Load(), s.requests.Load(), s.cancels.Load()
}

// Serve accepts connections on ln until ln is closed or Close is called.
// It always returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// StartDrain sends GOAWAY on every open connection, telling well-behaved
// clients to open no new streams here; in-flight streams finish normally.
// The serving layer's drain (healthz 503) is what actually takes the backend
// out of router rotation — GOAWAY just shortens the race window for streams
// opened between the healthz flip and the next health sweep.
func (s *Server) StartDrain() {
	s.mu.Lock()
	s.draining = true
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.goAway()
	}
}

// Close tears down every connection; in-flight streams see their contexts
// cancelled. Call after the HTTP server has shut down.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
}

// serverConn is one accepted, handshaken connection.
type serverConn struct {
	srv  *Server
	conn net.Conn

	wmu sync.Mutex // serializes frame writes

	smu     sync.Mutex
	streams map[uint64]context.CancelFunc
	done    map[uint64]bool // stream IDs already answered (cancel after finish is a no-op)
}

func (s *Server) serveConn(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(s.cfg.HandshakeTimeout))
	if err := handshake(conn); err != nil {
		s.cfg.Logf("rpc: %s: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	c := &serverConn{srv: s, conn: conn, streams: map[uint64]context.CancelFunc{}, done: map[uint64]bool{}}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[c] = struct{}{}
	draining := s.draining
	s.mu.Unlock()
	s.connsGauge.Add(1)
	if draining {
		c.goAway()
	}
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.connsGauge.Add(-1)
		c.close()
	}()

	br := &byteReader{r: bufio.NewReaderSize(conn, 64<<10)}
	for {
		f, err := readFrame(br)
		if err != nil {
			return // EOF, reset, or a malformed frame: tear the connection down
		}
		switch f.typ {
		case frameReq:
			c.handleReq(f)
		case frameCancel:
			c.cancelStream(f.stream)
		case framePing:
			_ = c.write(framePong, f.stream, f.payload)
		case framePong, frameGoAway:
			// Valid from a client only as no-ops.
		default:
			s.cfg.Logf("rpc: %s: unknown frame type 0x%02x", conn.RemoteAddr(), f.typ)
			return
		}
	}
}

// write sends one frame under the write mutex, bounded by WriteTimeout. A
// failed or expired write leaves the frame stream unrecoverable mid-frame, so
// the connection is closed: the read loop exits, serveConn's cleanup cancels
// every live stream, and wmu stops being a choke point for a dead peer.
func (c *serverConn) write(typ byte, stream uint64, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if d := c.srv.cfg.WriteTimeout; d > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(d))
	}
	err := writeFrame(c.conn, typ, stream, payload)
	if err != nil {
		c.srv.cfg.Logf("rpc: %s: frame write: %v (closing connection)", c.conn.RemoteAddr(), err)
		c.conn.Close()
	}
	return err
}

func (c *serverConn) goAway() { _ = c.write(frameGoAway, 0, nil) }

// close cancels every live stream (their handlers abort cooperatively) and
// closes the socket.
func (c *serverConn) close() {
	c.smu.Lock()
	cancels := make([]context.CancelFunc, 0, len(c.streams))
	for _, cancel := range c.streams {
		cancels = append(cancels, cancel)
	}
	c.smu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	c.conn.Close()
}

func (c *serverConn) cancelStream(id uint64) {
	c.smu.Lock()
	cancel, ok := c.streams[id]
	c.smu.Unlock()
	if ok {
		c.srv.cancels.Add(1)
		cancel()
	}
}

// handleReq decodes and dispatches one stream. The handler runs in its own
// goroutine; the frame-reading loop stays free to deliver CANCELs for it.
func (c *serverConn) handleReq(f frame) {
	req, err := decodeRequest(f.payload)
	if err != nil {
		_ = c.write(frameResp, f.stream, encodeResponse(Response{
			Status: 400, Body: errorBody(err),
		}))
		return
	}
	c.smu.Lock()
	if c.done[f.stream] || c.streams[f.stream] != nil {
		c.smu.Unlock()
		_ = c.write(frameResp, f.stream, encodeResponse(Response{
			Status: 400, Body: errorBody(errors.New("rpc: stream id reused")),
		}))
		return
	}
	if len(c.streams) >= c.srv.cfg.MaxStreams {
		c.smu.Unlock()
		_ = c.write(frameResp, f.stream, encodeResponse(Response{
			Status: 429, Body: errorBody(errors.New("rpc: connection stream limit reached")),
		}))
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.streams[f.stream] = cancel
	c.smu.Unlock()
	c.srv.requests.Add(1)
	c.srv.streamsGauge.Add(1)

	go func() {
		defer c.srv.streamsGauge.Add(-1)
		resp := c.srv.h.ServeRPC(ctx, req)
		c.smu.Lock()
		delete(c.streams, f.stream)
		c.done[f.stream] = true
		if len(c.done) > 1<<16 {
			// Bound the answered-ID memory; a well-behaved client never
			// reuses IDs anyway, so resetting only weakens the duplicate
			// check, not correctness.
			c.done = map[uint64]bool{}
		}
		c.smu.Unlock()
		cancel()
		_ = c.write(frameResp, f.stream, encodeResponse(resp))
	}()
}

// errorBody renders the {"error": ...} JSON shape the HTTP surface uses,
// without importing encoding/json for a one-field object.
func errorBody(err error) []byte {
	quoted := make([]byte, 0, len(err.Error())+16)
	quoted = append(quoted, `{"error":"`...)
	for _, r := range err.Error() {
		switch r {
		case '"':
			quoted = append(quoted, '\\', '"')
		case '\\':
			quoted = append(quoted, '\\', '\\')
		case '\n':
			quoted = append(quoted, '\\', 'n')
		default:
			if r < 0x20 {
				continue
			}
			quoted = append(quoted, string(r)...)
		}
	}
	return append(quoted, `"}`...)
}

// AdvertiseAddr renders a bound rpc listener address for the X-VS3-RPC
// header: a listener on an unspecified host (":8081", "0.0.0.0", "::")
// advertises just ":port" so peers join it with the host they already reach
// the advertiser's HTTP surface on.
func AdvertiseAddr(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		return ":" + port
	}
	return net.JoinHostPort(host, port)
}
