// Package par provides the tiny deterministic fan-out primitive shared by
// the parallel solving engine: run n index-addressed jobs on a bounded pool
// of workers and wait. Callers write results into index i of a pre-sized
// slice, so assembly order — and therefore every downstream decision — is
// independent of goroutine scheduling.
package par

import (
	"runtime"
	"sync"
)

// Workers normalizes a parallelism option: 0 means runtime.GOMAXPROCS(0),
// anything below 1 means sequential.
func Workers(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	return n
}

// ForEach runs f(0..n-1) on at most workers goroutines and returns when all
// calls complete. With workers <= 1 (or n <= 1) it runs inline, so the
// sequential path has zero goroutine overhead and identical stack traces to
// the pre-parallel engine.
func ForEach(n, workers int, f func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
