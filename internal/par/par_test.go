package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != 1 {
		t.Errorf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 33} {
		const n = 100
		var hits [n]atomic.Int32
		ForEach(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	ran := false
	ForEach(0, 4, func(int) { ran = true })
	if ran {
		t.Error("f ran with n=0")
	}
}
