package lang

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNum
	tokSym // punctuation / operator, text in tok.text
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
	line int
}

// lex splits src into tokens. Line comments start with //.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '\'') {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], pos: i, line: line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < n && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: tokNum, text: src[i:j], pos: i, line: line})
			i = j
		default:
			// Multi-character operators first, longest match.
			matched := ""
			for _, op := range []string{":=", "==", "!=", "<=", ">=", "&&", "||", "=>"} {
				if strings.HasPrefix(src[i:], op) {
					matched = op
					break
				}
			}
			if matched == "" {
				if strings.ContainsRune("(){}[],;.=<>+-*!?:", rune(c)) {
					matched = string(c)
				} else {
					return nil, fmt.Errorf("line %d: unexpected character %q", line, c)
				}
			}
			toks = append(toks, token{kind: tokSym, text: matched, pos: i, line: line})
			i += len(matched)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n, line: line})
	return toks, nil
}
