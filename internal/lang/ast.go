// Package lang defines the small imperative language of §2.2 of the paper —
// scalar and array assignments, assume/assert, structured conditionals and
// loops — together with a lexer/parser for a C-like concrete syntax. It
// plays the role of the paper's Phoenix frontend.
package lang

import (
	"fmt"
	"strings"

	"repro/internal/logic"
)

// Stmt is a program statement.
type Stmt interface {
	isStmt()
	writeTo(b *strings.Builder, indent string)
}

// Assign is the scalar assignment X := E.
type Assign struct {
	X string
	E logic.Term
}

// ArrAssign is the array store A[Idx] := E.
type ArrAssign struct {
	A      string
	Idx, E logic.Term
}

// Havoc assigns an arbitrary value to X (non-deterministic choice, typically
// constrained by a following Assume).
type Havoc struct{ X string }

// Assume constrains control flow: execution continues only if F holds.
type Assume struct{ F logic.Formula }

// Assert is a proof obligation: F must hold whenever control reaches it.
type Assert struct{ F logic.Formula }

// If is a conditional; a nil Cond is a non-deterministic choice.
type If struct {
	Cond       logic.Formula
	Then, Else []Stmt
}

// While is a loop; its header is a cut-point carrying the invariant template
// named Label. A nil Cond is a non-deterministic loop.
type While struct {
	Label string
	Cond  logic.Formula
	Body  []Stmt
}

func (Assign) isStmt()    {}
func (ArrAssign) isStmt() {}
func (Havoc) isStmt()     {}
func (Assume) isStmt()    {}
func (Assert) isStmt()    {}
func (If) isStmt()        {}
func (While) isStmt()     {}

// Program is a named routine: the unit of verification.
type Program struct {
	Name string
	// IntParams and ArrParams record declared parameters (for documentation
	// and well-formedness checks; the logic layer is untyped beyond
	// int/array).
	IntParams []string
	ArrParams []string
	Body      []Stmt
}

// CutPoints returns the loop labels of the program in syntactic order.
// Together with the implicit "entry" and "exit" cut-points they form the
// cut-set of §2.2.
func (p *Program) CutPoints() []string {
	var out []string
	var walk func([]Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch s := s.(type) {
			case If:
				walk(s.Then)
				walk(s.Else)
			case While:
				out = append(out, s.Label)
				walk(s.Body)
			}
		}
	}
	walk(p.Body)
	return out
}

// String pretty-prints the program in the concrete syntax accepted by Parse.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s(", p.Name)
	parts := make([]string, 0, len(p.IntParams)+len(p.ArrParams))
	for _, a := range p.ArrParams {
		parts = append(parts, "array "+a)
	}
	parts = append(parts, p.IntParams...)
	b.WriteString(strings.Join(parts, ", "))
	b.WriteString(") {\n")
	writeStmts(&b, p.Body, "  ")
	b.WriteString("}\n")
	return b.String()
}

func writeStmts(b *strings.Builder, stmts []Stmt, indent string) {
	for _, s := range stmts {
		s.writeTo(b, indent)
	}
}

func (s Assign) writeTo(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%s%s := %s;\n", indent, s.X, s.E)
}

func (s ArrAssign) writeTo(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%s%s[%s] := %s;\n", indent, s.A, s.Idx, s.E)
}

func (s Havoc) writeTo(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%s%s := *;\n", indent, s.X)
}

func (s Assume) writeTo(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sassume(%s);\n", indent, s.F)
}

func (s Assert) writeTo(b *strings.Builder, indent string) {
	fmt.Fprintf(b, "%sassert(%s);\n", indent, s.F)
}

func (s If) writeTo(b *strings.Builder, indent string) {
	cond := "*"
	if s.Cond != nil {
		cond = s.Cond.String()
	}
	fmt.Fprintf(b, "%sif (%s) {\n", indent, cond)
	writeStmts(b, s.Then, indent+"  ")
	if len(s.Else) > 0 {
		fmt.Fprintf(b, "%s} else {\n", indent)
		writeStmts(b, s.Else, indent+"  ")
	}
	fmt.Fprintf(b, "%s}\n", indent)
}

func (s While) writeTo(b *strings.Builder, indent string) {
	cond := "*"
	if s.Cond != nil {
		cond = s.Cond.String()
	}
	fmt.Fprintf(b, "%swhile %s (%s) {\n", indent, s.Label, cond)
	writeStmts(b, s.Body, indent+"  ")
	fmt.Fprintf(b, "%s}\n", indent)
}
