package lang

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestParseTermPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x", "x"},
		{"42", "42"},
		{"-3", "-3"},
		{"x + 1", "(x + 1)"},
		{"x - 1 + y", "((x - 1) + y)"},
		{"2 * x + 1", "((2 * x) + 1)"},
		{"A[i + 1]", "A[(i + 1)]"},
		{"(x + y) - z", "((x + y) - z)"},
		{"-x", "(0 - x)"},
	}
	for _, tc := range cases {
		got, err := ParseTerm(tc.src)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		if got.String() != tc.want {
			t.Errorf("%q: got %q, want %q", tc.src, got.String(), tc.want)
		}
	}
}

func TestParseFormula(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x < y", "x < y"},
		{"x = y", "x = y"},
		{"x == y", "x = y"},
		{"x != y", "x != y"},
		{"0 <= k && k < n", "(0 <= k) && (k < n)"},
		{"0 <= k < n", "(0 <= k) && (k < n)"}, // comparison chain
		{"a < b || c < d", "(a < b) || (c < d)"},
		{"a < b => c < d", "(a < b) => (c < d)"},
		{"!(a < b)", "a >= b"},
		{"true", "true"},
		{"false", "false"},
		{"forall k. A[k] = 0", "forall k: (A[k] = 0)"},
		{"exists x. A[x] = e", "exists x: (A[x] = e)"},
		{"forall k1, k2. k1 < k2 => A[k1] <= A[k2]", "forall k1,k2: ((k1 < k2) => (A[k1] <= A[k2]))"},
		{"?v", "$v"},
		{"?v && x < y", "($v) && (x < y)"},
		{"(a < b && c < d) => e < f", "((a < b) && (c < d)) => (e < f)"},
		{"(x + 1) < y", "(x + 1) < y"}, // parenthesized term, not formula
	}
	for _, tc := range cases {
		got, err := ParseFormula(tc.src)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		if got.String() != tc.want {
			t.Errorf("%q: got %q, want %q", tc.src, got.String(), tc.want)
		}
	}
}

func TestParseFormulaPrecedence(t *testing.T) {
	// => binds loosest and associates right.
	f := MustParseFormula("a < b => b < c => c < d")
	want := "(a < b) => ((b < c) => (c < d))"
	if f.String() != want {
		t.Errorf("got %q, want %q", f.String(), want)
	}
	// && binds tighter than ||.
	g := MustParseFormula("a < b || c < d && e < f")
	want = "(a < b) || ((c < d) && (e < f))"
	if g.String() != want {
		t.Errorf("got %q, want %q", g.String(), want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"x <",
		"forall . x < y",
		"x ?? y",
		"(x < y",
		"x @ y",
	}
	for _, src := range bad {
		if _, err := ParseFormula(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
	badProgs := []string{
		"",
		"program P() { x := ; }",
		"program P() { if x { } }",
		"program P() { while (x) }",
		"program P(array) {}",
		"program P() { x := 1 }", // missing semicolon
	}
	for _, src := range badProgs {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseProgram(t *testing.T) {
	p := MustParse(`
		program Demo(array A, array B, n, m) {
			i := 0;
			x := *;
			assume(x >= 0);
			if (i < n) {
				A[i] := B[i] + 1;
			} else {
				i := i + 1;
			}
			while myloop (i < n) {
				if (*) {
					i := i + 2;
				}
				i := i + 1;
			}
			assert(i >= n);
		}`)
	if p.Name != "Demo" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.ArrParams) != 2 || len(p.IntParams) != 2 {
		t.Errorf("params: %v %v", p.ArrParams, p.IntParams)
	}
	cuts := p.CutPoints()
	if len(cuts) != 1 || cuts[0] != "myloop" {
		t.Errorf("cut points = %v", cuts)
	}
	if len(p.Body) != 6 {
		t.Errorf("body statements = %d", len(p.Body))
	}
	if _, ok := p.Body[1].(Havoc); !ok {
		t.Errorf("x := * should parse as Havoc, got %T", p.Body[1])
	}
}

func TestDefaultLoopLabels(t *testing.T) {
	p := MustParse(`
		program P(n) {
			while (n > 0) {
				n := n - 1;
				while (n > 1) {
					n := n - 2;
				}
			}
		}`)
	cuts := p.CutPoints()
	if len(cuts) != 2 || cuts[0] != "loop1" || cuts[1] != "loop2" {
		t.Errorf("default labels = %v", cuts)
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	src := `
		program RoundTrip(array A, n) {
			i := 0;
			while loop (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall j. (0 <= j && j < n) => A[j] = 0);
		}`
	p1 := MustParse(src)
	p2, err := Parse(p1.String())
	if err != nil {
		t.Fatalf("re-parse of pretty output failed: %v\n%s", err, p1.String())
	}
	if p1.String() != p2.String() {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", p1.String(), p2.String())
	}
}

func TestParseSpecFile(t *testing.T) {
	sf, err := ParseSpecFile(`
		program P(array A, n) {
			i := 0;
			while loop (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall j. (0 <= j && j < n) => A[j] = 0);
		}

		template loop: forall j. ?v => A[j] = 0;
		template entry: ?pre;
		predicates v: j < i, j >= 0, j < n;
		predicates pre: n >= 0, n >= 1;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sf.Templates) != 2 {
		t.Errorf("templates = %v", sf.Templates)
	}
	if len(sf.Predicates["v"]) != 3 || len(sf.Predicates["pre"]) != 2 {
		t.Errorf("predicates = %v", sf.Predicates)
	}
	if got := sf.Templates["loop"].String(); !strings.Contains(got, "$v") {
		t.Errorf("template should contain unknown: %s", got)
	}
	if _, err := ParseSpecFile(`program P() {} template x: ?a; template x: ?b;`); err == nil {
		t.Error("duplicate template should error")
	}
}

func TestComparisonChainEquality(t *testing.T) {
	f := MustParseFormula("0 <= k1 < k2 <= n")
	want := logic.Conj(
		logic.LeF(logic.I(0), logic.V("k1")),
		logic.LtF(logic.V("k1"), logic.V("k2")),
		logic.LeF(logic.V("k2"), logic.V("n")),
	)
	if !logic.FormulaEq(f, want) {
		t.Errorf("chain: got %v, want %v", f, want)
	}
}
