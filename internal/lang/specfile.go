package lang

import (
	"fmt"

	"repro/internal/logic"
)

// SpecFile is a parsed verification-task source: a program followed by
// template and predicate directives.
//
//	program ArrayInit(array A, n) { ... }
//
//	template loop: forall j. ?v => A[j] = 0;
//	template entry: ?pre;                  // optional, enables precondition inference
//	predicates v: 0 <= j, j < i, j < n;
type SpecFile struct {
	Program    *Program
	Templates  map[string]logic.Formula
	Predicates map[string][]logic.Formula
}

// ParseSpecFile parses a program plus its template/predicate directives.
func ParseSpecFile(src string) (*SpecFile, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram2()
	if err != nil {
		return nil, err
	}
	out := &SpecFile{
		Program:    prog,
		Templates:  map[string]logic.Formula{},
		Predicates: map[string][]logic.Formula{},
	}
	for {
		switch {
		case p.acceptKw("template"):
			cut, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			f, err := p.parseFormula()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			if _, dup := out.Templates[cut]; dup {
				return nil, fmt.Errorf("duplicate template for cut-point %q", cut)
			}
			out.Templates[cut] = f
		case p.acceptKw("predicates"):
			u, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			for {
				f, err := p.parseFormula()
				if err != nil {
					return nil, err
				}
				out.Predicates[u] = append(out.Predicates[u], f)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		default:
			if t := p.peek(); t.kind != tokEOF {
				return nil, p.errf("expected 'template' or 'predicates' directive, found %q", t.text)
			}
			return out, nil
		}
	}
}

// parseProgram2 parses a program without requiring EOF afterwards.
func (p *parser) parseProgram2() (*Program, error) {
	if !p.acceptKw("program") {
		return nil, p.errf("expected 'program'")
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	prog := &Program{Name: name}
	for !p.accept(")") {
		if len(prog.IntParams)+len(prog.ArrParams) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		if p.acceptKw("array") {
			a, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			prog.ArrParams = append(prog.ArrParams, a)
		} else {
			v, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			prog.IntParams = append(prog.IntParams, v)
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	prog.Body = body
	return prog, nil
}
