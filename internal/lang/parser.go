package lang

import (
	"fmt"
	"strconv"

	"repro/internal/logic"
)

// Parse parses a program in the concrete syntax:
//
//	program Name(array A, n) {
//	  i := 0;
//	  while loop (i < n) {            // label "loop" names the cut-point
//	    A[i] := 0;
//	    i := i + 1;
//	  }
//	  assert(forall y. 0 <= y && y < n => A[y] = 0);
//	}
//
// Conditions may be `*` for non-deterministic choice. Comparison chains
// (`0 <= y < n`) abbreviate conjunctions. Loop labels are optional and
// default to loop1, loop2, ... in syntactic order.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse for statically known sources (benchmarks, tests).
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks  []token
	pos   int
	loops int
}

type parseError struct {
	line int
	msg  string
}

func (e *parseError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

func (p *parser) errf(format string, args ...any) error {
	return &parseError{line: p.peek().line, msg: fmt.Sprintf(format, args...)}
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(sym string) bool {
	if t := p.peek(); t.kind == tokSym && t.text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKw(kw string) bool {
	if t := p.peek(); t.kind == tokIdent && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(sym string) error {
	if !p.accept(sym) {
		return p.errf("expected %q, found %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	return "", p.errf("expected identifier, found %q", p.peek().text)
}

func (p *parser) parseProgram() (*Program, error) {
	prog, err := p.parseProgram2()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf("trailing input %q", t.text)
	}
	return prog, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept("}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf("expected statement, found %q", t.text)
	}
	switch t.text {
	case "assume", "assert":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if t.text == "assume" {
			return Assume{F: f}, nil
		}
		return Assert{F: f}, nil
	case "if":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var cond logic.Formula
		if !p.accept("*") {
			f, err := p.parseFormula()
			if err != nil {
				return nil, err
			}
			cond = f
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.acceptKw("else") {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return If{Cond: cond, Then: then, Else: els}, nil
	case "while":
		p.next()
		label := ""
		if lt := p.peek(); lt.kind == tokIdent {
			label = lt.text
			p.pos++
		}
		if label == "" {
			p.loops++
			label = fmt.Sprintf("loop%d", p.loops)
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var cond logic.Formula
		if !p.accept("*") {
			f, err := p.parseFormula()
			if err != nil {
				return nil, err
			}
			cond = f
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return While{Label: label, Cond: cond, Body: body}, nil
	}
	// Assignment: x := e or A[i] := e.
	name := p.next().text
	if p.accept("[") {
		idx, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		if err := p.expect(":="); err != nil {
			return nil, err
		}
		e, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return ArrAssign{A: name, Idx: idx, E: e}, nil
	}
	if err := p.expect(":="); err != nil {
		return nil, err
	}
	if p.accept("*") {
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return Havoc{X: name}, nil
	}
	e, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return Assign{X: name, E: e}, nil
}

// ParseFormula parses a standalone formula (used for templates, predicates,
// and specifications given on the command line).
func ParseFormula(src string) (logic.Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf("trailing input %q", t.text)
	}
	return f, nil
}

// MustParseFormula is ParseFormula for statically known sources.
func MustParseFormula(src string) logic.Formula {
	f, err := ParseFormula(src)
	if err != nil {
		panic(err)
	}
	return f
}

// ParseTerm parses a standalone term.
func ParseTerm(src string) (logic.Term, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if tk := p.peek(); tk.kind != tokEOF {
		return nil, p.errf("trailing input %q", tk.text)
	}
	return t, nil
}

// Formula grammar (loosest to tightest): =>  ||  &&  !  atom.
func (p *parser) parseFormula() (logic.Formula, error) {
	a, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.accept("=>") {
		b, err := p.parseFormula() // right associative
		if err != nil {
			return nil, err
		}
		return logic.Imp(a, b), nil
	}
	return a, nil
}

func (p *parser) parseOr() (logic.Formula, error) {
	a, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("||") {
		b, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		a = logic.Disj(a, b)
	}
	return a, nil
}

func (p *parser) parseAnd() (logic.Formula, error) {
	a, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.accept("&&") {
		b, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		a = logic.Conj(a, b)
	}
	return a, nil
}

func (p *parser) parseUnary() (logic.Formula, error) {
	if p.accept("!") {
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return logic.Neg(f), nil
	}
	if p.acceptKw("true") {
		return logic.True, nil
	}
	if p.acceptKw("false") {
		return logic.False, nil
	}
	if p.acceptKw("forall") {
		return p.parseQuant(true)
	}
	if p.acceptKw("exists") {
		return p.parseQuant(false)
	}
	// ?name is a template unknown (a hole to be filled with a conjunction
	// of predicates).
	if p.accept("?") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return logic.Unknown{Name: name}, nil
	}
	// '(' is ambiguous: parenthesized formula or parenthesized term in a
	// comparison. Try the formula reading first and backtrack on failure or
	// if the closing paren is followed by a relational/arithmetic operator.
	if p.peek().kind == tokSym && p.peek().text == "(" {
		save := p.pos
		p.pos++
		f, err := p.parseFormula()
		if err == nil && p.accept(")") && !p.atComparisonOrArith() {
			return f, nil
		}
		p.pos = save
	}
	return p.parseComparison()
}

func (p *parser) parseQuant(univ bool) (logic.Formula, error) {
	var vars []string
	for {
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		vars = append(vars, v)
		if !p.accept(",") {
			break
		}
	}
	// Accept both "forall x. φ" (input style) and "forall x: φ" (the
	// formula printer's style) so pretty-printed output re-parses.
	if !p.accept(".") && !p.accept(":") {
		return nil, p.errf("expected '.' or ':' after quantified variables")
	}
	body, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if univ {
		return logic.All(vars, body), nil
	}
	return logic.Any(vars, body), nil
}

func (p *parser) atComparisonOrArith() bool {
	t := p.peek()
	if t.kind != tokSym {
		return false
	}
	switch t.text {
	case "=", "==", "!=", "<", "<=", ">", ">=", "+", "-", "*":
		return true
	}
	return false
}

var relOps = map[string]logic.RelOp{
	"=": logic.Eq, "==": logic.Eq, "!=": logic.Neq,
	"<": logic.Lt, "<=": logic.Le, ">": logic.Gt, ">=": logic.Ge,
}

// parseComparison parses `t1 op t2 [op t3 ...]`, a chain abbreviating the
// conjunction of adjacent comparisons.
func (p *parser) parseComparison() (logic.Formula, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	op, ok := relOps[t.text]
	if t.kind != tokSym || !ok {
		return nil, p.errf("expected comparison operator, found %q", t.text)
	}
	var conj []logic.Formula
	for {
		t = p.peek()
		op, ok = relOps[t.text]
		if t.kind != tokSym || !ok {
			break
		}
		p.pos++
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		conj = append(conj, logic.Rel(op, left, right))
		left = right
	}
	return logic.Conj(conj...), nil
}

// Term grammar: additive over primary; primary supports unary minus,
// constant multiplication, array indexing, and parenthesized terms.
func (p *parser) parseTerm() (logic.Term, error) {
	left, err := p.parsePrimaryTerm()
	if err != nil {
		return nil, err
	}
	for {
		if p.accept("+") {
			r, err := p.parsePrimaryTerm()
			if err != nil {
				return nil, err
			}
			left = logic.Plus(left, r)
		} else if p.accept("-") {
			r, err := p.parsePrimaryTerm()
			if err != nil {
				return nil, err
			}
			left = logic.Minus(left, r)
		} else {
			return left, nil
		}
	}
}

func (p *parser) parsePrimaryTerm() (logic.Term, error) {
	t := p.peek()
	switch {
	case t.kind == tokNum:
		p.pos++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		if p.accept("*") {
			x, err := p.parsePrimaryTerm()
			if err != nil {
				return nil, err
			}
			return logic.Times(v, x), nil
		}
		return logic.I(v), nil
	case t.kind == tokSym && t.text == "-":
		p.pos++
		x, err := p.parsePrimaryTerm()
		if err != nil {
			return nil, err
		}
		return logic.Minus(logic.I(0), x), nil
	case t.kind == tokSym && t.text == "(":
		p.pos++
		x, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tokIdent:
		p.pos++
		if p.accept("[") {
			idx, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return logic.Sel(logic.AV(t.text), idx), nil
		}
		return logic.V(t.text), nil
	}
	return nil, p.errf("expected term, found %q", t.text)
}
