// Non-unit-coefficient (general-LIA) benchmarks: the §2 worked examples with
// scaled guards and strides. Their invariants need atoms like j = 2·i whose
// verification conditions fall outside the difference fragment, so every
// theory check runs through the Fourier–Motzkin engine — the workload behind
// `make bench-lia` (BENCH_7.json), comparing the persistent LinChecker
// against from-scratch elimination.

package bench

import (
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/predabs"
	"repro/internal/spec"
	"repro/internal/template"
)

// ScaledInit is ArrayInit (Example 2) with a doubled loop counter: the guard
// compares a stride-2 counter j against 2·n, so relating the write index i to
// the bound n needs the invariant j = 2·i and the division step 2i ≥ 2n ⇒
// i ≥ n that only gcd tightening provides.
func ScaledInit() *spec.Problem {
	prog := lang.MustParse(`
		program ScaledInit(array A, n) {
			i := 0;
			j := 0;
			while loop (j < 2*n) {
				A[i] := 0;
				i := i + 1;
				j := j + 2;
			}
			assert(forall k. (0 <= k && k < n) => A[k] = 0);
		}`)
	tmpl := logic.Conj(
		unk("v0"),
		forallImp([]string{"k"}, unk("v1"), logic.EqF(sel("A", "k"), logic.I(0))),
	)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": tmpl},
		Q: template.Domain{
			"v0": predabs.ScaledQV(2, []int64{0}, []string{"j", "i", "n"}),
			"v1": predabs.QjV("k", []string{"0", "i", "n"}),
		},
	}
}

// DoubleStride proves the functional post-condition j = 2·n of a loop that
// advances j by two per iteration: the invariant j = 2·i (together with the
// bound i ≤ n) is expressible only with non-unit coefficients.
func DoubleStride() *spec.Problem {
	prog := lang.MustParse(`
		program DoubleStride(n) {
			assume(n >= 0);
			i := 0;
			j := 0;
			while loop (i < n) {
				i := i + 1;
				j := j + 2;
			}
			assert(j = 2*n);
		}`)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": unk("v0")},
		Q: template.Domain{
			"v0": append(
				predabs.ScaledQV(2, []int64{0}, []string{"j", "i", "n"}),
				predabs.AllPreds(predabs.Vars("i", "n"), []int64{0}, []logic.RelOp{logic.Le, logic.Ge})...,
			),
		},
	}
}

// HalfBound proves an upper bound through a halved comparison: the loop walks
// i up while 2·i stays below n, and the exit bound 2i ≥ n must flow through
// the scaled invariant 2i ≤ n + 2 to bound the final assertion.
func HalfBound() *spec.Problem {
	prog := lang.MustParse(`
		program HalfBound(n) {
			assume(n >= 0);
			i := 0;
			while loop (2*i < n) {
				i := i + 1;
			}
			assert(2*i <= n + 1);
		}`)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": unk("v0")},
		Q: template.Domain{
			// The inductive invariant is n ≥ 2i − 1: exactly a ScaledQV atom
			// with a constant offset.
			"v0": predabs.ScaledQV(2, []int64{-1, 0, 1}, []string{"i", "n"}),
		},
	}
}

// LIATasks returns the non-unit-coefficient benchmark family. Scaled Init
// and Double Stride run the iterative algorithms only: CFP's SAT encoding
// over their 12-atom scaled vocabularies blows up with or without
// incremental solving (minutes per cell in both arms), so it measures the
// encoding, not the theory engine under comparison.
func LIATasks() []Task {
	iter := []core.Method{core.LFP, core.GFP}
	return []Task{
		{Name: "Scaled Init", Property: "scaled-lia", Build: ScaledInit, Methods: iter},
		{Name: "Double Stride", Property: "scaled-lia", Build: DoubleStride, Methods: iter},
		{Name: "Half Bound", Property: "scaled-lia", Build: HalfBound},
	}
}
