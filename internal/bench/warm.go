package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/store"
)

// WarmArm is one lifetime of the warm-restart benchmark: a full suite run
// against one on-disk knowledge store. The cold arm opens the store on an
// empty directory (first lifetime: everything computed from scratch, written
// behind); the warm arm reopens the same directory (restart: verdicts,
// lemmas, and cores load from disk).
type WarmArm struct {
	WallSeconds float64 `json:"wall_seconds"`
	CellSeconds float64 `json:"cell_seconds"`
	// Summed per-cell counters. Queries + FMScratch + FMIncremental is the
	// gated "from-scratch work" metric (see WarmArm.Work).
	Queries          int64 `json:"queries"`
	CacheHits        int64 `json:"cache_hits"`
	AssumptionProbes int64 `json:"assumption_probes"`
	FMScratch        int64 `json:"fm_scratch"`
	FMIncremental    int64 `json:"fm_incremental"`
	StoreHits        int64 `json:"store_hits"`
	WarmLemmas       int64 `json:"warm_lemmas"`
	WarmCores        int64 `json:"warm_cores"`
	// Store health for the lifetime: whether it started cold and how many
	// records it loaded.
	ColdStart     bool         `json:"cold_start"`
	LoadedRecords int64        `json:"loaded_records"`
	Cells         []CellReport `json:"cells"`
}

// Work returns the arm's from-scratch solving work: SMT validity queries
// plus Fourier–Motzkin eliminations (from-scratch and incremental runs).
// This is the quantity the warm-restart acceptance gate compares.
func (a WarmArm) Work() int64 { return a.Queries + a.FMScratch + a.FMIncremental }

// WarmReport is the BENCH_8.json schema: a cold lifetime versus a warm
// restart on the same knowledge store.
type WarmReport struct {
	Report   string  `json:"report"`
	Purpose  string  `json:"purpose"`
	Host     string  `json:"host"`
	GoMaxP   int     `json:"gomaxprocs"`
	Suite    string  `json:"suite"`
	Parallel int     `json:"parallel"`
	Cold     WarmArm `json:"cold"`
	Warm     WarmArm `json:"warm"`
	Findings struct {
		ColdWork          int64   `json:"cold_work"`
		WarmWork          int64   `json:"warm_work"`
		WorkRatio         float64 `json:"cold_over_warm_work"`
		VerdictsIdentical bool    `json:"verdicts_identical"`
		WarmStoreHits     int64   `json:"warm_store_hits"`
		WarmLemmas        int64   `json:"warm_lemmas"`
		WarmCores         int64   `json:"warm_cores"`
	} `json:"findings"`
	Notes []string `json:"notes"`
}

// runWarmArm opens the knowledge store in dir, runs the tasks against it,
// and closes the store (flushing the write-behind queue, as a drained daemon
// would). Every cell is a fresh Verifier sharing the one store — the serving
// pool's shape.
func runWarmArm(dir string, timeout time.Duration, parallel int, tasks []Task) (WarmArm, error) {
	cfg := core.Config{}
	st, err := store.Open(dir, store.Options{Params: cfg.SMT.StoreParams()})
	if err != nil {
		return WarmArm{}, err
	}
	cfg.Knowledge = st
	r := &Runner{Timeout: timeout, Stats: stats.New(), Config: cfg, Parallel: parallel}
	start := time.Now()
	results := r.RunAll(tasks)
	arm := WarmArm{
		WallSeconds: time.Since(start).Seconds(),
		CellSeconds: r.CellTime().Seconds(),
	}
	for _, ms := range results {
		for _, m := range ms {
			cell := CellReport{
				Task: m.Task, Property: m.Property, Method: m.Method.String(),
				Proved: m.Proved, Seconds: m.Duration.Seconds(),
				Queries: m.Queries, CacheHits: m.CacheHits,
				Contexts: m.Contexts, AssumptionProbes: m.AssumptionProbes,
				FMScratch: m.FMScratch, FMIncremental: m.FMIncremental,
				FMCubeHits: m.FMCubeHits, FMCapHits: m.FMCapHits,
				StoreHits: m.StoreHits, WarmLemmas: m.WarmLemmas, WarmCores: m.WarmCores,
				Truncated: m.Truncated, Aborted: m.Aborted,
			}
			if m.Err != nil {
				cell.Err = m.Err.Error()
			}
			arm.Queries += m.Queries
			arm.CacheHits += m.CacheHits
			arm.AssumptionProbes += m.AssumptionProbes
			arm.FMScratch += m.FMScratch
			arm.FMIncremental += m.FMIncremental
			arm.StoreHits += m.StoreHits
			arm.WarmLemmas += m.WarmLemmas
			arm.WarmCores += m.WarmCores
			arm.Cells = append(arm.Cells, cell)
		}
	}
	ss := st.Stats()
	arm.ColdStart = ss.ColdStart
	arm.LoadedRecords = ss.LoadedLemmas + ss.LoadedCores + ss.LoadedVerdicts + ss.LoadedConsistency + ss.LoadedOutcomes
	if err := st.Close(); err != nil {
		return arm, err
	}
	return arm, nil
}

// RunWarmBench runs the warm-restart benchmark: the suite once against a
// fresh store in dir (cold lifetime), then once more reopening the same
// store (warm restart). dir must be empty or nonexistent.
func RunWarmBench(dir, suite string, timeout time.Duration, parallel int, tasks []Task) (*WarmReport, error) {
	cold, err := runWarmArm(dir, timeout, parallel, tasks)
	if err != nil {
		return nil, fmt.Errorf("cold arm: %w", err)
	}
	warm, err := runWarmArm(dir, timeout, parallel, tasks)
	if err != nil {
		return nil, fmt.Errorf("warm arm: %w", err)
	}
	rep := &WarmReport{
		Report:   "BENCH_8",
		Purpose:  "warm-start persistence: restarting on an on-disk knowledge store vs a cold first lifetime, same suite, same solver bounds",
		Host:     runtime.GOOS + "/" + runtime.GOARCH,
		GoMaxP:   runtime.GOMAXPROCS(0),
		Suite:    suite,
		Parallel: parallel,
		Cold:     cold,
		Warm:     warm,
	}
	rep.Findings.ColdWork = cold.Work()
	rep.Findings.WarmWork = warm.Work()
	if w := warm.Work(); w > 0 {
		rep.Findings.WorkRatio = float64(cold.Work()) / float64(w)
	}
	rep.Findings.VerdictsIdentical = warmVerdictsIdentical(rep)
	rep.Findings.WarmStoreHits = warm.StoreHits
	rep.Findings.WarmLemmas = warm.WarmLemmas
	rep.Findings.WarmCores = warm.WarmCores
	rep.Notes = []string{
		"cold = first lifetime on an empty store (computes everything, writes behind); warm = restart on the same directory (verdicts, lemmas, cores load from disk)",
		"work = smt queries + fourier-motzkin eliminations (fm_scratch + fm_incremental); cold_over_warm_work is the restart saving",
		"each cell is a fresh Verifier attached to the lifetime's shared store, the serving pool's shape; verdicts compared cell-by-cell across lifetimes",
	}
	return rep, nil
}

// warmVerdictsIdentical reports whether every (task, method) cell proved the
// same thing in both arms.
func warmVerdictsIdentical(rep *WarmReport) bool {
	if len(rep.Cold.Cells) != len(rep.Warm.Cells) {
		return false
	}
	for i := range rep.Cold.Cells {
		c, w := rep.Cold.Cells[i], rep.Warm.Cells[i]
		if c.Task != w.Task || c.Method != w.Method || c.Proved != w.Proved {
			return false
		}
	}
	return true
}

// WriteWarmTable renders a WarmReport as the Table 8 text table: one row per
// cell with cold/warm wall time and from-scratch work side by side.
func WriteWarmTable(w io.Writer, rep *WarmReport) {
	fmt.Fprintf(w, "Table 8: warm-start persistence (suite %s, parallel %d)\n", rep.Suite, rep.Parallel)
	fmt.Fprintf(w, "%-22s %-14s %-6s %9s %9s %10s %10s %10s %s\n",
		"task", "property", "method", "cold s", "warm s", "cold work", "warm work", "store hits", "verdict")
	for i := range rep.Cold.Cells {
		c := rep.Cold.Cells[i]
		if i >= len(rep.Warm.Cells) {
			break
		}
		wc := rep.Warm.Cells[i]
		verdict := "same"
		if c.Proved != wc.Proved {
			verdict = fmt.Sprintf("CHANGED %v->%v", c.Proved, wc.Proved)
		}
		fmt.Fprintf(w, "%-22s %-14s %-6s %9.3f %9.3f %10d %10d %10d %s\n",
			c.Task, c.Property, c.Method, c.Seconds, wc.Seconds,
			c.Queries+c.FMScratch+c.FMIncremental, wc.Queries+wc.FMScratch+wc.FMIncremental,
			wc.StoreHits, verdict)
	}
	fmt.Fprintf(w, "\ntotals: work %d -> %d", rep.Findings.ColdWork, rep.Findings.WarmWork)
	if rep.Findings.WorkRatio > 0 {
		fmt.Fprintf(w, " (%.1fx less)", rep.Findings.WorkRatio)
	} else if rep.Findings.WarmWork == 0 && rep.Findings.ColdWork > 0 {
		fmt.Fprintf(w, " (all answered from the store)")
	}
	fmt.Fprintf(w, "; warm lifetime: %d store hits, %d seeded lemmas, %d promoted cores, loaded %d records\n",
		rep.Warm.StoreHits, rep.Warm.WarmLemmas, rep.Warm.WarmCores, rep.Warm.LoadedRecords)
}
