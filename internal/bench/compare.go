package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ReadReport parses a Report previously written by RunJSON (a BENCH_N.json
// file).
func ReadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return &rep, nil
}

// WriteComparison prints a per-cell speedup table of new against old: one
// row per (task, property, method) cell present in both reports, with
// wall-clock ratio, query delta, and a verdict-change marker. Cells present
// in only one report are listed separately so a suite change is visible.
func WriteComparison(w io.Writer, old, new *Report) {
	// Per-cell wall times at different worker counts are not comparable:
	// the speedup column would conflate algorithmic wins with scheduling
	// contention. Annotate rather than refuse, so cross-parallelism diffs
	// stay possible but can never silently masquerade as like-for-like.
	if old.Parallel != new.Parallel {
		fmt.Fprintf(w, "WARNING: runs used different parallelism (old -parallel %d, new -parallel %d);\n", old.Parallel, new.Parallel)
		fmt.Fprintf(w, "WARNING: speedups below mix algorithmic and scheduling effects — rerun at matching -parallel for an honest comparison\n\n")
	}
	type key struct{ task, property, method string }
	oldCells := map[key]CellReport{}
	for _, c := range old.Cells {
		oldCells[key{c.Task, c.Property, c.Method}] = c
	}
	fmt.Fprintf(w, "%-22s %-14s %-6s %9s %9s %8s %10s %10s %s\n",
		"task", "property", "method", "old s", "new s", "speedup", "old q", "new q", "verdict")
	var oldTotal, newTotal float64
	var matched int
	for _, c := range new.Cells {
		k := key{c.Task, c.Property, c.Method}
		o, ok := oldCells[k]
		if !ok {
			continue
		}
		matched++
		delete(oldCells, k)
		oldTotal += o.Seconds
		newTotal += c.Seconds
		speedup := "n/a"
		if c.Seconds > 0 {
			speedup = fmt.Sprintf("%.2fx", o.Seconds/c.Seconds)
		}
		verdict := "same"
		if o.Proved != c.Proved {
			verdict = fmt.Sprintf("CHANGED %v->%v", o.Proved, c.Proved)
		}
		fmt.Fprintf(w, "%-22s %-14s %-6s %9.3f %9.3f %8s %10d %10d %s\n",
			c.Task, c.Property, c.Method, o.Seconds, c.Seconds, speedup, o.Queries, c.Queries, verdict)
	}
	for _, c := range new.Cells {
		k := key{c.Task, c.Property, c.Method}
		if _, stale := oldCells[k]; !stale && !inReport(old, k.task, k.property, k.method) {
			fmt.Fprintf(w, "%-22s %-14s %-6s %9s %9.3f %8s %10s %10d new cell\n",
				c.Task, c.Property, c.Method, "-", c.Seconds, "-", "-", c.Queries)
		}
	}
	for k := range oldCells {
		fmt.Fprintf(w, "%-22s %-14s %-6s  dropped from suite\n", k.task, k.property, k.method)
	}
	if matched > 0 && newTotal > 0 {
		fmt.Fprintf(w, "\ntotals over %d matched cells: %.2fs -> %.2fs (%.2fx); queries %d -> %d (%+.1f%%)\n",
			matched, oldTotal, newTotal, oldTotal/newTotal, old.Queries, new.Queries,
			100*float64(new.Queries-old.Queries)/float64(max64(old.Queries, 1)))
	}
	if new.AssumptionProbes > 0 || new.CorePruned > 0 {
		fmt.Fprintf(w, "incremental: %d assumption probes, %d lattice points core-pruned (%d cores evicted)\n",
			new.AssumptionProbes, new.CorePruned, new.CoreEvicted)
	}
}

func inReport(r *Report, task, property, method string) bool {
	for _, c := range r.Cells {
		if c.Task == task && c.Property == property && c.Method == method {
			return true
		}
	}
	return false
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
