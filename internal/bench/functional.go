// Table 3/5 benchmarks: maximally-weak preconditions for functional
// correctness (Fig. 10 of the paper). Each program carries its functional
// specification as an assertion; the entry template is instantiated by GFP
// precondition inference.

package bench

import (
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/template"
)

// PartialInit initializes A[0..n) but is specified to initialize A[0..m).
// The paper reports two maximally-weak preconditions: m ≤ n, or the cells
// [n, m) already initialized.
func PartialInit() *spec.Problem {
	prog := lang.MustParse(`
		program PartialInit(array A, n, m) {
			i := 0;
			while loop (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall k. (0 <= k && k < m) => A[k] = 0);
		}`)
	zero := func(g string) logic.Formula {
		return forallImp([]string{"k"}, unk(g), logic.EqF(sel("A", "k"), logic.I(0)))
	}
	entry := logic.Conj(unk("p0"), zero("p1"))
	loop := logic.Conj(unk("v0"), zero("v1"), zero("v2"))
	return &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"entry": entry, "loop": loop,
		},
		Q: template.Domain{
			"p0": preds("m <= n", "n <= m", "0 <= m", "0 <= n"),
			"p1": preds("n <= k", "k < m", "0 <= k", "m <= k", "k < n"),
			"v0": preds("m <= n", "i <= n", "0 <= i", "0 <= m"),
			"v1": preds("0 <= k", "k < i", "k < n", "k < m"),
			"v2": preds("n <= k", "k < m", "0 <= k", "i <= k"),
		},
	}
}

// InitSynthesis finds the index of the maximum array element, but its
// initializers are missing; the inferred preconditions are the two
// alternative initializations the paper reports: i=1 ∧ max=0, or i=0.
func InitSynthesis() *spec.Problem {
	prog := lang.MustParse(`
		program InitSynthesis(array A, n, i, max) {
			while loop (i < n) {
				if (A[max] < A[i]) {
					max := i;
				}
				i := i + 1;
			}
			assert(forall k. (0 <= k && k < n) => A[max] >= A[k]);
		}`)
	maxGe := func(g string) logic.Formula {
		return forallImp([]string{"k"}, unk(g), logic.GeF(sel("A", "max"), sel("A", "k")))
	}
	entry := unk("p0")
	loop := logic.Conj(unk("v0"), maxGe("v1"))
	return &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"entry": entry, "loop": loop,
		},
		Q: template.Domain{
			"p0": preds("i = 0", "i = 1", "max = 0", "max = i", "max = 1"),
			"v0": preds("0 <= i", "0 <= max", "max <= i"),
			"v1": preds("0 <= k", "k < i", "k <= i"),
		},
	}
}

// BinarySearch infers that the array must be sorted for the standard "not
// found implies absent" specification.
func BinarySearch() *spec.Problem {
	prog := lang.MustParse(`
		program BinarySearch(array A, n, e) {
			low := 0;
			high := n - 1;
			while loop (low <= high) {
				mid := *;
				assume(low <= mid && mid <= high);
				if (A[mid] < e) {
					low := mid + 1;
				} else {
					if (A[mid] > e) {
						high := mid - 1;
					} else {
						assume(false);
					}
				}
			}
			assert(forall k. (0 <= k && k < n) => A[k] != e);
		}`)
	entry := forallImp([]string{"k1", "k2"}, unk("p"), leSel("A", "k1", "k2"))
	loop := logic.Conj(
		unk("v0"),
		forallImp([]string{"k1", "k2"}, unk("v1"), leSel("A", "k1", "k2")),
		forallImp([]string{"k"}, unk("v2"), logic.LtF(sel("A", "k"), v("e"))),
		forallImp([]string{"k"}, unk("v3"), logic.GtF(sel("A", "k"), v("e"))),
	)
	return &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"entry": entry, "loop": loop,
		},
		Q: template.Domain{
			"p":  preds("0 <= k1", "k1 < k2", "k2 < n"),
			"v0": preds("0 <= low", "high < n", "high <= n - 1", "low <= high + 1"),
			"v1": preds("0 <= k1", "k1 < k2", "k2 < n"),
			"v2": preds("0 <= k", "k < low", "k <= low"),
			"v3": preds("high < k", "k < n", "high <= k"),
		},
	}
}

// MergeFunctional is the merge routine with its sortedness postcondition;
// the inferred preconditions are that both inputs are sorted.
func MergeFunctional() *spec.Problem {
	p := MergeSortInnerSorted()
	// Strip the assumed input sortedness: the first two statements are the
	// assume(...) facts. The entry template re-infers them.
	body := p.Prog.Body[2:]
	prog := &lang.Program{
		Name:      "MergeFunctional",
		IntParams: p.Prog.IntParams,
		ArrParams: p.Prog.ArrParams,
		Body:      body,
	}
	entry := logic.Conj(
		forallImp([]string{"k1", "k2"}, unk("pa"), leSel("A", "k1", "k2")),
		forallImp([]string{"k1", "k2"}, unk("pb"), leSel("B", "k1", "k2")),
	)
	templates := map[string]logic.Formula{"entry": entry}
	for cut, t := range p.Templates {
		templates[cut] = t
	}
	q := template.Domain{
		"pa": preds("0 <= k1", "k1 < k2", "k2 < n"),
		"pb": preds("0 <= k1", "k1 < k2", "k2 < m"),
	}
	for u, ps := range p.Q {
		q[u] = ps
	}
	return &spec.Problem{Prog: prog, Templates: templates, Q: q}
}

// FunctionalTasks returns the Table 3/5 precondition-inference tasks.
func FunctionalTasks() []Task {
	return []Task{
		{Name: "Partial Init", Property: "functional", Kind: Precondition, Build: PartialInit},
		{Name: "Init Synthesis", Property: "functional", Kind: Precondition, Build: InitSynthesis},
		{Name: "Binary Search", Property: "functional", Kind: Precondition, Build: BinarySearch},
		{Name: "Merge", Property: "functional", Kind: Precondition, Build: MergeFunctional},
	}
}
