package bench

import (
	"encoding/json"
	"io"
	"time"
)

// DefaultSuite returns the fast representative benchmark subset (the same
// tasks the always-on search tests run): one sortedness, one preservation,
// two functional-correctness preconditions, one worst-case bound, and the
// two fast list tasks. It is the suite behind `make bench-json` and
// `benchtab -json`, sized to finish in minutes rather than the tens of
// minutes the full Table 6 sweep takes.
func DefaultSuite() []Task {
	return []Task{
		SortednessTasks()[4],   // quick sort (inner)
		PreservationTasks()[4], // insertion sort
		FunctionalTasks()[0],   // partial init precondition
		FunctionalTasks()[1],   // init synthesis precondition
		WorstCaseTasks()[2],    // quick sort (inner) bound
		ArrayListTasks()[3],    // list delete
		ArrayListTasks()[4],    // list insert
		LIATasks()[0],          // scaled init (general-LIA invariant)
		LIATasks()[1],          // double stride (general-LIA invariant)
	}
}

// QuickSuite returns the one-task sanity suite behind `make bench-quick`:
// List Delete runs all three methods, giving one fast cell per algorithm.
func QuickSuite() []Task {
	return []Task{ArrayListTasks()[3]}
}

// CellReport is one (task, method) entry of a JSON benchmark report.
type CellReport struct {
	Task      string  `json:"task"`
	Property  string  `json:"property"`
	Method    string  `json:"method"`
	Proved    bool    `json:"proved"`
	Seconds   float64 `json:"seconds"`
	Queries   int64   `json:"queries"`
	CacheHits int64   `json:"cache_hits"`
	// Incremental-solving counters (see Measurement); omitted when zero so
	// old reports and non-incremental runs stay compact.
	Contexts         int64 `json:"contexts,omitempty"`
	AssumptionProbes int64 `json:"assumption_probes,omitempty"`
	LemmaReuse       int64 `json:"lemma_reuse,omitempty"`
	CorePruned       int64 `json:"core_pruned,omitempty"`
	CoreEvicted      int64 `json:"core_evicted,omitempty"`
	SharedLemmas     int64 `json:"shared_lemmas,omitempty"`
	// Fourier–Motzkin counters (see Measurement).
	FMScratch       int64 `json:"fm_scratch,omitempty"`
	FMIncremental   int64 `json:"fm_incremental,omitempty"`
	FMCubeHits      int64 `json:"fm_cube_hits,omitempty"`
	FMCapHits       int64 `json:"fm_cap_hits,omitempty"`
	DormantContexts int64 `json:"dormant_contexts,omitempty"`
	// Knowledge-store counters (see Measurement); nonzero only for runs with
	// an attached on-disk store.
	StoreHits  int64 `json:"store_hits,omitempty"`
	WarmLemmas int64 `json:"warm_lemmas,omitempty"`
	WarmCores  int64 `json:"warm_cores,omitempty"`
	// Truncated and Aborted surface incomplete searches (see Measurement).
	Truncated bool   `json:"truncated,omitempty"`
	Aborted   bool   `json:"aborted,omitempty"`
	Err       string `json:"error,omitempty"`
}

// Report is the machine-readable result of a benchmark run (BENCH_N.json).
type Report struct {
	// Suite labels the task set ("default").
	Suite string `json:"suite"`
	// Parallel is the runner's worker count.
	Parallel int `json:"parallel"`
	// WallSeconds is the elapsed wall-clock of the whole run.
	WallSeconds float64 `json:"wall_seconds"`
	// CellSeconds is the summed per-cell wall-clock (wall × speedup).
	CellSeconds float64 `json:"cell_seconds"`
	// Queries and CacheHits are summed over all cells, as are the
	// incremental-solving counters.
	Queries          int64        `json:"queries"`
	CacheHits        int64        `json:"cache_hits"`
	AssumptionProbes int64        `json:"assumption_probes,omitempty"`
	CorePruned       int64        `json:"core_pruned,omitempty"`
	CoreEvicted      int64        `json:"core_evicted,omitempty"`
	FMScratch        int64        `json:"fm_scratch,omitempty"`
	FMIncremental    int64        `json:"fm_incremental,omitempty"`
	Cells            []CellReport `json:"cells"`
}

// RunJSON executes the tasks with the runner and writes a Report to w.
// Cells appear in task/method order regardless of the runner's parallelism.
func RunJSON(w io.Writer, r *Runner, suite string, tasks []Task) error {
	start := time.Now()
	results := r.RunAll(tasks)
	rep := Report{
		Suite:       suite,
		Parallel:    r.parallel(),
		WallSeconds: time.Since(start).Seconds(),
		CellSeconds: r.CellTime().Seconds(),
	}
	for _, ms := range results {
		for _, m := range ms {
			cell := CellReport{
				Task:             m.Task,
				Property:         m.Property,
				Method:           m.Method.String(),
				Proved:           m.Proved,
				Seconds:          m.Duration.Seconds(),
				Queries:          m.Queries,
				CacheHits:        m.CacheHits,
				Contexts:         m.Contexts,
				AssumptionProbes: m.AssumptionProbes,
				LemmaReuse:       m.LemmaReuse,
				CorePruned:       m.CorePruned,
				CoreEvicted:      m.CoreEvicted,
				SharedLemmas:     m.SharedLemmas,
				FMScratch:        m.FMScratch,
				FMIncremental:    m.FMIncremental,
				FMCubeHits:       m.FMCubeHits,
				FMCapHits:        m.FMCapHits,
				DormantContexts:  m.DormantContexts,
				StoreHits:        m.StoreHits,
				WarmLemmas:       m.WarmLemmas,
				WarmCores:        m.WarmCores,
				Truncated:        m.Truncated,
				Aborted:          m.Aborted,
			}
			if m.Err != nil {
				cell.Err = m.Err.Error()
			}
			rep.Queries += m.Queries
			rep.CacheHits += m.CacheHits
			rep.AssumptionProbes += m.AssumptionProbes
			rep.CorePruned += m.CorePruned
			rep.CoreEvicted += m.CoreEvicted
			rep.FMScratch += m.FMScratch
			rep.FMIncremental += m.FMIncremental
			rep.Cells = append(rep.Cells, cell)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
