// Package bench defines the paper's benchmark suite (§7): the programs,
// their invariant templates and predicate vocabularies, and a harness that
// regenerates every table and figure of the evaluation. Each Task is one
// (program, property) pair; tables group tasks.
package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/par"
	"repro/internal/spec"
	"repro/internal/stats"
)

// Kind distinguishes verification from precondition-inference tasks.
type Kind int

// Task kinds.
const (
	// Verify discovers loop invariants proving the program's assertions.
	Verify Kind = iota
	// Precondition infers maximally-weak entry conditions (§6).
	Precondition
)

// Task is one benchmark instance.
type Task struct {
	// Name identifies the benchmark ("Selection Sort", ...).
	Name string
	// Property labels the property class ("sortedness", "preservation",
	// "upper-bound", "array/list", "functional").
	Property string
	// Kind selects verification or precondition inference.
	Kind Kind
	// Build constructs a fresh problem instance (problems are stateful:
	// they cache paths).
	Build func() *spec.Problem
	// Methods lists the algorithms to run (default: all three for Verify,
	// GFP for Precondition, matching the paper's tables).
	Methods []core.Method
	// ExpectPre, for Precondition tasks, holds substrings of preconditions
	// that should be among the inferred maximally-weak set (checked
	// semantically by the tests, informally here for reporting).
	ExpectPre []logic.Formula
}

// methods returns the algorithms to run for this task.
func (t Task) methods() []core.Method {
	if len(t.Methods) > 0 {
		return t.Methods
	}
	if t.Kind == Precondition {
		return []core.Method{core.GFP}
	}
	return core.Methods
}

// Measurement is one (task, method) timing.
type Measurement struct {
	Task     string
	Property string
	Method   core.Method
	Proved   bool
	Duration time.Duration
	// Queries and CacheHits snapshot the run's SMT validity counters (each
	// cell uses a fresh solver, so these are per-cell, not cumulative).
	Queries   int64
	CacheHits int64
	// Incremental-solving counters: contexts created, probes answered
	// through a persistent context's assumption interface (these do not
	// count in Queries), probes that reused persisted lemmas or learnt
	// clauses, lattice candidates pruned by unsat cores, stored cores
	// evicted to admit newer ones, and theory lemmas imported from a
	// sibling context lane's exchange.
	Contexts         int64
	AssumptionProbes int64
	LemmaReuse       int64
	CorePruned       int64
	CoreEvicted      int64
	SharedLemmas     int64
	// Fourier–Motzkin counters: from-scratch eliminations (non-difference
	// theory checks outside any persistent context), incremental runs and
	// cube-store hits inside persistent LinCheckers, derived-cap hits
	// (conservative answers), and contexts that went dormant (Ackermann
	// budget exhaustion — general-LIA atoms no longer cause dormancy).
	FMScratch       int64
	FMIncremental   int64
	FMCubeHits      int64
	FMCapHits       int64
	DormantContexts int64
	// Knowledge-store counters (zero unless Config.Knowledge is attached):
	// validity + consistency verdicts answered from the store, theory lemmas
	// warm-seeded into context groups, and persisted cores promoted into
	// live searches.
	StoreHits  int64
	WarmLemmas int64
	WarmCores  int64
	// Preconditions holds the inferred formulas for Precondition tasks.
	Preconditions []logic.Formula
	// Truncated reports that the cell's search space was clipped (candidate
	// cap, step bound, or SAT model bound hit): a !Proved cell with
	// Truncated set is "gave up", not a definite negative.
	Truncated bool
	// Aborted reports that the run was cancelled by the cell timeout's Stop
	// flag before completing.
	Aborted bool
	// Err records a failure to run (distinct from "no invariant found").
	Err error
}

// Runner executes tasks with a shared configuration.
type Runner struct {
	// Timeout bounds each (task, method) run; 0 means none.
	Timeout time.Duration
	// Stats receives Figure 4–9 measurements across all runs.
	Stats *stats.Collector
	// Config is the base verifier configuration (Stats is attached
	// automatically).
	Config core.Config
	// Parallel is the number of (task, method) cells executed concurrently
	// (0 or 1 = sequential, matching the pre-parallel runner). Each cell is
	// a fresh Verifier with a cold SMT cache either way, and results are
	// returned in task/method order regardless of scheduling.
	Parallel int

	// cellNanos accumulates the summed wall-clock of every cell run, for
	// reporting parallel speedup (sum of cell times / elapsed wall-clock).
	cellNanos atomic.Int64
}

func (r *Runner) parallel() int {
	if r.Parallel < 1 {
		return 1
	}
	return r.Parallel
}

// CellTime returns the summed wall-clock of every (task, method) cell run
// so far. Dividing it by the elapsed wall-clock of a parallel session gives
// the achieved speedup over a sequential run of the same cells.
func (r *Runner) CellTime() time.Duration {
	return time.Duration(r.cellNanos.Load())
}

// Run executes one task with each of its methods, returning one measurement
// per method. A fresh Verifier (hence a cold SMT cache) is used per run so
// timings are comparable; with Parallel > 1 the methods run concurrently.
func (r *Runner) Run(t Task) []Measurement {
	ms := t.methods()
	out := make([]Measurement, len(ms))
	par.ForEach(len(ms), r.parallel(), func(i int) {
		out[i] = r.runOne(t, ms[i])
	})
	return out
}

// RunAll executes every (task, method) cell of a task list, fanning the
// cells — not just the methods of one task — across the runner's worker
// budget. Results are indexed by task in input order, each holding one
// measurement per method in reporting order.
func (r *Runner) RunAll(tasks []Task) [][]Measurement {
	type cell struct{ task, method int }
	var cells []cell
	out := make([][]Measurement, len(tasks))
	for ti, t := range tasks {
		out[ti] = make([]Measurement, len(t.methods()))
		for mi := range t.methods() {
			cells = append(cells, cell{task: ti, method: mi})
		}
	}
	par.ForEach(len(cells), r.parallel(), func(i int) {
		c := cells[i]
		out[c.task][c.method] = r.runOne(tasks[c.task], tasks[c.task].methods()[c.method])
	})
	return out
}

func (r *Runner) runOne(t Task, m core.Method) Measurement {
	cfg := r.Config
	cfg.Stats = r.Stats
	// A cooperative stop flag lets a timed-out run release the CPU instead
	// of skewing subsequent measurements.
	var stopped atomic.Bool
	stop := func() bool { return stopped.Load() }
	cfg.Fixpoint.Stop = stop
	cfg.CBI.Stop = stop
	v := core.New(cfg)

	type result struct {
		meas Measurement
	}
	done := make(chan result, 1)
	go func() {
		// Build the measurement locally: sharing a variable with the timeout
		// branch below would race when the timeout fires before this
		// goroutine is scheduled.
		mm := Measurement{Task: t.Name, Property: t.Property, Method: m}
		start := time.Now()
		p := t.Build()
		switch t.Kind {
		case Verify:
			o, err := v.Verify(p, m)
			mm.Err = err
			mm.Proved = o.Proved
			mm.Truncated, mm.Aborted = o.Truncated, o.Aborted
		case Precondition:
			pres, enum, err := v.InferPreconditions(p)
			mm.Err = err
			mm.Proved = len(pres) > 0
			mm.Truncated, mm.Aborted = enum.Truncated, enum.Aborted
			for _, pre := range pres {
				mm.Preconditions = append(mm.Preconditions, pre.Pre)
			}
		}
		mm.Duration = time.Since(start)
		mm.Queries = v.Engine().S.NumQueries()
		mm.CacheHits = v.Engine().S.NumCacheHits()
		mm.Contexts = v.Engine().S.NumContexts()
		mm.AssumptionProbes = v.Engine().S.NumAssumptionProbes()
		mm.LemmaReuse = v.Engine().S.NumLemmaReuseHits()
		mm.CorePruned = v.Engine().NumCorePruned()
		mm.CoreEvicted = v.Engine().NumCoreEvicted()
		mm.SharedLemmas = v.Engine().S.NumSharedLemmas()
		mm.FMScratch = v.Engine().S.NumFMScratch()
		mm.FMIncremental = v.Engine().S.NumFMIncremental()
		mm.FMCubeHits = v.Engine().S.NumFMCubeHits()
		mm.FMCapHits = v.Engine().S.NumFMCapHits()
		mm.DormantContexts = v.Engine().S.NumDormantContexts()
		mm.StoreHits = v.Engine().S.NumStoreVerdictHits() + v.Engine().NumConsStoreHits()
		mm.WarmLemmas = v.Engine().S.NumWarmLemmas()
		mm.WarmCores = v.Engine().NumWarmCores()
		done <- result{meas: mm}
	}()
	if r.Timeout <= 0 {
		res := (<-done).meas
		r.cellNanos.Add(int64(res.Duration))
		return res
	}
	select {
	case res := <-done:
		r.cellNanos.Add(int64(res.meas.Duration))
		return res.meas
	case <-time.After(r.Timeout):
		stopped.Store(true)
		meas := Measurement{
			Task: t.Name, Property: t.Property, Method: m,
			Err:      fmt.Errorf("timeout after %v", r.Timeout),
			Duration: r.Timeout,
		}
		r.cellNanos.Add(int64(meas.Duration))
		return meas
	}
}

// helpers shared by the benchmark definitions.

func unk(name string) logic.Formula { return logic.Unknown{Name: name} }

func v(name string) logic.Term { return logic.V(name) }

func sel(arr, idx string) logic.Term { return logic.Sel(logic.AV(arr), logic.V(idx)) }

// forallImp builds ∀vars: guard ⇒ body.
func forallImp(vars []string, guard, body logic.Formula) logic.Formula {
	return logic.All(vars, logic.Imp(guard, body))
}
