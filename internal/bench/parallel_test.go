package bench

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// fastSuite is a small all-methods task list used to exercise the parallel
// runner quickly: the running example plus the two fastest list programs.
func fastSuite() []Task {
	return []Task{
		{Name: "Array Init", Build: ArrayInit},
		ArrayListTasks()[3], // List Delete
		ArrayListTasks()[4], // List Insert
	}
}

// TestRunAllMatchesRun checks that the parallel cell pool returns exactly
// the measurements of per-task Run calls: same shape, same task/method
// order, same proved outcomes.
func TestRunAllMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration test skipped in -short mode")
	}
	tasks := fastSuite()
	seq := &Runner{Timeout: 90 * time.Second}
	var want [][]Measurement
	for _, task := range tasks {
		want = append(want, seq.Run(task))
	}
	par := &Runner{Timeout: 90 * time.Second, Parallel: 4}
	got := par.RunAll(tasks)
	if len(got) != len(want) {
		t.Fatalf("RunAll returned %d rows, want %d", len(got), len(want))
	}
	for ti := range want {
		if len(got[ti]) != len(want[ti]) {
			t.Fatalf("task %d: %d cells, want %d", ti, len(got[ti]), len(want[ti]))
		}
		for mi := range want[ti] {
			g, w := got[ti][mi], want[ti][mi]
			if g.Task != w.Task || g.Method != w.Method {
				t.Errorf("cell (%d,%d) is %s/%s, want %s/%s", ti, mi, g.Task, g.Method, w.Task, w.Method)
			}
			if g.Proved != w.Proved {
				t.Errorf("%s/%s: parallel proved=%v, sequential proved=%v", g.Task, g.Method, g.Proved, w.Proved)
			}
		}
	}
	if par.CellTime() <= 0 {
		t.Error("parallel runner recorded no cell time")
	}
}

// TestParallelRunnerDeterministic re-runs the same parallel suite and
// requires identical proved/not-proved outcomes each time.
func TestParallelRunnerDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration test skipped in -short mode")
	}
	tasks := fastSuite()
	outcome := func() []bool {
		r := &Runner{Timeout: 90 * time.Second, Parallel: 4}
		var out []bool
		for _, row := range r.RunAll(tasks) {
			for _, m := range row {
				out = append(out, m.Proved)
			}
		}
		return out
	}
	first := outcome()
	for round := 1; round < 3; round++ {
		got := outcome()
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("round %d cell %d: proved=%v, round 0 proved=%v", round, i, got[i], first[i])
			}
		}
	}
}

// TestParallelRunnerSpeedup measures the wall-clock speedup of the parallel
// cell pool against the sequential runner on the same suite and requires
// ≥2x on ≥4-core machines with identical proved outcomes. On smaller boxes
// there is no parallelism to measure, so the test skips.
func TestParallelRunnerSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		t.Skipf("speedup measurement needs >=4 cores, have GOMAXPROCS=%d", workers)
	}
	tasks := fastSuite()

	run := func(parallel int) (time.Duration, []bool) {
		r := &Runner{Timeout: 90 * time.Second, Stats: stats.New(), Parallel: parallel}
		start := time.Now()
		var proved []bool
		for _, row := range r.RunAll(tasks) {
			for _, m := range row {
				proved = append(proved, m.Proved)
			}
		}
		return time.Since(start), proved
	}
	seqWall, seqProved := run(1)
	parWall, parProved := run(workers)
	for i := range seqProved {
		if seqProved[i] != parProved[i] {
			t.Fatalf("cell %d: parallel proved=%v, sequential proved=%v", i, parProved[i], seqProved[i])
		}
	}
	ratio := float64(seqWall) / float64(parWall)
	t.Logf("sequential %v, parallel(%d) %v, speedup %.2fx", seqWall, workers, parWall, ratio)
	if ratio < 2 {
		t.Errorf("expected >=2x speedup on %d cores, got %.2fx", workers, ratio)
	}
}

// TestRunnerConfigIsolation checks that concurrent cells do not share
// mutable verifier state: each runOne builds its own Verifier and stop
// flag, so a timeout in one cell must not stop its neighbors.
func TestRunnerConfigIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("runner integration test skipped in -short mode")
	}
	r := &Runner{Timeout: 60 * time.Second, Parallel: 3}
	tasks := []Task{
		{Name: "doomed", Build: MergeSortInnerSorted, Methods: []core.Method{core.CFP}},
		{Name: "fine", Build: ArrayInit, Methods: []core.Method{core.GFP}},
	}
	// Shrink the doomed cell's budget via a dedicated runner so it times
	// out while the healthy cell runs concurrently on the shared pool.
	doomed := &Runner{Timeout: 1 * time.Millisecond, Parallel: 1}
	dm := doomed.Run(tasks[0])
	res := r.RunAll(tasks[1:])
	if dm[0].Err == nil {
		t.Skip("doomed cell finished within 1ms (!?)")
	}
	if res[0][0].Err != nil || !res[0][0].Proved {
		t.Errorf("healthy cell: err=%v proved=%v", res[0][0].Err, res[0][0].Proved)
	}
}
