package bench

import "testing"

// TestBinarySearchKnownSolution backs the EXPERIMENTS.md claim: the
// hand-derived invariant for binary search (sorted array + the two
// exclusion zones) validates all paths.
func TestBinarySearchKnownSolution(t *testing.T) {
	checkKnown(t, BinarySearch(), knownSolution(map[string][]string{
		"p":  {"0 <= k1", "k1 < k2", "k2 < n"},
		"v0": {"0 <= low", "high < n"},
		"v1": {"0 <= k1", "k1 < k2", "k2 < n"},
		"v2": {"0 <= k", "k < low"},
		"v3": {"high < k", "k < n"},
	}))
}

// TestPartialInitKnownSolution: the m<=n precondition with a vacuous array
// fact plus the standard loop invariant.
func TestPartialInitKnownSolution(t *testing.T) {
	checkKnown(t, PartialInit(), knownSolution(map[string][]string{
		"p0": {"m <= n"},
		"p1": {"n <= k", "k < m"}, // empty under m <= n
		"v0": {"m <= n"},
		"v1": {"0 <= k", "k < i"},
		"v2": {"n <= k", "k < m"},
	}))
}
