// Table 6 benchmarks, sortedness column: the sorting suite. Each problem
// carries the invariant templates and per-unknown predicate vocabularies
// used to verify that the routine outputs a sorted array.

package bench

import (
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/template"
)

// preds parses a list of predicate formulas.
func preds(srcs ...string) []logic.Formula {
	out := make([]logic.Formula, len(srcs))
	for i, s := range srcs {
		out[i] = lang.MustParseFormula(s)
	}
	return out
}

// leSel builds A[x] <= A[y].
func leSel(arr, x, y string) logic.Formula {
	return logic.LeF(sel(arr, x), sel(arr, y))
}

// sortedPair builds ∀k1,k2: guard ⇒ arr[k1] <= arr[k2].
func sortedPair(arr, guard string) logic.Formula {
	return forallImp([]string{"k1", "k2"}, unk(guard), leSel(arr, "k1", "k2"))
}

// SelectionSortSorted verifies sortedness of selection sort.
//
// Outer invariant: pairs with k1 below i are ordered (the sorted prefix also
// bounds the suffix). Inner adds min-tracking over the scanned range.
func SelectionSortSorted() *spec.Problem {
	prog := lang.MustParse(`
		program SelectionSort(array A, n) {
			i := 0;
			while outer (i < n - 1) {
				min := i;
				j := i + 1;
				while inner (j < n) {
					if (A[j] < A[min]) {
						min := j;
					}
					j := j + 1;
				}
				t := A[i];
				A[i] := A[min];
				A[min] := t;
				i := i + 1;
			}
			assert(forall k1, k2. (0 <= k1 && k1 < k2 && k2 < n) => A[k1] <= A[k2]);
		}`)
	outer := logic.Conj(unk("u0"), sortedPair("A", "u1"))
	inner := logic.Conj(
		unk("v0"),
		sortedPair("A", "v1"),
		forallImp([]string{"k"}, unk("v2"),
			logic.LeF(sel("A", "min"), sel("A", "k"))),
	)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"outer": outer, "inner": inner},
		Q: template.Domain{
			"u0": preds("0 <= i", "i <= n"),
			"u1": preds("0 <= k1", "k1 < k2", "k2 < n", "k1 < i", "k2 < i", "k2 <= i"),
			"v0": preds("i <= min", "min < j", "i < j", "i < n - 1", "0 <= i", "j <= n"),
			"v1": preds("0 <= k1", "k1 < k2", "k2 < n", "k1 < i", "k2 < i", "k2 <= i"),
			"v2": preds("i <= k", "k < j", "k <= j", "0 <= k", "k < n"),
		},
	}
}

// InsertionSortSorted verifies sortedness of insertion sort.
//
// During the shifting loop, A[0..i] stays sorted when the hole position j+1
// is excluded as the larger index, and the shifted tail (j+1, i] stays
// strictly above val.
func InsertionSortSorted() *spec.Problem {
	prog := lang.MustParse(`
		program InsertionSort(array A, n) {
			i := 1;
			while outer (i < n) {
				j := i - 1;
				val := A[i];
				while inner (j >= 0 && A[j] > val) {
					A[j + 1] := A[j];
					j := j - 1;
				}
				A[j + 1] := val;
				i := i + 1;
			}
			assert(forall k1, k2. (0 <= k1 && k1 < k2 && k2 < n) => A[k1] <= A[k2]);
		}`)
	outer := logic.Conj(unk("u0"), sortedPair("A", "u1"))
	inner := logic.Conj(
		unk("v0"),
		sortedPair("A", "v1"),
		forallImp([]string{"k"}, unk("v2"),
			logic.GtF(sel("A", "k"), v("val"))),
	)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"outer": outer, "inner": inner},
		Q: template.Domain{
			"u0": preds("1 <= i", "i <= n", "0 <= i"),
			"u1": preds("0 <= k1", "k1 < k2", "k2 < i", "k2 <= i", "k2 < n", "k1 < i"),
			"v0": preds("j >= -1", "j < i", "1 <= i", "i < n", "j < n"),
			"v1": preds("0 <= k1", "k1 < k2", "k2 <= i", "k2 != j + 1", "k2 < n", "k2 < i"),
			"v2": preds("j + 1 < k", "k <= i", "j < k", "k < n", "0 <= k"),
		},
	}
}

// BubbleSortSorted verifies sortedness of the flagless bubble sort that
// always performs all passes (the paper's n² version).
func BubbleSortSorted() *spec.Problem {
	prog := lang.MustParse(`
		program BubbleSort(array A, n) {
			i := n;
			while outer (i > 1) {
				j := 0;
				while inner (j < i - 1) {
					if (A[j] > A[j + 1]) {
						t := A[j];
						A[j] := A[j + 1];
						A[j + 1] := t;
					}
					j := j + 1;
				}
				i := i - 1;
			}
			assert(forall k1, k2. (0 <= k1 && k1 < k2 && k2 < n) => A[k1] <= A[k2]);
		}`)
	outer := logic.Conj(unk("u0"), sortedPair("A", "u1"))
	inner := logic.Conj(
		unk("v0"),
		sortedPair("A", "v1"),
		forallImp([]string{"k"}, unk("v2"),
			logic.LeF(sel("A", "k"), sel("A", "j"))),
	)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"outer": outer, "inner": inner},
		Q: template.Domain{
			"u0": preds("i <= n", "1 <= i", "0 <= i"),
			"u1": preds("0 <= k1", "k1 < k2", "k2 < n", "i <= k2", "k1 < i", "0 <= k2"),
			"v0": preds("0 <= j", "j < i", "i <= n", "1 < i", "j < n"),
			"v1": preds("0 <= k1", "k1 < k2", "k2 < n", "i <= k2", "k1 < i", "0 <= k2"),
			"v2": preds("0 <= k", "k < j", "k <= j", "k < i", "k < n"),
		},
	}
}

// BubbleSortFlagSorted verifies sortedness of the early-exit bubble sort:
// when the swapped flag stays clear the scanned prefix is in order, which at
// the outer exit yields adjacent sortedness of the whole array.
func BubbleSortFlagSorted() *spec.Problem {
	prog := lang.MustParse(`
		program BubbleSortFlag(array A, n) {
			swapped := 1;
			while outer (swapped = 1) {
				swapped := 0;
				j := 0;
				while inner (j < n - 1) {
					if (A[j] > A[j + 1]) {
						t := A[j];
						A[j] := A[j + 1];
						A[j + 1] := t;
						swapped := 1;
					}
					j := j + 1;
				}
			}
			assert(forall k. (0 <= k && k < n - 1) => A[k] <= A[k + 1]);
		}`)
	adj := func(guard string) logic.Formula {
		return forallImp([]string{"k"}, unk(guard),
			logic.LeF(sel("A", "k"), logic.Sel(logic.AV("A"), logic.Plus(v("k"), logic.I(1)))))
	}
	outer := logic.Conj(unk("u0"), adj("u1"))
	inner := logic.Conj(unk("v0"), adj("v1"))
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"outer": outer, "inner": inner},
		Q: template.Domain{
			"u0": preds("0 <= swapped", "swapped <= 1"),
			"u1": preds("swapped <= 0", "0 <= k", "k < n - 1", "k < n"),
			"v0": preds("0 <= swapped", "swapped <= 1", "0 <= j", "j <= n - 1", "j < n"),
			"v1": preds("swapped <= 0", "0 <= k", "k < j", "k <= j", "k < n - 1"),
		},
	}
}

// QuickSortInnerSorted verifies the partitioning step of quicksort: at exit,
// the prefix is at most the pivot and the scanned middle is above it.
func QuickSortInnerSorted() *spec.Problem {
	prog := lang.MustParse(`
		program QuickSortInner(array A, n, pivot) {
			i := 0;
			s := 0;
			while loop (i < n) {
				if (A[i] <= pivot) {
					t := A[i];
					A[i] := A[s];
					A[s] := t;
					s := s + 1;
				}
				i := i + 1;
			}
			assert(forall k. (0 <= k && k < s) => A[k] <= pivot);
			assert(forall k. (s <= k && k < i) => A[k] > pivot);
		}`)
	tmpl := logic.Conj(
		unk("v0"),
		forallImp([]string{"k"}, unk("v1"), logic.LeF(sel("A", "k"), v("pivot"))),
		forallImp([]string{"k"}, unk("v2"), logic.GtF(sel("A", "k"), v("pivot"))),
	)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": tmpl},
		Q: template.Domain{
			"v0": preds("0 <= s", "s <= i", "i <= n", "0 <= i"),
			"v1": preds("0 <= k", "k < s", "k <= s", "k < i", "k < n"),
			"v2": preds("s <= k", "k < i", "k <= i", "0 <= k", "k < n"),
		},
	}
}

// MergeSortInnerSorted verifies the merge step of merge sort: given sorted
// inputs A and B, the merged output C is sorted. The three sequential loops
// share "output sorted" and "output bounds remaining input" invariants; the
// copy loop for A additionally needs the disjunction i ≥ n ∨ j ≥ m inherited
// from the main loop's exit.
func MergeSortInnerSorted() *spec.Problem {
	prog := lang.MustParse(`
		program MergeSortInner(array A, array B, array C, n, m) {
			assume(forall k1, k2. (0 <= k1 && k1 < k2 && k2 < n) => A[k1] <= A[k2]);
			assume(forall k1, k2. (0 <= k1 && k1 < k2 && k2 < m) => B[k1] <= B[k2]);
			i := 0;
			j := 0;
			t := 0;
			while merge (i < n && j < m) {
				if (A[i] <= B[j]) {
					C[t] := A[i];
					t := t + 1;
					i := i + 1;
				} else {
					C[t] := B[j];
					t := t + 1;
					j := j + 1;
				}
			}
			while copyA (i < n) {
				C[t] := A[i];
				t := t + 1;
				i := i + 1;
			}
			while copyB (j < m) {
				C[t] := B[j];
				t := t + 1;
				j := j + 1;
			}
			assert(forall k1, k2. (0 <= k1 && k1 < k2 && k2 < t) => C[k1] <= C[k2]);
		}`)
	// Cross bound: everything already output is at most everything still
	// unconsumed in the given input array.
	cross := func(inArr, idxGuard string) logic.Formula {
		return forallImp([]string{"k1", "k2"}, unk(idxGuard),
			logic.LeF(sel("C", "k1"), sel(inArr, "k2")))
	}
	sortedIn := func(arr, guard string) logic.Formula { return sortedPair(arr, guard) }

	qPair := func(hi string) []logic.Formula {
		return preds("0 <= k1", "k1 < k2", "k2 < "+hi, "k1 < "+hi)
	}
	qCross := func(lo, hi string) []logic.Formula {
		return preds("0 <= k1", "k1 < t", lo+" <= k2", "k2 < "+hi, "k1 < k2")
	}

	mergeT := logic.Conj(
		unk("w0"),
		sortedIn("A", "wa"), sortedIn("B", "wb"), sortedPair("C", "wc"),
		cross("A", "wxa"), cross("B", "wxb"),
	)
	copyAT := logic.Conj(
		unk("x0"),
		logic.Disj(unk("xd1"), unk("xd2")),
		sortedIn("A", "xa"), sortedIn("B", "xb"), sortedPair("C", "xc"),
		cross("A", "xxa"), cross("B", "xxb"),
	)
	copyBT := logic.Conj(
		unk("y0"),
		sortedIn("B", "yb"), sortedPair("C", "yc"),
		cross("B", "yxb"),
	)
	return &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"merge": mergeT, "copyA": copyAT, "copyB": copyBT,
		},
		Q: template.Domain{
			"w0":  preds("0 <= i", "0 <= j", "0 <= t", "i <= n", "j <= m"),
			"wa":  qPair("n"),
			"wb":  qPair("m"),
			"wc":  preds("0 <= k1", "k1 < k2", "k2 < t", "k1 < t"),
			"wxa": qCross("i", "n"),
			"wxb": qCross("j", "m"),

			"x0":  preds("0 <= i", "0 <= t", "i <= n", "j <= m", "0 <= j"),
			"xd1": preds("n <= i", "m <= j"),
			"xd2": preds("n <= i", "m <= j"),
			"xa":  qPair("n"),
			"xb":  qPair("m"),
			"xc":  preds("0 <= k1", "k1 < k2", "k2 < t", "k1 < t"),
			"xxa": qCross("i", "n"),
			"xxb": qCross("j", "m"),

			"y0":  preds("0 <= j", "0 <= t", "j <= m", "n <= i"),
			"yb":  qPair("m"),
			"yc":  preds("0 <= k1", "k1 < k2", "k2 < t", "k1 < t"),
			"yxb": qCross("j", "m"),
		},
	}
}

// SortednessTasks returns the Table 6 sortedness column.
func SortednessTasks() []Task {
	return []Task{
		{Name: "Selection Sort", Property: "sortedness", Build: SelectionSortSorted},
		{Name: "Insertion Sort", Property: "sortedness", Build: InsertionSortSorted},
		{Name: "Bubble Sort (n2)", Property: "sortedness", Build: BubbleSortSorted},
		{Name: "Bubble Sort (flag)", Property: "sortedness", Build: BubbleSortFlagSorted},
		{Name: "Quick Sort (inner)", Property: "sortedness", Build: QuickSortInnerSorted},
		{Name: "Merge Sort (inner)", Property: "sortedness", Build: MergeSortInnerSorted},
	}
}
