// Table 2 benchmarks: maximally-weak preconditions under which the sorting
// programs exhibit their worst-case behaviour. Each program asserts that its
// dominant operation always executes; GFP precondition inference (§6)
// discovers the entry conditions that make the assertion hold.

package bench

import (
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/template"
)

// SelectionSortWorstCase infers the precondition under which selection sort
// performs a swap in every outer iteration (n−1 swaps, the worst case, Fig.
// 1b). The paper's answer: the prefix strictly sorted and A[n−1] strictly
// smallest.
func SelectionSortWorstCase() *spec.Problem {
	prog := lang.MustParse(`
		program SelectionSortWorst(array A, n) {
			i := 0;
			while outer (i < n - 1) {
				min := i;
				j := i + 1;
				while inner (j < n) {
					if (A[j] < A[min]) {
						min := j;
					}
					j := j + 1;
				}
				assert(i != min);
				t := A[i];
				A[i] := A[min];
				A[min] := t;
				i := i + 1;
			}
		}`)
	last := logic.Sel(logic.AV("A"), logic.Minus(v("n"), logic.I(1)))
	// ∀k: guard ⇒ A[n−1] < A[k] (the last cell holds the strict minimum of
	// the guard's range).
	lastMin := func(g string) logic.Formula {
		return forallImp([]string{"k"}, unk(g), logic.LtF(last, sel("A", "k")))
	}
	// ∀k1,k2: guard ⇒ A[k1] < A[k2] (strict sortedness).
	strictSorted := func(g string) logic.Formula {
		return forallImp([]string{"k1", "k2"}, unk(g), logic.LtF(sel("A", "k1"), sel("A", "k2")))
	}
	entry := logic.Conj(lastMin("pm"), strictSorted("ps"))
	outer := logic.Conj(unk("u0"), lastMin("um"), strictSorted("us"))
	inner := logic.Conj(
		unk("v0"), lastMin("vm"), strictSorted("vs"),
		forallImp([]string{"k"}, unk("vt"), logic.LeF(sel("A", "min"), sel("A", "k"))),
	)
	qm := preds("0 <= k", "i <= k", "k < n - 1", "k < n")
	qs := preds("0 <= k1", "i <= k1", "k1 < k2", "k2 < n - 1", "k2 < n")
	return &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"entry": entry, "outer": outer, "inner": inner,
		},
		Q: template.Domain{
			"pm": qm,
			"ps": qs,
			"u0": preds("0 <= i", "i < n", "i <= n"),
			"um": qm,
			"us": qs,
			"v0": preds("0 <= i", "i < n - 1", "i <= min", "min < j", "i < j", "j <= n"),
			"vm": qm,
			"vs": qs,
			"vt": preds("i <= k", "k < j", "0 <= k", "k < n"),
		},
	}
}

// InsertionSortWorstCase infers the precondition under which insertion
// sort's inner copy loop executes in every outer iteration: the shift
// condition holds immediately. The paper's answer: the array is strictly
// reverse-sorted (∀k: A[k] > A[k+1]); we infer the equivalent pairwise form.
func InsertionSortWorstCase() *spec.Problem {
	prog := lang.MustParse(`
		program InsertionSortWorst(array A, n) {
			i := 1;
			while outer (i < n) {
				j := i - 1;
				val := A[i];
				assert(j >= 0 && A[j] > val);
				while inner (j >= 0 && A[j] > val) {
					A[j + 1] := A[j];
					j := j - 1;
				}
				A[j + 1] := val;
				i := i + 1;
			}
		}`)
	// ∀k1,k2: guard ⇒ A[k2] < A[k1] (strict descent between the ranges).
	desc := func(g string) logic.Formula {
		return forallImp([]string{"k1", "k2"}, unk(g), logic.LtF(sel("A", "k2"), sel("A", "k1")))
	}
	entry := desc("p")
	// Outer: prefix dominates suffix; suffix strictly descending.
	outer := logic.Conj(unk("u0"), desc("u1"), desc("u2"))
	// Inner: all of A[0..i] dominates the suffix; suffix strictly
	// descending; val below every unshifted prefix cell.
	inner := logic.Conj(
		unk("w0"), desc("w1"), desc("w2"),
		forallImp([]string{"k"}, unk("w3"), logic.LtF(v("val"), sel("A", "k"))),
	)
	return &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"entry": entry, "outer": outer, "inner": inner,
		},
		Q: template.Domain{
			"p":  preds("0 <= k1", "k1 < k2", "k2 < n"),
			"u0": preds("1 <= i", "i <= n", "0 <= i"),
			"u1": preds("0 <= k1", "k1 < i", "i <= k2", "k2 < n"),
			"u2": preds("i <= k1", "k1 < k2", "k2 < n"),
			"w0": preds("j >= -1", "j < i", "1 <= i", "i < n"),
			"w1": preds("0 <= k1", "k1 <= i", "i < k2", "k2 < n"),
			"w2": preds("i <= k1", "k1 < k2", "k2 < n"),
			"w3": preds("0 <= k", "k <= j", "k < j"),
		},
	}
}

// QuickSortInnerWorstCase infers the precondition under which the
// partitioning step moves an element into the low side in every iteration
// (n−1 swaps): every element must be at least the pivot A[0] — implied by
// the paper's sorted-array precondition and strictly weaker than it.
func QuickSortInnerWorstCase() *spec.Problem {
	prog := lang.MustParse(`
		program QuickSortInnerWorst(array A, n) {
			assume(n >= 1);
			pivot := A[0];
			s := 1;
			i := 1;
			while loop (i < n) {
				assert(A[i] >= pivot);
				if (A[i] >= pivot) {
					t := A[i];
					A[i] := A[s];
					A[s] := t;
					s := s + 1;
				}
				i := i + 1;
			}
		}`)
	// ∀k: guard ⇒ A[0] ≤ A[k].
	entry := forallImp([]string{"k"}, unk("p"),
		logic.LeF(logic.Sel(logic.AV("A"), logic.I(0)), sel("A", "k")))
	loop := logic.Conj(
		unk("v0"),
		forallImp([]string{"k"}, unk("v1"), logic.LeF(v("pivot"), sel("A", "k"))),
		forallImp([]string{"k"}, unk("v2"), logic.LeF(v("pivot"), sel("A", "k"))),
	)
	return &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"entry": entry, "loop": loop,
		},
		Q: template.Domain{
			"p":  preds("0 <= k", "1 <= k", "k < n"),
			"v0": preds("s = i", "1 <= i", "i <= n", "1 <= s", "pivot <= A[0]"),
			"v1": preds("i <= k", "k < n", "0 <= k"),
			"v2": preds("0 <= k", "k < s", "k < i", "1 <= k"),
		},
	}
}

// BubbleSortFlagWorstCase infers the precondition under which the early-exit
// bubble sort never exits early: the swapped flag is set by every one of its
// n−1 passes. The answer is a strictly descending array.
func BubbleSortFlagWorstCase() *spec.Problem {
	prog := lang.MustParse(`
		program BubbleSortFlagWorst(array A, n) {
			swapped := 1;
			i := 0;
			while outer (swapped = 1 && i < n - 1) {
				swapped := 0;
				j := 0;
				while inner (j < n - 1 - i) {
					if (A[j] > A[j + 1]) {
						t := A[j];
						A[j] := A[j + 1];
						A[j + 1] := t;
						swapped := 1;
					}
					j := j + 1;
				}
				assert(swapped = 1);
				i := i + 1;
			}
		}`)
	desc := func(g string) logic.Formula {
		return forallImp([]string{"k1", "k2"}, unk(g), logic.LtF(sel("A", "k2"), sel("A", "k1")))
	}
	entry := desc("p")
	outer := logic.Conj(unk("o0"), desc("o1"))
	inner := logic.Conj(
		unk("w0"),
		logic.Disj(unk("wa"), unk("wb")),
		desc("wd"), // prefix [0, j) strictly descending
		desc("we"), // cross: prefix cells dominate cells beyond j
		desc("wf"), // untouched segment [j, n−1−i) strictly descending
	)
	return &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"entry": entry, "outer": outer, "inner": inner,
		},
		Q: template.Domain{
			"p":  preds("0 <= k1", "k1 < k2", "k2 < n"),
			"o0": preds("0 <= i", "0 <= swapped", "swapped <= 1"),
			"o1": preds("0 <= k1", "k1 < k2", "k2 + i < n"),
			"w0": preds("0 <= j", "0 <= i", "j + i <= n - 1", "0 <= swapped", "swapped <= 1", "i < n - 1"),
			"wa": preds("1 <= swapped", "swapped = 1"),
			"wb": preds("j <= 0", "j < 1"),
			"wd": preds("0 <= k1", "k1 < k2", "k2 < j"),
			"we": preds("0 <= k1", "k1 < j", "j < k2", "k2 + i < n"),
			"wf": preds("j <= k1", "k1 < k2", "k2 + i < n"),
		},
	}
}

// WorstCaseTasks returns the Table 2 precondition-inference tasks.
func WorstCaseTasks() []Task {
	return []Task{
		{Name: "Selection Sort", Property: "upper-bound", Kind: Precondition, Build: SelectionSortWorstCase},
		{Name: "Insertion Sort", Property: "upper-bound", Kind: Precondition, Build: InsertionSortWorstCase},
		{Name: "Quick Sort (inner)", Property: "upper-bound", Kind: Precondition, Build: QuickSortInnerWorstCase},
		{Name: "Bubble Sort (flag)", Property: "upper-bound", Kind: Precondition, Build: BubbleSortFlagWorstCase},
	}
}
