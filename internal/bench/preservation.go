// Table 6 benchmarks, ∀∃ column (and Table 1): the sorting programs
// preserve the elements of their input. A ghost snapshot A0 of the input is
// assumed equal to A at entry, and the assertion states that every snapshot
// element still occurs in the output:
//
//	∀y ∃x: (0 ≤ y < n) ⇒ (A0[y] = A[x] ∧ 0 ≤ x < n)
//
// For swap-based sorts the invariant is the same fact at every cut-point
// (swaps permute in place); insertion sort additionally tracks the shifting
// hole (the paper's x ≠ j+1 disjunct), and merge tracks consumed prefixes.

package bench

import (
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/template"
)

// permTemplate builds ∀y: g ⇒ ∃x: (src[y] = dst[x] ∧ h).
func permTemplate(src, dst, g, h string) logic.Formula {
	return logic.All([]string{"y"}, logic.Imp(unk(g),
		logic.Any([]string{"x"}, logic.Conj(
			logic.EqF(sel(src, "y"), sel(dst, "x")),
			unk(h)))))
}

const ghostAssume = `assume(forall k. A0[k] = A[k]);`

const preserveAssert = `assert(forall y. (0 <= y && y < n) => (exists x. A0[y] = A[x] && 0 <= x && x < n));`

func permQ(prefix string) template.Domain {
	return template.Domain{
		prefix + "g": preds("0 <= y", "y < n"),
		prefix + "h": preds("0 <= x", "x < n"),
	}
}

func mergeDomains(ds ...template.Domain) template.Domain {
	out := template.Domain{}
	for _, d := range ds {
		for k, v := range d {
			out[k] = v
		}
	}
	return out
}

// SelectionSortPreserves verifies element preservation of selection sort.
func SelectionSortPreserves() *spec.Problem {
	prog := lang.MustParse(`
		program SelectionSort(array A, array A0, n) {
			` + ghostAssume + `
			i := 0;
			while outer (i < n - 1) {
				min := i;
				j := i + 1;
				while inner (j < n) {
					if (A[j] < A[min]) {
						min := j;
					}
					j := j + 1;
				}
				t := A[i];
				A[i] := A[min];
				A[min] := t;
				i := i + 1;
			}
			` + preserveAssert + `
		}`)
	outer := logic.Conj(unk("u0"), permTemplate("A0", "A", "ug", "uh"))
	inner := logic.Conj(unk("v0"), permTemplate("A0", "A", "vg", "vh"))
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"outer": outer, "inner": inner},
		Q: mergeDomains(permQ("u"), permQ("v"), template.Domain{
			"u0": preds("0 <= i", "i <= n"),
			"v0": preds("i <= min", "min < j", "j <= n", "i < n - 1", "0 <= i"),
		}),
	}
}

// BubbleSortPreserves verifies element preservation of the flagless bubble
// sort.
func BubbleSortPreserves() *spec.Problem {
	prog := lang.MustParse(`
		program BubbleSort(array A, array A0, n) {
			` + ghostAssume + `
			i := n;
			while outer (i > 1) {
				j := 0;
				while inner (j < i - 1) {
					if (A[j] > A[j + 1]) {
						t := A[j];
						A[j] := A[j + 1];
						A[j + 1] := t;
					}
					j := j + 1;
				}
				i := i - 1;
			}
			` + preserveAssert + `
		}`)
	outer := logic.Conj(unk("u0"), permTemplate("A0", "A", "ug", "uh"))
	inner := logic.Conj(unk("v0"), permTemplate("A0", "A", "vg", "vh"))
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"outer": outer, "inner": inner},
		Q: mergeDomains(permQ("u"), permQ("v"), template.Domain{
			"u0": preds("i <= n", "0 <= i", "1 <= i"),
			"v0": preds("0 <= j", "i <= n", "j < i", "0 <= i"),
		}),
	}
}

// BubbleSortFlagPreserves verifies element preservation of the early-exit
// bubble sort.
func BubbleSortFlagPreserves() *spec.Problem {
	prog := lang.MustParse(`
		program BubbleSortFlag(array A, array A0, n) {
			` + ghostAssume + `
			swapped := 1;
			while outer (swapped = 1) {
				swapped := 0;
				j := 0;
				while inner (j < n - 1) {
					if (A[j] > A[j + 1]) {
						t := A[j];
						A[j] := A[j + 1];
						A[j + 1] := t;
						swapped := 1;
					}
					j := j + 1;
				}
			}
			` + preserveAssert + `
		}`)
	outer := permTemplate("A0", "A", "ug", "uh")
	inner := logic.Conj(unk("v0"), permTemplate("A0", "A", "vg", "vh"))
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"outer": outer, "inner": inner},
		Q: mergeDomains(permQ("u"), permQ("v"), template.Domain{
			"v0": preds("0 <= j", "0 <= swapped", "swapped <= 1"),
		}),
	}
}

// QuickSortInnerPreserves verifies element preservation of the quicksort
// partitioning step.
func QuickSortInnerPreserves() *spec.Problem {
	prog := lang.MustParse(`
		program QuickSortInner(array A, array A0, n, pivot) {
			` + ghostAssume + `
			i := 0;
			s := 0;
			while loop (i < n) {
				if (A[i] <= pivot) {
					t := A[i];
					A[i] := A[s];
					A[s] := t;
					s := s + 1;
				}
				i := i + 1;
			}
			` + preserveAssert + `
		}`)
	tmpl := logic.Conj(unk("v0"), permTemplate("A0", "A", "vg", "vh"))
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": tmpl},
		Q: mergeDomains(permQ("v"), template.Domain{
			"v0": preds("0 <= s", "s <= i", "i <= n", "s < n", "0 <= i"),
		}),
	}
}

// InsertionSortPreserves verifies element preservation of insertion sort —
// the paper's flagship ∀∃ example (Figure 1a). During the shifting loop the
// prefix elements of the snapshot live at positions up to i excluding the
// hole j+1, the suffix is untouched, and val carries the snapshot element
// originally at i.
func InsertionSortPreserves() *spec.Problem {
	prog := lang.MustParse(`
		program InsertionSort(array A, array A0, n) {
			` + ghostAssume + `
			i := 1;
			while outer (i < n) {
				j := i - 1;
				val := A[i];
				while inner (j >= 0 && A[j] > val) {
					A[j + 1] := A[j];
					j := j - 1;
				}
				A[j + 1] := val;
				i := i + 1;
			}
			` + preserveAssert + `
		}`)
	// Outer: suffix untouched; prefix snapshot elements occur below i.
	outer := logic.Conj(
		unk("u0"),
		forallImp([]string{"y"}, unk("us"), logic.EqF(sel("A", "y"), sel("A0", "y"))),
		permTemplate("A0", "A", "ug", "uh"),
	)
	// Inner: additionally val holds the snapshot element from i, and
	// witnesses avoid the hole j+1.
	inner := logic.Conj(
		unk("v0"),
		forallImp([]string{"y"}, unk("vs"), logic.EqF(sel("A", "y"), sel("A0", "y"))),
		permTemplate("A0", "A", "vg", "vh"),
	)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"outer": outer, "inner": inner},
		Q: template.Domain{
			"u0": preds("1 <= i", "i <= n"),
			"us": preds("i <= y", "y < n", "0 <= y"),
			"ug": preds("0 <= y", "y < i", "y < n"),
			"uh": preds("0 <= x", "x < i", "x < n"),
			"v0": preds("val = A0[i]", "j >= -1", "j < i", "1 <= i", "i < n"),
			"vs": preds("i < y", "y < n", "0 <= y"),
			"vg": preds("0 <= y", "y < i", "y < n"),
			"vh": preds("0 <= x", "x <= i", "x != j + 1", "x < n"),
		},
	}
}

// MergeSortInnerPreserves verifies that every element of the sorted inputs A
// and B occurs in the merged output C (Table 1).
func MergeSortInnerPreserves() *spec.Problem {
	prog := lang.MustParse(`
		program MergeSortInner(array A, array B, array C, n, m) {
			i := 0;
			j := 0;
			t := 0;
			while merge (i < n && j < m) {
				if (A[i] <= B[j]) {
					C[t] := A[i];
					t := t + 1;
					i := i + 1;
				} else {
					C[t] := B[j];
					t := t + 1;
					j := j + 1;
				}
			}
			while copyA (i < n) {
				C[t] := A[i];
				t := t + 1;
				i := i + 1;
			}
			while copyB (j < m) {
				C[t] := B[j];
				t := t + 1;
				j := j + 1;
			}
			assert(forall y. (0 <= y && y < n) => (exists x. A[y] = C[x] && 0 <= x && x < t));
			assert(forall y. (0 <= y && y < m) => (exists x. B[y] = C[x] && 0 <= x && x < t));
		}`)
	// Consumed prefixes of A and B occur in C[0..t).
	inv := func(p string) logic.Formula {
		return logic.Conj(
			unk(p+"0"),
			logic.All([]string{"y"}, logic.Imp(unk(p+"ga"),
				logic.Any([]string{"x"}, logic.Conj(
					logic.EqF(sel("A", "y"), sel("C", "x")), unk(p+"ha"))))),
			logic.All([]string{"y"}, logic.Imp(unk(p+"gb"),
				logic.Any([]string{"x"}, logic.Conj(
					logic.EqF(sel("B", "y"), sel("C", "x")), unk(p+"hb"))))),
		)
	}
	qFor := func(p string) template.Domain {
		return template.Domain{
			p + "0":  preds("0 <= i", "0 <= j", "0 <= t", "i <= n", "j <= m", "n <= i", "m <= j"),
			p + "ga": preds("0 <= y", "y < i", "y < n"),
			p + "ha": preds("0 <= x", "x < t"),
			p + "gb": preds("0 <= y", "y < j", "y < m"),
			p + "hb": preds("0 <= x", "x < t"),
		}
	}
	return &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"merge": inv("w"), "copyA": inv("x"), "copyB": inv("z"),
		},
		Q: mergeDomains(qFor("w"), qFor("x"), qFor("z")),
	}
}

// PreservationTasks returns the Table 6 ∀∃ column.
func PreservationTasks() []Task {
	return []Task{
		{Name: "Selection Sort", Property: "preservation", Build: SelectionSortPreserves},
		{Name: "Insertion Sort", Property: "preservation", Build: InsertionSortPreserves},
		{Name: "Bubble Sort (n2)", Property: "preservation", Build: BubbleSortPreserves},
		{Name: "Bubble Sort (flag)", Property: "preservation", Build: BubbleSortFlagPreserves},
		{Name: "Quick Sort (inner)", Property: "preservation", Build: QuickSortInnerPreserves},
		{Name: "Merge Sort (inner)", Property: "preservation", Build: MergeSortInnerPreserves},
	}
}
