package bench

import (
	"testing"
	"time"

	"repro/internal/core"
)

// runAll verifies a task with every method it declares and fails the test on
// any method that cannot prove it.
func runAll(t *testing.T, task Task, timeout time.Duration) {
	t.Helper()
	if testing.Short() {
		t.Skip("verification runs skipped in -short mode")
	}
	r := &Runner{Timeout: timeout}
	for _, m := range r.Run(task) {
		if m.Err != nil {
			t.Errorf("%s/%s: error: %v", m.Task, m.Method, m.Err)
			continue
		}
		if !m.Proved {
			t.Errorf("%s/%s: not proved (%v)", m.Task, m.Method, m.Duration)
			continue
		}
		t.Logf("%s/%s: proved in %v", m.Task, m.Method, m.Duration.Round(time.Millisecond))
	}
}

func TestArrayInitAllMethods(t *testing.T) {
	runAll(t, Task{Name: "Array Init", Property: "array/list", Build: ArrayInit}, 2*time.Minute)
}

// Consumer-Producer and Partition Array must be provable by at least one
// algorithm in the quick suite. The default run checks GFP only — the
// method that proves both quickly; LFP and CFP either take minutes or time
// out on these two (see EXPERIMENTS.md Table 4 notes), which on a one-core
// box pushes the package past go test's 10-minute default. The all-methods
// sweep runs under VS3_SEARCH=1 via search_test.go.
func TestConsumerProducer(t *testing.T) {
	task := ArrayListTasks()[0]
	task.Methods = []core.Method{core.GFP}
	runTask(t, task, 100*time.Second)
}

func TestPartitionArray(t *testing.T) {
	task := ArrayListTasks()[1]
	task.Methods = []core.Method{core.GFP}
	runTask(t, task, 100*time.Second)
}

func TestTaskMethodDefaults(t *testing.T) {
	vt := Task{Kind: Verify}
	if got := vt.methods(); len(got) != 3 {
		t.Errorf("verify task should default to all 3 methods, got %v", got)
	}
	pt := Task{Kind: Precondition}
	if got := pt.methods(); len(got) != 1 || got[0] != core.GFP {
		t.Errorf("precondition task should default to GFP, got %v", got)
	}
}
