package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/load"
)

// Bench10Report is the BENCH_10.json schema: the generational-compaction and
// store-aware-routing report. Part A (Compaction) measures the on-disk shrink
// of a duplicate-heavy knowledge store and confirms the compacted generation
// warm-loads with identical verdicts and zero from-scratch work. Part B
// (Routing) reweights a warmed fleet's hash ring — moving keys off the nodes
// that solved them — and compares store-aware placement against plain ring
// affinity on the from-scratch work the fleet must redo. Produced by
// TestCompactBench in cmd/vs3router (`make bench-compact`); rendered by
// `benchtab -table 10` from the committed file.
type Bench10Report struct {
	Report     string          `json:"report"`
	Purpose    string          `json:"purpose"`
	Host       string          `json:"host"`
	GoMaxP     int             `json:"gomaxprocs"`
	Compaction Bench10Compact  `json:"compaction"`
	Routing    Bench10Routing  `json:"routing"`
	Findings   Bench10Findings `json:"findings"`
	Notes      []string        `json:"notes"`
}

// Bench10Compact is Part A: one duplicate-heavy store before and after
// Compact, plus the warm restart over the compacted generation.
type Bench10Compact struct {
	// Outcomes is the number of distinct solved problems in the store;
	// Copies is how many times each live record was duplicated on disk
	// before compaction (simulated rewrite churn).
	Outcomes int `json:"outcomes"`
	Copies   int `json:"copies"`

	LogBytesBefore int64   `json:"log_bytes_before"`
	LogBytesAfter  int64   `json:"log_bytes_after"`
	ReclaimedBytes int64   `json:"reclaimed_bytes"`
	ShrinkX        float64 `json:"shrink_x"`

	// WarmWork is the from-scratch work (smt queries + fm eliminations) a
	// restart over the compacted store spends re-answering the suite; the
	// gate requires 0.
	WarmWork          int64 `json:"warm_work"`
	WarmStoreHits     int64 `json:"warm_store_hits"`
	VerdictsIdentical bool  `json:"verdicts_identical"`
}

// Bench10Routing is Part B: the same request corpus replayed against a
// warmed two-backend fleet after a ring reweight, once with store-aware
// placement and once with plain affinity. Arms are keyed "store_aware" and
// "affinity_only".
type Bench10Routing struct {
	Arms map[string]load.Result `json:"arms"`
	// StoreHits is the router's route_store_hits delta over the
	// store-aware arm: placements a digest claim moved off the ring owner.
	StoreHits int64 `json:"route_store_hits"`
}

// Bench10Findings are the gated claims.
type Bench10Findings struct {
	// CompactionShrinkX is LogBytesBefore/LogBytesAfter; the gate requires
	// >= 3 on the duplicate-heavy store.
	CompactionShrinkX float64 `json:"compaction_shrink_x"`
	CompactWarmWork   int64   `json:"compact_warm_work"`

	StoreAwareWork int64 `json:"store_aware_work"`
	AffinityWork   int64 `json:"affinity_only_work"`
	// WorkSavedX is AffinityWork/StoreAwareWork (how much from-scratch
	// re-derivation store-aware placement avoids after the reweight).
	WorkSavedX float64 `json:"affinity_over_store_aware_work"`
	StoreHits  int64   `json:"route_store_hits"`

	VerdictsIdentical bool `json:"verdicts_identical_across_arms"`
}

// ReadBench10 loads a committed BENCH_10.json.
func ReadBench10(path string) (Bench10Report, error) {
	var rep Bench10Report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Report != "BENCH_10" {
		return rep, fmt.Errorf("%s: report %q, want BENCH_10", path, rep.Report)
	}
	return rep, nil
}

// WriteBench10Table renders the compaction and store-aware routing report.
func WriteBench10Table(w io.Writer, rep Bench10Report) {
	c := rep.Compaction
	fmt.Fprintf(w, "Table 10: log compaction and store-aware routing (%s, GOMAXPROCS=%d)\n\n", rep.Host, rep.GoMaxP)
	fmt.Fprintf(w, "compaction: %d outcomes x%d duplicated, log %d -> %d bytes (%.1fx smaller, %d reclaimed)\n",
		c.Outcomes, c.Copies, c.LogBytesBefore, c.LogBytesAfter, c.ShrinkX, c.ReclaimedBytes)
	fmt.Fprintf(w, "            warm restart on compacted store: %d from-scratch work, %d store hits, verdicts identical: %v\n\n",
		c.WarmWork, c.WarmStoreHits, c.VerdictsIdentical)
	fmt.Fprintf(w, "%-16s %8s %8s %10s %8s %8s %6s %6s\n",
		"arm", "p50 ms", "p95 ms", "req/s", "queries", "fm", "work", "bad")
	for _, name := range []string{"store_aware", "affinity_only"} {
		arm, ok := rep.Routing.Arms[name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-16s %8.2f %8.2f %10.1f %8d %8d %6d %6d\n",
			name, arm.P50MS, arm.P95MS, arm.ThroughputRPS,
			arm.SMTQueries, arm.FMScratch+arm.FMIncremental, arm.Work(),
			arm.Incorrect+arm.Errors)
	}
	f := rep.Findings
	saved := fmt.Sprintf("%.1fx less", f.WorkSavedX)
	if f.StoreAwareWork == 0 && f.AffinityWork > 0 {
		saved = "all re-derivation avoided"
	}
	fmt.Fprintf(w, "\nrouting after reweight: store-aware %d vs affinity-only %d from-scratch work (%s), %d digest-preferred placements\n",
		f.StoreAwareWork, f.AffinityWork, saved, f.StoreHits)
	fmt.Fprintf(w, "verdicts identical across arms: %v\n", f.VerdictsIdentical)
}
