package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestTable1Static(t *testing.T) {
	var b strings.Builder
	Table1(&b)
	out := b.String()
	for _, want := range []string{"Merge Sort", "forall y exists x", "A0[y] = A[x]"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("table run skipped in -short mode")
	}
	// A tight per-run budget: this test checks the table renders and the
	// collector populates, not which cells succeed.
	c := stats.New()
	r := &Runner{Timeout: 8 * time.Second, Stats: c}
	var b strings.Builder
	Table4(&b, r)
	out := b.String()
	for _, want := range []string{"Consumer Producer", "Partition Array", "List Init", "LFP", "GFP", "CFP"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q:\n%s", want, out)
		}
	}
	// The runs must have populated the collector for Figures 4 and 6-9.
	if len(c.QueryDurations()) == 0 {
		t.Error("no SMT queries recorded")
	}
	var f strings.Builder
	Figure4(&f, c)
	if !strings.Contains(f.String(), "<=10ms") {
		t.Errorf("Figure 4 output: %s", f.String())
	}
	Figure6(&f, c)
	Figure7(&f, c)
	Figure8(&f, c)
	Figure9(&f, c)
}

func TestWithJunkPredicates(t *testing.T) {
	base := ArrayInit()
	juiced := WithJunkPredicates(ArrayInit, 7)()
	for u := range base.Q {
		if len(juiced.Q[u]) != len(base.Q[u])+7 {
			t.Errorf("unknown %s: %d preds, want %d", u, len(juiced.Q[u]), len(base.Q[u])+7)
		}
	}
	// The junked problem must still verify.
	r := &Runner{Timeout: 60 * time.Second}
	m := r.runOne(Task{Name: "junked", Build: WithJunkPredicates(ArrayInit, 5)}, core.GFP)
	if m.Err != nil || !m.Proved {
		t.Errorf("junked ArrayInit: err=%v proved=%v", m.Err, m.Proved)
	}
}

func TestJunkPredsDistinct(t *testing.T) {
	ps := junkPreds(40)
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.String()] {
			t.Fatalf("duplicate junk predicate %v", p)
		}
		seen[p.String()] = true
	}
}

func TestRunnerTimeout(t *testing.T) {
	r := &Runner{Timeout: 1 * time.Millisecond}
	m := r.runOne(Task{Name: "slow", Build: MergeSortInnerSorted}, core.CFP)
	if m.Err == nil {
		t.Skip("finished within 1ms (!?)")
	}
	if !strings.Contains(m.Err.Error(), "timeout") {
		t.Errorf("err = %v", m.Err)
	}
}

func TestMeasurementFormatting(t *testing.T) {
	if got := fmtDur(Measurement{Proved: true, Duration: 1500 * time.Millisecond}); got != "1.50s" {
		t.Errorf("fmtDur proved = %q", got)
	}
	if got := fmtDur(Measurement{Proved: false}); got != "fail" {
		t.Errorf("fmtDur fail = %q", got)
	}
	if got := fmtDur(Measurement{Err: errTimeout{}}); got != "timeout" {
		t.Errorf("fmtDur timeout = %q", got)
	}
}

type errTimeout struct{}

func (errTimeout) Error() string { return "timeout" }

func TestTaskListsComplete(t *testing.T) {
	if got := len(ArrayListTasks()); got != 5 {
		t.Errorf("Table 4 has %d tasks, want 5", got)
	}
	if got := len(SortednessTasks()); got != 6 {
		t.Errorf("sortedness has %d tasks, want 6", got)
	}
	if got := len(PreservationTasks()); got != 6 {
		t.Errorf("preservation has %d tasks, want 6", got)
	}
	if got := len(WorstCaseTasks()); got != 4 {
		t.Errorf("worst-case has %d tasks, want 4", got)
	}
	if got := len(FunctionalTasks()); got != 4 {
		t.Errorf("functional has %d tasks, want 4", got)
	}
	// Every task must build a problem that validates.
	all := append(append(append(append(ArrayListTasks(), SortednessTasks()...),
		PreservationTasks()...), WorstCaseTasks()...), FunctionalTasks()...)
	for _, task := range all {
		p := task.Build()
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", task.Name, err)
		}
	}
}
