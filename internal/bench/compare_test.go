package bench

import (
	"strings"
	"testing"
)

func twoCellReports(oldPar, newPar int) (*Report, *Report) {
	cell := CellReport{Task: "t", Property: "p", Method: "lfp", Proved: true, Seconds: 1.0, Queries: 10}
	old := &Report{Suite: "default", Parallel: oldPar, Cells: []CellReport{cell}}
	newc := cell
	newc.Seconds = 0.5
	new_ := &Report{Suite: "default", Parallel: newPar, Cells: []CellReport{newc}}
	return old, new_
}

// TestCompareParallelMismatchAnnotated: a comparison between reports recorded
// at different -parallel values must carry a warning, so speedup tables can
// never silently conflate algorithmic and scheduling effects.
func TestCompareParallelMismatchAnnotated(t *testing.T) {
	old, new_ := twoCellReports(1, 4)
	var buf strings.Builder
	WriteComparison(&buf, old, new_)
	out := buf.String()
	if !strings.Contains(out, "WARNING") || !strings.Contains(out, "-parallel 1") || !strings.Contains(out, "-parallel 4") {
		t.Fatalf("cross-parallelism comparison not annotated:\n%s", out)
	}
	if !strings.Contains(out, "2.00x") {
		t.Fatalf("per-cell speedup row missing:\n%s", out)
	}
}

// TestCompareParallelMatchClean: like-for-like comparisons stay warning-free.
func TestCompareParallelMatchClean(t *testing.T) {
	old, new_ := twoCellReports(2, 2)
	var buf strings.Builder
	WriteComparison(&buf, old, new_)
	if strings.Contains(buf.String(), "WARNING") {
		t.Fatalf("matching-parallelism comparison spuriously annotated:\n%s", buf.String())
	}
}
