package bench

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/template"
)

// exampleCells lists every problem the examples/ programs exercise, with the
// method choices the examples themselves make (core.Methods == nil means
// precondition inference).
var exampleCells = []struct {
	name    string
	build   func() *spec.Problem
	methods []core.Method
}{
	{"ArrayInit (quickstart)", ArrayInit, core.Methods},
	{"Quick Sort (inner) sortedness", QuickSortInnerSorted, []core.Method{core.LFP}},
	{"Quick Sort (inner) preservation", QuickSortInnerPreserves, []core.Method{core.LFP, core.CFP}},
	{"Bubble Sort (flag) sortedness", BubbleSortFlagSorted, []core.Method{core.GFP}},
	{"Bubble Sort (flag) preservation", BubbleSortFlagPreserves, core.Methods},
	{"Partial Init precondition", PartialInit, nil},
	{"Init Synthesis precondition", InitSynthesis, nil},
	{"Quick Sort (inner) worst case", QuickSortInnerWorstCase, nil},
}

// crossChecker installs an optimal.Options.CrossCheck hook asserting that the
// map-solver-guided enumeration and the legacy BFS return the same solution
// sets (as sets) on every group search the run performs. The hook can fire
// from parallel workers, so failures are collected under a lock.
type crossChecker struct {
	mu     sync.Mutex
	groups int
	errs   []string
}

func (cc *crossChecker) hook(phi logic.Formula, mapSols, bfsSols []template.Solution) {
	mk := map[string]bool{}
	for _, s := range mapSols {
		mk[s.Key()] = true
	}
	bk := map[string]bool{}
	for _, s := range bfsSols {
		bk[s.Key()] = true
	}
	same := len(mk) == len(bk)
	if same {
		for k := range mk {
			if !bk[k] {
				same = false
				break
			}
		}
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.groups++
	if !same && len(cc.errs) < 3 {
		cc.errs = append(cc.errs,
			"map/bfs solution sets differ on "+phi.String())
	}
}

// TestMapVsBFSExamples runs every examples/ problem with the CrossCheck hook
// enabled, so every OptimalNegativeSolutions group search performed anywhere
// in the run (fixpoint repairs, ψ_Prog encoding, precondition enumeration)
// is checked map-vs-BFS for identical solution sets. This is the
// `make test-differential` guarantee behind keeping the legacy BFS.
func TestMapVsBFSExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples differential sweep skipped in -short mode (run via make test-differential)")
	}
	for _, cell := range exampleCells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			cc := &crossChecker{}
			cfg := core.Config{}
			cfg.Optimal.CrossCheck = cc.hook
			v := core.New(cfg)
			if cell.methods == nil {
				if _, _, err := v.InferPreconditions(cell.build()); err != nil {
					t.Fatal(err)
				}
			} else {
				for _, m := range cell.methods {
					if _, err := v.Verify(cell.build(), m); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, e := range cc.errs {
				t.Error(e)
			}
			if cc.groups == 0 {
				t.Error("CrossCheck hook never fired; differential sweep vacuous")
			}
			t.Logf("%d group searches cross-checked", cc.groups)
		})
	}
}
