// Table 4 benchmarks: data-sensitive array and list programs.

package bench

import (
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/predabs"
	"repro/internal/spec"
	"repro/internal/template"
)

// ConsumerProducer verifies that only values produced are consumed [17]:
// after the loop, every consumed cell equals the produced cell.
func ConsumerProducer() *spec.Problem {
	prog := lang.MustParse(`
		program ConsumerProducer(array P, array C, n) {
			p := 0;
			c := 0;
			while loop (c < n) {
				if (*) {
					P[p] := p + 5;
					p := p + 1;
				} else {
					assume(c < p);
					C[c] := P[c];
					c := c + 1;
				}
			}
			assert(forall k. (0 <= k && k < n) => C[k] = P[k]);
		}`)
	tmpl := logic.Conj(
		unk("v0"),
		forallImp([]string{"k"}, unk("v1"), logic.EqF(sel("C", "k"), sel("P", "k"))),
	)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": tmpl},
		Q: template.Domain{
			"v0": predabs.AllPreds(predabs.Vars("c", "p", "n"), []int64{0}, []logic.RelOp{logic.Le, logic.Ge}),
			"v1": predabs.QjV("k", []string{"0", "c", "p", "n"}),
		},
	}
}

// PartitionArray verifies that the output arrays partition the input by
// sign [2, 17].
func PartitionArray() *spec.Problem {
	prog := lang.MustParse(`
		program PartitionArray(array A, array B, array C, n) {
			i := 0;
			b := 0;
			c := 0;
			while loop (i < n) {
				if (A[i] >= 0) {
					B[b] := A[i];
					b := b + 1;
				} else {
					C[c] := A[i];
					c := c + 1;
				}
				i := i + 1;
			}
			assert(forall k. (0 <= k && k < b) => B[k] >= 0);
			assert(forall k. (0 <= k && k < c) => C[k] < 0);
		}`)
	tmpl := logic.Conj(
		forallImp([]string{"k"}, unk("v1"), logic.GeF(sel("B", "k"), logic.I(0))),
		forallImp([]string{"k"}, unk("v2"), logic.LtF(sel("C", "k"), logic.I(0))),
	)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": tmpl},
		Q: template.Domain{
			"v1": predabs.QjV("k", []string{"0", "b", "i", "n"}),
			"v2": predabs.QjV("k", []string{"0", "c", "i", "n"}),
		},
	}
}

// ListInit verifies that traversing a singly linked list (encoded as a next
// array N laid out in traversal order, see DESIGN.md) initializes every
// node [12].
func ListInit() *spec.Problem {
	prog := lang.MustParse(`
		program ListInit(array V, array N, n) {
			assume(forall k. (0 <= k && k < n) => N[k] = k + 1);
			x := 0;
			while loop (x < n) {
				V[x] := 0;
				x := N[x];
			}
			assert(forall k. (0 <= k && k < n) => V[k] = 0);
		}`)
	tmpl := logic.Conj(
		unk("v0"),
		forallImp([]string{"k"}, unk("v1"),
			logic.EqF(sel("N", "k"), logic.Plus(v("k"), logic.I(1)))),
		forallImp([]string{"k"}, unk("v2"), logic.EqF(sel("V", "k"), logic.I(0))),
	)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": tmpl},
		Q: template.Domain{
			"v0": predabs.AllPreds(predabs.Vars("x", "n"), []int64{0}, []logic.RelOp{logic.Le, logic.Ge}),
			"v1": predabs.QjV("k", []string{"0", "x", "n"}),
			"v2": predabs.QjV("k", []string{"0", "x", "n"}),
		},
	}
}

// ListInsert verifies that inserting an initialized node preserves list
// initialization across a traversal [12].
func ListInsert() *spec.Problem {
	prog := lang.MustParse(`
		program ListInsert(array V, n) {
			assume(forall k. (0 <= k && k < n) => V[k] = 0);
			x := 0;
			while loop (x < n) {
				if (*) {
					x := n;
				} else {
					x := x + 1;
				}
			}
			V[n] := 0;
			n := n + 1;
			assert(forall k. (0 <= k && k < n) => V[k] = 0);
		}`)
	tmpl := logic.Conj(
		forallImp([]string{"k"}, unk("v1"), logic.EqF(sel("V", "k"), logic.I(0))),
	)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": tmpl},
		Q: template.Domain{
			"v1": predabs.QjV("k", []string{"0", "x", "n"}),
		},
	}
}

// ListDelete verifies that deleting the tail node preserves initialization
// of the remaining list [12].
func ListDelete() *spec.Problem {
	prog := lang.MustParse(`
		program ListDelete(array V, n) {
			assume(n >= 1);
			assume(forall k. (0 <= k && k < n) => V[k] = 0);
			n := n - 1;
			x := 0;
			while loop (x < n) {
				x := x + 1;
			}
			assert(forall k. (0 <= k && k < n) => V[k] = 0);
		}`)
	tmpl := logic.Conj(
		forallImp([]string{"k"}, unk("v1"), logic.EqF(sel("V", "k"), logic.I(0))),
	)
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": tmpl},
		Q: template.Domain{
			"v1": predabs.QjV("k", []string{"0", "x", "n"}),
		},
	}
}

// ArrayInit is the paper's running example (Example 2).
func ArrayInit() *spec.Problem {
	prog := lang.MustParse(`
		program ArrayInit(array A, n) {
			i := 0;
			while loop (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall j. (0 <= j && j < n) => A[j] = 0);
		}`)
	tmpl := forallImp([]string{"j"}, unk("v"), logic.EqF(sel("A", "j"), logic.I(0)))
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": tmpl},
		Q:         template.Domain{"v": predabs.QjV("j", []string{"0", "i", "n"})},
	}
}

// ArrayListTasks returns the Table 4 task list.
func ArrayListTasks() []Task {
	return []Task{
		{Name: "Consumer Producer", Property: "array/list", Build: ConsumerProducer},
		{Name: "Partition Array", Property: "array/list", Build: PartitionArray},
		{Name: "List Init", Property: "array/list", Build: ListInit},
		{Name: "List Delete", Property: "array/list", Build: ListDelete},
		{Name: "List Insert", Property: "array/list", Build: ListInsert},
	}
}
