package bench

import (
	"os"
	"testing"
	"time"
)

// Search tests run the actual invariant-inference algorithms on the paper's
// benchmarks. A fast representative subset always runs; the full sweep
// (which regenerates Table 6 and takes tens of minutes on one core) is
// enabled with VS3_SEARCH=1. EXPERIMENTS.md records results of full runs.

func fullSearch(t *testing.T) {
	t.Helper()
	if os.Getenv("VS3_SEARCH") == "" {
		t.Skip("full search sweep disabled; set VS3_SEARCH=1 (results recorded in EXPERIMENTS.md)")
	}
}

// runTask runs one task under a timeout per method and logs results,
// failing the test if no method proves it.
func runTask(t *testing.T, task Task, timeout time.Duration) {
	t.Helper()
	if testing.Short() {
		t.Skip("search benchmarks skipped in -short mode")
	}
	r := &Runner{Timeout: timeout}
	any := false
	for _, m := range r.Run(task) {
		switch {
		case m.Err != nil:
			t.Logf("%s/%s: %v", m.Task, m.Method, m.Err)
		case m.Proved:
			any = true
			t.Logf("%s/%s: proved in %v", m.Task, m.Method, m.Duration.Round(time.Millisecond))
			for _, pre := range m.Preconditions {
				t.Logf("  pre: %s", pre)
			}
		default:
			t.Logf("%s/%s: NOT proved (%v)", m.Task, m.Method, m.Duration.Round(time.Millisecond))
		}
	}
	if !any {
		t.Errorf("%s: no method succeeded", task.Name)
	}
}

// Fast representative subset: always runs.

func TestSearchQuickSorted(t *testing.T)      { runTask(t, SortednessTasks()[4], 3*time.Minute) }
func TestSearchQuickPreserves(t *testing.T)   { runTask(t, PreservationTasks()[4], 3*time.Minute) }
func TestSearchPartialInitPre(t *testing.T)   { runTask(t, FunctionalTasks()[0], 2*time.Minute) }
func TestSearchInitSynthesisPre(t *testing.T) { runTask(t, FunctionalTasks()[1], 2*time.Minute) }
func TestSearchQuickWorst(t *testing.T)       { runTask(t, WorstCaseTasks()[2], 3*time.Minute) }

// Full sweep: VS3_SEARCH=1.

func TestSearchSelectionSorted(t *testing.T) {
	fullSearch(t)
	runTask(t, SortednessTasks()[0], 5*time.Minute)
}
func TestSearchInsertionSorted(t *testing.T) {
	fullSearch(t)
	runTask(t, SortednessTasks()[1], 5*time.Minute)
}
func TestSearchBubbleSorted(t *testing.T) {
	fullSearch(t)
	runTask(t, SortednessTasks()[2], 5*time.Minute)
}
func TestSearchBubbleFlagSorted(t *testing.T) {
	fullSearch(t)
	runTask(t, SortednessTasks()[3], 5*time.Minute)
}
func TestSearchMergeSorted(t *testing.T) {
	fullSearch(t)
	runTask(t, SortednessTasks()[5], 5*time.Minute)
}
func TestSearchSelectionPreserves(t *testing.T) {
	fullSearch(t)
	runTask(t, PreservationTasks()[0], 5*time.Minute)
}
func TestSearchInsertionPreserves(t *testing.T) {
	fullSearch(t)
	runTask(t, PreservationTasks()[1], 5*time.Minute)
}
func TestSearchBubblePreserves(t *testing.T) {
	fullSearch(t)
	runTask(t, PreservationTasks()[2], 5*time.Minute)
}
func TestSearchBubbleFlagPreserves(t *testing.T) {
	fullSearch(t)
	runTask(t, PreservationTasks()[3], 5*time.Minute)
}
func TestSearchMergePreserves(t *testing.T) {
	fullSearch(t)
	runTask(t, PreservationTasks()[5], 5*time.Minute)
}
func TestSearchBinarySearchPre(t *testing.T) {
	fullSearch(t)
	runTask(t, FunctionalTasks()[2], 5*time.Minute)
}
func TestSearchMergeFunctionalPre(t *testing.T) {
	fullSearch(t)
	runTask(t, FunctionalTasks()[3], 6*time.Minute)
}
func TestSearchSelectionWorst(t *testing.T) {
	fullSearch(t)
	runTask(t, WorstCaseTasks()[0], 6*time.Minute)
}
func TestSearchInsertionWorst(t *testing.T) {
	fullSearch(t)
	runTask(t, WorstCaseTasks()[1], 6*time.Minute)
}
func TestSearchBubbleFlagWorst(t *testing.T) {
	fullSearch(t)
	runTask(t, WorstCaseTasks()[3], 6*time.Minute)
}
func TestSearchConsumerProducer(t *testing.T) {
	fullSearch(t)
	runTask(t, ArrayListTasks()[0], 4*time.Minute)
}
func TestSearchPartitionArray(t *testing.T) {
	fullSearch(t)
	runTask(t, ArrayListTasks()[1], 4*time.Minute)
}
func TestSearchListInit(t *testing.T) {
	fullSearch(t)
	runTask(t, ArrayListTasks()[2], 4*time.Minute)
}
func TestSearchListDelete(t *testing.T) { runTask(t, ArrayListTasks()[3], 2*time.Minute) }
func TestSearchListInsert(t *testing.T) { runTask(t, ArrayListTasks()[4], 2*time.Minute) }
