// Table and figure regeneration: one function per table/figure of the
// paper's evaluation (§7). Output is plain text with the same rows the
// paper reports; absolute times are this machine's, the shape is what is
// compared (see EXPERIMENTS.md).

package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/template"
)

func fmtDur(m Measurement) string {
	if m.Err != nil {
		return "timeout"
	}
	if !m.Proved {
		if m.Aborted {
			return "aborted"
		}
		if m.Truncated {
			return "fail*" // search truncated: gave up, not a definite negative
		}
		return "fail"
	}
	if m.Truncated {
		// Proved, but an exhaustive enumeration was clipped (precondition
		// tasks): the reported set may be incomplete.
		return fmt.Sprintf("%.2fs*", m.Duration.Seconds())
	}
	return fmt.Sprintf("%.2fs", m.Duration.Seconds())
}

// Table1 lists the ∀∃ preservation assertions proved (Table 1 of the paper).
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: assertions proved for element preservation")
	fmt.Fprintln(w, "  Merge Sort (inner):")
	fmt.Fprintln(w, "    forall y exists x. 0 <= y < n => A[y] = C[x] && 0 <= x < t")
	fmt.Fprintln(w, "    forall y exists x. 0 <= y < m => B[y] = C[x] && 0 <= x < t")
	fmt.Fprintln(w, "  Other sorting:")
	fmt.Fprintln(w, "    forall y exists x. 0 <= y < n => A0[y] = A[x] && 0 <= x < n")
}

// Table2 runs the worst-case precondition inferences and prints the
// preconditions found (Table 2).
func Table2(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "Table 2: preconditions for worst-case upper bounds")
	tasks := WorstCaseTasks()
	for ti, ms := range r.RunAll(tasks) {
		for _, m := range ms {
			fmt.Fprintf(w, "  %-22s [%s, %s]\n", tasks[ti].Name, m.Method, fmtDur(m))
			for _, pre := range m.Preconditions {
				fmt.Fprintf(w, "    pre: %s\n", pre)
			}
		}
	}
	fmt.Fprintln(w, "  Bubble Sort (n2)       precondition true (no assertion; same writes always)")
	fmt.Fprintln(w, "  Merge Sort (inner)     precondition true (no assertion; same writes always)")
}

// Table3 runs the functional-correctness precondition inferences (Table 3)
// and Table5 prints their times (Table 5); both come from the same runs.
func Table3And5(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "Table 3: preconditions inferred for functional correctness")
	type row struct {
		name string
		m    Measurement
	}
	var rows []row
	tasks := FunctionalTasks()
	for ti, ms := range r.RunAll(tasks) {
		for _, m := range ms {
			rows = append(rows, row{name: tasks[ti].Name, m: m})
			fmt.Fprintf(w, "  %-16s\n", tasks[ti].Name)
			for _, pre := range m.Preconditions {
				fmt.Fprintf(w, "    pre: %s\n", pre)
			}
		}
	}
	fmt.Fprintln(w, "Table 5: time for functional-correctness preconditions (GFP)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %s\n", r.name, fmtDur(r.m))
	}
}

// Table4 times the data-sensitive array/list programs under all three
// algorithms (Table 4).
func Table4(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "Table 4: time (secs) for data-sensitive array/list programs")
	fmt.Fprintf(w, "  %-20s %-10s %-10s %-10s\n", "Benchmark", "LFP", "GFP", "CFP")
	tasks := ArrayListTasks()
	for ti, ms := range r.RunAll(tasks) {
		times := map[core.Method]string{}
		for _, m := range ms {
			times[m.Method] = fmtDur(m)
		}
		fmt.Fprintf(w, "  %-20s %-10s %-10s %-10s\n",
			tasks[ti].Name, times[core.LFP], times[core.GFP], times[core.CFP])
	}
}

// Table6 times the sorting suite: sortedness and preservation under all
// three algorithms, plus the worst-case bound preconditions (Table 6).
func Table6(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "Table 6: time (secs) for sorting programs")
	fmt.Fprintf(w, "  %-20s | %-8s %-8s %-8s | %-8s %-8s %-8s | %-8s\n",
		"Benchmark", "sort-LFP", "sort-GFP", "sort-CFP", "pres-LFP", "pres-GFP", "pres-CFP", "bound")
	// All three sub-suites fan out as one big cell pool so a parallel
	// runner never idles between suites; the rows print in suite order.
	worst, presTasks, sorts := WorstCaseTasks(), PreservationTasks(), SortednessTasks()
	all := append(append(append([]Task(nil), worst...), presTasks...), sorts...)
	res := r.RunAll(all)
	bounds := map[string]string{}
	for ti := range worst {
		for _, m := range res[ti] {
			bounds[worst[ti].Name] = fmtDur(m)
		}
	}
	bounds["Bubble Sort (n2)"] = "0.00"
	bounds["Merge Sort (inner)"] = "0.00"
	pres := map[string]map[core.Method]string{}
	for ti := range presTasks {
		pres[presTasks[ti].Name] = map[core.Method]string{}
		for _, m := range res[len(worst)+ti] {
			pres[presTasks[ti].Name][m.Method] = fmtDur(m)
		}
	}
	for ti := range sorts {
		sorted := map[core.Method]string{}
		for _, m := range res[len(worst)+len(presTasks)+ti] {
			sorted[m.Method] = fmtDur(m)
		}
		p := pres[sorts[ti].Name]
		fmt.Fprintf(w, "  %-20s | %-8s %-8s %-8s | %-8s %-8s %-8s | %-8s\n",
			sorts[ti].Name,
			sorted[core.LFP], sorted[core.GFP], sorted[core.CFP],
			p[core.LFP], p[core.GFP], p[core.CFP],
			bounds[sorts[ti].Name])
	}
}

// Table7 times the non-unit-coefficient (general-LIA) family and reports the
// Fourier–Motzkin counters per cell. This table is the reproduction's own —
// the paper's evaluation stays inside the difference fragment — and exists to
// keep the incremental elimination engine's behavior visible: fm-scratch
// should stay near zero while fm-incr (plus cube hits) carries the load, and
// dormant must stay zero.
func Table7(w io.Writer, r *Runner) {
	fmt.Fprintln(w, "Table 7: non-unit-coefficient (general-LIA) programs")
	fmt.Fprintf(w, "  %-16s %-5s %-8s %10s %10s %10s %9s %8s\n",
		"Benchmark", "Alg", "time", "fm-scratch", "fm-incr", "cube-hits", "cap-hits", "dormant")
	tasks := LIATasks()
	for ti, ms := range r.RunAll(tasks) {
		for _, m := range ms {
			fmt.Fprintf(w, "  %-16s %-5s %-8s %10d %10d %10d %9d %8d\n",
				tasks[ti].Name, m.Method, fmtDur(m),
				m.FMScratch, m.FMIncremental, m.FMCubeHits, m.FMCapHits, m.DormantContexts)
		}
	}
}

// Figure4 prints the histogram of SMT query latencies accumulated in the
// runner's collector (Figure 4).
func Figure4(w io.Writer, c *stats.Collector) {
	fmt.Fprintln(w, "Figure 4: SMT query latency histogram")
	for _, b := range stats.DurationHistogram(c.QueryDurations()) {
		fmt.Fprintf(w, "  %-8s %d\n", b.Label, b.Count)
	}
}

// WithJunkPredicates wraps a problem builder, appending n irrelevant
// predicates to every unknown's vocabulary (the Figure 5 stressor).
func WithJunkPredicates(build func() *spec.Problem, n int) func() *spec.Problem {
	return func() *spec.Problem {
		p := build()
		junk := junkPreds(n)
		q := template.Domain{}
		for u, ps := range p.Q {
			q[u] = append(append([]logic.Formula(nil), ps...), junk...)
		}
		p.Q = q
		return p
	}
}

// junkPreds builds n syntactically distinct predicates over variables no
// benchmark program uses.
func junkPreds(n int) []logic.Formula {
	out := make([]logic.Formula, 0, n)
	for i := 0; i < n; i++ {
		a := logic.V(fmt.Sprintf("zz%c", 'a'+i%26))
		b := logic.V(fmt.Sprintf("zz%c", 'a'+(i/26+13)%26))
		out = append(out, logic.LeF(logic.Minus(a, b), logic.I(int64(i))))
	}
	return out
}

// Figure5 measures robustness to irrelevant predicates: the slowdown factor
// of each algorithm on a base task as junk predicates are added (Figure 5).
func Figure5(w io.Writer, r *Runner, base Task, counts []int) {
	fmt.Fprintln(w, "Figure 5: slowdown factor vs. number of irrelevant predicates")
	baseline := map[core.Method]time.Duration{}
	for _, m := range r.Run(base) {
		if m.Err == nil && m.Proved {
			baseline[m.Method] = m.Duration
		}
	}
	fmt.Fprintf(w, "  %-6s %-10s %-10s %-10s\n", "junk", "LFP", "GFP", "CFP")
	for _, n := range counts {
		t := base
		t.Build = WithJunkPredicates(base.Build, n)
		factors := map[core.Method]string{core.LFP: "-", core.GFP: "-", core.CFP: "-"}
		for _, m := range r.Run(t) {
			if m.Err != nil {
				factors[m.Method] = "timeout"
			} else if !m.Proved {
				factors[m.Method] = "fail"
			} else if b := baseline[m.Method]; b > 0 {
				factors[m.Method] = fmt.Sprintf("%.1fx", float64(m.Duration)/float64(b))
			}
		}
		fmt.Fprintf(w, "  %-6d %-10s %-10s %-10s\n", n, factors[core.LFP], factors[core.GFP], factors[core.CFP])
	}
}

// Figure6 prints the sizes of OptimalNegativeSolutions solutions (Figure 6).
func Figure6(w io.Writer, c *stats.Collector) {
	fmt.Fprintln(w, "Figure 6: predicates per OptimalNegativeSolutions solution")
	hist := stats.Histogram(c.NegSolutionSizes(), []int{0, 1, 2, 3, 4})
	for _, label := range []string{"<=0", "<=1", "<=2", "<=3", "<=4", ">4"} {
		if hist[label] > 0 {
			fmt.Fprintf(w, "  %-4s %d\n", label, hist[label])
		}
	}
}

// Figure7 prints how many solutions OptimalSolutions calls return (Figure 7).
func Figure7(w io.Writer, c *stats.Collector) {
	fmt.Fprintln(w, "Figure 7: solutions per OptimalSolutions call")
	hist := stats.Histogram(c.OptSolutionCounts(), []int{0, 1, 2, 3, 4, 5, 6})
	for _, label := range []string{"<=0", "<=1", "<=2", "<=3", "<=4", "<=5", "<=6", ">6"} {
		if hist[label] > 0 {
			fmt.Fprintf(w, "  %-4s %d\n", label, hist[label])
		}
	}
}

// Figure8 summarizes the iterative candidate-set sizes (Figure 8).
func Figure8(w io.Writer, c *stats.Collector) {
	fmt.Fprintln(w, "Figure 8: iterative candidate-set sizes per step")
	sizes := c.Candidates()
	fmt.Fprintf(w, "  steps observed: %d, median candidates: %d, max: %d\n",
		len(sizes), stats.Median(sizes), stats.Max(sizes))
	hist := stats.Histogram(sizes, []int{1, 2, 4, 8, 16, 32})
	for _, label := range []string{"<=1", "<=2", "<=4", "<=8", "<=16", "<=32", ">32"} {
		if hist[label] > 0 {
			fmt.Fprintf(w, "  %-5s %d\n", label, hist[label])
		}
	}
}

// Figure9 summarizes the CFP SAT instance sizes (Figure 9).
func Figure9(w io.Writer, c *stats.Collector) {
	fmt.Fprintln(w, "Figure 9: CFP SAT formula sizes")
	clauses, vars := c.SATSizes()
	fmt.Fprintf(w, "  instances: %d, median clauses: %d, max clauses: %d, median vars: %d\n",
		len(clauses), stats.Median(clauses), stats.Max(clauses), stats.Median(vars))
}
