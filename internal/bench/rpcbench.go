package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/load"
)

// Bench9Report is the BENCH_9.json schema: the binary VS3R transport
// head-to-head against HTTP/JSON over the same warmed fleet, plus a
// degraded-fleet comparison of hedged vs unhedged routing. Produced by
// TestRPCBench in cmd/vs3router (`make bench-rpc`); rendered by
// `benchtab -table 9` from the committed file.
type Bench9Report struct {
	Report   string                 `json:"report"`
	Purpose  string                 `json:"purpose"`
	Host     string                 `json:"host"`
	GoMaxP   int                    `json:"gomaxprocs"`
	Corpus   int                    `json:"corpus_items"`
	Distinct int                    `json:"distinct_problems"`
	Requests int                    `json:"requests_per_arm"`
	Arms     map[string]load.Result `json:"arms"`
	Findings Bench9Findings         `json:"findings"`
	Notes    []string               `json:"notes"`
}

// Bench9Findings are the gated claims: binary rpc beats HTTP/JSON on p95
// latency and throughput with identical verdicts, and hedging caps the
// p99 a degraded backend would otherwise impose.
type Bench9Findings struct {
	HTTPP95MS         float64 `json:"http_p95_ms"`
	RPCP95MS          float64 `json:"rpc_p95_ms"`
	P95SpeedupX       float64 `json:"http_over_rpc_p95"`
	HTTPThroughput    float64 `json:"http_throughput_rps"`
	RPCThroughput     float64 `json:"rpc_throughput_rps"`
	ThroughputGainX   float64 `json:"rpc_over_http_throughput"`
	UnhedgedP99MS     float64 `json:"slow_unhedged_p99_ms"`
	HedgedP99MS       float64 `json:"slow_hedged_p99_ms"`
	P99ReductionX     float64 `json:"unhedged_over_hedged_p99"`
	HedgeFired        int64   `json:"hedge_fired"`
	HedgeWon          int64   `json:"hedge_won"`
	VerdictsIdentical bool    `json:"verdicts_identical_across_arms"`
}

// ReadBench9 loads a committed BENCH_9.json.
func ReadBench9(path string) (Bench9Report, error) {
	var rep Bench9Report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Report != "BENCH_9" {
		return rep, fmt.Errorf("%s: report %q, want BENCH_9", path, rep.Report)
	}
	return rep, nil
}

// WriteBench9Table renders the transport and hedging comparison.
func WriteBench9Table(w io.Writer, rep Bench9Report) {
	fmt.Fprintf(w, "Table 9: binary rpc transport vs HTTP/JSON (%s, GOMAXPROCS=%d)\n", rep.Host, rep.GoMaxP)
	fmt.Fprintf(w, "%d corpus items (%d distinct problems), %d requests per arm\n\n", rep.Corpus, rep.Distinct, rep.Requests)
	fmt.Fprintf(w, "%-16s %8s %8s %8s %10s %6s %6s\n", "arm", "p50 ms", "p95 ms", "p99 ms", "req/s", "ok", "bad")
	for _, name := range []string{"http", "rpc", "slow_unhedged", "slow_hedged"} {
		arm, ok := rep.Arms[name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "%-16s %8.2f %8.2f %8.2f %10.1f %6d %6d\n",
			name, arm.P50MS, arm.P95MS, arm.P99MS, arm.ThroughputRPS,
			arm.OK, arm.Incorrect+arm.Errors)
	}
	f := rep.Findings
	fmt.Fprintf(w, "\ntransport: rpc p95 %.2fms vs http %.2fms (%.2fx), throughput %.1f vs %.1f req/s (%.2fx)\n",
		f.RPCP95MS, f.HTTPP95MS, f.P95SpeedupX, f.RPCThroughput, f.HTTPThroughput, f.ThroughputGainX)
	fmt.Fprintf(w, "hedging:   degraded-fleet p99 %.1fms hedged vs %.1fms unhedged (%.1fx), %d fired / %d won\n",
		f.HedgedP99MS, f.UnhedgedP99MS, f.P99ReductionX, f.HedgeFired, f.HedgeWon)
	fmt.Fprintf(w, "verdicts identical across arms: %v\n", f.VerdictsIdentical)
}
