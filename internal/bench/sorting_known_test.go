package bench

import (
	"testing"

	"repro/internal/optimal"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/template"
)

// knownSolution builds a Solution from predicate source strings per unknown.
func knownSolution(m map[string][]string) template.Solution {
	out := template.Solution{}
	for u, ps := range m {
		out[u] = template.NewPredSet(preds(ps...)...)
	}
	return out
}

// checkKnown asserts that the hand-derived invariant solution passes
// CheckAll — isolating SMT capability from search capability.
func checkKnown(t *testing.T, p *spec.Problem, sol template.Solution) {
	t.Helper()
	eng := optimal.New(smt.NewSolver(smt.Options{}))
	ok, fail := p.CheckAll(eng.S, sol)
	if !ok {
		t.Fatalf("known solution rejected; failing path: %v", fail)
	}
}

func TestSelectionSortKnownInvariant(t *testing.T) {
	checkKnown(t, SelectionSortSorted(), knownSolution(map[string][]string{
		"u0": {"0 <= i"},
		"u1": {"0 <= k1", "k1 < k2", "k2 < n", "k1 < i"},
		"v0": {"i <= min", "min < j", "i < j", "i < n - 1", "0 <= i", "j <= n"},
		"v1": {"0 <= k1", "k1 < k2", "k2 < n", "k1 < i"},
		"v2": {"i <= k", "k < j"},
	}))
}

func TestInsertionSortKnownInvariant(t *testing.T) {
	checkKnown(t, InsertionSortSorted(), knownSolution(map[string][]string{
		"u0": {"1 <= i"},
		"u1": {"0 <= k1", "k1 < k2", "k2 < i"},
		"v0": {"j >= -1", "j < i", "1 <= i", "i < n"},
		"v1": {"0 <= k1", "k1 < k2", "k2 <= i", "k2 != j + 1"},
		"v2": {"j + 1 < k", "k <= i"},
	}))
}

func TestBubbleSortKnownInvariant(t *testing.T) {
	checkKnown(t, BubbleSortSorted(), knownSolution(map[string][]string{
		"u0": {"i <= n"},
		"u1": {"0 <= k1", "k1 < k2", "k2 < n", "i <= k2"},
		"v0": {"0 <= j", "j < i", "i <= n", "1 < i"},
		"v1": {"0 <= k1", "k1 < k2", "k2 < n", "i <= k2"},
		"v2": {"0 <= k", "k < j"},
	}))
}

func TestBubbleSortFlagKnownInvariant(t *testing.T) {
	checkKnown(t, BubbleSortFlagSorted(), knownSolution(map[string][]string{
		"u0": {"0 <= swapped", "swapped <= 1"},
		"u1": {"swapped <= 0", "0 <= k", "k < n - 1"},
		"v0": {"0 <= swapped", "swapped <= 1", "0 <= j"},
		"v1": {"swapped <= 0", "0 <= k", "k < j"},
	}))
}

func TestQuickSortInnerKnownInvariant(t *testing.T) {
	checkKnown(t, QuickSortInnerSorted(), knownSolution(map[string][]string{
		"v0": {"0 <= s", "s <= i"},
		"v1": {"0 <= k", "k < s"},
		"v2": {"s <= k", "k < i"},
	}))
}

func TestMergeSortInnerKnownInvariant(t *testing.T) {
	checkKnown(t, MergeSortInnerSorted(), knownSolution(map[string][]string{
		"w0":  {"0 <= i", "0 <= j", "0 <= t"},
		"wa":  {"0 <= k1", "k1 < k2", "k2 < n"},
		"wb":  {"0 <= k1", "k1 < k2", "k2 < m"},
		"wc":  {"0 <= k1", "k1 < k2", "k2 < t"},
		"wxa": {"0 <= k1", "k1 < t", "i <= k2", "k2 < n"},
		"wxb": {"0 <= k1", "k1 < t", "j <= k2", "k2 < m"},

		"x0":  {"0 <= i", "0 <= t", "0 <= j"},
		"xd1": {"n <= i"},
		"xd2": {"m <= j"},
		"xa":  {"0 <= k1", "k1 < k2", "k2 < n"},
		"xb":  {"0 <= k1", "k1 < k2", "k2 < m"},
		"xc":  {"0 <= k1", "k1 < k2", "k2 < t"},
		"xxa": {"0 <= k1", "k1 < t", "i <= k2", "k2 < n"},
		"xxb": {"0 <= k1", "k1 < t", "j <= k2", "k2 < m"},

		"y0":  {"0 <= j", "0 <= t", "n <= i"},
		"yb":  {"0 <= k1", "k1 < k2", "k2 < m"},
		"yc":  {"0 <= k1", "k1 < k2", "k2 < t"},
		"yxb": {"0 <= k1", "k1 < t", "j <= k2", "k2 < m"},
	}))
}
