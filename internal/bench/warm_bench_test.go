package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// TestWarmBench is `make bench-warm`: the default suite run cold on a fresh
// knowledge store, then again reopening the same store — a daemon restart.
// The warm lifetime must prove exactly what the cold one proved with at
// least 5x less from-scratch work (SMT queries + Fourier–Motzkin
// eliminations). Writes BENCH_8.json when VS3_BENCH_OUT is set; when
// VS3_BENCH_BASE points at a previous BENCH_8.json, the warm arm must not
// regress above 2x the recorded warm baseline work.
func TestWarmBench(t *testing.T) {
	if testing.Short() {
		t.Skip("warm-restart benchmark is not a -short test")
	}
	rep, err := RunWarmBench(t.TempDir(), "default", 2*time.Minute, runtime.GOMAXPROCS(0), DefaultSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range append(append([]CellReport{}, rep.Cold.Cells...), rep.Warm.Cells...) {
		if c.Err != "" {
			t.Fatalf("%s/%s: %s", c.Task, c.Method, c.Err)
		}
	}
	if rep.Cold.ColdStart != true {
		t.Error("first lifetime did not report a cold store")
	}
	if rep.Warm.ColdStart {
		t.Error("second lifetime reported a cold store: nothing persisted or load failed")
	}
	if rep.Warm.LoadedRecords == 0 {
		t.Error("warm lifetime loaded zero records")
	}
	if !rep.Findings.VerdictsIdentical {
		t.Error("warm restart changed at least one verdict")
	}
	t.Logf("cold: work=%d (q=%d fm=%d+%d) %.2fs", rep.Findings.ColdWork,
		rep.Cold.Queries, rep.Cold.FMScratch, rep.Cold.FMIncremental, rep.Cold.CellSeconds)
	t.Logf("warm: work=%d (q=%d fm=%d+%d) hits=%d lemmas=%d cores=%d %.2fs", rep.Findings.WarmWork,
		rep.Warm.Queries, rep.Warm.FMScratch, rep.Warm.FMIncremental,
		rep.Warm.StoreHits, rep.Warm.WarmLemmas, rep.Warm.WarmCores, rep.Warm.CellSeconds)
	if rep.Findings.WarmWork*5 > rep.Findings.ColdWork {
		t.Errorf("warm restart did not cut from-scratch work >=5x: cold %d vs warm %d",
			rep.Findings.ColdWork, rep.Findings.WarmWork)
	}
	if rep.Warm.StoreHits == 0 {
		t.Error("warm lifetime answered nothing from the store")
	}

	if base := os.Getenv("VS3_BENCH_BASE"); base != "" {
		var prev WarmReport
		b, err := os.ReadFile(base)
		if err != nil {
			t.Logf("baseline %s not readable (%v); skipping regression gate", base, err)
		} else if err := json.Unmarshal(b, &prev); err != nil {
			t.Fatalf("baseline %s: %v", base, err)
		} else if prev.Findings.WarmWork > 0 && rep.Findings.WarmWork > 2*prev.Findings.WarmWork {
			t.Errorf("warm from-scratch work regressed above 2x baseline: %d vs recorded %d",
				rep.Findings.WarmWork, prev.Findings.WarmWork)
		}
	}

	out := os.Getenv("VS3_BENCH_OUT")
	if out == "" {
		return
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestWarmVsCompactedExamples is the compaction arm of the verdict-identity
// sweep behind `make test-differential`: every examples/ problem is solved
// cold on a fresh store, the log is compacted to a new generation, and a
// lifetime over the compacted store must agree exactly with the cold one —
// same verdicts, same inferred precondition sets — while answering from the
// store (compaction must lose no live knowledge).
func TestWarmVsCompactedExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples warm/compacted sweep skipped in -short mode (run via make test-differential)")
	}
	for _, cell := range exampleCells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			dir := t.TempDir()
			lifetime := func() (verdicts []bool, pres []string, loaded int64) {
				cfg := core.Config{}
				st, err := store.Open(dir, store.Options{Params: cfg.SMT.StoreParams(), Logf: t.Logf})
				if err != nil {
					t.Fatalf("store.Open: %v", err)
				}
				ss := st.Stats()
				loaded = ss.LoadedLemmas + ss.LoadedCores + ss.LoadedVerdicts + ss.LoadedConsistency + ss.LoadedOutcomes
				defer func() {
					if err := st.Close(); err != nil {
						t.Fatalf("store.Close: %v", err)
					}
				}()
				cfg.Knowledge = st
				v := core.New(cfg)
				if cell.methods == nil {
					ps, _, err := v.InferPreconditions(cell.build())
					if err != nil {
						t.Fatal(err)
					}
					for _, p := range ps {
						pres = append(pres, p.Pre.String())
					}
					return nil, pres, loaded
				}
				for _, m := range cell.methods {
					o, err := v.Verify(cell.build(), m)
					if err != nil {
						t.Fatal(err)
					}
					verdicts = append(verdicts, o.Proved)
				}
				return verdicts, nil, loaded
			}

			coldV, coldP, _ := lifetime()

			st, err := store.Open(dir, store.Options{Params: core.Config{}.SMT.StoreParams(), Logf: t.Logf})
			if err != nil {
				t.Fatalf("reopen for compaction: %v", err)
			}
			reclaimed, err := st.Compact()
			if cerr := st.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				t.Fatalf("compact: %v", err)
			}
			t.Logf("compacted: reclaimed %d bytes", reclaimed)

			warmV, warmP, warmLoaded := lifetime()
			if len(coldV) != len(warmV) {
				t.Fatalf("verdict count changed: %d vs %d", len(coldV), len(warmV))
			}
			for i := range coldV {
				if coldV[i] != warmV[i] {
					t.Errorf("method %v: cold proved=%v, compacted-warm proved=%v", cell.methods[i], coldV[i], warmV[i])
				}
			}
			if len(coldP) != len(warmP) {
				t.Fatalf("precondition count changed: cold %v vs compacted-warm %v", coldP, warmP)
			}
			seen := map[string]bool{}
			for _, p := range coldP {
				seen[p] = true
			}
			for _, p := range warmP {
				if !seen[p] {
					t.Errorf("compacted-warm lifetime inferred precondition %q absent from cold set %v", p, coldP)
				}
			}
			if warmLoaded == 0 {
				t.Error("compacted store loaded zero records; compaction dropped live knowledge")
			}
		})
	}
}

// TestWarmVsColdExamples is the verdict-identity differential sweep behind
// `make test-differential`: every examples/ problem is solved cold on a
// fresh store, then again on a reopened store, and the two lifetimes must
// agree exactly — same verdicts, same inferred precondition sets.
func TestWarmVsColdExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("examples warm/cold sweep skipped in -short mode (run via make test-differential)")
	}
	for _, cell := range exampleCells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			dir := t.TempDir()
			lifetime := func() (verdicts []bool, pres []string) {
				cfg := core.Config{}
				st, err := store.Open(dir, store.Options{Params: cfg.SMT.StoreParams(), Logf: t.Logf})
				if err != nil {
					t.Fatalf("store.Open: %v", err)
				}
				defer func() {
					if err := st.Close(); err != nil {
						t.Fatalf("store.Close: %v", err)
					}
				}()
				cfg.Knowledge = st
				v := core.New(cfg)
				if cell.methods == nil {
					ps, _, err := v.InferPreconditions(cell.build())
					if err != nil {
						t.Fatal(err)
					}
					for _, p := range ps {
						pres = append(pres, p.Pre.String())
					}
					return nil, pres
				}
				for _, m := range cell.methods {
					o, err := v.Verify(cell.build(), m)
					if err != nil {
						t.Fatal(err)
					}
					verdicts = append(verdicts, o.Proved)
				}
				return verdicts, nil
			}

			coldV, coldP := lifetime()
			warmV, warmP := lifetime()
			if len(coldV) != len(warmV) {
				t.Fatalf("verdict count changed: %d vs %d", len(coldV), len(warmV))
			}
			for i := range coldV {
				if coldV[i] != warmV[i] {
					t.Errorf("method %v: cold proved=%v, warm proved=%v", cell.methods[i], coldV[i], warmV[i])
				}
			}
			if len(coldP) != len(warmP) {
				t.Fatalf("precondition count changed: cold %v vs warm %v", coldP, warmP)
			}
			seen := map[string]bool{}
			for _, p := range coldP {
				seen[p] = true
			}
			for _, p := range warmP {
				if !seen[p] {
					t.Errorf("warm lifetime inferred precondition %q absent from cold set %v", p, coldP)
				}
			}
		})
	}
}
