package bench

import (
	"testing"

	"repro/internal/optimal"
	"repro/internal/smt"
)

// TestDebugListDeletePaths prints the paths and checks the expected
// invariant solution for ListDelete (debugging aid kept as a regression
// test: the known solution must pass CheckAll).
func TestDebugListDeletePaths(t *testing.T) {
	p := ListDelete()
	for _, path := range p.Paths() {
		t.Logf("path: %v", path)
	}
	eng := optimal.New(smt.NewSolver(smt.Options{}))
	sol := knownSolution(map[string][]string{"v1": {"0 <= k", "k < n"}})
	if ok, fail := p.CheckAll(eng.S, sol); !ok {
		t.Fatalf("known ListDelete solution rejected; failing path %v", fail)
	}
}

// TestDebugListInitKnown checks the expected ListInit solution.
func TestDebugListInitKnown(t *testing.T) {
	p := ListInit()
	eng := optimal.New(smt.NewSolver(smt.Options{}))
	sol := knownSolution(map[string][]string{
		"v0": {"x >= 0"},
		"v1": {"0 <= k", "k < n"},
		"v2": {"0 <= k", "k < x"},
	})
	if ok, fail := p.CheckAll(eng.S, sol); !ok {
		t.Fatalf("known ListInit solution rejected; failing path %v", fail)
	}
	t.Logf("SMT queries: %d, cache hits: %d", eng.S.NumQueries(), eng.S.NumCacheHits())
}
