package bench

import "testing"

func TestSelectionSortPreservesKnown(t *testing.T) {
	checkKnown(t, SelectionSortPreserves(), knownSolution(map[string][]string{
		"u0": {"0 <= i"},
		"ug": {"0 <= y", "y < n"},
		"uh": {"0 <= x", "x < n"},
		"v0": {"i <= min", "min < j", "j <= n", "i < n - 1", "0 <= i"},
		"vg": {"0 <= y", "y < n"},
		"vh": {"0 <= x", "x < n"},
	}))
}

func TestQuickSortInnerPreservesKnown(t *testing.T) {
	checkKnown(t, QuickSortInnerPreserves(), knownSolution(map[string][]string{
		"v0": {"0 <= s", "s <= i"},
		"vg": {"0 <= y", "y < n"},
		"vh": {"0 <= x", "x < n"},
	}))
}

func TestBubbleSortPreservesKnown(t *testing.T) {
	checkKnown(t, BubbleSortPreserves(), knownSolution(map[string][]string{
		"u0": {"i <= n"},
		"ug": {"0 <= y", "y < n"},
		"uh": {"0 <= x", "x < n"},
		"v0": {"0 <= j", "i <= n"},
		"vg": {"0 <= y", "y < n"},
		"vh": {"0 <= x", "x < n"},
	}))
}

func TestBubbleSortFlagPreservesKnown(t *testing.T) {
	checkKnown(t, BubbleSortFlagPreserves(), knownSolution(map[string][]string{
		"ug": {"0 <= y", "y < n"},
		"uh": {"0 <= x", "x < n"},
		"v0": {"0 <= j"},
		"vg": {"0 <= y", "y < n"},
		"vh": {"0 <= x", "x < n"},
	}))
}

func TestInsertionSortPreservesKnown(t *testing.T) {
	checkKnown(t, InsertionSortPreserves(), knownSolution(map[string][]string{
		"u0": {"1 <= i"},
		"us": {"i <= y", "y < n"},
		"ug": {"0 <= y", "y < i", "y < n"},
		"uh": {"0 <= x", "x < i", "x < n"},
		"v0": {"val = A0[i]", "j >= -1", "j < i", "1 <= i", "i < n"},
		"vs": {"i < y", "y < n"},
		"vg": {"0 <= y", "y < i"},
		"vh": {"0 <= x", "x <= i", "x != j + 1"},
	}))
}

func TestMergeSortInnerPreservesKnown(t *testing.T) {
	sol := map[string][]string{}
	for _, p := range []string{"w", "x", "z"} {
		sol[p+"0"] = []string{"0 <= i", "0 <= j", "0 <= t"}
		sol[p+"ga"] = []string{"0 <= y", "y < i"}
		sol[p+"ha"] = []string{"0 <= x", "x < t"}
		sol[p+"gb"] = []string{"0 <= y", "y < j"}
		sol[p+"hb"] = []string{"0 <= x", "x < t"}
	}
	sol["z0"] = append(sol["z0"], "n <= i")
	checkKnown(t, MergeSortInnerPreserves(), knownSolution(sol))
}
