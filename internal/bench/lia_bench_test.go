package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/smt"
	"repro/internal/stats"
)

// Known inductive invariants for the scaled family, checked semantically so a
// search regression is distinguishable from a wrong benchmark definition.

func TestScaledInitKnownInvariant(t *testing.T) {
	checkKnown(t, ScaledInit(), knownSolution(map[string][]string{
		"v0": {"j <= 2*i", "j >= 2*i"},
		"v1": {"0 <= k", "k < i"},
	}))
}

func TestDoubleStrideKnownInvariant(t *testing.T) {
	checkKnown(t, DoubleStride(), knownSolution(map[string][]string{
		"v0": {"j <= 2*i", "j >= 2*i", "i <= n"},
	}))
}

func TestHalfBoundKnownInvariant(t *testing.T) {
	checkKnown(t, HalfBound(), knownSolution(map[string][]string{
		"v0": {"n >= 2*i - 1"},
	}))
}

// TestLIANoDormancy is the dormancy regression for the tentpole: solving the
// non-unit-coefficient family must keep every persistent context live (the
// general-LIA checker handles what used to trigger dormancy) and must route
// theory checks through it.
func TestLIANoDormancy(t *testing.T) {
	for _, task := range LIATasks() {
		v := core.New(core.Config{})
		o, err := v.Verify(task.Build(), core.LFP)
		if err != nil {
			t.Fatalf("%s: %v", task.Name, err)
		}
		if !o.Proved {
			t.Errorf("%s: not proved", task.Name)
		}
		s := v.Engine().S
		if s.NumContexts() == 0 {
			t.Errorf("%s: no persistent context created", task.Name)
		}
		if n := s.NumDormantContexts(); n != 0 {
			t.Errorf("%s: %d contexts went dormant; want 0", task.Name, n)
		}
		if s.NumFMIncremental()+s.NumFMCubeHits() == 0 {
			t.Errorf("%s: no theory check went through the persistent general-LIA checker", task.Name)
		}
	}
}

// bench7Report is the BENCH_7.json schema.
type bench7Report struct {
	Report   string             `json:"report"`
	Purpose  string             `json:"purpose"`
	Host     string             `json:"host"`
	GoMaxP   int                `json:"gomaxprocs"`
	Arms     map[string]*Report `json:"arms"`
	Findings struct {
		ScratchIncremental  int64   `json:"fm_scratch_incremental"`
		ScratchFromScratch  int64   `json:"fm_scratch_noincremental"`
		ScratchRatio        float64 `json:"noincremental_over_incremental_fm_scratch"`
		IncrementalRuns     int64   `json:"fm_incremental_runs"`
		IncrementalCellSecs float64 `json:"incremental_cell_seconds"`
		FromScratchCellSecs float64 `json:"noincremental_cell_seconds"`
		VerdictsIdentical   bool    `json:"verdicts_identical"`
		DormantContexts     int64   `json:"dormant_contexts_incremental"`
	} `json:"findings"`
	Notes []string `json:"notes"`
}

func runLIAArm(t *testing.T, cfg core.Config) *Report {
	t.Helper()
	r := &Runner{Config: cfg, Stats: stats.New(), Timeout: 2 * time.Minute}
	start := time.Now()
	results := r.RunAll(LIATasks())
	rep := &Report{Suite: "lia", Parallel: 1,
		WallSeconds: time.Since(start).Seconds(), CellSeconds: r.CellTime().Seconds()}
	for _, ms := range results {
		for _, m := range ms {
			if m.Err != nil {
				t.Fatalf("%s/%s: %v", m.Task, m.Method, m.Err)
			}
			rep.Queries += m.Queries
			rep.CacheHits += m.CacheHits
			rep.AssumptionProbes += m.AssumptionProbes
			rep.FMScratch += m.FMScratch
			rep.FMIncremental += m.FMIncremental
			cell := CellReport{
				Task: m.Task, Property: m.Property, Method: m.Method.String(),
				Proved: m.Proved, Seconds: m.Duration.Seconds(),
				Queries: m.Queries, CacheHits: m.CacheHits,
				Contexts: m.Contexts, AssumptionProbes: m.AssumptionProbes,
				FMScratch: m.FMScratch, FMIncremental: m.FMIncremental,
				FMCubeHits: m.FMCubeHits, FMCapHits: m.FMCapHits,
				DormantContexts: m.DormantContexts,
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep
}

// TestLIABench is `make bench-lia`: cold (NoIncremental, every general-LIA
// theory check a from-scratch elimination) versus incremental (persistent
// LinChecker per context) on the scaled family, with byte-identical verdicts
// per cell and a ≥3x reduction in from-scratch eliminations. Writes
// BENCH_7.json when VS3_BENCH_OUT is set.
func TestLIABench(t *testing.T) {
	if testing.Short() {
		t.Skip("LIA benchmark is not a -short test")
	}
	inc := runLIAArm(t, core.Config{})
	cold := runLIAArm(t, core.Config{SMT: smt.Options{NoIncremental: true}})

	if len(inc.Cells) != len(cold.Cells) {
		t.Fatalf("arm cell counts differ: %d vs %d", len(inc.Cells), len(cold.Cells))
	}
	verdictsIdentical := true
	var dormant int64
	for i := range inc.Cells {
		a, b := inc.Cells[i], cold.Cells[i]
		if a.Task != b.Task || a.Method != b.Method {
			t.Fatalf("cell %d mismatch: %s/%s vs %s/%s", i, a.Task, a.Method, b.Task, b.Method)
		}
		if a.Proved != b.Proved {
			verdictsIdentical = false
			t.Errorf("%s/%s: incremental proved=%v, from-scratch proved=%v", a.Task, a.Method, a.Proved, b.Proved)
		}
		if !a.Proved {
			t.Errorf("%s/%s: not proved", a.Task, a.Method)
		}
		dormant += a.DormantContexts
	}
	if dormant != 0 {
		t.Errorf("incremental arm sent %d contexts dormant; want 0", dormant)
	}
	t.Logf("incremental: fm_scratch=%d fm_incremental=%d cells=%.2fs",
		inc.FMScratch, inc.FMIncremental, inc.CellSeconds)
	t.Logf("from-scratch: fm_scratch=%d cells=%.2fs", cold.FMScratch, cold.CellSeconds)
	if inc.FMScratch*3 > cold.FMScratch {
		t.Errorf("from-scratch eliminations not reduced >=3x: incremental %d vs cold %d",
			inc.FMScratch, cold.FMScratch)
	}
	if inc.CellSeconds >= cold.CellSeconds {
		t.Logf("warning: incremental cell time %.2fs not below from-scratch %.2fs on this run",
			inc.CellSeconds, cold.CellSeconds)
	}

	out := os.Getenv("VS3_BENCH_OUT")
	if out == "" {
		return
	}
	rep := bench7Report{
		Report:  "BENCH_7",
		Purpose: "persistent incremental Fourier-Motzkin (LinChecker) vs from-scratch elimination on the non-unit-coefficient benchmark family",
		Host:    runtime.GOOS + "/" + runtime.GOARCH,
		GoMaxP:  runtime.GOMAXPROCS(0),
		Arms:    map[string]*Report{"incremental": inc, "noincremental": cold},
	}
	rep.Findings.ScratchIncremental = inc.FMScratch
	rep.Findings.ScratchFromScratch = cold.FMScratch
	if inc.FMScratch > 0 {
		rep.Findings.ScratchRatio = float64(cold.FMScratch) / float64(inc.FMScratch)
	}
	rep.Findings.IncrementalRuns = inc.FMIncremental
	rep.Findings.IncrementalCellSecs = inc.CellSeconds
	rep.Findings.FromScratchCellSecs = cold.CellSeconds
	rep.Findings.VerdictsIdentical = verdictsIdentical
	rep.Findings.DormantContexts = dormant
	rep.Notes = []string{
		"arms run sequentially on one machine; each cell is a fresh Verifier with a cold SMT cache",
		"fm_scratch counts lia.Check calls on non-difference systems outside any persistent checker; the incremental arm routes those checks through per-context LinCheckers (fm_incremental runs + cube hits) instead",
		"verdicts compared cell-by-cell across arms; the family's known invariants are pinned separately by TestScaledInitKnownInvariant and friends",
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
