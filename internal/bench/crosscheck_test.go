package bench

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/logic"
)

// TestDiscoveredInvariantsHoldOnTraces verifies end to end that the
// invariants the tool discovers are true of actual executions: it runs the
// verifier on quicksort's partition step, instantiates the loop template
// with the discovered solution, executes the program on random inputs, and
// evaluates the invariant at every recorded loop-header state.
func TestDiscoveredInvariantsHoldOnTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end cross-check skipped in -short mode")
	}
	p := QuickSortInnerSorted()
	v := core.New(core.Config{})
	out, err := v.Verify(p, core.LFP)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Proved {
		t.Fatal("quick sort partition not proved")
	}
	inv := out.Invariants["loop"]
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := int64(rng.Intn(7))
		env := logic.NewEnv(-3, n+3)
		env.Ints["n"] = n
		env.Ints["pivot"] = int64(rng.Intn(11) - 5)
		cells := make([]int64, n)
		for i := range cells {
			cells[i] = int64(rng.Intn(11) - 5)
		}
		env.SetArr("A", cells)
		res, err := interp.RunClean(p.Prog, env, interp.Options{RecordCuts: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.AssertFailed != nil {
			t.Fatalf("trial %d: program assertion failed concretely: %v", trial, res.AssertFailed)
		}
		if bad := interp.CheckInvariant(res, "loop", inv); bad != nil {
			t.Fatalf("trial %d: discovered invariant %v violated at state i=%d s=%d A=%v",
				trial, inv, bad.Ints["i"], bad.Ints["s"], bad.Arrs["A"])
		}
	}
}

// TestWorstCasePreconditionForcesWorstCase checks the §6 claim concretely:
// under the inferred worst-case precondition for the quicksort partition, a
// swap happens in every iteration (the in-program assert never fails); and
// on an input violating it, the assert can fail.
func TestWorstCasePreconditionForcesWorstCase(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end cross-check skipped in -short mode")
	}
	p := QuickSortInnerWorstCase()
	v := core.New(core.Config{})
	pres, _, err := v.InferPreconditions(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres) == 0 {
		t.Fatal("no worst-case precondition inferred")
	}
	pre := pres[0].Pre
	rng := rand.New(rand.NewSource(3))
	okTrials := 0
	for trial := 0; trial < 200; trial++ {
		n := int64(1 + rng.Intn(6))
		env := logic.NewEnv(-3, n+3)
		env.Ints["n"] = n
		cells := make([]int64, n)
		for i := range cells {
			cells[i] = int64(rng.Intn(7) - 3)
		}
		env.SetArr("A", cells)
		if !env.EvalFormula(pre) {
			continue // input does not satisfy the precondition
		}
		okTrials++
		res, err := interp.RunClean(p.Prog, env, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.AssertFailed != nil {
			t.Fatalf("trial %d: precondition %v held but worst-case assert failed on %v",
				trial, pre, cells)
		}
	}
	if okTrials == 0 {
		t.Fatal("no sampled input satisfied the precondition; sampler too narrow")
	}
	// A strictly descending array violates "A[0] is minimum" (for n ≥ 2)
	// and must be able to break the assert.
	env := logic.NewEnv(-3, 8)
	env.Ints["n"] = 3
	env.SetArr("A", []int64{5, 3, 1})
	res, err := interp.RunClean(p.Prog, env, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AssertFailed == nil {
		t.Error("descending input should break the every-iteration-swaps assert")
	}
}
