package predabs

import (
	"testing"

	"repro/internal/logic"
)

func TestAllPredsCount(t *testing.T) {
	// 2 terms, 1 const, 1 op: t1-t2 op c (2 ordered pairs) + t op c (2).
	ps := AllPreds(Vars("x", "y"), []int64{0}, []logic.RelOp{logic.Le})
	want := map[string]bool{
		"x <= 0": true, "y <= 0": true,
		"(x - y) <= 0": true, "(y - x) <= 0": true,
	}
	if len(ps) != len(want) {
		t.Fatalf("got %d preds: %v", len(ps), ps)
	}
	for _, p := range ps {
		if !want[p.String()] {
			t.Errorf("unexpected predicate %v", p)
		}
	}
}

func TestAllPredsDedupes(t *testing.T) {
	// Eq over (x,y) and (y,x) with c=0 yields syntactically distinct but
	// allowed predicates; duplicates by canonical string are removed.
	ps := AllPreds(Vars("x"), []int64{0, 0}, []logic.RelOp{logic.Eq, logic.Eq})
	if len(ps) != 1 {
		t.Errorf("duplicate consts/ops should dedupe, got %v", ps)
	}
}

func TestAllPredsArrayElems(t *testing.T) {
	ps := AllPreds(Elems("A", "i", "j"), []int64{0}, []logic.RelOp{logic.Le})
	found := false
	for _, p := range ps {
		if p.String() == "(A[i] - A[j]) <= 0" {
			found = true
		}
	}
	if !found {
		t.Errorf("array element difference predicate missing: %v", ps)
	}
}

func TestQV(t *testing.T) {
	ps := QV([]string{"a", "b"})
	if len(ps) != 2 {
		t.Fatalf("QV = %v", ps)
	}
}

func TestQjV(t *testing.T) {
	ps := QjV("j", []string{"0", "i"})
	if len(ps) != 8 {
		t.Fatalf("QjV should have 4 ops × 2 bounds, got %v", ps)
	}
	// "0" must be parsed as the literal zero, not a variable named "0".
	sawLit := false
	for _, p := range ps {
		if p.String() == "j < 0" {
			sawLit = true
		}
	}
	if !sawLit {
		t.Errorf("literal bound missing: %v", ps)
	}
}

func TestQjVNegativeConst(t *testing.T) {
	ps := QjV("j", []string{"-1"})
	if len(ps) != 4 {
		t.Fatalf("QjV(-1) = %v", ps)
	}
	if ps[0].String() != "j < -1" {
		t.Errorf("negative constant: %v", ps[0])
	}
}

func TestJunk(t *testing.T) {
	ps := Junk(10)
	if len(ps) != 10 {
		t.Fatalf("Junk(10) = %d preds", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.String()] {
			t.Errorf("duplicate junk predicate %v", p)
		}
		seen[p.String()] = true
	}
}
