// Package predabs builds predicate vocabularies for templates, implementing
// the paper's generators: AllPreds(Z, C, R) = {z−z′ op c, z op c}, the
// inequality family Q_V = {v1 ≤ v2}, and the bound family
// Q_{j,V} = {j < v, j ≤ v, j > v, j ≥ v}.
package predabs

import (
	"repro/internal/logic"
)

// AllPreds returns {t − t′ op c | t ≠ t′ ∈ terms, c ∈ consts, op ∈ ops} ∪
// {t op c | t ∈ terms, c ∈ consts, op ∈ ops}, deduplicated by canonical
// form. This is the generator used throughout the paper's experiments
// (Figure 1).
func AllPreds(terms []logic.Term, consts []int64, ops []logic.RelOp) []logic.Formula {
	var out []logic.Formula
	seen := map[string]bool{}
	add := func(f logic.Formula) {
		f = logic.Simplify(f)
		if _, isBool := f.(logic.Bool); isBool {
			return
		}
		if k := f.String(); !seen[k] {
			seen[k] = true
			out = append(out, f)
		}
	}
	for _, op := range ops {
		for _, c := range consts {
			for i, t1 := range terms {
				add(logic.Rel(op, t1, logic.I(c)))
				for j, t2 := range terms {
					if i == j {
						continue
					}
					add(logic.Rel(op, logic.Minus(t1, t2), logic.I(c)))
				}
			}
		}
	}
	return out
}

// Vars converts variable names into terms for AllPreds.
func Vars(names ...string) []logic.Term {
	out := make([]logic.Term, len(names))
	for i, n := range names {
		out[i] = logic.V(n)
	}
	return out
}

// Elems returns the array reads arr[idx] for each index variable name.
func Elems(arr string, idxs ...string) []logic.Term {
	out := make([]logic.Term, len(idxs))
	for i, ix := range idxs {
		out[i] = logic.Sel(logic.AV(arr), logic.V(ix))
	}
	return out
}

// QV returns {v1 ≤ v2 | v1, v2 ∈ vars, v1 ≠ v2} (§2).
func QV(vars []string) []logic.Formula {
	var out []logic.Formula
	for _, a := range vars {
		for _, b := range vars {
			if a == b {
				continue
			}
			out = append(out, logic.LeF(logic.V(a), logic.V(b)))
		}
	}
	return out
}

// QjV returns {j < v, j ≤ v, j > v, j ≥ v | v ∈ vars} (§2).
func QjV(j string, vars []string) []logic.Formula {
	var out []logic.Formula
	for _, v := range vars {
		t := termOf(v)
		out = append(out,
			logic.LtF(logic.V(j), t),
			logic.LeF(logic.V(j), t),
			logic.GtF(logic.V(j), t),
			logic.GeF(logic.V(j), t),
		)
	}
	return out
}

// ScaledQV returns {a ≤ c·b + k, a ≥ c·b + k | a, b ∈ vars, a ≠ b,
// k ∈ consts} for a fixed coefficient c: the non-unit-coefficient analogue of
// QV/AllPreds. These atoms leave the difference fragment (x − y ≤ k), so any
// search over them routes the solver's theory checks through the general-LIA
// engine rather than the difference closure.
func ScaledQV(c int64, consts []int64, vars []string) []logic.Formula {
	var out []logic.Formula
	for _, a := range vars {
		for _, b := range vars {
			if a == b {
				continue
			}
			for _, k := range consts {
				t := logic.Plus(logic.Times(c, logic.V(b)), logic.I(k))
				out = append(out,
					logic.LeF(logic.V(a), t),
					logic.GeF(logic.V(a), t),
				)
			}
		}
	}
	return out
}

// termOf interprets a name as an integer literal when possible so QjV can
// mix variables and constants (e.g. Q_{j,{0,i,n}}).
func termOf(v string) logic.Term {
	neg := false
	s := v
	if len(s) > 0 && s[0] == '-' {
		neg = true
		s = s[1:]
	}
	if len(s) == 0 {
		return logic.V(v)
	}
	n := int64(0)
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return logic.V(v)
		}
		n = n*10 + int64(s[i]-'0')
	}
	if neg {
		n = -n
	}
	return logic.I(n)
}

// Junk returns n syntactically well-formed but irrelevant predicates over
// fresh variables, used by the Figure 5 robustness experiment.
func Junk(n int) []logic.Formula {
	out := make([]logic.Formula, 0, n)
	for i := 0; i < n; i++ {
		v := logic.V("junk" + string(rune('a'+i%26)))
		out = append(out, logic.Rel(logic.RelOp(i%4), logic.Minus(v, logic.V("junkz")), logic.I(int64(i))))
	}
	return out
}
