package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// postBatch posts a batch and decodes the NDJSON result stream.
func postBatch(t *testing.T, client *http.Client, url string, req BatchRequest) (*http.Response, []BatchResult) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Error responses are plain JSON, not an NDJSON stream.
		return resp, nil
	}
	var results []BatchResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var r BatchResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, results
}

// TestBatchOrderingAndResults checks the /v1/batch contract: exactly one
// result per item, each tagged with its submission index, verdicts matching
// what standalone requests would return, and per-item problem keys echoed.
func TestBatchOrderingAndResults(t *testing.T) {
	ts := httptest.NewServer(New(Config{Pool: 2}).Handler())
	defer ts.Close()

	items := []VerifyRequest{
		{Spec: arrayInitSpec(0), Method: "lfp"},
		{Spec: arrayInitSpec(0), Method: "gfp"},
		{Spec: arrayInitSpec(1), Method: "lfp"},
		{Spec: arrayInitSpec(0), Method: "cfp"},
	}
	resp, results := postBatch(t, ts.Client(), ts.URL+"/v1/batch", BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	if len(results) != len(items) {
		t.Fatalf("%d results for %d items", len(results), len(items))
	}
	seen := map[int]bool{}
	for _, r := range results {
		if r.Index < 0 || r.Index >= len(items) {
			t.Fatalf("result index %d out of range", r.Index)
		}
		if seen[r.Index] {
			t.Fatalf("duplicate result for index %d", r.Index)
		}
		seen[r.Index] = true
		if !r.OK || r.Status != http.StatusOK || r.Verify == nil || !r.Verify.Proved {
			t.Errorf("item %d: %+v", r.Index, r)
		}
		if r.ProblemKey != ProblemKey(items[r.Index].Spec) {
			t.Errorf("item %d: problem key %q does not match spec", r.Index, r.ProblemKey)
		}
	}
	wantMethods := []string{"LFP", "GFP", "LFP", "CFP"}
	for _, r := range results {
		if r.Verify.Method != wantMethods[r.Index] {
			t.Errorf("item %d ran %s, want %s", r.Index, r.Verify.Method, wantMethods[r.Index])
		}
	}

	sr := getStats(t, ts.Client(), ts.URL)
	if sr.Batches != 1 || sr.BatchItems != int64(len(items)) {
		t.Errorf("batches=%d items=%d, want 1/%d", sr.Batches, sr.BatchItems, len(items))
	}
	if sr.Requests != int64(len(items)) {
		t.Errorf("requests=%d, want %d (each item counts)", sr.Requests, len(items))
	}
}

// TestBatchPartialFailure mixes good items with a parse error and an
// unknown method: the bad items fail independently with their standalone
// status while the good items still verify.
func TestBatchPartialFailure(t *testing.T) {
	ts := httptest.NewServer(New(Config{Pool: 2}).Handler())
	defer ts.Close()

	items := []VerifyRequest{
		{Spec: arrayInitSpec(0), Method: "lfp"},
		{Spec: "program {", Method: "lfp"},
		{Spec: arrayInitSpec(0), Method: "dfs"},
		{Spec: arrayInitSpec(0), Method: "gfp"},
	}
	resp, results := postBatch(t, ts.Client(), ts.URL+"/v1/batch", BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(results) != len(items) {
		t.Fatalf("%d results for %d items", len(results), len(items))
	}
	byIndex := map[int]BatchResult{}
	for _, r := range results {
		byIndex[r.Index] = r
	}
	for _, i := range []int{0, 3} {
		if r := byIndex[i]; !r.OK || r.Verify == nil || !r.Verify.Proved {
			t.Errorf("good item %d failed: %+v", i, r)
		}
	}
	for _, i := range []int{1, 2} {
		r := byIndex[i]
		if r.OK || r.Status != http.StatusBadRequest || r.Error == "" {
			t.Errorf("bad item %d: %+v", i, r)
		}
		if r.Verify != nil {
			t.Errorf("bad item %d carries a verify result: %+v", i, r)
		}
	}
}

// TestBatchValidation checks empty and oversized batches are rejected whole.
func TestBatchValidation(t *testing.T) {
	cfg := Config{Pool: 1, MaxBatch: 2}
	ts := httptest.NewServer(New(cfg).Handler())
	defer ts.Close()

	resp, _ := postBatch(t, ts.Client(), ts.URL+"/v1/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	big := BatchRequest{Items: []VerifyRequest{{Spec: "x"}, {Spec: "y"}, {Spec: "z"}}}
	resp, _ = postBatch(t, ts.Client(), ts.URL+"/v1/batch", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}
}

// TestMetricsEndpoint checks /metrics renders the Prometheus families with
// the server identity label after some traffic.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{ID: "test-backend", Pool: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postAs(t, ts.Client(), ts.URL+"/v1/verify", "m", VerifyRequest{Spec: arrayInitSpec(0), Method: "lfp"})

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"# TYPE vs3d_requests_total counter",
		`vs3d_requests_total{server="test-backend"} 1`,
		"# TYPE vs3d_smt_queries_total counter",
		`vs3d_up{server="test-backend"} 1`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("metrics output missing %q\n%s", want, body)
		}
	}
	if resp.Header.Get("X-VS3-Backend") != "test-backend" {
		t.Error("missing X-VS3-Backend header")
	}
}
