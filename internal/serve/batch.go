package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// maxBatchBytes bounds a /v1/batch request body (many specs in one request).
const maxBatchBytes = 32 << 20

// BatchRequest is the body of POST /v1/batch: many verification problems in
// one request. Bulk clients amortize HTTP and queueing overhead; the router
// additionally splits a batch by backend affinity so every item still lands
// on the backend that is warm for its skeleton.
type BatchRequest struct {
	Items []VerifyRequest `json:"items"`
}

// BatchResult is one line of the /v1/batch NDJSON response stream. Results
// stream in completion order, not submission order: Index identifies the
// item (its position in BatchRequest.Items), and exactly one result is
// emitted per item. Items fail independently — a parse error, shed, or abort
// on one item never affects the others (OK=false with the HTTP-equivalent
// Status and Error a standalone request would have carried).
type BatchResult struct {
	Index      int             `json:"index"`
	OK         bool            `json:"ok"`
	Status     int             `json:"status"`
	Error      string          `json:"error,omitempty"`
	ProblemKey string          `json:"problem_key,omitempty"`
	Verify     *VerifyResponse `json:"verify,omitempty"`
}

// handleBatch runs every item of the batch through the same problem cache,
// fair queue, and session pool as single requests (each item counts as one
// request for the batch's client key), streaming one NDJSON result line per
// item as it completes. Worker fan-out is capped at the pool size so one
// batch enqueues at most Pool waiters at a time — combined with round-robin
// admission, a huge batch cannot monopolize the queue against other clients.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodePostLimit(w, r, &req, maxBatchBytes) {
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty \"items\""))
		return
	}
	if len(req.Items) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d items exceeds the maximum of %d", len(req.Items), s.cfg.MaxBatch))
		return
	}
	s.batches.Add(1)
	s.batchItems.Add(int64(len(req.Items)))
	client := ClientKey(r)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(res BatchResult) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(res)
		if flusher != nil {
			flusher.Flush()
		}
	}

	workers := s.cfg.Pool
	if workers > len(req.Items) {
		workers = len(req.Items)
	}
	indices := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range indices {
				emit(s.runBatchItem(r, client, idx, req.Items[idx]))
			}
		}()
	}
	for idx := range req.Items {
		indices <- idx
	}
	close(indices)
	wg.Wait()
}

func (s *Server) runBatchItem(r *http.Request, client string, idx int, item VerifyRequest) BatchResult {
	resp, key, status, err := s.RunVerify(r.Context(), client, item)
	res := BatchResult{Index: idx, Status: status, ProblemKey: key}
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.OK = status == http.StatusOK
	res.Verify = &resp
	return res
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// decodePost decodes a POST body bounded by maxSpecBytes, answering 405/400
// itself and reporting whether the caller should proceed.
func decodePost(w http.ResponseWriter, r *http.Request, v any) bool {
	return decodePostLimit(w, r, v, maxSpecBytes)
}

func decodePostLimit(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return false
	}
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return false
	}
	if vr, ok := v.(*VerifyRequest); ok && vr.Spec == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"spec\""))
		return false
	}
	return true
}
