// Package serve wraps core.Verifier in a long-lived, concurrent HTTP
// daemon. A per-process CLI run throws away every cache the engine builds —
// interned formulas, compiled fillers, persistent smt.Context lane groups,
// the engine-global unsat-core store — with the process; the daemon keeps a
// pool of verifier sessions alive so repeated and related problems amortize
// that work across requests (see DESIGN.md §12–13).
//
// API (JSON over HTTP):
//
//	POST /v1/verify         {"spec": "<vs3 source>", "method": "lfp|gfp|cfp", "timeout_ms": 5000}
//	POST /v1/preconditions  {"spec": "<vs3 source>", "timeout_ms": 5000}
//	POST /v1/batch          {"items": [<verify request>, ...]} → NDJSON stream of per-item results
//	POST /v1/compact        rewrite the knowledge store's live set to a fresh generation
//	GET  /v1/stats          server-lifetime counters (pool, solver caches, merged collector)
//	GET  /metrics           the same counters in Prometheus text format
//	GET  /healthz           liveness probe (503 once draining)
//
// core.Verifier is not safe for concurrent use, so the server owns a fixed
// pool of sessions, each a verifier bound to one request at a time. All
// sessions share one unsat-core store (optimal.CoreStore) and the
// process-global formula interner; parsed problems (with their compiled VC
// skeletons) are shared through an LRU cache. Waiting requests are admitted
// round-robin across client keys (fairQueue), so one bulk client cannot
// starve another. Each request's deadline and client disconnect are bridged
// into the verifier's cooperative Stop flag, so an abandoned request stops
// consuming CPU promptly and is reported as Aborted (HTTP 504) rather than
// as a false "no invariant found". When every session is busy and the wait
// queue is full the server sheds load with HTTP 429 and a Retry-After hint.
//
// Every response carries X-VS3-Backend (this server's identity) and, once
// the spec is resolved, X-VS3-Problem-Key (the canonical routing key, see
// ProblemKey) — the hooks cmd/vs3router uses to prove affinity end to end.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/optimal"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/template"
)

// Config tunes a Server. The zero value is usable.
type Config struct {
	// ID identifies this backend in X-VS3-Backend headers, /v1/stats, and
	// /metrics (default "vs3d-<host>-<pid>"). The router reports per-backend
	// traffic under this name.
	ID string
	// Pool is the number of verifier sessions (default GOMAXPROCS). Each
	// session serves one request at a time; sessions share the formula
	// interner, one unsat-core store, and the parsed-problem cache, but
	// keep their own SMT solver (validity cache, incremental contexts).
	Pool int
	// Queue bounds how many requests may wait for a session beyond the ones
	// in flight (default 4×Pool). Beyond it the server answers 429.
	Queue int
	// DefaultTimeout bounds a request that does not set timeout_ms
	// (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (default 5m).
	MaxTimeout time.Duration
	// MaxBatch caps the number of items in one /v1/batch request
	// (default 1024).
	MaxBatch int
	// Core is the base verifier configuration. The server owns cancellation
	// and measurement: Fixpoint.Stop, SMT.Stop, CBI.Stop, Stats, and Cores
	// are overwritten per session.
	Core core.Config
	// Store, when non-nil, is the on-disk knowledge base shared by every
	// pooled session (Core.Knowledge is overwritten with it). Beyond the
	// engine-level warm state it carries whole solved-problem outcomes keyed
	// by (X-VS3-Problem-Key, method), which RunVerify replays without leasing
	// a session. The caller (cmd/vs3d) owns the store's lifecycle: it must be
	// opened with Params = Core.SMT.StoreParams() and closed after Shutdown;
	// StartDrain flushes it before /healthz flips to 503.
	Store *store.Store
}

func (c Config) normalize() Config {
	if c.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "localhost"
		}
		c.ID = fmt.Sprintf("vs3d-%s-%d", host, os.Getpid())
	}
	if c.Pool <= 0 {
		c.Pool = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.Pool
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1024
	}
	return c
}

// maxSpecBytes bounds a single-request body; vs3 spec files are a few KB.
const maxSpecBytes = 1 << 20

// maxCachedProblems bounds the parsed-problem LRU.
const maxCachedProblems = 256

// ProblemKey returns the canonical cache/affinity key for a spec source:
// the hex SHA-256 of its bytes. The router hashes this key onto its backend
// ring, the problem LRU indexes by it, and backends echo it in the
// X-VS3-Problem-Key response header so affinity is observable end to end.
func ProblemKey(src string) string {
	return fmt.Sprintf("%x", sha256.Sum256([]byte(src)))
}

// ClientKey extracts the fair-queueing identity of a request: the
// X-VS3-Client header when present (set by trusted front tiers like
// vs3router), else the remote IP.
func ClientKey(r *http.Request) string {
	if k := r.Header.Get("X-VS3-Client"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// session is one pooled verifier. The verifier is constructed once (so its
// solver's caches live as long as the server) with a Stop hook that reads
// the session's current request context through an atomic cell; bind/unbind
// swap the context around each request.
type session struct {
	v   *core.Verifier
	col *stats.Collector // session-lifetime collector (snapshot-diffed per request)
	ctx atomic.Pointer[context.Context]
}

func (s *session) stop() bool {
	ctx := *s.ctx.Load()
	return ctx.Err() != nil
}

func (s *session) bind(ctx context.Context) { s.ctx.Store(&ctx) }
func (s *session) unbind()                  { s.bind(context.Background()) }

// Server is the verification service.
type Server struct {
	cfg      Config
	fq       *fairQueue
	sessions []*session // stable list, for stats aggregation

	mu       sync.Mutex
	agg      stats.Snapshot // request-scoped collector deltas merged server-lifetime
	problems *problemLRU

	started  time.Time
	draining atomic.Bool

	rpcAddr  atomic.Pointer[string] // advertised rpc listen address ("" = none)
	rpcStats atomic.Pointer[func() (conns, streams, requests, cancels int64)]

	requests    atomic.Int64 // requests that reached a verifier (batch items included)
	rejected    atomic.Int64 // 429s / shed batch items
	aborted     atomic.Int64 // runs cancelled by deadline/disconnect
	truncated   atomic.Int64 // runs that reported a clipped search
	inflight    atomic.Int64
	probHits    atomic.Int64 // parsed-problem cache hits
	batches     atomic.Int64 // /v1/batch requests accepted
	batchItems  atomic.Int64 // items across all batches
	outcomeHits atomic.Int64 // verify runs answered from persisted outcomes
}

// New returns a Server with cfg.Pool warmed-up sessions.
func New(cfg Config) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg:      cfg,
		problems: newProblemLRU(maxCachedProblems),
		started:  time.Now(),
	}
	shared := cfg.Core.Cores
	if shared == nil {
		shared = optimal.NewCoreStore()
	}
	for i := 0; i < cfg.Pool; i++ {
		sess := &session{col: stats.New()}
		sess.unbind()
		cc := cfg.Core
		cc.Stats = sess.col
		cc.Cores = shared
		cc.Knowledge = cfg.Store
		cc.Fixpoint.Stop = sess.stop
		cc.SMT.Stop = nil // re-derived from Fixpoint.Stop by core.New
		cc.CBI.Stop = nil
		sess.v = core.New(cc)
		s.sessions = append(s.sessions, sess)
	}
	s.fq = newFairQueue(s.sessions, cfg.Queue)
	return s
}

// ID returns the server's backend identity.
func (s *Server) ID() string { return s.cfg.ID }

// AdvertiseRPC publishes addr (":port" or "host:port") as this backend's
// binary rpc endpoint. Every HTTP response then carries it in the X-VS3-RPC
// header, which the router's health sweep reads to discover and upgrade to
// the binary transport (a ":port" value is joined with the backend URL's
// host). cmd/vs3d calls this once the -rpc listener is bound.
func (s *Server) AdvertiseRPC(addr string) { s.rpcAddr.Store(&addr) }

// SetRPCStats installs the rpc server's stats func so /v1/stats and /metrics
// report the binary surface's connection and stream gauges.
func (s *Server) SetRPCStats(fn func() (conns, streams, requests, cancels int64)) {
	s.rpcStats.Store(&fn)
}

// StartDrain flips /healthz to 503 so load balancers and the router stop
// sending new work; in-flight requests finish normally. cmd/vs3d calls this
// on SIGTERM before http.Server.Shutdown. The knowledge store's write-behind
// queue is flushed and fsynced first, so everything accepted before the
// drain signal is durable even if the process is killed mid-shutdown;
// records appended by still-in-flight requests are caught by the final
// store.Close after Shutdown returns.
func (s *Server) StartDrain() {
	if s.cfg.Store != nil {
		_ = s.cfg.Store.Flush()
	}
	s.draining.Store(true)
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the server's HTTP mux. Every response carries the
// X-VS3-Backend identity header.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/verify", s.handleVerify)
	mux.HandleFunc("/v1/preconditions", s.handlePreconditions)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/compact", s.handleCompact)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if st := s.cfg.Store; st != nil {
			// The outcome-digest generation rides on the probe the router
			// already makes, so its sweep refetches the (larger) digest only
			// when this header changes.
			w.Header().Set("X-VS3-Store-Gen", strconv.FormatUint(st.DigestGen(), 10))
		}
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	id := s.cfg.ID
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-VS3-Backend", id)
		if addr := s.rpcAddr.Load(); addr != nil && *addr != "" {
			w.Header().Set("X-VS3-RPC", *addr)
		}
		mux.ServeHTTP(w, r)
	})
}

var errBusy = errors.New("serve: all sessions busy and the wait queue is full")

// problem parses (or re-uses a previously parsed) spec.Problem and returns
// it with its canonical key. Problems are immutable after construction and
// documented safe for concurrent use, so a cache hit shares the compiled
// per-path VC skeletons across sessions.
func (s *Server) problem(src string) (*spec.Problem, string, error) {
	key := ProblemKey(src)
	s.mu.Lock()
	if p, ok := s.problems.get(key); ok {
		s.mu.Unlock()
		s.probHits.Add(1)
		return p, key, nil
	}
	s.mu.Unlock()

	sf, err := lang.ParseSpecFile(src)
	if err != nil {
		return nil, key, err
	}
	p := &spec.Problem{
		Prog:      sf.Program,
		Templates: sf.Templates,
		Q:         template.Domain(sf.Predicates),
	}
	if err := p.Validate(); err != nil {
		return nil, key, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.problems.get(key); ok {
		return prev, key, nil
	}
	s.problems.put(key, p)
	return p, key, nil
}

// timeout resolves a request's effective deadline.
func (s *Server) timeout(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// VerifyRequest is the body of POST /v1/verify and /v1/preconditions
// (Method is ignored for preconditions) and the element type of
// BatchRequest.Items.
type VerifyRequest struct {
	// Spec is a vs3 spec file: program + template/predicates directives
	// (the same encoding cmd/vs3 and examples/ use).
	Spec string `json:"spec"`
	// Method selects the algorithm: "lfp", "gfp", or "cfp" (default "lfp").
	Method string `json:"method"`
	// TimeoutMS bounds the run; 0 means the server default. Values above
	// the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms"`
}

// VerifyResponse reports one verification run.
type VerifyResponse struct {
	Method     string            `json:"method"`
	Proved     bool              `json:"proved"`
	Aborted    bool              `json:"aborted"`
	Truncated  bool              `json:"truncated"`
	Steps      int               `json:"steps"`
	DurationMS float64           `json:"duration_ms"`
	Invariants map[string]string `json:"invariants,omitempty"`
	// FromStore reports that the response was replayed from the on-disk
	// knowledge store (a previous lifetime solved this exact problem with
	// this method under the same solver bounds); Stats and DurationMS then
	// describe the original run, not this request.
	FromStore bool `json:"from_store,omitempty"`
	// Stats is the request-scoped collector delta (what this run recorded).
	Stats stats.Snapshot `json:"stats"`
}

// PreconditionsResponse reports one §6 enumeration run.
type PreconditionsResponse struct {
	Preconditions []string       `json:"preconditions"`
	Aborted       bool           `json:"aborted"`
	Truncated     bool           `json:"truncated"`
	Steps         int            `json:"steps"`
	DurationMS    float64        `json:"duration_ms"`
	Stats         stats.Snapshot `json:"stats"`
}

// errorResponse is the body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

func parseMethod(s string) (core.Method, error) {
	switch s {
	case "", "lfp", "LFP":
		return core.LFP, nil
	case "gfp", "GFP":
		return core.GFP, nil
	case "cfp", "CFP":
		return core.CFP, nil
	}
	return 0, fmt.Errorf("unknown method %q (want lfp, gfp, or cfp)", s)
}

// lease acquires a session for client with a timeout-bound run context
// derived from parent. On success the caller must call the returned finish
// exactly once; it unbinds and releases the session and returns the
// request-scoped stats delta.
func (s *Server) lease(parent context.Context, client string, timeoutMS int64) (*session, context.Context, func() stats.Snapshot, error) {
	sess, err := s.fq.acquire(parent, client)
	if err != nil {
		return nil, nil, nil, err
	}
	reqCtx, cancel := context.WithTimeout(parent, s.timeout(timeoutMS))
	sess.bind(reqCtx)
	s.requests.Add(1)
	s.inflight.Add(1)
	before := sess.col.Snapshot()
	finish := func() stats.Snapshot {
		delta := sess.col.Snapshot().Sub(before)
		cancel()
		sess.unbind()
		s.fq.release(sess)
		s.inflight.Add(-1)
		s.mu.Lock()
		s.agg = s.agg.Add(delta)
		s.mu.Unlock()
		return delta
	}
	return sess, reqCtx, finish, nil
}

// RunVerify executes one verification run end to end: resolve the problem,
// lease a session under the client's fair-queue key, run, and assemble the
// response. It powers POST /v1/verify, each /v1/batch item, and the binary
// rpc surface. The returned status is the HTTP status a standalone request
// would carry.
func (s *Server) RunVerify(parent context.Context, client string, req VerifyRequest) (resp VerifyResponse, key string, status int, err error) {
	m, err := parseMethod(req.Method)
	if err != nil {
		return VerifyResponse{}, "", http.StatusBadRequest, err
	}
	p, key, err := s.problem(req.Spec)
	if err != nil {
		return VerifyResponse{}, key, http.StatusBadRequest, err
	}
	// A persisted outcome from an earlier lifetime answers without leasing a
	// session at all: the store was opened under the same solver bounds (or
	// it would have started cold), so the recorded verdict is the one this
	// run would compute.
	if s.cfg.Store != nil {
		if body, ok := s.cfg.Store.Outcome(key, m.String()); ok {
			var cached VerifyResponse
			if jerr := json.Unmarshal(body, &cached); jerr == nil {
				s.outcomeHits.Add(1)
				s.requests.Add(1)
				cached.FromStore = true
				return cached, key, http.StatusOK, nil
			}
		}
	}
	sess, reqCtx, finish, err := s.lease(parent, client, req.TimeoutMS)
	if err != nil {
		if errors.Is(err, errBusy) {
			s.rejected.Add(1)
			return VerifyResponse{}, key, http.StatusTooManyRequests, err
		}
		// The client's deadline or disconnect fired while queued.
		return VerifyResponse{}, key, http.StatusGatewayTimeout, err
	}
	out, err := sess.v.Verify(p, m)
	delta := finish()
	if err != nil {
		return VerifyResponse{}, key, http.StatusInternalServerError, err
	}
	resp = VerifyResponse{
		Method:     out.Method.String(),
		Proved:     out.Proved,
		Aborted:    out.Aborted,
		Truncated:  out.Truncated,
		Steps:      out.Steps,
		DurationMS: float64(out.Duration) / float64(time.Millisecond),
		Stats:      delta,
	}
	if len(out.Invariants) > 0 {
		resp.Invariants = map[string]string{}
		for cut, inv := range out.Invariants {
			resp.Invariants[cut] = inv.String()
		}
	}
	if resp.Truncated {
		s.truncated.Add(1)
	}
	if resp.Aborted {
		// Never persisted: an aborted run's verdict reflects this request's
		// deadline, not the problem.
		s.aborted.Add(1)
		return resp, key, abortStatus(reqCtx), nil
	}
	if s.cfg.Store != nil {
		if body, jerr := json.Marshal(resp); jerr == nil {
			s.cfg.Store.AppendOutcome(key, m.String(), body)
		}
	}
	return resp, key, http.StatusOK, nil
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if !decodePost(w, r, &req) {
		return
	}
	resp, key, status, err := s.RunVerify(r.Context(), ClientKey(r), req)
	if key != "" {
		w.Header().Set("X-VS3-Problem-Key", key)
	}
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, resp)
}

// RunPreconditions executes one §6 enumeration end to end, mirroring
// RunVerify's contract: it powers POST /v1/preconditions and the binary rpc
// surface, and the returned status is the HTTP status a standalone request
// would carry.
func (s *Server) RunPreconditions(parent context.Context, client string, req VerifyRequest) (resp PreconditionsResponse, key string, status int, err error) {
	p, key, err := s.problem(req.Spec)
	if err != nil {
		return PreconditionsResponse{}, key, http.StatusBadRequest, err
	}
	sess, reqCtx, finish, err := s.lease(parent, client, req.TimeoutMS)
	if err != nil {
		if errors.Is(err, errBusy) {
			s.rejected.Add(1)
			return PreconditionsResponse{}, key, http.StatusTooManyRequests, err
		}
		return PreconditionsResponse{}, key, http.StatusGatewayTimeout, err
	}
	start := time.Now()
	pres, enum, err := sess.v.InferPreconditions(p)
	delta := finish()
	if err != nil {
		return PreconditionsResponse{}, key, http.StatusBadRequest, err
	}
	resp = PreconditionsResponse{
		Preconditions: []string{},
		Aborted:       enum.Aborted,
		Truncated:     enum.Truncated,
		Steps:         enum.Steps,
		DurationMS:    float64(time.Since(start)) / float64(time.Millisecond),
		Stats:         delta,
	}
	for _, pre := range pres {
		resp.Preconditions = append(resp.Preconditions, pre.Pre.String())
	}
	sort.Strings(resp.Preconditions)
	if resp.Truncated {
		s.truncated.Add(1)
	}
	if resp.Aborted {
		s.aborted.Add(1)
		return resp, key, abortStatus(reqCtx), nil
	}
	return resp, key, http.StatusOK, nil
}

func (s *Server) handlePreconditions(w http.ResponseWriter, r *http.Request) {
	var req VerifyRequest
	if !decodePost(w, r, &req) {
		return
	}
	resp, key, status, err := s.RunPreconditions(r.Context(), ClientKey(r), req)
	if key != "" {
		w.Header().Set("X-VS3-Problem-Key", key)
	}
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, resp)
}

// DigestResponse is the body of an rpc KindDigest answer: the store's
// solved-outcome bloom digest (see store.OutcomeDigest) and its generation.
// Both are zero-valued when no store is attached.
type DigestResponse struct {
	Digest string `json:"digest"`
	Gen    uint64 `json:"gen"`
}

// CompactResponse is the body of POST /v1/compact.
type CompactResponse struct {
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
	Compactions    int64 `json:"compactions"`
	LogBytes       int64 `json:"log_bytes"`
	LiveBytes      int64 `json:"live_bytes"`
}

// handleCompact triggers one on-demand store compaction. Serving continues
// concurrently; the response carries the reclaimed byte count and the store's
// post-compaction size counters.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	st := s.cfg.Store
	if st == nil {
		writeError(w, http.StatusConflict, errors.New("no knowledge store attached (-store)"))
		return
	}
	reclaimed, err := st.Compact()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	ss := st.Stats()
	writeJSON(w, http.StatusOK, CompactResponse{
		ReclaimedBytes: reclaimed,
		Compactions:    ss.Compactions,
		LogBytes:       ss.LogBytes,
		LiveBytes:      ss.LiveBytes,
	})
}

// abortStatus maps an aborted run to its HTTP status: 504 for a deadline,
// 499 (nginx's client-closed-request convention) for a disconnect.
func abortStatus(ctx context.Context) int {
	if errors.Is(ctx.Err(), context.Canceled) {
		return 499
	}
	return http.StatusGatewayTimeout
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	ServerID      string  `json:"server_id"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Pool          int     `json:"pool"`
	QueueCapacity int     `json:"queue_capacity"`
	InFlight      int64   `json:"in_flight"`
	Queued        int64   `json:"queued"`
	ClientsQueued int64   `json:"clients_queued"`
	Requests      int64   `json:"requests"`
	Rejected      int64   `json:"rejected"`
	Aborted       int64   `json:"aborted"`
	Truncated     int64   `json:"truncated"`
	Batches       int64   `json:"batches"`
	BatchItems    int64   `json:"batch_items"`

	// Binary rpc surface (zero-valued when -rpc is not enabled): the
	// advertised listen address, open handshaken connections, currently
	// executing streams, and lifetime accepted-request / honored-cancel
	// counters.
	RPCAddr     string `json:"rpc_addr,omitempty"`
	RPCConns    int64  `json:"rpc_conns"`
	RPCStreams  int64  `json:"rpc_streams"`
	RPCRequests int64  `json:"rpc_requests"`
	RPCCancels  int64  `json:"rpc_cancels"`

	// ProblemsCached / ProblemCacheHits describe the shared parsed-problem
	// LRU (compiled VC skeletons reused across sessions).
	ProblemsCached   int   `json:"problems_cached"`
	ProblemCacheHits int64 `json:"problem_cache_hits"`

	// Solver counters summed over all pooled sessions' SMT solvers and
	// engines. Cache hits climbing across requests for the same problem is
	// the fleet-amortization signal the daemon exists for.
	Queries          int64 `json:"smt_queries"`
	CacheHits        int64 `json:"smt_cache_hits"`
	Contexts         int64 `json:"smt_contexts"`
	AssumptionProbes int64 `json:"assumption_probes"`
	LemmaReuse       int64 `json:"lemma_reuse"`
	SharedLemmas     int64 `json:"shared_lemmas"`
	CorePruned       int64 `json:"core_pruned"`
	CoreEvicted      int64 `json:"core_evicted"`

	// Fourier–Motzkin counters: from-scratch eliminations outside any
	// persistent checker, incremental runs and conflict-cube hits inside
	// persistent LinCheckers, derived-cap hits (conservative answers), and
	// contexts sent dormant by Ackermann budget exhaustion.
	FMScratch       int64 `json:"fm_scratch"`
	FMIncremental   int64 `json:"fm_incremental"`
	FMCubeHits      int64 `json:"fm_cube_hits"`
	FMCapHits       int64 `json:"fm_cap_hits"`
	DormantContexts int64 `json:"dormant_contexts"`

	// Knowledge-store counters. StoreEnabled gates the rest: hit counters
	// sum warm answers across sessions (persisted validity/consistency
	// verdicts, warm-seeded lemmas, promoted cores, replayed outcomes), the
	// health fields mirror store.Stats (write-behind queue depth, drops,
	// flush errors, cold-start and load cost of this lifetime).
	StoreEnabled     bool  `json:"store_enabled"`
	StoreColdStart   bool  `json:"store_cold_start,omitempty"`
	StoreLoadMillis  int64 `json:"store_load_millis,omitempty"`
	StoreVerdictHits int64 `json:"store_verdict_hits,omitempty"`
	StoreConsHits    int64 `json:"store_cons_hits,omitempty"`
	StoreWarmLemmas  int64 `json:"store_warm_lemmas,omitempty"`
	StoreWarmCores   int64 `json:"store_warm_cores,omitempty"`
	StoreOutcomeHits int64 `json:"store_outcome_hits,omitempty"`
	StoreAppended    int64 `json:"store_appended,omitempty"`
	StoreDeduped     int64 `json:"store_deduped,omitempty"`
	StoreDropped     int64 `json:"store_dropped,omitempty"`
	StoreQueueDepth  int64 `json:"store_queue_depth,omitempty"`
	StoreFlushes     int64 `json:"store_flushes,omitempty"`
	StoreFlushErrors int64 `json:"store_flush_errors,omitempty"`
	StoreFlushRetry  int64 `json:"store_flush_retries,omitempty"`

	// Compaction counters and the generational log's size accounting
	// (log_bytes on disk vs live_bytes of deduplicated records), plus the
	// solved-outcome bloom digest the router's store-aware placement reads
	// (see store.OutcomeDigest; the gen changes exactly when the digest may).
	StoreCompactions    int64  `json:"store_compactions,omitempty"`
	StoreCompactErrors  int64  `json:"store_compact_errors,omitempty"`
	StoreReclaimedBytes int64  `json:"store_reclaimed_bytes,omitempty"`
	StoreLogBytes       int64  `json:"store_log_bytes,omitempty"`
	StoreLiveBytes      int64  `json:"store_live_bytes,omitempty"`
	StoreDigest         string `json:"store_digest,omitempty"`
	StoreDigestGen      uint64 `json:"store_digest_gen,omitempty"`

	// Collector is the merge of every finished request's collector delta.
	Collector stats.Snapshot `json:"collector"`
}

// statsSnapshot assembles the full stats view (shared by /v1/stats and
// /metrics).
func (s *Server) statsSnapshot() statsResponse {
	s.mu.Lock()
	agg := s.agg
	cached := s.problems.len()
	s.mu.Unlock()
	resp := statsResponse{
		ServerID:         s.cfg.ID,
		UptimeSeconds:    time.Since(s.started).Seconds(),
		Draining:         s.draining.Load(),
		Pool:             s.cfg.Pool,
		QueueCapacity:    s.cfg.Queue,
		InFlight:         s.inflight.Load(),
		Queued:           int64(s.fq.queued()),
		ClientsQueued:    int64(s.fq.clientsWaiting()),
		Requests:         s.requests.Load(),
		Rejected:         s.rejected.Load(),
		Aborted:          s.aborted.Load(),
		Truncated:        s.truncated.Load(),
		Batches:          s.batches.Load(),
		BatchItems:       s.batchItems.Load(),
		ProblemsCached:   cached,
		ProblemCacheHits: s.probHits.Load(),
		Collector:        agg,
	}
	if addr := s.rpcAddr.Load(); addr != nil {
		resp.RPCAddr = *addr
	}
	if fn := s.rpcStats.Load(); fn != nil {
		resp.RPCConns, resp.RPCStreams, resp.RPCRequests, resp.RPCCancels = (*fn)()
	}
	for _, sess := range s.sessions {
		eng := sess.v.Engine()
		resp.Queries += eng.S.NumQueries()
		resp.CacheHits += eng.S.NumCacheHits()
		resp.Contexts += eng.S.NumContexts()
		resp.AssumptionProbes += eng.S.NumAssumptionProbes()
		resp.LemmaReuse += eng.S.NumLemmaReuseHits()
		resp.SharedLemmas += eng.S.NumSharedLemmas()
		resp.CorePruned += eng.NumCorePruned()
		resp.CoreEvicted += eng.NumCoreEvicted()
		resp.FMScratch += eng.S.NumFMScratch()
		resp.FMIncremental += eng.S.NumFMIncremental()
		resp.FMCubeHits += eng.S.NumFMCubeHits()
		resp.FMCapHits += eng.S.NumFMCapHits()
		resp.DormantContexts += eng.S.NumDormantContexts()
		resp.StoreVerdictHits += eng.S.NumStoreVerdictHits()
		resp.StoreConsHits += eng.NumConsStoreHits()
		resp.StoreWarmLemmas += eng.S.NumWarmLemmas()
	}
	if st := s.cfg.Store; st != nil {
		resp.StoreEnabled = true
		resp.StoreOutcomeHits = s.outcomeHits.Load()
		ss := st.Stats()
		resp.StoreColdStart = ss.ColdStart
		resp.StoreLoadMillis = ss.LoadMillis
		resp.StoreAppended = ss.Appended
		resp.StoreDeduped = ss.Deduped
		resp.StoreDropped = ss.Dropped
		resp.StoreQueueDepth = ss.QueueDepth
		resp.StoreFlushes = ss.Flushes
		resp.StoreFlushErrors = ss.FlushErrors
		resp.StoreFlushRetry = ss.FlushRetries
		resp.StoreCompactions = ss.Compactions
		resp.StoreCompactErrors = ss.CompactErrors
		resp.StoreReclaimedBytes = ss.ReclaimedBytes
		resp.StoreLogBytes = ss.LogBytes
		resp.StoreLiveBytes = ss.LiveBytes
		resp.StoreDigest, resp.StoreDigestGen = st.OutcomeDigest()
		if len(s.sessions) > 0 {
			// One CoreStore is shared by all sessions; count its promotions once.
			resp.StoreWarmCores = s.sessions[0].v.Engine().NumWarmCores()
		}
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// RetryAfter parses a 429 response's Retry-After header (helper for clients
// and tests).
func RetryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}
