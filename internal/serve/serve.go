// Package serve wraps core.Verifier in a long-lived, concurrent HTTP
// daemon. A per-process CLI run throws away every cache the engine builds —
// interned formulas, compiled fillers, persistent smt.Context lane groups,
// the engine-global unsat-core store — with the process; the daemon keeps a
// pool of verifier sessions alive so repeated and related problems amortize
// that work across requests (see DESIGN.md §12).
//
// API (JSON over HTTP):
//
//	POST /v1/verify         {"spec": "<vs3 source>", "method": "lfp|gfp|cfp", "timeout_ms": 5000}
//	POST /v1/preconditions  {"spec": "<vs3 source>", "timeout_ms": 5000}
//	GET  /v1/stats          server-lifetime counters (pool, solver caches, merged collector)
//	GET  /healthz           liveness probe
//
// core.Verifier is not safe for concurrent use, so the server owns a fixed
// pool of sessions, each a verifier bound to one request at a time. All
// sessions share one unsat-core store (optimal.CoreStore) and the
// process-global formula interner; parsed problems (with their compiled VC
// skeletons) are shared through a bounded cache. Each request's deadline and
// client disconnect are bridged into the verifier's cooperative Stop flag,
// so an abandoned request stops consuming CPU promptly and is reported as
// Aborted (HTTP 504) rather than as a false "no invariant found". When every
// session is busy and the wait queue is full the server sheds load with
// HTTP 429 and a Retry-After hint.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/optimal"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/template"
)

// Config tunes a Server. The zero value is usable.
type Config struct {
	// Pool is the number of verifier sessions (default GOMAXPROCS). Each
	// session serves one request at a time; sessions share the formula
	// interner, one unsat-core store, and the parsed-problem cache, but
	// keep their own SMT solver (validity cache, incremental contexts).
	Pool int
	// Queue bounds how many requests may wait for a session beyond the ones
	// in flight (default 4×Pool). Beyond it the server answers 429.
	Queue int
	// DefaultTimeout bounds a request that does not set timeout_ms
	// (default 60s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (default 5m).
	MaxTimeout time.Duration
	// Core is the base verifier configuration. The server owns cancellation
	// and measurement: Fixpoint.Stop, SMT.Stop, CBI.Stop, Stats, and Cores
	// are overwritten per session.
	Core core.Config
}

func (c Config) normalize() Config {
	if c.Pool <= 0 {
		c.Pool = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.Pool
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	return c
}

// maxSpecBytes bounds a request body; vs3 spec files are a few KB.
const maxSpecBytes = 1 << 20

// maxCachedProblems bounds the parsed-problem cache.
const maxCachedProblems = 256

// session is one pooled verifier. The verifier is constructed once (so its
// solver's caches live as long as the server) with a Stop hook that reads
// the session's current request context through an atomic cell; bind/unbind
// swap the context around each request.
type session struct {
	v   *core.Verifier
	col *stats.Collector // session-lifetime collector (snapshot-diffed per request)
	ctx atomic.Pointer[context.Context]
}

func (s *session) stop() bool {
	ctx := *s.ctx.Load()
	return ctx.Err() != nil
}

func (s *session) bind(ctx context.Context) { s.ctx.Store(&ctx) }
func (s *session) unbind()                  { s.bind(context.Background()) }

// Server is the verification service.
type Server struct {
	cfg      Config
	idle     chan *session
	sessions []*session // stable list, for stats aggregation
	waiters  atomic.Int64

	mu       sync.Mutex
	agg      stats.Snapshot // request-scoped collector deltas merged server-lifetime
	problems map[string]*spec.Problem

	started time.Time

	requests  atomic.Int64 // requests that reached a verifier
	rejected  atomic.Int64 // 429s
	aborted   atomic.Int64 // runs cancelled by deadline/disconnect
	truncated atomic.Int64 // runs that reported a clipped search
	inflight  atomic.Int64
	probHits  atomic.Int64 // parsed-problem cache hits
}

// New returns a Server with cfg.Pool warmed-up sessions.
func New(cfg Config) *Server {
	cfg = cfg.normalize()
	s := &Server{
		cfg:      cfg,
		idle:     make(chan *session, cfg.Pool),
		problems: map[string]*spec.Problem{},
		started:  time.Now(),
	}
	shared := cfg.Core.Cores
	if shared == nil {
		shared = optimal.NewCoreStore()
	}
	for i := 0; i < cfg.Pool; i++ {
		sess := &session{col: stats.New()}
		sess.unbind()
		cc := cfg.Core
		cc.Stats = sess.col
		cc.Cores = shared
		cc.Fixpoint.Stop = sess.stop
		cc.SMT.Stop = nil // re-derived from Fixpoint.Stop by core.New
		cc.CBI.Stop = nil
		sess.v = core.New(cc)
		s.sessions = append(s.sessions, sess)
		s.idle <- sess
	}
	return s
}

// Handler returns the server's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/verify", s.handleVerify)
	mux.HandleFunc("/v1/preconditions", s.handlePreconditions)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

var errBusy = errors.New("serve: all sessions busy and the wait queue is full")

// acquire hands out an idle session, waiting in the bounded queue when all
// are busy. It fails fast with errBusy beyond the queue bound, and with the
// context's error when the caller's deadline fires while queued.
func (s *Server) acquire(ctx context.Context) (*session, error) {
	select {
	case sess := <-s.idle:
		return sess, nil
	default:
	}
	if s.waiters.Add(1) > int64(s.cfg.Queue) {
		s.waiters.Add(-1)
		return nil, errBusy
	}
	defer s.waiters.Add(-1)
	select {
	case sess := <-s.idle:
		return sess, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) release(sess *session) {
	sess.unbind()
	s.idle <- sess
}

// problem parses (or re-uses a previously parsed) spec.Problem. Problems are
// immutable after construction and documented safe for concurrent use, so a
// cache hit shares the compiled per-path VC skeletons across sessions.
func (s *Server) problem(src string) (*spec.Problem, error) {
	key := fmt.Sprintf("%x", sha256.Sum256([]byte(src)))
	s.mu.Lock()
	if p, ok := s.problems[key]; ok {
		s.mu.Unlock()
		s.probHits.Add(1)
		return p, nil
	}
	s.mu.Unlock()

	sf, err := lang.ParseSpecFile(src)
	if err != nil {
		return nil, err
	}
	p := &spec.Problem{
		Prog:      sf.Program,
		Templates: sf.Templates,
		Q:         template.Domain(sf.Predicates),
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.problems[key]; ok {
		return prev, nil
	}
	if len(s.problems) >= maxCachedProblems {
		// Arbitrary single eviction keeps the cache bounded without
		// bookkeeping; the workload this serves is a small warm set.
		for k := range s.problems {
			delete(s.problems, k)
			break
		}
	}
	s.problems[key] = p
	return p, nil
}

// timeout resolves a request's effective deadline.
func (s *Server) timeout(ms int64) time.Duration {
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		return s.cfg.MaxTimeout
	}
	return d
}

// verifyRequest is the body of POST /v1/verify and /v1/preconditions
// (method is ignored for preconditions).
type verifyRequest struct {
	// Spec is a vs3 spec file: program + template/predicates directives
	// (the same encoding cmd/vs3 and examples/ use).
	Spec string `json:"spec"`
	// Method selects the algorithm: "lfp", "gfp", or "cfp" (default "lfp").
	Method string `json:"method"`
	// TimeoutMS bounds the run; 0 means the server default. Values above
	// the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms"`
}

// verifyResponse reports one verification run.
type verifyResponse struct {
	Method     string            `json:"method"`
	Proved     bool              `json:"proved"`
	Aborted    bool              `json:"aborted"`
	Truncated  bool              `json:"truncated"`
	Steps      int               `json:"steps"`
	DurationMS float64           `json:"duration_ms"`
	Invariants map[string]string `json:"invariants,omitempty"`
	// Stats is the request-scoped collector delta (what this run recorded).
	Stats stats.Snapshot `json:"stats"`
}

// preconditionsResponse reports one §6 enumeration run.
type preconditionsResponse struct {
	Preconditions []string       `json:"preconditions"`
	Aborted       bool           `json:"aborted"`
	Truncated     bool           `json:"truncated"`
	Steps         int            `json:"steps"`
	DurationMS    float64        `json:"duration_ms"`
	Stats         stats.Snapshot `json:"stats"`
}

// errorResponse is the body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func parseMethod(s string) (core.Method, error) {
	switch s {
	case "", "lfp", "LFP":
		return core.LFP, nil
	case "gfp", "GFP":
		return core.GFP, nil
	case "cfp", "CFP":
		return core.CFP, nil
	}
	return 0, fmt.Errorf("unknown method %q (want lfp, gfp, or cfp)", s)
}

// begin decodes the request, resolves the problem, and leases a session with
// the deadline-bound context installed. On success the caller must run
// finish() (which releases the session) exactly once.
func (s *Server) begin(w http.ResponseWriter, r *http.Request) (req verifyRequest, p *spec.Problem, sess *session, ctx context.Context, finish func() stats.Snapshot, ok bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxSpecBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return
	}
	if req.Spec == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"spec\""))
		return
	}
	p, err := s.problem(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, err = s.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errBusy) {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		} else {
			// The client's deadline or disconnect fired while queued.
			writeError(w, http.StatusGatewayTimeout, err)
		}
		return
	}
	reqCtx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	sess.bind(reqCtx)
	s.requests.Add(1)
	s.inflight.Add(1)
	before := sess.col.Snapshot()
	finish = func() stats.Snapshot {
		delta := sess.col.Snapshot().Sub(before)
		cancel()
		s.release(sess)
		s.inflight.Add(-1)
		s.mu.Lock()
		s.agg = s.agg.Add(delta)
		s.mu.Unlock()
		return delta
	}
	return req, p, sess, reqCtx, finish, true
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	req, p, sess, ctx, finish, ok := s.begin(w, r)
	if !ok {
		return
	}
	m, err := parseMethod(req.Method)
	if err != nil {
		finish()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out, err := sess.v.Verify(p, m)
	delta := finish()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := verifyResponse{
		Method:     out.Method.String(),
		Proved:     out.Proved,
		Aborted:    out.Aborted,
		Truncated:  out.Truncated,
		Steps:      out.Steps,
		DurationMS: float64(out.Duration) / float64(time.Millisecond),
		Stats:      delta,
	}
	if len(out.Invariants) > 0 {
		resp.Invariants = map[string]string{}
		for cut, inv := range out.Invariants {
			resp.Invariants[cut] = inv.String()
		}
	}
	if resp.Truncated {
		s.truncated.Add(1)
	}
	if resp.Aborted {
		s.aborted.Add(1)
		writeJSON(w, s.abortStatus(ctx), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePreconditions(w http.ResponseWriter, r *http.Request) {
	_, p, sess, ctx, finish, ok := s.begin(w, r)
	if !ok {
		return
	}
	start := time.Now()
	pres, enum, err := sess.v.InferPreconditions(p)
	delta := finish()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := preconditionsResponse{
		Preconditions: []string{},
		Aborted:       enum.Aborted,
		Truncated:     enum.Truncated,
		Steps:         enum.Steps,
		DurationMS:    float64(time.Since(start)) / float64(time.Millisecond),
		Stats:         delta,
	}
	for _, pre := range pres {
		resp.Preconditions = append(resp.Preconditions, pre.Pre.String())
	}
	sort.Strings(resp.Preconditions)
	if resp.Truncated {
		s.truncated.Add(1)
	}
	if resp.Aborted {
		s.aborted.Add(1)
		writeJSON(w, s.abortStatus(ctx), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// abortStatus maps an aborted run to its HTTP status: 504 for a deadline,
// 499 (nginx's client-closed-request convention) for a disconnect.
func (s *Server) abortStatus(ctx context.Context) int {
	if errors.Is(ctx.Err(), context.Canceled) {
		return 499
	}
	return http.StatusGatewayTimeout
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Pool          int     `json:"pool"`
	QueueCapacity int     `json:"queue_capacity"`
	InFlight      int64   `json:"in_flight"`
	Queued        int64   `json:"queued"`
	Requests      int64   `json:"requests"`
	Rejected      int64   `json:"rejected"`
	Aborted       int64   `json:"aborted"`
	Truncated     int64   `json:"truncated"`

	// ProblemsCached / ProblemCacheHits describe the shared parsed-problem
	// cache (compiled VC skeletons reused across sessions).
	ProblemsCached   int   `json:"problems_cached"`
	ProblemCacheHits int64 `json:"problem_cache_hits"`

	// Solver counters summed over all pooled sessions' SMT solvers and
	// engines. Cache hits climbing across requests for the same problem is
	// the fleet-amortization signal the daemon exists for.
	Queries          int64 `json:"smt_queries"`
	CacheHits        int64 `json:"smt_cache_hits"`
	Contexts         int64 `json:"smt_contexts"`
	AssumptionProbes int64 `json:"assumption_probes"`
	LemmaReuse       int64 `json:"lemma_reuse"`
	SharedLemmas     int64 `json:"shared_lemmas"`
	CorePruned       int64 `json:"core_pruned"`
	CoreEvicted      int64 `json:"core_evicted"`

	// Collector is the merge of every finished request's collector delta.
	Collector stats.Snapshot `json:"collector"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	s.mu.Lock()
	agg := s.agg
	cached := len(s.problems)
	s.mu.Unlock()
	resp := statsResponse{
		UptimeSeconds:    time.Since(s.started).Seconds(),
		Pool:             s.cfg.Pool,
		QueueCapacity:    s.cfg.Queue,
		InFlight:         s.inflight.Load(),
		Queued:           s.waiters.Load(),
		Requests:         s.requests.Load(),
		Rejected:         s.rejected.Load(),
		Aborted:          s.aborted.Load(),
		Truncated:        s.truncated.Load(),
		ProblemsCached:   cached,
		ProblemCacheHits: s.probHits.Load(),
		Collector:        agg,
	}
	for _, sess := range s.sessions {
		eng := sess.v.Engine()
		resp.Queries += eng.S.NumQueries()
		resp.CacheHits += eng.S.NumCacheHits()
		resp.Contexts += eng.S.NumContexts()
		resp.AssumptionProbes += eng.S.NumAssumptionProbes()
		resp.LemmaReuse += eng.S.NumLemmaReuseHits()
		resp.SharedLemmas += eng.S.NumSharedLemmas()
		resp.CorePruned += eng.NumCorePruned()
		resp.CoreEvicted += eng.NumCoreEvicted()
	}
	writeJSON(w, http.StatusOK, resp)
}

// RetryAfter parses a 429 response's Retry-After header (helper for clients
// and tests).
func RetryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}
