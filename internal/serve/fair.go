package serve

import (
	"context"
	"sync"
)

// fairQueue admits waiting requests to the session pool round-robin across
// client keys instead of global FIFO. With one FIFO, a bulk client that
// keeps the queue full starves an interactive client indefinitely; with
// per-client queues and round-robin dispatch, every client with work waiting
// gets one session grant per rotation, so a greedy client's backlog costs
// only itself. Within one client, grants stay FIFO.
type fairQueue struct {
	mu       sync.Mutex
	queueCap int // total waiters admitted beyond the pool before errBusy

	idle    []*session
	waiting int // live (non-cancelled) waiters across all clients

	clients map[string]*clientQueue
	order   []*clientQueue // rotation order; next indexes the client served next
	next    int
}

// clientQueue is one client's FIFO of waiters.
type clientQueue struct {
	key     string
	waiters []*waiter
}

// waiter is one parked acquire. Grants are delivered under fq.mu through ch
// (buffered so the granter never blocks); cancelled marks a waiter whose
// context fired before a grant, to be skipped and dropped at dispatch.
type waiter struct {
	ch        chan *session
	cancelled bool
}

func newFairQueue(sessions []*session, queueCap int) *fairQueue {
	fq := &fairQueue{
		queueCap: queueCap,
		idle:     append([]*session(nil), sessions...),
		clients:  map[string]*clientQueue{},
	}
	return fq
}

// acquire hands out an idle session immediately when one is free; otherwise
// it parks the caller in its client's queue (admitting at most queueCap
// total waiters, errBusy beyond) until release dispatches a session to it or
// its context fires.
func (fq *fairQueue) acquire(ctx context.Context, client string) (*session, error) {
	fq.mu.Lock()
	if n := len(fq.idle); n > 0 {
		sess := fq.idle[n-1]
		fq.idle = fq.idle[:n-1]
		fq.mu.Unlock()
		return sess, nil
	}
	if fq.waiting >= fq.queueCap {
		fq.mu.Unlock()
		return nil, errBusy
	}
	w := &waiter{ch: make(chan *session, 1)}
	cq, ok := fq.clients[client]
	if !ok {
		cq = &clientQueue{key: client}
		fq.clients[client] = cq
		fq.order = append(fq.order, cq)
	}
	cq.waiters = append(cq.waiters, w)
	fq.waiting++
	fq.mu.Unlock()

	select {
	case sess := <-w.ch:
		return sess, nil
	case <-ctx.Done():
		fq.mu.Lock()
		select {
		case sess := <-w.ch:
			// The grant raced the cancellation; pass the session on rather
			// than leaking it.
			fq.dispatchLocked(sess)
			fq.mu.Unlock()
		default:
			w.cancelled = true
			fq.waiting--
			fq.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// release returns a session to the pool, granting it to the next waiter in
// round-robin client order (or parking it idle).
func (fq *fairQueue) release(sess *session) {
	fq.mu.Lock()
	fq.dispatchLocked(sess)
	fq.mu.Unlock()
}

// dispatchLocked grants sess to the first live waiter of the next client in
// rotation, dropping cancelled waiters and empty client queues as it scans.
// Called with fq.mu held.
func (fq *fairQueue) dispatchLocked(sess *session) {
	for len(fq.order) > 0 {
		if fq.next >= len(fq.order) {
			fq.next = 0
		}
		cq := fq.order[fq.next]
		// Drop waiters whose context already fired.
		for len(cq.waiters) > 0 && cq.waiters[0].cancelled {
			cq.waiters = cq.waiters[1:]
		}
		if len(cq.waiters) == 0 {
			fq.removeClientLocked(fq.next)
			continue
		}
		w := cq.waiters[0]
		cq.waiters = cq.waiters[1:]
		fq.waiting--
		if len(cq.waiters) == 0 {
			fq.removeClientLocked(fq.next)
		} else {
			fq.next++ // this client served; next rotation starts after it
			if fq.next >= len(fq.order) {
				fq.next = 0
			}
		}
		w.ch <- sess
		return
	}
	fq.idle = append(fq.idle, sess)
}

// removeClientLocked deletes order[i], keeping the rotation cursor pointed
// at the element that followed it.
func (fq *fairQueue) removeClientLocked(i int) {
	cq := fq.order[i]
	delete(fq.clients, cq.key)
	fq.order = append(fq.order[:i], fq.order[i+1:]...)
	if fq.next > i {
		fq.next--
	}
	if fq.next >= len(fq.order) {
		fq.next = 0
	}
}

// queued reports live waiters; clientsWaiting reports distinct client keys
// with at least one live waiter.
func (fq *fairQueue) queued() int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.waiting
}

func (fq *fairQueue) clientsWaiting() int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	n := 0
	for _, cq := range fq.clients {
		for _, w := range cq.waiters {
			if !w.cancelled {
				n++
				break
			}
		}
	}
	return n
}
