package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

const storeTestSpec = `
program ArrayInit(array A, n) {
  i := 0;
  while loop (i < n) {
    A[i] := 0;
    i := i + 1;
  }
  assert(forall j. (0 <= j && j < n) => A[j] = 0);
}
template loop: forall j. ?v => A[j] = 0;
predicates v: j >= 0, j < i, j <= i, j < n, j <= n;
`

func openServeStore(t *testing.T, dir string, flush time.Duration) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{
		Params:        core.Config{}.SMT.StoreParams(),
		FlushInterval: flush,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

func postVerify(t *testing.T, base, spec, method string) VerifyResponse {
	t.Helper()
	body, _ := json.Marshal(VerifyRequest{Spec: spec, Method: method})
	resp, err := http.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify: status %d", resp.StatusCode)
	}
	var out VerifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDrainFlushZeroLoss is the drain-durability contract: with the
// write-behind ticker effectively disabled, everything accepted before
// StartDrain must already be durable the moment /healthz flips to 503 —
// a second store opened on the same directory (as a restarted daemon
// would) sees every record without the first ever calling Close.
func TestDrainFlushZeroLoss(t *testing.T) {
	dir := t.TempDir()
	st := openServeStore(t, dir, time.Hour) // ticker never fires during the test
	s := New(Config{Pool: 1, Store: st})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := postVerify(t, ts.URL, storeTestSpec, "lfp")
	if !out.Proved || out.FromStore {
		t.Fatalf("cold verify: proved=%v from_store=%v", out.Proved, out.FromStore)
	}
	ss := st.Stats()
	if ss.Appended == 0 {
		t.Fatal("verify run appended nothing to the store")
	}
	if ss.QueueDepth == 0 {
		t.Fatal("write-behind queue already empty; test cannot prove drain flushes it")
	}

	s.StartDrain()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d, want 503", resp.StatusCode)
	}

	// Reopen the directory without closing the first store: only what
	// StartDrain flushed can be visible.
	st2 := openServeStore(t, dir, time.Hour)
	defer st2.Close()
	s2 := st2.Stats()
	if s2.ColdStart {
		t.Fatal("restarted store reported cold start after drain flush")
	}
	if s2.LoadedOutcomes == 0 {
		t.Errorf("restarted store loaded no outcomes (stats: %+v)", s2)
	}
	if s2.LoadedVerdicts+s2.LoadedConsistency+s2.LoadedLemmas == 0 {
		t.Errorf("restarted store loaded no solver records (stats: %+v)", s2)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestWarmRestartOutcomeReplay restarts the serving stack on one store
// directory and asserts the second lifetime replays the solved problem from
// disk: identical verdict, marked from_store, no session leased, zero
// from-scratch SMT queries.
func TestWarmRestartOutcomeReplay(t *testing.T) {
	dir := t.TempDir()

	st := openServeStore(t, dir, 5*time.Millisecond)
	s := New(Config{Pool: 1, Store: st})
	ts := httptest.NewServer(s.Handler())
	cold := postVerify(t, ts.URL, storeTestSpec, "lfp")
	ts.Close()
	if !cold.Proved {
		t.Fatal("cold run did not prove")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2 := openServeStore(t, dir, 5*time.Millisecond)
	defer st2.Close()
	s2 := New(Config{Pool: 1, Store: st2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	warm := postVerify(t, ts2.URL, storeTestSpec, "lfp")
	if !warm.FromStore {
		t.Error("warm response not marked from_store")
	}
	if warm.Proved != cold.Proved || warm.Steps != cold.Steps {
		t.Errorf("warm outcome diverged: proved=%v steps=%d, cold proved=%v steps=%d",
			warm.Proved, warm.Steps, cold.Proved, cold.Steps)
	}
	for cut, inv := range cold.Invariants {
		if warm.Invariants[cut] != inv {
			t.Errorf("invariant at %s diverged: %q != %q", cut, warm.Invariants[cut], inv)
		}
	}
	sr := s2.statsSnapshot()
	if sr.StoreOutcomeHits != 1 {
		t.Errorf("store_outcome_hits = %d, want 1", sr.StoreOutcomeHits)
	}
	if sr.Queries+sr.AssumptionProbes != 0 {
		t.Errorf("warm lifetime ran %d SMT queries/probes, want 0", sr.Queries+sr.AssumptionProbes)
	}
	if sr.InFlight != 0 || sr.Requests != 1 {
		t.Errorf("request accounting off: in_flight=%d requests=%d", sr.InFlight, sr.Requests)
	}

	// The normalized method key must hit regardless of request spelling.
	alias := postVerify(t, ts2.URL, storeTestSpec, "LFP")
	if !alias.FromStore {
		t.Error("method alias LFP missed the outcome cache")
	}
}

// TestAbortedOutcomesNotPersisted asserts a deadline-aborted run leaves no
// outcome record: a later identical request must run for real, not replay a
// "gave up" verdict.
func TestAbortedOutcomesNotPersisted(t *testing.T) {
	dir := t.TempDir()
	st := openServeStore(t, dir, 5*time.Millisecond)
	s := New(Config{Pool: 1, Store: st})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(VerifyRequest{Spec: storeTestSpec, Method: "lfp", TimeoutMS: 1})
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := st.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	key := ProblemKey(storeTestSpec)
	if _, ok := st.Outcome(key, "LFP"); ok && resp.StatusCode == http.StatusGatewayTimeout {
		t.Error("aborted run persisted an outcome")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
