package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"repro/internal/rpc"
)

// ServeRPC implements rpc.Handler: the binary surface dispatches into the
// exact same RunVerify / RunPreconditions paths as HTTP, sharing the session
// pool, fair queue, problem LRU, knowledge store, and counters. The response
// Status and Body are what an equivalent HTTP request would have carried, so
// a caller can switch transports without a second decoder; ProblemKey and
// Backend mirror the X-VS3-Problem-Key / X-VS3-Backend headers. A cancelled
// stream context flows through the leased session's Stop hook just like an
// HTTP client disconnect — the run aborts with 499, never a false verdict.
func (s *Server) ServeRPC(ctx context.Context, req rpc.Request) rpc.Response {
	if req.Kind == rpc.KindDigest {
		// No spec and no session lease: answered from the store's cached
		// digest so the router can poll it on its sweep cadence.
		var resp DigestResponse
		if st := s.cfg.Store; st != nil {
			resp.Digest, resp.Gen = st.OutcomeDigest()
		}
		return rpcJSON(http.StatusOK, "", s.cfg.ID, resp)
	}
	if req.Spec == "" {
		return rpcError(http.StatusBadRequest, "", s.cfg.ID, errors.New("missing \"spec\""))
	}
	vr := VerifyRequest{Spec: req.Spec, Method: req.Method, TimeoutMS: req.TimeoutMS}
	client := req.Client
	if client == "" {
		client = "rpc"
	}
	switch req.Kind {
	case rpc.KindVerify:
		resp, key, status, err := s.RunVerify(ctx, client, vr)
		if err != nil {
			return rpcError(status, key, s.cfg.ID, err)
		}
		return rpcJSON(status, key, s.cfg.ID, resp)
	case rpc.KindPreconditions:
		resp, key, status, err := s.RunPreconditions(ctx, client, vr)
		if err != nil {
			return rpcError(status, key, s.cfg.ID, err)
		}
		return rpcJSON(status, key, s.cfg.ID, resp)
	default:
		return rpcError(http.StatusBadRequest, "", s.cfg.ID, errors.New("unknown request kind"))
	}
}

// rpcJSON renders v the way writeJSON does (indented, trailing newline), so
// byte-for-byte the same body crosses either transport.
func rpcJSON(status int, key, backend string, v any) rpc.Response {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return rpcError(http.StatusInternalServerError, key, backend, err)
	}
	return rpc.Response{Status: status, ProblemKey: key, Backend: backend, Body: append(body, '\n')}
}

func rpcError(status int, key, backend string, err error) rpc.Response {
	body, _ := json.MarshalIndent(errorResponse{Error: err.Error()}, "", "  ")
	return rpc.Response{Status: status, ProblemKey: key, Backend: backend, Body: append(body, '\n')}
}
