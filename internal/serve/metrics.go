package serve

import (
	"bytes"
	"errors"
	"net/http"

	"repro/internal/promtext"
)

// handleMetrics renders the same counters as /v1/stats in Prometheus text
// format so a stock scraper can watch a backend without a JSON exporter.
// Metric names are stable API; the router exposes its own vs3router_*
// family on top of these.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	sr := s.statsSnapshot()
	pw := promtext.New()
	id := []string{"server", sr.ServerID}
	pw.Gauge("vs3d_up", "1 while the backend is serving, 0 once draining.", boolGauge(!sr.Draining), id...)
	pw.Gauge("vs3d_uptime_seconds", "Seconds since the server started.", sr.UptimeSeconds, id...)
	pw.Gauge("vs3d_pool_sessions", "Configured verifier sessions.", float64(sr.Pool), id...)
	pw.Gauge("vs3d_in_flight", "Requests currently holding a session.", float64(sr.InFlight), id...)
	pw.Gauge("vs3d_queued", "Requests waiting for a session.", float64(sr.Queued), id...)
	pw.Gauge("vs3d_clients_queued", "Distinct client keys with waiting requests.", float64(sr.ClientsQueued), id...)
	pw.Counter("vs3d_requests_total", "Requests that reached a verifier (batch items included).", float64(sr.Requests), id...)
	pw.Counter("vs3d_shed_total", "Requests shed with 429 (wait queue full).", float64(sr.Rejected), id...)
	pw.Counter("vs3d_aborted_total", "Runs cancelled by deadline or client disconnect.", float64(sr.Aborted), id...)
	pw.Counter("vs3d_truncated_total", "Runs that reported a clipped search.", float64(sr.Truncated), id...)
	pw.Counter("vs3d_batches_total", "Accepted /v1/batch requests.", float64(sr.Batches), id...)
	pw.Counter("vs3d_batch_items_total", "Items across all accepted batches.", float64(sr.BatchItems), id...)
	pw.Gauge("vs3d_rpc_conns", "Open binary rpc connections (0 when -rpc is off).", float64(sr.RPCConns), id...)
	pw.Gauge("vs3d_rpc_streams", "Binary rpc streams currently executing.", float64(sr.RPCStreams), id...)
	pw.Counter("vs3d_rpc_requests_total", "Requests accepted over the binary rpc surface.", float64(sr.RPCRequests), id...)
	pw.Counter("vs3d_rpc_cancels_total", "Binary rpc streams cancelled by their client.", float64(sr.RPCCancels), id...)
	pw.Gauge("vs3d_problems_cached", "Parsed problems resident in the LRU.", float64(sr.ProblemsCached), id...)
	pw.Counter("vs3d_problem_cache_hits_total", "Parsed-problem LRU hits.", float64(sr.ProblemCacheHits), id...)
	pw.Counter("vs3d_smt_queries_total", "From-scratch SMT validity queries across all sessions.", float64(sr.Queries), id...)
	pw.Counter("vs3d_smt_cache_hits_total", "SMT validity-cache hits across all sessions.", float64(sr.CacheHits), id...)
	pw.Counter("vs3d_smt_contexts_total", "Persistent incremental smt.Contexts created.", float64(sr.Contexts), id...)
	pw.Counter("vs3d_assumption_probes_total", "Incremental assumption probes across all sessions.", float64(sr.AssumptionProbes), id...)
	pw.Counter("vs3d_lemma_reuse_total", "Theory-lemma reuse hits across all sessions.", float64(sr.LemmaReuse), id...)
	pw.Counter("vs3d_shared_lemmas_total", "Cross-lane theory-lemma exchanges.", float64(sr.SharedLemmas), id...)
	pw.Counter("vs3d_core_pruned_total", "Lattice candidates pruned by stored unsat cores.", float64(sr.CorePruned), id...)
	pw.Counter("vs3d_core_evicted_total", "Cores evicted from the engine-global store.", float64(sr.CoreEvicted), id...)
	pw.Counter("vs3d_fm_scratch_total", "From-scratch Fourier-Motzkin eliminations outside persistent checkers.", float64(sr.FMScratch), id...)
	pw.Counter("vs3d_fm_incremental_total", "Elimination runs inside persistent general-LIA checkers.", float64(sr.FMIncremental), id...)
	pw.Counter("vs3d_fm_cube_hits_total", "Theory checks answered from persisted conflict cubes.", float64(sr.FMCubeHits), id...)
	pw.Counter("vs3d_fm_cap_hits_total", "Eliminations truncated at the derived-constraint cap (conservative answers).", float64(sr.FMCapHits), id...)
	pw.Counter("vs3d_dormant_contexts_total", "Persistent contexts retired by Ackermann budget exhaustion.", float64(sr.DormantContexts), id...)
	pw.Gauge("vs3d_store_enabled", "1 when an on-disk knowledge store is attached.", boolGauge(sr.StoreEnabled), id...)
	if sr.StoreEnabled {
		pw.Gauge("vs3d_store_cold_start", "1 when this lifetime found no usable store (fresh dir or sidelined corruption).", boolGauge(sr.StoreColdStart), id...)
		pw.Gauge("vs3d_store_load_millis", "Milliseconds spent warm-loading the store at startup.", float64(sr.StoreLoadMillis), id...)
		pw.Counter("vs3d_store_verdict_hits_total", "SMT validity queries answered from persisted verdicts.", float64(sr.StoreVerdictHits), id...)
		pw.Counter("vs3d_store_cons_hits_total", "Consistency probes answered from persisted verdicts.", float64(sr.StoreConsHits), id...)
		pw.Counter("vs3d_store_warm_lemmas_total", "Theory lemmas seeded into context groups from the store.", float64(sr.StoreWarmLemmas), id...)
		pw.Counter("vs3d_store_warm_cores_total", "Persisted unsat cores promoted into live searches.", float64(sr.StoreWarmCores), id...)
		pw.Counter("vs3d_store_outcome_hits_total", "Verify requests replayed from persisted whole-problem outcomes.", float64(sr.StoreOutcomeHits), id...)
		pw.Counter("vs3d_store_appended_total", "Records appended to the write-behind queue this lifetime.", float64(sr.StoreAppended), id...)
		pw.Counter("vs3d_store_dropped_total", "Records dropped because the write-behind queue was full.", float64(sr.StoreDropped), id...)
		pw.Gauge("vs3d_store_queue_depth", "Write-behind records waiting for the next flush.", float64(sr.StoreQueueDepth), id...)
		pw.Counter("vs3d_store_flushes_total", "Write-behind flushes (ticker, Flush, and Close).", float64(sr.StoreFlushes), id...)
		pw.Counter("vs3d_store_flush_errors_total", "Write-behind flushes that failed (next load truncates any torn tail).", float64(sr.StoreFlushErrors), id...)
		pw.Counter("vs3d_store_flush_retries_total", "Failed flush batches requeued for a later attempt.", float64(sr.StoreFlushRetry), id...)
		pw.Counter("vs3d_store_compactions_total", "Generational log compactions completed.", float64(sr.StoreCompactions), id...)
		pw.Counter("vs3d_store_compact_errors_total", "Compactions abandoned on error (old generation left in place).", float64(sr.StoreCompactErrors), id...)
		pw.Counter("vs3d_store_reclaimed_bytes_total", "Log bytes reclaimed by compaction.", float64(sr.StoreReclaimedBytes), id...)
		pw.Gauge("vs3d_store_log_bytes", "Knowledge log size on disk.", float64(sr.StoreLogBytes), id...)
		pw.Gauge("vs3d_store_live_bytes", "Bytes of live, deduplicated records in the log.", float64(sr.StoreLiveBytes), id...)
	}

	var buf bytes.Buffer
	_, _ = pw.WriteTo(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
