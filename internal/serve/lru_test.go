package serve

import (
	"fmt"
	"testing"

	"repro/internal/spec"
)

// TestLRUHotProblemSurvivesChurn is the satellite regression for the old
// arbitrary single-eviction cache: a problem that keeps getting hit must
// stay resident while a scan of one-off keys churns through the cache.
func TestLRUHotProblemSurvivesChurn(t *testing.T) {
	c := newProblemLRU(4)
	hot := &spec.Problem{}
	c.put("hot", hot)
	for i := 0; i < 100; i++ {
		if got, ok := c.get("hot"); !ok || got != hot {
			t.Fatalf("hot problem evicted after %d churn inserts", i)
		}
		c.put(fmt.Sprintf("cold-%d", i), &spec.Problem{})
	}
	if _, ok := c.get("hot"); !ok {
		t.Fatal("hot problem evicted by churn despite being hit every round")
	}
	if c.len() != 4 {
		t.Fatalf("cache len = %d, want capacity 4", c.len())
	}
	// The churn keys are one-hit wonders: only the most recent survive.
	if _, ok := c.get("cold-0"); ok {
		t.Error("cold-0 still cached after 100 inserts into a 4-entry LRU")
	}
	if _, ok := c.get("cold-99"); !ok {
		t.Error("most recent cold key missing")
	}
}

// TestLRUEvictionOrder checks hit-ordered (not insertion-ordered) eviction.
func TestLRUEvictionOrder(t *testing.T) {
	c := newProblemLRU(3)
	a, b, d := &spec.Problem{}, &spec.Problem{}, &spec.Problem{}
	c.put("a", a)
	c.put("b", b)
	c.put("d", d)
	c.get("a") // a is now MRU; b is LRU
	c.put("e", &spec.Problem{})
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "d", "e"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s missing", k)
		}
	}
	// Refreshing an existing key must not grow the cache.
	c.put("a", a)
	if c.len() != 3 {
		t.Fatalf("len = %d after refresh, want 3", c.len())
	}
}
