package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// arrayInitSpec is the paper's running example in vs3 input syntax, with
// njunk extra irrelevant predicates appended to the vocabulary. CFP encoding
// cost grows steeply with the vocabulary (one OptimalNegativeSolutions call
// per (unknown, predicate)), so njunk dials a task from ~0.3s (0) to ~30s
// (10) — the lever the deadline and queue tests use.
func arrayInitSpec(njunk int) string {
	src := `
program ArrayInit(array A, n) {
  i := 0;
  while loop (i < n) {
    A[i] := 0;
    i := i + 1;
  }
  assert(forall j. (0 <= j && j < n) => A[j] = 0);
}
template loop: forall j. ?v => A[j] = 0;
predicates v: j < 0, j <= 0, j > 0, j >= 0, j < i, j <= i, j > i, j >= i, j < n, j <= n, j > n, j >= n`
	for k := 0; k < njunk; k++ {
		src += fmt.Sprintf(", j + %d < n + %d", k+1, k+13)
	}
	return src + ";\n"
}

// guardedInitSpec is a §6 precondition-inference task: the loop initializes
// A[0..n) but the assertion demands A[0..m); the weakest precondition in the
// vocabulary is m <= n.
const guardedInitSpec = `
program GuardedInit(array A, n, m) {
  i := 0;
  while loop (i < n) {
    A[i] := 0;
    i := i + 1;
  }
  assert(forall k. (0 <= k && k < m) => A[k] = 0);
}
template entry: ?pre;
template loop: ?v0 && (forall k. ?v1 => A[k] = 0);
predicates pre: m <= n, n <= m, m <= 0;
predicates v0: m <= n, i <= n, 0 <= i;
predicates v1: 0 <= k, k < i, k < n, k < m;
`

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getStats(t *testing.T, client *http.Client, base string) statsResponse {
	t.Helper()
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestVerifyAllMethodsAndHealth(t *testing.T) {
	ts := httptest.NewServer(New(Config{Pool: 2}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	for _, m := range []string{"lfp", "gfp", "cfp"} {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/verify",
			VerifyRequest{Spec: arrayInitSpec(0), Method: m})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", m, resp.StatusCode, body)
		}
		var vr VerifyResponse
		if err := json.Unmarshal(body, &vr); err != nil {
			t.Fatal(err)
		}
		if !vr.Proved || vr.Aborted || vr.Truncated {
			t.Errorf("%s: %+v", m, vr)
		}
		if vr.Invariants["loop"] == "" {
			t.Errorf("%s: no loop invariant in response", m)
		}
		if vr.Stats.Queries == 0 && vr.Stats.CandidateSteps == 0 && vr.Stats.SATFormulas == 0 {
			t.Errorf("%s: empty request-scoped stats: %+v", m, vr.Stats)
		}
	}
}

func TestPreconditionsEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{Pool: 1}).Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/preconditions",
		VerifyRequest{Spec: guardedInitSpec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PreconditionsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Aborted || len(pr.Preconditions) == 0 {
		t.Fatalf("preconditions: %+v", pr)
	}
	found := false
	for _, p := range pr.Preconditions {
		if strings.Contains(p, "m <= n") {
			found = true
		}
	}
	if !found {
		t.Errorf("m <= n not among preconditions %v", pr.Preconditions)
	}
}

// TestRepeatedProblemWarmCaches is the fleet-amortization check: the second
// request for the same problem on the same pool must ride the first one's
// caches — strictly fewer from-scratch SMT queries, and cache/context hits
// visible on /v1/stats.
func TestRepeatedProblemWarmCaches(t *testing.T) {
	ts := httptest.NewServer(New(Config{Pool: 1}).Handler())
	defer ts.Close()

	var deltas []VerifyResponse
	var durations []time.Duration
	for i := 0; i < 2; i++ {
		start := time.Now()
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/verify",
			VerifyRequest{Spec: arrayInitSpec(0), Method: "gfp"})
		durations = append(durations, time.Since(start))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var vr VerifyResponse
		if err := json.Unmarshal(body, &vr); err != nil {
			t.Fatal(err)
		}
		if !vr.Proved {
			t.Fatalf("request %d not proved", i)
		}
		deltas = append(deltas, vr)
	}
	if deltas[1].Stats.Queries >= deltas[0].Stats.Queries {
		t.Errorf("warm request decided %d queries, cold %d — caches not shared",
			deltas[1].Stats.Queries, deltas[0].Stats.Queries)
	}
	t.Logf("cold: %v (%d queries), warm: %v (%d queries)",
		durations[0], deltas[0].Stats.Queries, durations[1], deltas[1].Stats.Queries)

	sr := getStats(t, ts.Client(), ts.URL)
	if sr.ProblemCacheHits < 1 {
		t.Errorf("problem cache hits = %d, want >= 1", sr.ProblemCacheHits)
	}
	if sr.CacheHits == 0 {
		t.Errorf("no SMT cache hits after a repeated problem: %+v", sr)
	}
	if sr.Requests != 2 {
		t.Errorf("requests = %d, want 2", sr.Requests)
	}
}

// TestDeadlineAbortsCFP is the regression for the dropped CBI Stop wiring:
// a CFP request with a 50ms deadline on a task whose cold run takes ~30s
// must come back promptly as 504/aborted, not grind to completion and
// report a false negative.
func TestDeadlineAbortsCFP(t *testing.T) {
	ts := httptest.NewServer(New(Config{Pool: 1}).Handler())
	defer ts.Close()
	start := time.Now()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/verify",
		VerifyRequest{Spec: arrayInitSpec(10), Method: "cfp", TimeoutMS: 50})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	var vr VerifyResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if !vr.Aborted || vr.Proved {
		t.Errorf("want aborted, got %+v", vr)
	}
	if elapsed > 8*time.Second {
		t.Errorf("aborted request took %v; deadline was 50ms", elapsed)
	}
	sr := getStats(t, ts.Client(), ts.URL)
	if sr.Aborted != 1 {
		t.Errorf("stats aborted = %d, want 1", sr.Aborted)
	}
}

// TestQueueSaturation fills the single session and the one-deep queue, then
// expects the next request to be shed with 429 + Retry-After.
func TestQueueSaturation(t *testing.T) {
	ts := httptest.NewServer(New(Config{Pool: 1, Queue: 1}).Handler())
	defer ts.Close()

	slow := arrayInitSpec(10)
	var wg sync.WaitGroup
	reqDone := make(chan int, 2)
	launch := func(timeoutMS int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.Client(), ts.URL+"/v1/verify",
				VerifyRequest{Spec: slow, Method: "cfp", TimeoutMS: timeoutMS})
			reqDone <- resp.StatusCode
		}()
	}
	waitFor := func(cond func(statsResponse) bool, what string) {
		deadline := time.Now().Add(5 * time.Second)
		for !cond(getStats(t, ts.Client(), ts.URL)) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	launch(3000) // occupies the one session for its full 3s deadline
	waitFor(func(s statsResponse) bool { return s.InFlight == 1 }, "first request in flight")
	launch(100) // sits in the queue
	waitFor(func(s statsResponse) bool { return s.Queued == 1 }, "second request queued")

	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/verify",
		VerifyRequest{Spec: slow, Method: "cfp", TimeoutMS: 100})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if _, ok := RetryAfter(resp.Header); !ok {
		t.Error("429 without Retry-After")
	}

	wg.Wait()
	close(reqDone)
	for code := range reqDone {
		if code != http.StatusGatewayTimeout {
			t.Errorf("queued/slow request finished with %d, want 504", code)
		}
	}
	if sr := getStats(t, ts.Client(), ts.URL); sr.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", sr.Rejected)
	}
}

// TestConcurrentRequests hammers a small pool with more in-flight requests
// than sessions, mixing all three methods and the preconditions endpoint.
// Run under -race (make test-race) this is the pool's concurrency proof.
func TestConcurrentRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{Pool: 4, Queue: 32}).Handler())
	defer ts.Close()

	const n = 12 // >= 8 in flight beyond the pool of 4
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i%4 == 3 {
				resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/preconditions",
					VerifyRequest{Spec: guardedInitSpec})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("preconditions: status %d: %s", resp.StatusCode, body)
				}
				return
			}
			method := []string{"lfp", "gfp", "cfp"}[i%3]
			resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/verify",
				VerifyRequest{Spec: arrayInitSpec(0), Method: method})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: status %d: %s", method, resp.StatusCode, body)
				return
			}
			var vr VerifyResponse
			if err := json.Unmarshal(body, &vr); err != nil {
				errs <- err
				return
			}
			if !vr.Proved {
				errs <- fmt.Errorf("%s: not proved: %+v", method, vr)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if sr := getStats(t, ts.Client(), ts.URL); sr.Requests != n {
		t.Errorf("requests = %d, want %d", sr.Requests, n)
	}
}

// TestTruncationSurfaced caps the enumeration hard and checks the clipped
// search is reported instead of silently posing as a complete answer.
func TestTruncationSurfaced(t *testing.T) {
	cfg := Config{Pool: 1}
	cfg.Core.Fixpoint.MaxSteps = 2
	ts := httptest.NewServer(New(cfg).Handler())
	defer ts.Close()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/preconditions",
		VerifyRequest{Spec: guardedInitSpec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PreconditionsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Truncated {
		t.Errorf("want truncated enumeration, got %+v", pr)
	}
	if sr := getStats(t, ts.Client(), ts.URL); sr.Truncated != 1 {
		t.Errorf("stats truncated = %d, want 1", sr.Truncated)
	}
}

func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{Pool: 1}).Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body any
		want int
	}{
		{"missing spec", VerifyRequest{Method: "lfp"}, http.StatusBadRequest},
		{"parse error", VerifyRequest{Spec: "program {"}, http.StatusBadRequest},
		{"unknown method", VerifyRequest{Spec: arrayInitSpec(0), Method: "dfs"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/v1/verify", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d: %s", c.name, resp.StatusCode, c.want, body)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/verify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/verify: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats: status %d, want 405", resp.StatusCode)
	}
}

// TestDrainFlipsHealthz: StartDrain takes the backend out of router rotation
// (healthz 503) while verify keeps answering in-flight and late requests.
func TestDrainFlipsHealthz(t *testing.T) {
	srv := New(Config{Pool: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.StartDrain()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", resp.StatusCode)
	}

	vresp, body := postJSON(t, ts.Client(), ts.URL+"/v1/verify",
		VerifyRequest{Spec: arrayInitSpec(0), Method: "lfp"})
	if vresp.StatusCode != http.StatusOK {
		t.Fatalf("verify while draining: status %d: %s", vresp.StatusCode, body)
	}
	if !getStats(t, ts.Client(), ts.URL).Draining {
		t.Error("stats does not report draining")
	}
}
