package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// grab parks one acquire for client and exposes its grant channel.
func grab(fq *fairQueue, client string) chan *session {
	out := make(chan *session, 1)
	go func() {
		sess, err := fq.acquire(context.Background(), client)
		if err != nil {
			close(out)
			return
		}
		out <- sess
	}()
	return out
}

// pollGranted returns the index of the first channel that received a grant,
// or -1 after the deadline.
func pollGranted(chans []chan *session, timeout time.Duration) (int, *session) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for i, ch := range chans {
			if ch == nil {
				continue
			}
			select {
			case sess := <-ch:
				return i, sess
			default:
			}
		}
		time.Sleep(time.Millisecond)
	}
	return -1, nil
}

// TestFairQueueRoundRobin is the deterministic starvation proof at the
// queue level: with one session held and a greedy client holding 3 queued
// slots against a victim's 1, grants must alternate clients — the victim is
// served on the first rotation, not after the greedy backlog drains.
func TestFairQueueRoundRobin(t *testing.T) {
	fq := newFairQueue([]*session{{}}, 16)
	held, err := fq.acquire(context.Background(), "greedy")
	if err != nil {
		t.Fatal(err)
	}

	// Park waiters in arrival order: greedy, greedy, greedy, victim.
	owners := []string{"greedy", "greedy", "greedy", "victim"}
	var chans []chan *session
	for i, client := range owners {
		chans = append(chans, grab(fq, client))
		waitQueued(t, fq, i+1)
	}

	var order []string
	cur := held
	for len(order) < len(chans) {
		fq.release(cur)
		i, sess := pollGranted(chans, 2*time.Second)
		if i < 0 {
			t.Fatalf("no waiter granted after release; served so far: %v", order)
		}
		cur = sess
		order = append(order, owners[i])
		chans[i] = nil
	}

	// Round-robin across {greedy, victim}: greedy (first rotation), victim
	// (its rotation slot), then the greedy backlog.
	want := []string{"greedy", "victim", "greedy", "greedy"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

// TestFairQueueCancelledWaiter checks a waiter whose context fires is
// skipped at dispatch and frees its queue slot.
func TestFairQueueCancelledWaiter(t *testing.T) {
	fq := newFairQueue([]*session{{}}, 2)
	held, _ := fq.acquire(context.Background(), "a")

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := fq.acquire(ctx, "b")
		errc <- err
	}()
	waitQueued(t, fq, 1)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v", err)
	}
	if q := fq.queued(); q != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", q)
	}
	// The released session must fall through the cancelled waiter to idle,
	// and a fresh acquire must get it immediately.
	fq.release(held)
	sess, err := fq.acquire(context.Background(), "c")
	if err != nil || sess == nil {
		t.Fatalf("acquire after cancelled waiter: %v", err)
	}
}

// TestFairQueueBusy checks the total admission bound still sheds.
func TestFairQueueBusy(t *testing.T) {
	fq := newFairQueue([]*session{{}}, 1)
	if _, err := fq.acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	grab(fq, "a")
	waitQueued(t, fq, 1)
	if _, err := fq.acquire(context.Background(), "b"); err != errBusy {
		t.Fatalf("over-bound acquire returned %v, want errBusy", err)
	}
}

func waitQueued(t *testing.T, fq *fairQueue, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for fq.queued() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want %d", fq.queued(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// postAs posts a verify request under an explicit client key.
func postAs(t *testing.T, client *http.Client, url, clientKey string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-VS3-Client", clientKey)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestFairQueueingHTTP is the end-to-end starvation proof: a greedy client
// floods the single-session server, a victim posts one request, and the
// victim must complete on the first round-robin rotation, not after the
// greedy backlog drains.
func TestFairQueueingHTTP(t *testing.T) {
	ts := httptest.NewServer(New(Config{Pool: 1, Queue: 8}).Handler())
	defer ts.Close()

	finished := make(chan string, 8)
	var wg sync.WaitGroup
	launch := func(client string, timeoutMS int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postAs(t, ts.Client(), ts.URL+"/v1/verify", client,
				VerifyRequest{Spec: arrayInitSpec(10), Method: "cfp", TimeoutMS: timeoutMS})
			finished <- client
		}()
	}
	waitFor := func(cond func(statsResponse) bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond(getStats(t, ts.Client(), ts.URL)) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Occupy the session, then queue greedy×3 before the victim's single
	// request. Each queued run is deadline-bounded so the test finishes
	// fast; with Pool=1 completion order equals grant order.
	launch("greedy", 1500)
	waitFor(func(s statsResponse) bool { return s.InFlight == 1 }, "first request in flight")
	for i := 0; i < 3; i++ {
		launch("greedy", 300)
		waitFor(func(s statsResponse) bool { return s.Queued == int64(i+1) }, "greedy queued")
	}
	launch("victim", 300)
	waitFor(func(s statsResponse) bool { return s.Queued == 4 && s.ClientsQueued == 2 }, "victim queued")

	wg.Wait()
	close(finished)
	var order []string
	for who := range finished {
		order = append(order, who)
	}
	// order[0] is the initial in-flight greedy run. The victim must be
	// among the next two completions (round-robin: greedy's rotation slot,
	// then victim's), never last behind the whole greedy backlog.
	pos := -1
	for i, who := range order {
		if who == "victim" {
			pos = i
		}
	}
	if pos < 0 || pos > 2 {
		t.Fatalf("victim finished at position %d of %v; fair queueing should admit it on the first rotation", pos, order)
	}
}
