package serve

import (
	"container/list"

	"repro/internal/spec"
)

// problemLRU is a hit-ordered bounded cache of parsed problems. Problems
// carry their compiled per-path VC skeletons, so keeping the *hot* set
// resident (rather than evicting an arbitrary entry, as the first serving
// layer did) is what preserves the warm-path economics under churn: a
// problem the fleet keeps asking about must survive a scan of one-off specs.
// Methods are not locked; the Server guards the cache with its own mutex.
type problemLRU struct {
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	index map[string]*list.Element
}

type lruEntry struct {
	key string
	p   *spec.Problem
}

func newProblemLRU(capacity int) *problemLRU {
	if capacity <= 0 {
		capacity = 1
	}
	return &problemLRU{cap: capacity, order: list.New(), index: map[string]*list.Element{}}
}

// get returns the cached problem and promotes it to most-recently-used.
func (c *problemLRU) get(key string) (*spec.Problem, bool) {
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).p, true
}

// put inserts (or refreshes) an entry, evicting the least-recently-used
// entry when the cache is full.
func (c *problemLRU) put(key string, p *spec.Problem) {
	if el, ok := c.index[key]; ok {
		el.Value.(*lruEntry).p = p
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.index, oldest.Value.(*lruEntry).key)
		}
	}
	c.index[key] = c.order.PushFront(&lruEntry{key: key, p: p})
}

// len reports the number of cached problems.
func (c *problemLRU) len() int { return c.order.Len() }
