package fixpoint

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/template"
)

// solutionsKey canonically renders a result's solution set for comparison
// across runs (the All list is already deduped; sort by Key to ignore
// discovery order).
func solutionsKey(res Result) string {
	keys := make([]string, 0, len(res.All)+1)
	if res.Solution != nil {
		keys = append(keys, "first:"+res.Solution.Key())
	}
	all := append([]template.Solution(nil), res.All...)
	for _, s := range all {
		keys = append(keys, s.Key())
	}
	out := ""
	for _, k := range sortedStrings(keys) {
		out += k + "\n"
	}
	return out
}

func sortedStrings(ss []string) []string {
	out := append([]string(nil), ss...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestParallelMatchesSequential checks that the parallel worklist proves
// the same problems as the sequential engine, and that every solution it
// returns is a genuine invariant.
func TestParallelMatchesSequential(t *testing.T) {
	for _, parallel := range []int{2, 4, 8} {
		p1, p2 := arrayInitProblem(), arrayInitProblem()
		seq, err := LeastFixedPoint(p1, newEngine(), Options{Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := LeastFixedPoint(p2, newEngine(), Options{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Found() != par.Found() {
			t.Fatalf("parallel=%d: proved=%v, sequential proved=%v", parallel, par.Found(), seq.Found())
		}
		if ok, fail := p2.CheckAll(newEngine().S, par.Solution); !ok {
			t.Fatalf("parallel=%d returned non-invariant; failing path %v", parallel, fail)
		}
	}
}

// TestParallelDeterministic re-runs LFP and GFP with Parallel > 1 and
// requires identical solutions every time: batch selection is a stable
// sort, repair results merge in batch order, so scheduling cannot leak into
// the outcome.
func TestParallelDeterministic(t *testing.T) {
	for _, dir := range []struct {
		name string
		run  func() (Result, error)
	}{
		{"LFP", func() (Result, error) {
			return LeastFixedPoint(arrayInitProblem(), newEngine(), Options{Parallel: 4, All: true})
		}},
		{"GFP", func() (Result, error) {
			return GreatestFixedPoint(arrayInitProblem(), newEngine(), Options{Parallel: 4, All: true})
		}},
	} {
		first := ""
		for round := 0; round < 3; round++ {
			res, err := dir.run()
			if err != nil {
				t.Fatal(err)
			}
			key := solutionsKey(res)
			if round == 0 {
				first = key
				if !res.Found() {
					t.Fatalf("%s: no solution found", dir.name)
				}
				continue
			}
			if key != first {
				t.Errorf("%s round %d: solutions differ from round 0:\n%s\nvs\n%s", dir.name, round, key, first)
			}
		}
	}
}

// BenchmarkLFPSequential runs the paper's running example to a solution on
// one worker (the pre-parallel engine).
func BenchmarkLFPSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := LeastFixedPoint(arrayInitProblem(), newEngine(), Options{Parallel: 1})
		if err != nil || !res.Found() {
			b.Fatalf("err=%v found=%v", err, res.Found())
		}
	}
}

// BenchmarkLFPParallel runs the same search with the worklist fanned over
// GOMAXPROCS workers. On a ≥4-core box the candidate repairs and scoring
// dominate and the speedup approaches the worker count; per-op time here is
// the headline number to compare against BenchmarkLFPSequential.
func BenchmarkLFPParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := LeastFixedPoint(arrayInitProblem(), newEngine(), Options{Parallel: runtime.GOMAXPROCS(0)})
		if err != nil || !res.Found() {
			b.Fatalf("err=%v found=%v", err, res.Found())
		}
	}
}

// TestParallelStopAbandons checks the cooperative-stop contract under the
// parallel engine: a Stop that fires immediately must end the run quickly
// with no solution claimed.
func TestParallelStopAbandons(t *testing.T) {
	stopped := make(chan struct{})
	close(stopped)
	stop := func() bool {
		select {
		case <-stopped:
			return true
		default:
			return false
		}
	}
	start := time.Now()
	res, err := LeastFixedPoint(arrayInitProblem(), newEngine(), Options{Parallel: 4, Stop: stop})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		t.Error("stopped run claimed a solution")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("stopped run took %v", elapsed)
	}
}
