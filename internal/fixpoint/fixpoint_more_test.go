package fixpoint

import (
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/template"
)

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.MaxSteps != 500 || o.MaxCandidates != 64 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{MaxSteps: 7}.normalize()
	if o.MaxSteps != 7 {
		t.Error("explicit MaxSteps overridden")
	}
}

func TestMaxStepsBoundRespected(t *testing.T) {
	p := arrayInitProblem()
	eng := newEngine()
	res, err := LeastFixedPoint(p, eng, Options{MaxSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps > 1 {
		t.Errorf("steps = %d, want <= 1", res.Steps)
	}
	if res.Found() {
		t.Skip("found within one step; bound not exercised")
	}
	if res.Exhausted {
		t.Error("hitting MaxSteps is not exhaustion")
	}
}

func TestAllModeCollectsMultipleSolutions(t *testing.T) {
	p := arrayInitProblem()
	eng := newEngine()
	res, err := GreatestFixedPoint(p, eng, Options{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("no solution in All mode")
	}
	if len(res.All) == 0 {
		t.Fatal("All mode must populate All")
	}
	// Every collected solution must actually be an invariant solution.
	for _, s := range res.All {
		if ok, fail := p.CheckAll(eng.S, s); !ok {
			t.Errorf("All-mode solution %v fails at %v", s, fail)
		}
	}
	// And they are pairwise distinct.
	seen := map[string]bool{}
	for _, s := range res.All {
		if seen[s.Key()] {
			t.Errorf("duplicate solution %v", s.Key())
		}
		seen[s.Key()] = true
	}
}

func TestStatsRecorded(t *testing.T) {
	p := arrayInitProblem()
	eng := newEngine()
	c := stats.New()
	if _, err := LeastFixedPoint(p, eng, Options{Stats: c}); err != nil {
		t.Fatal(err)
	}
	if len(c.Candidates()) == 0 {
		t.Error("candidate counts not recorded")
	}
}

func TestTraceHookFires(t *testing.T) {
	p := arrayInitProblem()
	eng := newEngine()
	var lines []string
	_, err := LeastFixedPoint(p, eng, Options{
		Trace: func(f string, a ...any) { lines = append(lines, f) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("trace hook never fired")
	}
}

func TestValidateErrorPropagates(t *testing.T) {
	p := arrayInitProblem()
	p.Q = template.Domain{} // empty vocabulary: Validate fails
	if _, err := LeastFixedPoint(p, newEngine(), Options{}); err == nil {
		t.Error("expected a validation error")
	}
}

func TestStringRendersInvariants(t *testing.T) {
	p := arrayInitProblem()
	sigma := template.Solution{"v": template.NewPredSet(
		logic.LeF(logic.I(0), logic.V("j")), logic.LtF(logic.V("j"), logic.V("i")))}
	s := String(p, sigma)
	if !strings.Contains(s, "loop:") || !strings.Contains(s, "A[j] = 0") {
		t.Errorf("render = %q", s)
	}
}

// TestTwoLoopProgram exercises the worklist across two templated cut-points.
func TestTwoLoopProgram(t *testing.T) {
	prog := lang.MustParse(`
		program TwoPhase(array A, n) {
			i := 0;
			while first (i < n) {
				A[i] := 1;
				i := i + 1;
			}
			i := 0;
			while second (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall j. (0 <= j && j < n) => A[j] = 0);
		}`)
	mk := lang.MustParseFormula
	qs := []logic.Formula{mk("0 <= j"), mk("j < i"), mk("j < n"), mk("j < 0")}
	p := &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"first":  mk("forall j. ?a => A[j] = 1"),
			"second": mk("forall j. ?b => A[j] = 0"),
		},
		Q: template.Domain{"a": qs, "b": qs},
	}
	eng := newEngine()
	res, err := GreatestFixedPoint(p, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatalf("two-loop program not proved (steps=%d exhausted=%v)", res.Steps, res.Exhausted)
	}
	if ok, fail := p.CheckAll(eng.S, res.Solution); !ok {
		t.Errorf("solution invalid at %v", fail)
	}
}
